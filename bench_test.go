// Benchmarks regenerating the paper's tables and figures, one bench per
// experiment (see DESIGN.md §4 for the experiment index). Each figure
// bench times the measured kernel under both memory layouts and attaches
// the simulated memory-system counter (the paper's PAPI metric) as a
// custom benchmark metric, so `go test -bench=.` reproduces both of the
// paper's measurement channels. The full-grid tables are produced by
// cmd/sfcbench; these benches cover each figure's representative cells
// at bench-friendly sizes.
package sfcmem_test

import (
	"fmt"
	"sync"
	"testing"

	"sfcmem"
	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// Bench volumes are cached across benchmarks: generation (FBM noise) is
// far more expensive than a single kernel run.
var (
	benchMu     sync.Mutex
	benchMRI    = map[string]*grid.Grid[float32]{}
	benchPlume  = map[string]*grid.Grid[float32]{}
	benchImgSum float64 // defeats dead-code elimination
)

func mriFor(b *testing.B, kind core.Kind, n int) *grid.Grid[float32] {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s/%d", kind, n)
	if g, ok := benchMRI[key]; ok {
		return g
	}
	g := volume.MRIPhantom(core.New(kind, n, n, n), 1, 0.05)
	benchMRI[key] = g
	return g
}

func plumeFor(b *testing.B, kind core.Kind, n int) *grid.Grid[float32] {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s/%d", kind, n)
	if g, ok := benchPlume[key]; ok {
		return g
	}
	g := volume.CombustionPlume(core.New(kind, n, n, n), 1)
	benchPlume[key] = g
	return g
}

// --- E1 / Fig 1: layout locality (ray-stride analysis) ---------------

func BenchmarkFig1_RayStride(b *testing.B) {
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
		for _, dir := range []struct {
			name       string
			dx, dy, dz float64
		}{
			{"alongX", 1, 0.02, 0.02},
			{"alongZ", 0.02, 0.02, 1},
		} {
			b.Run(kind.String()+"/"+dir.name, func(b *testing.B) {
				l := core.New(kind, 64, 64, 64)
				var mean float64
				for i := 0; i < b.N; i++ {
					mean = core.RayStride(l, dir.dx, dir.dy, dir.dz).Mean
				}
				b.ReportMetric(mean, "elems/step")
			})
		}
	}
}

// --- E2/E3 / Fig 2-3: bilateral filter --------------------------------

// bilatBenchRow is one representative cell of the Fig 2/3 grids. The r5
// rows run on a smaller volume to keep bench time bounded; the layout
// comparison within a row is still like-for-like.
type bilatBenchRow struct {
	label  string
	radius int
	size   int
	axis   parallel.Axis
	order  filter.Order
}

func bilatBenchRows() []bilatBenchRow {
	return []bilatBenchRow{
		{"r1_px_xyz", 1, 64, parallel.AxisX, filter.XYZ},
		{"r1_pz_zyx", 1, 64, parallel.AxisZ, filter.ZYX},
		{"r3_px_xyz", 2, 48, parallel.AxisX, filter.XYZ},
		{"r3_pz_zyx", 2, 48, parallel.AxisZ, filter.ZYX},
		{"r5_px_xyz", 5, 32, parallel.AxisX, filter.XYZ},
		{"r5_pz_zyx", 5, 32, parallel.AxisZ, filter.ZYX},
	}
}

func benchBilatFigure(b *testing.B, platform cache.Platform, simThreads int) {
	for _, row := range bilatBenchRows() {
		for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
			b.Run(row.label+"/"+kind.String(), func(b *testing.B) {
				src := mriFor(b, kind, row.size)
				dst := grid.New(core.New(kind, row.size, row.size, row.size))
				opts := filter.Options{
					Radius: row.radius, Axis: row.axis, Order: row.order, Workers: 4,
				}
				// Simulated paper counter, attached as a custom metric
				// (computed once on a reduced volume, outside the timer).
				simSize := row.size
				if simSize > 32 {
					simSize = 32
				}
				simSrc := mriFor(b, kind, simSize)
				simDst := grid.New(core.New(kind, simSize, simSize, simSize))
				sys := cache.NewSystem(platform, simThreads)
				srcs := make([]grid.Reader, simThreads)
				dsts := make([]grid.Writer, simThreads)
				for w := 0; w < simThreads; w++ {
					srcs[w] = grid.NewTraced(simSrc, 0, sys.Front(w))
					dsts[w] = grid.NewTraced(simDst, 1<<40, sys.Front(w))
				}
				simOpts := opts
				simOpts.Workers = simThreads
				if err := filter.ApplyViews(srcs, dsts, simOpts); err != nil {
					b.Fatal(err)
				}
				metric := sys.Report().PaperMetric()

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := filter.Apply(src, dst, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(metric), sys.Report().MetricName())
			})
		}
	}
}

func BenchmarkFig2_BilatIvy(b *testing.B) {
	benchBilatFigure(b, cache.Scaled(cache.IvyBridge(), 32), 4)
}

func BenchmarkFig3_BilatMIC(b *testing.B) {
	benchBilatFigure(b, cache.Scaled(cache.MIC(), 32), 8)
}

// --- E4-E6 / Fig 4-6: raycasting volume renderer ----------------------

func benchVolrend(b *testing.B, view int, kind core.Kind, platform cache.Platform, simThreads int) {
	const n = 64
	const img = 128
	vol := plumeFor(b, kind, n)
	cam := render.Orbit(view, 8, n, n, n, img, img)
	tf := render.DefaultTransferFunc()
	opts := render.Options{TileSize: 32, Workers: 4, Step: 1}

	// Simulated counter on a reduced image, outside the timer.
	sys := cache.NewSystem(platform, simThreads)
	views := make([]grid.Reader, simThreads)
	for w := 0; w < simThreads; w++ {
		views[w] = grid.NewTraced(vol, 0, sys.Front(w))
	}
	simOpts := opts
	simOpts.Workers = simThreads
	simCam := render.Orbit(view, 8, n, n, n, 64, 64)
	if _, err := render.RenderViews(views, simCam, tf, simOpts); err != nil {
		b.Fatal(err)
	}
	metric := sys.Report().PaperMetric()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im, err := render.Render(vol, cam, tf, opts)
		if err != nil {
			b.Fatal(err)
		}
		benchImgSum += im.MeanAlpha()
	}
	b.ReportMetric(float64(metric), sys.Report().MetricName())
}

// BenchmarkFig4_VolrendViewpoints sweeps all 8 orbit viewpoints for both
// layouts (the paper's absolute-runtime line plot).
func BenchmarkFig4_VolrendViewpoints(b *testing.B) {
	p := cache.Scaled(cache.IvyBridge(), 32)
	for view := 0; view < 8; view++ {
		for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
			b.Run(fmt.Sprintf("view%d/%s", view, kind), func(b *testing.B) {
				benchVolrend(b, view, kind, p, 4)
			})
		}
	}
}

// BenchmarkFig5_VolrendIvy covers Fig 5's extremes: the aligned view 0
// and the worst oblique view 2 on the IvyBridge-like platform.
func BenchmarkFig5_VolrendIvy(b *testing.B) {
	p := cache.Scaled(cache.IvyBridge(), 32)
	for _, view := range []int{0, 2} {
		for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
			b.Run(fmt.Sprintf("view%d/%s", view, kind), func(b *testing.B) {
				benchVolrend(b, view, kind, p, 4)
			})
		}
	}
}

// BenchmarkFig6_VolrendMIC is the same sweep against the MIC-like
// platform (L2 read-miss counter, no shared L3).
func BenchmarkFig6_VolrendMIC(b *testing.B) {
	p := cache.Scaled(cache.MIC(), 32)
	for _, view := range []int{0, 2} {
		for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
			b.Run(fmt.Sprintf("view%d/%s", view, kind), func(b *testing.B) {
				benchVolrend(b, view, kind, p, 8)
			})
		}
	}
}

// --- A1: layout ablation (array vs Z vs tiled vs Hilbert) -------------

func BenchmarkAblationLayouts(b *testing.B) {
	for _, kind := range core.Kinds() {
		b.Run("bilat/"+kind.String(), func(b *testing.B) {
			src := mriFor(b, kind, 48)
			dst := grid.New(core.New(kind, 48, 48, 48))
			opts := filter.Options{Radius: 2, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := filter.Apply(src, dst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("render/"+kind.String(), func(b *testing.B) {
			vol := plumeFor(b, kind, 48)
			cam := render.Orbit(2, 8, 48, 48, 48, 96, 96)
			tf := render.DefaultTransferFunc()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				im, err := render.Render(vol, cam, tf, render.Options{Workers: 4})
				if err != nil {
					b.Fatal(err)
				}
				benchImgSum += im.MeanAlpha()
			}
		})
	}
}

// --- A2: renderer tile-size ablation (paper §IV-B5 discussion) --------

func BenchmarkAblationTileSize(b *testing.B) {
	vol := plumeFor(b, core.ZKind, 48)
	cam := render.Orbit(3, 8, 48, 48, 48, 128, 128)
	tf := render.DefaultTransferFunc()
	for _, tile := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("tile%d", tile), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im, err := render.Render(vol, cam, tf, render.Options{TileSize: tile, Workers: 4})
				if err != nil {
					b.Fatal(err)
				}
				benchImgSum += im.MeanAlpha()
			}
		})
	}
}

// --- A3: Z-order padding ablation (paper §V limitation) ---------------

func BenchmarkAblationPadding(b *testing.B) {
	for _, size := range []int{64, 60} { // 60³ pads to the 64³ index space
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			l := core.NewZOrder(size, size, size)
			b.ReportMetric(float64(l.Len())/float64(size*size*size)-1, "pad-overhead")
			src := mriFor(b, core.ZKind, size)
			dst := grid.New(core.NewZOrder(size, size, size))
			opts := filter.Options{Radius: 1, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := filter.Apply(src, dst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Morton index-cost ablation (the paper's equal-footing claim) -----

func BenchmarkAblationIndexCost(b *testing.B) {
	layouts := map[string]core.Layout{
		"array":   core.NewArrayOrder(256, 256, 256),
		"zorder":  core.NewZOrder(256, 256, 256),
		"tiled":   core.NewTiled(256, 256, 256, core.DefaultTile),
		"hilbert": core.NewHilbert(256, 256, 256),
		"ztiled":  core.NewZTiled(256, 256, 256, core.DefaultBrick),
		"hzorder": core.NewHZOrder(256, 256, 256),
	}
	for _, name := range []string{"array", "zorder", "tiled", "hilbert", "ztiled", "hzorder"} {
		l := layouts[name]
		b.Run(name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += l.Index(i&255, i>>8&255, i>>16&255)
			}
			benchImgSum += float64(sink & 1)
		})
	}
}

// --- A7: flat-access fast-path ablation --------------------------------

// BenchmarkFastPathBilatR5 measures what the flat-access fast path buys
// on the paper's heaviest bilateral configuration (r5, 11³ stencil):
// flat resolves the layout to raw buffer + per-axis offset tables once
// per pencil batch, iface forces the generic Reader.At → Layout.Index
// double-dispatch per access. DESIGN.md §7 records the numbers.
func BenchmarkFastPathBilatR5(b *testing.B) {
	const n = 32
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
		for _, path := range []struct {
			name string
			off  bool
		}{{"flat", false}, {"iface", true}} {
			b.Run(kind.String()+"/"+path.name, func(b *testing.B) {
				src := mriFor(b, kind, n)
				dst := grid.New(core.New(kind, n, n, n))
				opts := filter.Options{
					Radius: 5, Axis: parallel.AxisX, Order: filter.XYZ,
					Workers: 4, NoFastPath: path.off,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := filter.Apply(src, dst, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFastPathVolrend is the renderer-side ablation: trilinear
// sampling and shading gradients through the flat view vs the interface
// path, on the oblique view 2.
func BenchmarkFastPathVolrend(b *testing.B) {
	const n = 64
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
		for _, path := range []struct {
			name string
			off  bool
		}{{"flat", false}, {"iface", true}} {
			b.Run(kind.String()+"/"+path.name, func(b *testing.B) {
				vol := plumeFor(b, kind, n)
				cam := render.Orbit(2, 8, n, n, n, 128, 128)
				tf := render.DefaultTransferFunc()
				o := render.Options{Workers: 4, NoFastPath: path.off}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					im, err := render.Render(vol, cam, tf, o)
					if err != nil {
						b.Fatal(err)
					}
					benchImgSum += im.MeanAlpha()
				}
			})
		}
	}
}

// --- A8: neighbor-stepping stencil walk ablation -----------------------

// BenchmarkBilateralStepR5 measures what walking the curve buys over
// per-tap offset-table lookups inside the flat fast path, on the
// heaviest bilateral configuration (r5, 11³ stencil): step advances the
// stencil by neighbor increments (stride adds on array order,
// dilated-bit Morton arithmetic on Z order, intra-brick Morton walks on
// Z-tiled), table pins Options.NoStepper so every tap resolves through
// the per-axis offset tables. DESIGN.md §13 records the numbers.
func BenchmarkBilateralStepR5(b *testing.B) {
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.ZTiledKind} {
		benchBilatStep[uint8](b, kind)
		benchBilatStep[float32](b, kind)
	}
}

func benchBilatStep[T grid.Scalar](b *testing.B, kind core.Kind) {
	const n = 32
	dtype := grid.DtypeFor[T]().String()
	for _, path := range []struct {
		name   string
		noStep bool
	}{{"step", false}, {"table", true}} {
		b.Run(kind.String()+"/"+dtype+"/"+path.name, func(b *testing.B) {
			src := grid.ConvertGrid[T](mriFor(b, kind, n))
			dst := grid.NewOf[T](core.New(kind, n, n, n))
			opts := filter.Options{
				Radius: 5, Axis: parallel.AxisX, Order: filter.XYZ,
				Workers: 4, NoStepper: path.noStep,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := filter.ApplyOf[T](src, dst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A sanity assertion disguised as a test so bench runs that include
// tests verify the public API is alive.
func TestBenchInputsAreSane(t *testing.T) {
	g := sfcmem.MRIPhantom(sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8), 1, 0.05)
	lo, hi := g.MinMax()
	if lo < 0 || hi > 1 || hi == 0 {
		t.Errorf("phantom range [%v, %v]", lo, hi)
	}
}

// --- A4: renderer empty-space-skipping ablation ------------------------

func BenchmarkAblationEmptySkip(b *testing.B) {
	const n = 64
	vol := plumeFor(b, core.ZKind, n)
	cam := render.Orbit(1, 8, n, n, n, 128, 128)
	tf := render.DefaultTransferFunc()
	for _, skip := range []bool{false, true} {
		name := "off"
		if skip {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im, err := render.Render(vol, cam, tf, render.Options{Workers: 4, EmptySkip: skip})
				if err != nil {
					b.Fatal(err)
				}
				benchImgSum += im.MeanAlpha()
			}
		})
	}
}

// --- A5: Gaussian separability ablation --------------------------------

func BenchmarkAblationSeparableGaussian(b *testing.B) {
	const n = 48
	src := mriFor(b, core.ArrayKind, n)
	dst := grid.New(core.NewArrayOrder(n, n, n))
	o := filter.Options{Radius: 3, SigmaSpatial: 2, Workers: 4}
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := filter.GaussianConvolve(src, dst, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := filter.GaussianSeparable(src, dst, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A6: work-distribution ablation (paper §III: dynamic pool wins) ----

func BenchmarkAblationSchedule(b *testing.B) {
	const n = 48
	vol := plumeFor(b, core.ZKind, n)
	cam := render.Orbit(2, 8, n, n, n, 128, 128)
	tf := render.DefaultTransferFunc()
	for _, s := range []struct {
		name string
		sch  render.Schedule
	}{{"dynamic", render.DynamicSchedule}, {"static", render.StaticSchedule}} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				im, err := render.Render(vol, cam, tf, render.Options{Workers: 4, Schedule: s.sch})
				if err != nil {
					b.Fatal(err)
				}
				benchImgSum += im.MeanAlpha()
			}
		})
	}
}

// --- A11: generalized-Morton (BitLayout) cost and tuning payoff ---------

// BenchmarkBitLayoutIndex prices the software-PDEP Index against the
// native Z-order dilation tables at 256³: the round-robin spec computes
// the same curve, so the delta is pure parameterization overhead.
func BenchmarkBitLayoutIndex(b *testing.B) {
	rr, err := core.NewBitLayout(256, 256, 256, core.RoundRobinSpec(256, 256, 256))
	if err != nil {
		b.Fatal(err)
	}
	brick, err := core.NewBitLayout(256, 256, 256, "xyzxyz"+"xxxxxx"+"yyyyyy"+"zzzzzz")
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range []struct {
		name   string
		layout core.Layout
	}{
		{"zorder", core.NewZOrder(256, 256, 256)},
		{"bit-zspine", rr},
		{"bit-brick4", brick},
	} {
		b.Run(l.name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += l.layout.Index(i&255, i>>8&255, i>>16&255)
			}
			benchImgSum += float64(sink & 1)
		})
	}
}

// BenchmarkBitLayoutBilatR5 runs the heavyweight bilateral configuration
// over BitLayout through the masked neighbor-stepping walk — the cost a
// tuned interleave pays at kernel time, comparable against
// BilateralStepR5's zorder/step cell.
func BenchmarkBitLayoutBilatR5(b *testing.B) {
	const n = 32
	for _, spec := range []struct {
		name  string
		order string
	}{
		{"zspine", core.RoundRobinSpec(n, n, n)},
		// The 16³ tune-smoke winner's shape (z-major low bits for the
		// z-inner stencil), lifted to 32³'s five bits per axis.
		{"tuned", "zzzzzyxyyyyxxxx"},
	} {
		l, err := core.NewBitLayout(n, n, n, spec.order)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.name, func(b *testing.B) {
			src := volume.MRIPhantom(l, 1, 0.05)
			dst := grid.New(l)
			opts := filter.Options{
				Radius: 5, Axis: parallel.AxisX, Order: filter.XYZ, Workers: 4,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := filter.Apply(src, dst, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
