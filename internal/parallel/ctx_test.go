package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ctxRunner adapts the four *Ctx entry points to one shape for
// table-driven tests.
type ctxRunner struct {
	name string
	run  func(ctx context.Context, items, workers int, fn func(w, i int)) error
}

func ctxRunners() []ctxRunner {
	return []ctxRunner{
		{"round-robin", RoundRobinCtx},
		{"dynamic", DynamicCtx},
		{"round-robin-instrumented", func(ctx context.Context, items, workers int, fn func(w, i int)) error {
			_, err := RoundRobinInstrumentedCtx(ctx, items, workers, fn, nil)
			return err
		}},
		{"dynamic-instrumented", func(ctx context.Context, items, workers int, fn func(w, i int)) error {
			_, err := DynamicInstrumentedCtx(ctx, items, workers, fn, nil)
			return err
		}},
	}
}

func TestCtxBackgroundRunsEverything(t *testing.T) {
	for _, r := range ctxRunners() {
		for _, workers := range []int{1, 3} {
			const items = 100
			var mu sync.Mutex
			counts := make([]int, items)
			err := r.run(context.Background(), items, workers, func(_, i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", r.name, workers, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Errorf("%s workers=%d: item %d ran %d times", r.name, workers, i, c)
				}
			}
		}
	}
}

func TestCtxExpiredDeadlineRunsNothing(t *testing.T) {
	for _, r := range ctxRunners() {
		for _, workers := range []int{1, 4} {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			var ran atomic.Int64
			err := r.run(ctx, 50, workers, func(_, _ int) { ran.Add(1) })
			cancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("%s workers=%d: err %v, want DeadlineExceeded", r.name, workers, err)
			}
			if n := ran.Load(); n != 0 {
				t.Errorf("%s workers=%d: %d items ran under an expired deadline", r.name, workers, n)
			}
		}
	}
}

// TestCtxCancelStopsHandout cancels mid-flight and checks that no new
// items are handed out after the cancellation is observable: at most the
// items already in flight (one per worker) may still complete.
func TestCtxCancelStopsHandout(t *testing.T) {
	for _, r := range ctxRunners() {
		for _, workers := range []int{1, 4} {
			const items = 10_000
			ctx, cancel := context.WithCancel(context.Background())
			var started atomic.Int64
			var once sync.Once
			err := r.run(ctx, items, workers, func(_, _ int) {
				started.Add(1)
				once.Do(cancel)
				// Give every other worker time to observe the closed done
				// channel before the queue could drain naturally.
				time.Sleep(time.Millisecond)
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: err %v, want Canceled", r.name, workers, err)
			}
			// The canceling item plus at most one in-flight item per other
			// worker; anything near `items` means handout never stopped.
			if n := started.Load(); n > int64(2*workers) {
				t.Errorf("%s workers=%d: %d items started after cancel (want <= %d)",
					r.name, workers, n, 2*workers)
			}
		}
	}
}

// TestCtxCancelNoGoroutineLeak repeatedly cancels mid-run and checks the
// goroutine count settles back to the baseline.
func TestCtxCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, r := range ctxRunners() {
		for i := 0; i < 10; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			var once sync.Once
			_ = r.run(ctx, 1000, 4, func(_, _ int) { once.Do(cancel) })
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellations", before, runtime.NumGoroutine())
}

// TestCtxInstrumentedPartialStats checks that a cancelled instrumented
// run still reports coherent per-worker stats for the items that ran.
func TestCtxInstrumentedPartialStats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	st, err := DynamicInstrumentedCtx(ctx, 1000, 2, func(_, _ int) {
		once.Do(cancel)
		time.Sleep(time.Millisecond)
	}, nil)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want Canceled", err)
	}
	total := 0
	for _, w := range st.Workers {
		total += w.Items
	}
	if total < 1 || total >= 1000 {
		t.Errorf("partial run executed %d items, want 1 <= n < 1000", total)
	}
	if st.Strategy != "dynamic" || len(st.Workers) != 2 {
		t.Errorf("stats %+v", st)
	}
}
