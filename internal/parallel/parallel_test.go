package parallel

import (
	"sync"
	"testing"
)

func TestRoundRobinCoversAllItemsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		const items = 100
		var mu sync.Mutex
		counts := make([]int, items)
		RoundRobin(items, workers, func(_, i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRoundRobinAssignmentPattern(t *testing.T) {
	const items, workers = 10, 3
	var mu sync.Mutex
	owner := make([]int, items)
	RoundRobin(items, workers, func(w, i int) {
		mu.Lock()
		owner[i] = w
		mu.Unlock()
	})
	for i := 0; i < items; i++ {
		if owner[i] != i%workers {
			t.Errorf("item %d owned by worker %d, want %d", i, owner[i], i%workers)
		}
	}
}

func TestDynamicCoversAllItemsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 32} {
		const items = 500
		var mu sync.Mutex
		counts := make([]int, items)
		Dynamic(items, workers, func(_, i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestZeroItems(t *testing.T) {
	ran := false
	RoundRobin(0, 4, func(_, _ int) { ran = true })
	Dynamic(0, 4, func(_, _ int) { ran = true })
	if ran {
		t.Error("callback ran with zero items")
	}
}

func TestInvalidWorkersPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RoundRobin(1, 0, func(_, _ int) {}) },
		func() { Dynamic(1, 0, func(_, _ int) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for 0 workers")
				}
			}()
			fn()
		}()
	}
}

func TestPencilCount(t *testing.T) {
	if n := PencilCount(4, 5, 6, AxisX); n != 30 {
		t.Errorf("AxisX count %d", n)
	}
	if n := PencilCount(4, 5, 6, AxisY); n != 24 {
		t.Errorf("AxisY count %d", n)
	}
	if n := PencilCount(4, 5, 6, AxisZ); n != 20 {
		t.Errorf("AxisZ count %d", n)
	}
}

// Walking every pencil must visit every voxel exactly once, per axis.
func TestPencilsTileTheVolume(t *testing.T) {
	const nx, ny, nz = 5, 4, 3
	for _, axis := range []Axis{AxisX, AxisY, AxisZ} {
		visited := make(map[[3]int]int)
		n := PencilCount(nx, ny, nz, axis)
		di, dj, dk := PencilStep(axis)
		for p := 0; p < n; p++ {
			i, j, k, length := PencilStart(nx, ny, nz, axis, p)
			for s := 0; s < length; s++ {
				visited[[3]int{i, j, k}]++
				i, j, k = i+di, j+dj, k+dk
			}
		}
		if len(visited) != nx*ny*nz {
			t.Errorf("%v: visited %d cells, want %d", axis, len(visited), nx*ny*nz)
		}
		for c, n := range visited {
			if n != 1 {
				t.Errorf("%v: cell %v visited %d times", axis, c, n)
			}
		}
	}
}

func TestAxisStringAndParse(t *testing.T) {
	for _, a := range []Axis{AxisX, AxisY, AxisZ} {
		got, err := ParseAxis(a.String())
		if err != nil || got != a {
			t.Errorf("round-trip %v: %v, %v", a, got, err)
		}
	}
	// Case and surrounding whitespace fold, like core.ParseKind.
	for s, want := range map[string]Axis{
		"PX": AxisX, " px ": AxisX, "X": AxisX,
		"Py": AxisY, "y": AxisY,
		"\tPZ\n": AxisZ, "Z": AxisZ,
	} {
		got, err := ParseAxis(s)
		if err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAxis("pw"); err == nil {
		t.Error("ParseAxis(pw) should fail")
	}
}

func TestTilesCoverImage(t *testing.T) {
	cases := []struct{ w, h, size int }{
		{64, 64, 32}, {100, 70, 32}, {31, 31, 32}, {1, 1, 32}, {96, 96, 96},
	}
	for _, c := range cases {
		ts := Tiles(c.w, c.h, c.size)
		covered := make([][]bool, c.h)
		for y := range covered {
			covered[y] = make([]bool, c.w)
		}
		for _, tl := range ts {
			if tl.X0 < 0 || tl.Y0 < 0 || tl.X1 > c.w || tl.Y1 > c.h || tl.X0 >= tl.X1 || tl.Y0 >= tl.Y1 {
				t.Fatalf("%dx%d/%d: bad tile %+v", c.w, c.h, c.size, tl)
			}
			for y := tl.Y0; y < tl.Y1; y++ {
				for x := tl.X0; x < tl.X1; x++ {
					if covered[y][x] {
						t.Fatalf("%dx%d/%d: pixel (%d,%d) covered twice", c.w, c.h, c.size, x, y)
					}
					covered[y][x] = true
				}
			}
		}
		for y := 0; y < c.h; y++ {
			for x := 0; x < c.w; x++ {
				if !covered[y][x] {
					t.Fatalf("%dx%d/%d: pixel (%d,%d) uncovered", c.w, c.h, c.size, x, y)
				}
			}
		}
	}
}

func TestTilesPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for tile size 0")
		}
	}()
	Tiles(10, 10, 0)
}
