// Package parallel implements the paper's two shared-memory work
// distribution strategies:
//
//   - round-robin pencil assignment (§III-A): the bilateral filter hands
//     out 1-D "pencils" of output voxels — width-, height-, or depth-rows
//     — to threads in round-robin order;
//   - a dynamic worker-pool queue (§III-B): the volume renderer's 32×32
//     image tiles are served from a shared queue, the strategy the paper
//     cites as its reason for using raw threads over OpenMP.
//
// Both run the caller's function on plain goroutines; with one worker
// they degrade to a deterministic serial loop.
package parallel

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Axis selects the pencil direction.
type Axis int

// Pencil axes. The paper's configurations are AxisX ("px", width rows,
// favorable for array order) and AxisZ ("pz", depth rows, the
// against-the-grain case).
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String returns the paper's label for the axis ("px", "py", "pz").
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "px"
	case AxisY:
		return "py"
	case AxisZ:
		return "pz"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// ParseAxis maps "px"/"x", "py"/"y", "pz"/"z" to an Axis, folding case
// and surrounding whitespace exactly like core.ParseKind and
// filter.ParseOrder.
func ParseAxis(s string) (Axis, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "px", "x":
		return AxisX, nil
	case "py", "y":
		return AxisY, nil
	case "pz", "z":
		return AxisZ, nil
	}
	return 0, fmt.Errorf("parallel: unknown axis %q", s)
}

// PencilCount returns how many pencils an nx×ny×nz volume decomposes
// into along the given axis (the product of the two other extents).
func PencilCount(nx, ny, nz int, axis Axis) int {
	switch axis {
	case AxisX:
		return ny * nz
	case AxisY:
		return nx * nz
	case AxisZ:
		return nx * ny
	}
	panic("parallel: invalid axis")
}

// PencilStart returns the fixed coordinates of pencil p and the extent
// of its varying axis. For AxisX, pencil p covers (0..nx-1, j, k) with
// j = p mod ny, k = p / ny; analogously for the other axes.
func PencilStart(nx, ny, nz int, axis Axis, p int) (i, j, k, length int) {
	switch axis {
	case AxisX:
		return 0, p % ny, p / ny, nx
	case AxisY:
		return p % nx, 0, p / nx, ny
	case AxisZ:
		return p % nx, p / nx, 0, nz
	}
	panic("parallel: invalid axis")
}

// PencilStep returns the per-element index increment along the pencil.
func PencilStep(axis Axis) (di, dj, dk int) {
	switch axis {
	case AxisX:
		return 1, 0, 0
	case AxisY:
		return 0, 1, 0
	case AxisZ:
		return 0, 0, 1
	}
	panic("parallel: invalid axis")
}

// RoundRobin runs fn(workerID, item) for every item in [0, items) using
// the given number of workers; worker w handles items w, w+workers,
// w+2*workers, ... in order — the paper's round-robin pencil handout.
// With workers == 1 it is a plain deterministic loop. It panics if
// workers < 1.
func RoundRobin(items, workers int, fn func(worker, item int)) {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	if workers == 1 {
		for i := 0; i < items; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += workers {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Dynamic runs fn(workerID, item) for every item in [0, items) using a
// shared atomic queue: each worker repeatedly claims the next unclaimed
// item. This is the paper's worker-pool model for the renderer's tile
// decomposition. It panics if workers < 1.
func Dynamic(items, workers int, fn func(worker, item int)) {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	if workers == 1 {
		for i := 0; i < items; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= items {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// Observer receives one completed work item from an instrumented run:
// which worker ran item, when it started, and how long it took. Passing
// a nil Observer disables per-item timing entirely, leaving only the
// two per-worker clock reads.
type Observer func(worker, item int, start time.Time, dur time.Duration)

// WorkerStat is one worker's share of an instrumented run.
type WorkerStat struct {
	// Items is how many work items the worker executed.
	Items int `json:"items"`
	// Busy is the worker's span from its first item start to its last
	// item end — for these strategies workers never block mid-run, so
	// the span is working time. A worker that got no items has zero.
	Busy time.Duration `json:"busy_ns"`
}

// Stats summarizes an instrumented run. The paper's §III compares the
// round-robin and dynamic-queue strategies by how evenly they spread
// work; ImbalanceFactor is that comparison as a single number.
type Stats struct {
	// Strategy is "round-robin" or "dynamic".
	Strategy string `json:"strategy"`
	// Items is the total work-item count.
	Items int `json:"items"`
	// Elapsed is the wall-clock of the whole run (all workers).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Workers holds one entry per worker.
	Workers []WorkerStat `json:"workers"`
}

// ImbalanceFactor returns max(busy)/mean(busy) across workers: 1.0 is a
// perfectly balanced run, W is one worker doing everything while W-1
// idle. Returns 0 when nothing ran.
func (s Stats) ImbalanceFactor() float64 {
	var sum, max time.Duration
	for _, w := range s.Workers {
		sum += w.Busy
		if w.Busy > max {
			max = w.Busy
		}
	}
	if sum == 0 || len(s.Workers) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Workers))
	return float64(max) / mean
}

// instrumentedShell runs body once per worker (inline for one worker,
// preserving the plain strategies' serial determinism) and assembles the
// Stats. Each worker's bookkeeping is local until its single WorkerStat
// store at the end, so the shell adds no shared-memory traffic to the
// measured loops.
func instrumentedShell(strategy string, items, workers int, body func(w int) WorkerStat) Stats {
	st := Stats{Strategy: strategy, Items: items, Workers: make([]WorkerStat, workers)}
	begin := time.Now()
	if workers == 1 {
		st.Workers[0] = body(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st.Workers[w] = body(w)
			}(w)
		}
		wg.Wait()
	}
	st.Elapsed = time.Since(begin)
	return st
}

// RoundRobinInstrumented is RoundRobin with per-worker accounting: it
// returns each worker's item count and busy time, and optionally reports
// every completed item to obs. Semantics (ordering, determinism with one
// worker, panics) match RoundRobin. With a nil obs the measured loop is
// the plain strategy's loop plus a local counter and two clock reads per
// worker — overhead below the benchmarks' noise floor.
func RoundRobinInstrumented(items, workers int, fn func(worker, item int), obs Observer) Stats {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	if obs == nil {
		return instrumentedShell("round-robin", items, workers, func(w int) (ws WorkerStat) {
			if w >= items {
				return
			}
			first := time.Now()
			for i := w; i < items; i += workers {
				fn(w, i)
				ws.Items++
			}
			ws.Busy = time.Since(first)
			return
		})
	}
	return instrumentedShell("round-robin", items, workers, func(w int) (ws WorkerStat) {
		var first, last time.Time
		for i := w; i < items; i += workers {
			start := time.Now()
			if ws.Items == 0 {
				first = start
			}
			fn(w, i)
			// Take the end stamp before handing the item to obs, so the
			// observer's own execution time never lands in Busy (or in
			// the item duration it is reported).
			last = time.Now()
			obs(w, i, start, last.Sub(start))
			ws.Items++
		}
		if ws.Items > 0 {
			ws.Busy = last.Sub(first)
		}
		return
	})
}

// DynamicInstrumented is Dynamic with per-worker accounting; see
// RoundRobinInstrumented.
func DynamicInstrumented(items, workers int, fn func(worker, item int), obs Observer) Stats {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	if workers == 1 {
		// Like plain Dynamic, a single worker drains the queue in order
		// with no atomics.
		return instrumentedShell("dynamic", items, 1, func(_ int) (ws WorkerStat) {
			if items == 0 {
				return
			}
			first := time.Now()
			if obs == nil {
				for i := 0; i < items; i++ {
					fn(0, i)
					ws.Items++
				}
				ws.Busy = time.Since(first)
			} else {
				var last time.Time
				for i := 0; i < items; i++ {
					start := time.Now()
					fn(0, i)
					// End stamp before obs: see RoundRobinInstrumented.
					last = time.Now()
					obs(0, i, start, last.Sub(start))
					ws.Items++
				}
				ws.Busy = last.Sub(first)
			}
			return
		})
	}
	var next int64
	claim := func() int {
		i := int(atomic.AddInt64(&next, 1) - 1)
		if i >= items {
			return -1
		}
		return i
	}
	if obs == nil {
		return instrumentedShell("dynamic", items, workers, func(w int) (ws WorkerStat) {
			var first time.Time
			for {
				i := claim()
				if i < 0 {
					break
				}
				if ws.Items == 0 {
					first = time.Now()
				}
				fn(w, i)
				ws.Items++
			}
			if ws.Items > 0 {
				ws.Busy = time.Since(first)
			}
			return
		})
	}
	return instrumentedShell("dynamic", items, workers, func(w int) (ws WorkerStat) {
		var first, last time.Time
		for {
			i := claim()
			if i < 0 {
				break
			}
			start := time.Now()
			if ws.Items == 0 {
				first = start
			}
			fn(w, i)
			// End stamp before obs: see RoundRobinInstrumented.
			last = time.Now()
			obs(w, i, start, last.Sub(start))
			ws.Items++
		}
		if ws.Items > 0 {
			ws.Busy = last.Sub(first)
		}
		return
	})
}

// Tile is a rectangular region of an image: pixels [X0,X1) × [Y0,Y1).
type Tile struct {
	X0, Y0, X1, Y1 int
}

// Tiles decomposes a width×height image into size×size tiles (the
// paper uses 32×32), with partial tiles at the right/bottom edges.
// Tiles are ordered row-major.
func Tiles(width, height, size int) []Tile {
	if size <= 0 {
		panic("parallel: tile size must be positive")
	}
	var ts []Tile
	for y := 0; y < height; y += size {
		for x := 0; x < width; x += size {
			t := Tile{X0: x, Y0: y, X1: x + size, Y1: y + size}
			if t.X1 > width {
				t.X1 = width
			}
			if t.Y1 > height {
				t.Y1 = height
			}
			ts = append(ts, t)
		}
	}
	return ts
}
