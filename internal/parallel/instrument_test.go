package parallel

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestInstrumentedCoverAllItemsOnce(t *testing.T) {
	run := map[string]func(items, workers int, fn func(w, i int), obs Observer) Stats{
		"round-robin": RoundRobinInstrumented,
		"dynamic":     DynamicInstrumented,
	}
	for name, f := range run {
		for _, workers := range []int{1, 2, 3, 8} {
			const items = 200
			var mu sync.Mutex
			counts := make([]int, items)
			st := f(items, workers, func(_, i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			}, nil)
			for i, c := range counts {
				if c != 1 {
					t.Errorf("%s workers=%d: item %d ran %d times", name, workers, i, c)
				}
			}
			if st.Strategy != name || st.Items != items || len(st.Workers) != workers {
				t.Errorf("%s workers=%d: stats %+v", name, workers, st)
			}
			total := 0
			for _, w := range st.Workers {
				total += w.Items
			}
			if total != items {
				t.Errorf("%s workers=%d: worker items sum %d, want %d", name, workers, total, items)
			}
			if st.Elapsed <= 0 {
				t.Errorf("%s: non-positive elapsed %v", name, st.Elapsed)
			}
		}
	}
}

func TestRoundRobinInstrumentedAssignmentPattern(t *testing.T) {
	const items, workers = 12, 4
	var mu sync.Mutex
	owner := make([]int, items)
	st := RoundRobinInstrumented(items, workers, func(w, i int) {
		mu.Lock()
		owner[i] = w
		mu.Unlock()
	}, nil)
	for i := range owner {
		if owner[i] != i%workers {
			t.Errorf("item %d owned by %d, want %d", i, owner[i], i%workers)
		}
	}
	for w, ws := range st.Workers {
		if ws.Items != items/workers {
			t.Errorf("worker %d ran %d items, want %d", w, ws.Items, items/workers)
		}
		if ws.Busy <= 0 {
			t.Errorf("worker %d has zero busy time", w)
		}
	}
}

func TestInstrumentedSingleWorkerDeterministic(t *testing.T) {
	var order []int
	RoundRobinInstrumented(5, 1, func(_, i int) { order = append(order, i) }, nil)
	for i, got := range order {
		if got != i {
			t.Fatalf("single-worker order %v", order)
		}
	}
	order = nil
	DynamicInstrumented(5, 1, func(_, i int) { order = append(order, i) }, nil)
	for i, got := range order {
		if got != i {
			t.Fatalf("single-worker dynamic order %v", order)
		}
	}
}

func TestObserverSeesEveryItem(t *testing.T) {
	const items, workers = 50, 4
	var mu sync.Mutex
	seen := make([]int, items)
	obs := func(w, i int, start time.Time, dur time.Duration) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
		if start.IsZero() || dur < 0 {
			t.Errorf("item %d: bad observation start=%v dur=%v", i, start, dur)
		}
	}
	DynamicInstrumented(items, workers, func(_, _ int) {}, obs)
	RoundRobinInstrumented(items, workers, func(_, _ int) {}, obs)
	for i, c := range seen {
		if c != 2 {
			t.Errorf("item %d observed %d times, want 2", i, c)
		}
	}
}

func TestImbalanceFactor(t *testing.T) {
	// Perfectly balanced.
	s := Stats{Workers: []WorkerStat{{Items: 1, Busy: time.Second}, {Items: 1, Busy: time.Second}}}
	if f := s.ImbalanceFactor(); f != 1 {
		t.Errorf("balanced factor %v, want 1", f)
	}
	// One worker does everything: factor = W.
	s = Stats{Workers: []WorkerStat{{Busy: time.Second}, {}, {}, {}}}
	if f := s.ImbalanceFactor(); f != 4 {
		t.Errorf("degenerate factor %v, want 4", f)
	}
	// Empty stats.
	if f := (Stats{}).ImbalanceFactor(); f != 0 {
		t.Errorf("empty factor %v, want 0", f)
	}
}

func TestImbalanceDetectsSkewedLoad(t *testing.T) {
	// Item 0 is 100× the cost of the rest; round-robin pins it to worker
	// 0 along with an equal share of cheap items, so worker 0's busy time
	// dominates and the factor must exceed 1 clearly.
	const items, workers = 16, 4
	work := func(_, i int) {
		d := time.Microsecond
		if i == 0 {
			d = 2 * time.Millisecond
		}
		busyWait(d)
	}
	st := RoundRobinInstrumented(items, workers, work, nil)
	if f := st.ImbalanceFactor(); f < 1.5 {
		t.Errorf("skewed round-robin imbalance %v, want >= 1.5", f)
	}
}

// busyWait spins rather than sleeping so busy time is real CPU time and
// not scheduler latency.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestInstrumentedZeroItems(t *testing.T) {
	st := DynamicInstrumented(0, 3, func(_, _ int) { t.Error("ran") }, nil)
	if st.ImbalanceFactor() != 0 {
		t.Errorf("zero-item imbalance %v", st.ImbalanceFactor())
	}
	for _, w := range st.Workers {
		if w.Items != 0 || w.Busy != 0 {
			t.Errorf("zero-item worker stat %+v", w)
		}
	}
}

func TestInstrumentedInvalidWorkersPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RoundRobinInstrumented(1, 0, func(_, _ int) {}, nil) },
		func() { DynamicInstrumented(1, 0, func(_, _ int) {}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for 0 workers")
				}
			}()
			fn()
		}()
	}
}

// benchWork is a small fixed workload per item (~400ns of arithmetic on
// a private accumulator), sized like a cheap pencil so the benchmarks
// expose scheduling overhead rather than hiding it behind heavy items.
var benchSink [64]float64

func benchWork(w, i int) {
	x := float64(i) + 1
	for n := 0; n < 100; n++ {
		x = x*1.000001 + 0.5
	}
	benchSink[w%len(benchSink)] = x
}

const benchItems = 4096

// benchWorkers matches the available parallelism: oversubscribing (e.g.
// 8 workers on a 1-CPU runner) would make these benchmarks measure Go
// scheduler churn instead of the instrumentation under test.
func benchWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

func BenchmarkRoundRobin(b *testing.B) {
	w := benchWorkers()
	for n := 0; n < b.N; n++ {
		RoundRobin(benchItems, w, benchWork)
	}
}

func BenchmarkRoundRobinInstrumented(b *testing.B) {
	w := benchWorkers()
	for n := 0; n < b.N; n++ {
		RoundRobinInstrumented(benchItems, w, benchWork, nil)
	}
}

func BenchmarkDynamic(b *testing.B) {
	w := benchWorkers()
	for n := 0; n < b.N; n++ {
		Dynamic(benchItems, w, benchWork)
	}
}

func BenchmarkDynamicInstrumented(b *testing.B) {
	w := benchWorkers()
	for n := 0; n < b.N; n++ {
		DynamicInstrumented(benchItems, w, benchWork, nil)
	}
}

// TestObserverTimeNotInBusy pins the satellite fix for instrumented-run
// timing skew: a slow Observer must not inflate WorkerStat.Busy (and
// through it ImbalanceFactor), because the end timestamp is taken before
// the observer callback runs. One item per worker makes the expectation
// exact: Busy is that single item's duration, not item + observer.
func TestObserverTimeNotInBusy(t *testing.T) {
	const itemSleep = 1 * time.Millisecond
	const obsSleep = 60 * time.Millisecond
	slowObs := func(_, _ int, _ time.Time, d time.Duration) {
		if d >= obsSleep {
			t.Errorf("reported item duration %v includes observer time", d)
		}
		time.Sleep(obsSleep)
	}
	run := map[string]func(items, workers int, fn func(w, i int), obs Observer) Stats{
		"round-robin": RoundRobinInstrumented,
		"dynamic":     DynamicInstrumented,
	}
	for name, f := range run {
		for _, workers := range []int{1, 2} {
			// items == 1: exactly one worker runs exactly one item, so its
			// Busy span contains no inter-item observer gaps.
			st := f(1, workers, func(_, _ int) { time.Sleep(itemSleep) }, slowObs)
			for w, ws := range st.Workers {
				if ws.Items == 0 {
					continue
				}
				if ws.Busy >= obsSleep/2 {
					t.Errorf("%s workers=%d: worker %d Busy %v includes observer time (item ~%v, obs %v)",
						name, workers, w, ws.Busy, itemSleep, obsSleep)
				}
			}
		}
	}
}
