package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// The *Ctx variants add cooperative cancellation to the two strategies:
// every worker checks the context's done channel before starting each
// work item and stops claiming further items once it closes. A work
// item that has already started runs to completion — items are the
// cancellation granule — so callers with long items (whole pencils,
// whole tiles) observe cancellation within one item's latency.
//
// Cancellation never leaks goroutines: workers exit their loops on the
// done check and the call returns only after every worker has finished.
// With a context that can never be cancelled (ctx.Done() == nil, e.g.
// context.Background()) the *Ctx variants delegate to the plain
// strategies, so the non-cancellable paths are exactly the code the
// benchmarks measure.

// RoundRobinCtx is RoundRobin with cooperative cancellation. It returns
// nil when every item ran, or ctx.Err() when cancellation stopped any
// worker before it finished its items.
func RoundRobinCtx(ctx context.Context, items, workers int, fn func(worker, item int)) error {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	done := ctx.Done()
	if done == nil {
		RoundRobin(items, workers, fn)
		return nil
	}
	if workers == 1 {
		for i := 0; i < items; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(0, i)
		}
		return nil
	}
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < items; i += workers {
				select {
				case <-done:
					aborted.Store(true)
					return
				default:
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	return nil
}

// DynamicCtx is Dynamic with cooperative cancellation: once the done
// channel closes, no worker claims another item from the shared queue.
// It returns nil when every item ran, or ctx.Err() when cancellation
// stopped any worker first.
func DynamicCtx(ctx context.Context, items, workers int, fn func(worker, item int)) error {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	done := ctx.Done()
	if done == nil {
		Dynamic(items, workers, fn)
		return nil
	}
	if workers == 1 {
		for i := 0; i < items; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(0, i)
		}
		return nil
	}
	var next int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					aborted.Store(true)
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= items {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	return nil
}

// RoundRobinInstrumentedCtx is RoundRobinInstrumented with cooperative
// cancellation. The returned Stats cover whatever ran before the
// cancellation took effect; the error reporting matches RoundRobinCtx.
func RoundRobinInstrumentedCtx(ctx context.Context, items, workers int, fn func(worker, item int), obs Observer) (Stats, error) {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	done := ctx.Done()
	if done == nil {
		return RoundRobinInstrumented(items, workers, fn, obs), nil
	}
	var aborted atomic.Bool
	st := instrumentedShell("round-robin", items, workers, func(w int) (ws WorkerStat) {
		var first, last time.Time
		for i := w; i < items; i += workers {
			select {
			case <-done:
				aborted.Store(true)
				if ws.Items > 0 {
					ws.Busy = last.Sub(first)
				}
				return
			default:
			}
			start := time.Now()
			if ws.Items == 0 {
				first = start
			}
			fn(w, i)
			last = time.Now()
			if obs != nil {
				obs(w, i, start, last.Sub(start))
			}
			ws.Items++
		}
		if ws.Items > 0 {
			ws.Busy = last.Sub(first)
		}
		return
	})
	if aborted.Load() {
		return st, ctx.Err()
	}
	return st, nil
}

// DynamicInstrumentedCtx is DynamicInstrumented with cooperative
// cancellation; see RoundRobinInstrumentedCtx.
func DynamicInstrumentedCtx(ctx context.Context, items, workers int, fn func(worker, item int), obs Observer) (Stats, error) {
	if workers < 1 {
		panic("parallel: workers must be >= 1")
	}
	done := ctx.Done()
	if done == nil {
		return DynamicInstrumented(items, workers, fn, obs), nil
	}
	var next int64
	claim := func() int {
		i := int(atomic.AddInt64(&next, 1) - 1)
		if i >= items {
			return -1
		}
		return i
	}
	var aborted atomic.Bool
	st := instrumentedShell("dynamic", items, workers, func(w int) (ws WorkerStat) {
		var first, last time.Time
		for {
			select {
			case <-done:
				aborted.Store(true)
				if ws.Items > 0 {
					ws.Busy = last.Sub(first)
				}
				return
			default:
			}
			i := claim()
			if i < 0 {
				break
			}
			start := time.Now()
			if ws.Items == 0 {
				first = start
			}
			fn(w, i)
			last = time.Now()
			if obs != nil {
				obs(w, i, start, last.Sub(start))
			}
			ws.Items++
		}
		if ws.Items > 0 {
			ws.Busy = last.Sub(first)
		}
		return
	})
	if aborted.Load() {
		return st, ctx.Err()
	}
	return st, nil
}
