// Package store is sfcserved's tiered volume storage: a pluggable
// VolumeStore interface over two stacked tiers — a byte-budgeted RAM
// tier (an LRU over resident volumes, the eviction idiom of
// internal/rcache) above a disk tier that persists each volume as
// SFC-ordered brick files plus a manifest (internal/volume's brick
// codec).
//
// Because grids are stored in curve order in memory, the disk tier
// inherits the paper's locality argument for free: bricks are
// contiguous curve ranges of the backing slice, so persisting a volume
// is a sequential copy and a cold load is sequential I/O that arrives
// already laid out for the kernels. Datasets can therefore outgrow
// RAM: a volume evicted from the RAM tier is transparently
// demand-loaded from its bricks on next access, with single-flight
// coalescing so a request stampede loads it once.
//
// Semantics preserved from the original in-memory map:
//
//   - Grids are immutable once stored; Put replaces whole volumes.
//   - Put assigns the volume's generation: 1 on first store, strictly
//     increasing on every replacement of the name. Generations also
//     survive Delete (in-process tombstones) and — when a data dir is
//     configured — restarts (persisted manifests, including tombstone
//     manifests for deleted names), so a response-cache digest minted
//     for old contents can never validate against new ones.
//   - With no data dir, NewMemory reproduces the old behavior
//     byte-for-byte: everything resident, nothing evicted, nothing
//     survives the process.
package store

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sfcmem"
	"sfcmem/internal/metrics"
	"sfcmem/internal/volume"
)

// ErrNotFound reports a name the store has never held or has deleted.
var ErrNotFound = errors.New("store: volume not found")

// Volume is one named, immutable volume. Gen is assigned by Put and
// immutable afterwards; callers must not mutate any field (the Grid
// least of all — concurrent renders share it without locks).
type Volume struct {
	Name    string
	Dataset string // "plume", "phantom", "upload", or "<src>+<kernel>"
	Layout  string // layout name as given in the volume spec
	Grid    *sfcmem.AnyGrid
	// Gen is the volume's generation; response-cache digests embed it,
	// so replacing a volume makes every cached result for the old
	// contents unreachable without an explicit purge.
	Gen uint64
	// FilterKey, when non-empty, is the response-cache digest of the
	// /filter run that produced this volume; see server.dstHoldsResult.
	FilterKey string
}

// Info is a volume's metadata — the /volumes listing entry, also
// available for non-resident volumes without touching their bricks.
type Info struct {
	Name     string `json:"name"`
	Dataset  string `json:"dataset"`
	Layout   string `json:"layout"`
	Dtype    string `json:"dtype"`
	Nx       int    `json:"nx"`
	Ny       int    `json:"ny"`
	Nz       int    `json:"nz"`
	Bytes    int64  `json:"bytes"`
	Gen      uint64 `json:"gen"`
	Resident bool   `json:"resident"`
	// FilterKey travels with the metadata but is not part of the
	// public listing (it embeds a cache digest).
	FilterKey string `json:"-"`
}

// VolumeStore is the pluggable storage interface the serving layer
// programs against. Implementations must be safe for concurrent use.
type VolumeStore interface {
	// Get returns the named volume, demand-loading it from the disk
	// tier if it is not resident. ErrNotFound means the name is
	// unknown (or deleted); any other error is a failed load (I/O,
	// integrity) and the caller must not serve data for the name.
	Get(name string) (*Volume, error)
	// Put stores v, replacing any volume of the same name, assigns
	// v.Gen, and — when a disk tier is configured — persists it before
	// returning. On error the store keeps its previous contents.
	Put(v *Volume) error
	// Delete removes the volume from every tier. The name's generation
	// floor is retained so a later re-create gets a strictly higher
	// generation. Returns ErrNotFound for unknown names.
	Delete(name string) error
	// Stat returns a volume's metadata without loading its samples.
	Stat(name string) (Info, bool)
	// List returns every live volume's metadata, sorted by name.
	List() []Info
}

// DefaultBrickBytes is the default brick payload size. 4 MiB keeps a
// 256³ float32 volume at 16 bricks — large enough that cold loads are
// a handful of sequential reads, small enough that integrity failures
// localize.
const DefaultBrickBytes = 4 << 20

// Options configures Open.
type Options struct {
	// RAMBytes is the RAM tier's byte budget. <= 0 means unbounded
	// (every volume stays resident; the disk tier is durability only).
	RAMBytes int64
	// BrickBytes is the brick payload size for newly persisted
	// volumes; 0 uses DefaultBrickBytes.
	BrickBytes int
	// Metrics, when non-nil, receives the store.* counters and gauges.
	Metrics *metrics.Registry
}

// entry is one known name. It outlives Delete (deleted entries carry
// the generation floor) and residency (evicted entries keep their
// Info so Stat/List never touch disk).
type entry struct {
	name    string
	dirname string // subdirectory under the data dir
	info    Info
	deleted bool
	// lastGen is the highest generation ever assigned to the name —
	// the monotonic counter Put continues after replaces and deletes.
	lastGen uint64
	// vol is the resident volume; nil when evicted or deleted. elem is
	// its LRU slot (front = most recently used) while resident.
	vol  *Volume
	elem *list.Element
}

// flight is one in-progress demand load; vol and err are written
// before done closes.
type flight struct {
	done chan struct{}
	vol  *Volume
	err  error
}

// Store is the tiered implementation of VolumeStore. Construct with
// NewMemory (RAM only) or Open (RAM over brick files).
type Store struct {
	dir        string // "" = no disk tier
	budget     int64  // RAM bytes; <= 0 = unbounded
	brickBytes int

	mu       sync.Mutex
	ents     map[string]*entry
	lru      *list.List
	resident int64
	flights  map[string]*flight

	// iomu serializes disk writes per volume directory so racing Puts
	// (or a Put racing a Delete) cannot interleave brick files from
	// two generations. Disk reads don't take it: the manifest rename
	// is atomic and per-brick digests catch a torn read.
	iomu sync.Map // name -> *sync.Mutex

	// testLoadDelay, when set (tests only), runs after a Get registers
	// itself as the demand-load leader and before it touches disk —
	// the hook that makes single-flight coalescing deterministic to
	// test.
	testLoadDelay func()

	hits        *metrics.Counter
	misses      *metrics.Counter
	loads       *metrics.Counter
	loadBytes   *metrics.Counter
	writes      *metrics.Counter
	writeBytes  *metrics.Counter
	evictions   *metrics.Counter
	loadLatency *metrics.Histogram
}

var _ VolumeStore = (*Store)(nil)

// NewMemory returns a RAM-only store: no disk tier, no eviction —
// the original sfcserved in-memory map behind the interface. reg may
// be nil.
func NewMemory(reg *metrics.Registry) *Store {
	s := newStore("", Options{Metrics: reg})
	return s
}

// Open returns a tiered store persisting volumes under dir, loading
// the manifest index of every volume a previous process left there.
// Volumes are demand-loaded on first access, not at open: a restart
// is cheap no matter how much data the directory holds.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: Open needs a data dir (use NewMemory for RAM only)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := newStore(dir, o)
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		m, err := volume.ReadManifestFile(filepath.Join(dir, de.Name(), volume.ManifestFile))
		if err != nil {
			if os.IsNotExist(err) {
				continue // stray directory, not ours
			}
			return nil, fmt.Errorf("store: indexing %s: %w", de.Name(), err)
		}
		if prev, ok := s.ents[m.Name]; ok && prev.lastGen >= m.Gen {
			continue // duplicate dirs for one name: highest generation wins
		}
		dt, _ := sfcmem.ParseDtype(m.Dtype)
		s.ents[m.Name] = &entry{
			name:    m.Name,
			dirname: de.Name(),
			deleted: m.Deleted,
			lastGen: m.Gen,
			info: Info{
				Name: m.Name, Dataset: m.Dataset, Layout: m.Layout, Dtype: m.Dtype,
				Nx: m.Nx, Ny: m.Ny, Nz: m.Nz,
				Bytes: m.Elems * int64(dt.Size()), Gen: m.Gen, FilterKey: m.FilterKey,
			},
		}
	}
	return s, nil
}

func newStore(dir string, o Options) *Store {
	bb := o.BrickBytes
	if bb <= 0 {
		bb = DefaultBrickBytes
	}
	s := &Store{
		dir:        dir,
		budget:     o.RAMBytes,
		brickBytes: bb,
		ents:       make(map[string]*entry),
		lru:        list.New(),
		flights:    make(map[string]*flight),
	}
	reg := o.Metrics
	if reg == nil {
		reg = metrics.NewRegistry() // unpublished sink
	}
	s.hits = reg.Counter("store.hits", 1)
	s.misses = reg.Counter("store.misses", 1)
	s.loads = reg.Counter("store.loads", 1)
	s.loadBytes = reg.Counter("store.load_bytes", 1)
	s.writes = reg.Counter("store.writes", 1)
	s.writeBytes = reg.Counter("store.write_bytes", 1)
	s.evictions = reg.Counter("store.evictions", 1)
	s.loadLatency = reg.Histogram("store.load_latency")
	reg.Register("store.resident_bytes", metrics.GaugeFunc(func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.resident
	}))
	reg.Register("store.resident_volumes", metrics.GaugeFunc(func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.lru.Len()
	}))
	reg.Register("store.volumes", metrics.GaugeFunc(func() any {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, e := range s.ents {
			if !e.deleted {
				n++
			}
		}
		return n
	}))
	reg.Register("store.ram_budget_bytes", metrics.GaugeFunc(func() any { return s.budget }))
	return s
}

// dirFor derives a filesystem-safe directory name for a client-chosen
// volume name: a readable sanitized prefix plus a hash suffix so
// distinct names can never collide (or escape the data dir).
func dirFor(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 40 {
			break
		}
	}
	safe := strings.TrimLeft(b.String(), ".") // no dot-prefixed dirs
	if safe == "" {
		safe = "v"
	}
	h := sha256.Sum256([]byte(name))
	return fmt.Sprintf("%s-%x", safe, h[:6])
}

func (s *Store) lockIO(name string) func() {
	mu, _ := s.iomu.LoadOrStore(name, &sync.Mutex{})
	mu.(*sync.Mutex).Lock()
	return mu.(*sync.Mutex).Unlock
}

// InfoOf derives a volume's metadata record (Resident is left false;
// only the store knows residency — see Stat).
func InfoOf(v *Volume) Info {
	nx, ny, nz := v.Grid.Dims()
	return Info{
		Name: v.Name, Dataset: v.Dataset, Layout: v.Layout,
		Dtype: v.Grid.Dtype().String(),
		Nx:    nx, Ny: ny, Nz: nz,
		Bytes: v.Grid.Bytes(), Gen: v.Gen, FilterKey: v.FilterKey,
	}
}

// Get implements VolumeStore.
func (s *Store) Get(name string) (*Volume, error) {
	for {
		s.mu.Lock()
		e, ok := s.ents[name]
		if !ok || e.deleted {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if e.vol != nil {
			s.lru.MoveToFront(e.elem)
			v := e.vol
			s.mu.Unlock()
			s.hits.Inc(0)
			return v, nil
		}
		if s.dir == "" {
			// Unreachable by construction (no disk tier ⇒ no eviction),
			// but fail closed rather than spinning.
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if f, ok := s.flights[name]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				// The leader failed; the name may since have been
				// replaced by a Put, so retry once through the loop
				// rather than wedging every waiter on a stale error.
				if _, statOK := s.Stat(name); statOK {
					continue
				}
				return nil, f.err
			}
			return f.vol, nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[name] = f
		gen := e.info.Gen
		dirname := e.dirname
		s.mu.Unlock()

		s.misses.Inc(0)
		if s.testLoadDelay != nil {
			s.testLoadDelay()
		}
		start := time.Now()
		// Hold the per-name I/O lock so a concurrent Put/Delete cannot
		// rename bricks out from under the manifest mid-read; a torn
		// read would fail the sha256 check spuriously.
		unlock := s.lockIO(name)
		vol, err := s.load(dirname)
		unlock()
		if err == nil {
			s.loads.Inc(0)
			s.loadBytes.Add(0, uint64(vol.Grid.Bytes()))
			s.loadLatency.Observe(time.Since(start))
		}

		s.mu.Lock()
		delete(s.flights, name)
		if err == nil {
			// Insert into the RAM tier only if the name still describes
			// what was loaded: not deleted, not replaced, not already
			// re-loaded by someone else.
			if cur := s.ents[name]; cur == e && !e.deleted && e.lastGen == vol.Gen && e.vol == nil {
				s.insertResident(e, vol)
			}
		} else if e.deleted || s.ents[name] != e {
			// Deleted or replaced underneath the load: the read error is
			// an artifact of the race, not a store failure.
			err = fmt.Errorf("%w: %q", ErrNotFound, name)
		} else {
			err = fmt.Errorf("store: loading %q (gen %d): %w", name, gen, err)
		}
		s.mu.Unlock()

		f.vol, f.err = vol, err
		close(f.done)
		if err != nil {
			return nil, err
		}
		return vol, nil
	}
}

// load reads a volume from its directory: manifest, layout
// reconstruction, then a sequential brick read into the fresh grid's
// backing slice.
func (s *Store) load(dirname string) (*Volume, error) {
	dir := filepath.Join(s.dir, dirname)
	m, err := volume.ReadManifestFile(filepath.Join(dir, volume.ManifestFile))
	if err != nil {
		return nil, err
	}
	if m.Deleted {
		return nil, ErrNotFound
	}
	l, err := sfcmem.ParseLayoutSpec(m.Layout, m.Nx, m.Ny, m.Nz)
	if err != nil {
		return nil, err
	}
	if int64(l.Len()) != m.Elems {
		return nil, fmt.Errorf("layout %s %dx%dx%d holds %d elems in this build, manifest has %d (layout geometry changed?)",
			m.Layout, m.Nx, m.Ny, m.Nz, l.Len(), m.Elems)
	}
	dt, err := sfcmem.ParseDtype(m.Dtype)
	if err != nil {
		return nil, err
	}
	g, err := readGrid(dir, m, dt, l)
	if err != nil {
		return nil, err
	}
	return &Volume{
		Name: m.Name, Dataset: m.Dataset, Layout: m.Layout,
		Grid: g, Gen: m.Gen, FilterKey: m.FilterKey,
	}, nil
}

func readGrid(dir string, m *volume.Manifest, dt sfcmem.Dtype, l sfcmem.Layout) (*sfcmem.AnyGrid, error) {
	switch dt {
	case sfcmem.U8:
		return readGridOf[uint8](dir, m, l)
	case sfcmem.U16:
		return readGridOf[uint16](dir, m, l)
	case sfcmem.F64:
		return readGridOf[float64](dir, m, l)
	default:
		return readGridOf[float32](dir, m, l)
	}
}

func readGridOf[T sfcmem.Scalar](dir string, m *volume.Manifest, l sfcmem.Layout) (*sfcmem.AnyGrid, error) {
	g := sfcmem.NewGridOf[T](l)
	if err := volume.ReadBricksInto(dir, m, g.Data()); err != nil {
		return nil, err
	}
	return sfcmem.WrapAny(g), nil
}

func writeGrid(dir string, a *sfcmem.AnyGrid, brickElems int) ([]volume.BrickInfo, error) {
	switch a.Dtype() {
	case sfcmem.U8:
		return volume.WriteBricks(dir, sfcmem.Grids[uint8](a).Data(), brickElems)
	case sfcmem.U16:
		return volume.WriteBricks(dir, sfcmem.Grids[uint16](a).Data(), brickElems)
	case sfcmem.F64:
		return volume.WriteBricks(dir, sfcmem.Grids[float64](a).Data(), brickElems)
	default:
		return volume.WriteBricks(dir, sfcmem.Grids[float32](a).Data(), brickElems)
	}
}

// insertResident links vol into the RAM tier and evicts over-budget
// volumes from the cold end. Called with mu held. The newly inserted
// volume itself may be evicted immediately when it alone exceeds the
// budget — callers already hold a reference, and the next Get pages
// it back in (that is what a below-volume-size budget is asking for).
func (s *Store) insertResident(e *entry, vol *Volume) {
	if e.vol != nil {
		s.resident -= e.info.Bytes
		s.lru.Remove(e.elem)
	}
	e.vol = vol
	e.info = InfoOf(vol)
	e.deleted = false
	e.elem = s.lru.PushFront(e)
	s.resident += e.info.Bytes
	if s.dir == "" || s.budget <= 0 {
		return
	}
	for s.resident > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		s.lru.Remove(back)
		ev.elem = nil
		ev.vol = nil
		s.resident -= ev.info.Bytes
		s.evictions.Inc(0)
	}
}

// Put implements VolumeStore.
func (s *Store) Put(v *Volume) error {
	if v.Name == "" {
		return errors.New("store: volume name must be non-empty")
	}
	s.mu.Lock()
	e, ok := s.ents[v.Name]
	if !ok {
		e = &entry{name: v.Name, dirname: dirFor(v.Name)}
		s.ents[v.Name] = e
	}
	e.lastGen++
	v.Gen = e.lastGen
	s.mu.Unlock()

	if s.dir == "" {
		s.commit(e, v)
		return nil
	}

	unlock := s.lockIO(v.Name)
	defer unlock()
	// Superseded while waiting for the directory? Skip both the write
	// and the commit: the later generation owns the name now.
	s.mu.Lock()
	superseded := e.lastGen != v.Gen
	s.mu.Unlock()
	if superseded {
		return nil
	}
	if err := s.persist(e.dirname, v); err != nil {
		return fmt.Errorf("store: persisting %q: %w", v.Name, err)
	}
	s.writes.Inc(0)
	s.writeBytes.Add(0, uint64(v.Grid.Bytes()))
	s.commit(e, v)
	return nil
}

// commit makes v the entry's live state if its generation is still
// current.
func (s *Store) commit(e *entry, v *Volume) {
	s.mu.Lock()
	if e.lastGen == v.Gen {
		s.insertResident(e, v)
	}
	s.mu.Unlock()
}

// persist writes v's bricks and manifest under the store's data dir.
// Bricks land first (temp file + rename each); the manifest rename is
// the commit point; stale higher-index bricks from a larger previous
// generation are removed last.
func (s *Store) persist(dirname string, v *Volume) error {
	dir := filepath.Join(s.dir, dirname)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	es := v.Grid.Dtype().Size()
	brickElems := s.brickBytes / es
	if brickElems < 1 {
		brickElems = 1
	}
	infos, err := writeGrid(dir, v.Grid, brickElems)
	if err != nil {
		return err
	}
	nx, ny, nz := v.Grid.Dims()
	m := &volume.Manifest{
		Version: volume.ManifestVersion,
		Name:    v.Name, Dataset: v.Dataset, Layout: v.Layout,
		Dtype: v.Grid.Dtype().String(), Nx: nx, Ny: ny, Nz: nz,
		Elems:      v.Grid.Bytes() / int64(es),
		BrickElems: brickElems,
		Gen:        v.Gen, FilterKey: v.FilterKey,
		Bricks: infos,
	}
	if err := volume.WriteManifestFile(filepath.Join(dir, volume.ManifestFile), m); err != nil {
		return err
	}
	return volume.RemoveBricksFrom(dir, len(infos))
}

// Delete implements VolumeStore.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	e, ok := s.ents[name]
	if !ok || e.deleted {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.deleted = true
	if e.vol != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
		e.vol = nil
		s.resident -= e.info.Bytes
	}
	gen := e.lastGen
	s.mu.Unlock()

	if s.dir == "" {
		return nil
	}
	unlock := s.lockIO(name)
	defer unlock()
	s.mu.Lock()
	current := e.deleted && e.lastGen == gen
	s.mu.Unlock()
	if !current {
		return nil // a Put overtook the delete; its state owns the disk
	}
	// The tombstone keeps only what a re-create needs — the name and
	// the generation floor; shape fields are placeholders that satisfy
	// manifest validation.
	dir := filepath.Join(s.dir, e.dirname)
	m := &volume.Manifest{
		Version: volume.ManifestVersion,
		Name:    name, Dtype: "float32",
		Nx: 1, Ny: 1, Nz: 1, Elems: 1,
		Gen: gen, Deleted: true,
	}
	if err := volume.WriteManifestFile(filepath.Join(dir, volume.ManifestFile), m); err != nil {
		return fmt.Errorf("store: tombstoning %q: %w", name, err)
	}
	if err := volume.RemoveBricksFrom(dir, 0); err != nil {
		return fmt.Errorf("store: removing %q bricks: %w", name, err)
	}
	return nil
}

// Stat implements VolumeStore.
func (s *Store) Stat(name string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.ents[name]
	if !ok || e.deleted {
		return Info{}, false
	}
	info := e.info
	info.Resident = e.vol != nil
	return info, true
}

// List implements VolumeStore.
func (s *Store) List() []Info {
	s.mu.Lock()
	out := make([]Info, 0, len(s.ents))
	for _, e := range s.ents {
		if e.deleted {
			continue
		}
		info := e.info
		info.Resident = e.vol != nil
		out = append(out, info)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResidentBytes reports the RAM tier's current occupancy.
func (s *Store) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident
}
