package store

import (
	"fmt"
	"testing"

	"sfcmem"
)

// benchVolume builds an edge³ float32 volume in zorder layout.
func benchVolume(b *testing.B, edge int) *Volume {
	b.Helper()
	kind, err := sfcmem.ParseLayout("zorder")
	if err != nil {
		b.Fatal(err)
	}
	g := sfcmem.NewGridOf[float32](sfcmem.NewLayout(kind, edge, edge, edge))
	data := g.Data()
	for i := range data {
		data[i] = float32(i%251) * 0.5
	}
	return &Volume{Name: "bench", Dataset: "synthetic", Layout: "zorder", Grid: sfcmem.WrapAny(g)}
}

// BenchmarkWarmGet measures a resident-tier hit: map lookup plus an
// LRU move under the store mutex. This is the request fast path.
func BenchmarkWarmGet(b *testing.B) {
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Put(benchVolume(b, 64)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdLoad measures a demand page-in from the disk tier:
// open each brick, verify its sha256, and copy the payload into the
// curve-ordered backing slice. The per-iteration eviction is done
// outside the timer by dropping the resident entry directly.
func BenchmarkColdLoad(b *testing.B) {
	for _, edge := range []int{32, 64, 128} {
		v := benchVolume(b, edge)
		bytes := v.Grid.Bytes()
		b.Run(fmt.Sprintf("edge%d-%dKiB", edge, bytes>>10), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Put(v); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s.mu.Lock()
				if e := s.ents["bench"]; e != nil && e.vol != nil {
					s.resident -= e.info.Bytes
					e.vol = nil
					s.lru.Remove(e.elem)
					e.elem = nil
				}
				s.mu.Unlock()
				b.StartTimer()
				if _, err := s.Get("bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPersist measures the write path: brick the curve-ordered
// slice, hash each brick, write tmp files, and commit the manifest.
func BenchmarkPersist(b *testing.B) {
	v := benchVolume(b, 64)
	s, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(v.Grid.Bytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(v); err != nil {
			b.Fatal(err)
		}
	}
}
