package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sfcmem"
	"sfcmem/internal/metrics"
	"sfcmem/internal/volume"
)

// testVolume builds a small deterministic float32 volume. seed varies
// the samples so replaced generations are distinguishable.
func testVolume(t *testing.T, name string, seed int) *Volume {
	t.Helper()
	kind, err := sfcmem.ParseLayout("zorder")
	if err != nil {
		t.Fatal(err)
	}
	l := sfcmem.NewLayout(kind, 8, 8, 8)
	g := sfcmem.NewGridOf[float32](l)
	data := g.Data()
	for i := range data {
		data[i] = float32((i*31 + seed) % 257)
	}
	return &Volume{Name: name, Dataset: "test", Layout: "zorder", Grid: sfcmem.WrapAny(g)}
}

func samples(v *Volume) []float32 { return sfcmem.Grids[float32](v.Grid).Data() }

func TestMemoryParity(t *testing.T) {
	s := NewMemory(nil)
	v1 := testVolume(t, "a", 1)
	if err := s.Put(v1); err != nil {
		t.Fatal(err)
	}
	if v1.Gen != 1 {
		t.Fatalf("first Put gen = %d, want 1", v1.Gen)
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got != v1 {
		t.Fatal("RAM-only Get should return the stored *Volume unchanged")
	}
	v2 := testVolume(t, "a", 2)
	if err := s.Put(v2); err != nil {
		t.Fatal(err)
	}
	if v2.Gen != 2 {
		t.Fatalf("replacement gen = %d, want 2", v2.Gen)
	}
	if err := s.Put(testVolume(t, "b", 3)); err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("List = %+v", list)
	}
	for _, in := range list {
		if !in.Resident {
			t.Fatalf("RAM-only store reports %q non-resident", in.Name)
		}
	}
	if in, ok := s.Stat("a"); !ok || in.Gen != 2 || in.Dtype != "float32" || in.Nx != 8 {
		t.Fatalf("Stat(a) = %+v, %v", in, ok)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete: %v", err)
	}
	v3 := testVolume(t, "a", 4)
	if err := s.Put(v3); err != nil {
		t.Fatal(err)
	}
	if v3.Gen != 3 {
		t.Fatalf("re-create after delete gen = %d, want 3 (strictly higher)", v3.Gen)
	}
}

func TestTieredPersistReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := testVolume(t, "vol/with spaces", 5)
	v.FilterKey = "fk-123"
	if err := s.Put(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "vol/with spaces", 6)); err != nil {
		t.Fatal(err) // gen 2 overwrites gen 1 in place
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in, ok := r.Stat("vol/with spaces")
	if !ok {
		t.Fatal("reopened store lost the volume")
	}
	if in.Resident {
		t.Fatal("reopen should index manifests, not load bricks")
	}
	if in.Gen != 2 || in.Dataset != "test" || in.Layout != "zorder" {
		t.Fatalf("reopened Stat = %+v", in)
	}
	got, err := r.Get("vol/with spaces")
	if err != nil {
		t.Fatal(err)
	}
	want := testVolume(t, "vol/with spaces", 6)
	if !reflect.DeepEqual(samples(got), samples(want)) {
		t.Fatal("reloaded samples differ from what was stored")
	}
	if got.Gen != 2 {
		t.Fatalf("reloaded gen = %d, want 2", got.Gen)
	}
	if in, _ := r.Stat("vol/with spaces"); !in.Resident {
		t.Fatal("demand-loaded volume should be resident")
	}
}

func TestFilterKeySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := testVolume(t, "filtered", 7)
	v.FilterKey = "digest-of-filter-run"
	if err := s.Put(v); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in, ok := r.Stat("filtered"); !ok || in.FilterKey != "digest-of-filter-run" {
		t.Fatalf("FilterKey did not survive reopen: %+v, %v", in, ok)
	}
	got, err := r.Get("filtered")
	if err != nil {
		t.Fatal(err)
	}
	if got.FilterKey != "digest-of-filter-run" {
		t.Fatalf("loaded FilterKey = %q", got.FilterKey)
	}
}

func TestEvictionAndDemandLoad(t *testing.T) {
	volBytes := int64(8 * 8 * 8 * 4)
	reg := metrics.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{RAMBytes: volBytes + volBytes/2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "b", 2)); err != nil {
		t.Fatal(err)
	}
	// Budget holds 1.5 volumes: storing b must evict a.
	if s.evictions.Total() != 1 {
		t.Fatalf("evictions = %d, want 1", s.evictions.Total())
	}
	if in, _ := s.Stat("a"); in.Resident {
		t.Fatal("a should have been evicted")
	}
	if in, _ := s.Stat("b"); !in.Resident {
		t.Fatal("b should be resident")
	}
	if s.ResidentBytes() != volBytes {
		t.Fatalf("resident bytes = %d, want %d", s.ResidentBytes(), volBytes)
	}

	got, err := s.Get("a") // demand page a back in; b becomes the LRU victim
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(samples(got), samples(testVolume(t, "a", 1))) {
		t.Fatal("demand-loaded samples differ")
	}
	if s.loads.Total() != 1 {
		t.Fatalf("loads = %d, want 1", s.loads.Total())
	}
	if s.loadBytes.Total() != uint64(volBytes) {
		t.Fatalf("load_bytes = %d, want %d", s.loadBytes.Total(), volBytes)
	}
	if in, _ := s.Stat("b"); in.Resident {
		t.Fatal("paging a in should evict b")
	}
	if s.loadLatency.Count() != 1 {
		t.Fatalf("load_latency count = %d, want 1", s.loadLatency.Count())
	}
}

// TestBudgetBelowVolumeSize pins the forced-demand-paging contract: a
// budget smaller than a single volume keeps nothing resident, yet
// every Get still serves the full volume.
func TestBudgetBelowVolumeSize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RAMBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "big", 9)); err != nil {
		t.Fatal(err)
	}
	if in, _ := s.Stat("big"); in.Resident {
		t.Fatal("volume larger than the budget should not stay resident")
	}
	for i := 0; i < 3; i++ {
		got, err := s.Get("big")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(samples(got), samples(testVolume(t, "big", 9))) {
			t.Fatalf("get %d: samples differ", i)
		}
	}
	if s.loads.Total() != 3 {
		t.Fatalf("loads = %d, want 3 (every Get pages in)", s.loads.Total())
	}
}

func TestSingleFlight(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RAMBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 3)); err != nil {
		t.Fatal(err)
	}
	// The tiny budget evicted "a" immediately. Raise it so the single
	// demand load stays resident, making late arrivals cache hits.
	s.mu.Lock()
	s.budget = 1 << 30
	s.mu.Unlock()

	const n = 16
	var started sync.WaitGroup
	started.Add(n)
	s.testLoadDelay = func() { started.Wait() } // leader blocks until all n are past Add

	var wg sync.WaitGroup
	vols := make([]*Volume, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, err := s.Get("a")
			if err != nil {
				t.Errorf("get %d: %v", i, err)
				return
			}
			vols[i] = v
		}(i)
	}
	wg.Wait()
	if s.loads.Total() != 1 {
		t.Fatalf("loads = %d, want 1 (stampede must coalesce)", s.loads.Total())
	}
	for i := 1; i < n; i++ {
		if vols[i] != vols[0] {
			t.Fatalf("goroutine %d got a different volume instance", i)
		}
	}
}

func TestCorruptedBrickSurfaces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 4)); err != nil {
		t.Fatal(err)
	}
	// Find the volume's brick and flip a payload bit.
	matches, err := filepath.Glob(filepath.Join(dir, "*", "00000.sfcb"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v %v", matches, err)
	}
	b, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	b[volume.BrickHeaderLen+3] ^= 0x01
	if err := os.WriteFile(matches[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Get("a")
	if err == nil {
		t.Fatal("corrupted brick served without error")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("corruption must not masquerade as not-found: %v", err)
	}
	if !strings.Contains(err.Error(), "sha256") || !strings.Contains(err.Error(), `"a"`) {
		t.Fatalf("error should name the volume and the failed digest: %v", err)
	}
}

func TestDeleteTombstoneAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 2)); err != nil {
		t.Fatal(err) // gen 2
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: %v", err)
	}
	// Bricks are gone; only the tombstone manifest remains.
	if m, _ := filepath.Glob(filepath.Join(dir, "*", "*.sfcb")); len(m) != 0 {
		t.Fatalf("bricks survive delete: %v", m)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Stat("a"); ok {
		t.Fatal("deleted volume visible after reopen")
	}
	if list := r.List(); len(list) != 0 {
		t.Fatalf("List after reopen = %+v", list)
	}
	v := testVolume(t, "a", 3)
	if err := r.Put(v); err != nil {
		t.Fatal(err)
	}
	if v.Gen != 3 {
		t.Fatalf("re-create across restart gen = %d, want 3 (tombstone keeps the floor)", v.Gen)
	}
}

func TestDirForSafety(t *testing.T) {
	a := dirFor("../../etc/passwd")
	if strings.Contains(a, "/") || strings.HasPrefix(a, ".") {
		t.Fatalf("dirFor must not escape the data dir: %q", a)
	}
	if dirFor("x") == dirFor("y") {
		t.Fatal("distinct names collide")
	}
	long := strings.Repeat("n", 100)
	if b := dirFor(long); len(b) > 60 {
		t.Fatalf("dirFor too long: %d", len(b))
	}
	if dirFor(long) == dirFor(long+"z") {
		t.Fatal("long names that share a prefix collide")
	}
}

// TestConcurrentStress hammers one store with mixed operations; run
// under -race it checks the locking protocol, and the final pass
// checks every surviving name still round-trips its samples.
func TestConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	volBytes := int64(8 * 8 * 8 * 4)
	s, err := Open(dir, Options{RAMBytes: 2 * volBytes})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}
	for i, n := range names {
		if err := s.Put(testVolume(t, n, i)); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(10) {
				case 0:
					if err := s.Put(testVolume(t, name, rng.Intn(100))); err != nil {
						t.Errorf("put %s: %v", name, err)
					}
				case 1:
					if err := s.Delete(name); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete %s: %v", name, err)
					}
				case 2:
					s.List()
				case 3:
					s.Stat(name)
				default:
					v, err := s.Get(name)
					if err != nil {
						if !errors.Is(err, ErrNotFound) {
							t.Errorf("get %s: %v", name, err)
						}
						continue
					}
					if got := len(samples(v)); got != 8*8*8 {
						t.Errorf("get %s: %d samples", name, got)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, in := range s.List() {
		if _, err := s.Get(in.Name); err != nil {
			t.Errorf("post-stress get %s: %v", in.Name, err)
		}
	}
	// Everything listed must also survive a reopen intact.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := s.List()
	got := r.List()
	if len(got) != len(want) {
		t.Fatalf("reopen lost volumes: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Gen != want[i].Gen {
			t.Errorf("reopen entry %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	for _, in := range got {
		if _, err := r.Get(in.Name); err != nil {
			t.Errorf("reopen get %s: %v", in.Name, err)
		}
	}
}

// TestPutErrorKeepsPreviousContents: a failed persist must not damage
// the live volume.
func TestPutErrorKeepsPreviousContents(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("permission-denied persists are not enforceable as root")
	}
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testVolume(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(sub) != 1 {
		t.Fatalf("glob: %v %v", sub, err)
	}
	if err := os.Chmod(sub[0], 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(sub[0], 0o755)
	if err := s.Put(testVolume(t, "a", 2)); err == nil {
		t.Fatal("persist into read-only dir should fail")
	}
	got, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(samples(got), samples(testVolume(t, "a", 1))) {
		t.Fatal("failed Put corrupted the live volume")
	}
}
