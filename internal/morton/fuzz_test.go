package morton

import "testing"

// FuzzStepRoundTrip drives the dilated-bit neighbor steps with arbitrary
// Morton codes and pins the stepper contract the kernel walks rely on:
//
//   - round trip: Dec•(Inc•(c)) == c and Inc•(Dec•(c)) == c wherever the
//     step is legal,
//   - lane isolation: stepping one axis never disturbs the other two
//     decoded coordinates,
//   - bounded edges: the checked variants refuse exactly at the extent
//     edge (x+1 == limit) and at zero, returning the code unchanged.
//
// Arbitrary codes (not just Encode3 outputs) matter: any 63-bit value is
// a valid code for some (x,y,z), and the masked add/subtract must confine
// carries and borrows to one lane for all of them.
func FuzzStepRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(Encode3(1, 1, 1))
	f.Add(Encode3(Max3, Max3, Max3))
	f.Add(Encode3(7, 0, 15))    // x lane saturated below bit 3
	f.Add(Encode3(0, 1<<20, 0)) // single high y bit
	f.Add(XMask)                // all-ones x lane
	f.Fuzz(func(t *testing.T, raw uint64) {
		c := raw & (XMask | YMask | ZMask) // 63 usable bits
		x, y, z := Decode3(c)

		type axis struct {
			name     string
			coord    uint32
			inc, dec func(uint64) uint64
			incB     func(uint64, uint32) (uint64, bool)
			decB     func(uint64) (uint64, bool)
		}
		axes := []axis{
			{"x", x, IncX, DecX, IncXBounded, DecXBounded},
			{"y", y, IncY, DecY, IncYBounded, DecYBounded},
			{"z", z, IncZ, DecZ, IncZBounded, DecZBounded},
		}
		for n, a := range axes {
			if a.coord < Max3 {
				up := a.inc(c)
				// Lane isolation: only this axis moved, by exactly one.
				ux, uy, uz := Decode3(up)
				got := [3]uint32{ux, uy, uz}
				want := [3]uint32{x, y, z}
				want[n]++
				if got != want {
					t.Fatalf("Inc%s(%#x): decoded %v, want %v", a.name, c, got, want)
				}
				if back := a.dec(up); back != c {
					t.Fatalf("Dec%s(Inc%s(%#x)) = %#x", a.name, a.name, c, back)
				}
			}
			if a.coord > 0 {
				down := a.dec(c)
				dx, dy, dz := Decode3(down)
				got := [3]uint32{dx, dy, dz}
				want := [3]uint32{x, y, z}
				want[n]--
				if got != want {
					t.Fatalf("Dec%s(%#x): decoded %v, want %v", a.name, c, got, want)
				}
				if back := a.inc(down); back != c {
					t.Fatalf("Inc%s(Dec%s(%#x)) = %#x", a.name, a.name, c, back)
				}
			}

			// Bounded steps: refuse exactly at the edge, agree with the
			// unchecked step inside it.
			if got, ok := a.incB(c, a.coord+1); ok || got != c {
				t.Fatalf("Inc%sBounded(%#x, %d) = %#x, %v; want refusal", a.name, c, a.coord+1, got, ok)
			}
			if a.coord < Max3 {
				if got, ok := a.incB(c, a.coord+2); !ok || got != a.inc(c) {
					t.Fatalf("Inc%sBounded(%#x, %d) = %#x, %v; want step", a.name, c, a.coord+2, got, ok)
				}
			}
			if a.coord == 0 {
				if got, ok := a.decB(c); ok || got != c {
					t.Fatalf("Dec%sBounded(%#x) = %#x, %v; want refusal at zero", a.name, c, got, ok)
				}
			} else if got, ok := a.decB(c); !ok || got != a.dec(c) {
				t.Fatalf("Dec%sBounded(%#x) = %#x, %v; want step", a.name, c, got, ok)
			}
		}
	})
}
