package morton

// Generic dilated-bit arithmetic over arbitrary axis masks. The fixed
// Morton helpers (IncX over XMask = …001001001…) are the special case
// where each axis owns every third bit; a generalized bit-interleave
// layout (core.BitLayout) assigns axes to bit positions freely, so its
// per-axis masks are arbitrary — but the same carry/borrow trick works
// for any mask: flood the non-mask bits with ones so an add carries
// straight through them, or subtract within the mask so a borrow rolls
// through, then splice the untouched axes back in.
//
// Deposit/Extract are the software forms of the BMI2 PDEP/PEXT
// instructions; they are O(popcount(mask)) loops and are used at layout
// construction and on boundary checks, never in kernel inner loops
// (those use the O(1) IncMask/DecMask forms, or precomputed deposit
// tables).

// Deposit scatters the low bits of v into the set positions of mask
// (software PDEP): bit b of v lands at the position of the b-th set bit
// of mask, counting from the least significant. Bits of v beyond
// popcount(mask) are dropped.
func Deposit(v, mask uint64) uint64 {
	var out uint64
	for m := mask; m != 0; m &= m - 1 {
		if v&1 != 0 {
			out |= m & -m
		}
		v >>= 1
	}
	return out
}

// Extract gathers the bits of v at the set positions of mask into a
// dense low-bit integer (software PEXT): the inverse of Deposit, so
// Extract(Deposit(v, m), m) == v for v < 1<<popcount(m) and
// Deposit(Extract(u, m), m) == u&m.
func Extract(v, mask uint64) uint64 {
	var out uint64
	b := 0
	for m := mask; m != 0; m &= m - 1 {
		if v&(m&-m) != 0 {
			out |= 1 << b
		}
		b++
	}
	return out
}

// IncMask returns the code of the axis neighbor one step up the lane
// selected by mask: non-mask bits are flooded with ones so adding the
// mask's lowest bit carries through any gap between the lane's bits,
// then the other axes' bits are spliced back unchanged. The caller must
// ensure the lane is not already at its maximum coordinate (the carry
// would escape the lane); see the Bounded forms and core.BitLayout's
// TrySteppers for the checked variants.
func IncMask(code, mask uint64) uint64 {
	return (((code | ^mask) + (mask & -mask)) & mask) | (code &^ mask)
}

// DecMask is the subtraction half of IncMask: the borrow rolls through
// the lane's cleared bits. The caller must ensure the lane coordinate
// is positive (code&mask != 0).
func DecMask(code, mask uint64) uint64 {
	return (((code & mask) - (mask & -mask)) & mask) | (code &^ mask)
}
