package morton

import "fmt"

// Table3 holds per-axis precomputed Z-order index tables for a specific
// 3D grid, following the scheme of Pascucci & Frank 2001 that the paper
// adopts: three tables of length max(nx,ny,nz), where entry i of each
// table is the dilated, shifted contribution of coordinate value i on
// that axis. Computing the Z-order index of (i,j,k) is then three table
// lookups and two ORs — deliberately comparable in cost to array-order
// indexing's two lookups and two adds.
//
// Extents need not be powers of two; the tables are built over the
// power-of-two padded extents, so indices address a padded buffer of
// PaddedLen elements (the paper's §V limitation, made explicit here).
type Table3 struct {
	xs, ys, zs []uint64
	nx, ny, nz int
	px, py, pz int // padded (power-of-two) extents
}

// NewTable3 builds Z-order index tables for an nx×ny×nz grid. It panics
// if any extent is not positive or exceeds Max3+1.
func NewTable3(nx, ny, nz int) *Table3 {
	for _, n := range [3]int{nx, ny, nz} {
		if n <= 0 || n > Max3+1 {
			panic(fmt.Sprintf("morton: extent %d out of range [1, %d]", n, Max3+1))
		}
	}
	t := &Table3{
		nx: nx, ny: ny, nz: nz,
		px: NextPow2(nx), py: NextPow2(ny), pz: NextPow2(nz),
	}
	t.xs = make([]uint64, nx)
	t.ys = make([]uint64, ny)
	t.zs = make([]uint64, nz)
	for i := 0; i < nx; i++ {
		t.xs[i] = Part1By2(uint64(i))
	}
	for j := 0; j < ny; j++ {
		t.ys[j] = Part1By2(uint64(j)) << 1
	}
	for k := 0; k < nz; k++ {
		t.zs[k] = Part1By2(uint64(k)) << 2
	}
	return t
}

// Index returns the Z-order index of (i,j,k): three table loads and two
// ORs. Indices must be within the grid extents; out-of-range indices
// panic via the bounds check on the table slices.
func (t *Table3) Index(i, j, k int) uint64 {
	return t.xs[i] | t.ys[j] | t.zs[k]
}

// Dims returns the logical (unpadded) grid extents.
func (t *Table3) Dims() (nx, ny, nz int) { return t.nx, t.ny, t.nz }

// PaddedDims returns the power-of-two padded extents the indices address.
func (t *Table3) PaddedDims() (px, py, pz int) { return t.px, t.py, t.pz }

// PaddedLen returns the number of elements a buffer indexed by this table
// must hold. Because bit interleaving over unequal extents leaves gaps,
// this is computed as one past the largest index the table can produce.
func (t *Table3) PaddedLen() int {
	max := t.xs[t.nx-1] | t.ys[t.ny-1] | t.zs[t.nz-1]
	return int(max) + 1
}

// Table2 is the 2D analogue of Table3, used by image-plane structures
// and the 2D demonstrations in cmd/layoutviz.
type Table2 struct {
	xs, ys []uint64
	nx, ny int
}

// NewTable2 builds Z-order index tables for an nx×ny grid.
func NewTable2(nx, ny int) *Table2 {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("morton: extents %dx%d must be positive", nx, ny))
	}
	t := &Table2{nx: nx, ny: ny}
	t.xs = make([]uint64, nx)
	t.ys = make([]uint64, ny)
	for i := 0; i < nx; i++ {
		t.xs[i] = Part1By1(uint64(i))
	}
	for j := 0; j < ny; j++ {
		t.ys[j] = Part1By1(uint64(j)) << 1
	}
	return t
}

// Index returns the Z-order index of (i,j).
func (t *Table2) Index(i, j int) uint64 { return t.xs[i] | t.ys[j] }

// Dims returns the logical grid extents.
func (t *Table2) Dims() (nx, ny int) { return t.nx, t.ny }

// PaddedLen returns the buffer length required for this table's indices.
func (t *Table2) PaddedLen() int {
	return int(t.xs[t.nx-1]|t.ys[t.ny-1]) + 1
}
