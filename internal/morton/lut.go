package morton

// 8-bit lookup tables for byte-at-a-time Morton encoding. Each entry of
// lut2 holds the 16-bit dilation (one zero between bits) of its index;
// each entry of lut3 holds the 24-bit dilation (two zeros between bits).
// These are built once at package init; the cost is 512 table entries.
var (
	lut2 [256]uint64
	lut3 [256]uint64
)

func init() {
	for i := 0; i < 256; i++ {
		lut2[i] = Part1By1(uint64(i))
		lut3[i] = Part1By2(uint64(i))
	}
}

// LUTEncode2 computes the same 2D Morton code as Encode2 using 8-bit
// table lookups instead of parallel-prefix bit tricks.
func LUTEncode2(x, y uint32) uint64 {
	xe := lut2[x&0xff] | lut2[x>>8&0xff]<<16 | lut2[x>>16&0xff]<<32 | lut2[x>>24]<<48
	ye := lut2[y&0xff] | lut2[y>>8&0xff]<<16 | lut2[y>>16&0xff]<<32 | lut2[y>>24]<<48
	return xe | ye<<1
}

// LUTEncode3 computes the same 3D Morton code as Encode3 using 8-bit
// table lookups. Coordinates above Max3 are truncated to 21 bits, like
// Encode3.
func LUTEncode3(x, y, z uint32) uint64 {
	x &= Max3
	y &= Max3
	z &= Max3
	xe := lut3[x&0xff] | lut3[x>>8&0xff]<<24 | lut3[x>>16&0xff]<<48
	ye := lut3[y&0xff] | lut3[y>>8&0xff]<<24 | lut3[y>>16&0xff]<<48
	ze := lut3[z&0xff] | lut3[z>>8&0xff]<<24 | lut3[z>>16&0xff]<<48
	return xe | ye<<1 | ze<<2
}
