package morton

import (
	"testing"
	"testing/quick"
)

func TestEncode3KnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{0, 2, 0, 16},
		{0, 0, 2, 32},
		{3, 3, 3, 63},
		{7, 0, 0, 0b001001001},
		{0, 7, 0, 0b010010010},
		{0, 0, 7, 0b100100100},
		{Max3, Max3, Max3, 1<<63 - 1},
	}
	for _, c := range cases {
		if got := Encode3(c.x, c.y, c.z); got != c.want {
			t.Errorf("Encode3(%d,%d,%d) = %#x, want %#x", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestEncode2KnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 2, 12},
		{3, 5, 0b100111},
		{0xffffffff, 0xffffffff, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Encode2(c.x, c.y); got != c.want {
			t.Errorf("Encode2(%d,%d) = %#x, want %#x", c.x, c.y, got, c.want)
		}
	}
}

func TestEncode3Decode3Roundtrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= Max3
		y &= Max3
		z &= Max3
		gx, gy, gz := Decode3(Encode3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncode2Decode2Roundtrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Decode2(Encode2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeRoundtrip3(t *testing.T) {
	// Any 63-bit code decodes to coordinates that re-encode to itself.
	f := func(code uint64) bool {
		code &= 1<<63 - 1
		x, y, z := Decode3(code)
		return Encode3(x, y, z) == code
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUTMatchesMagicBits3(t *testing.T) {
	f := func(x, y, z uint32) bool {
		return LUTEncode3(x, y, z) == Encode3(x&Max3, y&Max3, z&Max3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLUTMatchesMagicBits2(t *testing.T) {
	f := func(x, y uint32) bool {
		return LUTEncode2(x, y) == Encode2(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartCompactInverse(t *testing.T) {
	f1 := func(x uint32) bool {
		return Compact1By1(Part1By1(uint64(x))) == uint64(x)
	}
	if err := quick.Check(f1, nil); err != nil {
		t.Errorf("Part1By1/Compact1By1: %v", err)
	}
	f2 := func(x uint32) bool {
		x &= Max3
		return Compact1By2(Part1By2(uint64(x))) == uint64(x)
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Errorf("Part1By2/Compact1By2: %v", err)
	}
}

func TestIncXYZ(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= Max3 - 1
		y &= Max3 - 1
		z &= Max3 - 1
		c := Encode3(x, y, z)
		return IncX(c) == Encode3(x+1, y, z) &&
			IncY(c) == Encode3(x, y+1, z) &&
			IncZ(c) == Encode3(x, y, z+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMortonMonotoneOnDiagonal(t *testing.T) {
	// Along the main diagonal the Morton code is strictly increasing.
	prev := uint64(0)
	for v := uint32(1); v < 4096; v++ {
		c := Encode3(v, v, v)
		if c <= prev {
			t.Fatalf("Encode3(%d,%d,%d)=%d not > previous %d", v, v, v, c, prev)
		}
		prev = c
	}
}

func TestMortonCodesAreUnique(t *testing.T) {
	const n = 16
	seen := make(map[uint64][3]int, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				c := Encode3(uint32(i), uint32(j), uint32(k))
				if old, dup := seen[c]; dup {
					t.Fatalf("code %d for (%d,%d,%d) collides with %v", c, i, j, k, old)
				}
				seen[c] = [3]int{i, j, k}
			}
		}
	}
	// For a cubic power-of-two grid the codes are also dense in [0, n³).
	for c := uint64(0); c < n*n*n; c++ {
		if _, ok := seen[c]; !ok {
			t.Fatalf("code %d missing: Morton codes not dense on %d^3 grid", c, n)
		}
	}
}

func TestTable3MatchesEncode3(t *testing.T) {
	tbl := NewTable3(17, 8, 33) // deliberately non-power-of-two, unequal
	for k := 0; k < 33; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 17; i++ {
				want := Encode3(uint32(i), uint32(j), uint32(k))
				if got := tbl.Index(i, j, k); got != want {
					t.Fatalf("Table3.Index(%d,%d,%d)=%d, want %d", i, j, k, got, want)
				}
			}
		}
	}
}

func TestTable3PaddedLen(t *testing.T) {
	cases := []struct {
		nx, ny, nz int
	}{
		{8, 8, 8}, {16, 16, 16}, {5, 5, 5}, {17, 8, 33}, {1, 1, 1}, {2, 1, 1},
	}
	for _, c := range cases {
		tbl := NewTable3(c.nx, c.ny, c.nz)
		n := tbl.PaddedLen()
		// Every index must fit.
		maxIdx := tbl.Index(c.nx-1, c.ny-1, c.nz-1)
		if int(maxIdx) != n-1 {
			t.Errorf("%dx%dx%d: PaddedLen=%d but max index=%d", c.nx, c.ny, c.nz, n, maxIdx)
		}
		// For cubic power-of-two grids the padding is free.
		if c.nx == c.ny && c.ny == c.nz && NextPow2(c.nx) == c.nx {
			if n != c.nx*c.ny*c.nz {
				t.Errorf("%d^3: PaddedLen=%d, want dense %d", c.nx, n, c.nx*c.ny*c.nz)
			}
		}
	}
}

func TestTable3Dims(t *testing.T) {
	tbl := NewTable3(5, 6, 7)
	nx, ny, nz := tbl.Dims()
	if nx != 5 || ny != 6 || nz != 7 {
		t.Errorf("Dims = %d,%d,%d, want 5,6,7", nx, ny, nz)
	}
	px, py, pz := tbl.PaddedDims()
	if px != 8 || py != 8 || pz != 8 {
		t.Errorf("PaddedDims = %d,%d,%d, want 8,8,8", px, py, pz)
	}
}

func TestNewTable3Panics(t *testing.T) {
	for _, bad := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, Max3 + 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable3(%v) did not panic", bad)
				}
			}()
			NewTable3(bad[0], bad[1], bad[2])
		}()
	}
}

func TestTable2MatchesEncode2(t *testing.T) {
	tbl := NewTable2(13, 21)
	for j := 0; j < 21; j++ {
		for i := 0; i < 13; i++ {
			want := Encode2(uint32(i), uint32(j))
			if got := tbl.Index(i, j); got != want {
				t.Fatalf("Table2.Index(%d,%d)=%d, want %d", i, j, got, want)
			}
		}
	}
	if n := tbl.PaddedLen(); n != int(Encode2(12, 20))+1 {
		t.Errorf("PaddedLen=%d", n)
	}
	nx, ny := tbl.Dims()
	if nx != 13 || ny != 21 {
		t.Errorf("Dims=%d,%d", nx, ny)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 511: 512, 512: 512, 513: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d)=%d, want %d", in, got, want)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1024: 10}
	for in, want := range cases {
		if got := Log2(in); got != want {
			t.Errorf("Log2(%d)=%d, want %d", in, got, want)
		}
	}
}

// Locality sanity check: the mean code distance of a unit step in any
// axis must be far smaller under Morton order than the worst axis under
// row-major order. This is the quantitative heart of the paper's Fig 1.
func TestMortonLocalityBeatsRowMajorWorstAxis(t *testing.T) {
	const n = 32
	var mortonZ, rowZ float64
	count := 0
	for k := 0; k < n-1; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				a := Encode3(uint32(i), uint32(j), uint32(k))
				b := Encode3(uint32(i), uint32(j), uint32(k+1))
				d := int64(b) - int64(a)
				if d < 0 {
					d = -d
				}
				mortonZ += float64(d)
				rowZ += float64(n * n) // row-major z-step distance is always nx*ny
				count++
			}
		}
	}
	mortonZ /= float64(count)
	rowZ /= float64(count)
	if mortonZ >= rowZ {
		t.Errorf("mean Morton z-step distance %.1f not below row-major %.1f", mortonZ, rowZ)
	}
}

func BenchmarkEncode3Magic(b *testing.B) {
	var sink uint64
	for n := 0; n < b.N; n++ {
		sink += Encode3(uint32(n)&511, uint32(n>>9)&511, uint32(n>>18)&511)
	}
	benchSink = sink
}

func BenchmarkEncode3LUT(b *testing.B) {
	var sink uint64
	for n := 0; n < b.N; n++ {
		sink += LUTEncode3(uint32(n)&511, uint32(n>>9)&511, uint32(n>>18)&511)
	}
	benchSink = sink
}

func BenchmarkEncode3Table(b *testing.B) {
	tbl := NewTable3(512, 512, 512)
	var sink uint64
	for n := 0; n < b.N; n++ {
		sink += tbl.Index(n&511, n>>9&511, n>>18&511)
	}
	benchSink = sink
}

func BenchmarkDecode3(b *testing.B) {
	var sink uint32
	for n := 0; n < b.N; n++ {
		x, y, z := Decode3(uint64(n))
		sink += x + y + z
	}
	benchSink = uint64(sink)
}

var benchSink uint64

func TestDecXYZ(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x = x&Max3 | 1 // keep every coordinate >= 1 so the decrement is legal
		y = y&Max3 | 1
		z = z&Max3 | 1
		c := Encode3(x, y, z)
		return DecX(c) == Encode3(x-1, y, z) &&
			DecY(c) == Encode3(x, y-1, z) &&
			DecZ(c) == Encode3(x, y, z-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIncDecRoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= Max3 - 1
		y &= Max3 - 1
		z &= Max3 - 1
		c := Encode3(x, y, z)
		return DecX(IncX(c)) == c && DecY(IncY(c)) == c && DecZ(IncZ(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedStepsRefuseAtEdges(t *testing.T) {
	c := Encode3(7, 3, 0)
	if _, ok := IncXBounded(c, 8); ok {
		t.Error("IncXBounded stepped past its limit")
	}
	if got, ok := IncXBounded(c, 9); !ok || got != Encode3(8, 3, 0) {
		t.Errorf("IncXBounded(%d, 9) = %d, %v", c, got, ok)
	}
	if _, ok := IncYBounded(c, 4); ok {
		t.Error("IncYBounded stepped past its limit")
	}
	if got, ok := IncYBounded(c, 5); !ok || got != Encode3(7, 4, 0) {
		t.Errorf("IncYBounded = %d, %v", got, ok)
	}
	if _, ok := IncZBounded(c, 1); ok {
		t.Error("IncZBounded stepped past its limit")
	}
	if got, ok := IncZBounded(c, 2); !ok || got != Encode3(7, 3, 1) {
		t.Errorf("IncZBounded = %d, %v", got, ok)
	}
	if _, ok := DecZBounded(c); ok {
		t.Error("DecZBounded stepped below zero")
	}
	if got, ok := DecXBounded(c); !ok || got != Encode3(6, 3, 0) {
		t.Errorf("DecXBounded = %d, %v", got, ok)
	}
	if got, ok := DecYBounded(c); !ok || got != Encode3(7, 2, 0) {
		t.Errorf("DecYBounded = %d, %v", got, ok)
	}
	zero := Encode3(0, 0, 0)
	for name, step := range map[string]func(uint64) (uint64, bool){
		"DecXBounded": DecXBounded, "DecYBounded": DecYBounded, "DecZBounded": DecZBounded,
	} {
		if _, ok := step(zero); ok {
			t.Errorf("%s stepped below zero at the origin", name)
		}
	}
}
