// Package morton implements Z-order (Morton-order) curve encoding and
// decoding for 2D and 3D coordinates.
//
// A Morton code interleaves the bits of the coordinates so that points
// nearby in index space tend to be nearby in the one-dimensional code
// space. This is the locality property the space-filling-curve memory
// layout exploits: with data stored at its Morton index, an access that
// is nearby in (i,j,k) is likely nearby in physical memory regardless of
// which axis varies.
//
// Three implementations are provided, all producing identical codes:
//
//   - magic-bit (parallel-prefix) dilation: Encode2, Encode3
//   - 8-bit lookup tables: LUTEncode2, LUTEncode3
//   - per-axis precomputed tables sized to a specific grid (the scheme
//     the paper adopts from Pascucci & Frank 2001): Table2, Table3
//
// The table form is what the memory-layout library uses at run time,
// because it puts the Z-order index computation (three loads and two ORs)
// on equal footing with array-order indexing (two loads and two adds).
package morton

// Coordinate limits. A 3D Morton code packs three coordinates into one
// uint64, so each coordinate may use at most 21 bits; a 2D code packs
// two, allowing 32 bits each.
const (
	// Max3 is the maximum allowed 3D coordinate value (exclusive bound
	// is Max3+1): 21 usable bits per axis.
	Max3 = 1<<21 - 1
	// Max2 is the maximum allowed 2D coordinate value: 32 bits per axis.
	Max2 = 1<<32 - 1
)

// Part1By1 spreads the low 32 bits of x apart so there is one zero bit
// between each original bit: bit n moves to bit 2n.
func Part1By1(x uint64) uint64 {
	x &= 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Compact1By1 is the inverse of Part1By1: it gathers every second bit
// (bits 0,2,4,...) of x into the low 32 bits of the result.
func Compact1By1(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x ^ x>>1) & 0x3333333333333333
	x = (x ^ x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x ^ x>>4) & 0x00ff00ff00ff00ff
	x = (x ^ x>>8) & 0x0000ffff0000ffff
	x = (x ^ x>>16) & 0x00000000ffffffff
	return x
}

// Part1By2 spreads the low 21 bits of x apart so there are two zero bits
// between each original bit: bit n moves to bit 3n.
func Part1By2(x uint64) uint64 {
	x &= 0x1fffff
	x = (x | x<<32) & 0x001f00000000ffff
	x = (x | x<<16) & 0x001f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// Compact1By2 is the inverse of Part1By2: it gathers every third bit
// (bits 0,3,6,...) of x into the low 21 bits of the result.
func Compact1By2(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x001f0000ff0000ff
	x = (x ^ x>>16) & 0x001f00000000ffff
	x = (x ^ x>>32) & 0x00000000001fffff
	return x
}

// Encode2 interleaves x and y into a 2D Morton code. Bit n of x lands at
// bit 2n of the result and bit n of y at bit 2n+1. x and y must be at
// most Max2.
func Encode2(x, y uint32) uint64 {
	return Part1By1(uint64(x)) | Part1By1(uint64(y))<<1
}

// Decode2 is the inverse of Encode2.
func Decode2(code uint64) (x, y uint32) {
	return uint32(Compact1By1(code)), uint32(Compact1By1(code >> 1))
}

// Encode3 interleaves x, y and z into a 3D Morton code. Bit n of x lands
// at bit 3n, of y at 3n+1, of z at 3n+2. Each coordinate must be at most
// Max3; higher bits are ignored.
func Encode3(x, y, z uint32) uint64 {
	return Part1By2(uint64(x)) | Part1By2(uint64(y))<<1 | Part1By2(uint64(z))<<2
}

// Decode3 is the inverse of Encode3.
func Decode3(code uint64) (x, y, z uint32) {
	return uint32(Compact1By2(code)),
		uint32(Compact1By2(code >> 1)),
		uint32(Compact1By2(code >> 2))
}

// IncX returns the Morton code of (x+1, y, z) given the code of (x, y, z),
// without decoding. It works by isolating the x bit-lanes, adding one in
// that dilated domain, and re-merging. The caller must ensure x+1 does
// not overflow 21 bits.
func IncX(code uint64) uint64 {
	const xMask = 0x1249249249249249
	const yzMask = ^uint64(xMask)
	x := (code | yzMask) + 1
	return (x & xMask) | (code & yzMask)
}

// IncY returns the Morton code of (x, y+1, z) given the code of (x, y, z).
func IncY(code uint64) uint64 {
	const yMask = 0x1249249249249249 << 1
	const xzMask = ^uint64(yMask)
	y := (code | xzMask) + 2
	return (y & yMask) | (code & xzMask)
}

// IncZ returns the Morton code of (x, y, z+1) given the code of (x, y, z).
func IncZ(code uint64) uint64 {
	const zMask = 0x1249249249249249 << 2
	const xyMask = ^uint64(zMask)
	z := (code | xyMask) + 4
	return (z & zMask) | (code & xyMask)
}

// NextPow2 returns the smallest power of two >= n, with NextPow2(0) == 1.
// Z-order indexing requires each grid extent to be padded to a power of
// two (the paper's §V limitation); layouts use this to size their buffer.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
