// Package morton implements Z-order (Morton-order) curve encoding and
// decoding for 2D and 3D coordinates.
//
// A Morton code interleaves the bits of the coordinates so that points
// nearby in index space tend to be nearby in the one-dimensional code
// space. This is the locality property the space-filling-curve memory
// layout exploits: with data stored at its Morton index, an access that
// is nearby in (i,j,k) is likely nearby in physical memory regardless of
// which axis varies.
//
// Three implementations are provided, all producing identical codes:
//
//   - magic-bit (parallel-prefix) dilation: Encode2, Encode3
//   - 8-bit lookup tables: LUTEncode2, LUTEncode3
//   - per-axis precomputed tables sized to a specific grid (the scheme
//     the paper adopts from Pascucci & Frank 2001): Table2, Table3
//
// The table form is what the memory-layout library uses at run time,
// because it puts the Z-order index computation (three loads and two ORs)
// on equal footing with array-order indexing (two loads and two adds).
package morton

// Coordinate limits. A 3D Morton code packs three coordinates into one
// uint64, so each coordinate may use at most 21 bits; a 2D code packs
// two, allowing 32 bits each.
const (
	// Max3 is the maximum allowed 3D coordinate value (exclusive bound
	// is Max3+1): 21 usable bits per axis.
	Max3 = 1<<21 - 1
	// Max2 is the maximum allowed 2D coordinate value: 32 bits per axis.
	Max2 = 1<<32 - 1
)

// Part1By1 spreads the low 32 bits of x apart so there is one zero bit
// between each original bit: bit n moves to bit 2n.
func Part1By1(x uint64) uint64 {
	x &= 0xffffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Compact1By1 is the inverse of Part1By1: it gathers every second bit
// (bits 0,2,4,...) of x into the low 32 bits of the result.
func Compact1By1(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x ^ x>>1) & 0x3333333333333333
	x = (x ^ x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x ^ x>>4) & 0x00ff00ff00ff00ff
	x = (x ^ x>>8) & 0x0000ffff0000ffff
	x = (x ^ x>>16) & 0x00000000ffffffff
	return x
}

// Part1By2 spreads the low 21 bits of x apart so there are two zero bits
// between each original bit: bit n moves to bit 3n.
func Part1By2(x uint64) uint64 {
	x &= 0x1fffff
	x = (x | x<<32) & 0x001f00000000ffff
	x = (x | x<<16) & 0x001f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// Compact1By2 is the inverse of Part1By2: it gathers every third bit
// (bits 0,3,6,...) of x into the low 21 bits of the result.
func Compact1By2(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x001f0000ff0000ff
	x = (x ^ x>>16) & 0x001f00000000ffff
	x = (x ^ x>>32) & 0x00000000001fffff
	return x
}

// Encode2 interleaves x and y into a 2D Morton code. Bit n of x lands at
// bit 2n of the result and bit n of y at bit 2n+1. x and y must be at
// most Max2.
func Encode2(x, y uint32) uint64 {
	return Part1By1(uint64(x)) | Part1By1(uint64(y))<<1
}

// Decode2 is the inverse of Encode2.
func Decode2(code uint64) (x, y uint32) {
	return uint32(Compact1By1(code)), uint32(Compact1By1(code >> 1))
}

// Encode3 interleaves x, y and z into a 3D Morton code. Bit n of x lands
// at bit 3n, of y at 3n+1, of z at 3n+2. Each coordinate must be at most
// Max3; higher bits are ignored.
func Encode3(x, y, z uint32) uint64 {
	return Part1By2(uint64(x)) | Part1By2(uint64(y))<<1 | Part1By2(uint64(z))<<2
}

// Decode3 is the inverse of Encode3.
func Decode3(code uint64) (x, y, z uint32) {
	return uint32(Compact1By2(code)),
		uint32(Compact1By2(code >> 1)),
		uint32(Compact1By2(code >> 2))
}

// Dilated-bit lane masks: a 3D Morton code keeps the x contribution in
// bits 3n, y in 3n+1, z in 3n+2.
const (
	XMask = uint64(0x1249249249249249)
	YMask = XMask << 1
	ZMask = XMask << 2
)

// IncX returns the Morton code of (x+1, y, z) given the code of (x, y, z),
// without decoding. It works by isolating the x bit-lanes, adding one in
// that dilated domain, and re-merging. The caller must ensure x+1 does
// not overflow 21 bits; stepping a code whose x lane is saturated within
// the caller's extent carries into higher x-lane bits (see IncXBounded
// for the checked form). The carry can never leave the x lane.
func IncX(code uint64) uint64 {
	x := (code | ^XMask) + 1
	return (x & XMask) | (code & ^XMask)
}

// IncY returns the Morton code of (x, y+1, z) given the code of (x, y, z).
func IncY(code uint64) uint64 {
	y := (code | ^YMask) + 2
	return (y & YMask) | (code & ^YMask)
}

// IncZ returns the Morton code of (x, y, z+1) given the code of (x, y, z).
func IncZ(code uint64) uint64 {
	z := (code | ^ZMask) + 4
	return (z & ZMask) | (code & ^ZMask)
}

// DecX returns the Morton code of (x-1, y, z) given the code of (x, y, z):
// the subtraction half of the dilated-bit recipe (Holzmüller 2017). The
// isolated x lane is decremented — the borrow runs through the cleared
// y/z positions and is masked back out — and re-merged with the untouched
// lanes. The caller must ensure x > 0; decrementing at x == 0 underflows
// the lane (see DecXBounded for the checked form).
func DecX(code uint64) uint64 {
	x := (code & XMask) - 1
	return (x & XMask) | (code & ^XMask)
}

// DecY returns the Morton code of (x, y-1, z) given the code of (x, y, z).
func DecY(code uint64) uint64 {
	y := (code & YMask) - 2
	return (y & YMask) | (code & ^YMask)
}

// DecZ returns the Morton code of (x, y, z-1) given the code of (x, y, z).
func DecZ(code uint64) uint64 {
	z := (code & ZMask) - 4
	return (z & ZMask) | (code & ^ZMask)
}

// IncXBounded is the boundary-checked IncX: it returns the code of
// (x+1, y, z) and true when x+1 < limit, and (code, false) otherwise —
// the case where the unchecked form would carry into x-lane bits beyond
// the caller's extent. limit is the exclusive x bound (the grid or
// padded extent).
func IncXBounded(code uint64, limit uint32) (uint64, bool) {
	if x := uint32(Compact1By2(code)); x+1 >= limit {
		return code, false
	}
	return IncX(code), true
}

// IncYBounded is the boundary-checked IncY; see IncXBounded.
func IncYBounded(code uint64, limit uint32) (uint64, bool) {
	if y := uint32(Compact1By2(code >> 1)); y+1 >= limit {
		return code, false
	}
	return IncY(code), true
}

// IncZBounded is the boundary-checked IncZ; see IncXBounded.
func IncZBounded(code uint64, limit uint32) (uint64, bool) {
	if z := uint32(Compact1By2(code >> 2)); z+1 >= limit {
		return code, false
	}
	return IncZ(code), true
}

// DecXBounded is the boundary-checked DecX: it returns the code of
// (x-1, y, z) and true when x > 0, and (code, false) at the x == 0 edge
// where the unchecked form would underflow the lane.
func DecXBounded(code uint64) (uint64, bool) {
	if code&XMask == 0 {
		return code, false
	}
	return DecX(code), true
}

// DecYBounded is the boundary-checked DecY; see DecXBounded.
func DecYBounded(code uint64) (uint64, bool) {
	if code&YMask == 0 {
		return code, false
	}
	return DecY(code), true
}

// DecZBounded is the boundary-checked DecZ; see DecXBounded.
func DecZBounded(code uint64) (uint64, bool) {
	if code&ZMask == 0 {
		return code, false
	}
	return DecZ(code), true
}

// NextPow2 returns the smallest power of two >= n, with NextPow2(0) == 1.
// Z-order indexing requires each grid extent to be padded to a power of
// two (the paper's §V limitation); layouts use this to size their buffer.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Log2 returns floor(log2(n)) for n >= 1.
func Log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
