package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"sfcmem/internal/timeline"
)

// ctxKey carries the request's *Trace through context.Context, across
// the service handler and down into the facade *Ctx kernel entry
// points.
type ctxKey struct{}

// With returns ctx carrying t.
func With(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace
// methods are nil-safe, so call sites can instrument unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// DefaultRingSize is how many completed request traces the hub keeps
// for /ops/trace/recent.
const DefaultRingSize = 128

// Hub owns the request-observability state for one service: the
// completed-trace ring, the in-flight registry, and the structured
// access logger. A nil *Hub disables everything at the cost of a nil
// check per call — that is the -obs-off ablation.
type Hub struct {
	ring     *Ring
	inflight *Inflight
	log      *slog.Logger
	// SlowThreshold, when positive, dumps the full span tree of any
	// request slower than it as a second log record.
	SlowThreshold time.Duration
}

// NewHub returns a hub logging JSON lines to w (io.Discard silences the
// access log without disabling tracing).
func NewHub(w io.Writer, ringSize int) *Hub {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Hub{
		ring:     NewRing(ringSize),
		inflight: NewInflight(),
		log:      slog.New(slog.NewJSONHandler(w, nil)),
	}
}

// Logger exposes the hub's structured logger (for boot banners and
// other service-lifecycle records that should land in the same stream).
func (h *Hub) Logger() *slog.Logger {
	if h == nil {
		return slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return h.log
}

// Ring exposes the completed-trace ring (nil-safe, for tests).
func (h *Hub) Ring() *Ring {
	if h == nil {
		return nil
	}
	return h.ring
}

// Start begins a trace for route: parses the inbound trace-context
// headers, registers the trace as in-flight, and returns it with a
// derived context. On a nil hub it returns (nil, ctx) — the whole
// instrumentation layer then short-circuits on nil-trace checks.
func (h *Hub) Start(ctx context.Context, route string, hdr http.Header) (*Trace, context.Context) {
	if h == nil {
		return nil, ctx
	}
	t := NewTrace(route, hdr.Get("traceparent"), hdr.Get("X-Request-Id"))
	h.inflight.Add(t)
	return t, With(ctx, t)
}

// Finish seals the trace, moves it from the in-flight set to the ring,
// emits the access-log record, and (past SlowThreshold) the full span
// dump. No-op on a nil hub or nil trace.
func (h *Hub) Finish(t *Trace, status int, bytes int64, cache string) {
	if h == nil || t == nil {
		return
	}
	t.Finish(status, bytes, cache)
	h.inflight.Remove(t)
	h.ring.Add(t)

	names, durs := t.StageBreakdown()
	stages := make([]any, 0, len(names))
	for i, n := range names {
		stages = append(stages, slog.Float64(n, durs[i].Seconds()))
	}
	attrs := []any{
		slog.String("request_id", t.RequestID),
		slog.String("trace_id", t.TraceID),
		slog.String("route", t.Route),
		slog.Int("status", t.Status),
		slog.Int64("bytes", t.Bytes),
		slog.Float64("total_s", t.Total.Seconds()),
		slog.Float64("admission_wait_s", (t.StageDur("admission.queue") + t.StageDur("admission.slot")).Seconds()),
		slog.Group("stages", stages...),
	}
	if t.Cache != "" {
		attrs = append(attrs, slog.String("cache", t.Cache))
	}
	if d := t.Dropped(); d > 0 {
		attrs = append(attrs, slog.Uint64("spans_dropped", d))
	}
	h.log.Info("request", attrs...)

	if h.SlowThreshold > 0 && t.Total >= h.SlowThreshold {
		spans := t.Spans()
		tree := make([]any, 0, len(spans))
		for i, s := range spans {
			tree = append(tree, slog.Group(strconv.Itoa(i),
				slog.String("name", s.Name),
				slog.Int("worker", s.Worker),
				slog.Int("depth", s.Depth),
				slog.Float64("start_s", s.Start.Seconds()),
				slog.Float64("dur_s", s.Dur.Seconds()),
			))
		}
		h.log.Warn("slow request",
			slog.String("request_id", t.RequestID),
			slog.String("trace_id", t.TraceID),
			slog.String("route", t.Route),
			slog.Float64("total_s", t.Total.Seconds()),
			slog.Group("spans", tree...),
		)
	}
}

// inflightInfo is one live request in the /ops/requests listing.
type inflightInfo struct {
	RequestID string  `json:"request_id"`
	TraceID   string  `json:"trace_id"`
	Route     string  `json:"route"`
	Stage     string  `json:"stage"`
	ElapsedS  float64 `json:"elapsed_s"`
	Start     string  `json:"start"`
}

// HandleInflight serves GET /ops/requests: the live requests with
// their current stage and elapsed time, oldest first.
func (h *Hub) HandleInflight(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	traces := h.inflight.Snapshot()
	out := make([]inflightInfo, 0, len(traces))
	for _, t := range traces {
		out = append(out, inflightInfo{
			RequestID: t.RequestID,
			TraceID:   t.TraceID,
			Route:     t.Route,
			Stage:     t.CurrentStage(),
			ElapsedS:  now.Sub(t.Start).Seconds(),
			Start:     t.Start.UTC().Format(time.RFC3339Nano),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // best-effort ops endpoint
}

// HandleRecent serves GET /ops/trace/recent[?n=K]: the last completed
// request span-trees as one Chrome trace_event file, loadable in
// about:tracing or Perfetto. Each request is a trace "process" whose
// lane 0 holds the request and stage spans (nested by time containment)
// and whose lanes 1..W hold the kernel worker item spans, so the
// per-request view shows exactly where the kernel sat inside the
// request envelope.
func (h *Hub) HandleRecent(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			http.Error(w, fmt.Sprintf("bad n %q", v), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	traces := h.ring.Recent(n)
	tj := timeline.NewTraceJSON()
	// Oldest first so trace timestamps ascend; each trace's spans are
	// offset by its wall-clock start relative to the oldest, keeping
	// concurrent requests aligned on one time axis.
	var epoch time.Time
	for i := len(traces) - 1; i >= 0; i-- {
		if epoch.IsZero() || traces[i].Start.Before(epoch) {
			epoch = traces[i].Start
		}
	}
	pid := 0
	for i := len(traces) - 1; i >= 0; i-- {
		t := traces[i]
		pid++
		base := t.Start.Sub(epoch)
		tj.Process(pid, fmt.Sprintf("%s %s", t.Route, t.RequestID))
		tj.Thread(pid, 0, "request")
		tj.Complete(pid, 0, t.Route, "request", base, t.Total, map[string]any{
			"request_id": t.RequestID,
			"trace_id":   t.TraceID,
			"status":     t.Status,
			"cache":      t.Cache,
		})
		workers := map[int]bool{}
		for _, s := range t.Spans() {
			if s.Worker >= 0 {
				if !workers[s.Worker] {
					workers[s.Worker] = true
					tj.Thread(pid, s.Worker+1, fmt.Sprintf("worker %d", s.Worker))
				}
				tj.Complete(pid, s.Worker+1, s.Name, "kernel", base+s.Start, s.Dur, nil)
				continue
			}
			tj.Complete(pid, 0, s.Name, "stage", base+s.Start, s.Dur, map[string]any{"depth": s.Depth})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	tj.Write(w) //nolint:errcheck // best-effort ops endpoint
}
