package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	parentID := "00f067aa0ba902b7"
	good := "00-" + traceID + "-" + parentID + "-01"
	tid, pid, ok := ParseTraceparent(good)
	if !ok || tid != traceID || pid != parentID {
		t.Fatalf("ParseTraceparent(%q) = %q, %q, %v", good, tid, pid, ok)
	}
	// Uppercase hex is accepted and normalized.
	tid, _, ok = ParseTraceparent(strings.ToUpper(good))
	if !ok || tid != traceID {
		t.Errorf("uppercase traceparent: %q, %v", tid, ok)
	}
	// Flags 00 (unsampled) is valid.
	if _, _, ok := ParseTraceparent("00-" + traceID + "-" + parentID + "-00"); !ok {
		t.Error("flags 00 rejected")
	}
	for _, bad := range []string{
		"",
		"00-" + traceID + "-" + parentID,         // missing flags
		"ff-" + traceID + "-" + parentID + "-01", // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + parentID + "-01", // all-zero trace ID
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01",  // all-zero parent
		"00-" + traceID[:31] + "-" + parentID + "-01",            // short trace ID
		"00-" + traceID[:31] + "g-" + parentID + "-01",           // non-hex
		"0-" + traceID + "-" + parentID + "-01",                  // short version
		"00-" + traceID + "-" + parentID + "-zz",                 // non-hex flags
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestNewTraceIdentity(t *testing.T) {
	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := NewTrace("render", inbound, "req-42")
	if tr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("TraceID %q not adopted from traceparent", tr.TraceID)
	}
	if tr.ParentID != "00f067aa0ba902b7" {
		t.Errorf("ParentID %q", tr.ParentID)
	}
	if tr.RequestID != "req-42" {
		t.Errorf("RequestID %q, want inbound value honored", tr.RequestID)
	}
	if len(tr.SpanID) != 16 || tr.SpanID == tr.ParentID {
		t.Errorf("SpanID %q", tr.SpanID)
	}
	if want := "00-" + tr.TraceID + "-" + tr.SpanID + "-01"; tr.Traceparent() != want {
		t.Errorf("Traceparent() = %q, want %q", tr.Traceparent(), want)
	}

	// No inbound headers: everything minted, never empty or colliding.
	a, b := NewTrace("render", "", ""), NewTrace("render", "", "")
	if a.TraceID == b.TraceID || a.RequestID == b.RequestID || a.RequestID == "" {
		t.Errorf("minted IDs collide: %q/%q %q/%q", a.TraceID, b.TraceID, a.RequestID, b.RequestID)
	}
	// Oversized client request IDs are replaced, not stored.
	if tr := NewTrace("render", "", strings.Repeat("x", 4096)); len(tr.RequestID) > 128 {
		t.Errorf("oversized request ID kept: %d bytes", len(tr.RequestID))
	}
}

func TestStageNestingAndBreakdown(t *testing.T) {
	tr := NewTrace("render", "", "")
	endOuter := tr.Stage("cache")
	endInner := tr.Stage("kernel")
	time.Sleep(time.Millisecond)
	endInner()
	endOuter()
	end := tr.Stage("encode")
	end()
	tr.Finish(200, 10, "miss")

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["cache"].Depth != 0 || byName["encode"].Depth != 0 {
		t.Errorf("top-level stages at depth %d/%d, want 0", byName["cache"].Depth, byName["encode"].Depth)
	}
	if byName["kernel"].Depth != 1 {
		t.Errorf("nested stage at depth %d, want 1", byName["kernel"].Depth)
	}
	names, durs := tr.StageBreakdown()
	if len(names) != 2 || names[0] != "cache" || names[1] != "encode" {
		t.Fatalf("breakdown names %v, want [cache encode]", names)
	}
	if durs[0] < time.Millisecond {
		t.Errorf("cache stage %v, want >= 1ms (it enclosed the sleep)", durs[0])
	}
	if got := tr.StageDur("kernel"); got < time.Millisecond {
		t.Errorf("StageDur(kernel) = %v", got)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	end := tr.Stage("anything")
	end()
	if obs := tr.Observer("tile"); obs != nil {
		t.Error("nil trace Observer != nil")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on bare context != nil")
	}
}

func TestObserverConcurrentSpansAndCap(t *testing.T) {
	tr := NewTrace("render", "", "")
	obs := tr.Observer("tile")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 100 // 800 > maxSpans: the cap must hold
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				obs(w, i, time.Now(), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != maxSpans {
		t.Errorf("%d spans stored, want cap %d", len(spans), maxSpans)
	}
	if got, want := tr.Dropped(), uint64(workers*perWorker-maxSpans); got != want {
		t.Errorf("Dropped() = %d, want %d", got, want)
	}
	for i, s := range spans {
		if s.Name != "tile" || s.Worker < 0 || s.Worker >= workers {
			t.Fatalf("span %d corrupted: %+v", i, s)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	if got := r.Recent(0); len(got) != 0 {
		t.Fatalf("empty ring Recent = %d traces", len(got))
	}
	var last *Trace
	for i := 0; i < 10; i++ {
		last = NewTrace(fmt.Sprintf("r%d", i), "", "")
		last.Finish(200, 0, "")
		r.Add(last)
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) = %d traces, want 4 (ring size)", len(recent))
	}
	if recent[0] != last {
		t.Errorf("most recent trace is %q, want %q", recent[0].Route, last.Route)
	}
	if got := r.Recent(2); len(got) != 2 || got[0] != last {
		t.Errorf("Recent(2) = %d traces, first %q", len(got), got[0].Route)
	}
}

func TestInflightLifecycle(t *testing.T) {
	f := NewInflight()
	a := NewTrace("render", "", "")
	b := NewTrace("filter", "", "")
	f.Add(a)
	f.Add(b)
	if got := f.Snapshot(); len(got) != 2 {
		t.Fatalf("%d in flight, want 2", len(got))
	}
	f.Remove(a)
	got := f.Snapshot()
	if len(got) != 1 || got[0] != b {
		t.Fatalf("after remove: %d in flight", len(got))
	}
}

func TestHubFinishEmitsAccessLog(t *testing.T) {
	var buf bytes.Buffer
	h := NewHub(&buf, 8)
	h.SlowThreshold = time.Nanosecond // everything is an outlier

	tr, ctx := h.Start(context.Background(), "render", httptest.NewRequest("POST", "/render", nil).Header)
	if FromContext(ctx) != tr {
		t.Fatal("Start did not thread the trace through the context")
	}
	end := tr.Stage("kernel")
	time.Sleep(time.Millisecond)
	end()
	h.Finish(tr, 200, 1234, "miss")

	dec := json.NewDecoder(&buf)
	var access map[string]any
	if err := dec.Decode(&access); err != nil {
		t.Fatalf("access log line: %v", err)
	}
	if access["msg"] != "request" || access["request_id"] != tr.RequestID ||
		access["trace_id"] != tr.TraceID || access["status"] != float64(200) ||
		access["bytes"] != float64(1234) || access["cache"] != "miss" {
		t.Errorf("access record %v", access)
	}
	stages, ok := access["stages"].(map[string]any)
	if !ok || stages["kernel"] == nil {
		t.Errorf("stages group %v, want kernel entry", access["stages"])
	}
	var slow map[string]any
	if err := dec.Decode(&slow); err != nil {
		t.Fatalf("slow log line: %v", err)
	}
	if slow["msg"] != "slow request" || slow["spans"] == nil {
		t.Errorf("slow record %v", slow)
	}
	if got := h.Ring().Recent(0); len(got) != 1 || got[0] != tr {
		t.Errorf("ring does not hold the finished trace")
	}
	if got := len(NewInflight().Snapshot()); got != 0 {
		t.Errorf("fresh inflight non-empty: %d", got)
	}
}

func TestHubHandlers(t *testing.T) {
	h := NewHub(bytes.NewBuffer(nil), 8)
	tr, _ := h.Start(context.Background(), "render", httptest.NewRequest("POST", "/render", nil).Header)
	end := tr.Stage("kernel")

	// In-flight listing shows the live request and its current stage.
	rec := httptest.NewRecorder()
	h.HandleInflight(rec, httptest.NewRequest("GET", "/ops/requests", nil))
	var inflight []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &inflight); err != nil {
		t.Fatalf("/ops/requests: %v", err)
	}
	if len(inflight) != 1 || inflight[0]["stage"] != "kernel" || inflight[0]["request_id"] != tr.RequestID {
		t.Fatalf("/ops/requests = %v", inflight)
	}

	end()
	tr.Observer("tile")(2, 0, time.Now(), time.Millisecond)
	h.Finish(tr, 200, 9, "")

	// Recent traces export as a Chrome trace with request, stage and
	// worker events.
	rec = httptest.NewRecorder()
	h.HandleRecent(rec, httptest.NewRequest("GET", "/ops/trace/recent", nil))
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ct); err != nil {
		t.Fatalf("/ops/trace/recent: %v", err)
	}
	var sawRequest, sawStage, sawWorker bool
	for _, e := range ct.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == "request":
			sawRequest = e.Args["request_id"] == tr.RequestID
		case e.Ph == "X" && e.Cat == "stage" && e.Name == "kernel":
			sawStage = true
		case e.Ph == "X" && e.Cat == "kernel" && e.TID == 3: // worker 2 → lane 3
			sawWorker = true
		}
	}
	if !sawRequest || !sawStage || !sawWorker {
		t.Errorf("trace export missing events: request=%v stage=%v worker=%v\n%s",
			sawRequest, sawStage, sawWorker, rec.Body.String())
	}

	// Bad n is rejected.
	rec = httptest.NewRecorder()
	h.HandleRecent(rec, httptest.NewRequest("GET", "/ops/trace/recent?n=x", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}
}

func TestNilHubShortCircuits(t *testing.T) {
	var h *Hub
	tr, ctx := h.Start(context.Background(), "render", httptest.NewRequest("POST", "/", nil).Header)
	if tr != nil || ctx == nil {
		t.Fatalf("nil hub Start = %v, %v", tr, ctx)
	}
	h.Finish(tr, 200, 0, "") // must not panic
	if h.Ring() != nil {
		t.Error("nil hub Ring() != nil")
	}
	h.Logger().Info("dropped") // must not panic
}

// BenchmarkRequestEnvelope measures the full per-request tracing cost
// that -obs-off removes: trace allocation and ID minting, the stage
// spans of a typical render, per-tile observer callbacks, and Finish
// (ring publication plus the slog access-log record). This is the
// numerator of the overhead delta recorded in DESIGN.md §11.
func BenchmarkRequestEnvelope(b *testing.B) {
	h := NewHub(io.Discard, 0)
	hdr := http.Header{}
	hdr.Set("X-Request-Id", "bench-1")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, _ := h.Start(ctx, "render", hdr)
		for _, stage := range []string{"decode", "digest", "cache", "resolve", "kernel", "encode"} {
			t.Stage(stage)()
		}
		obs := t.Observer("tile")
		now := time.Now()
		for tile := 0; tile < 4; tile++ {
			obs(tile%2, tile, now, time.Millisecond)
		}
		h.Finish(t, 200, 4096, "miss")
	}
}

func TestStageAtAndMark(t *testing.T) {
	tr := NewTrace("job", "", "")
	start := tr.Start.Add(5 * time.Millisecond)
	tr.StageAt("queued", start, 20*time.Millisecond)
	tr.StageAt("batched", start.Add(20*time.Millisecond), 3*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0].Name != "queued" || spans[0].Depth != 0 || spans[0].Worker != -1 {
		t.Errorf("queued span wrong: %+v", spans[0])
	}
	if spans[0].Start != 5*time.Millisecond || spans[0].Dur != 20*time.Millisecond {
		t.Errorf("queued span timing wrong: %+v", spans[0])
	}
	// Retroactive spans land in the depth-0 stage breakdown like live ones.
	names, durs := tr.StageBreakdown()
	if len(names) != 2 || names[0] != "queued" || durs[1] != 3*time.Millisecond {
		t.Errorf("breakdown %v %v", names, durs)
	}
	if got := tr.CurrentStage(); got != "" {
		t.Errorf("StageAt moved the live stage label to %q", got)
	}
	tr.Mark("refine")
	if got := tr.CurrentStage(); got != "refine" {
		t.Errorf("Mark: current stage %q, want refine", got)
	}
	// Nil safety: both must be no-ops.
	var nilT *Trace
	nilT.StageAt("x", time.Now(), time.Second)
	nilT.Mark("x")
}

func TestStageAtConcurrent(t *testing.T) {
	// StageAt is documented safe from any goroutine; hammer it under
	// -race alongside Mark and a reader.
	tr := NewTrace("job", "", "")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StageAt("s", tr.Start, time.Millisecond)
				tr.Mark("s")
				_ = tr.CurrentStage()
			}
		}(g)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 200 {
		t.Errorf("%d spans recorded, want 200", n)
	}
}
