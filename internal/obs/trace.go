// Package obs is the request-scoped observability layer for the serving
// path: a per-request trace context (W3C traceparent in, X-Request-Id
// out) carrying a span recorder, a lock-free ring of recently completed
// traces, an in-flight registry for live inspection, structured access
// logs, and Chrome trace_event export bridged through internal/timeline
// so request span-trees and kernel worker timelines speak one format.
//
// The kernel-level instruments (internal/metrics, internal/timeline)
// answer "where does a *run* spend its time"; this package answers
// "where did *this request* spend its time" — the attribution the
// paper's layout arguments need once kernels sit behind a service:
// a slow response could be admission queueing, a cache miss, the
// memory-touching kernel itself, or PNG encode, and only stage-resolved
// spans can tell those apart.
//
// Recording is allocation-light and lock-free on the hot path: a span
// is one slot claim (atomic add) plus a struct write into a fixed
// array; traces past the span cap count drops instead of growing.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds the spans one trace stores. A 4K-tile render under a
// per-tile observer is the worst realistic case; past the cap the trace
// counts drops so a pathological request cannot balloon memory.
const maxSpans = 512

// A Span is one completed region of a request: a serial handler stage
// (Worker < 0) or one kernel work item on a worker lane (Worker >= 0).
// Start is the offset from the trace's start time. Depth is the stage
// nesting level at record time — 0 for top-level stages, so summing
// depth-0 stage durations approximates the request's total latency.
type Span struct {
	Name   string        `json:"name"`
	Worker int           `json:"worker"`
	Depth  int           `json:"depth"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Trace is one request's span recorder plus its identity: the request
// ID the service minted (or honored), and the W3C trace-context IDs.
// Stage spans are recorded by the handler goroutine only; kernel item
// spans arrive concurrently from worker goroutines via Observer, which
// is why the span array is claimed with an atomic index.
type Trace struct {
	// RequestID is the value emitted as X-Request-Id.
	RequestID string
	// TraceID and SpanID are this request's W3C trace-context identity;
	// ParentID is the caller's span ID when the request carried a valid
	// traceparent header, else empty.
	TraceID  string
	SpanID   string
	ParentID string
	Route    string
	Start    time.Time

	// Filled in by Finish; read by exporters and the access log.
	Status int
	Bytes  int64
	Cache  string // X-Cache disposition ("hit", "miss", "coalesced", "")
	Total  time.Duration

	// depth is the live stage nesting level. Only the handler goroutine
	// calls Stage, so a plain int is race-free; kernel observers never
	// touch it.
	depth int

	next    atomic.Int64 // span slots claimed (may exceed maxSpans)
	spans   [maxSpans]Span
	dropped atomic.Uint64

	// stage is the most recently entered live stage, for the in-flight
	// listing. Stored atomically because /ops/requests reads it from
	// another goroutine mid-request.
	stage atomic.Pointer[string]
}

// randHex returns n random bytes as lowercase hex.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("obs: rand: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// hexStr reports whether s is entirely hex digits.
func hexStr(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// isID reports whether s is a valid trace-context identifier: hex and
// not all zeros (the spec reserves the all-zero IDs as invalid).
func isID(s string) bool {
	if !hexStr(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// traceparent header value (version 00: "00-<32 hex>-<16 hex>-<2 hex>").
// Malformed values are rejected rather than half-parsed, per the spec's
// restart rule: the service then starts a fresh trace.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" || !hexStr(parts[0]) {
		return "", "", false
	}
	if len(parts[1]) != 32 || !isID(parts[1]) || len(parts[2]) != 16 || !isID(parts[2]) {
		return "", "", false
	}
	if len(parts[3]) != 2 || !hexStr(parts[3]) {
		return "", "", false
	}
	return strings.ToLower(parts[1]), strings.ToLower(parts[2]), true
}

// Traceparent renders the trace's outgoing header value: this request's
// span becomes the parent of anything downstream.
func (t *Trace) Traceparent() string {
	return "00-" + t.TraceID + "-" + t.SpanID + "-01"
}

// NewTrace starts a trace for route. traceparent is the inbound header
// value ("" for none); requestID is the inbound X-Request-Id ("" mints
// a fresh one).
func NewTrace(route, traceparent, requestID string) *Trace {
	t := &Trace{
		Route:     route,
		Start:     time.Now(),
		SpanID:    randHex(8),
		RequestID: requestID,
	}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		t.TraceID, t.ParentID = tid, pid
	} else {
		t.TraceID = randHex(16)
	}
	if t.RequestID == "" || len(t.RequestID) > 128 {
		t.RequestID = randHex(8)
	}
	return t
}

// Stage enters a named stage and returns the func that ends it. Stages
// must be entered and ended by the request's handler goroutine, in
// stack order; the returned func records the completed span at the
// depth the stage was entered at. Safe on a nil trace (no-op), so
// instrumentation points cost one nil check when observability is off.
func (t *Trace) Stage(name string) func() {
	if t == nil {
		return func() {}
	}
	depth := t.depth
	t.depth++
	t.stage.Store(&name)
	start := time.Now()
	return func() {
		d := time.Since(start)
		t.depth--
		t.addSpan(Span{Name: name, Worker: -1, Depth: depth, Start: start.Sub(t.Start), Dur: d})
	}
}

// StageAt records an already-completed top-level stage span from
// explicit timestamps. Stage's enter/end discipline requires one
// goroutine holding the region open on its stack; lifecycle phases
// whose boundaries cross goroutines — a job's queue wait (enqueued by
// a handler, dequeued by a scheduler), a batch's seal-to-start gap —
// have no such goroutine, so their owner records them after the fact.
// Safe from any goroutine (the span array is claimed atomically) and
// on a nil trace; it never touches the live nesting depth.
func (t *Trace) StageAt(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.addSpan(Span{Name: name, Worker: -1, Depth: 0, Start: start.Sub(t.Start), Dur: d})
}

// Mark updates the live stage label shown by the in-flight listing
// without opening a span — for owners that record their spans
// retroactively via StageAt but still want /ops/requests to show where
// the work currently sits. Safe from any goroutine and on a nil trace.
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	t.stage.Store(&name)
}

// Observer returns a parallel.Observer-shaped callback recording each
// completed kernel work item as a span on its worker lane, or nil for a
// nil trace — so the caller can hand it straight to kernel Options.
func (t *Trace) Observer(name string) func(worker, item int, start time.Time, dur time.Duration) {
	if t == nil {
		return nil
	}
	return func(worker, item int, start time.Time, dur time.Duration) {
		t.addSpan(Span{Name: name, Worker: worker, Depth: t.kernelDepth(), Start: start.Sub(t.Start), Dur: dur})
	}
}

// kernelDepth is the depth item spans record at: one under the current
// stage. Reading t.depth from a worker goroutine would race; item spans
// always fire inside a kernel stage entered before the workers started
// and ended after they joined, so the value is stable — but rather than
// prove that at every call site, item spans use a fixed sentinel depth
// that keeps them out of top-level stage sums.
func (t *Trace) kernelDepth() int { return 1 << 8 }

func (t *Trace) addSpan(s Span) {
	i := t.next.Add(1) - 1
	if i >= maxSpans {
		t.dropped.Add(1)
		return
	}
	t.spans[i] = s
}

// Dropped returns how many spans the cap discarded.
func (t *Trace) Dropped() uint64 { return t.dropped.Load() }

// CurrentStage returns the most recently entered stage name, or "" if
// none has been entered yet. Safe to call from any goroutine while the
// request runs.
func (t *Trace) CurrentStage() string {
	if p := t.stage.Load(); p != nil {
		return *p
	}
	return ""
}

// Finish seals the trace with the response's status, body size, and
// cache disposition. After Finish the span set is immutable.
func (t *Trace) Finish(status int, bytes int64, cache string) {
	t.Status = status
	t.Bytes = bytes
	t.Cache = cache
	t.Total = time.Since(t.Start)
}

// Spans returns the recorded spans in record order. The result aliases
// the trace's storage; callers must treat it as read-only and only call
// Spans after the request finished (exporters do — the ring hands out
// finished traces only).
func (t *Trace) Spans() []Span {
	n := t.next.Load()
	if n > maxSpans {
		n = maxSpans
	}
	return t.spans[:n]
}

// StageBreakdown sums the top-level (depth 0) stage durations by name,
// in first-entry order — the per-stage attribution the access log
// prints. Kernel item spans and nested stages are excluded, so the
// summed durations approximate (and never double-count) the total.
func (t *Trace) StageBreakdown() (names []string, durs []time.Duration) {
	idx := make(map[string]int)
	for _, s := range t.Spans() {
		if s.Worker >= 0 || s.Depth != 0 {
			continue
		}
		i, ok := idx[s.Name]
		if !ok {
			i = len(names)
			idx[s.Name] = i
			names = append(names, s.Name)
			durs = append(durs, 0)
		}
		durs[i] += s.Dur
	}
	return names, durs
}

// StageDur sums every span (any depth) named name — e.g. the admission
// queue wait regardless of where admission ran.
func (t *Trace) StageDur(name string) time.Duration {
	var d time.Duration
	for _, s := range t.Spans() {
		if s.Worker < 0 && s.Name == name {
			d += s.Dur
		}
	}
	return d
}

// Ring is a fixed-size lock-free buffer of the most recently completed
// traces. Writers claim a slot with one atomic add and publish the
// finished trace with an atomic pointer store; readers load pointers
// and get fully written traces (the store happens after Finish, and the
// atomic load orders the reader after every prior write to the trace).
type Ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewRing returns a ring holding the last n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], n)}
}

// Add publishes a finished trace, overwriting the oldest slot.
func (r *Ring) Add(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Recent returns up to n of the stored traces, most recent first
// (n <= 0 means all). Under concurrent writes a slot may be observed
// either before or after replacement; each observed trace is complete
// either way.
func (r *Ring) Recent(n int) []*Trace {
	total := r.next.Load()
	size := uint64(len(r.slots))
	if total > size {
		total = size
	}
	if n <= 0 || uint64(n) > total {
		n = int(total)
	}
	out := make([]*Trace, 0, n)
	// Walk backwards from the most recently claimed slot.
	head := r.next.Load()
	for i := uint64(0); i < size && len(out) < n; i++ {
		idx := (head - 1 - i) % size
		if t := r.slots[idx].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Inflight tracks live requests for /ops/requests. A mutex-guarded map
// is plenty: entries churn at request rate, far below span rate.
type Inflight struct {
	mu   sync.Mutex
	m    map[string]*Trace
	seen uint64
}

// NewInflight returns an empty registry.
func NewInflight() *Inflight { return &Inflight{m: make(map[string]*Trace)} }

// Add registers a started trace.
func (f *Inflight) Add(t *Trace) {
	f.mu.Lock()
	f.m[t.RequestID] = t
	f.seen++
	f.mu.Unlock()
}

// Remove deregisters a finished trace.
func (f *Inflight) Remove(t *Trace) {
	f.mu.Lock()
	delete(f.m, t.RequestID)
	f.mu.Unlock()
}

// Snapshot returns the live traces in start order.
func (f *Inflight) Snapshot() []*Trace {
	f.mu.Lock()
	out := make([]*Trace, 0, len(f.m))
	for _, t := range f.m {
		out = append(out, t)
	}
	f.mu.Unlock()
	sortTracesByStart(out)
	return out
}

func sortTracesByStart(ts []*Trace) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start.Before(ts[j-1].Start); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
