package cache

// TLBConfig describes a data TLB: a fully-associative, LRU-replaced
// page-translation cache. Entries == 0 disables TLB simulation.
//
// The TLB matters to the paper's story because against-the-grain array-
// order sweeps touch a new page almost every access (a 512³ float volume
// has a 1MB slab stride — every z-step crosses 256 pages), while Z-order
// neighborhoods stay within a handful of pages. The TLB counters expose
// that second locality axis beyond cache lines.
type TLBConfig struct {
	Entries   int // number of translations held; 0 disables
	PageBytes int // page size; 0 defaults to 4096
}

// TLBCounters accumulates TLB statistics.
type TLBCounters struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched TLB.
func (c TLBCounters) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// tlb is one thread's translation cache.
type tlb struct {
	pages     []uint64
	used      []uint64
	valid     []bool
	tick      uint64
	pageShift uint
	TLBCounters
}

func newTLB(cfg TLBConfig) *tlb {
	if cfg.Entries <= 0 {
		return nil
	}
	page := cfg.PageBytes
	if page == 0 {
		page = 4096
	}
	if page&(page-1) != 0 {
		panic("cache: TLB page size must be a power of two")
	}
	shift := uint(0)
	for 1<<shift < page {
		shift++
	}
	return &tlb{
		pages:     make([]uint64, cfg.Entries),
		used:      make([]uint64, cfg.Entries),
		valid:     make([]bool, cfg.Entries),
		pageShift: shift,
	}
}

// access translates one byte address, updating hit/miss counters and
// LRU state.
func (t *tlb) access(addr uint64) {
	page := addr >> t.pageShift
	t.Accesses++
	t.tick++
	victim := 0
	for i := range t.pages {
		if t.valid[i] && t.pages[i] == page {
			t.used[i] = t.tick
			t.Hits++
			return
		}
		if !t.valid[i] {
			victim = i
		} else if t.valid[victim] && t.used[i] < t.used[victim] {
			victim = i
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.used[victim] = t.tick
}
