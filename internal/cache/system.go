package cache

import (
	"fmt"
	"sync"
)

// System is a full simulated memory system: per-thread private cache
// hierarchies, an optional shared last-level cache, and a memory
// endpoint. Build one per experiment run, obtain one Front per simulated
// thread, and feed each Front that thread's access stream.
type System struct {
	platform Platform
	fronts   []*Front
	cores    []*coreCaches
	shared   *level
	sharedMu sync.Mutex

	memMu            sync.Mutex
	memReads         uint64
	memWrites        uint64
	memPrefetchReads uint64
}

// coreCaches is one simulated core's cache hierarchy. With
// Platform.CoreThreads > 1 several fronts (hardware threads) share it —
// the MIC arrangement the paper's §IV-D discusses, where adding threads
// per core dilutes each thread's share of the L1/L2 and spatial
// locality drops.
type coreCaches struct {
	mu     sync.Mutex
	levels []*level
}

// Front is the per-thread entry point into the system. It implements
// the access protocol: probe the core's levels inner-to-outer, then the
// shared level, then memory; fill on the way back (write-allocate);
// write back dirty evictions to the next level down.
//
// Front is not safe for concurrent use by multiple goroutines; each
// simulated thread must own its Front exclusively. Core caches, the
// shared level and the memory endpoint are internally locked.
type Front struct {
	sys      *System
	core     *coreCaches
	private  []*level // the core's levels (alias of core.levels)
	tlb      *tlb     // nil when the platform has no TLB
	prefetch bool
	// Prefetches counts next-line prefetches issued by this front.
	Prefetches uint64
}

// NewSystem builds a simulated memory system for the given platform and
// simulated thread count.
func NewSystem(p Platform, threads int) *System {
	if threads <= 0 {
		panic("cache: thread count must be positive")
	}
	s := &System{platform: p}
	if p.Shared.SizeBytes > 0 {
		s.shared = newLevel(p.Shared)
	}
	ct := p.CoreThreads
	if ct < 1 {
		ct = 1
	}
	numCores := (threads + ct - 1) / ct
	s.cores = make([]*coreCaches, numCores)
	for c := range s.cores {
		cc := &coreCaches{}
		for _, cfg := range p.Private {
			cc.levels = append(cc.levels, newLevel(cfg))
		}
		s.cores[c] = cc
	}
	s.fronts = make([]*Front, threads)
	for t := range s.fronts {
		cc := s.cores[t/ct]
		s.fronts[t] = &Front{
			sys:      s,
			core:     cc,
			private:  cc.levels,
			tlb:      newTLB(p.TLB),
			prefetch: p.NextLinePrefetch,
		}
	}
	return s
}

// Front returns simulated thread tid's access front end.
func (s *System) Front(tid int) *Front { return s.fronts[tid] }

// Threads returns the number of simulated threads.
func (s *System) Threads() int { return len(s.fronts) }

// Platform returns the platform the system was built for.
func (s *System) Platform() Platform { return s.platform }

// Access simulates one data access at byte address addr.
func (f *Front) Access(addr uint64, write bool) {
	if f.tlb != nil {
		f.tlb.access(addr)
	}
	line := addr >> lineShift
	f.core.mu.Lock()
	f.accessPrivate(0, line, write)
	f.core.mu.Unlock()
}

// accessPrivate handles the demand access at private level i, recursing
// outward on a miss and filling on the way back.
func (f *Front) accessPrivate(i int, line uint64, write bool) {
	if i == len(f.private) {
		f.accessShared(line, write)
		return
	}
	lvl := f.private[i]
	lvl.Accesses++
	if write {
		lvl.Writes++
	} else {
		lvl.Reads++
	}
	if lvl.lookup(line, write) {
		lvl.Hits++
		return
	}
	lvl.Misses++
	if write {
		lvl.WriteMisses++
	} else {
		lvl.ReadMisses++
	}
	// Write-allocate: fetch the line from below (a read), then install
	// it here, dirty if this was a write.
	f.accessPrivate(i+1, line, false)
	evicted, evictedDirty, did := lvl.insert(line, write)
	if did && evictedDirty {
		f.writeback(i+1, evicted)
	}
	// Next-line prefetch at the outermost private level: on a demand
	// miss, pull line+1 in too (fetching it from below if absent). The
	// fetch must not take the demand path — a prefetch is not a demand
	// access, so it may move cache state but not the shared-level or
	// memory demand counters (it is tallied in Prefetches and, when it
	// reaches memory, MemPrefetchReads).
	if f.prefetch && i == len(f.private)-1 && !lvl.contains(line+1) {
		f.Prefetches++
		f.prefetchFill(i+1, line+1)
		pEvicted, pDirty, pDid := lvl.insert(line+1, false)
		if pDid && pDirty {
			f.writeback(i+1, pEvicted)
		}
	}
}

// prefetchFill brings line into private level i on behalf of a next-line
// prefetch, recursing outward when absent. It mirrors the demand fill's
// state changes — LRU touch on a hit, insert, dirty-victim writeback —
// without incrementing any demand counter.
func (f *Front) prefetchFill(i int, line uint64) {
	if i == len(f.private) {
		f.prefetchShared(line)
		return
	}
	lvl := f.private[i]
	if lvl.lookup(line, false) {
		return
	}
	f.prefetchFill(i+1, line)
	evicted, evictedDirty, did := lvl.insert(line, false)
	if did && evictedDirty {
		f.writeback(i+1, evicted)
	}
}

// prefetchShared is prefetchFill's shared-level leg: cache state moves
// exactly as a demand fill would move it, but the only counters touched
// are MemPrefetchReads for the memory fill and the ordinary writeback
// tally for a dirty victim.
func (f *Front) prefetchShared(line uint64) {
	s := f.sys
	if s.shared == nil {
		s.memPrefetch()
		return
	}
	s.sharedMu.Lock()
	hit := s.shared.lookup(line, false)
	var evictedDirty, did bool
	if !hit {
		_, evictedDirty, did = s.shared.insert(line, false)
	}
	s.sharedMu.Unlock()
	if hit {
		return
	}
	s.memPrefetch()
	if did && evictedDirty {
		s.memAccess(true) // victim writeback is real demand traffic
	}
}

// accessShared handles the demand access at the shared level (if any),
// then memory.
func (f *Front) accessShared(line uint64, write bool) {
	s := f.sys
	if s.shared == nil {
		s.memAccess(write)
		return
	}
	s.sharedMu.Lock()
	lvl := s.shared
	lvl.Accesses++
	if write {
		lvl.Writes++
	} else {
		lvl.Reads++
	}
	if lvl.lookup(line, write) {
		lvl.Hits++
		s.sharedMu.Unlock()
		return
	}
	lvl.Misses++
	if write {
		lvl.WriteMisses++
	} else {
		lvl.ReadMisses++
	}
	_, evictedDirty, did := lvl.insert(line, write)
	s.sharedMu.Unlock()
	s.memAccess(false) // the fill read
	if did && evictedDirty {
		s.memAccess(true) // writeback of the victim
	}
}

// writeback delivers a dirty evicted line to private level i (or the
// shared level / memory beyond). If the line is resident there it is
// marked dirty; otherwise the writeback passes through to the next
// level. Writebacks do not count as demand accesses or misses and do
// not disturb LRU state, but are tallied in WritebacksIn.
func (f *Front) writeback(i int, line uint64) {
	for ; i < len(f.private); i++ {
		lvl := f.private[i]
		lvl.WritebacksIn++
		if lvl.markDirtyIfPresent(line) {
			return
		}
	}
	s := f.sys
	if s.shared != nil {
		s.sharedMu.Lock()
		s.shared.WritebacksIn++
		hit := s.shared.markDirtyIfPresent(line)
		s.sharedMu.Unlock()
		if hit {
			return
		}
	}
	s.memAccess(true)
}

// memPrefetch counts a memory fill triggered by a prefetch, kept apart
// from the demand read/write counters.
func (s *System) memPrefetch() {
	s.memMu.Lock()
	s.memPrefetchReads++
	s.memMu.Unlock()
}

func (s *System) memAccess(write bool) {
	s.memMu.Lock()
	if write {
		s.memWrites++
	} else {
		s.memReads++
	}
	s.memMu.Unlock()
}

// Report is a summary of all counters after a simulation run.
type Report struct {
	Platform string
	// PrivateTotal[i] sums level i's counters across all threads
	// (index 0 = L1).
	PrivateTotal []Counters
	// PerCore[c][i] is core c's level-i counters; with CoreThreads == 1
	// (the default) a core is one thread.
	PerCore [][]Counters
	// Shared is the shared level's counters (zero value if none).
	Shared    Counters
	HasShared bool
	MemReads  uint64
	MemWrites uint64
	// TLB sums per-thread TLB counters (zero value when disabled).
	TLB TLBCounters
	// Prefetches sums next-line prefetches issued (zero when disabled).
	Prefetches uint64
	// MemPrefetchReads counts memory fills triggered by prefetches,
	// separate from the demand MemReads.
	MemPrefetchReads uint64
}

// Report gathers all counters. Call after the access streams are fully
// replayed.
func (s *System) Report() Report {
	r := Report{Platform: s.platform.Name}
	nLevels := len(s.platform.Private)
	r.PrivateTotal = make([]Counters, nLevels)
	for _, cc := range s.cores {
		var row []Counters
		for i, lvl := range cc.levels {
			row = append(row, lvl.Counters)
			r.PrivateTotal[i].Add(lvl.Counters)
		}
		r.PerCore = append(r.PerCore, row)
	}
	for _, f := range s.fronts {
		if f.tlb != nil {
			r.TLB.Accesses += f.tlb.Accesses
			r.TLB.Hits += f.tlb.Hits
			r.TLB.Misses += f.tlb.Misses
		}
		r.Prefetches += f.Prefetches
	}
	if s.shared != nil {
		r.Shared = s.shared.Counters
		r.HasShared = true
	}
	r.MemReads = s.memReads
	r.MemWrites = s.memWrites
	r.MemPrefetchReads = s.memPrefetchReads
	return r
}

// PaperMetric extracts the counter the paper reports for this platform:
// total shared-LLC accesses (PAPI_L3_TCA) when a shared level exists,
// otherwise L2 read misses that filled from memory
// (L2_DATA_READ_MISS_MEM_FILL).
func (r Report) PaperMetric() uint64 {
	if r.HasShared {
		return r.Shared.Accesses
	}
	if n := len(r.PrivateTotal); n > 0 {
		return r.PrivateTotal[n-1].ReadMisses
	}
	return r.MemReads
}

// MetricName names the counter PaperMetric returns, matching the
// paper's terminology.
func (r Report) MetricName() string {
	if r.HasShared {
		return "PAPI_L3_TCA"
	}
	return "L2_DATA_READ_MISS"
}

// Snapshot flattens the report into a stable name → value map for
// machine-readable export (run manifests, expvar). Keys are "l1.*" ..
// "lN.*" for private levels, "llc.*" for the shared level, "tlb.*",
// "mem.reads"/"mem.writes", "prefetches", and the platform's paper
// counter under "paper_metric".
func (r Report) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	put := func(prefix string, c Counters) {
		out[prefix+".accesses"] = c.Accesses
		out[prefix+".reads"] = c.Reads
		out[prefix+".writes"] = c.Writes
		out[prefix+".hits"] = c.Hits
		out[prefix+".misses"] = c.Misses
		out[prefix+".read_misses"] = c.ReadMisses
		out[prefix+".write_misses"] = c.WriteMisses
		out[prefix+".evictions"] = c.Evictions
		out[prefix+".writebacks_in"] = c.WritebacksIn
	}
	for i, c := range r.PrivateTotal {
		put(fmt.Sprintf("l%d", i+1), c)
	}
	if r.HasShared {
		put("llc", r.Shared)
	}
	if r.TLB.Accesses > 0 {
		out["tlb.accesses"] = r.TLB.Accesses
		out["tlb.hits"] = r.TLB.Hits
		out["tlb.misses"] = r.TLB.Misses
	}
	if r.Prefetches > 0 {
		out["prefetches"] = r.Prefetches
	}
	if r.MemPrefetchReads > 0 {
		out["mem.prefetch_reads"] = r.MemPrefetchReads
	}
	out["mem.reads"] = r.MemReads
	out["mem.writes"] = r.MemWrites
	out["paper_metric"] = r.PaperMetric()
	return out
}

// String renders a compact human-readable report.
func (r Report) String() string {
	out := fmt.Sprintf("platform %s (%d cores)\n", r.Platform, len(r.PerCore))
	for i, c := range r.PrivateTotal {
		out += fmt.Sprintf("  L%d  acc %12d  hit %12d  miss %10d (%.4f)\n",
			i+1, c.Accesses, c.Hits, c.Misses, c.MissRate())
	}
	if r.HasShared {
		c := r.Shared
		out += fmt.Sprintf("  LLC acc %12d  hit %12d  miss %10d (%.4f)\n",
			c.Accesses, c.Hits, c.Misses, c.MissRate())
	}
	if r.TLB.Accesses > 0 {
		out += fmt.Sprintf("  TLB acc %12d  hit %12d  miss %10d (%.4f)\n",
			r.TLB.Accesses, r.TLB.Hits, r.TLB.Misses, r.TLB.MissRate())
	}
	if r.Prefetches > 0 {
		out += fmt.Sprintf("  prefetches issued %d (mem fills %d)\n", r.Prefetches, r.MemPrefetchReads)
	}
	out += fmt.Sprintf("  mem reads %d writes %d\n", r.MemReads, r.MemWrites)
	out += fmt.Sprintf("  %s = %d\n", r.MetricName(), r.PaperMetric())
	return out
}
