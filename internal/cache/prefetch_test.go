package cache

import "testing"

// prefetchPlatform builds a hierarchy whose single private level is big
// enough to hold the whole test stream plus its prefetched neighbours,
// so no capacity effect can mask the accounting under test.
func prefetchPlatform(prefetch bool) Platform {
	return Platform{
		Name:             "prefetch-test",
		Private:          []LevelConfig{{Name: "L1", SizeBytes: 64 << 10, Ways: 8}},
		Shared:           LevelConfig{Name: "LLC", SizeBytes: 1 << 20, Ways: 16},
		NextLinePrefetch: prefetch,
	}
}

// replayEvenLines touches every second cache line once: each access is a
// cold demand miss at the private level, so with prefetching on each one
// also issues a next-line prefetch for the (never demanded) odd line.
func replayEvenLines(p Platform) Report {
	sys := NewSystem(p, 1)
	f := sys.Front(0)
	const lines = 256
	for l := uint64(0); l < lines; l += 2 {
		f.Access(l<<lineShift, false)
	}
	return sys.Report()
}

// TestPrefetchDoesNotInflateDemandCounters is the regression test for
// the prefetch accounting bug: next-line prefetches used to recurse
// through the demand access path, inflating shared-level and memory
// demand counters — and with them PaperMetric (PAPI_L3_TCA) — as a
// function of the prefetch setting. Demand counters must be identical
// with prefetching on and off; prefetch traffic shows up only in
// Prefetches and MemPrefetchReads.
func TestPrefetchDoesNotInflateDemandCounters(t *testing.T) {
	off := replayEvenLines(prefetchPlatform(false))
	on := replayEvenLines(prefetchPlatform(true))

	if on.Prefetches == 0 {
		t.Fatal("no prefetches issued; the stream should miss on every access")
	}
	if on.MemPrefetchReads == 0 {
		t.Error("prefetch fills reached memory but MemPrefetchReads == 0")
	}
	if off.Prefetches != 0 || off.MemPrefetchReads != 0 {
		t.Errorf("prefetch counters with prefetching off: %d issued, %d mem fills",
			off.Prefetches, off.MemPrefetchReads)
	}
	if on.Shared != off.Shared {
		t.Errorf("shared-level demand counters differ with prefetching:\n on: %+v\noff: %+v",
			on.Shared, off.Shared)
	}
	if on.MemReads != off.MemReads || on.MemWrites != off.MemWrites {
		t.Errorf("memory demand counters differ: on %d/%d, off %d/%d",
			on.MemReads, on.MemWrites, off.MemReads, off.MemWrites)
	}
	if on.PaperMetric() != off.PaperMetric() {
		t.Errorf("PaperMetric differs with prefetching: on %d, off %d",
			on.PaperMetric(), off.PaperMetric())
	}
	// The private level's own demand counters are also prefetch-independent:
	// the prefetched lines are installed, never demanded.
	if on.PrivateTotal[0] != off.PrivateTotal[0] {
		t.Errorf("private demand counters differ:\n on: %+v\noff: %+v",
			on.PrivateTotal[0], off.PrivateTotal[0])
	}
}

// TestPrefetchHitsInPrivateLevel checks the prefetch actually lands: a
// second pass over the odd (prefetched-only) lines must hit entirely in
// the private level.
func TestPrefetchHitsInPrivateLevel(t *testing.T) {
	sys := NewSystem(prefetchPlatform(true), 1)
	f := sys.Front(0)
	const lines = 256
	for l := uint64(0); l < lines; l += 2 {
		f.Access(l<<lineShift, false)
	}
	before := sys.Report()
	for l := uint64(1); l < lines; l += 2 {
		f.Access(l<<lineShift, false)
	}
	after := sys.Report()
	if got, want := after.PrivateTotal[0].Hits-before.PrivateTotal[0].Hits, uint64(lines/2); got != want {
		t.Errorf("odd-line pass hit %d times in L1, want %d (prefetched lines missing)", got, want)
	}
	if after.Shared.Accesses != before.Shared.Accesses {
		t.Errorf("odd-line pass reached the shared level: %d -> %d accesses",
			before.Shared.Accesses, after.Shared.Accesses)
	}
}
