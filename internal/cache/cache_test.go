package cache

import (
	"testing"
	"testing/quick"
)

// tiny returns a platform with one small private L1 (1KB, 2-way) and no
// shared level — easy to reason about in unit tests.
func tiny() Platform {
	return Platform{
		Name:    "tiny",
		Private: []LevelConfig{{Name: "L1", SizeBytes: 1 << 10, Ways: 2}},
	}
}

func TestSequentialScanMissesOncePerLine(t *testing.T) {
	sys := NewSystem(tiny(), 1)
	f := sys.Front(0)
	const bytes = 8 << 10 // 8KB: 128 lines, cache holds 16
	for a := uint64(0); a < bytes; a += 4 {
		f.Access(a, false)
	}
	r := sys.Report()
	l1 := r.PrivateTotal[0]
	if l1.Accesses != bytes/4 {
		t.Errorf("accesses %d, want %d", l1.Accesses, bytes/4)
	}
	if l1.Misses != bytes/LineBytes {
		t.Errorf("misses %d, want one per line = %d", l1.Misses, bytes/LineBytes)
	}
	if r.MemReads != bytes/LineBytes {
		t.Errorf("memory reads %d, want %d", r.MemReads, bytes/LineBytes)
	}
	if r.MemWrites != 0 {
		t.Errorf("memory writes %d on a read-only scan", r.MemWrites)
	}
}

func TestResidentWorkingSetHitsAfterWarmup(t *testing.T) {
	sys := NewSystem(tiny(), 1)
	f := sys.Front(0)
	const ws = 512 // bytes, half the 1KB cache
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < ws; a += 4 {
			f.Access(a, false)
		}
	}
	l1 := sys.Report().PrivateTotal[0]
	if l1.Misses != ws/LineBytes {
		t.Errorf("misses %d, want compulsory-only %d", l1.Misses, ws/LineBytes)
	}
	wantHits := uint64(3*ws/4) - uint64(ws/LineBytes)
	if l1.Hits != wantHits {
		t.Errorf("hits %d, want %d", l1.Hits, wantHits)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	// 2-way, 8 sets (1KB/2way/64B). Three lines mapping to set 0:
	// line numbers 0, 8, 16 (stride = sets).
	sys := NewSystem(tiny(), 1)
	f := sys.Front(0)
	lineAddr := func(n uint64) uint64 { return n * LineBytes }
	f.Access(lineAddr(0), false)  // miss, set0 = {0}
	f.Access(lineAddr(8), false)  // miss, set0 = {0,8}
	f.Access(lineAddr(0), false)  // hit, 0 most recent
	f.Access(lineAddr(16), false) // miss, evicts 8 (LRU)
	f.Access(lineAddr(0), false)  // must still hit
	f.Access(lineAddr(8), false)  // must miss again
	l1 := sys.Report().PrivateTotal[0]
	if l1.Misses != 4 {
		t.Errorf("misses %d, want 4", l1.Misses)
	}
	if l1.Hits != 2 {
		t.Errorf("hits %d, want 2", l1.Hits)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	sys := NewSystem(tiny(), 1)
	f := sys.Front(0)
	f.Access(0, true) // write-allocate line 0, dirty
	// Evict it by filling its set with two other lines (2-way, 8 sets).
	f.Access(8*LineBytes, false)
	f.Access(16*LineBytes, false)
	r := sys.Report()
	if r.MemWrites != 1 {
		t.Errorf("memory writes %d, want 1 (dirty line 0)", r.MemWrites)
	}
	// Clean evictions must not write back.
	f.Access(24*LineBytes, false) // evicts a clean line
	if r2 := sys.Report(); r2.MemWrites != 1 {
		t.Errorf("memory writes grew to %d after clean eviction", r2.MemWrites)
	}
}

func TestTwoLevelFill(t *testing.T) {
	p := Platform{
		Name: "twolevel",
		Private: []LevelConfig{
			{Name: "L1", SizeBytes: 1 << 10, Ways: 2},
			{Name: "L2", SizeBytes: 8 << 10, Ways: 4},
		},
	}
	sys := NewSystem(p, 1)
	f := sys.Front(0)
	// Stream 4KB: fits L2, not L1.
	const ws = 4 << 10
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			f.Access(a, false)
		}
	}
	r := sys.Report()
	l1, l2 := r.PrivateTotal[0], r.PrivateTotal[1]
	lines := uint64(ws / LineBytes)
	if l1.Misses != 2*lines {
		t.Errorf("L1 misses %d, want %d (working set exceeds L1 both passes)", l1.Misses, 2*lines)
	}
	if l2.Misses != lines {
		t.Errorf("L2 misses %d, want compulsory-only %d", l2.Misses, lines)
	}
	if l2.Hits != lines {
		t.Errorf("L2 hits %d, want %d on second pass", l2.Hits, lines)
	}
	if r.MemReads != lines {
		t.Errorf("memory reads %d, want %d", r.MemReads, lines)
	}
}

func TestSharedLevelVisibleAcrossThreads(t *testing.T) {
	p := Platform{
		Name:    "sharedtest",
		Private: []LevelConfig{{Name: "L1", SizeBytes: 1 << 10, Ways: 2}},
		Shared:  LevelConfig{Name: "LLC", SizeBytes: 64 << 10, Ways: 8},
	}
	sys := NewSystem(p, 2)
	sys.Front(0).Access(0, false) // thread 0 pulls the line into LLC
	sys.Front(1).Access(0, false) // thread 1 misses L1 but hits LLC
	r := sys.Report()
	if !r.HasShared {
		t.Fatal("report lost shared level")
	}
	if r.Shared.Accesses != 2 || r.Shared.Hits != 1 || r.Shared.Misses != 1 {
		t.Errorf("shared counters %+v", r.Shared)
	}
	if r.MemReads != 1 {
		t.Errorf("memory reads %d, want 1", r.MemReads)
	}
}

func TestPrivateLevelsAreIsolated(t *testing.T) {
	sys := NewSystem(tiny(), 2)
	sys.Front(0).Access(0, false)
	sys.Front(1).Access(0, false)
	r := sys.Report()
	if r.PerCore[0][0].Misses != 1 || r.PerCore[1][0].Misses != 1 {
		t.Errorf("both threads should miss privately: %+v / %+v",
			r.PerCore[0][0], r.PerCore[1][0])
	}
}

func TestPaperMetricIvyBridge(t *testing.T) {
	sys := NewSystem(Scaled(IvyBridge(), 64), 1)
	f := sys.Front(0)
	for a := uint64(0); a < 1<<20; a += 64 {
		f.Access(a, false)
	}
	r := sys.Report()
	if r.MetricName() != "PAPI_L3_TCA" {
		t.Errorf("metric name %q", r.MetricName())
	}
	if r.PaperMetric() != r.Shared.Accesses {
		t.Errorf("PaperMetric %d != shared accesses %d", r.PaperMetric(), r.Shared.Accesses)
	}
	// Every L2 miss becomes an L3 access on this platform.
	if r.PaperMetric() != r.PrivateTotal[1].Misses {
		t.Errorf("L3 accesses %d != L2 misses %d", r.PaperMetric(), r.PrivateTotal[1].Misses)
	}
}

func TestPaperMetricMIC(t *testing.T) {
	sys := NewSystem(Scaled(MIC(), 64), 1)
	f := sys.Front(0)
	for a := uint64(0); a < 1<<20; a += 64 {
		f.Access(a, false)
	}
	r := sys.Report()
	if r.MetricName() != "L2_DATA_READ_MISS" {
		t.Errorf("metric name %q", r.MetricName())
	}
	if r.PaperMetric() != r.PrivateTotal[1].ReadMisses {
		t.Errorf("PaperMetric %d != L2 read misses %d", r.PaperMetric(), r.PrivateTotal[1].ReadMisses)
	}
}

func TestWritebackLandsInNextLevelWhenResident(t *testing.T) {
	p := Platform{
		Name: "wb",
		Private: []LevelConfig{
			{Name: "L1", SizeBytes: 1 << 10, Ways: 2},
			{Name: "L2", SizeBytes: 64 << 10, Ways: 8},
		},
	}
	sys := NewSystem(p, 1)
	f := sys.Front(0)
	f.Access(0, true)             // dirty in L1, resident in L2
	f.Access(8*LineBytes, false)  // same L1 set
	f.Access(16*LineBytes, false) // evicts dirty line 0 from L1
	r := sys.Report()
	if r.MemWrites != 0 {
		t.Errorf("writeback should be absorbed by L2, got %d memory writes", r.MemWrites)
	}
	if r.PrivateTotal[1].WritebacksIn != 1 {
		t.Errorf("L2 writebacks-in %d, want 1", r.PrivateTotal[1].WritebacksIn)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Accesses: 1, Reads: 2, Writes: 3, Hits: 4, Misses: 5,
		ReadMisses: 6, WriteMisses: 7, Evictions: 8, WritebacksIn: 9}
	var b Counters
	b.Add(a)
	b.Add(a)
	if b.Accesses != 2 || b.WritebacksIn != 18 || b.Misses != 10 {
		t.Errorf("Add broken: %+v", b)
	}
}

func TestMissRate(t *testing.T) {
	if (Counters{}).MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
	c := Counters{Accesses: 10, Misses: 3}
	if c.MissRate() != 0.3 {
		t.Errorf("miss rate %v", c.MissRate())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []LevelConfig{
		{Name: "x", SizeBytes: 0, Ways: 1},
		{Name: "x", SizeBytes: 1024, Ways: 0},
		{Name: "x", SizeBytes: 1000, Ways: 2}, // not divisible by ways*line
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("newLevel(%+v) did not panic", cfg)
				}
			}()
			newLevel(cfg)
		}()
	}
}

func TestLevelContains(t *testing.T) {
	l := newLevel(LevelConfig{Name: "L1", SizeBytes: 1 << 10, Ways: 2})
	if l.contains(5) {
		t.Error("empty cache claims to contain line 5")
	}
	l.insert(5, false)
	if !l.contains(5) {
		t.Error("inserted line not found")
	}
	if !l.markDirtyIfPresent(5) {
		t.Error("markDirtyIfPresent missed resident line")
	}
	if l.markDirtyIfPresent(6) {
		t.Error("markDirtyIfPresent hit absent line")
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(IvyBridge(), 16)
	if p.Private[0].SizeBytes != 2<<10 {
		t.Errorf("scaled L1 = %d", p.Private[0].SizeBytes)
	}
	if p.Shared.SizeBytes != 30<<20/16 {
		t.Errorf("scaled L3 = %d", p.Shared.SizeBytes)
	}
	// Scaling never drops below one full set row.
	q := Scaled(tiny(), 1024)
	if q.Private[0].SizeBytes < LineBytes*q.Private[0].Ways {
		t.Errorf("over-scaled L1 = %d", q.Private[0].SizeBytes)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Scaled with factor 3 did not panic")
			}
		}()
		Scaled(p, 3)
	}()
}

func TestParsePlatform(t *testing.T) {
	p, err := ParsePlatform("ivy/16")
	if err != nil || p.Shared.SizeBytes != 30<<20/16 {
		t.Errorf("ivy/16: %+v, %v", p, err)
	}
	if _, err := ParsePlatform("mic"); err != nil {
		t.Errorf("mic: %v", err)
	}
	for _, bad := range []string{"bogus", "ivy/3", "ivy/x"} {
		if _, err := ParsePlatform(bad); err == nil {
			t.Errorf("ParsePlatform(%q) should fail", bad)
		}
	}
}

func TestNewSystemPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 threads")
		}
	}()
	NewSystem(tiny(), 0)
}

// Conservation property: at every level, accesses = hits + misses, and
// reads+writes = accesses, under any access stream.
func TestCounterConservation(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		sys := NewSystem(Platform{
			Name: "c",
			Private: []LevelConfig{
				{Name: "L1", SizeBytes: 512, Ways: 2},
				{Name: "L2", SizeBytes: 2048, Ways: 4},
			},
			Shared: LevelConfig{Name: "L3", SizeBytes: 8192, Ways: 4},
		}, 1)
		fr := sys.Front(0)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			fr.Access(uint64(a), w)
		}
		r := sys.Report()
		all := append([]Counters{}, r.PrivateTotal...)
		all = append(all, r.Shared)
		for _, c := range all {
			if c.Hits+c.Misses != c.Accesses {
				return false
			}
			if c.Reads+c.Writes != c.Accesses {
				return false
			}
			if c.ReadMisses+c.WriteMisses != c.Misses {
				return false
			}
		}
		// Inclusive-fill property: outer demand accesses equal inner misses.
		if r.PrivateTotal[1].Accesses != r.PrivateTotal[0].Misses {
			return false
		}
		if r.Shared.Accesses != r.PrivateTotal[1].Misses {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	sys := NewSystem(IvyBridge(), 1)
	f := sys.Front(0)
	f.Access(0, false)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f.Access(0, false)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	sys := NewSystem(IvyBridge(), 1)
	f := sys.Front(0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		f.Access(uint64(n)*4, false)
	}
}
