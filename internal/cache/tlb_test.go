package cache

import (
	"strings"
	"testing"
)

func tlbPlatform(entries int) Platform {
	return Platform{
		Name:    "tlbtest",
		Private: []LevelConfig{{Name: "L1", SizeBytes: 64 << 10, Ways: 8}},
		TLB:     TLBConfig{Entries: entries, PageBytes: 4096},
	}
}

func TestTLBHitsWithinPage(t *testing.T) {
	sys := NewSystem(tlbPlatform(4), 1)
	f := sys.Front(0)
	for a := uint64(0); a < 4096; a += 64 {
		f.Access(a, false)
	}
	r := sys.Report()
	if r.TLB.Accesses != 64 {
		t.Errorf("TLB accesses %d", r.TLB.Accesses)
	}
	if r.TLB.Misses != 1 {
		t.Errorf("TLB misses %d, want 1 (single page)", r.TLB.Misses)
	}
}

func TestTLBMissesAcrossPages(t *testing.T) {
	sys := NewSystem(tlbPlatform(4), 1)
	f := sys.Front(0)
	// Touch 8 distinct pages twice; 4-entry LRU TLB thrashes.
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < 8; p++ {
			f.Access(p*4096, false)
		}
	}
	r := sys.Report()
	if r.TLB.Misses != 16 {
		t.Errorf("TLB misses %d, want 16 (every access misses)", r.TLB.Misses)
	}
}

func TestTLBLRU(t *testing.T) {
	sys := NewSystem(tlbPlatform(2), 1)
	f := sys.Front(0)
	f.Access(0*4096, false) // miss, TLB={0}
	f.Access(1*4096, false) // miss, TLB={0,1}
	f.Access(0*4096, false) // hit, 0 recent
	f.Access(2*4096, false) // miss, evicts 1
	f.Access(0*4096, false) // hit
	f.Access(1*4096, false) // miss again
	r := sys.Report()
	if r.TLB.Hits != 2 || r.TLB.Misses != 4 {
		t.Errorf("TLB hits/misses = %d/%d, want 2/4", r.TLB.Hits, r.TLB.Misses)
	}
}

func TestTLBDisabled(t *testing.T) {
	sys := NewSystem(tlbPlatform(0), 1)
	sys.Front(0).Access(0, false)
	if r := sys.Report(); r.TLB.Accesses != 0 {
		t.Errorf("disabled TLB recorded %d accesses", r.TLB.Accesses)
	}
}

func TestTLBCountersConserve(t *testing.T) {
	sys := NewSystem(tlbPlatform(8), 2)
	for i := uint64(0); i < 1000; i++ {
		sys.Front(int(i%2)).Access(i*512, i%3 == 0)
	}
	r := sys.Report()
	if r.TLB.Hits+r.TLB.Misses != r.TLB.Accesses {
		t.Errorf("TLB conservation broken: %+v", r.TLB)
	}
	if r.TLB.Accesses != 1000 {
		t.Errorf("TLB accesses %d", r.TLB.Accesses)
	}
	if r.TLB.MissRate() <= 0 || r.TLB.MissRate() > 1 {
		t.Errorf("TLB miss rate %v", r.TLB.MissRate())
	}
}

func TestTLBBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-pow2 page size accepted")
		}
	}()
	newTLB(TLBConfig{Entries: 4, PageBytes: 3000})
}

func TestPrefetchReducesStreamingMisses(t *testing.T) {
	base := Platform{
		Name:    "pf",
		Private: []LevelConfig{{Name: "L1", SizeBytes: 4 << 10, Ways: 4}},
	}
	run := func(p Platform) Report {
		sys := NewSystem(p, 1)
		f := sys.Front(0)
		for a := uint64(0); a < 256<<10; a += 64 {
			f.Access(a, false)
		}
		return sys.Report()
	}
	plain := run(base)
	pf := base
	pf.NextLinePrefetch = true
	pfr := run(pf)
	if pfr.Prefetches == 0 {
		t.Fatal("prefetcher issued nothing on a streaming scan")
	}
	if pfr.PrivateTotal[0].Misses >= plain.PrivateTotal[0].Misses {
		t.Errorf("prefetch did not reduce demand misses: %d vs %d",
			pfr.PrivateTotal[0].Misses, plain.PrivateTotal[0].Misses)
	}
	if plain.Prefetches != 0 {
		t.Errorf("prefetches counted with prefetcher off: %d", plain.Prefetches)
	}
}

func TestPrefetchScaledPropagates(t *testing.T) {
	p := IvyBridge()
	p.NextLinePrefetch = true
	q := Scaled(p, 16)
	if !q.NextLinePrefetch {
		t.Error("Scaled dropped NextLinePrefetch")
	}
	if q.TLB.Entries != p.TLB.Entries {
		t.Error("Scaled dropped TLB config")
	}
}

func TestCoreThreadsShareCaches(t *testing.T) {
	p := Platform{
		Name:        "smt",
		Private:     []LevelConfig{{Name: "L1", SizeBytes: 1 << 10, Ways: 2}},
		CoreThreads: 2,
	}
	sys := NewSystem(p, 4)        // 2 cores × 2 threads
	sys.Front(0).Access(0, false) // thread 0 fills core 0's L1
	sys.Front(1).Access(0, false) // sibling thread: must hit
	sys.Front(2).Access(0, false) // other core: must miss
	r := sys.Report()
	if len(r.PerCore) != 2 {
		t.Fatalf("%d cores, want 2", len(r.PerCore))
	}
	c0 := r.PerCore[0][0]
	if c0.Accesses != 2 || c0.Hits != 1 || c0.Misses != 1 {
		t.Errorf("core 0 counters %+v", c0)
	}
	c1 := r.PerCore[1][0]
	if c1.Misses != 1 {
		t.Errorf("core 1 counters %+v", c1)
	}
}

// More threads per core dilute each thread's cache share: with disjoint
// working sets per thread, doubling the threads on a core increases
// misses (the paper's §IV-D observation on the MIC).
func TestCoreSharingDilutesLocality(t *testing.T) {
	run := func(coreThreads int) uint64 {
		p := Platform{
			Name:        "dilute",
			Private:     []LevelConfig{{Name: "L1", SizeBytes: 4 << 10, Ways: 4}},
			CoreThreads: coreThreads,
		}
		const threads = 4
		sys := NewSystem(p, threads)
		// Each thread repeatedly walks its own 3KB region.
		for pass := 0; pass < 4; pass++ {
			for tid := 0; tid < threads; tid++ {
				base := uint64(tid) * (1 << 20)
				f := sys.Front(tid)
				for a := uint64(0); a < 3<<10; a += 64 {
					f.Access(base+a, false)
				}
			}
		}
		var misses uint64
		rep := sys.Report()
		for _, core := range rep.PerCore {
			misses += core[0].Misses
		}
		return misses
	}
	private := run(1) // 4 cores: each 3KB set fits its own 4KB L1
	shared := run(4)  // 1 core: 12KB of working set thrash a 4KB L1
	if shared <= private {
		t.Errorf("sharing did not increase misses: %d vs %d", shared, private)
	}
}

func TestMICPresetUsesFourThreadsPerCore(t *testing.T) {
	if MIC().CoreThreads != 4 {
		t.Errorf("MIC CoreThreads = %d", MIC().CoreThreads)
	}
	if Scaled(MIC(), 8).CoreThreads != 4 {
		t.Error("Scaled dropped CoreThreads")
	}
	if IvyBridge().CoreThreads != 0 {
		t.Errorf("IvyBridge CoreThreads = %d (want per-thread caches)", IvyBridge().CoreThreads)
	}
}

func TestReportString(t *testing.T) {
	p := IvyBridge()
	p.NextLinePrefetch = true
	sys := NewSystem(Scaled(p, 64), 2)
	for a := uint64(0); a < 1<<18; a += 64 {
		sys.Front(0).Access(a, a%128 == 0)
	}
	out := sys.Report().String()
	for _, want := range []string{"L1", "L2", "LLC", "TLB", "prefetches issued", "mem reads", "PAPI_L3_TCA"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func policyPlatform(p Policy) Platform {
	return Platform{
		Name:    "pol",
		Private: []LevelConfig{{Name: "L1", SizeBytes: 1 << 10, Ways: 2, Policy: p}},
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	// Set 0 lines: 0, 8, 16 (8 sets). Under FIFO, re-touching line 0
	// does not save it: insertion order evicts it first.
	sys := NewSystem(policyPlatform(FIFO), 1)
	f := sys.Front(0)
	line := func(n uint64) uint64 { return n * LineBytes }
	f.Access(line(0), false)  // insert 0
	f.Access(line(8), false)  // insert 8
	f.Access(line(0), false)  // hit; FIFO does not refresh
	f.Access(line(16), false) // evicts 0 (oldest insertion)
	f.Access(line(0), false)  // must miss under FIFO
	r := sys.Report()
	if r.PrivateTotal[0].Misses != 4 {
		t.Errorf("FIFO misses %d, want 4", r.PrivateTotal[0].Misses)
	}
	// Same sequence under LRU keeps line 0 (refreshed by the hit).
	sys2 := NewSystem(policyPlatform(LRU), 1)
	g := sys2.Front(0)
	g.Access(line(0), false)
	g.Access(line(8), false)
	g.Access(line(0), false)
	g.Access(line(16), false) // evicts 8 under LRU
	g.Access(line(0), false)  // hit
	if m := sys2.Report().PrivateTotal[0].Misses; m != 3 {
		t.Errorf("LRU misses %d, want 3", m)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() uint64 {
		sys := NewSystem(policyPlatform(RandomPolicy), 1)
		f := sys.Front(0)
		for i := uint64(0); i < 5000; i++ {
			f.Access((i*37)%512*LineBytes, false)
		}
		return sys.Report().PrivateTotal[0].Misses
	}
	if a, b := run(), run(); a != b {
		t.Errorf("random policy not reproducible: %d vs %d", a, b)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || RandomPolicy.String() != "random" {
		t.Error("policy names wrong")
	}
}
