package cache

import (
	"encoding/json"
	"testing"
)

func TestReportSnapshot(t *testing.T) {
	sys := NewSystem(IvyBridge(), 2)
	// Touch a few distinct lines from both fronts, with one write.
	for i := uint64(0); i < 100; i++ {
		sys.Front(0).Access(i*64, false)
		sys.Front(1).Access(1<<20+i*64, i%2 == 0)
	}
	rep := sys.Report()
	snap := rep.Snapshot()

	if snap["l1.accesses"] != rep.PrivateTotal[0].Accesses || snap["l1.accesses"] == 0 {
		t.Errorf("l1.accesses %d vs %d", snap["l1.accesses"], rep.PrivateTotal[0].Accesses)
	}
	if snap["llc.accesses"] != rep.Shared.Accesses {
		t.Errorf("llc.accesses %d vs %d", snap["llc.accesses"], rep.Shared.Accesses)
	}
	if snap["paper_metric"] != rep.PaperMetric() {
		t.Errorf("paper_metric %d vs %d", snap["paper_metric"], rep.PaperMetric())
	}
	if snap["mem.reads"] != rep.MemReads {
		t.Errorf("mem.reads %d vs %d", snap["mem.reads"], rep.MemReads)
	}
	// The snapshot must be JSON-marshalable (manifest export path).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}

	// MIC has no shared level: no llc.* keys, paper metric = L2 read misses.
	micSys := NewSystem(MIC(), 1)
	for i := uint64(0); i < 50; i++ {
		micSys.Front(0).Access(i*64, false)
	}
	micSnap := micSys.Report().Snapshot()
	if _, ok := micSnap["llc.accesses"]; ok {
		t.Error("MIC snapshot has llc keys")
	}
	if micSnap["paper_metric"] != micSys.Report().PaperMetric() {
		t.Error("MIC paper_metric mismatch")
	}
}
