package cache

import "fmt"

// Platform bundles the cache geometry of one test machine: the private
// per-thread levels (inner first), an optional shared last level, an
// optional per-thread data TLB, and an optional next-line prefetcher.
type Platform struct {
	Name    string
	Private []LevelConfig
	Shared  LevelConfig // SizeBytes == 0 means no shared level
	// TLB, if Entries > 0, simulates a per-thread data TLB alongside
	// the caches (separate counters; does not affect cache behaviour).
	TLB TLBConfig
	// CoreThreads is how many simulated threads (Fronts) share one
	// core's cache hierarchy; 0 or 1 gives every thread private caches.
	// The MIC preset uses 4, matching Knight's Corner's four hardware
	// threads per core (the effect behind the paper's §IV-D discussion
	// of per-thread counter decline at high thread counts).
	CoreThreads int
	// NextLinePrefetch, if set, fetches line+1 into the outermost
	// private level on each demand miss there — a minimal model of the
	// sequential streamer real parts ship. It changes (usually lowers)
	// the demand-miss counters for streaming-friendly layouts, which is
	// exactly the ablation cmd/sfcbench's users may want to explore; the
	// paper-reproduction presets leave it off.
	NextLinePrefetch bool
}

// IvyBridge models one socket of the paper's edison.nersc.gov nodes:
// per-core 32KB 8-way L1d and 256KB 8-way L2, and a 30MB 20-way shared
// L3. The paper's counter on this platform is PAPI_L3_TCA — total L3
// accesses, i.e. requests that missed both private levels.
func IvyBridge() Platform {
	return Platform{
		Name: "ivybridge",
		Private: []LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Ways: 8},
			{Name: "L2", SizeBytes: 256 << 10, Ways: 8},
		},
		Shared: LevelConfig{Name: "L3", SizeBytes: 30 << 20, Ways: 20},
		TLB:    TLBConfig{Entries: 64, PageBytes: 4096},
	}
}

// MIC models the paper's babbage.nersc.gov Knight's Corner cards: 32KB
// 8-way L1 and a per-core 512KB 8-way L2, with no L3 (the paper, §IV-B1:
// "two levels of caching, as opposed to three in Ivy Bridge"). The
// counter here is L2_DATA_READ_MISS_MEM_FILL — L2 read misses filled
// from memory.
func MIC() Platform {
	return Platform{
		Name: "mic",
		Private: []LevelConfig{
			{Name: "L1", SizeBytes: 32 << 10, Ways: 8},
			{Name: "L2", SizeBytes: 512 << 10, Ways: 8},
		},
		TLB:         TLBConfig{Entries: 64, PageBytes: 4096},
		CoreThreads: 4,
	}
}

// Scaled returns a copy of p with every capacity divided by factor
// (associativity preserved). Trace-driven simulation of the paper's full
// 512³ volumes is impractically slow, so experiments shrink the volume
// and the caches together, preserving the working-set-to-cache ratios
// that drive the locality effects. Factor must be a power of two so set
// counts stay powers of two.
func Scaled(p Platform, factor int) Platform {
	if factor <= 0 || factor&(factor-1) != 0 {
		panic(fmt.Sprintf("cache: scale factor %d must be a positive power of two", factor))
	}
	q := Platform{
		Name:             fmt.Sprintf("%s/%d", p.Name, factor),
		TLB:              p.TLB,
		CoreThreads:      p.CoreThreads,
		NextLinePrefetch: p.NextLinePrefetch,
	}
	for _, c := range p.Private {
		c.SizeBytes /= factor
		if c.SizeBytes < LineBytes*c.Ways {
			c.SizeBytes = LineBytes * c.Ways
		}
		q.Private = append(q.Private, c)
	}
	if p.Shared.SizeBytes > 0 {
		c := p.Shared
		c.SizeBytes /= factor
		if c.SizeBytes < LineBytes*c.Ways {
			c.SizeBytes = LineBytes * c.Ways
		}
		q.Shared = c
	}
	return q
}

// ParsePlatform maps a name to a platform: "ivybridge"/"ivy", "mic".
// An optional "/N" suffix applies Scaled with factor N (e.g. "ivy/16").
func ParsePlatform(s string) (Platform, error) {
	name, factor := s, 1
	if i := indexByte(s, '/'); i >= 0 {
		name = s[:i]
		if _, err := fmt.Sscanf(s[i+1:], "%d", &factor); err != nil {
			return Platform{}, fmt.Errorf("cache: bad scale suffix in %q", s)
		}
	}
	var p Platform
	switch name {
	case "ivybridge", "ivy":
		p = IvyBridge()
	case "mic":
		p = MIC()
	default:
		return Platform{}, fmt.Errorf("cache: unknown platform %q", s)
	}
	if factor != 1 {
		if factor <= 0 || factor&(factor-1) != 0 {
			return Platform{}, fmt.Errorf("cache: scale factor %d must be a power of two", factor)
		}
		p = Scaled(p, factor)
	}
	return p, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
