// Package cache implements a trace-driven, multi-level, set-associative
// cache simulator. It is the repo's stand-in for the PAPI hardware
// counters the paper reads (PAPI_L3_TCA on Ivy Bridge,
// L2_DATA_READ_MISS_MEM_FILL on Intel MIC): the kernels replay their
// exact memory-access streams through a simulated hierarchy and the
// per-level hit/miss counters provide the same "how often did requests
// escape the inner caches" signal, deterministically and without
// hardware access.
//
// The model: private L1/L2 per simulated thread, an optional shared last
// level (Ivy Bridge's 30MB L3), LRU replacement, write-allocate,
// write-back. Cache coherence between private hierarchies is not
// modeled; the paper's kernels share data read-only (the source volume)
// and partition their writes, so coherence traffic is not the signal of
// interest.
package cache

import "fmt"

// LineBytes is the cache-line size used throughout (both test platforms
// use 64-byte lines).
const LineBytes = 64

const lineShift = 6

// Policy selects a replacement policy. The paper's §II-A motivates
// auto-tuning partly because "cache replacement strategies are often
// unknown"; the simulator makes the policy explicit and swappable.
type Policy int

// Replacement policies.
const (
	// LRU evicts the least recently used way (the default).
	LRU Policy = iota
	// FIFO evicts the oldest-inserted way, ignoring hits.
	FIFO
	// RandomPolicy evicts a deterministically pseudo-random way.
	RandomPolicy
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case RandomPolicy:
		return "random"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string // "L1", "L2", "L3"
	SizeBytes int    // total capacity
	Ways      int    // associativity
	Policy    Policy // replacement policy (zero value: LRU)
}

// Sets returns the number of sets implied by the config.
func (c LevelConfig) Sets() int { return c.SizeBytes / LineBytes / c.Ways }

func (c LevelConfig) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: level %s: size and ways must be positive", c.Name)
	}
	if c.SizeBytes%(LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: level %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	return nil
}

// Counters accumulates per-level statistics.
type Counters struct {
	Accesses     uint64 // demand accesses (reads + writes) presented to this level
	Reads        uint64
	Writes       uint64
	Hits         uint64
	Misses       uint64
	ReadMisses   uint64
	WriteMisses  uint64
	Evictions    uint64
	WritebacksIn uint64 // dirty-eviction writebacks received from the level above
}

// Add accumulates other into c (for summing per-thread private levels).
func (c *Counters) Add(other Counters) {
	c.Accesses += other.Accesses
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.ReadMisses += other.ReadMisses
	c.WriteMisses += other.WriteMisses
	c.Evictions += other.Evictions
	c.WritebacksIn += other.WritebacksIn
}

// MissRate returns Misses/Accesses, or 0 for an untouched level.
func (c Counters) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// level is one set-associative cache array.
type level struct {
	cfg  LevelConfig
	sets int
	// Flattened [set][way] arrays.
	tags  []uint64
	valid []bool
	dirty []bool
	used  []uint64 // LRU/FIFO timestamps
	tick  uint64
	rng   uint64 // RandomPolicy state

	Counters
}

func newLevel(cfg LevelConfig) *level {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	n := sets * cfg.Ways
	return &level{
		cfg:   cfg,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		dirty: make([]bool, n),
		used:  make([]uint64, n),
		rng:   0x9e3779b97f4a7c15,
	}
}

// lookup probes for line; on hit it refreshes LRU state and optionally
// marks the line dirty. It does not touch counters.
func (l *level) lookup(line uint64, markDirty bool) bool {
	set := int(line % uint64(l.sets))
	base := set * l.cfg.Ways
	l.tick++
	for w := 0; w < l.cfg.Ways; w++ {
		if l.valid[base+w] && l.tags[base+w] == line {
			if l.cfg.Policy == LRU {
				l.used[base+w] = l.tick // FIFO/Random ignore recency
			}
			if markDirty {
				l.dirty[base+w] = true
			}
			return true
		}
	}
	return false
}

// insert places line into its set, evicting the LRU way if necessary.
// It returns the evicted line and whether it was dirty.
func (l *level) insert(line uint64, dirty bool) (evicted uint64, evictedDirty, didEvict bool) {
	set := int(line % uint64(l.sets))
	base := set * l.cfg.Ways
	l.tick++
	victim := -1
	for w := 0; w < l.cfg.Ways; w++ {
		if !l.valid[base+w] {
			victim = base + w
			break
		}
	}
	if victim < 0 {
		switch l.cfg.Policy {
		case RandomPolicy:
			// xorshift64*: deterministic pseudo-random way choice.
			l.rng ^= l.rng >> 12
			l.rng ^= l.rng << 25
			l.rng ^= l.rng >> 27
			victim = base + int((l.rng*0x2545f4914f6cdd1d>>33)%uint64(l.cfg.Ways))
		default: // LRU and FIFO both evict the smallest timestamp
			victim = base
			for w := 1; w < l.cfg.Ways; w++ {
				if l.used[base+w] < l.used[victim] {
					victim = base + w
				}
			}
		}
	}
	if l.valid[victim] {
		evicted, evictedDirty, didEvict = l.tags[victim], l.dirty[victim], true
		l.Evictions++
	}
	l.tags[victim] = line
	l.valid[victim] = true
	l.dirty[victim] = dirty
	l.used[victim] = l.tick
	return evicted, evictedDirty, didEvict
}

// contains probes without updating LRU or dirty state (for tests and
// writeback routing).
func (l *level) contains(line uint64) bool {
	set := int(line % uint64(l.sets))
	base := set * l.cfg.Ways
	for w := 0; w < l.cfg.Ways; w++ {
		if l.valid[base+w] && l.tags[base+w] == line {
			return true
		}
	}
	return false
}

// markDirtyIfPresent sets the dirty bit if the line is resident,
// returning whether it was.
func (l *level) markDirtyIfPresent(line uint64) bool {
	set := int(line % uint64(l.sets))
	base := set * l.cfg.Ways
	for w := 0; w < l.cfg.Ways; w++ {
		if l.valid[base+w] && l.tags[base+w] == line {
			l.dirty[base+w] = true
			return true
		}
	}
	return false
}
