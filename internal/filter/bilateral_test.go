package filter

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

func defaultOpts() Options {
	return Options{Radius: 1, SigmaSpatial: 1, SigmaRange: 0.1}
}

func TestConstantVolumeUnchanged(t *testing.T) {
	for _, kind := range core.Kinds() {
		l := core.New(kind, 12, 12, 12)
		src := volume.Constant(l, 0.5)
		dst := grid.New(core.New(kind, 12, 12, 12))
		if err := Apply(src, dst, defaultOpts()); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		lo, hi := dst.MinMax()
		if math.Abs(float64(lo)-0.5) > 1e-6 || math.Abs(float64(hi)-0.5) > 1e-6 {
			t.Errorf("%v: constant input changed: %v..%v", kind, lo, hi)
		}
	}
}

func TestLayoutInvariance(t *testing.T) {
	// The filter's output must be bitwise identical across memory
	// layouts: iteration is in index space, so summation order is fixed.
	const n = 16
	ref := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 1, 0.05)
	var outputs []*grid.Grid[float32]
	for _, kind := range core.Kinds() {
		src, err := ref.Relayout(core.New(kind, n, n, n))
		if err != nil {
			t.Fatal(err)
		}
		dst := grid.New(core.New(kind, n, n, n))
		if err := Apply(src, dst, defaultOpts()); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, dst)
	}
	for i := 1; i < len(outputs); i++ {
		if !grid.Equal(outputs[0], outputs[i]) {
			t.Errorf("output differs between %v and %v layouts",
				core.Kinds()[0], core.Kinds()[i])
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	const n = 12
	src := volume.MRIPhantom(core.NewZOrder(n, n, n), 2, 0.05)
	var ref *grid.Grid[float32]
	for _, workers := range []int{1, 2, 5, 16} {
		dst := grid.New(core.NewZOrder(n, n, n))
		o := defaultOpts()
		o.Workers = workers
		if err := Apply(src, dst, o); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = dst
		} else if !grid.Equal(ref, dst) {
			t.Errorf("workers=%d changed the result", workers)
		}
	}
}

func TestPencilAxisInvariance(t *testing.T) {
	const n = 10
	src := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 3, 0.05)
	var ref *grid.Grid[float32]
	for _, axis := range []parallel.Axis{parallel.AxisX, parallel.AxisY, parallel.AxisZ} {
		dst := grid.New(core.NewArrayOrder(n, n, n))
		o := defaultOpts()
		o.Axis = axis
		if err := Apply(src, dst, o); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = dst
		} else if !grid.Equal(ref, dst) {
			t.Errorf("axis %v changed the result", axis)
		}
	}
}

func TestIterationOrderNearlyInvariant(t *testing.T) {
	// xyz vs zyx only changes floating-point summation order; results
	// must agree to tight tolerance.
	const n = 10
	src := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 4, 0.05)
	a := grid.New(core.NewArrayOrder(n, n, n))
	b := grid.New(core.NewArrayOrder(n, n, n))
	oa := defaultOpts()
	oa.Order = XYZ
	ob := defaultOpts()
	ob.Order = ZYX
	if err := Apply(src, a, oa); err != nil {
		t.Fatal(err)
	}
	if err := Apply(src, b, ob); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(a, b); d > 1e-5 {
		t.Errorf("xyz vs zyx max diff %v", d)
	}
}

func TestMatchesReference(t *testing.T) {
	const n = 10
	for _, radius := range []int{1, 2} {
		src := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 5, 0.1)
		fast := grid.New(core.NewArrayOrder(n, n, n))
		ref := grid.New(core.NewArrayOrder(n, n, n))
		o := Options{Radius: radius, SigmaSpatial: 1.5, SigmaRange: 0.15}
		if err := Apply(src, fast, o); err != nil {
			t.Fatal(err)
		}
		if err := Reference(src, ref, o); err != nil {
			t.Fatal(err)
		}
		if d := grid.MaxAbsDiff(fast, ref); d > 5e-3 {
			t.Errorf("radius %d: LUT filter deviates from reference by %v", radius, d)
		}
	}
}

func TestSmoothsNoise(t *testing.T) {
	const n = 16
	l := core.NewArrayOrder(n, n, n)
	src := grid.FromFunc(l, func(i, j, k int) float32 {
		return 0.5
	})
	rng := volume.NewRNG(9)
	nx, ny, nz := src.Dims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				src.Set(i, j, k, src.At(i, j, k)+0.05*rng.Normal())
			}
		}
	}
	dst := grid.New(core.NewArrayOrder(n, n, n))
	o := Options{Radius: 2, SigmaSpatial: 2, SigmaRange: 0.5}
	if err := Apply(src, dst, o); err != nil {
		t.Fatal(err)
	}
	if vs, vd := variance(src), variance(dst); vd >= vs/2 {
		t.Errorf("noise variance not reduced: %v -> %v", vs, vd)
	}
}

func TestPreservesEdgesBetterThanGaussian(t *testing.T) {
	const n = 24
	src := volume.SolidSphere(core.NewArrayOrder(n, n, n), 0.6)
	bil := grid.New(core.NewArrayOrder(n, n, n))
	gau := grid.New(core.NewArrayOrder(n, n, n))
	o := Options{Radius: 2, SigmaSpatial: 2, SigmaRange: 0.2}
	if err := Apply(src, bil, o); err != nil {
		t.Fatal(err)
	}
	if err := GaussianConvolve(src, gau, o); err != nil {
		t.Fatal(err)
	}
	// Measure the sharpest value step along the center row.
	edge := func(g *grid.Grid[float32]) float64 {
		var maxStep float64
		for i := 1; i < n; i++ {
			d := math.Abs(float64(g.At(i, n/2, n/2)) - float64(g.At(i-1, n/2, n/2)))
			if d > maxStep {
				maxStep = d
			}
		}
		return maxStep
	}
	eb, eg := edge(bil), edge(gau)
	if eb <= eg {
		t.Errorf("bilateral edge step %v not sharper than Gaussian %v", eb, eg)
	}
	// And the bilateral output must still be essentially binary at the
	// sphere center and corner.
	if bil.At(n/2, n/2, n/2) < 0.9 {
		t.Errorf("sphere interior smoothed away: %v", bil.At(n/2, n/2, n/2))
	}
	if bil.At(0, 0, 0) > 0.1 {
		t.Errorf("background polluted: %v", bil.At(0, 0, 0))
	}
}

func TestApplyViewsTracesEveryWorker(t *testing.T) {
	const n = 8
	src := volume.MRIPhantom(core.NewZOrder(n, n, n), 6, 0.05)
	dst := grid.New(core.NewZOrder(n, n, n))
	const workers = 3
	sinks := make([]*grid.CountingSink, workers)
	srcs := make([]grid.Reader, workers)
	dsts := make([]grid.Writer, workers)
	for w := 0; w < workers; w++ {
		sinks[w] = &grid.CountingSink{}
		srcs[w] = grid.NewTraced(src, 0, sinks[w])
		dsts[w] = grid.NewTraced(dst, 1<<32, sinks[w])
	}
	o := defaultOpts()
	o.Workers = workers
	if err := ApplyViews(srcs, dsts, o); err != nil {
		t.Fatal(err)
	}
	var writes uint64
	for w, s := range sinks {
		if s.Total() == 0 {
			t.Errorf("worker %d traced no accesses", w)
		}
		writes += s.Writes
	}
	if writes != n*n*n {
		t.Errorf("total writes %d, want one per voxel %d", writes, n*n*n)
	}
}

func TestApplyViewsValidation(t *testing.T) {
	src := volume.Constant(core.NewArrayOrder(4, 4, 4), 1)
	dst := grid.New(core.NewArrayOrder(4, 4, 4))
	o := defaultOpts()
	o.Workers = 2
	if err := ApplyViews([]grid.Reader{src}, []grid.Writer{dst}, o); err == nil {
		t.Error("view-count mismatch not rejected")
	}
	small := grid.New(core.NewArrayOrder(3, 4, 4))
	if err := ApplyViews([]grid.Reader{src, src}, []grid.Writer{dst, small}, o); err == nil {
		t.Error("dimension mismatch not rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	src := volume.Constant(core.NewArrayOrder(4, 4, 4), 1)
	dst := grid.New(core.NewArrayOrder(4, 4, 4))
	if err := Apply(src, dst, Options{Radius: 0}); err == nil {
		t.Error("radius 0 not rejected")
	}
	if err := Apply(src, dst, Options{Radius: 1, SigmaSpatial: -1}); err == nil {
		t.Error("negative sigma not rejected")
	}
	if err := Apply(src, dst, Options{Radius: 1, SigmaRange: -0.1}); err == nil {
		t.Error("negative range sigma not rejected")
	}
	if err := Apply(src, dst, Options{Radius: 1, Workers: -1}); err == nil {
		t.Error("negative workers not rejected")
	}
	// Zero means "use the default" and must be accepted — validation runs
	// on the caller's values, not the post-default rewrite.
	if err := Apply(src, dst, Options{Radius: 1}); err != nil {
		t.Errorf("all-zero optional fields rejected: %v", err)
	}
	for _, fn := range []func(grid.Reader, grid.Writer, Options) error{
		Reference, GaussianConvolve, GaussianSeparable,
	} {
		if err := fn(src, dst, Options{Radius: 1, Workers: -1}); err == nil {
			t.Error("negative workers not rejected by a sibling entry point")
		}
	}
}

func TestParseOrder(t *testing.T) {
	for s, want := range map[string]Order{
		"xyz": XYZ, "ZYX": ZYX, "Xyz": XYZ, " zyx ": ZYX, "\tXYZ\n": XYZ,
	} {
		got, err := ParseOrder(s)
		if err != nil || got != want {
			t.Errorf("ParseOrder(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOrder("yxz"); err == nil {
		t.Error("ParseOrder(yxz) should fail")
	}
	if XYZ.String() != "xyz" || ZYX.String() != "zyx" {
		t.Error("Order.String broken")
	}
	// Round trip: every order's String parses back to itself.
	for _, o := range []Order{XYZ, ZYX} {
		got, err := ParseOrder(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOrder(%v.String()) = %v, %v", o, got, err)
		}
	}
}

func TestFastPathBitIdentical(t *testing.T) {
	// The flat fast path must produce bitwise-identical output to the
	// generic interface path for every layout, both stencil orders, and
	// both kernels. Non-separable layouts (Hilbert, HZ) silently stay on
	// the interface path, so they trivially agree — including them keeps
	// the toggle honest everywhere.
	const nx, ny, nz = 13, 6, 9
	base := volume.MRIPhantom(core.NewArrayOrder(nx, ny, nz), 8, 0.08)
	for _, kind := range core.Kinds() {
		src, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range []Order{XYZ, ZYX} {
			fast := grid.New(core.New(kind, nx, ny, nz))
			slow := grid.New(core.New(kind, nx, ny, nz))
			o := Options{Radius: 2, Order: order, Workers: 3}
			if err := Apply(src, fast, o); err != nil {
				t.Fatal(err)
			}
			o.NoFastPath = true
			if err := Apply(src, slow, o); err != nil {
				t.Fatal(err)
			}
			if !grid.Equal(fast, slow) {
				t.Errorf("%v/%v: bilateral fast path not bit-identical (max diff %v)",
					kind, order, grid.MaxAbsDiff(fast, slow))
			}
		}
		fast := grid.New(core.New(kind, nx, ny, nz))
		slow := grid.New(core.New(kind, nx, ny, nz))
		o := Options{Radius: 2, Workers: 2}
		if err := GaussianConvolve(src, fast, o); err != nil {
			t.Fatal(err)
		}
		o.NoFastPath = true
		if err := GaussianConvolve(src, slow, o); err != nil {
			t.Fatal(err)
		}
		if !grid.Equal(fast, slow) {
			t.Errorf("%v: Gaussian fast path not bit-identical (max diff %v)",
				kind, grid.MaxAbsDiff(fast, slow))
		}
	}
}

func TestGaussianConvolveInstrumented(t *testing.T) {
	// GaussianConvolve must honor Stats and Observer like ApplyViews
	// does (it used to silently ignore both).
	const n = 8
	src := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 9, 0.05)
	dst := grid.New(core.NewArrayOrder(n, n, n))
	var st parallel.Stats
	var observed int64
	o := defaultOpts()
	o.Workers = 2
	o.Stats = &st
	o.Observer = func(_, _ int, _ time.Time, _ time.Duration) {
		atomic.AddInt64(&observed, 1)
	}
	if err := GaussianConvolve(src, dst, o); err != nil {
		t.Fatal(err)
	}
	pencils := parallel.PencilCount(n, n, n, o.Axis)
	if st.Items != pencils {
		t.Errorf("stats report %d items, want %d pencils", st.Items, pencils)
	}
	if st.Strategy != "round-robin" {
		t.Errorf("stats strategy %q, want round-robin", st.Strategy)
	}
	var total int
	for _, w := range st.Workers {
		total += w.Items
	}
	if total != pencils {
		t.Errorf("worker item counts sum to %d, want %d", total, pencils)
	}
	if int(observed) != pencils {
		t.Errorf("observer saw %d pencils, want %d", observed, pencils)
	}
	// Stats alone (nil observer) must also work.
	st = parallel.Stats{}
	o.Observer = nil
	if err := GaussianConvolve(src, dst, o); err != nil {
		t.Fatal(err)
	}
	if st.Items != pencils {
		t.Errorf("stats-only run reported %d items, want %d", st.Items, pencils)
	}
}

func TestRangeWeightAccuracy(t *testing.T) {
	// The LUT's knots sit at i*binWidth with round-to-nearest lookup, so
	// a zero value difference must return exactly 1 (the old
	// floor-into-bin-centers scheme returned exp of a half-bin offset),
	// and the worst-case error against exact exp over the covered range
	// is bounded by the half-bin slope error plus the clipped tail.
	o := Options{Radius: 1, SigmaRange: 0.15}.withDefaults()
	k := newKernel(o, 1)
	if w := k.rangeWeight(0); w != 1 {
		t.Fatalf("rangeWeight(0) = %v, want exactly 1", w)
	}
	span := rangeLUTSpan * o.SigmaRange
	inv2sr := 1 / (2 * o.SigmaRange * o.SigmaRange)
	var worst float64
	for i := 0; i <= 20000; i++ {
		dv := span * 1.02 * float64(i) / 20000 // probe past the tail cutoff too
		exact := math.Exp(-dv * dv * inv2sr)
		if dv >= span*(1-0.5/rangeLUTSize) {
			exact = 0 // the LUT treats the tail as zero; exp there is ≤ exp(-8)
		}
		if d := math.Abs(k.rangeWeight(dv) - exact); d > worst {
			worst = d
		}
	}
	// Half-bin slope error is ≤ maxslope*binwidth/2 ≈ 2.4e-4 for span=4σ,
	// and the clipped tail costs exp(-8) ≈ 3.4e-4.
	if worst > 5e-4 {
		t.Errorf("worst-case LUT error %v exceeds 5e-4", worst)
	}
}

func TestGaussianConvolvePreservesConstant(t *testing.T) {
	src := volume.Constant(core.NewArrayOrder(8, 8, 8), 0.25)
	dst := grid.New(core.NewArrayOrder(8, 8, 8))
	if err := GaussianConvolve(src, dst, defaultOpts()); err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(src, dst); d > 1e-6 {
		t.Errorf("constant changed by %v", d)
	}
}

func TestOutputRangeBounded(t *testing.T) {
	// A weighted average can never escape the input range.
	src := volume.WhiteNoise(core.NewArrayOrder(10, 10, 10), 11)
	dst := grid.New(core.NewArrayOrder(10, 10, 10))
	o := Options{Radius: 2, SigmaSpatial: 1, SigmaRange: 0.3}
	if err := Apply(src, dst, o); err != nil {
		t.Fatal(err)
	}
	slo, shi := src.MinMax()
	dlo, dhi := dst.MinMax()
	if dlo < slo-1e-6 || dhi > shi+1e-6 {
		t.Errorf("output range [%v,%v] escapes input [%v,%v]", dlo, dhi, slo, shi)
	}
}

func variance(g *grid.Grid[float32]) float64 {
	nx, ny, nz := g.Dims()
	var sum, sq float64
	n := float64(nx * ny * nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := float64(g.At(i, j, k))
				sum += v
				sq += v * v
			}
		}
	}
	mean := sum / n
	return sq/n - mean*mean
}

func BenchmarkBilateralR1Array(b *testing.B) { benchBilateral(b, core.ArrayKind, 1) }
func BenchmarkBilateralR1Z(b *testing.B)     { benchBilateral(b, core.ZKind, 1) }
func BenchmarkBilateralR2Array(b *testing.B) { benchBilateral(b, core.ArrayKind, 2) }
func BenchmarkBilateralR2Z(b *testing.B)     { benchBilateral(b, core.ZKind, 2) }

func benchBilateral(b *testing.B, kind core.Kind, radius int) {
	b.Helper()
	const n = 32
	src := volume.MRIPhantom(core.New(kind, n, n, n), 1, 0.05)
	dst := grid.New(core.New(kind, n, n, n))
	o := Options{Radius: radius, SigmaSpatial: 1.5, SigmaRange: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Apply(src, dst, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBilateralDtypes(b *testing.B) {
	// The headline claim of the dtype extension: a uint8 volume (4x
	// smaller, integer range weights) should beat float32 at the large
	// radius where the kernel is bandwidth-bound. Same field for every
	// dtype — converted from one float32 phantom.
	const n = 32
	o := Options{Radius: 5, SigmaSpatial: 2.0, SigmaRange: 0.1}
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.HilbertKind} {
		f32 := volume.MRIPhantom(core.New(kind, n, n, n), 1, 0.05)
		b.Run("float32/"+kind.String(), func(b *testing.B) {
			benchBilateralOf(b, f32, o)
		})
		b.Run("uint8/"+kind.String(), func(b *testing.B) {
			benchBilateralOf(b, grid.ConvertGrid[uint8](f32), o)
		})
	}
}

func benchBilateralOf[T grid.Scalar](b *testing.B, src *grid.Grid[T], o Options) {
	b.Helper()
	dst := grid.NewOf[T](src.Layout())
	b.SetBytes(int64(len(src.Data())) * int64(grid.DtypeFor[T]().Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ApplyOf[T](src, dst, o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGaussianSeparableMatchesBruteForce(t *testing.T) {
	const n = 14
	src := volume.MRIPhantom(core.NewZOrder(n, n, n), 7, 0.1)
	brute := grid.New(core.NewZOrder(n, n, n))
	sep := grid.New(core.NewArrayOrder(n, n, n))
	for _, radius := range []int{1, 2, 3} {
		o := Options{Radius: radius, SigmaSpatial: 1.5, Workers: 3}
		if err := GaussianConvolve(src, brute, o); err != nil {
			t.Fatal(err)
		}
		if err := GaussianSeparable(src, sep, o); err != nil {
			t.Fatal(err)
		}
		if d := grid.MaxAbsDiff(brute, sep); d > 1e-5 {
			t.Errorf("radius %d: separable deviates by %v", radius, d)
		}
	}
}

func TestGaussianSeparableValidation(t *testing.T) {
	src := volume.Constant(core.NewArrayOrder(4, 4, 4), 1)
	small := grid.New(core.NewArrayOrder(3, 4, 4))
	if err := GaussianSeparable(src, small, defaultOpts()); err == nil {
		t.Error("dim mismatch accepted")
	}
	dst := grid.New(core.NewArrayOrder(4, 4, 4))
	if err := GaussianSeparable(src, dst, Options{Radius: 0}); err == nil {
		t.Error("radius 0 accepted")
	}
}

func BenchmarkGaussianBruteR3(b *testing.B)     { benchGaussian(b, false) }
func BenchmarkGaussianSeparableR3(b *testing.B) { benchGaussian(b, true) }

func benchGaussian(b *testing.B, separable bool) {
	b.Helper()
	const n = 32
	src := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 1, 0.05)
	dst := grid.New(core.NewArrayOrder(n, n, n))
	o := Options{Radius: 3, SigmaSpatial: 2}
	fn := GaussianConvolve
	if separable {
		fn = GaussianSeparable
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(src, dst, o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInPlaceRejected(t *testing.T) {
	g := volume.Constant(core.NewArrayOrder(6, 6, 6), 1)
	if err := Apply(g, g, defaultOpts()); err == nil {
		t.Error("in-place filtering accepted")
	}
	// Aliasing through traced views is also caught.
	var sink grid.CountingSink
	src := grid.NewTraced(g, 0, &sink)
	dst := grid.NewTraced(g, 1<<40, &sink)
	o := defaultOpts()
	o.Workers = 1
	if err := ApplyViews([]grid.Reader{src}, []grid.Writer{dst}, o); err == nil {
		t.Error("traced aliasing accepted")
	}
}

func TestNonCubicVolumes(t *testing.T) {
	// The kernels must handle unequal, non-power-of-two extents under
	// every layout (the padding happens inside the layouts).
	const nx, ny, nz = 13, 6, 9
	base := grid.FromFunc(core.NewArrayOrder(nx, ny, nz), func(i, j, k int) float32 {
		return float32(i+2*j+3*k) / float32(nx+2*ny+3*nz)
	})
	var ref *grid.Grid[float32]
	for _, kind := range core.Kinds() {
		src, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		dst := grid.New(core.New(kind, nx, ny, nz))
		o := Options{Radius: 2, Axis: parallel.AxisY, Order: ZYX, Workers: 3}
		if err := Apply(src, dst, o); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if ref == nil {
			ref = dst
		} else if !grid.Equal(ref, dst) {
			t.Errorf("%v: non-cubic output differs", kind)
		}
	}
}
