package filter

import (
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

// checkStepperGeometry compares the neighbor-stepping walk against the
// per-tap table path and the generic interface path, tap for tap: all
// three must be bitwise identical over a volume chosen so the stencil
// exercises the stepper's hard geometry — brick-straddling pencils
// (extents that are not brick multiples), padded non-power-of-two
// Z-order index space, and stencils clipped by every volume face.
func checkStepperGeometry[T grid.Scalar](t *testing.T, l core.Layout, radius int, order Order, axis parallel.Axis) {
	t.Helper()
	src := volume.MRIPhantomOf[T](l, 17, 0.05)
	o := Options{Radius: radius, Order: order, Axis: axis, Workers: 3}

	step := grid.NewOf[T](l)
	if err := ApplyOf[T](src, step, o); err != nil {
		t.Fatal(err)
	}
	table := grid.NewOf[T](l)
	oTable := o
	oTable.NoStepper = true
	if err := ApplyOf[T](src, table, oTable); err != nil {
		t.Fatal(err)
	}
	iface := grid.NewOf[T](l)
	oIface := o
	oIface.NoFastPath = true
	if err := ApplyOf[T](src, iface, oIface); err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(step, table) {
		t.Errorf("%s/%v/r%d/%v/%v: stepping walk disagrees with table path",
			l.Name(), grid.DtypeFor[T](), radius, order, axis)
	}
	if !grid.Equal(step, iface) {
		t.Errorf("%s/%v/r%d/%v/%v: stepping walk disagrees with interface path",
			l.Name(), grid.DtypeFor[T](), radius, order, axis)
	}
}

// TestStepperEdgeGeometry is the stepper's geometry gauntlet: ZTiled
// with a small brick so radius-3 stencils straddle two brick faces at
// once and the last bricks are partial on every axis; Z order with
// non-power-of-two extents so walks run beside padded index space; and
// array order for the stride degenerate case. Both stencil orders and
// both paper pencil axes, at a radius larger than the brick remainder.
func TestStepperEdgeGeometry(t *testing.T) {
	layouts := []core.Layout{
		core.NewZTiled(11, 9, 10, 4), // partial bricks on all axes
		core.NewZTiled(8, 12, 8, 8),  // pencils cross one brick face
		core.NewZOrder(13, 6, 9),     // pads to 16x8x16
		core.NewArrayOrder(13, 6, 9), // stride walk
	}
	for _, l := range layouts {
		for _, order := range []Order{XYZ, ZYX} {
			for _, axis := range []parallel.Axis{parallel.AxisX, parallel.AxisZ} {
				checkStepperGeometry[float32](t, l, 3, order, axis)
			}
		}
	}
}

// TestStepperEdgeGeometryDtypes re-runs the gauntlet's hardest cell —
// brick-straddling ZTiled and padded Z order — for every element type,
// since the batched pencil driver's batch width depends on the dtype
// (64/sizeof(T) voxels) and integer dtypes round on store.
func TestStepperEdgeGeometryDtypes(t *testing.T) {
	for _, l := range []core.Layout{
		core.NewZTiled(11, 9, 10, 4),
		core.NewZOrder(13, 6, 9),
	} {
		checkStepperGeometry[uint8](t, l, 2, XYZ, parallel.AxisX)
		checkStepperGeometry[uint16](t, l, 2, XYZ, parallel.AxisX)
		checkStepperGeometry[float32](t, l, 2, ZYX, parallel.AxisZ)
		checkStepperGeometry[float64](t, l, 2, ZYX, parallel.AxisZ)
	}
}

// TestStepperRadiusExceedsBrick pins the case where the stencil is
// wider than a whole brick (radius 5 over brick 4): every stencil row
// crosses at least two brick faces, so the walk's table-fallback steps
// dominate and any off-by-one in the crossing detection corrupts taps.
func TestStepperRadiusExceedsBrick(t *testing.T) {
	l := core.NewZTiled(14, 12, 9, 4)
	checkStepperGeometry[float32](t, l, 5, XYZ, parallel.AxisX)
	checkStepperGeometry[float32](t, l, 5, ZYX, parallel.AxisZ)
}

// TestStepperBrickOne is the degenerate brick==1 ZTiled: the brick mask
// is zero, so every step must take the table fallback (there are no
// intra-brick bits to walk).
func TestStepperBrickOne(t *testing.T) {
	l := core.NewZTiled(7, 6, 5, 1)
	checkStepperGeometry[float32](t, l, 2, XYZ, parallel.AxisX)
}

// TestStepperTiledStaysOnTables pins the dispatch: Tiled has no
// neighbor walk (StepNone), so the fast path must keep its per-tap
// table behavior — with and without the NoStepper ablation toggle.
func TestStepperTiledStaysOnTables(t *testing.T) {
	l := core.NewTiled(11, 9, 10, 4)
	checkStepperGeometry[float32](t, l, 2, XYZ, parallel.AxisX)
}

// TestStepperMixedLayouts filters from a steppable source into a
// destination with a different layout (and vice versa): the source
// stencil walk and the destination write walk resolve their StepSpecs
// independently, including a StepNone destination behind a steppable
// source.
func TestStepperMixedLayouts(t *testing.T) {
	const nx, ny, nz = 11, 9, 10
	srcL := core.NewZTiled(nx, ny, nz, 4)
	src := volume.MRIPhantomOf[float32](srcL, 23, 0.05)
	o := Options{Radius: 2, Workers: 2}
	for _, dstL := range []core.Layout{
		core.NewArrayOrder(nx, ny, nz),
		core.NewZOrder(nx, ny, nz),
		core.NewTiled(nx, ny, nz, 4), // StepNone destination
	} {
		step := grid.NewOf[float32](dstL)
		if err := ApplyOf[float32](src, step, o); err != nil {
			t.Fatal(err)
		}
		oTable := o
		oTable.NoStepper = true
		table := grid.NewOf[float32](dstL)
		if err := ApplyOf[float32](src, table, oTable); err != nil {
			t.Fatal(err)
		}
		if !grid.Equal(step, table) {
			t.Errorf("ztiled -> %s: stepping walk disagrees with table path", dstL.Name())
		}
	}
}
