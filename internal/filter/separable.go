package filter

import (
	"fmt"
	"math"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

// GaussianSeparable computes the same result as GaussianConvolve in
// three 1-D passes (x, then y, then z), reducing the per-voxel work
// from (2R+1)³ to 3(2R+1). It is exact (up to floating-point rounding),
// including at the boundary: the clipped stencil region is always an
// axis-aligned box, so the 3-D normalization factorizes into the product
// of the per-axis normalizations.
//
// The bilateral filter has no such factorization — its photometric term
// couples the axes — which is exactly why the paper treats it as the
// representative *expensive* structured-access kernel. This function is
// the baseline that shows what separability buys when it is available.
//
// Intermediate passes run in a scratch grid with src's layout; dst may
// use any layout of the same dimensions.
func GaussianSeparable(src grid.Reader, dst grid.Writer, o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	o = o.withDefaults()
	nx, ny, nz := src.Dims()
	dx, dy, dz := dst.Dims()
	if nx != dx || ny != dy || nz != dz {
		return fmt.Errorf("filter: dimensions disagree: %dx%dx%d vs %dx%dx%d",
			nx, ny, nz, dx, dy, dz)
	}
	// 1-D Gaussian weights.
	r := o.Radius
	w := make([]float64, 2*r+1)
	inv2s2 := 1 / (2 * o.SigmaSpatial * o.SigmaSpatial)
	for d := -r; d <= r; d++ {
		w[d+r] = math.Exp(-float64(d*d) * inv2s2)
	}

	tmp1 := grid.New(core.NewArrayOrder(nx, ny, nz))
	tmp2 := grid.New(core.NewArrayOrder(nx, ny, nz))

	pass := func(in grid.Reader, out grid.Writer, axis parallel.Axis) {
		di, dj, dk := parallel.PencilStep(axis)
		pencils := parallel.PencilCount(nx, ny, nz, axis)
		parallel.RoundRobin(pencils, o.Workers, func(_, p int) {
			i, j, k, length := parallel.PencilStart(nx, ny, nz, axis, p)
			for s := 0; s < length; s++ {
				var num, den float64
				for d := -r; d <= r; d++ {
					q := s + d
					if q < 0 || q >= length {
						continue
					}
					weight := w[d+r]
					num += weight * float64(in.At(i+(q-s)*di, j+(q-s)*dj, k+(q-s)*dk))
					den += weight
				}
				out.Set(i, j, k, float32(num/den))
				i, j, k = i+di, j+dj, k+dk
			}
		})
	}
	pass(src, tmp1, parallel.AxisX)
	pass(tmp1, tmp2, parallel.AxisY)
	pass(tmp2, dst, parallel.AxisZ)
	return nil
}
