package filter

import (
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

// checkFilterDtype runs the bilateral filter and the Gaussian baseline
// for one element type over a phantom, once per layout, and checks the
// flat fast path against the forced interface path voxel for voxel.
func checkFilterDtype[T grid.Scalar](t *testing.T, kind core.Kind) {
	t.Helper()
	const n = 14
	l := core.New(kind, n, n, n)
	src := volume.MRIPhantomOf[T](l, 11, 0.04)
	o := Options{Radius: 2, Workers: 2}

	fast := grid.NewOf[T](l)
	if err := ApplyOf[T](src, fast, o); err != nil {
		t.Fatal(err)
	}
	slow := grid.NewOf[T](l)
	oSlow := o
	oSlow.NoFastPath = true
	if err := ApplyOf[T](src, slow, oSlow); err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(fast, slow) {
		t.Errorf("%v/%v: bilateral flat path disagrees with interface path", grid.DtypeFor[T](), kind)
	}

	gfast := grid.NewOf[T](l)
	if err := GaussianConvolveOf[T](src, gfast, o); err != nil {
		t.Fatal(err)
	}
	gslow := grid.NewOf[T](l)
	if err := GaussianConvolveOf[T](src, gslow, oSlow); err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(gfast, gslow) {
		t.Errorf("%v/%v: gaussian flat path disagrees with interface path", grid.DtypeFor[T](), kind)
	}
}

func TestBilateralDtypesFlatVsInterface(t *testing.T) {
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.HilbertKind} {
		checkFilterDtype[uint8](t, kind)
		checkFilterDtype[uint16](t, kind)
		checkFilterDtype[float32](t, kind)
		checkFilterDtype[float64](t, kind)
	}
}

func TestBilateralUint8PreservesConstant(t *testing.T) {
	// A constant field has zero value differences everywhere, so every
	// photometric weight is 1 and the filter must return the input code
	// exactly — including the round trip through [0,1] normalization.
	l := core.NewZOrder(10, 10, 10)
	for _, code := range []uint8{0, 1, 127, 254, 255} {
		src := grid.FromFuncOf[uint8](l, func(_, _, _ int) uint8 { return code })
		dst := grid.NewOf[uint8](l)
		if err := ApplyOf[uint8](src, dst, Options{Radius: 1, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if !grid.Equal(src, dst) {
			got := dst.At(5, 5, 5)
			t.Errorf("constant uint8 field %d filtered to %d", code, got)
		}
	}
}

func TestBilateralDtypeTracksFloat32(t *testing.T) {
	// The uint16 result should match the float32 result to within the
	// quantization granularity: the kernels run the same normalized
	// arithmetic, differing only in sample storage precision.
	const n = 12
	l := core.NewArrayOrder(n, n, n)
	f32 := volume.MRIPhantomOf[float32](l, 5, 0.03)
	u16 := volume.MRIPhantomOf[uint16](l, 5, 0.03)
	o := Options{Radius: 2, Workers: 2}
	dstF := grid.New(l)
	if err := Apply(f32, dstF, o); err != nil {
		t.Fatal(err)
	}
	dstU := grid.NewOf[uint16](l)
	if err := ApplyOf[uint16](u16, dstU, o); err != nil {
		t.Fatal(err)
	}
	back := grid.ConvertGrid[float32](dstU)
	// Input quantization (±½ code) can move samples across photometric
	// bins, so allow a few codes of slack rather than exactly one.
	if d := grid.MaxAbsDiff(dstF, back); d > 8.0/65535 {
		t.Errorf("uint16 bilateral deviates from float32 by %v (> 8 codes)", d)
	}
}

func TestBilateralTracedViewsPerDtype(t *testing.T) {
	// Traced views must keep working for narrow dtypes and must stay on
	// the interface path (every access observed).
	l := core.NewZOrder(8, 8, 8)
	src := volume.MRIPhantomOf[uint8](l, 3, 0.05)
	dst := grid.NewOf[uint8](l)
	var sink grid.CountingSink
	srcs := []grid.ReaderOf[uint8]{grid.NewTraced(src, 0, &sink)}
	dsts := []grid.WriterOf[uint8]{grid.NewTraced(dst, 1<<40, &sink)}
	if err := ApplyViewsOf(srcs, dsts, Options{Radius: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if sink.Writes != 8*8*8 {
		t.Errorf("traced writes = %d, want %d", sink.Writes, 8*8*8)
	}
	if sink.Reads == 0 {
		t.Error("traced reads not observed")
	}
	// And the traced (interface-path) result matches the plain run.
	plain := grid.NewOf[uint8](l)
	if err := ApplyOf[uint8](src, plain, Options{Radius: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(dst, plain) {
		t.Error("traced result differs from plain result")
	}
}
