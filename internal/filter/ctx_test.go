package filter

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

func ctxTestOptions(workers int) Options {
	return Options{Radius: 2, Axis: parallel.AxisX, Workers: workers}
}

func TestApplyCtxMatchesApply(t *testing.T) {
	const n = 12
	src := grid.FromFunc(core.NewZOrder(n, n, n), func(i, j, k int) float32 {
		return float32(i+2*j+3*k) / float32(6*n)
	})
	want := grid.New(core.NewZOrder(n, n, n))
	got := grid.New(core.NewZOrder(n, n, n))
	if err := Apply(src, want, ctxTestOptions(2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if err := ApplyCtx(ctx, src, got, ctxTestOptions(2)); err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(want, got) {
		t.Errorf("ApplyCtx with live context differs from Apply")
	}
}

func TestApplyCtxExpiredDeadline(t *testing.T) {
	const n = 16
	src := grid.New(core.NewArrayOrder(n, n, n))
	dst := grid.New(core.NewArrayOrder(n, n, n))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	err := ApplyCtx(ctx, src, dst, ctxTestOptions(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("expired deadline took %v, want prompt return", elapsed)
	}
	if err := GaussianConvolveCtx(ctx, src, dst, ctxTestOptions(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GaussianConvolveCtx err = %v, want DeadlineExceeded", err)
	}
}

// TestApplyCtxCancelStopsPencils cancels from the pencil observer and
// checks the round-robin handout stops: only in-flight pencils finish.
func TestApplyCtxCancelStopsPencils(t *testing.T) {
	const n, workers = 24, 4 // 576 x-pencils
	src := grid.New(core.NewArrayOrder(n, n, n))
	dst := grid.New(core.NewArrayOrder(n, n, n))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	var once sync.Once
	o := ctxTestOptions(workers)
	o.Observer = func(_, _ int, _ time.Time, _ time.Duration) {
		done.Add(1)
		once.Do(cancel)
	}
	err := ApplyCtx(ctx, src, dst, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if got := done.Load(); got > 2*workers {
		t.Errorf("%d pencils completed after mid-flight cancel (want <= %d of %d)", got, 2*workers, n*n)
	}
}
