package filter

// Neighbor-stepping bilateral kernels: the flat fast path's per-tap
// index resolution (three table loads + two adds, voxelFlatOf) replaced
// by walking the curve. Each pencil resolves its center index once
// through the tables; every subsequent index — the next center along
// the pencil, the stencil's low corner, and all side³ taps — is reached
// by the layout's neighbor step (core.StepSpec):
//
//   - StepStride (array order): constant stride adds.
//   - StepMorton (Z order): masked dilated-bit inc on the whole index;
//     the stencil corner is one masked multi-step subtract per lane.
//   - StepBrickMorton (ZTiled): dilated-bit inc on the intra-brick
//     Morton bits, per-axis table delta only when a step crosses a
//     brick face (amortized 1/brick of steps).
//
// The walks preserve bit-identity with voxelFlatOf: they visit exactly
// the same in-bounds taps in the same order with the same float
// operations, so the result is identical for every dtype (the golden
// digest tests pin this). The stencil loops never step past the last
// tap of a row/plane — stepping beyond could carry out of the axis
// lane (StepMorton, harmless but wasted) or read a per-axis table out
// of range (StepBrickMorton's crossing fallback, a panic). Pencil
// advances use the boundary-checked step forms, so a miscounted pencil
// surfaces as a refused step (index unchanged), never index corruption.

import (
	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/morton"
)

// stepBatchBytes is the pencil batch granule: results accumulate into a
// cache-line-sized stack buffer (64 / sizeof(T) voxels) and flush to
// the destination in a burst, so the destination walk and its stores
// stay out of the stencil loop's register pressure.
const stepBatchBytes = 64

// dilatedOffsets builds the per-kernel tap-offset tables for the Morton
// stepping kernels: dilX[t] = Part1By2(t), dilZ[t] = Part1By2(t)<<2.
// Dilating once at kernel setup keeps the inner loops at one table load
// plus a masked add per tap — fully independent across taps, unlike a
// serial Inc chain, and far smaller than inlining the dilation's six
// shift-mask rounds into the loop body.
func dilatedOffsets(side int) (dilX, dilZ []uint64) {
	dilX = make([]uint64, side)
	dilZ = make([]uint64, side)
	for t := range dilX {
		d := morton.Part1By2(uint64(t))
		dilX[t] = d
		dilZ[t] = d << 2
	}
	return dilX, dilZ
}

// stepPencilOf filters one pencil on the neighbor-stepping path. The
// source and destination center indices are resolved through the
// tables once, here; both walks then advance by boundary-checked
// steps. (di,dj,dk) is the pencil's unit step (exactly one is 1).
func stepPencilOf[T grid.Scalar](k *kernel, fsrc, fdst *grid.Flat[T], i, j, kk, di, dj, dk, length int) {
	var buf [stepBatchBytes]T
	bs := stepBatchBytes / grid.DtypeFor[T]().Size()
	srcIdx := fsrc.Index(i, j, kk)
	dstIdx := fdst.Index(i, j, kk)
	wi, wj, wk := i, j, kk
	done := 0
	for done < length {
		n := min(bs, length-done)
		for b := 0; b < n; b++ {
			switch fsrc.Step.Mode {
			case core.StepStride:
				buf[b] = voxelStepStride(k, fsrc, i, j, kk, srcIdx)
			case core.StepMorton:
				buf[b] = voxelStepMorton(k, fsrc, i, j, kk, srcIdx)
			case core.StepMasked:
				buf[b] = voxelStepMasked(k, fsrc, i, j, kk, srcIdx)
			default:
				buf[b] = voxelStepBrick(k, fsrc, i, j, kk, srcIdx)
			}
			if done+b+1 < length {
				srcIdx = stepNextOf(fsrc, srcIdx, i, j, kk, di, dj, dk)
				i, j, kk = i+di, j+dj, kk+dk
			}
		}
		for b := 0; b < n; b++ {
			fdst.Data[dstIdx] = buf[b]
			if done+b+1 < length {
				dstIdx = stepNextOf(fdst, dstIdx, wi, wj, wk, di, dj, dk)
				wi, wj, wk = wi+di, wj+dj, wk+dk
			}
		}
		done += n
	}
}

// stepNextOf advances a flat index one voxel in the positive pencil
// direction using the view's boundary-checked step: a refused step (at
// the extent edge) returns idx unchanged instead of corrupting it.
// StepNone views (Tiled destination, say) re-resolve through the
// tables.
func stepNextOf[T grid.Scalar](f *grid.Flat[T], idx, i, j, kk, di, dj, dk int) int {
	switch f.Step.Mode {
	case core.StepStride:
		return idx + di*f.Step.Sx + dj*f.Step.Sy + dk*f.Step.Sz
	case core.StepMorton:
		var c uint64
		var ok bool
		switch {
		case di != 0:
			c, ok = morton.IncXBounded(uint64(idx), uint32(f.Nx))
		case dj != 0:
			c, ok = morton.IncYBounded(uint64(idx), uint32(f.Ny))
		default:
			c, ok = morton.IncZBounded(uint64(idx), uint32(f.Nz))
		}
		if !ok {
			return idx
		}
		return int(c)
	case core.StepMasked:
		switch {
		case di != 0:
			if i+1 >= f.Nx {
				return idx
			}
			return int(morton.IncMask(uint64(idx), f.Step.MX))
		case dj != 0:
			if j+1 >= f.Ny {
				return idx
			}
			return int(morton.IncMask(uint64(idx), f.Step.MY))
		default:
			if kk+1 >= f.Nz {
				return idx
			}
			return int(morton.IncMask(uint64(idx), f.Step.MZ))
		}
	case core.StepBrickMorton:
		mask := f.Step.BrickMask
		switch {
		case di != 0:
			if i+1 >= f.Nx {
				return idx
			}
			if (i+1)&mask != 0 {
				return int(morton.IncX(uint64(idx)))
			}
			return idx + f.X[i+1] - f.X[i]
		case dj != 0:
			if j+1 >= f.Ny {
				return idx
			}
			if (j+1)&mask != 0 {
				return int(morton.IncY(uint64(idx)))
			}
			return idx + f.Y[j+1] - f.Y[j]
		default:
			if kk+1 >= f.Nz {
				return idx
			}
			if (kk+1)&mask != 0 {
				return int(morton.IncZ(uint64(idx)))
			}
			return idx + f.Z[kk+1] - f.Z[kk]
		}
	}
	ni, nj, nk := i+di, j+dj, kk+dk
	if ni >= f.Nx || nj >= f.Ny || nk >= f.Nz {
		return idx
	}
	return f.X[ni] + f.Y[nj] + f.Z[nk]
}

// voxelStepStride is voxelFlatOf for array order: the stencil corner is
// center + xlo + ylo·nx + zlo·nx·ny and every tap advance is a stride
// add. Steps past a row or plane's last tap are dead arithmetic on an
// index that is never dereferenced, so the loops stay branch-free.
func voxelStepStride[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk, center int) T {
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := f.Data[center]
	cv := float64(rawCenter) * k.invScale
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	sx, sy, sz := f.Step.Sx, f.Step.Sy, f.Step.Sz
	plane := center + xlo*sx + ylo*sy + zlo*sz
	var num, den float64
	if k.opt.Order == XYZ && sx == 1 {
		// Unit x-stride: the stencil row is contiguous in memory, so the
		// inner loop ranges over a subslice of the data and the matching
		// spatial-weight window — no per-tap index arithmetic or bounds
		// checks at all. Tap order and float ops are unchanged.
		for dz := zlo; dz <= zhi; dz++ {
			row := plane
			for dy := ylo; dy <= yhi; dy++ {
				base := ((dz+r)*side+(dy+r))*side + r
				sp := k.spatial[base+xlo : base+xhi+1]
				for t, raw := range f.Data[row : row+xhi-xlo+1] {
					v := float64(raw) * k.invScale
					w := sp[t] * k.rangeWeight(v-cv)
					num += w * v
					den += w
				}
				row += sy
			}
			plane += sz
		}
	} else if k.opt.Order == XYZ {
		for dz := zlo; dz <= zhi; dz++ {
			row := plane
			for dy := ylo; dy <= yhi; dy++ {
				base := ((dz+r)*side+(dy+r))*side + r
				idx := row
				for dx := xlo; dx <= xhi; dx++ {
					v := float64(f.Data[idx]) * k.invScale
					w := k.spatial[base+dx] * k.rangeWeight(v-cv)
					num += w * v
					den += w
					idx += sx
				}
				row += sy
			}
			plane += sz
		}
	} else {
		s2 := side * side
		for dx := xlo; dx <= xhi; dx++ {
			row := plane
			for dy := ylo; dy <= yhi; dy++ {
				sbase := (dy+r)*side + dx + r
				idx := row
				for dz := zlo; dz <= zhi; dz++ {
					v := float64(f.Data[idx]) * k.invScale
					w := k.spatial[(dz+r)*s2+sbase] * k.rangeWeight(v-cv)
					num += w * v
					den += w
					idx += sz
				}
				row += sy
			}
			plane += sx
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// voxelStepMorton is voxelFlatOf for Z order: the flat index is the
// Morton code, so the stencil corner is one masked multi-step subtract
// per dilated lane — no table access anywhere in the stencil. The inner
// loop's taps are addressed as independent masked multi-step adds from
// the row code (dilate the tap offset, add in the lane): a serial
// cc = Inc(cc) chain would put ~4 dependent ops on the critical path
// per tap, while the dilated offsets depend only on the loop counter,
// so the address math runs entirely under the accumulation chain.
// Row and plane advances stay single masked adds; they are off the
// per-tap path and cannot carry out of their lane.
func voxelStepMorton[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk, center int) T {
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := f.Data[center]
	cv := float64(rawCenter) * k.invScale
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	c := uint64(center)
	c = (((c & morton.XMask) - morton.Part1By2(uint64(-xlo))) & morton.XMask) | (c &^ morton.XMask)
	c = (((c & morton.YMask) - (morton.Part1By2(uint64(-ylo)) << 1)) & morton.YMask) | (c &^ morton.YMask)
	c = (((c & morton.ZMask) - (morton.Part1By2(uint64(-zlo)) << 2)) & morton.ZMask) | (c &^ morton.ZMask)
	data, dilX := f.Data, k.dilX
	var num, den float64
	if k.opt.Order == XYZ {
		for dz := zlo; dz <= zhi; dz++ {
			row := c
			for dy := ylo; dy <= yhi; dy++ {
				base := ((dz+r)*side+(dy+r))*side + r
				orr, hi := row|^morton.XMask, row&^morton.XMask
				sp := k.spatial[base+xlo : base+xhi+1]
				for t, d := range dilX[:xhi-xlo+1] {
					cc := ((orr + d) & morton.XMask) | hi
					v := float64(data[cc]) * k.invScale
					w := sp[t] * k.rangeWeight(v-cv)
					num += w * v
					den += w
				}
				row = morton.IncY(row)
			}
			c = morton.IncZ(c)
		}
	} else {
		s2 := side * side
		dilZ := k.dilZ
		for dx := xlo; dx <= xhi; dx++ {
			row := c
			for dy := ylo; dy <= yhi; dy++ {
				sbase := (dy+r)*side + dx + r
				orr, hi := row|^morton.ZMask, row&^morton.ZMask
				for t, d := range dilZ[:zhi-zlo+1] {
					cc := ((orr + d) & morton.ZMask) | hi
					v := float64(data[cc]) * k.invScale
					w := k.spatial[(zlo+t+r)*s2+sbase] * k.rangeWeight(v-cv)
					num += w * v
					den += w
				}
				row = morton.IncY(row)
			}
			c = morton.IncX(c)
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// voxelStepMasked is voxelFlatOf for BitLayout: the Z-order kernel's
// structure with every fixed Morton lane replaced by the view's own
// axis mask (core.StepMasked). The stencil corner is one masked
// multi-step subtract per lane — deposit the back-step count into the
// lane, subtract within it, exactly the Part1By2 corner trick
// generalized. The taps advance by serial masked adds: the interleave
// is arbitrary, so there is no per-kernel dilation table to make taps
// independent (dilatedOffsets is Part1By2-specific), but a masked add
// is three ALU ops and an in-bounds tap never carries out of its lane,
// so the walk is still table-free. Tap order and float operations match
// voxelFlatOf exactly, preserving bit-identity across layouts.
func voxelStepMasked[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk, center int) T {
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := f.Data[center]
	cv := float64(rawCenter) * k.invScale
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	mx, my, mz := f.Step.MX, f.Step.MY, f.Step.MZ
	c := uint64(center)
	c = (((c & mx) - morton.Deposit(uint64(-xlo), mx)) & mx) | (c &^ mx)
	c = (((c & my) - morton.Deposit(uint64(-ylo), my)) & my) | (c &^ my)
	c = (((c & mz) - morton.Deposit(uint64(-zlo), mz)) & mz) | (c &^ mz)
	data := f.Data
	var num, den float64
	if k.opt.Order == XYZ {
		for dz := zlo; dz <= zhi; dz++ {
			row := c
			for dy := ylo; dy <= yhi; dy++ {
				base := ((dz+r)*side+(dy+r))*side + r
				idx := row
				for dx := xlo; dx <= xhi; dx++ {
					v := float64(data[idx]) * k.invScale
					w := k.spatial[base+dx] * k.rangeWeight(v-cv)
					num += w * v
					den += w
					if dx < xhi {
						idx = morton.IncMask(idx, mx)
					}
				}
				if dy < yhi {
					row = morton.IncMask(row, my)
				}
			}
			if dz < zhi {
				c = morton.IncMask(c, mz)
			}
		}
	} else {
		s2 := side * side
		for dx := xlo; dx <= xhi; dx++ {
			row := c
			for dy := ylo; dy <= yhi; dy++ {
				sbase := (dy+r)*side + dx + r
				idx := row
				for dz := zlo; dz <= zhi; dz++ {
					v := float64(data[idx]) * k.invScale
					w := k.spatial[(dz+r)*s2+sbase] * k.rangeWeight(v-cv)
					num += w * v
					den += w
					if dz < zhi {
						idx = morton.IncMask(idx, mz)
					}
				}
				if dy < yhi {
					row = morton.IncMask(row, my)
				}
			}
			if dx < xhi {
				c = morton.IncMask(c, mx)
			}
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// voxelStepBrick is voxelFlatOf for ZTiled: the inner stencil loop
// splits each row into brick runs. Taps inside a run are addressed as
// independent masked dilated-bit adds from the run's start code, just
// like the Z-order kernel (a run never carries past the intra-brick
// lane bits because its length is capped at the brick face); crossing
// a face takes the per-axis table delta, amortized to 1/brick of the
// advances. The crossing reads the table at the walk's own in-bounds
// coordinates only — the walk never steps past a row or plane's last
// tap, so the fallback cannot read the table out of range.
func voxelStepBrick[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk, center int) T {
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := f.Data[center]
	cv := float64(rawCenter) * k.invScale
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	mask := f.Step.BrickMask
	// Walk from the center back to the stencil's low corner, one
	// boundary-legal step at a time (at most radius steps per axis).
	corner := center
	for c := i; c > i+xlo; c-- {
		if c&mask != 0 {
			corner = int(morton.DecX(uint64(corner)))
		} else {
			corner += f.X[c-1] - f.X[c]
		}
	}
	for c := j; c > j+ylo; c-- {
		if c&mask != 0 {
			corner = int(morton.DecY(uint64(corner)))
		} else {
			corner += f.Y[c-1] - f.Y[c]
		}
	}
	for c := kk; c > kk+zlo; c-- {
		if c&mask != 0 {
			corner = int(morton.DecZ(uint64(corner)))
		} else {
			corner += f.Z[c-1] - f.Z[c]
		}
	}
	data := f.Data
	var num, den float64
	if k.opt.Order == XYZ {
		plane := corner
		for dz := zlo; dz <= zhi; dz++ {
			row := plane
			for dy := ylo; dy <= yhi; dy++ {
				base := ((dz+r)*side+(dy+r))*side + r
				idx := row
				for dx := xlo; dx <= xhi; {
					x := i + dx
					run := min(xhi-dx, mask-x&mask) + 1
					orr, hi := uint64(idx)|^morton.XMask, uint64(idx)&^morton.XMask
					sp := k.spatial[base+dx : base+dx+run]
					for t, d := range k.dilX[:run] {
						cc := ((orr + d) & morton.XMask) | hi
						v := float64(data[cc]) * k.invScale
						w := sp[t] * k.rangeWeight(v-cv)
						num += w * v
						den += w
					}
					dx += run
					if dx > xhi {
						break
					}
					last := int(((orr + k.dilX[run-1]) & morton.XMask) | hi)
					idx = last + f.X[x+run] - f.X[x+run-1]
				}
				if dy < yhi {
					if y := j + dy; (y+1)&mask != 0 {
						row = int(morton.IncY(uint64(row)))
					} else {
						row += f.Y[y+1] - f.Y[y]
					}
				}
			}
			if dz < zhi {
				if z := kk + dz; (z+1)&mask != 0 {
					plane = int(morton.IncZ(uint64(plane)))
				} else {
					plane += f.Z[z+1] - f.Z[z]
				}
			}
		}
	} else {
		s2 := side * side
		plane := corner
		for dx := xlo; dx <= xhi; dx++ {
			row := plane
			for dy := ylo; dy <= yhi; dy++ {
				sbase := (dy+r)*side + dx + r
				idx := row
				for dz := zlo; dz <= zhi; {
					z := kk + dz
					run := min(zhi-dz, mask-z&mask) + 1
					orr, hi := uint64(idx)|^morton.ZMask, uint64(idx)&^morton.ZMask
					for t, d := range k.dilZ[:run] {
						cc := ((orr + d) & morton.ZMask) | hi
						v := float64(data[cc]) * k.invScale
						w := k.spatial[(dz+t+r)*s2+sbase] * k.rangeWeight(v-cv)
						num += w * v
						den += w
					}
					dz += run
					if dz > zhi {
						break
					}
					last := int(((orr + k.dilZ[run-1]) & morton.ZMask) | hi)
					idx = last + f.Z[z+run] - f.Z[z+run-1]
				}
				if dy < yhi {
					if y := j + dy; (y+1)&mask != 0 {
						row = int(morton.IncY(uint64(row)))
					} else {
						row += f.Y[y+1] - f.Y[y]
					}
				}
			}
			if dx < xhi {
				if x := i + dx; (x+1)&mask != 0 {
					plane = int(morton.IncX(uint64(plane)))
				} else {
					plane += f.X[x+1] - f.X[x]
				}
			}
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}
