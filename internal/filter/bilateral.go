// Package filter implements the paper's structured-memory-access kernel:
// a shared-memory-parallel 3D bilateral filter (§III-A).
//
// The bilateral filter (Tomasi & Manduchi 1998) is an edge-preserving
// smoother: each output voxel is a normalized weighted average of its
// stencil neighborhood, where the weight is the product of a geometric
// Gaussian g (distance in index space) and a photometric Gaussian c
// (distance in value space). The photometric term depends on the data,
// so unlike plain convolution the normalization cannot be precomputed —
// this is what makes the kernel "computationally intensive" while still
// being memory-bound.
//
// The kernels are generic over the grid.Scalar element types. Samples
// are normalized into [0,1] on load (dividing by the dtype's scale:
// 255 for uint8, 65535 for uint16, 1 for floats), all accumulation
// runs in float64, and results are converted back to the storage dtype
// on write (round-half-up with clamping for integer dtypes). Because
// the float scale is exactly 1, the float32 instantiation reproduces
// the pre-generic arithmetic bit for bit, and SigmaRange keeps meaning
// "value units in [0,1]" for every dtype.
//
// Parallelization follows the paper: 1-D pencils of output voxels are
// handed to workers round-robin (internal/parallel). The experiment
// knobs are the stencil radius, the pencil axis (px/pz), the stencil
// iteration order (xyz/zyx — the against-the-grain configuration), and
// the worker count.
package filter

import (
	"context"
	"fmt"
	"math"
	"strings"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

// Order is the stencil iteration order (§IV-B3): XYZ iterates the
// stencil's innermost loop over x (the most quickly varying direction in
// the array-order sense, its best case); ZYX iterates z innermost (the
// least favorable for array order).
type Order int

// Stencil iteration orders.
const (
	XYZ Order = iota
	ZYX
)

// String returns "xyz" or "zyx".
func (o Order) String() string {
	if o == ZYX {
		return "zyx"
	}
	return "xyz"
}

// ParseOrder maps "xyz"/"zyx" to an Order, folding case and surrounding
// whitespace exactly like core.ParseKind and parallel.ParseAxis.
func ParseOrder(s string) (Order, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "xyz":
		return XYZ, nil
	case "zyx":
		return ZYX, nil
	}
	return 0, fmt.Errorf("filter: unknown order %q", s)
}

// Options configures one bilateral-filter run.
type Options struct {
	// Radius is the stencil radius; the stencil is (2R+1)³. The paper's
	// configurations are radius 1 (3³, "r1"), radius 2 (5³, "r3") and
	// radius 5 (11³, "r5").
	Radius int
	// SigmaSpatial is the geometric Gaussian's standard deviation in
	// voxels. Zero defaults to Radius/2 + 0.5.
	SigmaSpatial float64
	// SigmaRange is the photometric Gaussian's standard deviation in
	// normalized value units (data in [0,1] after dtype normalization).
	// Zero defaults to 0.1.
	SigmaRange float64
	// Axis is the pencil direction handed to workers: AxisX is the
	// paper's "px" (width rows), AxisZ its "pz" (depth rows).
	Axis parallel.Axis
	// Order is the stencil iteration order.
	Order Order
	// Workers is the number of concurrent workers; zero defaults to 1.
	Workers int
	// Stats, if non-nil, receives per-worker scheduling statistics
	// (item counts, busy time) for the round-robin pencil handout.
	Stats *parallel.Stats
	// Observer, if non-nil, is called once per completed pencil with the
	// worker, pencil index, and timing. Enables timeline recording.
	Observer parallel.Observer
	// NoFastPath forces the generic interface path even for plain grids
	// with separable layouts, disabling the flat-access fast path. Used
	// by the fast-path ablation benches and cross-check tests; traced
	// views always take the interface path regardless.
	NoFastPath bool
	// NoStepper keeps the flat fast path on per-tap offset-table
	// lookups, disabling the neighbor-stepping stencil walk for layouts
	// that support one (array, Z order, ZTiled). Used by the stepper
	// ablation benches and the step-vs-table cross-check tests.
	NoStepper bool
}

func (o Options) withDefaults() Options {
	if o.SigmaSpatial == 0 {
		o.SigmaSpatial = float64(o.Radius)/2 + 0.5
	}
	if o.SigmaRange == 0 {
		o.SigmaRange = 0.1
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// validate checks the options exactly as the caller supplied them,
// before withDefaults rewrites zeros — so an explicit invalid value is
// reported truthfully while zero keeps meaning "use the default".
func (o Options) validate() error {
	if o.Radius < 1 {
		return fmt.Errorf("filter: radius %d must be >= 1", o.Radius)
	}
	if o.SigmaSpatial < 0 || o.SigmaRange < 0 {
		return fmt.Errorf("filter: sigmas must be non-negative (zero selects the default)")
	}
	if o.Workers < 0 {
		return fmt.Errorf("filter: workers %d must be non-negative (zero selects the default)", o.Workers)
	}
	return nil
}

// rangeLUTSize is the resolution of the photometric-weight lookup table.
// Computing exp() per neighbor sample would dominate the runtime and
// drown the memory-locality signal the experiments measure, so the
// photometric Gaussian is quantized: entries sit at the knots i·w
// (w = span/size) and lookups round to the nearest knot, so
// rangeWeight(0) is exactly 1 and the worst-case weight error over
// [0, 4σ] is a few 1e-4 (half-bin slope error plus the clipped
// exp(-8) ≈ 3.4e-4 tail).
const rangeLUTSize = 4096

// rangeLUTSpan is how many standard deviations the LUT covers; beyond
// it the weight is treated as zero (exp(-8) ≈ 3e-4).
const rangeLUTSpan = 4.0

// kernel holds the precomputed tables for one filter configuration,
// plus the dtype normalization scale resolved at setup so the hot
// loops never consult a Dtype.
type kernel struct {
	opt      Options
	spatial  []float64 // (2R+1)³ geometric weights, indexed [dz][dy][dx]
	rangeLUT []float64
	invBin   float64 // 1 / LUT bin width
	scale    float64 // dtype normalization scale (1 for float dtypes)
	invScale float64 // 1 / scale; multiplying by exactly 1 preserves bits
	// dilX[t] / dilZ[t] are the x- and z-lane dilated forms of the tap
	// offset t (Part1By2, shifted into the lane), sized to the stencil
	// edge. The Morton stepping kernels add them to a row code to
	// address taps independently of one another (bilateral_step.go).
	dilX, dilZ []uint64
}

func newKernel(o Options, scale float64) *kernel {
	k := &kernel{opt: o, scale: scale, invScale: 1 / scale}
	r := o.Radius
	side := 2*r + 1
	k.spatial = make([]float64, side*side*side)
	inv2s2 := 1 / (2 * o.SigmaSpatial * o.SigmaSpatial)
	idx := 0
	for dz := -r; dz <= r; dz++ {
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				d2 := float64(dx*dx + dy*dy + dz*dz)
				k.spatial[idx] = math.Exp(-d2 * inv2s2)
				idx++
			}
		}
	}
	k.rangeLUT = make([]float64, rangeLUTSize)
	span := rangeLUTSpan * o.SigmaRange
	for i := range k.rangeLUT {
		x := float64(i) / rangeLUTSize * span
		k.rangeLUT[i] = math.Exp(-x * x / (2 * o.SigmaRange * o.SigmaRange))
	}
	k.invBin = rangeLUTSize / span
	k.dilX, k.dilZ = dilatedOffsets(side)
	return k
}

// rangeWeight returns the quantized photometric weight for a value
// difference dv, rounding to the nearest LUT knot. (Flooring would
// systematically read the weight of a larger difference — off by up to
// a whole bin, and rangeWeight(0) would not be 1.)
func (k *kernel) rangeWeight(dv float64) float64 {
	// math.Abs is a branchless bit-clear; an `if dv < 0` here is a
	// data-dependent branch the predictor gets wrong about half the
	// time, and this runs once per stencil tap on every path.
	bin := int(math.Abs(dv)*k.invBin + 0.5)
	if bin >= rangeLUTSize {
		return 0
	}
	return k.rangeLUT[bin]
}

// voxelOf computes the filtered value at (i,j,k), iterating the stencil
// in the configured order and skipping out-of-bounds neighbors (the
// normalization runs over valid neighbors only). Samples normalize
// through k.invScale (exactly 1 for float dtypes, so the float32
// instantiation is bit-identical to the pre-generic kernel); a
// weightless stencil returns the raw center sample unchanged.
func voxelOf[T grid.Scalar](k *kernel, src grid.ReaderOf[T], i, j, kk int) T {
	nx, ny, nz := src.Dims()
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := src.At(i, j, kk)
	center := float64(rawCenter) * k.invScale
	var num, den float64
	if k.opt.Order == XYZ {
		for dz := -r; dz <= r; dz++ {
			z := kk + dz
			if z < 0 || z >= nz {
				continue
			}
			for dy := -r; dy <= r; dy++ {
				y := j + dy
				if y < 0 || y >= ny {
					continue
				}
				base := ((dz+r)*side + (dy + r)) * side
				for dx := -r; dx <= r; dx++ {
					x := i + dx
					if x < 0 || x >= nx {
						continue
					}
					v := float64(src.At(x, y, z)) * k.invScale
					w := k.spatial[base+dx+r] * k.rangeWeight(v-center)
					num += w * v
					den += w
				}
			}
		}
	} else {
		for dx := -r; dx <= r; dx++ {
			x := i + dx
			if x < 0 || x >= nx {
				continue
			}
			for dy := -r; dy <= r; dy++ {
				y := j + dy
				if y < 0 || y >= ny {
					continue
				}
				for dz := -r; dz <= r; dz++ {
					z := kk + dz
					if z < 0 || z >= nz {
						continue
					}
					v := float64(src.At(x, y, z)) * k.invScale
					w := k.spatial[((dz+r)*side+(dy+r))*side+dx+r] * k.rangeWeight(v-center)
					num += w * v
					den += w
				}
			}
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// voxelFlatOf is voxelOf on the flat fast path: the stencil loops run
// over the raw buffer through the layout's per-axis offset tables,
// resolved once per view instead of two interface dispatches per
// access. The out-of-bounds `continue` skips become clamped loop
// bounds, which visit exactly the same in-bounds neighbors in the same
// order — the accumulation sequence, and therefore the result, is
// bit-identical to the interface path for every dtype.
func voxelFlatOf[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk int) T {
	r := k.opt.Radius
	side := 2*r + 1
	rawCenter := f.Data[f.X[i]+f.Y[j]+f.Z[kk]]
	center := float64(rawCenter) * k.invScale
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	var num, den float64
	if k.opt.Order == XYZ {
		for dz := zlo; dz <= zhi; dz++ {
			zoff := f.Z[kk+dz]
			for dy := ylo; dy <= yhi; dy++ {
				yzoff := f.Y[j+dy] + zoff
				base := ((dz+r)*side + (dy + r)) * side
				for dx := xlo; dx <= xhi; dx++ {
					v := float64(f.Data[f.X[i+dx]+yzoff]) * k.invScale
					w := k.spatial[base+dx+r] * k.rangeWeight(v-center)
					num += w * v
					den += w
				}
			}
		}
	} else {
		for dx := xlo; dx <= xhi; dx++ {
			xoff := f.X[i+dx]
			for dy := ylo; dy <= yhi; dy++ {
				xyoff := xoff + f.Y[j+dy]
				for dz := zlo; dz <= zhi; dz++ {
					v := float64(f.Data[xyoff+f.Z[kk+dz]]) * k.invScale
					w := k.spatial[((dz+r)*side+(dy+r))*side+dx+r] * k.rangeWeight(v-center)
					num += w * v
					den += w
				}
			}
		}
	}
	if den == 0 {
		return rawCenter
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// Apply runs the bilateral filter from src into dst with all workers
// sharing the same views. src and dst must have identical dimensions
// and must not alias (the filter is not in-place).
func Apply(src grid.Reader, dst grid.Writer, o Options) error {
	return ApplyCtx(context.Background(), src, dst, o)
}

// ApplyOf is Apply for any element type.
func ApplyOf[T grid.Scalar](src grid.ReaderOf[T], dst grid.WriterOf[T], o Options) error {
	return ApplyCtxOf(context.Background(), src, dst, o)
}

// ApplyCtx is Apply with cooperative cancellation: workers stop taking
// pencils once ctx is done and the call returns ctx's error, leaving dst
// partially written. A context that can never be cancelled takes exactly
// the non-context code path.
func ApplyCtx(ctx context.Context, src grid.Reader, dst grid.Writer, o Options) error {
	return ApplyCtxOf[float32](ctx, src, dst, o)
}

// ApplyCtxOf is ApplyCtx for any element type.
func ApplyCtxOf[T grid.Scalar](ctx context.Context, src grid.ReaderOf[T], dst grid.WriterOf[T], o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	o = o.withDefaults()
	srcs := make([]grid.ReaderOf[T], o.Workers)
	dsts := make([]grid.WriterOf[T], o.Workers)
	for w := range srcs {
		srcs[w], dsts[w] = src, dst
	}
	return ApplyViewsCtxOf(ctx, srcs, dsts, o)
}

// ApplyViews runs the bilateral filter with per-worker source and
// destination views: worker w accesses the volumes only through srcs[w]
// and dsts[w]. This is how the cache-simulation experiments attach one
// traced view per simulated thread. len(srcs) and len(dsts) must equal
// Workers (after defaulting); all views must agree on dimensions.
func ApplyViews(srcs []grid.Reader, dsts []grid.Writer, o Options) error {
	return ApplyViewsCtxOf[float32](context.Background(), srcs, dsts, o)
}

// ApplyViewsOf is ApplyViews for any element type.
func ApplyViewsOf[T grid.Scalar](srcs []grid.ReaderOf[T], dsts []grid.WriterOf[T], o Options) error {
	return ApplyViewsCtxOf(context.Background(), srcs, dsts, o)
}

// ApplyViewsCtx is ApplyViews with cooperative cancellation; see
// ApplyCtx. Pencils are the cancellation granule: a pencil that has
// started runs to completion, and no new pencils are handed out after
// ctx is done.
func ApplyViewsCtx(ctx context.Context, srcs []grid.Reader, dsts []grid.Writer, o Options) error {
	return ApplyViewsCtxOf[float32](ctx, srcs, dsts, o)
}

// ApplyViewsCtxOf is ApplyViewsCtx for any element type.
func ApplyViewsCtxOf[T grid.Scalar](ctx context.Context, srcs []grid.ReaderOf[T], dsts []grid.WriterOf[T], o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err // fail fast before kernel tables and view flattening
	}
	o = o.withDefaults()
	if len(srcs) != o.Workers || len(dsts) != o.Workers {
		return fmt.Errorf("filter: need %d views, got %d src / %d dst", o.Workers, len(srcs), len(dsts))
	}
	nx, ny, nz := srcs[0].Dims()
	for w := 0; w < o.Workers; w++ {
		sx, sy, sz := srcs[w].Dims()
		dx, dy, dz := dsts[w].Dims()
		if sx != nx || sy != ny || sz != nz || dx != nx || dy != ny || dz != nz {
			return fmt.Errorf("filter: view %d dimensions disagree", w)
		}
		if backingGridOf[T](srcs[w]) != nil && backingGridOf[T](srcs[w]) == backingGridOf[T](dsts[w]) {
			return fmt.Errorf("filter: view %d source and destination alias the same grid (the filter is not in-place)", w)
		}
	}
	k := newKernel(o, grid.NormScale[T]())
	// Resolve each worker's views to the flat fast path once, at setup:
	// a plain *grid.Grid under a separable layout flattens to its raw
	// buffer plus per-axis offset tables; traced views and non-separable
	// layouts (Hilbert, HZ) resolve to nil and keep the interface path.
	fsrcs := make([]*grid.Flat[T], o.Workers)
	fdsts := make([]*grid.Flat[T], o.Workers)
	if !o.NoFastPath {
		for w := 0; w < o.Workers; w++ {
			fsrcs[w] = grid.Flatten(srcs[w])
			fdsts[w] = grid.FlattenWriter(dsts[w])
		}
	}
	pencils := parallel.PencilCount(nx, ny, nz, o.Axis)
	di, dj, dk := parallel.PencilStep(o.Axis)
	pencil := func(w, p int) {
		i, j, kk, length := parallel.PencilStart(nx, ny, nz, o.Axis, p)
		if fsrc, fdst := fsrcs[w], fdsts[w]; fsrc != nil && fdst != nil {
			// Prefer the neighbor-stepping walk when the source layout
			// exposes one; Tiled (StepNone) and the NoStepper ablation
			// stay on the per-tap table path.
			if !o.NoStepper && fsrc.Step.Mode != core.StepNone {
				stepPencilOf(k, fsrc, fdst, i, j, kk, di, dj, dk, length)
				return
			}
			for s := 0; s < length; s++ {
				fdst.Data[fdst.X[i]+fdst.Y[j]+fdst.Z[kk]] = voxelFlatOf(k, fsrc, i, j, kk)
				i, j, kk = i+di, j+dj, kk+dk
			}
			return
		}
		src, dst := srcs[w], dsts[w]
		for s := 0; s < length; s++ {
			dst.Set(i, j, kk, voxelOf(k, src, i, j, kk))
			i, j, kk = i+di, j+dj, kk+dk
		}
	}
	if o.Stats != nil || o.Observer != nil {
		st, err := parallel.RoundRobinInstrumentedCtx(ctx, pencils, o.Workers, pencil, o.Observer)
		if o.Stats != nil {
			*o.Stats = st
		}
		return err
	}
	return parallel.RoundRobinCtx(ctx, pencils, o.Workers, pencil)
}

// backingGridOf unwraps a view to the *grid.Grid[T] it reads or writes,
// or nil if the view is not grid-backed (aliasing then cannot be
// checked).
func backingGridOf[T grid.Scalar](v any) *grid.Grid[T] {
	switch g := v.(type) {
	case *grid.Grid[T]:
		return g
	case *grid.Traced[T]:
		return g.Grid()
	}
	return nil
}

// Reference computes the bilateral filter the slow, obviously-correct
// way: single-threaded, exact math.Exp photometric weights (no LUT).
// Tests compare Apply against it within the LUT quantization tolerance.
func Reference(src grid.Reader, dst grid.Writer, o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	o = o.withDefaults()
	o.Workers = 1
	nx, ny, nz := src.Dims()
	r := o.Radius
	inv2ss := 1 / (2 * o.SigmaSpatial * o.SigmaSpatial)
	inv2sr := 1 / (2 * o.SigmaRange * o.SigmaRange)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				center := float64(src.At(i, j, k))
				var num, den float64
				for dz := -r; dz <= r; dz++ {
					for dy := -r; dy <= r; dy++ {
						for dx := -r; dx <= r; dx++ {
							x, y, z := i+dx, j+dy, k+dz
							if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
								continue
							}
							v := float64(src.At(x, y, z))
							d2 := float64(dx*dx + dy*dy + dz*dz)
							dv := v - center
							if math.Abs(dv) >= rangeLUTSpan*o.SigmaRange*(1-0.5/rangeLUTSize) {
								continue // match the round-to-nearest LUT's zero tail
							}
							w := math.Exp(-d2*inv2ss) * math.Exp(-dv*dv*inv2sr)
							num += w * v
							den += w
						}
					}
				}
				if den == 0 {
					dst.Set(i, j, k, float32(center))
				} else {
					dst.Set(i, j, k, float32(num/den))
				}
			}
		}
	}
	return nil
}

// GaussianConvolve is the plain (non-bilateral) Gaussian smoothing
// baseline: identical stencil and spatial weights but no photometric
// term, so edges blur. It exists to demonstrate what the bilateral
// filter's edge preservation buys (Howison & Bethel 2014 comparison)
// and as a second structured-access workload for the benches.
func GaussianConvolve(src grid.Reader, dst grid.Writer, o Options) error {
	return GaussianConvolveCtxOf[float32](context.Background(), src, dst, o)
}

// GaussianConvolveOf is GaussianConvolve for any element type.
func GaussianConvolveOf[T grid.Scalar](src grid.ReaderOf[T], dst grid.WriterOf[T], o Options) error {
	return GaussianConvolveCtxOf(context.Background(), src, dst, o)
}

// GaussianConvolveCtx is GaussianConvolve with cooperative cancellation;
// see ApplyCtx for the semantics.
func GaussianConvolveCtx(ctx context.Context, src grid.Reader, dst grid.Writer, o Options) error {
	return GaussianConvolveCtxOf[float32](ctx, src, dst, o)
}

// GaussianConvolveCtxOf is GaussianConvolveCtx for any element type.
func GaussianConvolveCtxOf[T grid.Scalar](ctx context.Context, src grid.ReaderOf[T], dst grid.WriterOf[T], o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	o = o.withDefaults()
	if backingGridOf[T](src) != nil && backingGridOf[T](src) == backingGridOf[T](dst) {
		return fmt.Errorf("filter: source and destination alias the same grid")
	}
	nx, ny, nz := src.Dims()
	k := newKernel(o, grid.NormScale[T]())
	var fsrc, fdst *grid.Flat[T]
	if !o.NoFastPath {
		fsrc, fdst = grid.Flatten(src), grid.FlattenWriter(dst)
	}
	pencils := parallel.PencilCount(nx, ny, nz, o.Axis)
	di, dj, dk := parallel.PencilStep(o.Axis)
	pencil := func(_, p int) {
		i, j, kk, length := parallel.PencilStart(nx, ny, nz, o.Axis, p)
		if fsrc != nil && fdst != nil {
			for s := 0; s < length; s++ {
				fdst.Data[fdst.X[i]+fdst.Y[j]+fdst.Z[kk]] = gaussVoxelFlatOf(k, fsrc, i, j, kk)
				i, j, kk = i+di, j+dj, kk+dk
			}
			return
		}
		for s := 0; s < length; s++ {
			dst.Set(i, j, kk, gaussVoxelOf(k, src, i, j, kk))
			i, j, kk = i+di, j+dj, kk+dk
		}
	}
	// Like ApplyViews, route through the instrumented round-robin when
	// the caller asked for scheduling stats or a per-pencil observer.
	if o.Stats != nil || o.Observer != nil {
		st, err := parallel.RoundRobinInstrumentedCtx(ctx, pencils, o.Workers, pencil, o.Observer)
		if o.Stats != nil {
			*o.Stats = st
		}
		return err
	}
	return parallel.RoundRobinCtx(ctx, pencils, o.Workers, pencil)
}

// gaussVoxelOf computes the plain Gaussian smoothing at (i,j,k) on the
// interface path.
func gaussVoxelOf[T grid.Scalar](k *kernel, src grid.ReaderOf[T], i, j, kk int) T {
	nx, ny, nz := src.Dims()
	r := k.opt.Radius
	side := 2*r + 1
	var num, den float64
	for dz := -r; dz <= r; dz++ {
		z := kk + dz
		if z < 0 || z >= nz {
			continue
		}
		for dy := -r; dy <= r; dy++ {
			y := j + dy
			if y < 0 || y >= ny {
				continue
			}
			base := ((dz+r)*side + (dy + r)) * side
			for dx := -r; dx <= r; dx++ {
				x := i + dx
				if x < 0 || x >= nx {
					continue
				}
				w := k.spatial[base+dx+r]
				num += w * (float64(src.At(x, y, z)) * k.invScale)
				den += w
			}
		}
	}
	return grid.FromNorm[T](num/den, k.scale)
}

// gaussVoxelFlatOf is gaussVoxelOf on the flat fast path; same
// clamped-bounds transformation as voxelFlatOf, bit-identical
// accumulation.
func gaussVoxelFlatOf[T grid.Scalar](k *kernel, f *grid.Flat[T], i, j, kk int) T {
	r := k.opt.Radius
	side := 2*r + 1
	xlo, xhi := max(-r, -i), min(r, f.Nx-1-i)
	ylo, yhi := max(-r, -j), min(r, f.Ny-1-j)
	zlo, zhi := max(-r, -kk), min(r, f.Nz-1-kk)
	var num, den float64
	for dz := zlo; dz <= zhi; dz++ {
		zoff := f.Z[kk+dz]
		for dy := ylo; dy <= yhi; dy++ {
			yzoff := f.Y[j+dy] + zoff
			base := ((dz+r)*side + (dy + r)) * side
			for dx := xlo; dx <= xhi; dx++ {
				w := k.spatial[base+dx+r]
				num += w * (float64(f.Data[f.X[i+dx]+yzoff]) * k.invScale)
				den += w
			}
		}
	}
	return grid.FromNorm[T](num/den, k.scale)
}
