package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/metrics"
	"sfcmem/internal/parallel"
	"sfcmem/internal/timeline"
)

// ManifestSchema identifies the run-manifest JSON shape. Bump the suffix
// on any breaking field change; trajectory tooling (BENCH_*.json) keys on
// it.
const ManifestSchema = "sfcmem/run/v1"

// HostInfo describes the machine a run executed on.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Host captures the current process's host info.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// CellRecord is one measured experiment cell. The A/Z pairs mirror the
// paper's array-order vs Z-order comparison; Imbalance values are the
// scheduling load-imbalance factors (max/mean worker busy time, 1.0 =
// perfectly balanced) observed during the wall-clock runs.
type CellRecord struct {
	// Kernel is "bilat", "volrend", or "stride" (Fig 1's layout sweep).
	Kernel string `json:"kernel"`
	// Strategy is the work-distribution strategy: "round-robin" or
	// "dynamic". Empty for serial cells.
	Strategy string `json:"strategy,omitempty"`
	// Row labels bilateral rows ("r3 pz zyx") or Fig 1 layouts.
	Row string `json:"row,omitempty"`
	// View is the renderer orbit viewpoint (volrend cells only).
	View int `json:"view,omitempty"`
	// Threads is the worker count for the cell.
	Threads int `json:"threads,omitempty"`
	// RuntimeA/RuntimeZ are wall-clock seconds (min over repetitions).
	// Fig 1 cells use RuntimeA for their single measurement.
	RuntimeA float64 `json:"runtime_a_s,omitempty"`
	RuntimeZ float64 `json:"runtime_z_s,omitempty"`
	// MetricA/MetricZ are the platform's simulated paper counters.
	MetricA uint64 `json:"metric_a,omitempty"`
	MetricZ uint64 `json:"metric_z,omitempty"`
	// ImbalanceA/ImbalanceZ are load-imbalance factors from the final
	// wall-clock repetition of each layout (0 when not instrumented).
	ImbalanceA float64 `json:"imbalance_a,omitempty"`
	ImbalanceZ float64 `json:"imbalance_z,omitempty"`
}

// FigureManifest is one figure's machine-readable record.
type FigureManifest struct {
	Name           string       `json:"name"`
	ElapsedSeconds float64      `json:"elapsed_s"`
	Cells          []CellRecord `json:"cells,omitempty"`
	// Cache sums the simulated cache counters over every sim run the
	// figure performed (see cache.Report.Snapshot for the key set).
	Cache map[string]uint64 `json:"cache,omitempty"`
}

// RunManifest is the machine-readable record of a whole harness run:
// what ran, where, with which configuration, and what every cell
// measured. It round-trips through encoding/json.
type RunManifest struct {
	Schema         string           `json:"schema"`
	Host           HostInfo         `json:"host"`
	Config         Config           `json:"config"`
	Figures        []FigureManifest `json:"figures"`
	Metrics        map[string]any   `json:"metrics,omitempty"`
	ElapsedSeconds float64          `json:"elapsed_s"`
}

// NewRunManifest starts a manifest for the given configuration.
func NewRunManifest(cfg Config) *RunManifest {
	return &RunManifest{Schema: ManifestSchema, Host: Host(), Config: cfg}
}

// WriteJSON writes the manifest as indented JSON.
func (m *RunManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Instruments bundles the observability sinks a run reports into. Any
// field may be nil, and a nil *Instruments disables everything — the
// figure code calls the same methods either way and pays nothing when
// observability is off.
type Instruments struct {
	// Timeline receives per-worker spans (pencils, tiles, figure
	// phases) when non-nil.
	Timeline *timeline.Recorder
	// Metrics receives counters, phase timings, and cell-runtime
	// histograms when non-nil.
	Metrics *metrics.Registry
	// Manifest accumulates figure records when non-nil.
	Manifest *RunManifest

	mu    sync.Mutex
	cur   *FigureManifest
	start time.Time
}

// NewInstruments returns instruments with a fresh metrics registry and
// manifest for cfg. Attach a timeline by setting Timeline before the
// first figure runs.
func NewInstruments(cfg Config) *Instruments {
	return &Instruments{
		Metrics:  metrics.NewRegistry(),
		Manifest: NewRunManifest(cfg),
		start:    time.Now(),
	}
}

// StartFigure opens figure name's record; the returned func closes it
// (stamping the elapsed time and appending it to the manifest). Figures
// run sequentially, so at most one is open at a time.
func (ins *Instruments) StartFigure(name string) func() {
	if ins == nil {
		return func() {}
	}
	ins.mu.Lock()
	ins.cur = &FigureManifest{Name: name}
	ins.mu.Unlock()
	begin := time.Now()
	var endSpan func()
	if ins.Timeline != nil {
		endSpan = ins.Timeline.Begin(0, name)
	}
	return func() {
		elapsed := time.Since(begin)
		if endSpan != nil {
			endSpan()
		}
		if ins.Metrics != nil {
			ins.Metrics.PhaseTimer("figures").Add(name, elapsed)
		}
		ins.mu.Lock()
		if ins.cur != nil {
			ins.cur.ElapsedSeconds = elapsed.Seconds()
			if ins.Manifest != nil {
				ins.Manifest.Figures = append(ins.Manifest.Figures, *ins.cur)
			}
			ins.cur = nil
		}
		ins.mu.Unlock()
	}
}

// RecordCell appends one measured cell to the open figure and feeds the
// metrics registry.
func (ins *Instruments) RecordCell(c CellRecord) {
	if ins == nil {
		return
	}
	if ins.Metrics != nil {
		ins.Metrics.Counter("cells", 1).Inc(0)
		h := ins.Metrics.Histogram("cell_runtime")
		if c.RuntimeA > 0 {
			h.Observe(time.Duration(c.RuntimeA * float64(time.Second)))
		}
		if c.RuntimeZ > 0 {
			h.Observe(time.Duration(c.RuntimeZ * float64(time.Second)))
		}
	}
	ins.mu.Lock()
	if ins.cur != nil {
		ins.cur.Cells = append(ins.cur.Cells, c)
	}
	ins.mu.Unlock()
}

// AddCacheReport folds a simulated-cache report into the open figure's
// aggregate counters.
func (ins *Instruments) AddCacheReport(rep cache.Report) {
	if ins == nil {
		return
	}
	snap := rep.Snapshot()
	ins.mu.Lock()
	if ins.cur != nil {
		if ins.cur.Cache == nil {
			ins.cur.Cache = make(map[string]uint64, len(snap))
		}
		for k, v := range snap {
			ins.cur.Cache[k] += v
		}
	}
	ins.mu.Unlock()
}

// Observer returns a timeline item observer labelled name, or nil when
// no timeline is attached (which disables per-item timing entirely).
func (ins *Instruments) Observer(name string) parallel.Observer {
	if ins == nil || ins.Timeline == nil {
		return nil
	}
	return parallel.Observer(ins.Timeline.Observer(name))
}

// active reports whether any sink wants per-cell instrumentation.
func (ins *Instruments) active() bool { return ins != nil }

// Finish stamps the manifest's total elapsed time and final metrics
// snapshot. Call once, after the last figure.
func (ins *Instruments) Finish() {
	if ins == nil || ins.Manifest == nil {
		return
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if !ins.start.IsZero() {
		ins.Manifest.ElapsedSeconds = time.Since(ins.start).Seconds()
	}
	if ins.Metrics != nil {
		ins.Manifest.Metrics = ins.Metrics.Snapshot()
	}
}

// spanName builds a compact timeline label.
func spanName(kernel, layout string, extra string) string {
	if extra == "" {
		return fmt.Sprintf("%s %s", kernel, layout)
	}
	return fmt.Sprintf("%s %s %s", kernel, layout, extra)
}
