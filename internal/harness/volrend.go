package harness

import (
	"fmt"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// VolInput holds the combustion plume in each layout for one experiment.
type VolInput struct {
	Vol  map[core.Kind]*grid.Grid
	Size int
}

// NewVolInput generates the plume once and relayouts it into every
// built-in layout.
func NewVolInput(size int, seed uint64) *VolInput {
	in := &VolInput{Vol: make(map[core.Kind]*grid.Grid), Size: size}
	base := volume.CombustionPlume(core.NewArrayOrder(size, size, size), seed)
	in.Vol[core.ArrayKind] = base
	for _, kind := range core.Kinds()[1:] { // every non-array layout
		g, err := base.Relayout(core.New(kind, size, size, size))
		if err != nil {
			panic(err)
		}
		in.Vol[kind] = g
	}
	return in
}

// renderOptions are the paper's renderer settings: 32×32 tiles, unit
// step, early termination.
func renderOptions(threads int) render.Options {
	return render.Options{TileSize: 32, Workers: threads, Step: 1}
}

// TimeVolrend measures wall-clock runtime of one render (viewpoint ×
// layout × threads).
func TimeVolrend(in *VolInput, kind core.Kind, view, nViews, imgSize, threads int) (time.Duration, error) {
	vol := in.Vol[kind]
	cam := render.Orbit(view, nViews, in.Size, in.Size, in.Size, imgSize, imgSize)
	tf := render.DefaultTransferFunc()
	start := time.Now()
	if _, err := render.Render(vol, cam, tf, renderOptions(threads)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// SimVolrend replays one render through the cache simulator with one
// traced view per simulated thread, returning the platform's paper
// counter and the full report.
func SimVolrend(in *VolInput, kind core.Kind, view, nViews, imgSize, threads int, platform cache.Platform) (uint64, cache.Report, error) {
	vol := in.Vol[kind]
	cam := render.Orbit(view, nViews, in.Size, in.Size, in.Size, imgSize, imgSize)
	tf := render.DefaultTransferFunc()
	sys := cache.NewSystem(platform, threads)
	views := make([]grid.Reader, threads)
	for w := 0; w < threads; w++ {
		views[w] = grid.NewTraced(vol, 0, sys.Front(w))
	}
	if _, err := render.RenderViews(views, cam, tf, renderOptions(threads)); err != nil {
		return 0, cache.Report{}, err
	}
	rep := sys.Report()
	return rep.PaperMetric(), rep, nil
}

// measureVolrendPair interleaves array/Z wall-clock repetitions for one
// (view, threads) cell, keeping per-layout minimums (see
// measureBilatPair for the rationale).
func measureVolrendPair(wall *VolInput, view, nViews, imgSize, threads, reps int) (a, z time.Duration, err error) {
	a, z = time.Duration(1<<63-1), time.Duration(1<<63-1)
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		ta, err := TimeVolrend(wall, core.ArrayKind, view, nViews, imgSize, threads)
		if err != nil {
			return 0, 0, err
		}
		tz, err := TimeVolrend(wall, core.ZKind, view, nViews, imgSize, threads)
		if err != nil {
			return 0, 0, err
		}
		a = minDuration(a, ta)
		z = minDuration(z, tz)
	}
	return a, z, nil
}

// RunVolrendGrid measures the full (viewpoints × threads) grid with
// both layouts per cell.
func RunVolrendGrid(cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string)) ([][]Cell, error) {
	wall := NewVolInput(cfg.VolSize, cfg.Seed)
	sim := NewVolInput(cfg.VolSimSize, cfg.Seed)
	out := make([][]Cell, cfg.Views)
	for view := 0; view < cfg.Views; view++ {
		out[view] = make([]Cell, len(threadList))
		for ti, threads := range threadList {
			if progress != nil {
				progress(fmt.Sprintf("volrend view=%d threads=%d", view, threads))
			}
			a, z, err := measureVolrendPair(wall, view, cfg.Views, cfg.ImageSize, threads, cfg.Reps)
			if err != nil {
				return nil, err
			}
			ma, _, err := SimVolrend(sim, core.ArrayKind, view, cfg.Views, cfg.SimImageSize, threads, platform)
			if err != nil {
				return nil, err
			}
			mz, _, err := SimVolrend(sim, core.ZKind, view, cfg.Views, cfg.SimImageSize, threads, platform)
			if err != nil {
				return nil, err
			}
			out[view][ti] = Cell{RuntimeA: a, RuntimeZ: z, MetricA: ma, MetricZ: mz}
		}
	}
	return out, nil
}
