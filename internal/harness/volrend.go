package harness

import (
	"context"
	"fmt"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// VolInput holds the combustion plume in each layout for one experiment.
type VolInput struct {
	Vol  map[core.Kind]*grid.Grid[float32]
	Size int
	// NoFastPath forces wall-clock runs onto the generic interface path
	// (set from Config.NoFastPath by the grid runners).
	NoFastPath bool
}

// NewVolInput generates the plume once and relayouts it into every
// built-in layout.
func NewVolInput(size int, seed uint64) *VolInput {
	in := &VolInput{Vol: make(map[core.Kind]*grid.Grid[float32]), Size: size}
	base := volume.CombustionPlume(core.NewArrayOrder(size, size, size), seed)
	in.Vol[core.ArrayKind] = base
	for _, kind := range core.Kinds()[1:] { // every non-array layout
		g, err := base.Relayout(core.New(kind, size, size, size))
		if err != nil {
			panic(err)
		}
		in.Vol[kind] = g
	}
	return in
}

// renderOptions are the paper's renderer settings: 32×32 tiles, unit
// step, early termination.
func renderOptions(threads int) render.Options {
	return render.Options{TileSize: 32, Workers: threads, Step: 1}
}

// TimeVolrend measures wall-clock runtime of one render (viewpoint ×
// layout × threads).
func TimeVolrend(in *VolInput, kind core.Kind, view, nViews, imgSize, threads int) (time.Duration, error) {
	return timeVolrend(context.Background(), in, kind, view, nViews, imgSize, threads, nil, nil)
}

// timeVolrend is TimeVolrend with optional scheduling instrumentation:
// st receives the dynamic-queue per-worker stats, obs each completed
// tile.
func timeVolrend(ctx context.Context, in *VolInput, kind core.Kind, view, nViews, imgSize, threads int,
	st *parallel.Stats, obs parallel.Observer) (time.Duration, error) {
	vol := in.Vol[kind]
	cam := render.Orbit(view, nViews, in.Size, in.Size, in.Size, imgSize, imgSize)
	tf := render.DefaultTransferFunc()
	o := renderOptions(threads)
	o.Stats = st
	o.Observer = obs
	o.NoFastPath = in.NoFastPath
	start := time.Now()
	if _, err := render.RenderCtx(ctx, vol, cam, tf, o); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// SimVolrend replays one render through the cache simulator with one
// traced view per simulated thread, returning the platform's paper
// counter and the full report.
func SimVolrend(in *VolInput, kind core.Kind, view, nViews, imgSize, threads int, platform cache.Platform) (uint64, cache.Report, error) {
	return simVolrend(context.Background(), in, kind, view, nViews, imgSize, threads, platform, nil)
}

// simVolrend is SimVolrend with optional replay-chunk observation (each
// tile replayed through the simulated caches becomes a timeline span).
func simVolrend(ctx context.Context, in *VolInput, kind core.Kind, view, nViews, imgSize, threads int,
	platform cache.Platform, obs parallel.Observer) (uint64, cache.Report, error) {
	vol := in.Vol[kind]
	cam := render.Orbit(view, nViews, in.Size, in.Size, in.Size, imgSize, imgSize)
	tf := render.DefaultTransferFunc()
	sys := cache.NewSystem(platform, threads)
	views := make([]grid.Reader, threads)
	for w := 0; w < threads; w++ {
		views[w] = grid.NewTraced(vol, 0, sys.Front(w))
	}
	o := renderOptions(threads)
	o.Observer = obs
	if _, err := render.RenderViewsCtx(ctx, views, cam, tf, o); err != nil {
		return 0, cache.Report{}, err
	}
	rep := sys.Report()
	return rep.PaperMetric(), rep, nil
}

// measureVolrendPair interleaves array/Z wall-clock repetitions for one
// (view, threads) cell, keeping per-layout minimums (see
// measureBilatPair for the rationale and the imbalance semantics).
func measureVolrendPair(ctx context.Context, wall *VolInput, view, nViews, imgSize, threads, reps int,
	ins *Instruments) (c Cell, err error) {
	c.RuntimeA, c.RuntimeZ = time.Duration(1<<63-1), time.Duration(1<<63-1)
	if reps < 1 {
		reps = 1
	}
	var stA, stZ *parallel.Stats
	var obsA, obsZ parallel.Observer
	if ins.active() {
		stA, stZ = &parallel.Stats{}, &parallel.Stats{}
		obsA = ins.Observer(spanName("volrend", "a", fmt.Sprintf("view %d", view)))
		obsZ = ins.Observer(spanName("volrend", "z", fmt.Sprintf("view %d", view)))
	}
	for rep := 0; rep < reps; rep++ {
		ta, err := timeVolrend(ctx, wall, core.ArrayKind, view, nViews, imgSize, threads, stA, obsA)
		if err != nil {
			return Cell{}, err
		}
		tz, err := timeVolrend(ctx, wall, core.ZKind, view, nViews, imgSize, threads, stZ, obsZ)
		if err != nil {
			return Cell{}, err
		}
		c.RuntimeA = minDuration(c.RuntimeA, ta)
		c.RuntimeZ = minDuration(c.RuntimeZ, tz)
	}
	if stA != nil {
		c.ImbalanceA = stA.ImbalanceFactor()
		c.ImbalanceZ = stZ.ImbalanceFactor()
	}
	return c, nil
}

// RunVolrendGrid measures the full (viewpoints × threads) grid with
// both layouts per cell; ins, if non-nil, receives cell records, cache
// reports, and timeline spans.
func RunVolrendGrid(cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string), ins *Instruments) ([][]Cell, error) {
	return RunVolrendGridCtx(context.Background(), cfg, threadList, platform, progress, ins)
}

// RunVolrendGridCtx is RunVolrendGrid with cooperative cancellation; see
// RunBilatGridCtx for the semantics.
func RunVolrendGridCtx(ctx context.Context, cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string), ins *Instruments) ([][]Cell, error) {
	wall := NewVolInput(cfg.VolSize, cfg.Seed)
	wall.NoFastPath = cfg.NoFastPath
	sim := NewVolInput(cfg.VolSimSize, cfg.Seed)
	out := make([][]Cell, cfg.Views)
	for view := 0; view < cfg.Views; view++ {
		out[view] = make([]Cell, len(threadList))
		for ti, threads := range threadList {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if progress != nil {
				progress(fmt.Sprintf("volrend view=%d threads=%d", view, threads))
			}
			c, err := measureVolrendPair(ctx, wall, view, cfg.Views, cfg.ImageSize, threads, cfg.Reps, ins)
			if err != nil {
				return nil, err
			}
			ma, repA, err := simVolrend(ctx, sim, core.ArrayKind, view, cfg.Views, cfg.SimImageSize, threads, platform,
				ins.Observer(spanName("sim volrend", "a", fmt.Sprintf("view %d", view))))
			if err != nil {
				return nil, err
			}
			mz, repZ, err := simVolrend(ctx, sim, core.ZKind, view, cfg.Views, cfg.SimImageSize, threads, platform,
				ins.Observer(spanName("sim volrend", "z", fmt.Sprintf("view %d", view))))
			if err != nil {
				return nil, err
			}
			ins.AddCacheReport(repA)
			ins.AddCacheReport(repZ)
			c.MetricA, c.MetricZ = ma, mz
			out[view][ti] = c
			ins.RecordCell(CellRecord{
				Kernel:     "volrend",
				Strategy:   "dynamic",
				View:       view,
				Threads:    threads,
				RuntimeA:   c.RuntimeA.Seconds(),
				RuntimeZ:   c.RuntimeZ.Seconds(),
				MetricA:    ma,
				MetricZ:    mz,
				ImbalanceA: c.ImbalanceA,
				ImbalanceZ: c.ImbalanceZ,
			})
		}
	}
	return out, nil
}
