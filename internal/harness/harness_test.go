package harness

import (
	"math"
	"strings"
	"testing"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/parallel"
)

// microConfig is a minimal grid that exercises every harness code path
// in well under a second per figure.
func microConfig() Config {
	c := DefaultConfig()
	c.BilatSize = 16
	c.BilatSimSize = 16
	c.VolSize = 24
	c.VolSimSize = 16
	c.ImageSize = 24
	c.SimImageSize = 16
	c.IvyThreads = []int{2}
	c.MICThreads = []int{3}
	c.Views = 4
	c.FixedThreads = 2
	c.Radii = []RadiusSpec{{Label: "r1", Radius: 1}}
	return c
}

func TestBilatRows(t *testing.T) {
	rows := DefaultConfig().BilatRows()
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	if rows[0].Label != "r1 px xyz" || rows[5].Label != "r5 pz zyx" {
		t.Errorf("row labels %q .. %q", rows[0].Label, rows[5].Label)
	}
	if rows[4].Radius != 5 {
		t.Errorf("r5 radius %d", rows[4].Radius)
	}
}

func TestFig1Structure(t *testing.T) {
	res := Fig1(microConfig())
	if res.Name != "fig1" || len(res.Tables) != 2 {
		t.Fatalf("unexpected result %q with %d tables", res.Name, len(res.Tables))
	}
	axis := res.Tables[0]
	// Array order: x-stride exactly 1, z-stride = nx*ny.
	if got := axis.At(0, 0); got != 1 {
		t.Errorf("array x-stride %v", got)
	}
	if got := axis.At(0, 2); got != 16*16 {
		t.Errorf("array z-stride %v", got)
	}
	// Z order's worst/best axis ratio beats array order's.
	if axis.At(1, 3) >= axis.At(0, 3) {
		t.Errorf("zorder anisotropy %v not below array %v", axis.At(1, 3), axis.At(0, 3))
	}
	// Ray table: every cell filled (no NaN from empty marches).
	ray := res.Tables[1]
	for r := range ray.RowLabels {
		for c := range ray.ColLabels {
			if math.IsNaN(ray.At(r, c)) {
				t.Errorf("ray table cell (%d,%d) is NaN", r, c)
			}
		}
	}
}

func TestRunBilatGridPopulatesCells(t *testing.T) {
	cfg := microConfig()
	cells, err := RunBilatGrid(cfg, cfg.IvyThreads, cfg.ivyPlatform(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d rows, want 2", len(cells))
	}
	for label, row := range cells {
		for ti, c := range row {
			if c.RuntimeA <= 0 || c.RuntimeZ <= 0 {
				t.Errorf("%s[%d]: non-positive runtimes %+v", label, ti, c)
			}
			if c.MetricA == 0 || c.MetricZ == 0 {
				t.Errorf("%s[%d]: zero metrics %+v", label, ti, c)
			}
		}
	}
}

func TestSimBilatDeterministic(t *testing.T) {
	cfg := microConfig()
	in := NewBilatInput(cfg.BilatSimSize, cfg.Seed)
	row := cfg.BilatRows()[0]
	m1, _, err := SimBilat(in, core.ZKind, row, 1, cfg.ivyPlatform())
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := SimBilat(in, core.ZKind, row, 1, cfg.ivyPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("single-thread sim not deterministic: %d vs %d", m1, m2)
	}
}

func TestSimVolrendDeterministicAndViewDependent(t *testing.T) {
	cfg := microConfig()
	in := NewVolInput(32, cfg.Seed)
	p := cfg.ivyPlatform()
	a0, _, err := SimVolrend(in, core.ArrayKind, 0, 8, 32, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	a0b, _, err := SimVolrend(in, core.ArrayKind, 0, 8, 32, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if a0 != a0b {
		t.Errorf("sim not deterministic: %d vs %d", a0, a0b)
	}
	a2, _, err := SimVolrend(in, core.ArrayKind, 2, 8, 32, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	z0, _, err := SimVolrend(in, core.ZKind, 0, 8, 32, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	z2, _, err := SimVolrend(in, core.ZKind, 2, 8, 32, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central renderer claim: array order's counter is much
	// more viewpoint-sensitive than Z order's.
	ratioA := float64(a2) / float64(a0)
	ratioZ := float64(z2) / float64(z0)
	if ratioA <= ratioZ {
		t.Errorf("array view sensitivity %v not above zorder %v", ratioA, ratioZ)
	}
}

func TestFiguresSmoke(t *testing.T) {
	cfg := microConfig()
	for n := 1; n <= 11; n++ {
		res, err := Figure(n, cfg, nil)
		if err != nil {
			t.Fatalf("fig %d: %v", n, err)
		}
		if res.Text == "" {
			t.Errorf("fig %d: empty text", n)
		}
		if !strings.Contains(res.Text, "Fig") {
			t.Errorf("fig %d: missing title:\n%s", n, res.Text)
		}
	}
	if _, err := Figure(12, cfg, nil); err == nil {
		t.Error("figure 12 accepted")
	}
	if _, err := Figure(0, cfg, nil); err == nil {
		t.Error("figure 0 accepted")
	}
}

func TestProgressCallbackInvoked(t *testing.T) {
	cfg := microConfig()
	var n int
	_, err := Fig2(cfg, func(string) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows × 1 thread count.
	if n != 2 {
		t.Errorf("progress called %d times, want 2", n)
	}
}

func TestQuickAndDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), QuickConfig()} {
		if cfg.BilatSize < 8 || cfg.VolSize < 8 || cfg.Views < 2 {
			t.Errorf("degenerate config %+v", cfg)
		}
		if len(cfg.IvyThreads) == 0 || len(cfg.MICThreads) == 0 {
			t.Errorf("empty thread lists in %+v", cfg)
		}
		if cfg.CacheScale&(cfg.CacheScale-1) != 0 {
			t.Errorf("cache scale %d not a power of two", cfg.CacheScale)
		}
	}
}

// Golden-shape integration test: the paper's headline Fig 2 sign
// structure must hold on the simulated counter at test scale — array
// order wins only its most favorable configuration (small stencil,
// x-pencils, xyz order) and loses against the grain.
func TestPaperShapeBilateralSigns(t *testing.T) {
	in := NewBilatInput(32, 1)
	platform := cache.Scaled(cache.IvyBridge(), 32)
	ds := func(row BilatRow) float64 {
		a, _, err := SimBilat(in, core.ArrayKind, row, 2, platform)
		if err != nil {
			t.Fatal(err)
		}
		z, _, err := SimBilat(in, core.ZKind, row, 2, platform)
		if err != nil {
			t.Fatal(err)
		}
		return (float64(a) - float64(z)) / float64(z)
	}
	favorable := ds(BilatRow{Radius: 1, Axis: parallel.AxisX, Order: OrderXYZ})
	hostile := ds(BilatRow{Radius: 1, Axis: parallel.AxisZ, Order: OrderZYX})
	if favorable >= 0 {
		t.Errorf("r1 px xyz ds = %.2f, want negative (array order's best case)", favorable)
	}
	if hostile <= 0 {
		t.Errorf("r1 pz zyx ds = %.2f, want positive (Z order wins against the grain)", hostile)
	}
	if hostile <= favorable {
		t.Errorf("ordering broken: hostile %.2f <= favorable %.2f", hostile, favorable)
	}
}

func TestFig10Structure(t *testing.T) {
	res, err := Fig10(microConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("%d tables", len(res.Tables))
	}
	// Fig 10a: array's worst/best slice anisotropy exceeds zorder's.
	slice := res.Tables[0]
	if slice.At(0, 3) <= slice.At(1, 3) {
		t.Errorf("array anisotropy %v not above zorder %v", slice.At(0, 3), slice.At(1, 3))
	}
	// Fig 10b: hzorder's span is non-increasing and ends far below L=0.
	sub := res.Tables[1]
	hzRow := 2
	for c := 1; c < 4; c++ {
		if sub.At(hzRow, c) > sub.At(hzRow, c-1) {
			t.Errorf("hz span grew at level %d: %v -> %v", c, sub.At(hzRow, c-1), sub.At(hzRow, c))
		}
	}
	if sub.At(hzRow, 3) >= sub.At(hzRow, 0)/64 {
		t.Errorf("hz L=3 span %v not far below L=0 %v", sub.At(hzRow, 3), sub.At(hzRow, 0))
	}
}
