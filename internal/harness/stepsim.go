package harness

// Cache-simulated ablation for the neighbor-stepping stencil kernels
// (DESIGN.md §13): the stepping and table-lookup flat paths touch the
// same data elements in the same order, so their wall-clock difference
// is pure index-resolution cost. What the simulator can add is the
// memory-system view of that cost: the table path streams per-axis
// offset-table loads alongside the data stream, the stepping path does
// not. SimBilatStepTraffic replays the identical bilateral access
// pattern both ways and reports the two cache Reports side by side.

import (
	"context"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
)

// Simulated address-space bases for the offset tables: far from both
// the source volume (0) and the destination (dstBase), and from each
// other, so table lines never alias volume lines.
const (
	srcTableBase = 1 << 41
	dstTableBase = 1<<41 + 1<<20
)

// StepTraffic pairs the simulated reports for one bilateral
// configuration replayed as the stepping kernel issues it (Step: data
// accesses only) and as the table kernel issues it (Table: data plus
// offset-table loads, with the y/z lookups hoisted per row/plane just
// like the real loop nest).
type StepTraffic struct {
	Step, Table cache.Report
}

// SimBilatStepTraffic replays one bilateral configuration through the
// cache simulator twice — once per kernel flavor — and returns both
// reports. The data access streams are identical by construction
// (bit-identical kernels); only the table loads differ.
func SimBilatStepTraffic(in *BilatInput, kind core.Kind, row BilatRow, threads int, platform cache.Platform) (StepTraffic, error) {
	var out StepTraffic
	src := in.Src[kind]
	nx, ny, nz := src.Dims()

	run := func(tables bool) (cache.Report, error) {
		dst := grid.New(core.New(kind, nx, ny, nz))
		sys := cache.NewSystem(platform, threads)
		srcs := make([]grid.Reader, threads)
		dsts := make([]grid.Writer, threads)
		for w := 0; w < threads; w++ {
			front := sys.Front(w)
			if tables {
				srcs[w] = grid.NewTracedTables(src, 0, srcTableBase, front)
				dsts[w] = grid.NewTracedTables(dst, dstBase, dstTableBase, front)
			} else {
				srcs[w] = grid.NewTraced(src, 0, front)
				dsts[w] = grid.NewTraced(dst, dstBase, front)
			}
		}
		o := row.options(threads)
		if err := filter.ApplyViewsCtx(context.Background(), srcs, dsts, o); err != nil {
			return cache.Report{}, err
		}
		return sys.Report(), nil
	}

	var err error
	if out.Step, err = run(false); err != nil {
		return out, err
	}
	if out.Table, err = run(true); err != nil {
		return out, err
	}
	return out, nil
}
