package harness

import (
	"fmt"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/multires"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/reuse"
	"sfcmem/internal/stats"
	"sfcmem/internal/tune"
)

// Fig7 is an extension beyond the paper: architecture-independent LRU
// miss-ratio curves (reuse-distance profiles) for both kernels under
// every layout. Where the paper reads two platform-specific counters,
// these curves characterize the locality itself — the knee of each
// curve shows the cache size at which that layout stops thrashing.
func Fig7(cfg Config, progress func(string)) (FigureResult, error) {
	size := cfg.BilatSimSize
	if size > 32 {
		size = 32 // reuse analysis is O(log n) per access; keep traces modest
	}
	kinds := core.Kinds()
	rowLabels := make([]string, len(kinds))
	for i, k := range kinds {
		rowLabels[i] = k.String()
	}
	const fromB, toB = 6, 16 // 64 lines (4KB) .. 64K lines (4MB)
	var cols []string
	for b := fromB; b <= toB; b += 2 {
		cols = append(cols, fmt.Sprintf("%dKB", (1<<b)*64/1024))
	}

	mkTable := func(title string, profile func(kind core.Kind) (reuse.Histogram, error)) (*stats.Table, error) {
		t := stats.NewTable(title, rowLabels, cols)
		t.Format = "%8.4f"
		for r, kind := range kinds {
			if progress != nil {
				progress(fmt.Sprintf("fig7 %s %s", title, kind))
			}
			h, err := profile(kind)
			if err != nil {
				return nil, err
			}
			c := 0
			for b := fromB; b <= toB; b += 2 {
				t.Set(r, c, h.MissRatio(1<<b))
				c++
			}
		}
		return t, nil
	}

	bilatIn := NewBilatInput(size, cfg.Seed)
	row := BilatRow{Label: "pz zyx", Radius: 2, Axis: parallel.AxisZ, Order: OrderZYX}
	bt, err := mkTable(
		fmt.Sprintf("Fig 7a (extension) — LRU miss-ratio vs cache size, bilateral r3 pz zyx, %d³", size),
		func(kind core.Kind) (reuse.Histogram, error) {
			an := reuse.NewAnalyzer(1 << 20)
			src := bilatIn.Src[kind]
			dst := grid.New(core.New(kind, size, size, size))
			err := filter.ApplyViews(
				[]grid.Reader{grid.NewTraced(src, 0, an)},
				[]grid.Writer{grid.NewTraced(dst, dstBase, an)},
				row.options(1))
			return an.Histogram(), err
		})
	if err != nil {
		return FigureResult{}, err
	}

	volIn := NewVolInput(size, cfg.Seed)
	vt, err := mkTable(
		fmt.Sprintf("Fig 7b (extension) — LRU miss-ratio vs cache size, volrend view 2, %d³", size),
		func(kind core.Kind) (reuse.Histogram, error) {
			an := reuse.NewAnalyzer(1 << 20)
			cam := render.Orbit(2, cfg.Views, size, size, size, 64, 64)
			_, err := render.RenderViews(
				[]grid.Reader{grid.NewTraced(volIn.Vol[kind], 0, an)},
				cam, render.DefaultTransferFunc(), renderOptions(1))
			return an.Histogram(), err
		})
	if err != nil {
		return FigureResult{}, err
	}
	text := bt.String() + "\n" + vt.String()
	return FigureResult{Name: "fig7", Text: text, Tables: []*stats.Table{bt, vt}}, nil
}

// Fig8 is an extension beyond the paper: the §V padding limitation made
// quantitative. For awkward (non-power-of-two) volume sizes it compares
// pure Z order's padded buffer against the ZTiled (Morton-in-bricks)
// remedy, and auto-tunes the brick/tile edges with the simulator.
func Fig8(cfg Config, progress func(string)) (FigureResult, error) {
	sizes := []int{33, 65, 96, 100, 129}
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		labels[i] = fmt.Sprintf("%d³", s)
	}
	pad := stats.NewTable(
		"Fig 8a (extension) — buffer overhead (fraction wasted) by layout and volume size",
		labels, []string{"zorder", "ztiled16", "tiled8", "array"})
	pad.Format = "%9.3f"
	for r, s := range sizes {
		z := core.NewZOrder(s, s, s)
		zt := core.NewZTiled(s, s, s, 16)
		tl := core.NewTiled(s, s, s, 8)
		ideal := float64(s) * float64(s) * float64(s)
		pad.Set(r, 0, z.Overhead())
		pad.Set(r, 1, zt.Overhead())
		pad.Set(r, 2, float64(tl.Len())/ideal-1)
		pad.Set(r, 3, 0)
	}

	if progress != nil {
		progress("fig8 tuning brick/tile edges")
	}
	tcfg := tune.FilterConfig{
		Size: 32,
		Seed: cfg.Seed,
		Options: filter.Options{
			Radius: 2, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 2,
		},
		Platform: cfg.ivyPlatform(),
	}
	bestBrick, brickResults, err := tune.BrickSize(tcfg, nil)
	if err != nil {
		return FigureResult{}, err
	}
	bestTile, tileResults, err := tune.TileSize(tcfg, nil)
	if err != nil {
		return FigureResult{}, err
	}
	text := pad.String() + "\n"
	text += "Fig 8b (extension) — auto-tuned blocking factors (simulated PAPI_L3_TCA, 32³, r3 pz zyx)\n"
	for _, r := range brickResults {
		text += fmt.Sprintf("  ztiled brick %2d: %10.0f\n", r.Param, r.Score)
	}
	for _, r := range tileResults {
		text += fmt.Sprintf("  tiled  tile  %2d: %10.0f\n", r.Param, r.Score)
	}
	text += fmt.Sprintf("  best: ztiled brick=%d, tiled tile=%d\n", bestBrick, bestTile)
	return FigureResult{Name: "fig8", Text: text, Tables: []*stats.Table{pad}}, nil
}

// cacheReport aliases cache.Report for the breakdown table helper.
type cacheReport = cache.Report

// Fig9 is an extension implementing the paper's §V future-work note
// that "additional metrics ... will help to refine our understanding":
// a full per-level breakdown (L1/L2/LLC miss rates, TLB miss rate,
// memory traffic) for both kernels under array and Z order, in the
// against-the-grain configurations where the layouts differ most.
func Fig9(cfg Config, progress func(string)) (FigureResult, error) {
	size := cfg.BilatSimSize
	platform := cfg.ivyPlatform()
	rows := []string{
		"bilat a-order", "bilat z-order",
		"volrend a-order", "volrend z-order",
	}
	cols := []string{"L1 miss", "L2 miss", "LLC miss", "TLB miss", "mem rd", "mem wr"}
	t := stats.NewTable(
		fmt.Sprintf("Fig 9 (extension) — per-level memory-system breakdown, %d³, %s", size, platform.Name),
		rows, cols)
	t.Format = "%10.4f"

	bilatIn := NewBilatInput(size, cfg.Seed)
	volIn := NewVolInput(size, cfg.Seed)
	row := BilatRow{Label: "r3 pz zyx", Radius: 2, Axis: parallel.AxisZ, Order: OrderZYX}
	fill := func(r int, rep cacheReport) {
		t.Set(r, 0, rep.PrivateTotal[0].MissRate())
		t.Set(r, 1, rep.PrivateTotal[1].MissRate())
		if rep.HasShared {
			t.Set(r, 2, rep.Shared.MissRate())
		}
		t.Set(r, 3, rep.TLB.MissRate())
		t.Set(r, 4, float64(rep.MemReads))
		t.Set(r, 5, float64(rep.MemWrites))
	}
	for i, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
		if progress != nil {
			progress(fmt.Sprintf("fig9 bilat %s", kind))
		}
		_, rep, err := SimBilat(bilatIn, kind, row, 2, platform)
		if err != nil {
			return FigureResult{}, err
		}
		fill(i, rep)
	}
	for i, kind := range []core.Kind{core.ArrayKind, core.ZKind} {
		if progress != nil {
			progress(fmt.Sprintf("fig9 volrend %s", kind))
		}
		_, rep, err := SimVolrend(volIn, kind, 2, cfg.Views, cfg.SimImageSize, 2, platform)
		if err != nil {
			return FigureResult{}, err
		}
		fill(2+i, rep)
	}
	return FigureResult{Name: "fig9", Text: t.String(), Tables: []*stats.Table{t}}, nil
}

// Fig10 is an extension reproducing the access pattern behind the
// paper's ref [7] (Pascucci & Frank 2001): the memory a layout must
// touch to serve slice and subsampling queries. It compares array
// order, plain Z order, and the hierarchical HZ order — showing both
// the Z-order slice advantage the paper cites and the fact that the
// *progressive subsampling* advantage needs the HZ regrouping.
func Fig10(cfg Config, progress func(string)) (FigureResult, error) {
	size := cfg.VolSimSize
	kinds := []core.Kind{core.ArrayKind, core.ZKind, core.HZKind}
	rowLabels := make([]string, len(kinds))
	for i, k := range kinds {
		rowLabels[i] = k.String()
	}
	if progress != nil {
		progress("fig10 slice/subsample query costs")
	}

	sliceT := stats.NewTable(
		fmt.Sprintf("Fig 10a (extension) — 4KB pages touched per full-resolution slice, %d³ volume", size),
		rowLabels, []string{"xy@z", "xz@y", "yz@x", "worst/best"})
	sliceT.Format = "%10.1f"
	for r, kind := range kinds {
		l := core.New(kind, size, size, size)
		var lo, hi float64
		for c, ax := range []multires.SliceAxis{multires.SliceZ, multires.SliceY, multires.SliceX} {
			cost, err := multires.SliceCost(l, ax, size/2, 0)
			if err != nil {
				return FigureResult{}, err
			}
			v := float64(cost.Pages)
			sliceT.Set(r, c, v)
			if c == 0 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo > 0 {
			sliceT.Set(r, 3, hi/lo)
		}
	}

	subT := stats.NewTable(
		fmt.Sprintf("Fig 10b (extension) — bytes spanned by the level-L subsample lattice, %d³ volume", size),
		rowLabels, []string{"L=0", "L=1", "L=2", "L=3"})
	subT.Format = "%10.0f"
	for r, kind := range kinds {
		l := core.New(kind, size, size, size)
		for c, level := range []int{0, 1, 2, 3} {
			cost, err := multires.SubsampleCost(l, level)
			if err != nil {
				return FigureResult{}, err
			}
			subT.Set(r, c, float64(cost.Span))
		}
	}
	text := sliceT.String() + "\n" + subT.String()
	return FigureResult{Name: "fig10", Text: text, Tables: []*stats.Table{sliceT, subT}}, nil
}
