package harness

// Fig 11 (extension): the element-dtype sweep. The paper stores float32
// samples; the generic data plane also runs every kernel over uint8,
// uint16 and float64 volumes. This figure measures what the element
// width buys: narrow dtypes shrink the working set 4x (uint8) or 2x
// (uint16), which moves the cache-capacity knee the same way a bigger
// cache would — the space-filling-curve story at a different axis.

import (
	"context"
	"fmt"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/stats"
)

// DtypeList resolves the configured dtype names, defaulting to every
// supported dtype when the list is empty.
func (c Config) DtypeList() ([]grid.Dtype, error) {
	if len(c.Dtypes) == 0 {
		return grid.Dtypes(), nil
	}
	out := make([]grid.Dtype, len(c.Dtypes))
	for i, name := range c.Dtypes {
		dt, err := grid.ParseDtype(name)
		if err != nil {
			return nil, err
		}
		out[i] = dt
	}
	return out, nil
}

// dtypeRunner erases one Scalar instantiation behind closures so the
// figure loop can iterate run-time dtype values while every kernel call
// stays monomorphized.
type dtypeRunner struct {
	dt    grid.Dtype
	bytes func(kind core.Kind) int64
	run   func(ctx context.Context, kind core.Kind, o filter.Options) (time.Duration, error)
}

// newDtypeRunner converts the float32 phantoms into T once per layout
// (through the shared normalized domain, so every dtype filters the
// same field) and captures the typed bilateral invocation.
func newDtypeRunner[T grid.Scalar](srcs map[core.Kind]*grid.Grid[float32]) dtypeRunner {
	conv := make(map[core.Kind]*grid.Grid[T], len(srcs))
	for kind, g := range srcs {
		conv[kind] = grid.ConvertGrid[T](g)
	}
	elem := int64(grid.DtypeFor[T]().Size())
	return dtypeRunner{
		dt: grid.DtypeFor[T](),
		bytes: func(kind core.Kind) int64 {
			return int64(len(conv[kind].Data())) * elem
		},
		run: func(ctx context.Context, kind core.Kind, o filter.Options) (time.Duration, error) {
			src := conv[kind]
			dst := grid.NewOf[T](src.Layout())
			start := time.Now()
			if err := filter.ApplyCtxOf[T](ctx, src, dst, o); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		},
	}
}

func makeDtypeRunner(dt grid.Dtype, srcs map[core.Kind]*grid.Grid[float32]) dtypeRunner {
	switch dt {
	case grid.U8:
		return newDtypeRunner[uint8](srcs)
	case grid.U16:
		return newDtypeRunner[uint16](srcs)
	case grid.F64:
		return newDtypeRunner[float64](srcs)
	default:
		return newDtypeRunner[float32](srcs)
	}
}

// Fig11 runs the dtype sweep: the bilateral filter at the largest
// configured stencil, px/xyz, at the fixed thread count, for every
// configured dtype under each of the paper's four layouts. Three
// tables: absolute runtime, runtime scaled-relative-difference against
// float32 (positive = this dtype faster), and the volume buffer size.
func Fig11(cfg Config, progress func(string)) (FigureResult, error) {
	return fig11(cfg, progress, nil)
}

func fig11(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	dtypes, err := cfg.DtypeList()
	if err != nil {
		return FigureResult{}, err
	}
	size := cfg.BilatSize
	radius := cfg.Radii[len(cfg.Radii)-1] // largest stencil: most work per byte held
	row := BilatRow{Label: radius.Label + " px xyz", Radius: radius.Radius}
	o := row.options(cfg.FixedThreads)
	o.NoFastPath = cfg.NoFastPath
	o.NoStepper = cfg.NoStepper
	kinds := []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.HilbertKind}

	in := NewBilatInput(size, cfg.Seed)
	runners := make([]dtypeRunner, len(dtypes))
	for i, dt := range dtypes {
		runners[i] = makeDtypeRunner(dt, in.Src)
	}

	rowLabels := make([]string, len(dtypes))
	for i, dt := range dtypes {
		rowLabels[i] = dt.String()
	}
	colLabels := make([]string, len(kinds))
	for i, k := range kinds {
		colLabels[i] = k.String()
	}
	title := fmt.Sprintf("Fig 11%%s (extension) — Bilat3d %s %d³, %d threads", row.Label, size, cfg.FixedThreads)
	rt := stats.NewTable(fmt.Sprintf(title, "a")+": runtime (s) by element dtype", rowLabels, colLabels)
	rt.Format = "%10.3f"
	ds := stats.NewTable(fmt.Sprintf(title, "b")+": ds runtime (float32 vs dtype)", rowLabels, colLabels)
	mem := stats.NewTable(fmt.Sprintf(title, "c")+": volume buffer MiB (with layout padding)", rowLabels, colLabels)
	mem.Format = "%10.1f"

	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	best := make([][]float64, len(runners))
	for i := range best {
		best[i] = make([]float64, len(kinds))
	}
	// Interleave repetitions dtype-by-dtype within each layout so slow
	// host drift cannot bias one dtype's minimum.
	for ki, kind := range kinds {
		for rep := 0; rep < reps; rep++ {
			for di, r := range runners {
				if progress != nil {
					progress(fmt.Sprintf("fig11 %s %s rep=%d", kind, r.dt, rep))
				}
				d, err := r.run(context.Background(), kind, o)
				if err != nil {
					return FigureResult{}, err
				}
				if s := d.Seconds(); rep == 0 || s < best[di][ki] {
					best[di][ki] = s
				}
			}
		}
	}
	var f32Row []float64
	for di, r := range runners {
		if r.dt == grid.F32 {
			f32Row = best[di]
		}
	}
	for di, r := range runners {
		for ki, kind := range kinds {
			rt.Set(di, ki, best[di][ki])
			if f32Row != nil {
				ds.Set(di, ki, stats.ScaledRelDiff(f32Row[ki], best[di][ki]))
			}
			mem.Set(di, ki, float64(r.bytes(kind))/(1<<20))
			ins.RecordCell(CellRecord{
				Kernel:   "bilat-dtype",
				Row:      r.dt.String() + " " + kind.String(),
				Threads:  cfg.FixedThreads,
				RuntimeA: best[di][ki],
			})
		}
	}
	text := rt.String() + "\n" + ds.String() + "\n" + mem.String()
	return FigureResult{Name: "fig11", Text: text, Tables: []*stats.Table{rt, ds, mem}}, nil
}
