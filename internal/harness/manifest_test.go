package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sfcmem/internal/timeline"
)

func TestHostInfoPopulated(t *testing.T) {
	h := Host()
	if h.GoVersion == "" || h.GOOS == "" || h.GOARCH == "" {
		t.Errorf("empty host fields: %+v", h)
	}
	if h.NumCPU < 1 || h.GOMAXPROCS < 1 {
		t.Errorf("non-positive CPU counts: %+v", h)
	}
}

// The manifest must round-trip through encoding/json without losing or
// mangling fields: marshal → unmarshal → marshal must be byte-identical.
func TestRunManifestRoundTrip(t *testing.T) {
	m := NewRunManifest(QuickConfig())
	m.Figures = []FigureManifest{{
		Name:           "fig2",
		ElapsedSeconds: 1.5,
		Cells: []CellRecord{{
			Kernel: "bilat", Strategy: "round-robin", Row: "r1 px xyz",
			Threads: 2, RuntimeA: 0.25, RuntimeZ: 0.21,
			MetricA: 1000, MetricZ: 800,
			ImbalanceA: 1.1, ImbalanceZ: 1.05,
		}},
		Cache: map[string]uint64{"llc.misses": 42, "mem.reads": 7},
	}}
	m.Metrics = map[string]any{"cells": map[string]any{"total": 1.0}}
	m.ElapsedSeconds = 2.25

	var first bytes.Buffer
	if err := m.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(first.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
	if back.Schema != ManifestSchema {
		t.Errorf("schema %q", back.Schema)
	}
	if back.Config.BilatSize != m.Config.BilatSize || back.Config.Seed != m.Config.Seed {
		t.Errorf("config fields lost in round trip: %+v", back.Config)
	}
}

// An instrumented micro run must produce a manifest with per-cell
// entries (including both strategies' imbalance factors) and a timeline
// with at least one complete event per worker lane.
func TestInstrumentedRunManifestAndTimeline(t *testing.T) {
	cfg := microConfig()
	ins := NewInstruments(cfg)
	ins.Timeline = timeline.NewRecorder()

	for _, n := range []int{2, 4} { // fig2: round-robin bilat; fig4: dynamic volrend
		if _, err := FigureObs(n, cfg, nil, ins); err != nil {
			t.Fatalf("fig %d: %v", n, err)
		}
	}
	ins.Finish()
	m := ins.Manifest

	if m.Schema != ManifestSchema {
		t.Errorf("schema %q", m.Schema)
	}
	if m.ElapsedSeconds <= 0 {
		t.Errorf("elapsed %v", m.ElapsedSeconds)
	}
	if len(m.Figures) != 2 {
		t.Fatalf("%d figures recorded, want 2", len(m.Figures))
	}
	strategies := map[string]bool{}
	for _, fig := range m.Figures {
		if fig.Name == "" || fig.ElapsedSeconds <= 0 {
			t.Errorf("figure record %+v missing name or elapsed", fig)
		}
		if len(fig.Cells) == 0 {
			t.Errorf("figure %s has no cells", fig.Name)
		}
		if len(fig.Cache) == 0 {
			t.Errorf("figure %s has no cache aggregate", fig.Name)
		}
		for _, c := range fig.Cells {
			if c.Strategy != "" {
				strategies[c.Strategy] = true
				if c.ImbalanceA < 1 {
					t.Errorf("figure %s cell %+v: imbalance A %v below 1", fig.Name, c, c.ImbalanceA)
				}
			}
			if c.RuntimeA <= 0 {
				t.Errorf("figure %s cell %+v: non-positive runtime", fig.Name, c)
			}
		}
	}
	if !strategies["round-robin"] || !strategies["dynamic"] {
		t.Errorf("strategies seen %v, want both round-robin and dynamic", strategies)
	}
	if m.Metrics == nil {
		t.Error("no metrics snapshot in manifest")
	}

	// The manifest must survive a JSON round trip without losing data.
	// Byte equality is checked on the typed fields via a second decode;
	// the free-form Metrics map is compared as canonical JSON values
	// (numbers decode to float64, whose re-encoding may differ textually).
	var first, second bytes.Buffer
	if err := m.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(first.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(first.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("instrumented manifest does not round-trip stably")
	}

	// Timeline: every worker lane that appears has at least one complete
	// event, and the Chrome trace contains an X event per lane.
	workers := ins.Timeline.Workers()
	if len(workers) < 2 {
		t.Fatalf("timeline covers %d worker lanes, want >= 2 (FixedThreads=%d)", len(workers), cfg.FixedThreads)
	}
	perWorker := map[int]int{}
	for _, ev := range ins.Timeline.Events() {
		perWorker[ev.Worker]++
	}
	for _, w := range workers {
		if perWorker[w] == 0 {
			t.Errorf("worker lane %d has no events", w)
		}
	}
	var trace bytes.Buffer
	if err := ins.Timeline.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	xPerLane := map[int]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			xPerLane[ev.Tid]++
		}
	}
	for _, w := range workers {
		if xPerLane[w] == 0 {
			t.Errorf("chrome trace lane tid=%d has no X events", w)
		}
	}
}

// A nil *Instruments must be safe through every entry point.
func TestNilInstrumentsSafe(t *testing.T) {
	var ins *Instruments
	end := ins.StartFigure("fig0")
	end()
	ins.RecordCell(CellRecord{Kernel: "bilat"})
	ins.Finish()
	if obs := ins.Observer("x"); obs != nil {
		t.Error("nil instruments returned non-nil observer")
	}
	if ins.active() {
		t.Error("nil instruments active")
	}
}

// Figure-phase spans land on worker lane 0 with the figure's name.
func TestStartFigureEmitsTimelineSpan(t *testing.T) {
	ins := NewInstruments(QuickConfig())
	ins.Timeline = timeline.NewRecorder()
	end := ins.StartFigure("fig9")
	end()
	evs := ins.Timeline.Events()
	if len(evs) != 1 || evs[0].Name != "fig9" {
		t.Fatalf("events %+v, want one fig9 span", evs)
	}
	snap := ins.Metrics.Snapshot()
	b, _ := json.Marshal(snap)
	if !strings.Contains(string(b), "fig9") {
		t.Errorf("figures phase timer missing fig9: %s", b)
	}
}
