// Package harness runs the paper's experiments end to end: it builds the
// synthetic datasets, runs each kernel under both memory layouts across
// the paper's parameter grids, measures wall-clock runtime and simulated
// memory-system counters, and renders the same tables the paper's
// figures show (as scaled relative differences, §IV-B2).
//
// Two measurement channels stand in for the paper's two instruments:
//
//   - runtime: real wall-clock of the kernels on the host, at the
//     paper's goroutine counts;
//   - counters: the internal/cache trace-driven simulator replaying the
//     kernels' exact access streams through IvyBridge-like and MIC-like
//     hierarchies (see DESIGN.md §2 for the scaling argument).
//
// Counter runs use a smaller volume than wall-clock runs because every
// access is simulated; Config carries both sizes.
package harness

import (
	"strconv"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/parallel"
)

// Config holds the experiment dimensions. The zero value is not useful;
// start from DefaultConfig or QuickConfig.
// The JSON tags define the run-manifest schema (see manifest.go); keep
// them stable.
type Config struct {
	// BilatSize is the volume edge for bilateral-filter wall-clock runs.
	BilatSize int `json:"bilat_size"`
	// BilatSimSize is the volume edge for bilateral-filter counter runs.
	BilatSimSize int `json:"bilat_sim_size"`
	// VolSize is the volume edge for renderer wall-clock runs.
	VolSize int `json:"vol_size"`
	// VolSimSize is the volume edge for renderer counter runs.
	VolSimSize int `json:"vol_sim_size"`
	// ImageSize is the square render-image edge for wall-clock runs.
	ImageSize int `json:"image_size"`
	// SimImageSize is the render-image edge for counter runs.
	SimImageSize int `json:"sim_image_size"`
	// Seed drives all synthetic data generation.
	Seed uint64 `json:"seed"`
	// IvyThreads is the "Ivy Bridge" concurrency sweep (paper: 2..24).
	IvyThreads []int `json:"ivy_threads"`
	// MICThreads is the "MIC" concurrency sweep (paper: 59..236).
	MICThreads []int `json:"mic_threads"`
	// CacheScale divides the simulated cache capacities, matching the
	// shrunken trace volumes (DESIGN.md §2). Power of two.
	CacheScale int `json:"cache_scale"`
	// Views is the renderer's orbit viewpoint count (paper: 8).
	Views int `json:"views"`
	// FixedThreads is the concurrency used for Fig 4's absolute series.
	FixedThreads int `json:"fixed_threads"`
	// Reps repeats each wall-clock measurement, keeping the minimum.
	Reps int `json:"reps"`
	// NoFastPath disables the kernels' flat-access fast path for
	// wall-clock runs, forcing the generic interface path — the ablation
	// that isolates what devirtualization contributes to the absolute
	// numbers. Counter runs are unaffected (traced views never take the
	// fast path).
	NoFastPath bool `json:"no_fastpath,omitempty"`
	// NoStepper keeps the bilateral filter's flat fast path on per-tap
	// offset-table lookups instead of the neighbor-stepping stencil walk
	// — the ablation that isolates what curve stepping contributes on
	// top of devirtualization. Wall-clock runs only.
	NoStepper bool `json:"no_stepper,omitempty"`
	// Radii maps the paper's row labels to stencil radii.
	Radii []RadiusSpec `json:"radii"`
	// Dtypes is the element-type sweep axis for the dtype extension
	// study (Fig 11): names accepted by grid.ParseDtype. Empty means
	// every supported dtype.
	Dtypes []string `json:"dtypes,omitempty"`
}

// RadiusSpec names one stencil size the way the paper's figures do.
type RadiusSpec struct {
	Label  string `json:"label"`  // "r1", "r3", "r5"
	Radius int    `json:"radius"` // stencil radius; stencil edge is 2*Radius+1
}

// DefaultConfig returns the full-fidelity experiment dimensions used to
// produce EXPERIMENTS.md. It is sized to finish in tens of minutes on a
// laptop-class machine rather than the paper's 512³ production runs;
// every structural parameter (rows, orders, thread counts, viewpoints)
// matches the paper.
func DefaultConfig() Config {
	return Config{
		BilatSize:    96,
		BilatSimSize: 64,
		VolSize:      128,
		VolSimSize:   64,
		ImageSize:    192,
		SimImageSize: 96,
		Seed:         1,
		IvyThreads:   []int{2, 4, 6, 8, 10, 12, 18, 24},
		MICThreads:   []int{59, 118, 177, 236},
		CacheScale:   32,
		Views:        8,
		FixedThreads: 8,
		Reps:         1,
		Radii: []RadiusSpec{
			{Label: "r1", Radius: 1},
			{Label: "r3", Radius: 2},
			{Label: "r5", Radius: 5},
		},
	}
}

// QuickConfig returns a reduced grid for smoke runs and CI: smaller
// volumes, two thread counts per platform, radii up to r3.
func QuickConfig() Config {
	c := DefaultConfig()
	c.BilatSize = 32
	c.BilatSimSize = 32
	c.VolSize = 48
	c.VolSimSize = 32
	c.ImageSize = 64
	c.SimImageSize = 48
	c.IvyThreads = []int{2, 8}
	c.MICThreads = []int{59, 118}
	c.Radii = c.Radii[:2]
	return c
}

// ivyPlatform returns the scaled IvyBridge-like cache hierarchy.
func (c Config) ivyPlatform() cache.Platform {
	return cache.Scaled(cache.IvyBridge(), c.CacheScale)
}

// micPlatform returns the scaled MIC-like cache hierarchy.
func (c Config) micPlatform() cache.Platform {
	return cache.Scaled(cache.MIC(), c.CacheScale)
}

// BilatRow is one row of the paper's bilateral-filter figures: a stencil
// size with the pencil-axis / iteration-order pairing the paper tests.
type BilatRow struct {
	Label  string
	Radius int
	Axis   parallel.Axis
	Order  Order
}

// Order aliases the filter iteration order to avoid importing filter in
// callers that only build row grids.
type Order int

// Iteration orders (match internal/filter).
const (
	OrderXYZ Order = iota
	OrderZYX
)

// BilatRows expands the configured radii into the paper's row grid: for
// each stencil size, the array-friendly configuration (px, xyz) and the
// against-the-grain one (pz, zyx). Labels mirror Fig. 2's row labels.
func (c Config) BilatRows() []BilatRow {
	var rows []BilatRow
	for _, r := range c.Radii {
		rows = append(rows,
			BilatRow{Label: r.Label + " px xyz", Radius: r.Radius, Axis: parallel.AxisX, Order: OrderXYZ},
			BilatRow{Label: r.Label + " pz zyx", Radius: r.Radius, Axis: parallel.AxisZ, Order: OrderZYX},
		)
	}
	return rows
}

// minDuration returns the smaller duration.
func minDuration(a, b time.Duration) time.Duration {
	if b < a {
		return b
	}
	return a
}

func intLabels(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = strconv.Itoa(x)
	}
	return out
}
