package harness

import (
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/parallel"
)

// TestStepperTableTraffic pins the structure of the simulated stepping
// ablation and, run with -v, prints the counter deltas recorded in
// DESIGN.md §13 (repro command in EXPERIMENTS.md).
func TestStepperTableTraffic(t *testing.T) {
	cfg := QuickConfig()
	in := NewBilatInput(32, cfg.Seed)
	row := BilatRow{Label: "r5 px xyz", Radius: 5, Axis: parallel.AxisX, Order: OrderXYZ}
	for _, kind := range []core.Kind{core.ZKind, core.ZTiledKind} {
		st, err := SimBilatStepTraffic(in, kind, row, 1, cfg.ivyPlatform())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sl1, tl1 := st.Step.PrivateTotal[0], st.Table.PrivateTotal[0]
		// The table stream is the step stream plus table loads: strictly
		// more L1 accesses, and identical data traffic underneath means
		// misses can only stay equal or grow.
		if tl1.Accesses <= sl1.Accesses {
			t.Errorf("%s: table path L1 accesses %d not above step path %d", kind, tl1.Accesses, sl1.Accesses)
		}
		if tl1.Misses < sl1.Misses {
			t.Errorf("%s: table path L1 misses %d below step path %d", kind, tl1.Misses, sl1.Misses)
		}
		if st.Step.MemReads != st.Table.MemReads && st.Table.MemReads < st.Step.MemReads {
			t.Errorf("%s: table path memory reads %d below step path %d", kind, st.Table.MemReads, st.Step.MemReads)
		}
		t.Logf("%s r5 px xyz 32³ 1 thread (IvyBridge-like, scaled):", kind)
		t.Logf("  L1 accesses  step %12d  table %12d  (+%.1f%%)",
			sl1.Accesses, tl1.Accesses, 100*float64(tl1.Accesses-sl1.Accesses)/float64(sl1.Accesses))
		t.Logf("  L1 misses    step %12d  table %12d", sl1.Misses, tl1.Misses)
		t.Logf("  L3 accesses  step %12d  table %12d", st.Step.Shared.Accesses, st.Table.Shared.Accesses)
		t.Logf("  mem reads    step %12d  table %12d", st.Step.MemReads, st.Table.MemReads)
	}
}
