package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/parallel"
	"sfcmem/internal/stats"
)

// FigureResult is one reproduced paper figure: rendered text plus the
// underlying tables for programmatic access.
type FigureResult struct {
	Name   string
	Text   string
	Tables []*stats.Table
}

// Fig1 quantifies the paper's Fig. 1 illustration: physical-memory
// stride statistics for unit steps along each axis and for rays at the
// orbit angles, under every layout. Array order's strides explode for
// against-the-grain directions; Z order's stay bounded and
// direction-independent.
func Fig1(cfg Config) FigureResult { return fig1(cfg, nil) }

// fig1 computes the per-layout stride rows concurrently through the
// dynamic worker pool (each row is an independent pure computation, so
// the tables are identical for any schedule); with instruments attached
// the sweep reports per-worker spans, per-row timings, and the pool's
// load-imbalance factor.
func fig1(cfg Config, ins *Instruments) FigureResult {
	size := cfg.VolSimSize
	kinds := core.Kinds()
	rowLabels := make([]string, len(kinds))
	for i, k := range kinds {
		rowLabels[i] = k.String()
	}
	axisTable := stats.NewTable(
		fmt.Sprintf("Fig 1a — mean |Δoffset| (elements) per unit index step, %d³ volume", size),
		rowLabels, []string{"x-step", "y-step", "z-step", "worst/best"})
	axisTable.Format = "%10.1f"
	rayTable := stats.NewTable(
		"Fig 1b — mean |Δoffset| (elements) per sample along orbit-angle rays",
		rowLabels, []string{"view0(+x)", "view1", "view2(+z)", "view3", "max/min"})
	rayTable.Format = "%10.1f"
	angles := [][3]float64{{1, 0.02, 0.02}, {0.7, 0.02, 0.7}, {0.02, 0.02, 1}, {-0.7, 0.02, 0.7}}

	workers := len(kinds)
	if cfg.FixedThreads > 0 && cfg.FixedThreads < workers {
		workers = cfg.FixedThreads
	}
	elapsed := make([]time.Duration, len(kinds))
	st := parallel.DynamicInstrumented(len(kinds), workers, func(_, r int) {
		start := time.Now()
		kind := kinds[r]
		l := core.New(kind, size, size, size)
		var best, worst float64
		for axis := 0; axis < 3; axis++ {
			m := core.AxisStride(l, axis).Mean
			axisTable.Set(r, axis, m)
			if axis == 0 || m < best {
				best = m
			}
			if m > worst {
				worst = m
			}
		}
		if best > 0 {
			axisTable.Set(r, 3, worst/best)
		}
		var lo, hi float64
		for c, d := range angles {
			m := core.RayStride(l, d[0], d[1], d[2]).Mean
			rayTable.Set(r, c, m)
			if c == 0 || m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if lo > 0 {
			rayTable.Set(r, 4, hi/lo)
		}
		elapsed[r] = time.Since(start)
	}, ins.Observer("fig1 layout"))

	for r, kind := range kinds {
		ins.RecordCell(CellRecord{Kernel: "stride", Row: kind.String(), RuntimeA: elapsed[r].Seconds()})
	}
	ins.RecordCell(CellRecord{
		Kernel: "stride-sweep", Strategy: st.Strategy, Threads: workers,
		RuntimeA: st.Elapsed.Seconds(), ImbalanceA: st.ImbalanceFactor(),
	})

	text := axisTable.String() + "\n" + rayTable.String()
	return FigureResult{Name: "fig1", Text: text, Tables: []*stats.Table{axisTable, rayTable}}
}

// bilatFigure produces one of the paper's bilateral-filter ds figures
// (Fig 2 on the IvyBridge-like platform, Fig 3 on the MIC-like one).
func bilatFigure(cfg Config, name, title string, threads []int, platName string,
	progress func(string), ins *Instruments) (FigureResult, error) {
	platform := cfg.ivyPlatform()
	if platName == "mic" {
		platform = cfg.micPlatform()
	}
	cells, err := RunBilatGrid(cfg, threads, platform, progress, ins)
	if err != nil {
		return FigureResult{}, err
	}
	rows := cfg.BilatRows()
	rowLabels := make([]string, len(rows))
	for i, r := range rows {
		rowLabels[i] = r.Label
	}
	cols := intLabels(threads)
	rt := stats.NewTable(title+" — ds runtime (a vs z)", rowLabels, cols)
	mt := stats.NewTable(title+" — ds "+metricName(platName), rowLabels, cols)
	for ri, row := range rows {
		for ti := range threads {
			c := cells[row.Label][ti]
			rt.Set(ri, ti, stats.ScaledRelDiff(c.RuntimeA.Seconds(), c.RuntimeZ.Seconds()))
			mt.Set(ri, ti, stats.ScaledRelDiff(float64(c.MetricA), float64(c.MetricZ)))
		}
	}
	text := rt.String() + "\n" + mt.String()
	return FigureResult{Name: name, Text: text, Tables: []*stats.Table{rt, mt}}, nil
}

func metricName(platName string) string {
	if platName == "mic" {
		return "L2_DATA_READ_MISS"
	}
	return "PAPI_L3_TCA"
}

// Fig2 reproduces the paper's Fig. 2: bilateral filter on the
// IvyBridge-like platform, scaled relative differences of runtime and
// total L3 cache accesses over the (stencil × axis × order) rows and
// the 2..24 thread sweep.
func Fig2(cfg Config, progress func(string)) (FigureResult, error) {
	return fig2(cfg, progress, nil)
}

func fig2(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	return bilatFigure(cfg, "fig2",
		fmt.Sprintf("Fig 2 — Bilat3d %d³ (sim %d³) IvyBridge-like", cfg.BilatSize, cfg.BilatSimSize),
		cfg.IvyThreads, "ivy", progress, ins)
}

// Fig3 reproduces the paper's Fig. 3: bilateral filter on the MIC-like
// platform (59..236 threads, L2 read-miss counter).
func Fig3(cfg Config, progress func(string)) (FigureResult, error) {
	return fig3(cfg, progress, nil)
}

func fig3(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	return bilatFigure(cfg, "fig3",
		fmt.Sprintf("Fig 3 — Bilat3d %d³ (sim %d³) MIC-like", cfg.BilatSize, cfg.BilatSimSize),
		cfg.MICThreads, "mic", progress, ins)
}

// Fig4 reproduces the paper's Fig. 4: absolute runtime and L3 counter
// for both layouts as the viewpoint orbits, at a fixed thread count.
// Array order peaks at oblique views and dips at views 0 and N/2; Z
// order stays flat.
func Fig4(cfg Config, progress func(string)) (FigureResult, error) {
	return fig4(cfg, progress, nil)
}

func fig4(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	wall := NewVolInput(cfg.VolSize, cfg.Seed)
	sim := NewVolInput(cfg.VolSimSize, cfg.Seed)
	platform := cfg.ivyPlatform()
	labels := make([]string, cfg.Views)
	aRT := make([]float64, cfg.Views)
	zRT := make([]float64, cfg.Views)
	aImb := make([]float64, cfg.Views)
	zImb := make([]float64, cfg.Views)
	var aM, zM []float64
	var stA, stZ *parallel.Stats
	var obsA, obsZ parallel.Observer
	if ins.active() {
		stA, stZ = &parallel.Stats{}, &parallel.Stats{}
		obsA = ins.Observer("fig4 volrend a")
		obsZ = ins.Observer("fig4 volrend z")
	}
	// Wall-clock: sweep the whole orbit in interleaved rounds (array and
	// Z per view, all views per round) and keep per-cell minimums, so
	// slow host drift cannot masquerade as viewpoint structure. The
	// absolute plot needs at least a few rounds even when Reps is 1.
	rounds := cfg.Reps
	if rounds < 3 {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		for view := 0; view < cfg.Views; view++ {
			if progress != nil {
				progress(fmt.Sprintf("fig4 round=%d view=%d", round, view))
			}
			a, err := timeVolrend(context.Background(), wall, core.ArrayKind, view, cfg.Views, cfg.ImageSize, cfg.FixedThreads, stA, obsA)
			if err != nil {
				return FigureResult{}, err
			}
			z, err := timeVolrend(context.Background(), wall, core.ZKind, view, cfg.Views, cfg.ImageSize, cfg.FixedThreads, stZ, obsZ)
			if err != nil {
				return FigureResult{}, err
			}
			if round == 0 || a.Seconds() < aRT[view] {
				aRT[view] = a.Seconds()
			}
			if round == 0 || z.Seconds() < zRT[view] {
				zRT[view] = z.Seconds()
			}
			if stA != nil {
				aImb[view] = stA.ImbalanceFactor()
				zImb[view] = stZ.ImbalanceFactor()
			}
		}
	}
	for view := 0; view < cfg.Views; view++ {
		labels[view] = fmt.Sprintf("%d", view)
		ma, repA, err := simVolrend(context.Background(), sim, core.ArrayKind, view, cfg.Views, cfg.SimImageSize, cfg.FixedThreads, platform,
			ins.Observer("fig4 sim volrend a"))
		if err != nil {
			return FigureResult{}, err
		}
		mz, repZ, err := simVolrend(context.Background(), sim, core.ZKind, view, cfg.Views, cfg.SimImageSize, cfg.FixedThreads, platform,
			ins.Observer("fig4 sim volrend z"))
		if err != nil {
			return FigureResult{}, err
		}
		ins.AddCacheReport(repA)
		ins.AddCacheReport(repZ)
		aM = append(aM, float64(ma))
		zM = append(zM, float64(mz))
		ins.RecordCell(CellRecord{
			Kernel:     "volrend",
			Strategy:   "dynamic",
			View:       view,
			Threads:    cfg.FixedThreads,
			RuntimeA:   aRT[view],
			RuntimeZ:   zRT[view],
			MetricA:    uint64(aM[view]),
			MetricZ:    uint64(zM[view]),
			ImbalanceA: aImb[view],
			ImbalanceZ: zImb[view],
		})
	}
	text := stats.RenderSeries(
		fmt.Sprintf("Fig 4 — Volrend %d³ (sim %d³) IvyBridge-like, %d threads: runtime (s) and PAPI_L3_TCA vs viewpoint",
			cfg.VolSize, cfg.VolSimSize, cfg.FixedThreads),
		stats.Series{Name: "a-order rt", Labels: labels, Values: aRT},
		stats.Series{Name: "z-order rt", Labels: labels, Values: zRT},
		stats.Series{Name: "a-order L3", Labels: labels, Values: aM},
		stats.Series{Name: "z-order L3", Labels: labels, Values: zM},
	)
	return FigureResult{Name: "fig4", Text: text}, nil
}

// volrendFigure produces one of the renderer ds figures (Fig 5 / Fig 6).
func volrendFigure(cfg Config, name, title string, threads []int, platName string,
	progress func(string), ins *Instruments) (FigureResult, error) {
	platform := cfg.ivyPlatform()
	if platName == "mic" {
		platform = cfg.micPlatform()
	}
	cells, err := RunVolrendGrid(cfg, threads, platform, progress, ins)
	if err != nil {
		return FigureResult{}, err
	}
	rowLabels := make([]string, cfg.Views)
	for v := range rowLabels {
		rowLabels[v] = fmt.Sprintf("%d", v)
	}
	cols := intLabels(threads)
	rt := stats.NewTable(title+" — ds runtime (a vs z)", rowLabels, cols)
	mt := stats.NewTable(title+" — ds "+metricName(platName), rowLabels, cols)
	for v := 0; v < cfg.Views; v++ {
		for ti := range threads {
			c := cells[v][ti]
			rt.Set(v, ti, stats.ScaledRelDiff(c.RuntimeA.Seconds(), c.RuntimeZ.Seconds()))
			mt.Set(v, ti, stats.ScaledRelDiff(float64(c.MetricA), float64(c.MetricZ)))
		}
	}
	text := rt.String() + "\n" + mt.String()
	return FigureResult{Name: name, Text: text, Tables: []*stats.Table{rt, mt}}, nil
}

// Fig5 reproduces the paper's Fig. 5: renderer ds tables (viewpoints ×
// threads) on the IvyBridge-like platform.
func Fig5(cfg Config, progress func(string)) (FigureResult, error) {
	return fig5(cfg, progress, nil)
}

func fig5(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	return volrendFigure(cfg, "fig5",
		fmt.Sprintf("Fig 5 — Volrend %d³ (sim %d³) IvyBridge-like", cfg.VolSize, cfg.VolSimSize),
		cfg.IvyThreads, "ivy", progress, ins)
}

// Fig6 reproduces the paper's Fig. 6: renderer ds tables on the
// MIC-like platform.
func Fig6(cfg Config, progress func(string)) (FigureResult, error) {
	return fig6(cfg, progress, nil)
}

func fig6(cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	return volrendFigure(cfg, "fig6",
		fmt.Sprintf("Fig 6 — Volrend %d³ (sim %d³) MIC-like", cfg.VolSize, cfg.VolSimSize),
		cfg.MICThreads, "mic", progress, ins)
}

// Figure dispatches a figure by number: 1-6 reproduce the paper's
// figures, 7-11 are this repo's extension studies (reuse-distance
// curves, the padding/auto-tuning ablation, per-level counters,
// slice/LOD query costs, and the element-dtype sweep).
func Figure(n int, cfg Config, progress func(string)) (FigureResult, error) {
	return FigureObs(n, cfg, progress, nil)
}

// FigureObs is Figure with observability: when ins is non-nil, the
// figure's elapsed time, per-cell measurements, aggregated simulated
// cache counters, and per-worker timeline spans flow into it. A nil ins
// makes it identical to Figure.
func FigureObs(n int, cfg Config, progress func(string), ins *Instruments) (FigureResult, error) {
	if n < 1 || n > 11 {
		return FigureResult{}, fmt.Errorf("harness: no figure %d (valid: 1-6 paper, 7-11 extensions)", n)
	}
	end := ins.StartFigure(fmt.Sprintf("fig%d", n))
	defer end()
	switch n {
	case 1:
		return fig1(cfg, ins), nil
	case 2:
		return fig2(cfg, progress, ins)
	case 3:
		return fig3(cfg, progress, ins)
	case 4:
		return fig4(cfg, progress, ins)
	case 5:
		return fig5(cfg, progress, ins)
	case 6:
		return fig6(cfg, progress, ins)
	case 7:
		return Fig7(cfg, progress)
	case 8:
		return Fig8(cfg, progress)
	case 9:
		return Fig9(cfg, progress)
	case 10:
		return Fig10(cfg, progress)
	default:
		return fig11(cfg, progress, ins)
	}
}

// All runs every figure — the paper's six plus the extension studies —
// and concatenates the rendered text.
func All(cfg Config, progress func(string)) (string, error) {
	var b strings.Builder
	for n := 1; n <= 11; n++ {
		res, err := Figure(n, cfg, progress)
		if err != nil {
			return "", err
		}
		b.WriteString(res.Text)
		b.WriteString("\n")
	}
	return b.String(), nil
}
