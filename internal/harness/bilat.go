package harness

import (
	"fmt"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

// dstBase offsets the destination volume in the simulated address space
// so source and destination never alias in the simulated caches.
const dstBase = 1 << 40

func filterOrder(o Order) filter.Order {
	if o == OrderZYX {
		return filter.ZYX
	}
	return filter.XYZ
}

func (r BilatRow) options(threads int) filter.Options {
	return filter.Options{
		Radius:  r.Radius,
		Axis:    r.Axis,
		Order:   filterOrder(r.Order),
		Workers: threads,
	}
}

// BilatInput holds the phantom in each layout for one experiment, so
// figure loops do not regenerate datasets per cell.
type BilatInput struct {
	Src  map[core.Kind]*grid.Grid
	Size int
}

// NewBilatInput generates the MRI phantom once and relayouts it into
// every built-in layout.
func NewBilatInput(size int, seed uint64) *BilatInput {
	in := &BilatInput{Src: make(map[core.Kind]*grid.Grid), Size: size}
	base := volume.MRIPhantom(core.NewArrayOrder(size, size, size), seed, 0.05)
	in.Src[core.ArrayKind] = base
	for _, kind := range core.Kinds()[1:] { // every non-array layout
		g, err := base.Relayout(core.New(kind, size, size, size))
		if err != nil {
			panic(err) // same dims by construction
		}
		in.Src[kind] = g
	}
	return in
}

// TimeBilat measures wall-clock runtime of one bilateral-filter run
// under the given layout.
func TimeBilat(in *BilatInput, kind core.Kind, row BilatRow, threads int) (time.Duration, error) {
	src := in.Src[kind]
	nx, ny, nz := src.Dims()
	dst := grid.New(core.New(kind, nx, ny, nz))
	start := time.Now()
	if err := filter.Apply(src, dst, row.options(threads)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// SimBilat replays one bilateral-filter configuration through the cache
// simulator with one traced view per simulated thread, returning the
// platform's paper counter (PAPI_L3_TCA-like or L2_DATA_READ_MISS-like)
// and the full report.
func SimBilat(in *BilatInput, kind core.Kind, row BilatRow, threads int, platform cache.Platform) (uint64, cache.Report, error) {
	src := in.Src[kind]
	nx, ny, nz := src.Dims()
	dst := grid.New(core.New(kind, nx, ny, nz))
	sys := cache.NewSystem(platform, threads)
	srcs := make([]grid.Reader, threads)
	dsts := make([]grid.Writer, threads)
	for w := 0; w < threads; w++ {
		front := sys.Front(w)
		srcs[w] = grid.NewTraced(src, 0, front)
		dsts[w] = grid.NewTraced(dst, dstBase, front)
	}
	if err := filter.ApplyViews(srcs, dsts, row.options(threads)); err != nil {
		return 0, cache.Report{}, err
	}
	rep := sys.Report()
	return rep.PaperMetric(), rep, nil
}

// Cell holds one configuration's measurements under both layouts, the
// unit the ds tables are computed from.
type Cell struct {
	RuntimeA, RuntimeZ time.Duration
	MetricA, MetricZ   uint64
}

// measurePair times one configuration under array order and Z order with
// the repetitions interleaved (a, z, a, z, ...), keeping each layout's
// minimum. Interleaving cancels slow host drift (thermal, noisy
// neighbors) that would otherwise bias whichever layout ran last.
func measureBilatPair(wall *BilatInput, row BilatRow, threads, reps int) (a, z time.Duration, err error) {
	a, z = time.Duration(1<<63-1), time.Duration(1<<63-1)
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		ta, err := TimeBilat(wall, core.ArrayKind, row, threads)
		if err != nil {
			return 0, 0, err
		}
		tz, err := TimeBilat(wall, core.ZKind, row, threads)
		if err != nil {
			return 0, 0, err
		}
		a = minDuration(a, ta)
		z = minDuration(z, tz)
	}
	return a, z, nil
}

// RunBilatGrid measures the full (rows × threads) grid: interleaved
// wall-clock on the wall-clock volume, simulated counters on the sim
// volume, both layouts per cell. progress, if non-nil, is called before
// each cell.
func RunBilatGrid(cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string)) (map[string][]Cell, error) {
	wall := NewBilatInput(cfg.BilatSize, cfg.Seed)
	sim := NewBilatInput(cfg.BilatSimSize, cfg.Seed)
	out := make(map[string][]Cell)
	for _, row := range cfg.BilatRows() {
		cells := make([]Cell, len(threadList))
		for ti, threads := range threadList {
			if progress != nil {
				progress(fmt.Sprintf("bilat %s threads=%d", row.Label, threads))
			}
			a, z, err := measureBilatPair(wall, row, threads, cfg.Reps)
			if err != nil {
				return nil, err
			}
			ma, _, err := SimBilat(sim, core.ArrayKind, row, threads, platform)
			if err != nil {
				return nil, err
			}
			mz, _, err := SimBilat(sim, core.ZKind, row, threads, platform)
			if err != nil {
				return nil, err
			}
			cells[ti] = Cell{RuntimeA: a, RuntimeZ: z, MetricA: ma, MetricZ: mz}
		}
		out[row.Label] = cells
	}
	return out, nil
}
