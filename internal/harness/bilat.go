package harness

import (
	"context"
	"fmt"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

// dstBase offsets the destination volume in the simulated address space
// so source and destination never alias in the simulated caches.
const dstBase = 1 << 40

func filterOrder(o Order) filter.Order {
	if o == OrderZYX {
		return filter.ZYX
	}
	return filter.XYZ
}

func (r BilatRow) options(threads int) filter.Options {
	return filter.Options{
		Radius:  r.Radius,
		Axis:    r.Axis,
		Order:   filterOrder(r.Order),
		Workers: threads,
	}
}

// BilatInput holds the phantom in each layout for one experiment, so
// figure loops do not regenerate datasets per cell.
type BilatInput struct {
	Src  map[core.Kind]*grid.Grid[float32]
	Size int
	// NoFastPath forces wall-clock runs onto the generic interface path
	// (set from Config.NoFastPath by the grid runners).
	NoFastPath bool
	// NoStepper keeps the flat fast path on per-tap table lookups
	// instead of the neighbor-stepping walk (set from Config.NoStepper).
	NoStepper bool
}

// NewBilatInput generates the MRI phantom once and relayouts it into
// every built-in layout.
func NewBilatInput(size int, seed uint64) *BilatInput {
	in := &BilatInput{Src: make(map[core.Kind]*grid.Grid[float32]), Size: size}
	base := volume.MRIPhantom(core.NewArrayOrder(size, size, size), seed, 0.05)
	in.Src[core.ArrayKind] = base
	for _, kind := range core.Kinds()[1:] { // every non-array layout
		g, err := base.Relayout(core.New(kind, size, size, size))
		if err != nil {
			panic(err) // same dims by construction
		}
		in.Src[kind] = g
	}
	return in
}

// TimeBilat measures wall-clock runtime of one bilateral-filter run
// under the given layout.
func TimeBilat(in *BilatInput, kind core.Kind, row BilatRow, threads int) (time.Duration, error) {
	return timeBilat(context.Background(), in, kind, row, threads, nil, nil)
}

// timeBilat is TimeBilat with optional scheduling instrumentation: st
// receives the round-robin per-worker stats, obs each completed pencil.
func timeBilat(ctx context.Context, in *BilatInput, kind core.Kind, row BilatRow, threads int,
	st *parallel.Stats, obs parallel.Observer) (time.Duration, error) {
	src := in.Src[kind]
	nx, ny, nz := src.Dims()
	dst := grid.New(core.New(kind, nx, ny, nz))
	o := row.options(threads)
	o.Stats = st
	o.Observer = obs
	o.NoFastPath = in.NoFastPath
	o.NoStepper = in.NoStepper
	start := time.Now()
	if err := filter.ApplyCtx(ctx, src, dst, o); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// SimBilat replays one bilateral-filter configuration through the cache
// simulator with one traced view per simulated thread, returning the
// platform's paper counter (PAPI_L3_TCA-like or L2_DATA_READ_MISS-like)
// and the full report.
func SimBilat(in *BilatInput, kind core.Kind, row BilatRow, threads int, platform cache.Platform) (uint64, cache.Report, error) {
	return simBilat(context.Background(), in, kind, row, threads, platform, nil)
}

// simBilat is SimBilat with optional replay-chunk observation (each
// pencil replayed through the simulated caches becomes a timeline span).
func simBilat(ctx context.Context, in *BilatInput, kind core.Kind, row BilatRow, threads int,
	platform cache.Platform, obs parallel.Observer) (uint64, cache.Report, error) {
	src := in.Src[kind]
	nx, ny, nz := src.Dims()
	dst := grid.New(core.New(kind, nx, ny, nz))
	sys := cache.NewSystem(platform, threads)
	srcs := make([]grid.Reader, threads)
	dsts := make([]grid.Writer, threads)
	for w := 0; w < threads; w++ {
		front := sys.Front(w)
		srcs[w] = grid.NewTraced(src, 0, front)
		dsts[w] = grid.NewTraced(dst, dstBase, front)
	}
	o := row.options(threads)
	o.Observer = obs
	if err := filter.ApplyViewsCtx(ctx, srcs, dsts, o); err != nil {
		return 0, cache.Report{}, err
	}
	rep := sys.Report()
	return rep.PaperMetric(), rep, nil
}

// Cell holds one configuration's measurements under both layouts, the
// unit the ds tables are computed from. The imbalance factors are
// per-worker max/mean busy time from the final instrumented wall-clock
// repetition (zero when the run was not instrumented).
type Cell struct {
	RuntimeA, RuntimeZ     time.Duration
	MetricA, MetricZ       uint64
	ImbalanceA, ImbalanceZ float64
}

// measurePair times one configuration under array order and Z order with
// the repetitions interleaved (a, z, a, z, ...), keeping each layout's
// minimum. Interleaving cancels slow host drift (thermal, noisy
// neighbors) that would otherwise bias whichever layout ran last. With
// instruments attached, the runs also report per-worker scheduling
// stats and pencil spans.
func measureBilatPair(ctx context.Context, wall *BilatInput, row BilatRow, threads, reps int,
	ins *Instruments) (c Cell, err error) {
	c.RuntimeA, c.RuntimeZ = time.Duration(1<<63-1), time.Duration(1<<63-1)
	if reps < 1 {
		reps = 1
	}
	var stA, stZ *parallel.Stats
	var obsA, obsZ parallel.Observer
	if ins.active() {
		stA, stZ = &parallel.Stats{}, &parallel.Stats{}
		obsA = ins.Observer(spanName("bilat", "a", row.Label))
		obsZ = ins.Observer(spanName("bilat", "z", row.Label))
	}
	for rep := 0; rep < reps; rep++ {
		ta, err := timeBilat(ctx, wall, core.ArrayKind, row, threads, stA, obsA)
		if err != nil {
			return Cell{}, err
		}
		tz, err := timeBilat(ctx, wall, core.ZKind, row, threads, stZ, obsZ)
		if err != nil {
			return Cell{}, err
		}
		c.RuntimeA = minDuration(c.RuntimeA, ta)
		c.RuntimeZ = minDuration(c.RuntimeZ, tz)
	}
	if stA != nil {
		c.ImbalanceA = stA.ImbalanceFactor()
		c.ImbalanceZ = stZ.ImbalanceFactor()
	}
	return c, nil
}

// RunBilatGrid measures the full (rows × threads) grid: interleaved
// wall-clock on the wall-clock volume, simulated counters on the sim
// volume, both layouts per cell. progress, if non-nil, is called before
// each cell; ins, if non-nil, receives cell records, cache reports, and
// timeline spans.
func RunBilatGrid(cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string), ins *Instruments) (map[string][]Cell, error) {
	return RunBilatGridCtx(context.Background(), cfg, threadList, platform, progress, ins)
}

// RunBilatGridCtx is RunBilatGrid with cooperative cancellation: the
// context is checked before each cell and threaded into every kernel
// run, so a cancelled grid stops within one work item rather than one
// cell. The partial results are discarded (nil, ctx error).
func RunBilatGridCtx(ctx context.Context, cfg Config, threadList []int, platform cache.Platform,
	progress func(msg string), ins *Instruments) (map[string][]Cell, error) {
	wall := NewBilatInput(cfg.BilatSize, cfg.Seed)
	wall.NoFastPath = cfg.NoFastPath
	wall.NoStepper = cfg.NoStepper
	sim := NewBilatInput(cfg.BilatSimSize, cfg.Seed)
	out := make(map[string][]Cell)
	for _, row := range cfg.BilatRows() {
		cells := make([]Cell, len(threadList))
		for ti, threads := range threadList {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if progress != nil {
				progress(fmt.Sprintf("bilat %s threads=%d", row.Label, threads))
			}
			c, err := measureBilatPair(ctx, wall, row, threads, cfg.Reps, ins)
			if err != nil {
				return nil, err
			}
			ma, repA, err := simBilat(ctx, sim, core.ArrayKind, row, threads, platform,
				ins.Observer(spanName("sim bilat", "a", row.Label)))
			if err != nil {
				return nil, err
			}
			mz, repZ, err := simBilat(ctx, sim, core.ZKind, row, threads, platform,
				ins.Observer(spanName("sim bilat", "z", row.Label)))
			if err != nil {
				return nil, err
			}
			ins.AddCacheReport(repA)
			ins.AddCacheReport(repZ)
			c.MetricA, c.MetricZ = ma, mz
			cells[ti] = c
			ins.RecordCell(CellRecord{
				Kernel:     "bilat",
				Strategy:   "round-robin",
				Row:        row.Label,
				Threads:    threads,
				RuntimeA:   c.RuntimeA.Seconds(),
				RuntimeZ:   c.RuntimeZ.Seconds(),
				MetricA:    ma,
				MetricZ:    mz,
				ImbalanceA: c.ImbalanceA,
				ImbalanceZ: c.ImbalanceZ,
			})
		}
		out[row.Label] = cells
	}
	return out, nil
}
