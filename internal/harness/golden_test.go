package harness

// Golden regression tests for the generic-element refactor: the float32
// kernel outputs must stay bit-identical to the pre-generic code. The
// hashes below were captured on the last float32-only revision with
// exactly these configurations; any float32 arithmetic drift in the
// bilateral filter, Gaussian convolution, or raycaster — on either the
// flat fast path or the interface path — changes a hash and fails here.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

const (
	goldenBilat  = "67eb27075f0f26cc5ce52e49529b1b9d6e47a2d9577ba0ea3c60faf1165cd526"
	goldenGauss  = "f77684eb12a5266de5986b5fa1b68852657b7a7574948ee8fe158ebf556b352f"
	goldenRender = "6ac3b167a35d983b5f4611c73d9c7857ee2142ef91f9a1031f212e0637ac875d"
)

func hashGrid(h hash.Hash, g *grid.Grid[float32]) {
	nx, ny, nz := g.Dims()
	var buf [4]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(g.At(i, j, k)))
				h.Write(buf[:])
			}
		}
	}
}

func hashImage(h hash.Hash, img *render.Image) {
	var buf [4]byte
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			c := img.At(x, y)
			for _, f := range []float32{c.R, c.G, c.B, c.A} {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
				h.Write(buf[:])
			}
		}
	}
}

func gridDigest(g *grid.Grid[float32]) string {
	h := sha256.New()
	hashGrid(h, g)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestGoldenFloat32Bilateral(t *testing.T) {
	const nx, ny, nz = 40, 36, 28
	base := volume.MRIPhantom(core.NewArrayOrder(nx, ny, nz), 7, 0.05)
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.HilbertKind} {
		src, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []struct {
			label string
			axis  parallel.Axis
			order filter.Order
		}{
			{"px-xyz", parallel.AxisX, filter.XYZ},
			{"pz-zyx", parallel.AxisZ, filter.ZYX},
		} {
			for _, noFast := range []bool{false, true} {
				dst := grid.New(core.New(kind, nx, ny, nz))
				err := filter.Apply(src, dst, filter.Options{
					Radius: 2, Axis: cfg.axis, Order: cfg.order, Workers: 3, NoFastPath: noFast,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := gridDigest(dst); got != goldenBilat {
					t.Errorf("bilat %v %s nofast=%v: hash %s, want %s (float32 output drifted from pre-generic kernel)",
						kind, cfg.label, noFast, got, goldenBilat)
				}
			}
		}
	}
}

func TestGoldenFloat32Gaussian(t *testing.T) {
	const nx, ny, nz = 40, 36, 28
	base := volume.MRIPhantom(core.NewArrayOrder(nx, ny, nz), 7, 0.05)
	for _, kind := range []core.Kind{core.ArrayKind, core.HilbertKind} {
		src, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		for _, noFast := range []bool{false, true} {
			dst := grid.New(core.New(kind, nx, ny, nz))
			if err := filter.GaussianConvolve(src, dst, filter.Options{
				Radius: 2, Axis: parallel.AxisX, Workers: 3, NoFastPath: noFast,
			}); err != nil {
				t.Fatal(err)
			}
			if got := gridDigest(dst); got != goldenGauss {
				t.Errorf("gauss %v nofast=%v: hash %s, want %s", kind, noFast, got, goldenGauss)
			}
		}
	}
}

func TestGoldenFloat32Render(t *testing.T) {
	const vn = 32
	for _, kind := range []core.Kind{core.ZKind, core.HilbertKind} {
		vol := volume.CombustionPlume(core.New(kind, vn, vn, vn), 3)
		cam := render.Orbit(1, 8, vn, vn, vn, 64, 64)
		for _, skip := range []bool{false, true} {
			for _, noFast := range []bool{false, true} {
				img, err := render.Render(vol, cam, render.DefaultTransferFunc(), render.Options{
					Workers: 2, Shade: true, EmptySkip: skip, NoFastPath: noFast,
				})
				if err != nil {
					t.Fatal(err)
				}
				h := sha256.New()
				hashImage(h, img)
				if got := fmt.Sprintf("%x", h.Sum(nil)); got != goldenRender {
					t.Errorf("render %v skip=%v nofast=%v: hash %s, want %s", kind, skip, noFast, got, goldenRender)
				}
			}
		}
	}
}
