package harness

// Golden regression tests for the generic-element refactor: the float32
// kernel outputs must stay bit-identical to the pre-generic code. The
// hashes below were captured on the last float32-only revision with
// exactly these configurations; any float32 arithmetic drift in the
// bilateral filter, Gaussian convolution, or raycaster — on either the
// flat fast path or the interface path — changes a hash and fails here.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

const (
	goldenBilat  = "67eb27075f0f26cc5ce52e49529b1b9d6e47a2d9577ba0ea3c60faf1165cd526"
	goldenGauss  = "f77684eb12a5266de5986b5fa1b68852657b7a7574948ee8fe158ebf556b352f"
	goldenRender = "6ac3b167a35d983b5f4611c73d9c7857ee2142ef91f9a1031f212e0637ac875d"
)

func hashGrid(h hash.Hash, g *grid.Grid[float32]) {
	nx, ny, nz := g.Dims()
	var buf [4]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(g.At(i, j, k)))
				h.Write(buf[:])
			}
		}
	}
}

func hashImage(h hash.Hash, img *render.Image) {
	var buf [4]byte
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			c := img.At(x, y)
			for _, f := range []float32{c.R, c.G, c.B, c.A} {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
				h.Write(buf[:])
			}
		}
	}
}

func gridDigest(g *grid.Grid[float32]) string {
	h := sha256.New()
	hashGrid(h, g)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// mustBit builds a BitLayout or fails the test; the golden matrices use
// it to put generalized interleaves (tuner outputs) on the same digests
// as the registry layouts.
func mustBit(t *testing.T, nx, ny, nz int, spec string) core.Layout {
	t.Helper()
	l, err := core.NewBitLayout(nx, ny, nz, spec)
	if err != nil {
		t.Fatalf("NewBitLayout(%q): %v", spec, err)
	}
	return l
}

func TestGoldenFloat32Bilateral(t *testing.T) {
	const nx, ny, nz = 40, 36, 28
	base := volume.MRIPhantom(core.NewArrayOrder(nx, ny, nz), 7, 0.05)
	layouts := []core.Layout{
		core.New(core.ArrayKind, nx, ny, nz),
		core.New(core.ZKind, nx, ny, nz),
		core.New(core.TiledKind, nx, ny, nz),
		core.New(core.ZTiledKind, nx, ny, nz),
		core.New(core.HilbertKind, nx, ny, nz),
		// A generalized interleave (4×4×4 row-major-ish bricks on a
		// Morton spine) — the masked stepping kernel must land on the
		// same digest as every other layout/path combination.
		mustBit(t, nx, ny, nz, "xxyyzzxyzxyzxyzxy"),
	}
	for _, layout := range layouts {
		src, err := base.Relayout(layout)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []struct {
			label string
			axis  parallel.Axis
			order filter.Order
		}{
			{"px-xyz", parallel.AxisX, filter.XYZ},
			{"pz-zyx", parallel.AxisZ, filter.ZYX},
		} {
			// Three access paths share one digest: the neighbor-stepping
			// walk (default), the per-tap table path (NoStepper), and
			// the generic interface path (NoFastPath).
			for _, path := range []struct {
				label          string
				noFast, noStep bool
			}{
				{"step", false, false},
				{"table", false, true},
				{"iface", true, false},
			} {
				dst := grid.New(layout)
				err := filter.Apply(src, dst, filter.Options{
					Radius: 2, Axis: cfg.axis, Order: cfg.order, Workers: 3,
					NoFastPath: path.noFast, NoStepper: path.noStep,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := gridDigest(dst); got != goldenBilat {
					t.Errorf("bilat %s %s %s: hash %s, want %s (float32 output drifted from pre-generic kernel)",
						layout.Name(), cfg.label, path.label, got, goldenBilat)
				}
			}
		}
	}
}

// hashGridOf is hashGrid for any element type: logical (k,j,i) iteration
// makes the digest layout-independent, and samples serialize as their
// storage bits little-endian (1/2/4/8 bytes), so a digest pins the exact
// stored values of a configuration across layouts and access paths.
func hashGridOf[T grid.Scalar](h hash.Hash, g *grid.Grid[T]) {
	nx, ny, nz := g.Dims()
	var buf [8]byte
	size := grid.DtypeFor[T]().Size()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				switch v := any(g.At(i, j, k)).(type) {
				case uint8:
					buf[0] = v
				case uint16:
					binary.LittleEndian.PutUint16(buf[:2], v)
				case float32:
					binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
				case float64:
					binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v))
				}
				h.Write(buf[:size])
			}
		}
	}
}

func gridDigestOf[T grid.Scalar](g *grid.Grid[T]) string {
	h := sha256.New()
	hashGridOf(h, g)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenBilatDtype pins the bilateral filter's exact output per element
// type, captured on the revision that introduced the neighbor-stepping
// kernels. checkGoldenBilatDtype verifies all three access paths against
// it, so integer rounding, normalization, and the stepping walk are all
// locked per dtype.
var goldenBilatDtype = map[grid.Dtype]string{
	grid.U8:  "2d62755cd234c65e0241dc351e695508129b178b34da02a5a8f1d6bce78e086e",
	grid.U16: "910863f2f50bae02cc314b583313af90d22b1d902bc5b95ec1ee5338e583e8c9",
	grid.F32: goldenBilat, // same configuration as the float32 golden
	grid.F64: "5f42d51f5f8af718319346c15ed5adc8ef422dad5604aa7de33785b6d8e0f89f",
}

func checkGoldenBilatDtype[T grid.Scalar](t *testing.T, layout core.Layout) {
	t.Helper()
	want := goldenBilatDtype[grid.DtypeFor[T]()]
	src := volume.MRIPhantomOf[T](layout, 7, 0.05)
	for _, path := range []struct {
		label          string
		noFast, noStep bool
	}{
		{"step", false, false},
		{"table", false, true},
		{"iface", true, false},
	} {
		dst := grid.NewOf[T](layout)
		err := filter.ApplyOf[T](src, dst, filter.Options{
			Radius: 2, Axis: parallel.AxisX, Order: filter.XYZ, Workers: 3,
			NoFastPath: path.noFast, NoStepper: path.noStep,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := gridDigestOf(dst); got != want {
			t.Errorf("bilat %v %s %s: hash %s, want %s",
				grid.DtypeFor[T](), layout.Name(), path.label, got, want)
		}
	}
}

// TestGoldenBilateralDtypes pins the per-dtype bilateral output across
// the stepping, table, and interface paths on the curve layouts the
// stepper walks hardest (whole-volume Morton, Morton-in-bricks, and a
// generalized interleave on the masked walk) plus the stride layout.
// One digest per dtype across all of it.
func TestGoldenBilateralDtypes(t *testing.T) {
	const nx, ny, nz = 40, 36, 28
	layouts := []core.Layout{
		core.New(core.ArrayKind, nx, ny, nz),
		core.New(core.ZKind, nx, ny, nz),
		core.New(core.ZTiledKind, nx, ny, nz),
		mustBit(t, nx, ny, nz, "xxyyzzxyzxyzxyzxy"),
	}
	for _, layout := range layouts {
		checkGoldenBilatDtype[uint8](t, layout)
		checkGoldenBilatDtype[uint16](t, layout)
		checkGoldenBilatDtype[float32](t, layout)
		checkGoldenBilatDtype[float64](t, layout)
	}
}

func TestGoldenFloat32Gaussian(t *testing.T) {
	const nx, ny, nz = 40, 36, 28
	base := volume.MRIPhantom(core.NewArrayOrder(nx, ny, nz), 7, 0.05)
	for _, kind := range []core.Kind{core.ArrayKind, core.HilbertKind} {
		src, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		for _, noFast := range []bool{false, true} {
			dst := grid.New(core.New(kind, nx, ny, nz))
			if err := filter.GaussianConvolve(src, dst, filter.Options{
				Radius: 2, Axis: parallel.AxisX, Workers: 3, NoFastPath: noFast,
			}); err != nil {
				t.Fatal(err)
			}
			if got := gridDigest(dst); got != goldenGauss {
				t.Errorf("gauss %v nofast=%v: hash %s, want %s", kind, noFast, got, goldenGauss)
			}
		}
	}
}

func TestGoldenFloat32Render(t *testing.T) {
	const vn = 32
	layouts := []core.Layout{
		core.New(core.ZKind, vn, vn, vn),
		core.New(core.HilbertKind, vn, vn, vn),
		// A tuned-shape interleave: the renderer's flat sampling must be
		// bit-identical to the Z-order render of the same volume — the
		// guarantee the /tune endpoint relies on when it swaps layouts.
		mustBit(t, vn, vn, vn, "yzxyzxyzxyzxyzx"),
	}
	for _, layout := range layouts {
		vol := volume.CombustionPlume(layout, 3)
		cam := render.Orbit(1, 8, vn, vn, vn, 64, 64)
		for _, skip := range []bool{false, true} {
			for _, noFast := range []bool{false, true} {
				img, err := render.Render(vol, cam, render.DefaultTransferFunc(), render.Options{
					Workers: 2, Shade: true, EmptySkip: skip, NoFastPath: noFast,
				})
				if err != nil {
					t.Fatal(err)
				}
				h := sha256.New()
				hashImage(h, img)
				if got := fmt.Sprintf("%x", h.Sum(nil)); got != goldenRender {
					t.Errorf("render %s skip=%v nofast=%v: hash %s, want %s", layout.Name(), skip, noFast, got, goldenRender)
				}
			}
		}
	}
}
