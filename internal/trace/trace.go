// Package trace records memory-access streams to a compact binary
// format and replays them later. This decouples trace collection (run
// the kernel once, with a trace writer attached as its grid.Sink) from
// analysis (replay the file through any number of simulated cache
// platforms or the reuse-distance analyzer) — the standard trace-driven
// methodology behind the paper's counter measurements, made persistent.
//
// Format: an 8-byte header ("SFCTRC" magic + version), then one varint
// record per access holding the zigzag-encoded address delta from the
// previous access and the read/write flag in the low bit. Addresses
// live in a 63-bit space (the top bit is reclaimed for the flag;
// simulated address spaces are nowhere near the limit). Structured-grid
// streams have small deltas, so traces compress to a couple of bytes
// per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// magic identifies trace files; the final byte is the format version.
var magic = [8]byte{'S', 'F', 'C', 'T', 'R', 'C', 0, 1}

// Sink matches grid.Sink (redeclared to avoid a dependency cycle:
// grid's traced views feed trace writers, never the reverse).
type Sink interface {
	Access(addr uint64, write bool)
}

// Writer streams accesses to an io.Writer in trace format. It implements
// Sink, so it can be attached directly to a grid's traced view. Because
// Sink's Access cannot return an error, I/O errors are latched and
// surfaced by Flush (and every subsequent Access becomes a no-op).
type Writer struct {
	bw    *bufio.Writer
	last  uint64
	count uint64
	err   error
	buf   [binary.MaxVarintLen64]byte
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// addrMask truncates addresses to the format's 63-bit space.
const addrMask = 1<<63 - 1

// Access appends one record. Addresses are truncated to 63 bits.
func (t *Writer) Access(addr uint64, write bool) {
	if t.err != nil {
		return
	}
	addr &= addrMask
	delta := signExtend63((addr - t.last) & addrMask)
	t.last = addr
	val := zigzag(delta) << 1
	if write {
		val |= 1
	}
	n := binary.PutUvarint(t.buf[:], val)
	if _, err := t.bw.Write(t.buf[:n]); err != nil {
		t.err = err
		return
	}
	t.count++
}

// Count returns the number of accesses recorded so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered records and reports any latched write error.
// A failed flush latches too, so later Access calls no-op instead of
// silently recording into a stream that can never be drained.
func (t *Writer) Flush() error {
	if t.err == nil {
		t.err = t.bw.Flush()
	}
	if t.err != nil {
		return fmt.Errorf("trace: %w", t.err)
	}
	return nil
}

// Replay reads a trace and delivers every access to sink, returning the
// number of accesses replayed.
func Replay(r io.Reader, sink Sink) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return 0, fmt.Errorf("trace: bad magic %q (not a trace file or wrong version)", hdr[:])
	}
	var addr uint64
	var n uint64
	for {
		val, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("trace: record %d: %w", n, err)
		}
		write := val&1 == 1
		addr = (addr + uint64(unzigzag(val>>1))) & addrMask
		sink.Access(addr, write)
		n++
	}
}

// MultiSink fans one access stream out to several sinks (e.g. a cache
// front and a reuse analyzer in one replay pass).
type MultiSink []Sink

// Access forwards to every sink in order.
func (m MultiSink) Access(addr uint64, write bool) {
	for _, s := range m {
		s.Access(addr, write)
	}
}

// signExtend63 reinterprets a 63-bit two's-complement value as int64,
// mapping the wrapped difference of two 63-bit addresses onto
// [-2^62, 2^62) so its zigzag encoding fits below bit 63.
func signExtend63(d uint64) int64 {
	if d&(1<<62) != 0 {
		return int64(d | 1<<63)
	}
	return int64(d)
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
