package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"sfcmem/internal/cache"
)

type recorded struct {
	addr  uint64
	write bool
}

type recordSink []recorded

func (r *recordSink) Access(addr uint64, write bool) {
	*r = append(*r, recorded{addr, write})
}

func TestRoundtrip(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		var want recordSink
		for i, a := range addrs {
			a &= 1<<63 - 1 // the format's 63-bit address space
			wr := i < len(writes) && writes[i]
			w.Access(a, wr)
			want = append(want, recorded{a, wr})
		}
		if w.Flush() != nil {
			return false
		}
		if w.Count() != uint64(len(addrs)) {
			return false
		}
		var got recordSink
		n, err := Replay(&buf, &got)
		if err != nil || n != uint64(len(addrs)) {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompactEncodingForLocalStreams(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := uint64(0); i < n; i++ {
		w.Access(i*4, false) // sequential float32 scan
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perAccess := float64(buf.Len()-8) / n
	if perAccess > 1.01 {
		t.Errorf("sequential trace costs %.2f bytes/access, want ~1", perAccess)
	}
}

func TestBadMagicRejected(t *testing.T) {
	var sink recordSink
	if _, err := Replay(bytes.NewReader([]byte("NOTATRACEFILE")), &sink); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Replay(bytes.NewReader(nil), &sink); err == nil {
		t.Error("empty file accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(1<<40, true) // multi-byte varint
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	var sink recordSink
	if _, err := Replay(bytes.NewReader(full[:len(full)-1]), &sink); err == nil {
		t.Error("truncated record accepted")
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after -= len(p)
	return len(p), nil
}

func TestWriteErrorLatched(t *testing.T) {
	w, err := NewWriter(&failWriter{after: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ { // exceed the 64KB buffer to force a write
		w.Access(uint64(i)*1e9, false)
	}
	if err := w.Flush(); err == nil {
		t.Error("write error not surfaced by Flush")
	}
}

// Once the underlying writer fails mid-stream, the writer must latch:
// Count stops advancing, further Access calls are no-ops, and every
// subsequent Flush keeps reporting the error.
func TestWriteErrorStopsRecording(t *testing.T) {
	w, err := NewWriter(&failWriter{after: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Large deltas encode to ~9-10 bytes each, so well under 1<<17
	// records overflow the 64KB buffer and hit the failing writer.
	for i := 0; i < 1<<17; i++ {
		w.Access(uint64(i)*1e9, false)
	}
	stopped := w.Count()
	if stopped >= 1<<17 {
		t.Fatalf("count %d never stopped despite write failure", stopped)
	}
	w.Access(42, true)
	w.Access(43, false)
	if w.Count() != stopped {
		t.Errorf("count advanced %d -> %d after latched error", stopped, w.Count())
	}
	if err := w.Flush(); err == nil {
		t.Error("first Flush after failure returned nil")
	}
	if err := w.Flush(); err == nil {
		t.Error("second Flush after failure returned nil")
	}
}

// A writer that only fails at flush time (everything fit in the bufio
// buffer) must still latch: Flush errors, and Access afterwards no-ops.
func TestFlushErrorLatched(t *testing.T) {
	// The header only reaches the underlying writer at flush time (it is
	// buffered), so after:0 means the very first real write — the flush —
	// fails.
	w, err := NewWriter(&failWriter{after: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // stays far below the 64KB buffer
		w.Access(uint64(i), false)
	}
	if w.Count() != 100 {
		t.Fatalf("count %d before flush, want 100", w.Count())
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush-time write error not reported")
	}
	w.Access(7, true)
	if w.Count() != 100 {
		t.Errorf("Access recorded after failed Flush (count %d)", w.Count())
	}
	if err := w.Flush(); err == nil {
		t.Error("error not latched across Flush calls")
	}
}

func TestMultiSink(t *testing.T) {
	var a, b recordSink
	m := MultiSink{&a, &b}
	m.Access(42, true)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("fan-out broken: %v %v", a, b)
	}
}

// Replaying a recorded trace through the cache simulator must produce
// the same counters as feeding it live.
func TestReplayEquivalentToLive(t *testing.T) {
	stream := func(s Sink) {
		for i := uint64(0); i < 5000; i++ {
			s.Access((i*7919)%100000*64, i%5 == 0)
		}
	}
	p := cache.Platform{
		Name:    "t",
		Private: []cache.LevelConfig{{Name: "L1", SizeBytes: 8 << 10, Ways: 4}},
	}
	live := cache.NewSystem(p, 1)
	stream(live.Front(0))

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stream(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed := cache.NewSystem(p, 1)
	if _, err := Replay(&buf, replayed.Front(0)); err != nil {
		t.Fatal(err)
	}
	if live.Report().PrivateTotal[0] != replayed.Report().PrivateTotal[0] {
		t.Errorf("replayed counters diverge:\nlive %+v\nrepl %+v",
			live.Report().PrivateTotal[0], replayed.Report().PrivateTotal[0])
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), 1<<62 - 1, -1 << 62} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag roundtrip %d -> %d", v, got)
		}
	}
}

func BenchmarkWriterAccess(b *testing.B) {
	w, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		w.Access(uint64(i)*64, false)
	}
}
