// Package stats implements the paper's measurement arithmetic — most
// importantly the "scaled, relative difference" ds = (a-z)/z of §IV-B2 —
// plus the fixed-grid table rendering used to reproduce the paper's
// figure matrices, and small aggregation helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ScaledRelDiff returns the paper's ds = (a - z) / z: positive when the
// array-order measurement a exceeds the Z-order measurement z (i.e. the
// Z-order code is winning), negative when array order wins. Returns NaN
// if z is zero.
func ScaledRelDiff(a, z float64) float64 {
	if z == 0 {
		return math.NaN()
	}
	return (a - z) / z
}

// Summary aggregates a sample set.
type Summary struct {
	Min, Max, Mean, Median float64
	N                      int
}

// Summarize computes summary statistics; the zero Summary is returned
// for an empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0], N: len(xs)}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	m := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[m]
	} else {
		s.Median = (sorted[m-1] + sorted[m]) / 2
	}
	return s
}

// Table is a labeled 2-D grid of measurements, mirroring the paper's
// figure matrices (rows = test configurations, columns = thread counts).
type Table struct {
	Title     string
	RowLabels []string
	ColLabels []string
	Cells     [][]float64 // Cells[row][col]
	// Format is the fmt verb for cells; default "%8.2f".
	Format string
}

// NewTable allocates a table with the given labels and NaN-filled cells.
func NewTable(title string, rows, cols []string) *Table {
	t := &Table{Title: title, RowLabels: rows, ColLabels: cols}
	t.Cells = make([][]float64, len(rows))
	for r := range t.Cells {
		t.Cells[r] = make([]float64, len(cols))
		for c := range t.Cells[r] {
			t.Cells[r][c] = math.NaN()
		}
	}
	return t
}

// Set stores v at (row, col).
func (t *Table) Set(row, col int, v float64) { t.Cells[row][col] = v }

// At returns the cell at (row, col).
func (t *Table) At(row, col int) float64 { return t.Cells[row][col] }

// String renders the table as fixed-width text. Every cell is rendered
// first and the column width taken from the widest rendered cell or
// header — not from a sample value pushed through Format, which
// under-sized the columns (and broke alignment) whenever a real value
// overflowed the verb's minimum width.
func (t *Table) String() string {
	format := t.Format
	if format == "" {
		format = "%8.2f"
	}
	labelW := 0
	for _, r := range t.RowLabels {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	cells := make([][]string, len(t.RowLabels))
	cellW := 1 // the "-" placeholder for NaN cells
	for _, c := range t.ColLabels {
		if len(c) > cellW {
			cellW = len(c)
		}
	}
	for r := range t.RowLabels {
		cells[r] = make([]string, len(t.ColLabels))
		for c := range t.ColLabels {
			v := t.Cells[r][c]
			s := "-"
			if !math.IsNaN(v) {
				s = fmt.Sprintf(format, v)
			}
			cells[r][c] = s
			if len(s) > cellW {
				cellW = len(s)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-*s", labelW, "")
	for _, c := range t.ColLabels {
		fmt.Fprintf(&b, " %*s", cellW, c)
	}
	b.WriteByte('\n')
	for r, label := range t.RowLabels {
		fmt.Fprintf(&b, "%-*s", labelW, label)
		for c := range t.ColLabels {
			fmt.Fprintf(&b, " %*s", cellW, cells[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.ColLabels {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for r, label := range t.RowLabels {
		b.WriteString(label)
		for c := range t.ColLabels {
			v := t.Cells[r][c]
			if math.IsNaN(v) {
				b.WriteString(",")
			} else {
				fmt.Fprintf(&b, ",%g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a labeled 1-D sequence, used for the paper's line plots
// (Fig. 4: absolute runtime and counter values vs viewpoint).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// RenderSeries renders aligned columns for several series sharing
// labels: one row per label, one column per series.
func RenderSeries(title string, series ...Series) string {
	if len(series) == 0 {
		return title + "\n"
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, l := range series[0].Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW, "")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for i, l := range series[0].Labels {
		fmt.Fprintf(&b, "%-*s", labelW, l)
		for _, s := range series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, " %14.4g", s.Values[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
