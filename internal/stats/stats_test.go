package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScaledRelDiffPaperExamples(t *testing.T) {
	// §IV-B2: 0.1 ≈ 10% difference, 1.0 ≈ 100%, 10.0 ≈ 1000%.
	if d := ScaledRelDiff(1.1, 1.0); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("ds(1.1,1.0)=%v", d)
	}
	if d := ScaledRelDiff(2, 1); d != 1 {
		t.Errorf("ds(2,1)=%v", d)
	}
	if d := ScaledRelDiff(11, 1); d != 10 {
		t.Errorf("ds(11,1)=%v", d)
	}
	// Negative when array order is faster.
	if d := ScaledRelDiff(0.9, 1.0); d >= 0 {
		t.Errorf("ds(0.9,1.0)=%v, want negative", d)
	}
	if !math.IsNaN(ScaledRelDiff(1, 0)) {
		t.Error("ds with z=0 should be NaN")
	}
}

func TestScaledRelDiffSignProperty(t *testing.T) {
	f := func(a, z float64) bool {
		if z <= 0 || a <= 0 || math.IsInf(a, 0) || math.IsInf(z, 0) {
			return true
		}
		d := ScaledRelDiff(a, z)
		switch {
		case a > z:
			return d > 0
		case a < z:
			return d < 0
		default:
			return d == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Errorf("%+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Errorf("mean %v", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("median %v", s.Median)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median %v", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", []string{"r1 px xyz", "r5 pz zyx"}, []string{"2", "4"})
	tb.Set(0, 0, -0.02)
	tb.Set(0, 1, 0.30)
	tb.Set(1, 0, 2.23)
	// (1,1) left NaN.
	out := tb.String()
	for _, want := range []string{"Fig X", "r1 px xyz", "r5 pz zyx", "-0.02", "0.30", "2.23"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// NaN renders as "-".
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimRight(last, " "), "-") {
		t.Errorf("NaN cell not rendered as '-': %q", last)
	}
}

func TestTableAtSet(t *testing.T) {
	tb := NewTable("", []string{"a"}, []string{"c1", "c2"})
	if !math.IsNaN(tb.At(0, 1)) {
		t.Error("fresh cell should be NaN")
	}
	tb.Set(0, 1, 7)
	if tb.At(0, 1) != 7 {
		t.Errorf("At=%v", tb.At(0, 1))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", []string{"row1"}, []string{"c1", "c2"})
	tb.Set(0, 0, 1.5)
	csv := tb.CSV()
	want := "row,c1,c2\nrow1,1.5,\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestRenderSeries(t *testing.T) {
	a := Series{Name: "a-order", Labels: []string{"0", "1"}, Values: []float64{1.5, 6.2}}
	z := Series{Name: "z-order", Labels: []string{"0", "1"}, Values: []float64{1.6}}
	out := RenderSeries("Fig 4", a, z)
	for _, want := range []string{"Fig 4", "a-order", "z-order", "1.5", "6.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Error("missing value not rendered as '-'")
	}
	if got := RenderSeries("empty"); got != "empty\n" {
		t.Errorf("empty render %q", got)
	}
}

func TestTableCustomFormat(t *testing.T) {
	tb := NewTable("", []string{"r"}, []string{"c"})
	tb.Format = "%10.4f"
	tb.Set(0, 0, 1.23456)
	if !strings.Contains(tb.String(), "1.2346") {
		t.Errorf("custom format ignored: %s", tb.String())
	}
}

// TestTableGoldenNoOverflow pins the exact rendering for values that fit
// the default "%8.2f" verb — the case the old sizing handled — so the
// width fix provably changes nothing here.
func TestTableGoldenNoOverflow(t *testing.T) {
	tb := NewTable("Fig X", []string{"r1", "row-2"}, []string{"2", "4"})
	tb.Set(0, 0, -0.02)
	tb.Set(0, 1, 0.30)
	tb.Set(1, 0, 2.23)
	want := "Fig X\n" +
		"             2        4\n" +
		"r1       -0.02     0.30\n" +
		"row-2     2.23        -\n"
	if got := tb.String(); got != want {
		t.Errorf("rendered table:\n%q\nwant:\n%q", got, want)
	}
}

// TestTableGoldenOverflow pins the rendering when a cell overflows the
// verb's minimum width. The old sizing took the column width from
// fmt.Sprintf(format, -1.0) (8 for "%8.2f"), so an 11-char cell like
// 12345678.25 pushed every later column out of alignment and left the
// headers sitting over the wrong columns.
func TestTableGoldenOverflow(t *testing.T) {
	tb := NewTable("", []string{"a", "bb"}, []string{"1", "2"})
	tb.Set(0, 0, 12345678.25)
	tb.Set(0, 1, 1.5)
	tb.Set(1, 0, 2.25)
	tb.Set(1, 1, 3)
	want := "             1           2\n" +
		"a  12345678.25        1.50\n" +
		"bb        2.25        3.00\n"
	if got := tb.String(); got != want {
		t.Errorf("rendered table:\n%q\nwant:\n%q", got, want)
	}
}

// TestTableWideHeader checks headers wider than any cell also size the
// column instead of being sheared off the grid.
func TestTableWideHeader(t *testing.T) {
	tb := NewTable("", []string{"r"}, []string{"a-very-wide-col", "2"})
	tb.Set(0, 0, 1)
	tb.Set(0, 1, 2)
	want := "  a-very-wide-col               2\n" +
		"r            1.00            2.00\n"
	if got := tb.String(); got != want {
		t.Errorf("rendered table:\n%q\nwant:\n%q", got, want)
	}
}
