package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitTerminal blocks until j terminates or the test deadline passes.
func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSizeTriggerSharesSetup(t *testing.T) {
	// Linger far beyond the test horizon: only the size trigger can seal.
	m := New(Config{MaxBatch: 4, Linger: time.Hour, Runners: 1})
	var setups, runs atomic.Int32
	spec := func() Spec {
		return Spec{
			BatchKey: "vol|f32|zorder",
			Setup: func(ctx context.Context) (any, error) {
				setups.Add(1)
				return "shared-view", nil
			},
			Run: func(ctx context.Context, shared any, j *Job) error {
				if shared != "shared-view" {
					t.Errorf("job %s got shared %v", j.ID, shared)
				}
				runs.Add(1)
				return nil
			},
		}
	}
	var js []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(spec())
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		waitTerminal(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %s: %s (%s)", j.ID, j.State(), j.Err())
		}
		if j.BatchSize() != 4 {
			t.Errorf("job %s batch size %d, want 4", j.ID, j.BatchSize())
		}
	}
	if setups.Load() != 1 {
		t.Errorf("setup ran %d times, want once per batch", setups.Load())
	}
	if runs.Load() != 4 {
		t.Errorf("runs %d, want 4", runs.Load())
	}
	st := m.Stats()
	if st.Submitted != 4 || st.Done != 4 || st.Batches != 1 {
		t.Errorf("stats %+v", st)
	}
	drain(t, m)
}

func TestLingerTriggerSealsSingleton(t *testing.T) {
	m := New(Config{MaxBatch: 100, Linger: 5 * time.Millisecond, Runners: 1})
	j, err := m.Submit(Spec{
		BatchKey: "k",
		Run:      func(ctx context.Context, shared any, j *Job) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone || j.BatchSize() != 1 {
		t.Fatalf("state %s size %d", j.State(), j.BatchSize())
	}
	tm := j.Times()
	if tm.Sealed.Before(tm.Submitted) || tm.Started.Before(tm.Sealed) || tm.Finished.Before(tm.Started) {
		t.Errorf("timestamps out of order: %+v", tm)
	}
	drain(t, m)
}

func TestDistinctKeysDoNotBatch(t *testing.T) {
	m := New(Config{MaxBatch: 2, Linger: 5 * time.Millisecond, Runners: 2})
	a, _ := m.Submit(Spec{BatchKey: "a", Run: func(context.Context, any, *Job) error { return nil }})
	b, _ := m.Submit(Spec{BatchKey: "b", Run: func(context.Context, any, *Job) error { return nil }})
	waitTerminal(t, a)
	waitTerminal(t, b)
	if a.BatchSize() != 1 || b.BatchSize() != 1 {
		t.Errorf("batch sizes %d/%d, want 1/1", a.BatchSize(), b.BatchSize())
	}
	if m.Stats().Batches != 2 {
		t.Errorf("batches %d, want 2", m.Stats().Batches)
	}
	drain(t, m)
}

func TestInteractivePreemptsBulk(t *testing.T) {
	// One runner, blocked on a gate job. While it is blocked, queue a
	// bulk batch then an interactive batch; the interactive one must run
	// first even though it sealed later.
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	gate := make(chan struct{})
	started := make(chan string, 3)
	mk := func(name string, lane Lane) Spec {
		return Spec{
			BatchKey: name,
			Lane:     lane,
			Run: func(ctx context.Context, _ any, j *Job) error {
				started <- name
				if name == "gate" {
					<-gate
				}
				return nil
			},
		}
	}
	g, _ := m.Submit(mk("gate", Bulk))
	<-started // runner is now inside the gate job
	bulk, _ := m.Submit(mk("bulk", Bulk))
	inter, _ := m.Submit(mk("interactive", Interactive))
	// Both are sealed (MaxBatch 1); let the runner loose.
	close(gate)
	first := <-started
	second := <-started
	if first != "interactive" || second != "bulk" {
		t.Errorf("dispatch order %s,%s; want interactive,bulk", first, second)
	}
	waitTerminal(t, g)
	waitTerminal(t, bulk)
	waitTerminal(t, inter)
	drain(t, m)
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New(Config{MaxBatch: 8, Linger: 20 * time.Millisecond, Runners: 1})
	var ran atomic.Bool
	var doneHook atomic.Bool
	j, err := m.Submit(Spec{
		BatchKey: "k",
		Run: func(context.Context, any, *Job) error {
			ran.Store(true)
			return nil
		},
		Done: func(*Job) { doneHook.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	waitTerminal(t, j)
	if j.State() != StateCancelled {
		t.Fatalf("state %s, want cancelled", j.State())
	}
	if !doneHook.Load() {
		t.Error("Done hook not fired for queued-cancel")
	}
	j.Cancel() // idempotent
	// Give the linger timer a chance to seal and the runner to (not) run it.
	time.Sleep(50 * time.Millisecond)
	if ran.Load() {
		t.Error("Run executed for a job cancelled while queued")
	}
	if m.Stats().Cancelled != 1 {
		t.Errorf("cancelled counter %d", m.Stats().Cancelled)
	}
	drain(t, m)
}

func TestCancelRunningAbortsViaContext(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	started := make(chan struct{})
	j, _ := m.Submit(Spec{
		BatchKey: "k",
		Run: func(ctx context.Context, _ any, _ *Job) error {
			close(started)
			<-ctx.Done() // a cancellable kernel observes ctx
			return ctx.Err()
		},
	})
	<-started
	j.Cancel()
	waitTerminal(t, j)
	if j.State() != StateCancelled {
		t.Fatalf("state %s (%s), want cancelled", j.State(), j.Err())
	}
	drain(t, m)
}

func TestRunFailureMarksFailed(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	j, _ := m.Submit(Spec{
		BatchKey: "k",
		Run:      func(context.Context, any, *Job) error { return errors.New("kernel exploded") },
	})
	waitTerminal(t, j)
	if j.State() != StateFailed || !strings.Contains(j.Err(), "kernel exploded") {
		t.Fatalf("state %s err %q", j.State(), j.Err())
	}
	if m.Stats().Failed != 1 {
		t.Errorf("failed counter %d", m.Stats().Failed)
	}
	drain(t, m)
}

func TestSetupFailureFailsWholeBatch(t *testing.T) {
	m := New(Config{MaxBatch: 2, Linger: time.Hour, Runners: 1})
	spec := Spec{
		BatchKey: "k",
		Setup:    func(context.Context) (any, error) { return nil, errors.New("no such volume") },
		Run: func(context.Context, any, *Job) error {
			t.Error("Run called despite setup failure")
			return nil
		},
	}
	a, _ := m.Submit(spec)
	b, _ := m.Submit(spec)
	waitTerminal(t, a)
	waitTerminal(t, b)
	for _, j := range []*Job{a, b} {
		if j.State() != StateFailed || !strings.Contains(j.Err(), "no such volume") {
			t.Errorf("job %s: %s %q", j.ID, j.State(), j.Err())
		}
	}
	drain(t, m)
}

func TestSubscribeReplayAndLive(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	gate := make(chan struct{})
	started := make(chan struct{})
	j, _ := m.Submit(Spec{
		BatchKey: "k",
		Run: func(ctx context.Context, _ any, j *Job) error {
			close(started)
			<-gate
			j.Emit("coarse", map[string]int{"level": 2})
			return nil
		},
	})
	<-started
	past, ch, cancel := j.Subscribe()
	defer cancel()
	// queued + batched already published.
	if len(past) < 2 || past[0].Type != "queued" || past[1].Type != "batched" {
		t.Fatalf("replay %+v", past)
	}
	close(gate)
	var live []Event
	for ev := range ch {
		live = append(live, ev)
		if State(ev.Type).Terminal() {
			break
		}
	}
	if len(live) != 2 || live[0].Type != "coarse" || live[1].Type != "done" {
		t.Fatalf("live events %+v", live)
	}
	// Seq must be contiguous across replay+live.
	all := append(past, live...)
	for i, ev := range all {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: %+v", i, ev.Seq, all)
		}
	}
	// Subscribing after terminal replays everything.
	waitTerminal(t, j)
	past2, _, cancel2 := j.Subscribe()
	cancel2()
	if len(past2) != len(all) {
		t.Errorf("post-terminal replay %d events, want %d", len(past2), len(all))
	}
	drain(t, m)
}

func TestResultRoundTrip(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	j, _ := m.Submit(Spec{
		BatchKey: "k",
		Run: func(ctx context.Context, _ any, j *Job) error {
			j.SetResult([]byte("png bytes"))
			return nil
		},
	})
	waitTerminal(t, j)
	if got, ok := j.Result().([]byte); !ok || string(got) != "png bytes" {
		t.Errorf("result %v", j.Result())
	}
	drain(t, m)
}

func TestSubmitValidationAndDraining(t *testing.T) {
	m := New(Config{Runners: 1})
	if _, err := m.Submit(Spec{}); err == nil {
		t.Error("nil Run accepted")
	}
	drain(t, m)
	if _, err := m.Submit(Spec{Run: func(context.Context, any, *Job) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v", err)
	}
}

func TestDrainRunsQueuedWork(t *testing.T) {
	// Long linger: drain itself must seal the pending batch.
	m := New(Config{MaxBatch: 100, Linger: time.Hour, Runners: 1})
	var runs atomic.Int32
	var js []*Job
	for i := 0; i < 3; i++ {
		j, err := m.Submit(Spec{
			BatchKey: "k",
			Run: func(context.Context, any, *Job) error {
				runs.Add(1)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	drain(t, m)
	if runs.Load() != 3 {
		t.Errorf("drain ran %d jobs, want 3", runs.Load())
	}
	for _, j := range js {
		if j.State() != StateDone {
			t.Errorf("job %s: %s", j.ID, j.State())
		}
	}
}

func TestDrainExpiryFailsStuckJob(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1})
	started := make(chan struct{})
	j, _ := m.Submit(Spec{
		BatchKey: "k",
		Run: func(ctx context.Context, _ any, _ *Job) error {
			close(started)
			<-ctx.Done() // kernel honors cancellation but never finishes otherwise
			return ctx.Err()
		},
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	waitTerminal(t, j)
	// Not user-cancelled, so the context death reads as failure.
	if j.State() != StateFailed {
		t.Errorf("state %s, want failed", j.State())
	}
}

func TestGCKeepsLiveAndRecent(t *testing.T) {
	m := New(Config{MaxBatch: 1, Linger: time.Hour, Runners: 1, Keep: 2})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Submit(Spec{
			BatchKey: fmt.Sprintf("k%d", i),
			Run:      func(context.Context, any, *Job) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.ID)
	}
	// Submitting one more triggers GC of the oldest terminal jobs.
	gate := make(chan struct{})
	started := make(chan struct{})
	live, _ := m.Submit(Spec{BatchKey: "live", Run: func(ctx context.Context, _ any, _ *Job) error {
		close(started)
		<-gate
		return nil
	}})
	<-started
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest terminal job survived GC past Keep")
	}
	if _, ok := m.Get(ids[4]); !ok {
		t.Error("recent terminal job evicted")
	}
	if _, ok := m.Get(live.ID); !ok {
		t.Error("live job evicted")
	}
	close(gate)
	waitTerminal(t, live)
	drain(t, m)
}

func TestParseLaneAndStrings(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Lane
	}{{"", Interactive}, {"interactive", Interactive}, {"bulk", Bulk}} {
		got, err := ParseLane(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLane(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseLane("urgent"); err == nil {
		t.Error("bad lane accepted")
	}
	if Interactive.String() != "interactive" || Bulk.String() != "bulk" || Lane(9).String() != "Lane(9)" {
		t.Error("lane names wrong")
	}
	if StateRunning.Terminal() || !StateDone.Terminal() || !StateFailed.Terminal() || !StateCancelled.Terminal() {
		t.Error("Terminal() wrong")
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	// A racy soak: 32 jobs across lanes and keys, a third cancelled
	// mid-flight, subscribers attached concurrently.
	m := New(Config{MaxBatch: 4, Linger: 2 * time.Millisecond, Runners: 3})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := Interactive
			if i%2 == 0 {
				lane = Bulk
			}
			j, err := m.Submit(Spec{
				BatchKey: fmt.Sprintf("key%d", i%3),
				Lane:     lane,
				Setup:    func(context.Context) (any, error) { return i % 3, nil },
				Run: func(ctx context.Context, _ any, j *Job) error {
					j.Emit("coarse", i)
					select {
					case <-time.After(time.Duration(i%5) * time.Millisecond):
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			_, ch, cancelSub := j.Subscribe()
			defer cancelSub()
			if i%3 == 0 {
				j.Cancel()
			}
			select {
			case <-j.Done():
			case <-time.After(5 * time.Second):
				t.Errorf("job %s stuck", j.ID)
			}
			// Drain whatever the channel buffered; must not deadlock.
			for {
				select {
				case <-ch:
				default:
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := m.Stats()
	if st.Submitted != 32 || st.Done+st.Failed+st.Cancelled != 32 {
		t.Errorf("stats %+v", st)
	}
	if st.Failed != 0 {
		t.Errorf("unexpected failures: %+v", st)
	}
	drain(t, m)
}
