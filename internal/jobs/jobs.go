// Package jobs is the async job subsystem behind sfcserved's /jobs
// API: a bounded-lifecycle job queue with a batching scheduler and two
// priority lanes.
//
// The scheduler groups compatible queued jobs — callers tag each
// submission with a BatchKey (sfcserved uses volume × generation ×
// dtype × layout) — into batches sealed by either a size trigger
// (MaxBatch jobs pending for one key) or a deadline trigger (the
// oldest pending job has lingered Linger). A batch runs its Setup
// function once and shares the result with every job in it: for
// SFC-layout volumes that is exactly the amortization Walker &
// Skjellum argue for — the dtype-converted flat view and the coarse
// subsample level are resolved once per batch instead of once per
// request, so the data movement that dominates structured-memory
// workloads is paid once.
//
// Two lanes order dispatch, not execution: a sealed interactive batch
// is always picked before a sealed bulk batch, so interactive jobs
// overtake bulk sweeps at every scheduling point, but a batch already
// running is never interrupted (its jobs still honor per-job context
// cancellation).
//
// Every job carries an ordered event log (queued, batched, progressive
// events emitted by Run, then exactly one terminal event). Subscribers
// get the full past replayed and then live delivery, so an SSE stream
// attached late — or re-attached after a disconnect — sees the same
// sequence as one attached at submit time.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Lane is a scheduling priority class.
type Lane int

const (
	// Interactive jobs are dispatched before bulk jobs at every
	// scheduling decision.
	Interactive Lane = iota
	// Bulk jobs run when no interactive batch is waiting.
	Bulk
	laneCount
)

// String names the lane.
func (l Lane) String() string {
	switch l {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("Lane(%d)", int(l))
}

// ParseLane maps a lane name to its Lane; "" defaults to Interactive.
func ParseLane(s string) (Lane, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "bulk":
		return Bulk, nil
	}
	return 0, fmt.Errorf("jobs: unknown priority %q (want interactive or bulk)", s)
}

// State is a job's lifecycle position. Terminal states are Done,
// Failed, and Cancelled; a job reaches exactly one of them exactly
// once.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"    // submitted, batch not sealed
	StateBatched   State = "batched"   // batch sealed, waiting for a runner
	StateRunning   State = "running"   // Run executing
	StateDone      State = "done"      // Run returned nil
	StateFailed    State = "failed"    // Run (or Setup) returned an error
	StateCancelled State = "cancelled" // cancelled by the caller
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry in a job's ordered event log. Type is the job
// state for lifecycle events, or a caller-chosen name for progressive
// events emitted by Run (sfcserved emits "coarse"). Data is the
// event's JSON payload, nil when there is none.
type Event struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Spec describes one job submission.
type Spec struct {
	// BatchKey groups compatible jobs: submissions with equal keys on
	// the same lane may share a batch (and its Setup result).
	BatchKey string
	// Lane selects the scheduling priority.
	Lane Lane
	// Setup, when non-nil, runs once per batch before any of its jobs
	// and its result is passed to every Run in the batch. An error
	// fails every job in the batch that is still live.
	Setup func(ctx context.Context) (any, error)
	// Run executes the job. ctx is the job's own context (cancelled by
	// Job.Cancel or manager drain expiry); shared is the batch's Setup
	// result (nil without Setup). Run may emit progressive events via
	// Job.Emit. A nil return completes the job; a context error
	// cancels or fails it depending on who cancelled.
	Run func(ctx context.Context, shared any, j *Job) error
	// Done, when non-nil, is called exactly once after the job's
	// terminal event is published — the hook sfcserved uses to close
	// out the job's trace and metrics.
	Done func(j *Job)
}

// Times are a job's lifecycle timestamps; zero values mean the phase
// was never reached.
type Times struct {
	Submitted time.Time
	Sealed    time.Time // batch sealed (job left the pending set)
	Started   time.Time // Run began
	Finished  time.Time // terminal state reached
}

// Job is one submitted unit of work. All exported methods are safe for
// concurrent use.
type Job struct {
	// ID is the job's handle in the API; random, process-unique.
	ID string

	spec   Spec
	mgr    *Manager
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	err       string
	times     Times
	events    []Event
	subs      map[chan Event]struct{}
	userCncl  bool // Cancel() was called (vs ctx dying for another reason)
	result    any
	batchSize int
	done      chan struct{}
}

// Status is a job's JSON snapshot for the GET /jobs/{id} endpoint.
type Status struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Lane      string `json:"lane"`
	BatchSize int    `json:"batch_size,omitempty"`
	Error     string `json:"error,omitempty"`
	Events    int    `json:"events"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		State:       j.state,
		Lane:        j.spec.Lane.String(),
		BatchSize:   j.batchSize,
		Error:       j.err,
		Events:      len(j.events),
		SubmittedAt: j.times.Submitted,
	}
	if !j.times.Started.IsZero() {
		t := j.times.Started
		st.StartedAt = &t
	}
	if !j.times.Finished.IsZero() {
		t := j.times.Finished
		st.FinishedAt = &t
	}
	return st
}

// Times returns the lifecycle timestamps recorded so far.
func (j *Job) Times() Times {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.times
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure message for a failed job, "" otherwise.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// BatchSize reports how many jobs shared this job's batch (0 until
// sealed).
func (j *Job) BatchSize() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batchSize
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// SetResult attaches the job's final artifact. The manager treats it
// as opaque; it is released when the job is garbage-collected.
func (j *Job) SetResult(v any) {
	j.mu.Lock()
	j.result = v
	j.mu.Unlock()
}

// Result returns the artifact attached by SetResult, or nil.
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Cancel requests cancellation. A queued or batched job transitions to
// Cancelled immediately (its Run never starts); a running job has its
// context cancelled and reaches Cancelled when Run returns. Cancel on
// a terminal job is a no-op.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.userCncl = true
	running := j.state == StateRunning
	if !running {
		j.finishLocked(StateCancelled, "cancelled before start")
	}
	j.mu.Unlock()
	j.cancel()
	if !running && j.spec.Done != nil {
		j.spec.Done(j)
	}
}

// Emit publishes a progressive event with the given type and payload
// (marshalled to JSON; a marshal failure publishes the event with a
// null payload rather than dropping it). For use by Run.
func (j *Job) Emit(typ string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		raw = []byte("null")
	}
	j.mu.Lock()
	j.publishLocked(typ, raw)
	j.mu.Unlock()
}

// subBuffer is each subscriber's channel depth. A job's event count is
// small (lifecycle + a handful of progressive events), so a full
// channel means a subscriber stopped draining; rather than block the
// runner, the event is dropped for that subscriber (it still lands in
// the log, so a re-subscribe replays it).
const subBuffer = 32

// publishLocked appends an event to the log and fans it out. Callers
// hold j.mu.
func (j *Job) publishLocked(typ string, data json.RawMessage) {
	ev := Event{Seq: len(j.events), Type: typ, Data: data}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe returns the events published so far and a channel carrying
// subsequent ones. The caller must invoke the returned cancel func
// when done; after the job's terminal event the channel stops
// receiving (terminal events are the last ever published).
func (j *Job) Subscribe() (past []Event, ch <-chan Event, cancel func()) {
	c := make(chan Event, subBuffer)
	j.mu.Lock()
	past = append([]Event(nil), j.events...)
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[c] = struct{}{}
	j.mu.Unlock()
	return past, c, func() {
		j.mu.Lock()
		delete(j.subs, c)
		j.mu.Unlock()
	}
}

// finishLocked performs the single terminal transition and bumps the
// manager's terminal counter. Callers hold j.mu and must invoke
// spec.Done after releasing it.
func (j *Job) finishLocked(st State, errMsg string) {
	j.state = st
	j.err = errMsg
	j.times.Finished = time.Now()
	switch st {
	case StateDone:
		j.mgr.doneN.Add(1)
	case StateFailed:
		j.mgr.failed.Add(1)
	case StateCancelled:
		j.mgr.cancelled.Add(1)
	}
	var data json.RawMessage
	if errMsg != "" {
		data, _ = json.Marshal(map[string]string{"error": errMsg}) //nolint:errcheck // map[string]string never fails
	}
	j.publishLocked(string(st), data)
	close(j.done)
}

// finish runs the terminal transition from the runner: marks the state,
// publishes the terminal event, and fires the Done hook. False if the
// job was already terminal (e.g. cancelled while queued).
func (j *Job) finish(st State, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.finishLocked(st, errMsg)
	j.mu.Unlock()
	if j.spec.Done != nil {
		j.spec.Done(j)
	}
	return true
}

// Config tunes the manager. Zero values take the defaults noted on
// each field.
type Config struct {
	// MaxBatch seals a pending batch when it reaches this many jobs
	// (default 8).
	MaxBatch int
	// Linger seals a pending batch when its first job has waited this
	// long (default 25ms) — the deadline half of the size/deadline
	// trigger, bounding the latency cost of waiting for company.
	Linger time.Duration
	// Runners is how many batches execute concurrently (default 2).
	// Jobs inside a batch run sequentially; the kernel-level admission
	// gate is the caller's (sfcserved acquires its run slots inside
	// Run).
	Runners int
	// Keep bounds how many terminal jobs stay queryable (default 128);
	// the oldest are dropped first. Live jobs are never dropped.
	Keep int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.Linger <= 0 {
		c.Linger = 25 * time.Millisecond
	}
	if c.Runners <= 0 {
		c.Runners = 2
	}
	if c.Keep <= 0 {
		c.Keep = 128
	}
	return c
}

// Stats is a point-in-time snapshot of the manager's counters and
// queue state.
type Stats struct {
	Submitted uint64 // jobs accepted
	Done      uint64 // jobs completed successfully
	Failed    uint64 // jobs failed (incl. setup failures and drain expiry)
	Cancelled uint64 // jobs cancelled
	Batches   uint64 // batches dispatched to a runner
	Pending   int    // jobs in unsealed batches
	Ready     int    // jobs in sealed batches awaiting a runner
	Running   int    // batches currently executing
}

// batch is a group of compatible jobs that share one Setup.
type batch struct {
	key    string
	lane   Lane
	jobs   []*Job
	sealed bool
	timer  *time.Timer
}

type pendingKey struct {
	lane Lane
	key  string
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("jobs: manager is draining")

// Manager owns the queue, the batching scheduler, and the runner pool.
// Construct with New; call Drain exactly once to shut down.
type Manager struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // insertion order, for GC
	pending  map[pendingKey]*batch
	ready    [laneCount][]*batch
	pendingN int
	readyN   int
	running  int
	draining bool

	submitted atomic.Uint64
	doneN     atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	batches   atomic.Uint64

	wg sync.WaitGroup
}

// New starts a manager with cfg.Runners executor goroutines.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
		pending: make(map[pendingKey]*batch),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// newID returns a random job handle.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobs: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues a job. The returned Job is immediately queryable and
// subscribable; its "queued" event is already published. Fails with
// ErrDraining after Drain begins.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if spec.Run == nil {
		return nil, errors.New("jobs: Spec.Run must be non-nil")
	}
	jctx, jcancel := context.WithCancel(m.ctx)
	j := &Job{
		ID:     newID(),
		spec:   spec,
		mgr:    m,
		ctx:    jctx,
		cancel: jcancel,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	j.times.Submitted = time.Now()

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		jcancel()
		return nil, ErrDraining
	}
	m.submitted.Add(1)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.gcLocked()

	j.mu.Lock()
	j.publishLocked(string(StateQueued), nil)
	j.mu.Unlock()

	pk := pendingKey{spec.Lane, spec.BatchKey}
	b := m.pending[pk]
	if b == nil {
		b = &batch{key: spec.BatchKey, lane: spec.Lane}
		m.pending[pk] = b
		// Deadline trigger: seal when the first job has lingered long
		// enough, whether or not company arrived.
		b.timer = time.AfterFunc(m.cfg.Linger, func() {
			m.mu.Lock()
			m.sealLocked(pk, b)
			m.mu.Unlock()
		})
	}
	b.jobs = append(b.jobs, j)
	m.pendingN++
	if len(b.jobs) >= m.cfg.MaxBatch {
		// Size trigger.
		m.sealLocked(pk, b)
	}
	m.mu.Unlock()
	return j, nil
}

// sealLocked moves a pending batch to its lane's ready queue and marks
// its jobs batched. Callers hold m.mu; safe to call twice (the linger
// timer and the size trigger can race).
func (m *Manager) sealLocked(pk pendingKey, b *batch) {
	if b.sealed || m.pending[pk] != b {
		return
	}
	b.sealed = true
	delete(m.pending, pk)
	if b.timer != nil {
		b.timer.Stop()
	}
	now := time.Now()
	size := len(b.jobs)
	for _, j := range b.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateBatched
			j.times.Sealed = now
			j.batchSize = size
			data, _ := json.Marshal(map[string]any{"batch_size": size, "lane": b.lane.String()}) //nolint:errcheck
			j.publishLocked(string(StateBatched), data)
		}
		j.mu.Unlock()
	}
	m.ready[b.lane] = append(m.ready[b.lane], b)
	m.pendingN -= size
	m.readyN += size
	m.cond.Broadcast()
}

// Get returns the job with the given ID while it is still retained.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	return j, ok
}

// Stats snapshots the counters and queue depths.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	pending, ready, running := m.pendingN, m.readyN, m.running
	m.mu.Unlock()
	return Stats{
		Submitted: m.submitted.Load(),
		Done:      m.doneN.Load(),
		Failed:    m.failed.Load(),
		Cancelled: m.cancelled.Load(),
		Batches:   m.batches.Load(),
		Pending:   pending,
		Ready:     ready,
		Running:   running,
	}
}

// gcLocked drops the oldest terminal jobs past the Keep bound. Callers
// hold m.mu.
func (m *Manager) gcLocked() {
	terminal := 0
	for _, id := range m.order {
		if m.jobs[id] != nil && m.jobs[id].State().Terminal() {
			terminal++
		}
	}
	if terminal <= m.cfg.Keep {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if terminal > m.cfg.Keep && j.State().Terminal() {
			delete(m.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

// runner executes sealed batches, interactive lane first, until the
// ready queues are empty and the manager is draining.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var b *batch
		for {
			if b = m.popLocked(); b != nil {
				break
			}
			if m.draining {
				m.mu.Unlock()
				return
			}
			m.cond.Wait()
		}
		m.running++
		m.readyN -= len(b.jobs)
		m.mu.Unlock()

		m.batches.Add(1)
		m.runBatch(b)

		m.mu.Lock()
		m.running--
		m.cond.Broadcast() // Drain waits on running==0
		m.mu.Unlock()
	}
}

// popLocked takes the next ready batch, preferring the interactive
// lane. Callers hold m.mu.
func (m *Manager) popLocked() *batch {
	for lane := Lane(0); lane < laneCount; lane++ {
		if q := m.ready[lane]; len(q) > 0 {
			m.ready[lane] = q[1:]
			return q[0]
		}
	}
	return nil
}

// runBatch executes one sealed batch: Setup once, then each live job
// in submit order.
func (m *Manager) runBatch(b *batch) {
	live := b.jobs[:0]
	for _, j := range b.jobs {
		if !j.State().Terminal() {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}

	var shared any
	if setup := live[0].spec.Setup; setup != nil {
		var err error
		// Setup runs under the manager's context: it serves the whole
		// batch, so one job's cancellation must not abort it.
		if shared, err = setup(m.ctx); err != nil {
			for _, j := range live {
				j.finish(StateFailed, "batch setup: "+err.Error())
			}
			return
		}
	}

	for _, j := range live {
		j.mu.Lock()
		if j.state.Terminal() {
			j.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.times.Started = time.Now()
		j.mu.Unlock()

		err := j.spec.Run(j.ctx, shared, j)
		switch {
		case err == nil:
			j.finish(StateDone, "")
		case errors.Is(err, context.Canceled) && j.cancelRequested():
			j.finish(StateCancelled, "cancelled")
		default:
			j.finish(StateFailed, err.Error())
		}
	}
}

// cancelRequested reports whether Cancel was the reason the job's
// context died (vs drain expiry or a deadline).
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCncl
}

// Drain shuts the manager down: new submissions fail with ErrDraining,
// every pending batch seals immediately, and queued work runs to
// completion. If ctx expires first, the manager context is cancelled —
// running kernels abort through their job contexts and the affected
// jobs terminate as failed — and Drain returns ctx.Err(). Runner
// goroutines are joined before returning in either case.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	for pk, b := range m.pending {
		m.sealLocked(pk, b)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.mu.Lock()
		for m.readyN > 0 || m.running > 0 {
			m.cond.Wait()
		}
		m.mu.Unlock()
		close(done)
	}()

	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Abort running kernels; their jobs fail, runners then find the
		// queues drained (remaining ready jobs fail fast on dead
		// contexts via their Run implementations or terminate normally).
		m.cancel()
		<-done
	}
	m.cancel()
	m.wg.Wait()
	return err
}
