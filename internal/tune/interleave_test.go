package tune

import (
	"math/rand/v2"
	"strings"
	"testing"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

func TestSweepTieBreakPrefersSmaller(t *testing.T) {
	// All candidates score identically; the smaller parameter must win
	// regardless of input order (it wastes less padding).
	for _, params := range [][]int{{16, 4, 8}, {4, 8, 16}, {8, 16, 4}} {
		best, _, err := Sweep(params, func(int) (float64, error) { return 7, nil })
		if err != nil {
			t.Fatal(err)
		}
		if best != 4 {
			t.Errorf("params %v: tied best = %d, want 4", params, best)
		}
	}
	// A strictly better later candidate still wins.
	best, _, err := Sweep([]int{4, 8}, func(p int) (float64, error) {
		if p == 8 {
			return 1, nil
		}
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 8 {
		t.Errorf("best = %d, want 8", best)
	}
}

// interleaveConfig is the small deterministic search CI's tune-smoke
// job replays: 16³, radius-1 z-inner stencil, tiny population.
func interleaveConfig() InterleaveConfig {
	return InterleaveConfig{
		Nx: 16, Ny: 16, Nz: 16,
		Seed:   1,
		Kernel: KernelBilateral,
		Dtype:  grid.F32,
		Options: filter.Options{
			Radius: 1, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 2,
		},
		Platform:    cache.Scaled(cache.IvyBridge(), 32),
		Population:  8,
		Generations: 3,
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	a, err := Interleave(interleaveConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Interleave(interleaveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec != b.Spec || a.Score != b.Score {
		t.Errorf("same config, different results: %q/%d vs %q/%d", a.Spec, a.Score, b.Spec, b.Score)
	}
	if len(a.Evals) != len(b.Evals) {
		t.Fatalf("eval counts differ: %d vs %d", len(a.Evals), len(b.Evals))
	}
	for i := range a.Evals {
		if a.Evals[i] != b.Evals[i] {
			t.Errorf("eval %d differs: %+v vs %+v", i, a.Evals[i], b.Evals[i])
		}
	}
}

func TestInterleaveBeatsOrMatchesZOrder(t *testing.T) {
	// The gate CI enforces: the tuned layout's simulated L1 misses may
	// not exceed plain Z order's. The z-inner iteration order gives the
	// search headroom over Z order's x-first interleave.
	res, err := Interleave(interleaveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Score > res.ZOrder {
		t.Errorf("tuned layout %q scored %d misses, worse than z-order's %d", res.Spec, res.Score, res.ZOrder)
	}
	t.Logf("tuned %q: %d misses vs z-order %d (%d candidates)", res.Spec, res.Score, res.ZOrder, len(res.Evals))
	if !strings.HasPrefix(res.Layout, core.BitSpecPrefix) {
		t.Errorf("Layout = %q, want %q prefix", res.Layout, core.BitSpecPrefix)
	}
	if _, err := core.NewBitLayout(16, 16, 16, res.Spec); err != nil {
		t.Errorf("winning spec does not reconstruct: %v", err)
	}
}

func TestInterleaveVolrend(t *testing.T) {
	cfg := interleaveConfig()
	cfg.Kernel = KernelVolrend
	cfg.ImgW, cfg.ImgH = 32, 32
	cfg.Population, cfg.Generations = 6, 2
	res, err := Interleave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score == 0 || res.ZOrder == 0 {
		t.Errorf("volrend replay produced no misses: tuned %d, z-order %d", res.Score, res.ZOrder)
	}
	if res.Score > res.ZOrder {
		t.Errorf("tuned %q scored %d, worse than z-order %d", res.Spec, res.Score, res.ZOrder)
	}
	t.Logf("volrend tuned %q: %d misses vs z-order %d (%d candidates)",
		res.Spec, res.Score, res.ZOrder, len(res.Evals))
}

func TestInterleaveDtypes(t *testing.T) {
	// Every dtype lane evaluates and returns a valid spec (the issue's
	// per-dtype tuning cells).
	for _, dt := range []grid.Dtype{grid.U8, grid.U16, grid.F64} {
		cfg := interleaveConfig()
		cfg.Dtype = dt
		cfg.Population, cfg.Generations = 4, 1
		res, err := Interleave(cfg)
		if err != nil {
			t.Fatalf("dtype %v: %v", dt, err)
		}
		if _, err := core.NewBitLayout(16, 16, 16, res.Spec); err != nil {
			t.Errorf("dtype %v: spec %q invalid: %v", dt, res.Spec, err)
		}
	}
}

func TestInterleaveDegenerate(t *testing.T) {
	// A 1×1×8 volume has only z letters: nothing to permute, but the
	// search still returns the (unique) spec.
	cfg := interleaveConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 1, 1, 8
	res, err := Interleave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec != "zzz" {
		t.Errorf("degenerate spec = %q, want zzz", res.Spec)
	}
}

func TestParseKernel(t *testing.T) {
	if k, err := ParseKernel("bilateral"); err != nil || k != KernelBilateral {
		t.Errorf("bilateral: %v %v", k, err)
	}
	if k, err := ParseKernel("volrend"); err != nil || k != KernelVolrend {
		t.Errorf("volrend: %v %v", k, err)
	}
	if _, err := ParseKernel("fft"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestCrossoverPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	a, b := "xyzxyzxyz", "zzzyyyxxx"
	for i := 0; i < 50; i++ {
		child := crossoverSpecs(a, b, rng)
		if len(child) != len(a) {
			t.Fatalf("child %q wrong length", child)
		}
		cx, cy, cz := letterCounts(child)
		if cx != 3 || cy != 3 || cz != 3 {
			t.Fatalf("child %q lost the multiset (%d,%d,%d)", child, cx, cy, cz)
		}
		child = swapMutate(child, rng)
		cx, cy, cz = letterCounts(child)
		if cx != 3 || cy != 3 || cz != 3 {
			t.Fatalf("mutant %q lost the multiset", child)
		}
	}
}

func TestMicrobenchSmoke(t *testing.T) {
	cfg := interleaveConfig()
	cfg.Nx, cfg.Ny, cfg.Nz = 8, 8, 8
	specs := []string{core.RoundRobinSpec(8, 8, 8), "zzzyyyxxx"}
	best, results, err := Microbench(cfg, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != specs[0] && best != specs[1] {
		t.Errorf("best %q not among candidates", best)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.Elapsed <= 0 {
			t.Errorf("spec %q elapsed %v", r.Spec, r.Elapsed)
		}
	}
}
