package tune

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// This file extends the package's parameter sweeps to a search over
// generalized-Morton interleave orderings (core.BitLayout): instead of
// picking one scalar (a tile or brick edge), the tuner permutes the
// letters of an interleave spec — a string like "xyzxyzxyz" naming
// which axis contributes each index bit — and keeps the ordering whose
// simulated L1 misses are lowest for a given volume shape, kernel and
// element type. The space of orderings is a multiset permutation
// (e.g. 3× x, 3× y, 3× z for a 8×8×8 volume ⇒ 1680 distinct specs;
// 32³ ⇒ 756756), too large to sweep exhaustively, so the search is a
// small seeded evolutionary loop: structured seed candidates (Z order,
// row major, brick hybrids) plus random shuffles, then a few
// generations of elite selection, multiset-preserving crossover and
// swap mutation. All randomness comes from one PCG stream seeded by
// the config, candidates are evaluated sequentially against the
// deterministic cache simulator, and ties break toward the
// lexicographically smaller spec — so a given config always returns
// the same layout, which is what lets CI pin the result.

// Kernel names the workload an interleave is tuned for.
type Kernel string

// Tunable kernels: the paper's two applications.
const (
	// KernelBilateral is the 3D bilateral filter (structured stencil).
	KernelBilateral Kernel = "bilateral"
	// KernelVolrend is the raycasting volume renderer (semi-structured).
	KernelVolrend Kernel = "volrend"
)

// ParseKernel maps a kernel name to its Kernel.
func ParseKernel(s string) (Kernel, error) {
	switch Kernel(s) {
	case KernelBilateral, KernelVolrend:
		return Kernel(s), nil
	}
	return "", fmt.Errorf("tune: unknown kernel %q (want bilateral or volrend)", s)
}

// InterleaveConfig fixes what an interleave ordering is tuned for and
// how hard to search.
type InterleaveConfig struct {
	Nx, Ny, Nz int    // volume extents
	Seed       uint64 // dataset seed and the search's PCG seed
	Kernel     Kernel // workload to replay; empty defaults to bilateral
	Dtype      grid.Dtype
	// Options configures the bilateral kernel; Options.Workers also
	// sets the simulated thread count for both kernels.
	Options filter.Options
	// Render configures the volrend kernel (ignored for bilateral);
	// its Workers field is overridden by Options.Workers.
	Render render.Options
	// ImgW, ImgH size the volrend framebuffer; zero defaults to 64×64.
	ImgW, ImgH int
	Platform   cache.Platform

	// Population is the candidate pool per generation (default 10),
	// Generations the number of evolutionary rounds after scoring the
	// seeds (default 6), Elite how many top candidates survive each
	// round unchanged (default 3).
	Population  int
	Generations int
	Elite       int
}

func (cfg InterleaveConfig) withDefaults() InterleaveConfig {
	if cfg.Kernel == "" {
		cfg.Kernel = KernelBilateral
	}
	if cfg.Options.Workers == 0 {
		cfg.Options.Workers = 1
	}
	if cfg.ImgW == 0 {
		cfg.ImgW = 64
	}
	if cfg.ImgH == 0 {
		cfg.ImgH = 64
	}
	if cfg.Population == 0 {
		cfg.Population = 10
	}
	if cfg.Generations == 0 {
		cfg.Generations = 6
	}
	if cfg.Elite == 0 {
		cfg.Elite = 3
	}
	if cfg.Elite > cfg.Population {
		cfg.Elite = cfg.Population
	}
	return cfg
}

// SpecScore records one evaluated interleave candidate.
type SpecScore struct {
	Spec  string
	Score uint64 // simulated L1 misses; lower is better
}

// InterleaveResult is the outcome of an interleave search.
type InterleaveResult struct {
	// Spec is the winning interleave ordering ("zyxzyx…"), Layout the
	// full layout spec ("bit:zyxzyx…") as stored in volume manifests.
	Spec   string
	Layout string
	// Score is the winner's simulated L1 misses; ZOrder is the plain
	// padded Z-order layout's misses under the same replay, the
	// baseline the tuner must not regress (CI's tune-smoke gate).
	Score  uint64
	ZOrder uint64
	// Evals lists every distinct candidate evaluated, in first-
	// evaluation order (seeds first). len(Evals) is the search cost in
	// simulator replays.
	Evals []SpecScore
}

// Interleave searches generalized-Morton interleave orderings for the
// configured volume × kernel × dtype and returns the best found. The
// search is deterministic: a fixed config (including Seed) always
// returns the same result.
func Interleave(cfg InterleaveConfig) (*InterleaveResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Nx < 1 || cfg.Ny < 1 || cfg.Nz < 1 {
		return nil, fmt.Errorf("tune: extents %d×%d×%d must be positive", cfg.Nx, cfg.Ny, cfg.Nz)
	}
	base := core.RoundRobinSpec(cfg.Nx, cfg.Ny, cfg.Nz)

	var evals []SpecScore
	memo := make(map[string]uint64, cfg.Population*(cfg.Generations+1))
	evalSpec := func(spec string) (uint64, error) {
		if s, ok := memo[spec]; ok {
			return s, nil
		}
		l, err := core.NewBitLayout(cfg.Nx, cfg.Ny, cfg.Nz, spec)
		if err != nil {
			return 0, fmt.Errorf("tune: candidate %q: %w", spec, err)
		}
		s, err := simKernel(cfg, l)
		if err != nil {
			return 0, fmt.Errorf("tune: candidate %q: %w", spec, err)
		}
		memo[spec] = s
		evals = append(evals, SpecScore{Spec: spec, Score: s})
		return s, nil
	}

	zScore, err := simKernel(cfg, core.NewZOrder(cfg.Nx, cfg.Ny, cfg.Nz))
	if err != nil {
		return nil, fmt.Errorf("tune: z-order baseline: %w", err)
	}

	finish := func(spec string) (*InterleaveResult, error) {
		score, ok := memo[spec]
		if !ok {
			var err error
			if score, err = evalSpec(spec); err != nil {
				return nil, err
			}
		}
		return &InterleaveResult{
			Spec:   spec,
			Layout: core.BitSpecPrefix + spec,
			Score:  score,
			ZOrder: zScore,
			Evals:  evals,
		}, nil
	}

	// Degenerate search space: one distinct letter (or a single bit)
	// permutes to itself.
	if distinctLetters(base) < 2 {
		return finish(base)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5fc1a7e46))
	pop := seedSpecs(base, cfg.Population, rng)
	for gen := 0; ; gen++ {
		scored := make([]SpecScore, 0, len(pop))
		for _, spec := range pop {
			s, err := evalSpec(spec)
			if err != nil {
				return nil, err
			}
			scored = append(scored, SpecScore{Spec: spec, Score: s})
		}
		sort.Slice(scored, func(a, b int) bool {
			if scored[a].Score != scored[b].Score {
				return scored[a].Score < scored[b].Score
			}
			return scored[a].Spec < scored[b].Spec
		})
		if gen == cfg.Generations {
			break
		}
		elite := scored
		if len(elite) > cfg.Elite {
			elite = elite[:cfg.Elite]
		}
		next := make([]string, 0, cfg.Population)
		seen := make(map[string]bool, cfg.Population)
		for _, e := range elite {
			next = append(next, e.Spec)
			seen[e.Spec] = true
		}
		// Breed until the pool is full; the shuffle fallback keeps the
		// loop bounded when crossover+mutation collapse to duplicates.
		for tries := 0; len(next) < cfg.Population && tries < cfg.Population*20; tries++ {
			a := elite[rng.IntN(len(elite))].Spec
			b := elite[rng.IntN(len(elite))].Spec
			child := crossoverSpecs(a, b, rng)
			if rng.IntN(2) == 0 {
				child = swapMutate(child, rng)
			}
			if !seen[child] {
				next = append(next, child)
				seen[child] = true
			}
		}
		for len(next) < cfg.Population {
			s := shuffleSpec(base, rng)
			if !seen[s] {
				next = append(next, s)
				seen[s] = true
			}
		}
		pop = next
	}

	// Pick the best ever evaluated (not just the last generation);
	// ties break toward the lexicographically smaller spec.
	best := evals[0]
	for _, e := range evals[1:] {
		if e.Score < best.Score || (e.Score == best.Score && e.Spec < best.Spec) {
			best = e
		}
	}
	return finish(best.Spec)
}

// simKernel replays the configured kernel over a candidate layout
// through the cache simulator and returns total simulated L1 misses.
// The dataset depends only on shape, seed and dtype — never on the
// layout — so candidates are compared on access order alone.
func simKernel(cfg InterleaveConfig, l core.Layout) (uint64, error) {
	switch cfg.Dtype {
	case grid.U8:
		return simKernelOf[uint8](cfg, l)
	case grid.U16:
		return simKernelOf[uint16](cfg, l)
	case grid.F64:
		return simKernelOf[float64](cfg, l)
	default:
		return simKernelOf[float32](cfg, l)
	}
}

func simKernelOf[T grid.Scalar](cfg InterleaveConfig, l core.Layout) (uint64, error) {
	threads := cfg.Options.Workers
	sys := cache.NewSystem(cfg.Platform, threads)
	switch cfg.Kernel {
	case KernelVolrend:
		vol := volume.CombustionPlumeOf[T](l, cfg.Seed)
		views := make([]grid.ReaderOf[T], threads)
		for w := 0; w < threads; w++ {
			views[w] = grid.NewTraced(vol, 0, sys.Front(w))
		}
		cam := render.Orbit(1, 8, cfg.Nx, cfg.Ny, cfg.Nz, cfg.ImgW, cfg.ImgH)
		o := cfg.Render
		o.Workers = threads
		if _, err := render.RenderViewsOf(views, cam, render.DefaultTransferFunc(), o); err != nil {
			return 0, err
		}
	case KernelBilateral:
		src := volume.MRIPhantomOf[T](l, cfg.Seed, 0.05)
		nx, ny, nz := l.Dims()
		dst := grid.NewOf[T](core.New(core.ArrayKind, nx, ny, nz)) // dst fixed across candidates
		srcs := make([]grid.ReaderOf[T], threads)
		dsts := make([]grid.WriterOf[T], threads)
		for w := 0; w < threads; w++ {
			srcs[w] = grid.NewTraced(src, 0, sys.Front(w))
			dsts[w] = grid.NewTraced(dst, 1<<40, sys.Front(w))
		}
		if err := filter.ApplyViewsOf(srcs, dsts, cfg.Options); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("tune: unknown kernel %q", cfg.Kernel)
	}
	return l1Misses(sys.Report()), nil
}

// l1Misses sums level-1 misses across all simulated threads. The
// interleave tuner scores L1 rather than PaperMetric's last private
// level: interleave ordering mostly reshuffles spatial locality at
// line granularity, which L1 sees first and most sharply.
func l1Misses(r cache.Report) uint64 {
	if len(r.PrivateTotal) == 0 {
		return 0
	}
	return r.PrivateTotal[0].Misses
}

// distinctLetters counts distinct axis letters in a spec.
func distinctLetters(spec string) int {
	var seen [3]bool
	n := 0
	for i := 0; i < len(spec); i++ {
		k := int(spec[i] - 'x')
		if k >= 0 && k < 3 && !seen[k] {
			seen[k] = true
			n++
		}
	}
	return n
}

// letterCounts returns how many of each axis letter a spec holds.
func letterCounts(spec string) (cx, cy, cz int) {
	for i := 0; i < len(spec); i++ {
		switch spec[i] {
		case 'x':
			cx++
		case 'y':
			cy++
		case 'z':
			cz++
		}
	}
	return
}

// seedSpecs builds the initial population from base (the round-robin
// spec, ≡ compact Z order): structured seeds first — row-major and
// z-major extremes, Morton-brick hybrids — then random shuffles up to
// n candidates. All share base's letter multiset, so every candidate
// addresses the same extents.
func seedSpecs(base string, n int, rng *rand.Rand) []string {
	cx, cy, cz := letterCounts(base)
	rep := func(c byte, k int) string {
		b := make([]byte, k)
		for i := range b {
			b[i] = c
		}
		return string(b)
	}
	structured := []string{
		base, // round-robin interleave (compact Z order)
		rep('x', cx) + rep('y', cy) + rep('z', cz), // row major (x fastest)
		rep('z', cz) + rep('y', cy) + rep('x', cx), // z major (z fastest)
	}
	// Morton-brick hybrids: interleave the low b bits of each axis
	// (a 2^b-edge Z-ordered brick), then lay bricks out row-major.
	for _, b := range []int{1, 2, 3} {
		if cx <= b && cy <= b && cz <= b {
			break
		}
		spec := ""
		for i := 0; i < b; i++ {
			if i < cx {
				spec += "x"
			}
			if i < cy {
				spec += "y"
			}
			if i < cz {
				spec += "z"
			}
		}
		spec += rep('x', max(0, cx-b)) + rep('y', max(0, cy-b)) + rep('z', max(0, cz-b))
		structured = append(structured, spec)
	}
	pop := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for _, s := range structured {
		if len(pop) == n {
			break
		}
		if !seen[s] {
			pop = append(pop, s)
			seen[s] = true
		}
	}
	for tries := 0; len(pop) < n && tries < n*20; tries++ {
		s := shuffleSpec(base, rng)
		if !seen[s] {
			pop = append(pop, s)
			seen[s] = true
		}
	}
	return pop
}

// shuffleSpec returns a Fisher-Yates shuffle of spec's letters.
func shuffleSpec(spec string, rng *rand.Rand) string {
	b := []byte(spec)
	for i := len(b) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// swapMutate swaps two positions holding different letters (a no-op
// swap would waste the mutation). Gives up after a few draws on
// near-uniform specs.
func swapMutate(spec string, rng *rand.Rand) string {
	b := []byte(spec)
	for tries := 0; tries < 8; tries++ {
		i, j := rng.IntN(len(b)), rng.IntN(len(b))
		if b[i] != b[j] {
			b[i], b[j] = b[j], b[i]
			break
		}
	}
	return string(b)
}

// crossoverSpecs keeps a random-length prefix of parent a and fills
// the remaining letter budget in parent b's order, preserving the
// multiset so the child still addresses the same extents.
func crossoverSpecs(a, b string, rng *rand.Rand) string {
	cut := rng.IntN(len(a) + 1)
	var need [3]int
	for i := 0; i < len(a); i++ {
		need[a[i]-'x']++
	}
	child := make([]byte, 0, len(a))
	child = append(child, a[:cut]...)
	for _, c := range child {
		need[c-'x']--
	}
	for i := 0; i < len(b) && len(child) < len(a); i++ {
		if need[b[i]-'x'] > 0 {
			child = append(child, b[i])
			need[b[i]-'x']--
		}
	}
	return string(child)
}

// BenchResult records one microbenchmark timing.
type BenchResult struct {
	Spec    string
	Elapsed time.Duration // min over reps
}

// Microbench is the optional second tuning stage: it re-times the
// given specs (typically the simulator's top few) with the real kernel
// on real memory — no tracing, fast paths enabled — and returns the
// spec with the lowest min-of-reps wall time. Wall time is machine-
// and load-dependent, so this stage is excluded from the determinism
// guarantee and off by default everywhere; the simulator stage alone
// decides when reproducibility matters (CI).
func Microbench(cfg InterleaveConfig, specs []string, reps int) (string, []BenchResult, error) {
	cfg = cfg.withDefaults()
	if len(specs) == 0 {
		return "", nil, fmt.Errorf("tune: no specs to microbench")
	}
	if reps < 1 {
		reps = 3
	}
	results := make([]BenchResult, 0, len(specs))
	best, bestTime := "", time.Duration(0)
	for _, spec := range specs {
		l, err := core.NewBitLayout(cfg.Nx, cfg.Ny, cfg.Nz, spec)
		if err != nil {
			return "", nil, fmt.Errorf("tune: microbench %q: %w", spec, err)
		}
		min := time.Duration(0)
		for r := 0; r < reps; r++ {
			d, err := runReal(cfg, l)
			if err != nil {
				return "", nil, fmt.Errorf("tune: microbench %q: %w", spec, err)
			}
			if min == 0 || d < min {
				min = d
			}
		}
		results = append(results, BenchResult{Spec: spec, Elapsed: min})
		if best == "" || min < bestTime {
			best, bestTime = spec, min
		}
	}
	return best, results, nil
}

// runReal runs the configured kernel once over l without tracing and
// returns the elapsed wall time.
func runReal(cfg InterleaveConfig, l core.Layout) (time.Duration, error) {
	switch cfg.Dtype {
	case grid.U8:
		return runRealOf[uint8](cfg, l)
	case grid.U16:
		return runRealOf[uint16](cfg, l)
	case grid.F64:
		return runRealOf[float64](cfg, l)
	default:
		return runRealOf[float32](cfg, l)
	}
}

func runRealOf[T grid.Scalar](cfg InterleaveConfig, l core.Layout) (time.Duration, error) {
	switch cfg.Kernel {
	case KernelVolrend:
		vol := volume.CombustionPlumeOf[T](l, cfg.Seed)
		cam := render.Orbit(1, 8, cfg.Nx, cfg.Ny, cfg.Nz, cfg.ImgW, cfg.ImgH)
		o := cfg.Render
		o.Workers = cfg.Options.Workers
		start := time.Now()
		_, err := render.RenderOf[T](vol, cam, render.DefaultTransferFunc(), o)
		return time.Since(start), err
	case KernelBilateral:
		src := volume.MRIPhantomOf[T](l, cfg.Seed, 0.05)
		nx, ny, nz := l.Dims()
		dst := grid.NewOf[T](core.New(core.ArrayKind, nx, ny, nz))
		start := time.Now()
		err := filter.ApplyOf[T](src, dst, cfg.Options)
		return time.Since(start), err
	default:
		return 0, fmt.Errorf("tune: unknown kernel %q", cfg.Kernel)
	}
}
