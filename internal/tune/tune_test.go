package tune

import (
	"errors"
	"testing"

	"sfcmem/internal/cache"
	"sfcmem/internal/filter"
	"sfcmem/internal/parallel"
)

func TestSweepPicksMinimum(t *testing.T) {
	scores := map[int]float64{2: 5, 4: 1, 8: 3}
	best, results, err := Sweep([]int{2, 4, 8}, func(p int) (float64, error) {
		return scores[p], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best = %d, want 4", best)
	}
	if len(results) != 3 || results[1].Score != 1 {
		t.Errorf("results %+v", results)
	}
}

func TestSweepEmpty(t *testing.T) {
	if _, _, err := Sweep(nil, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := Sweep([]int{1}, func(int) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func testConfig() FilterConfig {
	return FilterConfig{
		Size: 24,
		Seed: 1,
		Options: filter.Options{
			Radius: 1, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 2,
		},
		Platform: cache.Scaled(cache.IvyBridge(), 32),
	}
}

func TestTileSizeReturnsCandidate(t *testing.T) {
	best, results, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 && best != 8 {
		t.Errorf("best tile %d not among candidates", best)
	}
	if len(results) != 2 {
		t.Errorf("%d results", len(results))
	}
	for _, r := range results {
		if r.Score <= 0 {
			t.Errorf("candidate %d scored %v", r.Param, r.Score)
		}
	}
}

func TestTileSizeSkipsOversized(t *testing.T) {
	_, results, err := TileSize(testConfig(), []int{8, 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Param != 8 {
		t.Errorf("oversized candidate not skipped: %+v", results)
	}
}

func TestTileSizeDeterministic(t *testing.T) {
	b1, r1, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || r1[0].Score != r2[0].Score || r1[1].Score != r2[1].Score {
		t.Errorf("tuning not deterministic: %v/%v vs %v/%v", b1, r1, b2, r2)
	}
}

func TestBrickSizeFiltersNonPow2(t *testing.T) {
	best, results, err := BrickSize(testConfig(), []int{3, 4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("non-pow2 candidates not filtered: %+v", results)
	}
	if best != 4 && best != 8 {
		t.Errorf("best brick %d", best)
	}
}

func TestDefaultCandidates(t *testing.T) {
	cfg := testConfig()
	if _, results, err := TileSize(cfg, nil); err != nil || len(results) == 0 {
		t.Errorf("default tile sweep: %v, %d results", err, len(results))
	}
	if _, results, err := BrickSize(cfg, nil); err != nil || len(results) == 0 {
		t.Errorf("default brick sweep: %v, %d results", err, len(results))
	}
}
