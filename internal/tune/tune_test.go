package tune

import (
	"errors"
	"strings"
	"testing"

	"sfcmem/internal/cache"
	"sfcmem/internal/filter"
	"sfcmem/internal/parallel"
)

func TestSweepPicksMinimum(t *testing.T) {
	scores := map[int]float64{2: 5, 4: 1, 8: 3}
	best, results, err := Sweep([]int{2, 4, 8}, func(p int) (float64, error) {
		return scores[p], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best = %d, want 4", best)
	}
	if len(results) != 3 || results[1].Score != 1 {
		t.Errorf("results %+v", results)
	}
}

func TestSweepEmpty(t *testing.T) {
	if _, _, err := Sweep(nil, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := Sweep([]int{1}, func(int) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func testConfig() FilterConfig {
	return FilterConfig{
		Size: 24,
		Seed: 1,
		Options: filter.Options{
			Radius: 1, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: 2,
		},
		Platform: cache.Scaled(cache.IvyBridge(), 32),
	}
}

func TestTileSizeReturnsCandidate(t *testing.T) {
	best, results, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 && best != 8 {
		t.Errorf("best tile %d not among candidates", best)
	}
	if len(results) != 2 {
		t.Errorf("%d results", len(results))
	}
	for _, r := range results {
		if r.Score <= 0 {
			t.Errorf("candidate %d scored %v", r.Param, r.Score)
		}
	}
}

func TestTileSizeSkipsOversized(t *testing.T) {
	_, results, err := TileSize(testConfig(), []int{8, 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Param != 8 {
		t.Errorf("oversized candidate not skipped: %+v", results)
	}
}

func TestTileSizeDeterministic(t *testing.T) {
	b1, r1, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := TileSize(testConfig(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || r1[0].Score != r2[0].Score || r1[1].Score != r2[1].Score {
		t.Errorf("tuning not deterministic: %v/%v vs %v/%v", b1, r1, b2, r2)
	}
}

func TestBrickSizeFiltersNonPow2(t *testing.T) {
	best, results, err := BrickSize(testConfig(), []int{3, 4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("non-pow2 candidates not filtered: %+v", results)
	}
	if best != 4 && best != 8 {
		t.Errorf("best brick %d", best)
	}
}

func TestDefaultCandidates(t *testing.T) {
	cfg := testConfig()
	if _, results, err := TileSize(cfg, nil); err != nil || len(results) == 0 {
		t.Errorf("default tile sweep: %v, %d results", err, len(results))
	}
	if _, results, err := BrickSize(cfg, nil); err != nil || len(results) == 0 {
		t.Errorf("default brick sweep: %v, %d results", err, len(results))
	}
}

func TestAllCandidatesRejectedNamesReasons(t *testing.T) {
	// When filtering leaves nothing to evaluate, the error must name
	// each rejected candidate and why — not a bare "no candidates".
	_, _, err := TileSize(testConfig(), []int{0, 999})
	if err == nil {
		t.Fatal("all-rejected tile sweep accepted")
	}
	for _, want := range []string{"0 (not positive)", "999 (exceeds volume edge 24)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("tile error %q missing %q", err, want)
		}
	}

	_, _, err = BrickSize(testConfig(), []int{-4, 3, 64})
	if err == nil {
		t.Fatal("all-rejected brick sweep accepted")
	}
	for _, want := range []string{"-4 (not positive)", "3 (not a power of two)", "64 (exceeds volume edge 24)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("brick error %q missing %q", err, want)
		}
	}
}

func TestEmptyCandidateListStillErrors(t *testing.T) {
	// An explicitly empty list has nothing to report reasons for; the
	// plain empty-sweep error remains.
	if _, _, err := TileSize(testConfig(), []int{}); err == nil {
		t.Error("empty tile candidate list accepted")
	}
	if _, _, err := BrickSize(testConfig(), []int{}); err == nil {
		t.Error("empty brick candidate list accepted")
	}
}
