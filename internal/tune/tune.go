// Package tune implements empirical parameter search ("auto-tuning") for
// the layouts' blocking factors, in the spirit of the auto-tuning work
// the paper cites as prior art for cache blocking (Whaley/ATLAS 2001,
// Datta 2008, §II-A): instead of modeling the memory hierarchy, measure
// candidate parameters and keep the best.
//
// Here the measurement is the deterministic cache simulator, so tuning
// results are reproducible and hardware-independent: TileSize finds the
// best Tiled layout tile edge and BrickSize the best ZTiled brick edge
// for a given kernel configuration and simulated platform.
package tune

import (
	"fmt"
	"math"
	"strings"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

// Result records one candidate's evaluation.
type Result struct {
	Param int
	Score float64 // lower is better
}

// Rejection records a candidate excluded before evaluation and why. When
// every candidate is rejected, the sweep error enumerates these instead
// of reporting a bare "no candidate parameters" — so a caller who passed
// {64} on a 32³ volume learns the candidate exceeded the volume edge,
// not merely that nothing was left.
type Rejection struct {
	Param  int
	Reason string
}

func (r Rejection) String() string { return fmt.Sprintf("%d (%s)", r.Param, r.Reason) }

// rejectedErr formats the all-candidates-rejected failure.
func rejectedErr(what string, rejected []Rejection) error {
	msgs := make([]string, len(rejected))
	for i, r := range rejected {
		msgs[i] = r.String()
	}
	return fmt.Errorf("tune: every %s candidate was rejected: %s", what, strings.Join(msgs, ", "))
}

// Sweep evaluates eval for every candidate and returns the parameter
// with the lowest score plus all results in input order. Ties break
// toward the smaller parameter — a smaller tile or brick edge wastes
// less padding and leaves more scheduling freedom, so when the
// simulator can't tell candidates apart the simpler one wins
// regardless of input order. It fails if params is empty or any
// evaluation fails.
func Sweep(params []int, eval func(p int) (float64, error)) (best int, results []Result, err error) {
	if len(params) == 0 {
		return 0, nil, fmt.Errorf("tune: no candidate parameters")
	}
	bestScore := math.Inf(1)
	for i, p := range params {
		score, err := eval(p)
		if err != nil {
			return 0, nil, fmt.Errorf("tune: candidate %d: %w", p, err)
		}
		results = append(results, Result{Param: p, Score: score})
		if i == 0 || score < bestScore || (score == bestScore && p < best) {
			bestScore, best = score, p
		}
	}
	return best, results, nil
}

// FilterConfig fixes the kernel configuration a layout parameter is
// tuned for.
type FilterConfig struct {
	Size     int // volume edge
	Seed     uint64
	Options  filter.Options // Workers also sets the simulated thread count
	Platform cache.Platform
}

// simFilter replays the bilateral filter over src's layout through the
// platform and returns the paper metric.
func simFilter(cfg FilterConfig, layout core.Layout) (uint64, error) {
	threads := cfg.Options.Workers
	if threads == 0 {
		threads = 1
	}
	src := volume.MRIPhantom(layout, cfg.Seed, 0.05)
	nx, ny, nz := layout.Dims()
	dstLayout := core.New(core.ArrayKind, nx, ny, nz) // dst layout held fixed across candidates
	dst := grid.New(dstLayout)
	sys := cache.NewSystem(cfg.Platform, threads)
	srcs := make([]grid.Reader, threads)
	dsts := make([]grid.Writer, threads)
	for w := 0; w < threads; w++ {
		srcs[w] = grid.NewTraced(src, 0, sys.Front(w))
		dsts[w] = grid.NewTraced(dst, 1<<40, sys.Front(w))
	}
	if err := filter.ApplyViews(srcs, dsts, cfg.Options); err != nil {
		return 0, err
	}
	return sys.Report().PaperMetric(), nil
}

// TileSize tunes the Tiled layout's tile edge over the candidates
// (default {2,4,8,16,32} when nil), scoring each by the simulated paper
// counter for the configured filter run. Unusable candidates (non-
// positive, or larger than the volume edge) are skipped; if that skips
// all of them, the error names each rejected candidate and the reason.
func TileSize(cfg FilterConfig, candidates []int) (best int, results []Result, err error) {
	if candidates == nil {
		candidates = []int{2, 4, 8, 16, 32}
	}
	var valid []int
	var rejected []Rejection
	for _, c := range candidates {
		switch {
		case c < 1:
			rejected = append(rejected, Rejection{c, "not positive"})
		case c > cfg.Size:
			rejected = append(rejected, Rejection{c, fmt.Sprintf("exceeds volume edge %d", cfg.Size)})
		default:
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 && len(rejected) > 0 {
		return 0, nil, rejectedErr("tile-edge", rejected)
	}
	return Sweep(valid, func(tile int) (float64, error) {
		m, err := simFilter(cfg, core.NewTiled(cfg.Size, cfg.Size, cfg.Size, tile))
		return float64(m), err
	})
}

// BrickSize tunes the ZTiled layout's brick edge over power-of-two
// candidates (default {4,8,16,32} when nil). Rejection reporting works
// like TileSize, with the additional power-of-two requirement.
func BrickSize(cfg FilterConfig, candidates []int) (best int, results []Result, err error) {
	if candidates == nil {
		candidates = []int{4, 8, 16, 32}
	}
	var valid []int
	var rejected []Rejection
	for _, c := range candidates {
		switch {
		case c < 1:
			rejected = append(rejected, Rejection{c, "not positive"})
		case c > cfg.Size:
			rejected = append(rejected, Rejection{c, fmt.Sprintf("exceeds volume edge %d", cfg.Size)})
		case c&(c-1) != 0:
			rejected = append(rejected, Rejection{c, "not a power of two"})
		default:
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 && len(rejected) > 0 {
		return 0, nil, rejectedErr("brick-edge", rejected)
	}
	return Sweep(valid, func(brick int) (float64, error) {
		m, err := simFilter(cfg, core.NewZTiled(cfg.Size, cfg.Size, cfg.Size, brick))
		return float64(m), err
	})
}
