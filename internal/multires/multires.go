// Package multires implements the hierarchical-access use case the
// paper inherits from Pascucci & Frank 2001 (its ref [7]): extracting
// subsampled levels of detail and arbitrary axis-aligned slices from a
// 3D volume, and measuring how much memory each layout must touch to
// serve the query.
//
// The Z-order layout's recursive structure means a 2^L-strided
// subsample, or a slice at fixed coordinate, touches a compact set of
// cache lines and pages; under array order the same queries stride
// across the whole buffer (a y-z slice touches every row). The
// QueryCost functions quantify that — the repo's stand-in for ref [7]'s
// out-of-core experiments, where "lines/pages touched" is a proxy for
// blocks fetched from disk.
package multires

import (
	"fmt"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

// Subsample extracts level-of-detail L: every 2^L-th sample per axis
// (the lattice points i,j,k ≡ 0 mod 2^L), into a new grid under the
// target layout with extents ceil(n / 2^L). Level 0 copies the volume.
//
// Subsampling is pure sample selection — no arithmetic touches the
// values — so the output is bit-identical to the source lattice at
// every element type (the golden-hash tests pin this per dtype).
func Subsample[T grid.Scalar](src *grid.Grid[T], level int, target func(nx, ny, nz int) core.Layout) (*grid.Grid[T], error) {
	if level < 0 {
		return nil, fmt.Errorf("multires: level %d must be >= 0", level)
	}
	nx, ny, nz := src.Dims()
	s := 1 << level
	ceil := func(n int) int { return (n + s - 1) / s }
	ox, oy, oz := ceil(nx), ceil(ny), ceil(nz)
	out := grid.NewOf[T](target(ox, oy, oz))
	for k := 0; k < oz; k++ {
		for j := 0; j < oy; j++ {
			for i := 0; i < ox; i++ {
				out.Set(i, j, k, src.At(i*s, j*s, k*s))
			}
		}
	}
	return out, nil
}

// SliceAxis identifies the fixed axis of an axis-aligned slice.
type SliceAxis int

// Slice orientations, named by the fixed coordinate: SliceX extracts
// the y-z plane at x = const (the worst case for array order), SliceZ
// the x-y plane at z = const (its best case).
const (
	SliceX SliceAxis = iota
	SliceY
	SliceZ
)

// String names the slice orientation.
func (a SliceAxis) String() string {
	switch a {
	case SliceX:
		return "yz@x"
	case SliceY:
		return "xz@y"
	case SliceZ:
		return "xy@z"
	}
	return fmt.Sprintf("SliceAxis(%d)", int(a))
}

// Slice extracts the axis-aligned plane at the fixed coordinate, with
// every 2^level-th sample per in-plane axis, as a dense row-major
// image of the source element type (width × height in the returned
// dims).
func Slice[T grid.Scalar](src *grid.Grid[T], axis SliceAxis, at, level int) (pix []T, w, h int, err error) {
	if level < 0 {
		return nil, 0, 0, fmt.Errorf("multires: level %d must be >= 0", level)
	}
	nx, ny, nz := src.Dims()
	s := 1 << level
	ceil := func(n int) int { return (n + s - 1) / s }
	switch axis {
	case SliceX:
		if at < 0 || at >= nx {
			return nil, 0, 0, fmt.Errorf("multires: slice x=%d out of [0,%d)", at, nx)
		}
		w, h = ceil(ny), ceil(nz)
		pix = make([]T, w*h)
		for z := 0; z < h; z++ {
			for y := 0; y < w; y++ {
				pix[z*w+y] = src.At(at, y*s, z*s)
			}
		}
	case SliceY:
		if at < 0 || at >= ny {
			return nil, 0, 0, fmt.Errorf("multires: slice y=%d out of [0,%d)", at, ny)
		}
		w, h = ceil(nx), ceil(nz)
		pix = make([]T, w*h)
		for z := 0; z < h; z++ {
			for x := 0; x < w; x++ {
				pix[z*w+x] = src.At(x*s, at, z*s)
			}
		}
	case SliceZ:
		if at < 0 || at >= nz {
			return nil, 0, 0, fmt.Errorf("multires: slice z=%d out of [0,%d)", at, nz)
		}
		w, h = ceil(nx), ceil(ny)
		pix = make([]T, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pix[y*w+x] = src.At(x*s, y*s, at)
			}
		}
	default:
		return nil, 0, 0, fmt.Errorf("multires: invalid slice axis %d", int(axis))
	}
	return pix, w, h, nil
}

// QueryCost reports how much of the memory system a query touches:
// distinct 64-byte cache lines and distinct 4KB pages, plus the total
// byte span between the lowest and highest address read. For an
// out-of-core store these are the blocks that must be fetched — the
// quantity ref [7] optimizes.
type QueryCost struct {
	Samples int
	Lines   int
	Pages   int
	Span    int // bytes between min and max accessed address, inclusive
}

const (
	elemBytes = 4
	lineBytes = 64
	pageBytes = 4096
)

// SliceCost measures the query cost of an axis-aligned slice (with
// subsampling level) under the given layout, without materializing the
// slice.
func SliceCost(l core.Layout, axis SliceAxis, at, level int) (QueryCost, error) {
	nx, ny, nz := l.Dims()
	s := 1 << level
	var fixedMax int
	switch axis {
	case SliceX:
		fixedMax = nx
	case SliceY:
		fixedMax = ny
	case SliceZ:
		fixedMax = nz
	default:
		return QueryCost{}, fmt.Errorf("multires: invalid slice axis %d", int(axis))
	}
	if level < 0 || at < 0 || at >= fixedMax {
		return QueryCost{}, fmt.Errorf("multires: slice %v at=%d level=%d out of range", axis, at, level)
	}
	lines := make(map[int]bool)
	pages := make(map[int]bool)
	minA, maxA := -1, -1
	cost := QueryCost{}
	visit := func(i, j, k int) {
		addr := l.Index(i, j, k) * elemBytes
		cost.Samples++
		lines[addr/lineBytes] = true
		pages[addr/pageBytes] = true
		if minA < 0 || addr < minA {
			minA = addr
		}
		if addr > maxA {
			maxA = addr
		}
	}
	switch axis {
	case SliceX:
		for k := 0; k < nz; k += s {
			for j := 0; j < ny; j += s {
				visit(at, j, k)
			}
		}
	case SliceY:
		for k := 0; k < nz; k += s {
			for i := 0; i < nx; i += s {
				visit(i, at, k)
			}
		}
	case SliceZ:
		for j := 0; j < ny; j += s {
			for i := 0; i < nx; i += s {
				visit(i, j, at)
			}
		}
	}
	cost.Lines = len(lines)
	cost.Pages = len(pages)
	if maxA >= 0 {
		cost.Span = maxA - minA + elemBytes
	}
	return cost, nil
}

// SubsampleCost measures the query cost of reading the full level-L
// subsample lattice under the given layout.
func SubsampleCost(l core.Layout, level int) (QueryCost, error) {
	if level < 0 {
		return QueryCost{}, fmt.Errorf("multires: level %d must be >= 0", level)
	}
	nx, ny, nz := l.Dims()
	s := 1 << level
	lines := make(map[int]bool)
	pages := make(map[int]bool)
	minA, maxA := -1, -1
	cost := QueryCost{}
	for k := 0; k < nz; k += s {
		for j := 0; j < ny; j += s {
			for i := 0; i < nx; i += s {
				addr := l.Index(i, j, k) * elemBytes
				cost.Samples++
				lines[addr/lineBytes] = true
				pages[addr/pageBytes] = true
				if minA < 0 || addr < minA {
					minA = addr
				}
				if addr > maxA {
					maxA = addr
				}
			}
		}
	}
	cost.Lines = len(lines)
	cost.Pages = len(pages)
	if maxA >= 0 {
		cost.Span = maxA - minA + elemBytes
	}
	return cost, nil
}
