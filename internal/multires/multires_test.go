package multires

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

func coordGrid(kind core.Kind, n int) *grid.Grid[float32] {
	return grid.FromFunc(core.New(kind, n, n, n), func(i, j, k int) float32 {
		return float32(i + j*1000 + k*1000000)
	})
}

func TestSubsampleLevel0IsCopy(t *testing.T) {
	src := coordGrid(core.ZKind, 8)
	out, err := Subsample(src, 0, func(nx, ny, nz int) core.Layout {
		return core.NewArrayOrder(nx, ny, nz)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(src, out) {
		t.Error("level 0 subsample is not the identity")
	}
}

func TestSubsampleStride(t *testing.T) {
	src := coordGrid(core.ArrayKind, 9) // odd extent: ceil(9/2)=5, ceil(9/4)=3
	for _, tc := range []struct{ level, dim int }{{1, 5}, {2, 3}, {3, 2}} {
		out, err := Subsample(src, tc.level, func(nx, ny, nz int) core.Layout {
			return core.NewZOrder(nx, ny, nz)
		})
		if err != nil {
			t.Fatal(err)
		}
		ox, oy, oz := out.Dims()
		if ox != tc.dim || oy != tc.dim || oz != tc.dim {
			t.Fatalf("level %d dims %dx%dx%d, want %d³", tc.level, ox, oy, oz, tc.dim)
		}
		s := 1 << tc.level
		for k := 0; k < oz; k++ {
			for j := 0; j < oy; j++ {
				for i := 0; i < ox; i++ {
					if out.At(i, j, k) != src.At(i*s, j*s, k*s) {
						t.Fatalf("level %d sample (%d,%d,%d) wrong", tc.level, i, j, k)
					}
				}
			}
		}
	}
	if _, err := Subsample(src, -1, nil); err == nil {
		t.Error("negative level accepted")
	}
}

func TestSliceContents(t *testing.T) {
	src := coordGrid(core.ZKind, 8)
	pix, w, h, err := Slice(src, SliceX, 3, 0)
	if err != nil || w != 8 || h != 8 {
		t.Fatalf("SliceX: %v %dx%d", err, w, h)
	}
	// pix[z*w+y] = At(3, y, z)
	if pix[2*8+5] != src.At(3, 5, 2) {
		t.Error("SliceX content wrong")
	}
	pix, w, h, err = Slice(src, SliceY, 1, 1)
	if err != nil || w != 4 || h != 4 {
		t.Fatalf("SliceY level 1: %v %dx%d", err, w, h)
	}
	if pix[3*4+2] != src.At(4, 1, 6) {
		t.Error("SliceY subsampled content wrong")
	}
	pix, w, h, err = Slice(src, SliceZ, 7, 0)
	if err != nil || w != 8 || h != 8 {
		t.Fatalf("SliceZ: %v", err)
	}
	if pix[6*8+1] != src.At(1, 6, 7) {
		t.Error("SliceZ content wrong")
	}
}

func TestSliceValidation(t *testing.T) {
	src := coordGrid(core.ArrayKind, 4)
	if _, _, _, err := Slice(src, SliceX, 4, 0); err == nil {
		t.Error("out-of-range slice accepted")
	}
	if _, _, _, err := Slice(src, SliceX, 0, -1); err == nil {
		t.Error("negative level accepted")
	}
	if _, _, _, err := Slice(src, SliceAxis(9), 0, 0); err == nil {
		t.Error("bad axis accepted")
	}
}

func TestSliceCostArrayOrderAnisotropy(t *testing.T) {
	// Array order: an xy slice (z fixed) is one contiguous slab — few
	// pages; a yz slice (x fixed) touches every row — one line per
	// sample and a span covering the whole buffer.
	const n = 64
	a := core.NewArrayOrder(n, n, n)
	xy, err := SliceCost(a, SliceZ, n/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	yz, err := SliceCost(a, SliceX, n/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if xy.Samples != n*n || yz.Samples != n*n {
		t.Fatalf("sample counts %d/%d", xy.Samples, yz.Samples)
	}
	// xy slice: n*n*4 bytes contiguous → n*n*4/64 lines.
	if xy.Lines != n*n*4/64 {
		t.Errorf("xy slice lines %d, want %d", xy.Lines, n*n*4/64)
	}
	// yz slice: every sample on its own line.
	if yz.Lines != n*n {
		t.Errorf("yz slice lines %d, want %d", yz.Lines, n*n)
	}
	if yz.Span <= xy.Span {
		t.Errorf("yz span %d should exceed xy span %d", yz.Span, xy.Span)
	}
}

func TestSliceCostZOrderBalanced(t *testing.T) {
	// Z order: slice cost is orientation-independent by symmetry, and
	// its worst orientation touches far fewer pages than array order's.
	const n = 64
	z := core.NewZOrder(n, n, n)
	a := core.NewArrayOrder(n, n, n)
	var zWorst, aWorst int
	for _, ax := range []SliceAxis{SliceX, SliceY, SliceZ} {
		zc, err := SliceCost(z, ax, n/2, 0)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := SliceCost(a, ax, n/2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if zc.Pages > zWorst {
			zWorst = zc.Pages
		}
		if ac.Pages > aWorst {
			aWorst = ac.Pages
		}
	}
	if zWorst >= aWorst {
		t.Errorf("zorder worst-slice pages %d not below array %d", zWorst, aWorst)
	}
}

func TestSubsampleCostHZContiguousPrefix(t *testing.T) {
	// An instructive negative result first: *plain* Z order does not
	// help coarse subsampling — its strided lattice lands one sample per
	// line, like (or worse than) array order. The hierarchical win of
	// ref [7] needs the HZ reordering, whose level-L lattice is a
	// contiguous prefix: minimal span, minimal pages.
	const n = 64
	a := core.NewArrayOrder(n, n, n)
	z := core.NewZOrder(n, n, n)
	hz := core.NewHZOrder(n, n, n)
	ac, err := SubsampleCost(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	zc, err := SubsampleCost(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := SubsampleCost(hz, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Samples != 16*16*16 || ac.Samples != hc.Samples || zc.Samples != hc.Samples {
		t.Fatalf("sample counts %d/%d/%d", ac.Samples, zc.Samples, hc.Samples)
	}
	// HZ: the 4096-sample lattice is the first 4096 elements = 16KB.
	if hc.Span != 4096*4 {
		t.Errorf("hz span %d bytes, want %d (contiguous prefix)", hc.Span, 4096*4)
	}
	if hc.Pages != 4096*4/4096 {
		t.Errorf("hz pages %d, want %d", hc.Pages, 4)
	}
	// Plain layouts stride across (nearly) the whole buffer.
	if ac.Span < n*n*n*4/2 || zc.Span < n*n*n*4/2 {
		t.Errorf("plain spans implausibly small: array %d, zorder %d", ac.Span, zc.Span)
	}
	if hc.Pages >= ac.Pages || hc.Pages >= zc.Pages {
		t.Errorf("hz pages %d not below array %d / zorder %d", hc.Pages, ac.Pages, zc.Pages)
	}
	if _, err := SubsampleCost(z, -1); err == nil {
		t.Error("negative level accepted")
	}
}

func TestSliceCostValidation(t *testing.T) {
	l := core.NewArrayOrder(4, 4, 4)
	if _, err := SliceCost(l, SliceY, 9, 0); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := SliceCost(l, SliceAxis(7), 0, 0); err == nil {
		t.Error("bad axis accepted")
	}
}

func TestSubsampleOnRealVolume(t *testing.T) {
	src := volume.MRIPhantom(core.NewZOrder(16, 16, 16), 1, 0)
	out, err := Subsample(src, 1, func(nx, ny, nz int) core.Layout {
		return core.NewZOrder(nx, ny, nz)
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := out.MinMax()
	if lo < 0 || hi > 1 || hi == 0 {
		t.Errorf("subsample range [%v,%v]", lo, hi)
	}
}

// hashGrid hashes a grid's sample buffer as little-endian bytes, the
// same canonical form the PR 4 kernel goldens use.
func hashGrid[T grid.Scalar](t *testing.T, g *grid.Grid[T]) string {
	t.Helper()
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, g.Data()); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// checkSubsampleDtype exercises the generic Subsample at one element
// type: every output sample must be bit-identical to its source lattice
// point (subsampling does no arithmetic), and the whole output buffer
// must match a pinned golden hash so a future refactor cannot quietly
// introduce conversion or rounding.
func checkSubsampleDtype[T grid.Scalar](t *testing.T, golden string) {
	src := volume.MRIPhantomOf[T](core.NewZOrder(16, 16, 16), 7, 0.05)
	out, err := Subsample(src, 1, func(nx, ny, nz int) core.Layout {
		return core.NewZOrder(nx, ny, nz)
	})
	if err != nil {
		t.Fatal(err)
	}
	ox, oy, oz := out.Dims()
	if ox != 8 || oy != 8 || oz != 8 {
		t.Fatalf("dims %dx%dx%d, want 8³", ox, oy, oz)
	}
	for k := 0; k < oz; k++ {
		for j := 0; j < oy; j++ {
			for i := 0; i < ox; i++ {
				if out.At(i, j, k) != src.At(i*2, j*2, k*2) {
					t.Fatalf("sample (%d,%d,%d) not bit-identical to source", i, j, k)
				}
			}
		}
	}
	if got := hashGrid(t, out); got != golden {
		t.Errorf("golden hash %s, want %s", got, golden)
	}

	// Slice must hand back the same bits too.
	pix, w, h, err := Slice(src, SliceY, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < h; z++ {
		for x := 0; x < w; x++ {
			if pix[z*w+x] != src.At(x*2, 5, z*2) {
				t.Fatalf("slice pixel (%d,%d) not bit-identical to source", x, z)
			}
		}
	}
}

func TestSubsampleGoldenPerDtype(t *testing.T) {
	t.Run("uint8", func(t *testing.T) {
		checkSubsampleDtype[uint8](t, "f2306e6dcd33d19a51f0dd3605b2607a54f875964d22a51309f34be9186fdbf6")
	})
	t.Run("uint16", func(t *testing.T) {
		checkSubsampleDtype[uint16](t, "9056526f215a63ecdab840d2783288f07a5608d9f0a93c97e5d14132f3ca6086")
	})
	t.Run("float32", func(t *testing.T) {
		checkSubsampleDtype[float32](t, "8a0ce5cf1d2e408c3aa40621ddb22c9ced56d32093ad70754e3cc634709abd28")
	})
	t.Run("float64", func(t *testing.T) {
		checkSubsampleDtype[float64](t, "34b5cd7358d641720d7b349249c06e0c796145ba7a481ae77b9e4f63ba9c3478")
	})
}

func TestSliceAxisString(t *testing.T) {
	if SliceX.String() != "yz@x" || SliceY.String() != "xz@y" || SliceZ.String() != "xy@z" {
		t.Error("axis names wrong")
	}
}
