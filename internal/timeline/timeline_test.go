package timeline

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanAndItemSpan(t *testing.T) {
	r := NewRecorder()
	base := r.Epoch()
	r.Span(0, "phase", base.Add(time.Millisecond), 2*time.Millisecond)
	r.ItemSpan(1, 7, "tile", base.Add(3*time.Millisecond), time.Millisecond)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Name != "phase" || evs[0].Item != -1 || evs[0].Start != time.Millisecond {
		t.Errorf("first event %+v", evs[0])
	}
	if evs[1].Worker != 1 || evs[1].Item != 7 {
		t.Errorf("second event %+v", evs[1])
	}
	if got := r.Workers(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("workers %v", got)
	}
}

func TestBegin(t *testing.T) {
	r := NewRecorder()
	done := r.Begin(3, "work")
	time.Sleep(time.Millisecond)
	done()
	evs := r.Events()
	if len(evs) != 1 || evs[0].Worker != 3 || evs[0].Dur < time.Millisecond/2 {
		t.Errorf("events %+v", evs)
	}
}

func TestObserverNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Observer("x") != nil {
		t.Error("nil recorder must give nil observer")
	}
}

func TestObserverRecords(t *testing.T) {
	r := NewRecorder()
	obs := r.Observer("pencil")
	obs(2, 41, time.Now(), time.Microsecond)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Name != "pencil" || evs[0].Item != 41 || evs[0].Worker != 2 {
		t.Errorf("events %+v", evs)
	}
}

func TestEventCap(t *testing.T) {
	r := NewRecorder()
	r.MaxEvents = 10
	now := time.Now()
	for i := 0; i < 25; i++ {
		r.Span(0, "e", now, time.Microsecond)
	}
	if r.Len() != 10 {
		t.Errorf("len %d, want 10", r.Len())
	}
	if r.Dropped() != 15 {
		t.Errorf("dropped %d, want 15", r.Dropped())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obs := r.Observer("item")
			for i := 0; i < 500; i++ {
				obs(w, i, time.Now(), time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 8*500 {
		t.Errorf("len %d, want %d", r.Len(), 8*500)
	}
	if len(r.Workers()) != 8 {
		t.Errorf("workers %v", r.Workers())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	base := r.Epoch()
	r.Span(0, "fig2", base, 10*time.Millisecond)
	r.ItemSpan(0, 0, "pencil", base.Add(time.Millisecond), 500*time.Microsecond)
	r.ItemSpan(1, 1, "pencil", base.Add(time.Millisecond), 750*time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", tr.DisplayTimeUnit)
	}
	// Every worker lane must carry at least one "X" event, and metadata
	// must name the process and both threads.
	perWorkerX := map[int]int{}
	var meta int
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			perWorkerX[e.TID]++
			if e.Dur <= 0 {
				t.Errorf("event %q has non-positive dur %v", e.Name, e.Dur)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if perWorkerX[0] != 2 || perWorkerX[1] != 1 {
		t.Errorf("per-worker X counts %v", perWorkerX)
	}
	if meta != 3 { // process_name + 2 thread_names
		t.Errorf("%d metadata events, want 3", meta)
	}
	// Item index must survive into args.
	found := false
	for _, e := range tr.TraceEvents {
		if e.Name == "pencil" && e.Args != nil {
			if v, ok := e.Args["item"]; ok && v.(float64) == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("item arg missing from pencil events")
	}
}

func TestMicros(t *testing.T) {
	if got := micros(1500 * time.Nanosecond); got != 1.5 {
		t.Errorf("micros = %v, want 1.5", got)
	}
}

func TestTraceJSONBuilder(t *testing.T) {
	tj := NewTraceJSON()
	tj.Process(2, "render abc")
	tj.Thread(2, 0, "request")
	tj.Complete(2, 0, "kernel", "stage", 5*time.Millisecond, 2*time.Millisecond, map[string]any{"k": "v"})
	if tj.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tj.Len())
	}
	var buf bytes.Buffer
	if err := tj.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("not valid trace JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" || len(ct.TraceEvents) != 3 {
		t.Fatalf("container %+v", ct)
	}
	x := ct.TraceEvents[2]
	if x.Ph != "X" || x.Name != "kernel" || x.PID != 2 || x.TID != 0 ||
		x.TS != 5000 || x.Dur != 2000 || x.Args["k"] != "v" {
		t.Errorf("complete event %+v", x)
	}
	meta := ct.TraceEvents[0]
	if meta.Ph != "M" || meta.Args["name"] != "render abc" {
		t.Errorf("process metadata %+v", meta)
	}
}
