// Package timeline records per-worker begin/end events during a run —
// pencil batches, render tiles, cache-sim replay chunks, harness phases —
// and exports them as Chrome trace_event JSON, the format chrome://tracing
// and Perfetto (ui.perfetto.dev) open directly. One recorder spans a whole
// run: every event carries a worker lane (the trace "tid") and a start
// offset from the recorder's epoch, so the exported file shows the actual
// interleaving of the paper's two scheduling strategies.
//
// Recording is bounded: past MaxEvents the recorder counts drops instead
// of growing without limit, so attaching a timeline to a full figure
// sweep cannot exhaust memory.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultMaxEvents caps a recorder's stored events (~48 MB worst case).
const DefaultMaxEvents = 1 << 20

// Event is one completed span on a worker lane. Start is the offset from
// the recorder's epoch. Item is the work-item index for scheduler events,
// or -1 for phases and other non-item spans.
type Event struct {
	Name   string
	Worker int
	Item   int
	Start  time.Duration
	Dur    time.Duration
}

// Recorder collects events. All methods are safe for concurrent use.
type Recorder struct {
	// MaxEvents bounds stored events; set before recording starts.
	MaxEvents int

	epoch   time.Time
	mu      sync.Mutex
	events  []Event
	dropped uint64
}

// NewRecorder returns a recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{MaxEvents: DefaultMaxEvents, epoch: time.Now()}
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Span records a completed span that began at start and lasted dur.
func (r *Recorder) Span(worker int, name string, start time.Time, dur time.Duration) {
	r.add(Event{Name: name, Worker: worker, Item: -1, Start: start.Sub(r.epoch), Dur: dur})
}

// ItemSpan records a completed work item (a pencil, tile, or replay
// chunk) with its scheduler index.
func (r *Recorder) ItemSpan(worker, item int, name string, start time.Time, dur time.Duration) {
	r.add(Event{Name: name, Worker: worker, Item: item, Start: start.Sub(r.epoch), Dur: dur})
}

// Begin starts a span on a worker lane; invoke the returned func to
// finish and record it.
func (r *Recorder) Begin(worker int, name string) func() {
	start := time.Now()
	return func() { r.Span(worker, name, start, time.Since(start)) }
}

// Observer returns a per-item callback with the signature of
// parallel.Observer, labelling every item span with name. A nil *Recorder
// returns nil, so call sites can pass an optional recorder through.
func (r *Recorder) Observer(name string) func(worker, item int, start time.Time, dur time.Duration) {
	if r == nil {
		return nil
	}
	return func(worker, item int, start time.Time, dur time.Duration) {
		r.ItemSpan(worker, item, name, start, dur)
	}
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	max := r.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(r.events) >= max {
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events the cap discarded.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the stored events sorted by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Workers returns the sorted set of worker lanes that recorded at least
// one event.
func (r *Recorder) Workers() []int {
	r.mu.Lock()
	seen := make(map[int]bool)
	for i := range r.events {
		seen[r.events[i].Worker] = true
	}
	r.mu.Unlock()
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// traceEvent is one Chrome trace_event object. Complete events (ph "X")
// carry microsecond ts/dur; metadata events (ph "M") name the process
// and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceJSON assembles a Chrome trace_event file event by event — the
// low-level builder behind Recorder.WriteChromeTrace, exported so other
// layers (internal/obs request span-trees) emit the same format the
// kernel timelines use and the two open in the same Perfetto session.
// Not safe for concurrent use; build, then Write.
type TraceJSON struct {
	events []traceEvent
}

// NewTraceJSON returns an empty trace file builder.
func NewTraceJSON() *TraceJSON { return &TraceJSON{} }

// Process records a process_name metadata event naming pid's row.
func (t *TraceJSON) Process(pid int, name string) {
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// Thread records a thread_name metadata event naming (pid, tid)'s lane.
func (t *TraceJSON) Thread(pid, tid int, name string) {
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Complete records a finished span ("X" event) on (pid, tid). Viewers
// nest complete events on the same lane by time containment, so a stage
// span that encloses another renders as its parent.
func (t *TraceJSON) Complete(pid, tid int, name, cat string, start, dur time.Duration, args map[string]any) {
	d := micros(dur)
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: micros(start), Dur: &d,
		PID: pid, TID: tid, Args: args,
	})
}

// Len returns the number of events recorded so far, metadata included.
func (t *TraceJSON) Len() int { return len(t.events) }

// Write emits the trace container JSON.
func (t *TraceJSON) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(chromeTrace{
		TraceEvents:     t.events,
		DisplayTimeUnit: "ms",
	})
}

const tracePID = 1

// WriteChromeTrace writes the recorded events as Chrome trace_event JSON
// ("X" complete events, one trace thread per worker lane). Open the file
// at chrome://tracing or ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	tj := NewTraceJSON()
	tj.Process(tracePID, "sfcmem")
	for _, wk := range r.Workers() {
		tj.Thread(tracePID, wk, fmt.Sprintf("worker %d", wk))
	}
	for _, e := range events {
		var args map[string]any
		if e.Item >= 0 {
			args = map[string]any{"item": e.Item}
		}
		tj.Complete(tracePID, e.Worker, e.Name, "sfcmem", e.Start, e.Dur, args)
	}
	return tj.Write(w)
}

// micros converts a duration to trace-format microseconds, keeping
// sub-microsecond resolution as a fraction.
func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
