package hilbert

import (
	"testing"
	"testing/quick"
)

func TestEncode2Order1(t *testing.T) {
	// The order-1 2D Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
	want := [][2]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for h, c := range want {
		if got := Encode2(c[0], c[1], 1); got != uint64(h) {
			t.Errorf("Encode2(%d,%d,1) = %d, want %d", c[0], c[1], got, h)
		}
		x, y := Decode2(uint64(h), 1)
		if x != c[0] || y != c[1] {
			t.Errorf("Decode2(%d,1) = (%d,%d), want %v", h, x, y, c)
		}
	}
}

func TestRoundtrip3(t *testing.T) {
	f := func(x, y, z uint32) bool {
		const bits = 10
		x &= 1<<bits - 1
		y &= 1<<bits - 1
		z &= 1<<bits - 1
		gx, gy, gz := Decode3(Encode3(x, y, z, bits), bits)
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundtrip2(t *testing.T) {
	f := func(x, y uint32) bool {
		const bits = 16
		x &= 1<<bits - 1
		y &= 1<<bits - 1
		gx, gy := Decode2(Encode2(x, y, bits), bits)
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexEncodeRoundtrip3(t *testing.T) {
	const bits = 4
	const n = 1 << bits
	for h := uint64(0); h < n*n*n; h++ {
		x, y, z := Decode3(h, bits)
		if x >= n || y >= n || z >= n {
			t.Fatalf("Decode3(%d) = (%d,%d,%d) out of range", h, x, y, z)
		}
		if back := Encode3(x, y, z, bits); back != h {
			t.Fatalf("Encode3(Decode3(%d)) = %d", h, back)
		}
	}
}

// The defining property of a Hilbert curve: consecutive indices map to
// coordinates that differ by exactly 1 in exactly one axis.
func TestAdjacency3(t *testing.T) {
	const bits = 3
	const n = 1 << bits
	px, py, pz := Decode3(0, bits)
	for h := uint64(1); h < n*n*n; h++ {
		x, y, z := Decode3(h, bits)
		d := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
		if d != 1 {
			t.Fatalf("step %d→%d moves (%d,%d,%d)→(%d,%d,%d): L1 distance %d, want 1",
				h-1, h, px, py, pz, x, y, z, d)
		}
		px, py, pz = x, y, z
	}
}

func TestAdjacency2(t *testing.T) {
	const bits = 5
	const n = 1 << bits
	px, py := Decode2(0, bits)
	for h := uint64(1); h < n*n; h++ {
		x, y := Decode2(h, bits)
		if absDiff(x, px)+absDiff(y, py) != 1 {
			t.Fatalf("step %d→%d moves (%d,%d)→(%d,%d): not adjacent", h-1, h, px, py, x, y)
		}
		px, py = x, y
	}
}

// Every cell is visited exactly once (bijectivity on the cube).
func TestBijective3(t *testing.T) {
	const bits = 3
	const n = 1 << bits
	seen := make(map[[3]uint32]bool, n*n*n)
	for h := uint64(0); h < n*n*n; h++ {
		x, y, z := Decode3(h, bits)
		c := [3]uint32{x, y, z}
		if seen[c] {
			t.Fatalf("cell %v visited twice", c)
		}
		seen[c] = true
	}
	if len(seen) != n*n*n {
		t.Fatalf("visited %d cells, want %d", len(seen), n*n*n)
	}
}

func TestBitsPanics(t *testing.T) {
	for _, bad := range []int{0, -1, 22} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode3 with bits=%d did not panic", bad)
				}
			}()
			Encode3(0, 0, 0, bad)
		}()
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func BenchmarkEncode3(b *testing.B) {
	var sink uint64
	for n := 0; n < b.N; n++ {
		sink += Encode3(uint32(n)&511, uint32(n>>9)&511, uint32(n>>18)&511, 9)
	}
	benchSink = sink
}

func BenchmarkDecode3(b *testing.B) {
	var sink uint32
	for n := 0; n < b.N; n++ {
		x, y, z := Decode3(uint64(n)&(1<<27-1), 9)
		sink += x + y + z
	}
	benchSink = uint64(sink)
}

var benchSink uint64
