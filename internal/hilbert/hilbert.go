// Package hilbert implements Hilbert space-filling-curve encoding and
// decoding in 2D and 3D using Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).
//
// The paper's related work (Reissmann et al. 2014) compares Z-order
// against Hilbert-order layouts and finds that Hilbert's better locality
// rarely pays for its higher index-computation cost. This package exists
// so the repo can reproduce that ablation: the Hilbert layout in
// internal/core uses these routines.
//
// Unlike Morton indexing, Hilbert indexing has cross-coordinate bit
// dependencies, so it cannot be reduced to three independent table
// lookups — exactly the cost asymmetry the ablation measures.
package hilbert

// axesToTranspose converts coordinates (in place) into the "transposed"
// Hilbert index representation: after the call, the Hilbert index bits
// are distributed across x, read MSB-first interleaving x[0]..x[n-1].
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)
	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	m := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// gather packs the transposed representation into a single index, taking
// bit (bits-1) of x[0], then of x[1], ..., down to bit 0 of x[n-1].
func gather(x []uint32, bits int) uint64 {
	var h uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < len(x); i++ {
			h = h<<1 | uint64(x[i]>>uint(b)&1)
		}
	}
	return h
}

// scatter is the inverse of gather.
func scatter(h uint64, x []uint32, bits int) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	pos := uint(n*bits - 1)
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			x[i] |= uint32(h>>pos&1) << uint(b)
			pos--
		}
	}
}

// Encode3 returns the Hilbert index of (x,y,z) on a curve of order
// bits (a 2^bits-sided cube). Each coordinate must be < 2^bits; bits
// must be in [1, 21] so the index fits in 63 bits.
func Encode3(x, y, z uint32, bits int) uint64 {
	checkBits(bits, 21)
	c := [3]uint32{x, y, z}
	axesToTranspose(c[:], bits)
	return gather(c[:], bits)
}

// Decode3 is the inverse of Encode3.
func Decode3(h uint64, bits int) (x, y, z uint32) {
	checkBits(bits, 21)
	var c [3]uint32
	scatter(h, c[:], bits)
	transposeToAxes(c[:], bits)
	return c[0], c[1], c[2]
}

// Encode2 returns the Hilbert index of (x,y) on a curve of order bits
// (a 2^bits-sided square). bits must be in [1, 31].
func Encode2(x, y uint32, bits int) uint64 {
	checkBits(bits, 31)
	c := [2]uint32{x, y}
	axesToTranspose(c[:], bits)
	return gather(c[:], bits)
}

// Decode2 is the inverse of Encode2.
func Decode2(h uint64, bits int) (x, y uint32) {
	checkBits(bits, 31)
	var c [2]uint32
	scatter(h, c[:], bits)
	transposeToAxes(c[:], bits)
	return c[0], c[1]
}

func checkBits(bits, max int) {
	if bits < 1 || bits > max {
		panic("hilbert: bits out of range")
	}
}
