package reuse

import (
	"testing"
	"testing/quick"

	"sfcmem/internal/cache"
)

func lineAddr(n uint64) uint64 { return n * 64 }

func TestColdScanAllMisses(t *testing.T) {
	a := NewAnalyzer(0)
	for i := uint64(0); i < 1000; i++ {
		a.Access(lineAddr(i), false)
	}
	h := a.Histogram()
	if h.Cold != 1000 || h.Total != 1000 {
		t.Errorf("cold=%d total=%d", h.Cold, h.Total)
	}
	if mr := h.MissRatio(1 << 20); mr != 1 {
		t.Errorf("cold scan miss ratio %v, want 1", mr)
	}
	if a.Lines() != 1000 {
		t.Errorf("lines %d", a.Lines())
	}
}

func TestRepeatedWorkingSet(t *testing.T) {
	const ws = 64
	a := NewAnalyzer(0)
	for pass := 0; pass < 4; pass++ {
		for i := uint64(0); i < ws; i++ {
			a.Access(lineAddr(i), false)
		}
	}
	h := a.Histogram()
	// Second-pass+ accesses all have distance ws-1 → hit iff C >= ws.
	if mr := h.MissRatio(ws); mr != float64(ws)/float64(4*ws) {
		t.Errorf("miss ratio at C=ws: %v, want cold-only %v", mr, 0.25)
	}
	if mr := h.MissRatio(ws / 4); mr != 1 {
		t.Errorf("miss ratio at C=ws/4: %v, want 1 (thrash)", mr)
	}
}

func TestImmediateReuseDistanceZero(t *testing.T) {
	a := NewAnalyzer(0)
	a.Access(0, false)
	a.Access(0, false)
	a.Access(0, true)
	h := a.Histogram()
	if h.Buckets[0] != 2 || h.Cold != 1 {
		t.Errorf("buckets[0]=%d cold=%d", h.Buckets[0], h.Cold)
	}
	if mr := h.MissRatio(1); mr != float64(1)/3 {
		t.Errorf("single-line cache miss ratio %v", mr)
	}
}

func TestSubLineAccessesShareLine(t *testing.T) {
	a := NewAnalyzer(0)
	a.Access(0, false)
	a.Access(4, false)  // same 64B line
	a.Access(63, false) // still same line
	h := a.Histogram()
	if h.Cold != 1 || h.Buckets[0] != 2 {
		t.Errorf("sub-line accesses not coalesced: %+v", h)
	}
}

func TestGrowPreservesState(t *testing.T) {
	a := NewAnalyzer(16) // tiny: forces several grows
	const n = 100000
	for i := uint64(0); i < n; i++ {
		a.Access(lineAddr(i%512), false)
	}
	h := a.Histogram()
	if h.Total != n {
		t.Errorf("total %d", h.Total)
	}
	if h.Cold != 512 {
		t.Errorf("cold %d, want 512", h.Cold)
	}
	// All non-cold distances are 511 < 512.
	if mr := h.MissRatio(512); mr != float64(512)/n {
		t.Errorf("miss ratio %v", mr)
	}
}

func TestMergeHistograms(t *testing.T) {
	a, b := NewAnalyzer(0), NewAnalyzer(0)
	for i := uint64(0); i < 10; i++ {
		a.Access(lineAddr(i), false)
		b.Access(lineAddr(i), false)
		b.Access(lineAddr(i), false)
	}
	ha := a.Histogram()
	ha.Merge(b.Histogram())
	if ha.Total != 30 || ha.Cold != 20 || ha.Buckets[0] != 10 {
		t.Errorf("merged %+v", ha)
	}
}

func TestMissRatioEdgeCases(t *testing.T) {
	var h Histogram
	if h.MissRatio(64) != 0 {
		t.Error("empty histogram should predict 0")
	}
	h.Total = 10
	h.Cold = 10
	if h.MissRatio(0) != 1 {
		t.Error("zero-size cache should miss always")
	}
}

func TestCurveMonotone(t *testing.T) {
	a := NewAnalyzer(0)
	// A mix of working sets.
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 1000; i++ {
			a.Access(lineAddr(i%97), false)
			a.Access(lineAddr(i%509), false)
		}
	}
	_, ratios := a.Histogram().Curve(2, 16)
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[i-1]+1e-12 {
			t.Fatalf("miss-ratio curve not monotone: %v", ratios)
		}
	}
}

// Cross-validation against the cache simulator: for a fully-associative
// LRU cache, predicted misses from the reuse profile must match the
// simulated misses exactly (Mattson's inclusion property).
func TestMatchesFullyAssociativeSimulation(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		const lines = 64 // fully-assoc cache of 64 lines
		p := cache.Platform{
			Name:    "fa",
			Private: []cache.LevelConfig{{Name: "L1", SizeBytes: lines * 64, Ways: lines}},
		}
		sys := cache.NewSystem(p, 1)
		fr := sys.Front(0)
		an := NewAnalyzer(0)
		for i, s := range seeds {
			// A structured-ish stream: mix of strides and revisits.
			addr := lineAddr(uint64(s) % 300)
			if i%3 == 0 {
				addr = lineAddr(uint64(i) % 50)
			}
			fr.Access(addr, false)
			an.Access(addr, false)
		}
		simMisses := sys.Report().PrivateTotal[0].Misses
		h := an.Histogram()
		predicted := h.MissRatio(lines) * float64(h.Total)
		return uint64(predicted+0.5) == simMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int32]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d)=%d, want %d", d, got, want)
		}
	}
}

func TestHistogramString(t *testing.T) {
	a := NewAnalyzer(0)
	for i := uint64(0); i < 100; i++ {
		a.Access(lineAddr(i%10), false)
	}
	s := a.Histogram().String()
	if len(s) == 0 || s[0] != 'r' {
		t.Errorf("unexpected render %q", s)
	}
}

func BenchmarkAnalyzerAccess(b *testing.B) {
	a := NewAnalyzer(b.N)
	for i := 0; i < b.N; i++ {
		a.Access(lineAddr(uint64(i)%4096), false)
	}
}

func TestCurveBounds(t *testing.T) {
	a := NewAnalyzer(0)
	for i := uint64(0); i < 200; i++ {
		a.Access(lineAddr(i%50), false)
	}
	sizes, ratios := a.Histogram().Curve(0, 8)
	if len(sizes) != 9 || sizes[0] != 1 || sizes[8] != 256 {
		t.Fatalf("sizes %v", sizes)
	}
	for i, r := range ratios {
		if r < 0 || r > 1 {
			t.Errorf("ratio[%d]=%v out of [0,1]", i, r)
		}
	}
	// Big-cache limit: only cold misses remain.
	if got, want := ratios[8], 50.0/200.0; got != want {
		t.Errorf("large-cache ratio %v, want %v", got, want)
	}
}
