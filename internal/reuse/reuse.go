// Package reuse computes LRU reuse-distance (stack-distance) profiles
// from memory-access traces.
//
// The reuse distance of an access is the number of *distinct* cache
// lines touched since the previous access to the same line. Under a
// fully-associative LRU cache of C lines, an access hits exactly when
// its reuse distance is < C (Mattson et al. 1970) — so a single profile
// predicts the miss ratio of every cache size at once, giving an
// architecture-independent view of the locality the paper's Z-order
// layout buys. cmd/reusedist plots these curves for each layout; they
// complement the set-associative simulation in internal/cache, which
// additionally captures conflict misses.
//
// The analyzer implements grid.Sink, so it attaches to kernels exactly
// like the cache simulator's fronts. The classic algorithm is used:
// distance = the count of lines whose last access falls between the
// previous and current accesses to this line, maintained in a Fenwick
// tree indexed by access time — O(log n) per access.
package reuse

import (
	"fmt"
	"math"
	"strings"
)

// lineShift matches the cache simulator's 64-byte lines.
const lineShift = 6

// MaxBuckets bounds the histogram: bucket 0 holds distance 0 and bucket
// b >= 1 holds distances in [2^(b-1), 2^b), so every power-of-two cache
// size falls on a bucket boundary. 48 buckets cover any realizable
// distance.
const MaxBuckets = 48

// Analyzer accumulates a reuse-distance histogram from an access stream.
// It is not safe for concurrent use; give each simulated thread its own
// Analyzer and Merge the histograms.
type Analyzer struct {
	last map[uint64]int32 // line -> time of last access (1-based)
	bit  []int32          // Fenwick tree over access times, 1 at each line's last access
	time int32
	hist Histogram
}

// NewAnalyzer returns an empty analyzer. capacityHint sizes internal
// structures for an expected trace length (0 is fine).
func NewAnalyzer(capacityHint int) *Analyzer {
	if capacityHint < 1024 {
		capacityHint = 1024
	}
	return &Analyzer{
		last: make(map[uint64]int32, capacityHint/8),
		bit:  make([]int32, nextPow2(capacityHint)+1),
	}
}

// Access records one access at byte address addr (the write flag is
// accepted for grid.Sink compatibility; reads and writes age the stack
// identically under LRU).
func (a *Analyzer) Access(addr uint64, _ bool) {
	line := addr >> lineShift
	a.time++
	t := a.time
	if int(t) >= len(a.bit) {
		a.grow()
	}
	a.hist.Total++
	if prev, seen := a.last[line]; seen {
		// Distinct lines touched strictly between prev and t: each line
		// contributes a single 1 at its last-access time, so the prefix
		// sums give the count directly. Subtract 1 for this line's own
		// marker at prev.
		dist := a.prefix(t-1) - a.prefix(prev-1) - 1
		a.hist.Buckets[bucketOf(dist)]++
		a.add(prev, -1)
	} else {
		a.hist.Cold++
	}
	a.add(t, 1)
	a.last[line] = t
}

// Histogram returns the profile accumulated so far. The caller may keep
// feeding accesses afterwards.
func (a *Analyzer) Histogram() Histogram { return a.hist }

// Lines returns the number of distinct lines seen.
func (a *Analyzer) Lines() int { return len(a.last) }

// Fenwick tree primitives (1-based).
func (a *Analyzer) add(i, delta int32) {
	for ; int(i) < len(a.bit); i += i & -i {
		a.bit[i] += delta
	}
}

func (a *Analyzer) prefix(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += a.bit[i]
	}
	return s
}

// grow doubles the Fenwick tree, re-inserting each line's last-access
// marker (the only live state).
func (a *Analyzer) grow() {
	a.bit = make([]int32, 2*(len(a.bit)-1)+1)
	for _, t := range a.last {
		a.add(t, 1)
	}
}

func bucketOf(dist int32) int {
	if dist <= 0 {
		return 0
	}
	b := 1
	for d := dist; d > 1; d >>= 1 {
		b++
	}
	if b >= MaxBuckets {
		b = MaxBuckets - 1
	}
	return b
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Histogram is a log2-bucketed reuse-distance profile. Bucket 0 counts
// distance-0 accesses; bucket b >= 1 counts distances in [2^(b-1), 2^b).
type Histogram struct {
	Buckets [MaxBuckets]uint64
	Cold    uint64 // first-ever accesses (infinite distance)
	Total   uint64
}

// Merge accumulates another histogram (e.g. from another thread's
// analyzer) into h.
func (h *Histogram) Merge(other Histogram) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Cold += other.Cold
	h.Total += other.Total
}

// MissRatio predicts the miss ratio of a fully-associative LRU cache
// holding cacheLines lines: the fraction of accesses whose reuse
// distance is >= cacheLines, plus cold misses. Exact when cacheLines is
// a power of two (bucket boundaries align); otherwise it interpolates
// within the straddled bucket.
func (h Histogram) MissRatio(cacheLines int) float64 {
	if h.Total == 0 {
		return 0
	}
	if cacheLines <= 0 {
		return 1
	}
	misses := float64(h.Cold)
	for b := 0; b < MaxBuckets; b++ {
		lo, hi := bucketBounds(b)
		switch {
		case lo >= cacheLines:
			misses += float64(h.Buckets[b])
		case hi > cacheLines:
			// Straddling bucket: assume uniform within.
			frac := float64(hi-cacheLines) / float64(hi-lo)
			misses += frac * float64(h.Buckets[b])
		}
	}
	return misses / float64(h.Total)
}

// bucketBounds returns bucket b's distance range [lo, hi).
func bucketBounds(b int) (lo, hi int) {
	if b == 0 {
		return 0, 1
	}
	return 1 << (b - 1), 1 << b
}

// Curve evaluates MissRatio at power-of-two cache sizes from 2^from to
// 2^to lines inclusive, returning (sizes, ratios).
func (h Histogram) Curve(from, to int) (sizes []int, ratios []float64) {
	for b := from; b <= to; b++ {
		sizes = append(sizes, 1<<b)
		ratios = append(ratios, h.MissRatio(1<<b))
	}
	return sizes, ratios
}

// String renders the profile as a table of cumulative miss ratios.
func (h Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reuse-distance profile: %d accesses, %d cold\n", h.Total, h.Cold)
	fmt.Fprintf(&sb, "%12s %12s\n", "cache lines", "miss ratio")
	for b := 4; b <= 24; b += 2 {
		mr := h.MissRatio(1 << b)
		fmt.Fprintf(&sb, "%12d %12.4f\n", 1<<b, mr)
		if mr <= 1e-9 && float64(h.Cold)/math.Max(float64(h.Total), 1) <= 1e-9 {
			break
		}
	}
	return sb.String()
}
