package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestCounterPerWorker(t *testing.T) {
	c := NewCounter(4)
	c.Add(0, 5)
	c.Inc(1)
	c.Inc(1)
	c.Add(3, 10)
	if got := c.Total(); got != 17 {
		t.Errorf("total %d, want 17", got)
	}
	want := []uint64{5, 2, 0, 10}
	for w, v := range c.PerWorker() {
		if v != want[w] {
			t.Errorf("worker %d: %d, want %d", w, v, want[w])
		}
	}
	if c.Value(3) != 10 || c.Workers() != 4 {
		t.Errorf("Value/Workers wrong: %d %d", c.Value(3), c.Workers())
	}
}

func TestCounterSlotsArePadded(t *testing.T) {
	if s := unsafe.Sizeof(slot{}); s != cacheLine {
		t.Errorf("slot size %d, want %d", s, cacheLine)
	}
}

func TestCounterConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	c := NewCounter(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Total(); got != workers*per {
		t.Errorf("total %d, want %d", got, workers*per)
	}
}

func TestCounterPanicsOnZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 workers")
		}
	}()
	NewCounter(0)
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram not zero")
	}
	// 1000 observations at ~1µs, 10 at ~1ms: p50 within the 1µs
	// bucket's 2× bounds, p99+ near 1ms.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 1010 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 %v not around 1µs", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 512*time.Microsecond || p999 > 2*time.Millisecond {
		t.Errorf("p99.9 %v not around 1ms", p999)
	}
	if h.Quantile(1) < h.Quantile(0) {
		t.Error("quantiles not monotone at extremes")
	}
	if h.Mean() <= 0 || h.Sum() <= 0 {
		t.Error("mean/sum not positive")
	}
	// Out-of-range q values clamp rather than panic.
	h.Observe(-time.Second) // clamps to 0
	_ = h.Quantile(-1)
	_ = h.Quantile(2)
}

func TestHistogramSnapshotJSON(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	if s.Type != "histogram" || s.Count != 2 {
		t.Errorf("snapshot %+v", s)
	}
	if math.Abs(s.Seconds-0.008) > 1e-9 {
		t.Errorf("sum %v, want 0.008", s.Seconds)
	}
	if len(s.Buckets) == 0 {
		t.Error("no buckets exported")
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	done := pt.Start("setup")
	time.Sleep(time.Millisecond)
	done()
	pt.Add("setup", 2*time.Millisecond)
	pt.Add("run", 5*time.Millisecond)
	snap := pt.Snapshot().(PhaseTimerSnapshot)
	if len(snap.Phases) != 2 {
		t.Fatalf("%d phases", len(snap.Phases))
	}
	if snap.Phases[0].Name != "setup" || snap.Phases[0].Count != 2 {
		t.Errorf("first phase %+v", snap.Phases[0])
	}
	if snap.Phases[0].Seconds < 0.003 {
		t.Errorf("setup seconds %v too small", snap.Phases[0].Seconds)
	}
	if snap.Phases[1].Name != "run" {
		t.Errorf("phase order %+v", snap.Phases)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("items", 2)
	c.Add(0, 3)
	c.Add(1, 4)
	r.Histogram("lat").Observe(time.Millisecond)
	r.PhaseTimer("phases").Add("fig1", time.Second)
	r.Register("gauge", GaugeFunc(func() any { return 42 }))

	// Re-acquiring by name returns the same instances.
	if r.Counter("items", 2) != c {
		t.Error("Counter did not return existing instance")
	}
	if r.Histogram("lat") == nil || r.PhaseTimer("phases") == nil {
		t.Error("re-acquire failed")
	}

	names := r.Names()
	if len(names) != 4 || names[0] != "gauge" {
		t.Errorf("names %v", names)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, buf.String())
	}
	var cs CounterSnapshot
	if err := json.Unmarshal(decoded["items"], &cs); err != nil {
		t.Fatal(err)
	}
	if cs.Total != 7 || len(cs.PerWorker) != 2 {
		t.Errorf("counter snapshot %+v", cs)
	}
}

func TestRegistryPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", 1).Inc(0)
	r.Publish("metrics_test_registry")
	// Publishing again (same or another registry) must not panic.
	r.Publish("metrics_test_registry")
	NewRegistry().Publish("metrics_test_registry")
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty name")
		}
	}()
	NewRegistry().Register("", GaugeFunc(func() any { return nil }))
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests", 2).Add(1, 7)
	r.Histogram("latency").Observe(3 * time.Millisecond)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("body is not JSON: %v", err)
	}
	for _, key := range []string{"requests", "latency"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
}

// TestRegistryServeHTTPHeadersPinned pins the exact response headers: a
// snapshot endpoint must declare its JSON type and forbid intermediary
// caching, or a scraper behind a proxy reads frozen counters. (The CI
// smoke job greps raw bytes and would mask a header regression.)
func TestRegistryServeHTTPHeadersPinned(t *testing.T) {
	r := NewRegistry()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	want := map[string]string{
		"Content-Type":  "application/json",
		"Cache-Control": "no-store",
	}
	for h, v := range want {
		if got := rec.Header().Get(h); got != v {
			t.Errorf("%s = %q, want %q", h, got, v)
		}
	}
}
