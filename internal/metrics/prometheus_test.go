package metrics

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
			}
		}
	})
	t.Run("single-bucket", func(t *testing.T) {
		h := NewHistogram()
		// Three observations in one bucket: len64(100)=7 → (64,128] ns.
		for i := 0; i < 3; i++ {
			h.Observe(100 * time.Nanosecond)
		}
		lo, hi := bucketBounds(7)
		for _, q := range []float64{0, 0.5, 1} {
			got := h.Quantile(q)
			if got < time.Duration(lo) || got > time.Duration(hi) {
				t.Errorf("Quantile(%v) = %v, want within (%v, %v]", q, got, time.Duration(lo), time.Duration(hi))
			}
		}
		// q=0 and q=1 are clamped variants of rank 1 and rank n: the
		// interpolation must keep them ordered.
		if h.Quantile(0) > h.Quantile(1) {
			t.Errorf("Quantile(0)=%v > Quantile(1)=%v", h.Quantile(0), h.Quantile(1))
		}
	})
	t.Run("clamping", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(time.Microsecond)
		h.Observe(time.Millisecond)
		if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
			t.Errorf("Quantile(-0.5)=%v, want Quantile(0)=%v", got, want)
		}
		if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
			t.Errorf("Quantile(1.5)=%v, want Quantile(1)=%v", got, want)
		}
	})
	t.Run("zero-duration", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(0)
		if got := h.Quantile(1); got > time.Nanosecond {
			t.Errorf("Quantile(1) after Observe(0) = %v, want <= 1ns", got)
		}
	})
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE
// lines, counter/gauge/info rendering, and the histogram's cumulative
// le buckets in seconds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Namespace = "t"
	c := r.Counter("render.requests", 1)
	c.Add(0, 7)
	r.Register("admission.queued", GaugeFunc(func() any { return 3 }))
	r.Register("build.info", Info{"go_version": "go1.24", "vcs_revision": "abc"})
	h := r.Histogram("render.latency")
	h.Observe(100 * time.Nanosecond) // bucket 7: le 128ns
	h.Observe(100 * time.Nanosecond)
	h.Observe(time.Microsecond) // bucket 10: le 1024ns

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_admission_queued Registry gauge admission.queued.
# TYPE t_admission_queued gauge
t_admission_queued 3
# HELP t_build_info Constant facts from registry entry build.info.
# TYPE t_build_info gauge
t_build_info{go_version="go1.24",vcs_revision="abc"} 1
# HELP t_render_latency_seconds Registry histogram render.latency in seconds.
# TYPE t_render_latency_seconds histogram
t_render_latency_seconds_bucket{le="1e-09"} 0
t_render_latency_seconds_bucket{le="2e-09"} 0
t_render_latency_seconds_bucket{le="4e-09"} 0
t_render_latency_seconds_bucket{le="8e-09"} 0
t_render_latency_seconds_bucket{le="1.6e-08"} 0
t_render_latency_seconds_bucket{le="3.2e-08"} 0
t_render_latency_seconds_bucket{le="6.4e-08"} 0
t_render_latency_seconds_bucket{le="1.28e-07"} 2
t_render_latency_seconds_bucket{le="2.56e-07"} 2
t_render_latency_seconds_bucket{le="5.12e-07"} 2
t_render_latency_seconds_bucket{le="1.024e-06"} 3
t_render_latency_seconds_bucket{le="+Inf"} 3
t_render_latency_seconds_sum 1.2e-06
t_render_latency_seconds_count 3
# HELP t_render_requests_total Total of registry counter render.requests.
# TYPE t_render_requests_total counter
t_render_requests_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusBucketMonotonicity checks the structural invariants a
// scraper depends on: le bounds strictly ascend and cumulative counts
// never decrease, whatever the histogram contents.
func TestPrometheusBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, d := range []time.Duration{0, 1, 50, 900, time.Microsecond,
		37 * time.Microsecond, time.Millisecond, 450 * time.Millisecond, 3 * time.Second} {
		h.Observe(d)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lastLE := -1.0
	lastCum := int64(-1)
	buckets := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket{le=\"") {
			continue
		}
		buckets++
		rest := strings.TrimPrefix(line, "lat_seconds_bucket{le=\"")
		leStr, countStr, ok := strings.Cut(rest, "\"} ")
		if !ok {
			t.Fatalf("unparsable bucket line %q", line)
		}
		cum, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		if cum < lastCum {
			t.Errorf("cumulative count decreased: %d after %d (%q)", cum, lastCum, line)
		}
		lastCum = cum
		if leStr == "+Inf" {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("le bound in %q: %v", line, err)
		}
		if le <= lastLE {
			t.Errorf("le bounds not ascending: %g after %g", le, lastLE)
		}
		lastLE = le
	}
	if buckets == 0 {
		t.Fatal("no bucket lines found")
	}
	if lastCum != 9 {
		t.Errorf("+Inf cumulative count %d, want 9", lastCum)
	}
}

func TestPrometheusPhaseTimer(t *testing.T) {
	r := NewRegistry()
	pt := r.PhaseTimer("phases")
	pt.Add("setup", 2*time.Second)
	pt.Add("sweep", time.Second)
	pt.Add("sweep", time.Second)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`phases_seconds_total{phase="setup"} 2`,
		`phases_seconds_total{phase="sweep"} 2`,
		`phases_runs_total{phase="sweep"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
