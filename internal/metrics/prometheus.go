package metrics

// Prometheus text-format exposition (version 0.0.4) for the registry.
// The JSON snapshot stays the default — it carries structure (per-worker
// counter shards, quantile estimates) Prometheus names cannot — but any
// standard scraper can now consume the same registry:
//
//	GET /metrics?format=prometheus
//
// Mapping: counters become <name>_total, histograms become
// <name>_seconds with cumulative `le` buckets derived from the log2
// nanosecond buckets, phase timers become a pair of labelled counters,
// Info metrics become the conventional constant-1 gauge with label
// pairs, and any other metric whose snapshot is a plain number becomes
// a gauge. Metric names are mangled to the Prometheus charset and
// prefixed with the registry's Namespace.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Info is a constant set of key/value build- or config-style facts. It
// snapshots to a JSON object and exposes to Prometheus as the
// conventional `<name>_info{k="v",...} 1` gauge.
type Info map[string]string

// Snapshot returns the map itself (it is immutable by convention).
func (i Info) Snapshot() any { return map[string]string(i) }

// promName mangles a registry key into the Prometheus metric-name
// charset [a-zA-Z0-9_], prefixing the namespace when set.
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promFloat renders a float the way Prometheus clients conventionally
// do: shortest representation that round-trips.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writeHeader emits the HELP and TYPE lines for one metric family.
func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// writePromCounter emits a counter family.
func writePromCounter(w io.Writer, name, key string, c *Counter) error {
	if err := writeHeader(w, name, "Total of registry counter "+key+".", "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", name, c.Total())
	return err
}

// writePromHistogram emits a histogram family in seconds. The log2
// nanosecond buckets become cumulative `le` bounds; every bucket up to
// the highest non-empty one is emitted so the bound set only grows as
// observations spread, and counts are cumulative and monotone by
// construction.
func writePromHistogram(w io.Writer, name, key string, h *Histogram) error {
	if err := writeHeader(w, name, "Registry histogram "+key+" in seconds.", "histogram"); err != nil {
		return err
	}
	top := 0
	for b := 0; b < histBuckets; b++ {
		if h.buckets[b].Load() > 0 {
			top = b
		}
	}
	var cum uint64
	for b := 0; b <= top; b++ {
		cum += h.buckets[b].Load()
		_, hi := bucketBounds(b)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(hi/1e9), cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, count)
	return err
}

// writePromPhases emits a phase timer as two labelled counter families.
func writePromPhases(w io.Writer, name, key string, t *PhaseTimer) error {
	snap := t.Snapshot().(PhaseTimerSnapshot)
	if err := writeHeader(w, name+"_seconds_total", "Cumulative time in phases of "+key+".", "counter"); err != nil {
		return err
	}
	for _, p := range snap.Phases {
		if _, err := fmt.Fprintf(w, "%s_seconds_total{phase=\"%s\"} %s\n", name, promLabel(p.Name), promFloat(p.Seconds)); err != nil {
			return err
		}
	}
	if err := writeHeader(w, name+"_runs_total", "Completed runs of phases of "+key+".", "counter"); err != nil {
		return err
	}
	for _, p := range snap.Phases {
		if _, err := fmt.Fprintf(w, "%s_runs_total{phase=\"%s\"} %d\n", name, promLabel(p.Name), p.Count); err != nil {
			return err
		}
	}
	return nil
}

// writePromInfo emits the constant-1 info gauge with sorted label pairs.
func writePromInfo(w io.Writer, name, key string, info map[string]string) error {
	if err := writeHeader(w, name, "Constant facts from registry entry "+key+".", "gauge"); err != nil {
		return err
	}
	keys := make([]string, 0, len(info))
	for k := range info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, fmt.Sprintf("%s=\"%s\"", promName("", k), promLabel(info[k])))
	}
	_, err := fmt.Fprintf(w, "%s{%s} 1\n", name, strings.Join(pairs, ","))
	return err
}

// promNumber coerces a gauge snapshot to float64 when it is any plain
// numeric type.
func promNumber(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint32:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	}
	return 0, false
}

// WritePrometheus writes every exposable metric in text exposition
// format, in sorted name order. Metrics whose snapshot has no
// Prometheus mapping (arbitrary JSON shapes) are skipped — the JSON
// endpoint remains the lossless view.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	namespace := r.Namespace
	names := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		names = append(names, k)
	}
	sort.Strings(names)
	ms := make([]Metric, len(names))
	for i, k := range names {
		ms[i] = r.byKey[k]
	}
	r.mu.Unlock()

	for i, key := range names {
		name := promName(namespace, key)
		var err error
		switch m := ms[i].(type) {
		case *Counter:
			err = writePromCounter(w, name+"_total", key, m)
		case *Histogram:
			err = writePromHistogram(w, name+"_seconds", key, m)
		case *PhaseTimer:
			err = writePromPhases(w, name, key, m)
		case Info:
			err = writePromInfo(w, name, key, map[string]string(m))
		default:
			if v, ok := promNumber(m.Snapshot()); ok {
				if err = writeHeader(w, name, "Registry gauge "+key+".", "gauge"); err == nil {
					_, err = fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
