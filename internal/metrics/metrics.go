// Package metrics is the repo's runtime instrumentation layer: lock-free
// per-worker counters (cache-line padded so concurrent workers never
// false-share), log-scaled latency histograms with quantile export,
// cumulative phase timers, and a Registry that snapshots everything to a
// stable JSON shape.
//
// The package is deliberately tiny and allocation-free on the hot path —
// the kernels it instruments are the very memory-bound loops whose
// behaviour the experiments measure, so the instruments must not perturb
// what they observe. Counter.Add is a single padded atomic add;
// Histogram.Observe is a bit-length bucket index plus two atomic adds.
//
// A Registry can be published to expvar (Publish), which makes every
// snapshot visible over HTTP when cmd/sfcbench serves its -pprof
// endpoint.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// cacheLine is the assumed coherence granule. 64 bytes covers x86 and
// most ARM cores; being wrong only costs a little padding.
const cacheLine = 64

// slot is one worker's counter cell, padded to a full cache line so
// adjacent workers' atomic adds never contend for the same line.
type slot struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing counter sharded per worker:
// worker w updates only its own padded slot, so concurrent Adds are
// wait-free and contention-free. Read methods sum the slots.
type Counter struct {
	slots []slot
}

// NewCounter returns a counter with one padded slot per worker.
// It panics if workers < 1.
func NewCounter(workers int) *Counter {
	if workers < 1 {
		panic("metrics: counter needs at least one worker slot")
	}
	return &Counter{slots: make([]slot, workers)}
}

// Add increments worker w's slot by n.
func (c *Counter) Add(w int, n uint64) { c.slots[w].v.Add(n) }

// Inc increments worker w's slot by one.
func (c *Counter) Inc(w int) { c.slots[w].v.Add(1) }

// Workers returns the number of slots.
func (c *Counter) Workers() int { return len(c.slots) }

// Value returns worker w's count.
func (c *Counter) Value(w int) uint64 { return c.slots[w].v.Load() }

// Total sums all worker slots.
func (c *Counter) Total() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].v.Load()
	}
	return t
}

// PerWorker returns a copy of every worker's count.
func (c *Counter) PerWorker() []uint64 {
	out := make([]uint64, len(c.slots))
	for i := range c.slots {
		out[i] = c.slots[i].v.Load()
	}
	return out
}

// CounterSnapshot is a Counter's JSON form.
type CounterSnapshot struct {
	Type      string   `json:"type"` // "counter"
	Total     uint64   `json:"total"`
	PerWorker []uint64 `json:"per_worker,omitempty"`
}

// Snapshot captures the counter. Per-worker detail is included only when
// there is more than one slot.
func (c *Counter) Snapshot() any {
	s := CounterSnapshot{Type: "counter", Total: c.Total()}
	if len(c.slots) > 1 {
		s.PerWorker = c.PerWorker()
	}
	return s
}

// histBuckets is the number of log2 duration buckets: bucket i holds
// observations with nanosecond bit-length i, so bucket 0 is [0,1ns],
// bucket 10 ≈ 1µs, bucket 30 ≈ 1s, bucket 40 ≈ 18min.
const histBuckets = 41

// Histogram counts durations in log2-spaced buckets. Observe is
// lock-free; quantiles are reconstructed from the bucket counts with
// log-linear interpolation inside the winning bucket, which bounds the
// relative error by the bucket width (2×).
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a duration to its log2 bucket.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
	h.buckets[bucketOf(d)].Add(1)
	for {
		cur := h.maxNS.Load()
		if uint64(d) <= cur || h.maxNS.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) from the
// bucket counts, interpolating geometrically within the bucket. Returns
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		c := h.buckets[b].Load()
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketBounds(b)
			frac := float64(rank-seen) / float64(c)
			return time.Duration(lo + frac*(hi-lo))
		}
		seen += c
	}
	return time.Duration(h.maxNS.Load())
}

// bucketBounds returns bucket b's nanosecond range [lo, hi).
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// HistogramSnapshot is a Histogram's JSON form. Bucket keys are the
// upper bound of each non-empty bucket, rendered as a duration string.
type HistogramSnapshot struct {
	Type    string            `json:"type"` // "histogram"
	Count   uint64            `json:"count"`
	Seconds float64           `json:"sum_s"`
	MeanS   float64           `json:"mean_s"`
	P50S    float64           `json:"p50_s"`
	P90S    float64           `json:"p90_s"`
	P99S    float64           `json:"p99_s"`
	MaxS    float64           `json:"max_s"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram.
func (h *Histogram) Snapshot() any {
	s := HistogramSnapshot{
		Type:    "histogram",
		Count:   h.Count(),
		Seconds: h.Sum().Seconds(),
		MeanS:   h.Mean().Seconds(),
		P50S:    h.Quantile(0.50).Seconds(),
		P90S:    h.Quantile(0.90).Seconds(),
		P99S:    h.Quantile(0.99).Seconds(),
		MaxS:    (time.Duration(h.maxNS.Load())).Seconds(),
	}
	for b := 0; b < histBuckets; b++ {
		if c := h.buckets[b].Load(); c > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]uint64)
			}
			_, hi := bucketBounds(b)
			s.Buckets[fmt.Sprintf("le_%s", time.Duration(hi))] = c
		}
	}
	return s
}

// PhaseTimer accumulates named phase durations — coarse, mutex-guarded
// timing for code regions that run at most a few times per second
// (figure setup, dataset generation, whole grid sweeps).
type PhaseTimer struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*phase
}

type phase struct {
	total time.Duration
	count int
}

// NewPhaseTimer returns an empty phase timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{phases: make(map[string]*phase)}
}

// Start begins timing phase name; invoke the returned func to stop.
func (t *PhaseTimer) Start(name string) func() {
	begin := time.Now()
	return func() { t.Add(name, time.Since(begin)) }
}

// Add records one completed run of phase name.
func (t *PhaseTimer) Add(name string, d time.Duration) {
	t.mu.Lock()
	p := t.phases[name]
	if p == nil {
		p = &phase{}
		t.phases[name] = p
		t.order = append(t.order, name)
	}
	p.total += d
	p.count++
	t.mu.Unlock()
}

// PhaseSnapshot is one phase's JSON form.
type PhaseSnapshot struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// PhaseTimerSnapshot is a PhaseTimer's JSON form, in first-start order.
type PhaseTimerSnapshot struct {
	Type   string          `json:"type"` // "phases"
	Phases []PhaseSnapshot `json:"phases"`
}

// Snapshot captures every phase in the order first started.
func (t *PhaseTimer) Snapshot() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := PhaseTimerSnapshot{Type: "phases", Phases: make([]PhaseSnapshot, 0, len(t.order))}
	for _, name := range t.order {
		p := t.phases[name]
		s.Phases = append(s.Phases, PhaseSnapshot{Name: name, Seconds: p.total.Seconds(), Count: p.count})
	}
	return s
}

// Metric is anything the registry can snapshot. Snapshot must return a
// JSON-marshalable value and be safe to call concurrently with updates.
type Metric interface {
	Snapshot() any
}

// GaugeFunc adapts a closure into a Metric (for one-off values such as
// GOMAXPROCS or a queue depth probe).
type GaugeFunc func() any

// Snapshot invokes the closure.
func (f GaugeFunc) Snapshot() any { return f() }

// Registry is a named collection of metrics. Registration is expected at
// setup time; Snapshot may be called at any point during a run.
type Registry struct {
	// Namespace, when non-empty, prefixes every metric name in the
	// Prometheus exposition (WritePrometheus) — set it before serving.
	// The JSON snapshot always uses the bare registry keys.
	Namespace string

	mu    sync.Mutex
	byKey map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]Metric)}
}

// Register adds m under name, replacing any previous metric of that
// name. It panics on an empty name.
func (r *Registry) Register(name string, m Metric) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	r.byKey[name] = m
	r.mu.Unlock()
}

// Counter registers and returns a new per-worker counter. If a Counter
// is already registered under name it is returned instead (so call sites
// can re-acquire by name).
func (r *Registry) Counter(name string, workers int) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byKey[name].(*Counter); ok {
		return c
	}
	c := NewCounter(workers)
	r.byKey[name] = c
	return c
}

// Histogram registers and returns a new histogram (or the existing one
// of that name).
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.byKey[name].(*Histogram); ok {
		return h
	}
	h := NewHistogram()
	r.byKey[name] = h
	return h
}

// PhaseTimer registers and returns a new phase timer (or the existing
// one of that name).
func (r *Registry) PhaseTimer(name string) *PhaseTimer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byKey[name].(*PhaseTimer); ok {
		return t
	}
	t := NewPhaseTimer()
	r.byKey[name] = t
	return t
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every metric. The result marshals to stable JSON
// (encoding/json sorts map keys).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.byKey))
	for k, m := range r.byKey {
		out[k] = m.Snapshot()
	}
	return out
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeHTTP serves the registry snapshot: indented JSON by default, or
// text exposition format with ?format=prometheus, so one mount point
// (cmd/sfcserved's ops-port /metrics) feeds both humans and scrapers.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	// Snapshots are point-in-time by definition; any cache between the
	// scraper and the process would serve stale counters.
	w.Header().Set("Cache-Control", "no-store")
	switch format := req.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		//nolint:errcheck // headers are gone by the time encoding fails
		r.WriteJSON(w)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//nolint:errcheck // same: nothing to report to after the first byte
		r.WritePrometheus(w)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want json or prometheus)", format), http.StatusBadRequest)
	}
}

// Publish exposes the registry's live snapshot as the expvar variable
// name (visible at /debug/vars once an HTTP server runs). expvar names
// are process-global and permanent, so if the name is already taken —
// e.g. a second registry in the same process — Publish does nothing.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
