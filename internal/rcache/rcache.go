// Package rcache is a byte-budgeted, content-addressed response cache
// with single-flight request coalescing, built for serving layers whose
// results are expensive to compute and deterministic given a request
// digest (cmd/sfcserved keys it by volume name + store generation +
// full render/filter parameters).
//
// The cache stores opaque response Values (body bytes plus replay
// metadata) under caller-chosen keys in an LRU bounded by a byte
// budget. Do is the main entry point: a key that is resident returns
// immediately (hit); a key that is already being computed blocks the
// caller on the in-flight run (coalesced) without doing any work of
// its own; otherwise the caller becomes the leader, runs the compute
// function once, and every waiter shares the result.
//
// Cancellation is asymmetric by design: a waiter abandoning the wait
// only detaches that waiter — the leader keeps computing for everyone
// else. If the leader itself is cancelled, its context error is not
// inherited by the waiters; each live waiter retries, one of them
// becomes the new leader, and only waiters whose own contexts have
// expired give up.
//
// Invalidation is the caller's job and is expected to happen in the
// key: embed a generation counter that changes when the underlying
// data changes, and stale entries become unreachable, aging out of
// the LRU under budget pressure.
package rcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Value is one cached response: the body bytes plus the metadata a
// server needs to replay it (content type and any extra headers).
// Values are stored and returned by value; callers must not mutate
// Body or Meta after Put/Do or after receiving them back.
type Value struct {
	Body        []byte
	ContentType string
	Meta        map[string]string
}

// entryOverhead approximates the per-entry bookkeeping bytes (map
// slot, list element, entry struct, key copy) so the budget does not
// pretend metadata is free. Being a little wrong only shifts where
// eviction kicks in.
const entryOverhead = 256

// cost is the bytes an entry charges against the budget.
func cost(key string, v Value) int64 {
	n := int64(entryOverhead + len(key) + len(v.Body) + len(v.ContentType))
	for k, val := range v.Meta {
		n += int64(len(k) + len(val))
	}
	return n
}

// Outcome classifies how a Do call was satisfied.
type Outcome int

const (
	// Hit means the value was already resident.
	Hit Outcome = iota
	// Miss means this caller was the leader and ran the compute
	// function.
	Miss
	// Coalesced means the caller blocked on another caller's
	// in-flight computation and shared its result.
	Coalesced
)

// String returns the outcome in lowercase, suitable for an X-Cache
// response header.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// entry is one resident value, linked into the LRU list.
type entry struct {
	key  string
	val  Value
	cost int64
	elem *list.Element
}

// flight is one in-progress computation. val and err are written by
// the leader before done is closed, so waiters reading them after
// <-done observe a consistent result.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Coalesced     uint64
	ResidentBytes int64
	Entries       int
	BudgetBytes   int64
}

// Cache is the byte-budgeted LRU with request coalescing. The zero
// value is not usable; construct with New.
type Cache struct {
	budget int64

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // front = most recently used
	flights  map[string]*flight
	resident int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	coalesced atomic.Uint64
}

// New returns a cache holding at most budget bytes of entries. A
// budget <= 0 retains nothing but still coalesces concurrent Do calls
// for the same key.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// Get returns the resident value for key, counting a hit or a miss.
// It does not join or start a flight; use Do for that.
func (c *Cache) Get(key string) (Value, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	var v Value
	if ok {
		c.lru.MoveToFront(e.elem)
		// Copy the value inside the critical section: a concurrent Put
		// to the same key rewrites e.val in place under the lock.
		v = e.val
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Value{}, false
	}
	c.hits.Add(1)
	return v, true
}

// Invalidate drops key's resident entry, if any, so the next Do for
// the key re-runs its compute function. An in-flight computation for
// the key is left alone — its waiters expect its result; a caller
// that replaced the underlying state can invalidate again once it
// lands. Invalidated entries do not count as evictions.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
		c.resident -= e.cost
	}
	c.mu.Unlock()
}

// Put stores v under key unconditionally (no flight interaction),
// evicting least-recently-used entries until the budget holds. A
// value whose cost alone exceeds the budget is not retained.
func (c *Cache) Put(key string, v Value) {
	c.mu.Lock()
	c.putLocked(key, v)
	c.mu.Unlock()
}

func (c *Cache) putLocked(key string, v Value) {
	nc := cost(key, v)
	if nc > c.budget {
		// Would evict the entire cache and still not fit; the caller
		// keeps its freshly computed value, we keep our working set.
		return
	}
	if e, ok := c.entries[key]; ok {
		c.resident += nc - e.cost
		e.val, e.cost = v, nc
		c.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, val: v, cost: nc}
		e.elem = c.lru.PushFront(e)
		c.entries[key] = e
		c.resident += nc
	}
	for c.resident > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.key)
		c.resident -= ev.cost
		c.evictions.Add(1)
	}
}

// Do returns the value for key, computing it at most once across
// concurrent callers. The compute function receives the leader's own
// context; its error (nil or not) is shared with every waiter, except
// that a leader's context error triggers the waiter-retry path
// described in the package comment. Errors are never cached. If the
// compute function panics, the panic propagates to the leader's
// caller and waiters are released with ErrComputePanicked.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (Value, error)) (Value, Outcome, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e.elem)
			v := e.val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return Value{}, Coalesced, ctx.Err()
			}
			if f.err == nil {
				return f.val, Coalesced, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				// The leader's context died, not ours. Retry: the next
				// loop iteration finds either a fresh flight to join or
				// no flight, in which case this waiter leads.
				if ctx.Err() != nil {
					return Value{}, Coalesced, ctx.Err()
				}
				continue
			}
			return Value{}, Coalesced, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		return c.lead(ctx, key, f, fn)
	}
}

// ErrComputePanicked is the error waiters receive when the leader's
// compute function panicked instead of returning. The panic itself
// propagates to the leader's caller.
var ErrComputePanicked = errors.New("rcache: compute function panicked")

// lead runs the compute function as the flight's leader. Teardown —
// deregistering the flight, caching a successful result, releasing
// waiters — runs in a defer so that a panicking fn still closes done;
// otherwise every present and future Do for the key would block
// forever on a poisoned flight (net/http recovers per-request panics,
// so the process would live on with the key wedged).
func (c *Cache) lead(ctx context.Context, key string, f *flight, fn func(context.Context) (Value, error)) (Value, Outcome, error) {
	// Provisional error: only overwritten if fn returns. Waiters read
	// it after done closes, so a panic surfaces to them as a plain
	// non-retryable error.
	f.err = ErrComputePanicked
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.putLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn(ctx)
	return f.val, Miss, f.err
}

// Stats snapshots the counters. Counter reads are individually atomic
// (not a consistent cut), which is fine for metrics export.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	resident, entries := c.resident, len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Coalesced:     c.coalesced.Load(),
		ResidentBytes: resident,
		Entries:       entries,
		BudgetBytes:   c.budget,
	}
}
