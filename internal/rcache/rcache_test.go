package rcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func val(body string) Value {
	return Value{Body: []byte(body), ContentType: "text/plain"}
}

func TestGetPutAndLRUEviction(t *testing.T) {
	// Budget sized for exactly two of these entries.
	one := cost("k0", val("0123456789"))
	c := New(2 * one)

	if _, ok := c.Get("k0"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("k0", val("0123456789"))
	c.Put("k1", val("0123456789"))
	if got := c.Stats(); got.ResidentBytes != 2*one || got.Entries != 2 {
		t.Fatalf("resident %d bytes %d entries, want %d and 2", got.ResidentBytes, got.Entries, 2*one)
	}

	// Touch k0 so k1 is the LRU victim when k2 arrives.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k2", val("0123456789"))
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived eviction; LRU order wrong")
	}
	for _, key := range []string{"k0", "k2"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s evicted, want resident", key)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", st.Hits, st.Misses)
	}
}

func TestPutReplaceAdjustsResidentBytes(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", val("short"))
	before := c.Stats().ResidentBytes
	c.Put("k", val("a considerably longer body than before"))
	after := c.Stats()
	if after.Entries != 1 {
		t.Fatalf("entries = %d, want 1", after.Entries)
	}
	want := before + int64(len("a considerably longer body than before")-len("short"))
	if after.ResidentBytes != want {
		t.Errorf("resident = %d, want %d", after.ResidentBytes, want)
	}
}

func TestOversizedValueNotRetained(t *testing.T) {
	c := New(64)
	big := Value{Body: make([]byte, 4096)}
	c.Put("big", big)
	if _, ok := c.Get("big"); ok {
		t.Error("value larger than the whole budget was retained")
	}
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Errorf("resident = %d, want 0", st.ResidentBytes)
	}
}

func TestMetaCountsAgainstBudget(t *testing.T) {
	v := Value{Body: []byte("b"), ContentType: "x", Meta: map[string]string{"X-Image-Width": "256"}}
	base := Value{Body: []byte("b"), ContentType: "x"}
	if cost("k", v) <= cost("k", base) {
		t.Error("Meta headers do not charge the budget")
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(1 << 20)
	runs := 0
	fn := func(context.Context) (Value, error) { runs++; return val("body"), nil }

	v, out, err := c.Do(context.Background(), "k", fn)
	if err != nil || out != Miss || string(v.Body) != "body" {
		t.Fatalf("first Do: %v %v %q", err, out, v.Body)
	}
	v, out, err = c.Do(context.Background(), "k", fn)
	if err != nil || out != Hit || string(v.Body) != "body" {
		t.Fatalf("second Do: %v %v %q", err, out, v.Body)
	}
	if runs != 1 {
		t.Errorf("compute ran %d times, want 1", runs)
	}
}

func TestDoErrorSharedNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func(context.Context) (Value, error) { //nolint:errcheck
			close(started)
			<-release
			return Value{}, boom
		})
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) {
			t.Error("waiter ran the compute function")
			return Value{}, nil
		})
		waiterErr <- err
	}()
	waitFor(t, "waiter coalesced", func() bool { return c.Stats().Coalesced == 1 })
	close(release)
	if err := <-waiterErr; !errors.Is(err, boom) {
		t.Errorf("waiter error %v, want boom", err)
	}
	// The failure was not cached: the next Do recomputes.
	_, out, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) { return val("ok"), nil })
	if err != nil || out != Miss {
		t.Errorf("Do after failure: %v %v, want nil Miss", err, out)
	}
}

// TestCoalescingStress is the package's -race acceptance test: with an
// empty cache, n concurrent identical requests run the compute
// function exactly once (one miss, n-1 coalesced waiters), and every
// caller gets the identical bytes.
func TestCoalescingStress(t *testing.T) {
	const n = 32
	c := New(1 << 20)
	var runs atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make(chan string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) {
				runs.Add(1)
				<-release
				return val("shared"), nil
			})
			results <- string(v.Body)
			errs <- err
		}()
	}
	// The leader is parked inside fn; wait until every other goroutine
	// has joined the flight, then let the computation finish.
	waitFor(t, "all waiters coalesced", func() bool { return c.Stats().Coalesced == n-1 })
	close(release)
	wg.Wait()
	close(results)
	close(errs)

	if got := runs.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	for err := range errs {
		if err != nil {
			t.Errorf("Do: %v", err)
		}
	}
	for body := range results {
		if body != "shared" {
			t.Errorf("body %q, want %q", body, "shared")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("misses/coalesced = %d/%d, want 1/%d", st.Misses, st.Coalesced, n-1)
	}
}

// TestWaiterCancelDoesNotCancelLeader: a waiter abandoning the wait
// detaches only itself; the leader completes and the result lands in
// the cache.
func TestWaiterCancelDoesNotCancelLeader(t *testing.T) {
	c := New(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(ctx context.Context) (Value, error) {
			close(entered)
			select {
			case <-release:
				return val("survived"), nil
			case <-ctx.Done():
				return Value{}, ctx.Err()
			}
		})
		leaderDone <- err
	}()
	<-entered

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(wctx, "k", func(context.Context) (Value, error) {
			t.Error("waiter ran the compute function")
			return Value{}, nil
		})
		waiterDone <- err
	}()
	waitFor(t, "waiter coalesced", func() bool { return c.Stats().Coalesced == 1 })
	wcancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	select {
	case err := <-leaderDone:
		t.Fatalf("leader finished early with %v; waiter cancellation leaked", err)
	default:
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if v, ok := c.Get("k"); !ok || string(v.Body) != "survived" {
		t.Errorf("leader result not cached (ok=%v)", ok)
	}
}

// TestLeaderCancelPromotesWaiter: when the leader's own context dies,
// waiters do not inherit the cancellation — one of them retries as
// the new leader.
func TestLeaderCancelPromotesWaiter(t *testing.T) {
	c := New(1 << 20)
	lctx, lcancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(lctx, "k", func(ctx context.Context) (Value, error) {
			close(entered)
			<-ctx.Done()
			return Value{}, ctx.Err()
		})
		leaderDone <- err
	}()
	<-entered

	waiterDone := make(chan error, 1)
	var waiterOut Outcome
	go func() {
		_, out, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) {
			return val("second wind"), nil
		})
		waiterOut = out
		waiterDone <- err
	}()
	waitFor(t, "waiter coalesced", func() bool { return c.Stats().Coalesced == 1 })

	lcancel()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("promoted waiter got %v, want success", err)
	}
	if waiterOut != Miss {
		t.Errorf("promoted waiter outcome %v, want Miss (it led the retry)", waiterOut)
	}
	if v, ok := c.Get("k"); !ok || string(v.Body) != "second wind" {
		t.Errorf("retry result not cached (ok=%v)", ok)
	}
}

// TestLeaderPanicReleasesWaiters: a panic in the compute function must
// not poison the key. The flight teardown runs in a defer, so waiters
// are released with ErrComputePanicked, the panic propagates to the
// leader's caller, and the next Do for the key computes afresh.
func TestLeaderPanicReleasesWaiters(t *testing.T) {
	c := New(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderPanic := make(chan any, 1)
	go func() {
		defer func() { leaderPanic <- recover() }()
		c.Do(context.Background(), "k", func(context.Context) (Value, error) { //nolint:errcheck
			close(entered)
			<-release
			panic("kernel exploded")
		})
	}()
	<-entered
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) {
			t.Error("waiter ran the compute function")
			return Value{}, nil
		})
		waiterDone <- err
	}()
	waitFor(t, "waiter coalesced", func() bool { return c.Stats().Coalesced == 1 })
	close(release)
	if r := <-leaderPanic; r == nil {
		t.Fatal("panic did not propagate to the leader's caller")
	}
	if err := <-waiterDone; !errors.Is(err, ErrComputePanicked) {
		t.Fatalf("waiter got %v, want ErrComputePanicked", err)
	}
	// The key is not poisoned: a fresh Do leads and the panic result
	// was not cached.
	v, out, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) { return val("recovered"), nil })
	if err != nil || out != Miss || string(v.Body) != "recovered" {
		t.Errorf("Do after panic: %v %v %q, want nil Miss recovered", err, out, v.Body)
	}
}

// TestInvalidate: dropping one key leaves the rest (and the resident
// accounting) intact, does not count as an eviction, and the next Do
// recomputes.
func TestInvalidate(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", val("stale"))
	c.Put("other", val("keep"))
	c.Invalidate("k")
	c.Invalidate("absent") // no-op
	if _, ok := c.Get("k"); ok {
		t.Error("invalidated entry still resident")
	}
	if _, ok := c.Get("other"); !ok {
		t.Error("unrelated entry dropped by Invalidate")
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Errorf("evictions = %d; invalidation must not count as eviction", st.Evictions)
	}
	if want := cost("other", val("keep")); st.ResidentBytes != want || st.Entries != 1 {
		t.Errorf("resident/entries = %d/%d, want %d/1", st.ResidentBytes, st.Entries, want)
	}
	_, out, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) { return val("fresh"), nil })
	if err != nil || out != Miss {
		t.Errorf("Do after Invalidate: %v %v, want nil Miss", err, out)
	}
}

// TestGetPutRace fails under -race if Get reads the entry's value
// outside the critical section: Put rewrites e.val in place under the
// lock while a concurrent Get of the same key reads it.
func TestGetPutRace(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", val("seed"))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if i%2 == 0 {
					c.Put("k", val("bodies"[:1+j%6]))
				} else if v, ok := c.Get("k"); ok && len(v.Body) == 0 {
					t.Error("Get returned an empty body")
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestZeroBudgetStillCoalesces(t *testing.T) {
	c := New(0)
	var runs atomic.Int32
	release := make(chan struct{})
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do(context.Background(), "k", func(context.Context) (Value, error) {
				runs.Add(1)
				<-release
				return val("v"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	waitFor(t, "waiters coalesced", func() bool { return c.Stats().Coalesced == n-1 })
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("zero-budget cache retained a value")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{Hit: "hit", Miss: "miss", Coalesced: "coalesced", Outcome(42): "unknown"}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// TestGenerationKeyedInvalidation documents the intended invalidation
// idiom: the generation lives in the key, so a bump makes the old
// entry unreachable without an explicit purge.
func TestGenerationKeyedInvalidation(t *testing.T) {
	c := New(1 << 20)
	key := func(gen int) string { return fmt.Sprintf("vol|gen=%d|w=64", gen) }
	c.Put(key(1), val("old"))
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("gen-1 entry missing")
	}
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("gen-2 key resolved to the stale entry")
	}
	_, out, err := c.Do(context.Background(), key(2), func(context.Context) (Value, error) { return val("new"), nil })
	if err != nil || out != Miss {
		t.Errorf("post-bump Do: %v %v, want nil Miss", err, out)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
