// Package volume generates the synthetic 3D datasets the experiments
// run on. The paper used a 512³ MRI scan (bilateral filter) and a 512³
// combustion-simulation field (volume renderer); neither is available,
// so this package builds deterministic stand-ins with the properties the
// kernels actually exercise: realistic edges plus noise for the filter's
// photometric term, and empty-space/dense-core structure for the
// renderer's transfer function. See DESIGN.md §2 for the substitution
// rationale.
package volume

// RNG is a small, deterministic xorshift64* generator. Experiments must
// be reproducible run-to-run and independent of math/rand changes, so
// the generators here use this fixed algorithm.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, since
// xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Normal returns an approximately standard-normal value using the sum of
// twelve uniforms (Irwin–Hall); plenty for synthetic measurement noise.
func (r *RNG) Normal() float32 {
	var s float32
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return s - 6
}

// hash3 maps a lattice point and seed to a deterministic uniform in
// [0,1), for value-noise generation without storing a lattice.
func hash3(x, y, z int, seed uint64) float32 {
	h := seed
	h ^= uint64(uint32(x)) * 0x9e3779b185ebca87
	h = (h << 31) | (h >> 33)
	h ^= uint64(uint32(y)) * 0xc2b2ae3d27d4eb4f
	h = (h << 29) | (h >> 35)
	h ^= uint64(uint32(z)) * 0x165667b19e3779f9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float32(h>>40) / float32(1<<24)
}
