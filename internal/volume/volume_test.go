package volume

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := float64(r.Normal())
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean %v too far from 0", mean)
	}
	if math.Abs(std-1) > 0.03 {
		t.Errorf("stddev %v too far from 1", std)
	}
}

func TestValueNoiseRangeAndDeterminism(t *testing.T) {
	f := func(xr, yr, zr float64) bool {
		x := math.Mod(xr, 100)
		y := math.Mod(yr, 100)
		z := math.Mod(zr, 100)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		v := ValueNoise(x, y, z, 1)
		return v >= 0 && v < 1.0001 && v == ValueNoise(x, y, z, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueNoiseContinuity(t *testing.T) {
	// Adjacent samples at fine spacing must not jump: noise is smooth.
	prev := ValueNoise(0, 0.5, 0.5, 3)
	for i := 1; i <= 1000; i++ {
		cur := ValueNoise(float64(i)*0.01, 0.5, 0.5, 3)
		if d := math.Abs(float64(cur - prev)); d > 0.15 {
			t.Fatalf("jump %v at step %d", d, i)
		}
		prev = cur
	}
}

func TestFBMRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := FBM(float64(i)*0.13, float64(i)*0.07, float64(i)*0.05, 4, 9)
		if v < 0 || v > 1 {
			t.Fatalf("FBM out of [0,1]: %v", v)
		}
	}
}

func TestMRIPhantomProperties(t *testing.T) {
	l := core.NewArrayOrder(32, 32, 32)
	g := MRIPhantom(l, 1, 0.05)
	s := Describe(g)
	if s.Min < 0 || s.Max > 1 {
		t.Errorf("values outside [0,1]: %v..%v", s.Min, s.Max)
	}
	// The phantom must have interior structure: bright skull ring vs
	// darker center.
	center := g.At(16, 16, 16)
	skull := g.At(16, 3, 16) // near the top of the head: skull shell
	if skull <= center {
		t.Logf("center=%v skull=%v (informational)", center, skull)
	}
	if s.NonZero < 0.2 {
		t.Errorf("phantom mostly empty: %v non-zero", s.NonZero)
	}
	// Determinism.
	h := MRIPhantom(core.NewArrayOrder(32, 32, 32), 1, 0.05)
	if !grid.Equal(g, h) {
		t.Error("same seed produced different phantoms")
	}
	// Different seed differs.
	d := MRIPhantom(core.NewArrayOrder(32, 32, 32), 2, 0.05)
	if grid.Equal(g, d) {
		t.Error("different seeds produced identical phantoms")
	}
}

func TestMRIPhantomLayoutInvariant(t *testing.T) {
	// The dataset is defined in index space, so generating directly into
	// different layouts must give identical logical contents.
	a := MRIPhantom(core.NewArrayOrder(16, 16, 16), 5, 0.02)
	z := MRIPhantom(core.NewZOrder(16, 16, 16), 5, 0.02)
	if !grid.Equal(a, z) {
		t.Error("phantom differs across layouts")
	}
}

func TestCombustionPlumeProperties(t *testing.T) {
	l := core.NewZOrder(32, 32, 32)
	g := CombustionPlume(l, 3)
	s := Describe(g)
	if s.Min < 0 || s.Max > 1 {
		t.Errorf("values outside [0,1]: %v..%v", s.Min, s.Max)
	}
	if s.NonZero < 0.02 || s.NonZero > 0.9 {
		t.Errorf("plume should mix empty space and core; non-zero fraction %v", s.NonZero)
	}
	if s.Max < 0.3 {
		t.Errorf("plume core too weak: max %v", s.Max)
	}
}

func TestCombustionPlumeDeterministic(t *testing.T) {
	a := CombustionPlume(core.NewArrayOrder(16, 16, 16), 7)
	b := CombustionPlume(core.NewArrayOrder(16, 16, 16), 7)
	if !grid.Equal(a, b) {
		t.Error("same seed produced different plumes")
	}
}

func TestConstant(t *testing.T) {
	g := Constant(core.NewZOrder(8, 8, 8), 0.5)
	lo, hi := g.MinMax()
	if lo != 0.5 || hi != 0.5 {
		t.Errorf("constant grid range %v..%v", lo, hi)
	}
}

func TestRampX(t *testing.T) {
	g := RampX(core.NewArrayOrder(11, 4, 4))
	if g.At(0, 0, 0) != 0 || g.At(10, 3, 3) != 1 {
		t.Errorf("ramp endpoints %v..%v", g.At(0, 0, 0), g.At(10, 3, 3))
	}
	if g.At(5, 2, 1) != 0.5 {
		t.Errorf("ramp midpoint %v", g.At(5, 2, 1))
	}
	one := RampX(core.NewArrayOrder(1, 2, 2))
	if one.At(0, 0, 0) != 0 {
		t.Errorf("degenerate ramp value %v", one.At(0, 0, 0))
	}
}

func TestSolidSphere(t *testing.T) {
	g := SolidSphere(core.NewArrayOrder(32, 32, 32), 0.5)
	if g.At(16, 16, 16) != 1 {
		t.Error("sphere center not inside")
	}
	if g.At(0, 0, 0) != 0 {
		t.Error("corner not outside")
	}
	s := Describe(g)
	// Sphere of r=8 in 32³: volume fraction ≈ (4/3)π·8³/32³ ≈ 0.065.
	if s.NonZero < 0.03 || s.NonZero > 0.15 {
		t.Errorf("sphere fill fraction %v implausible", s.NonZero)
	}
}

func TestWhiteNoiseStats(t *testing.T) {
	g := WhiteNoise(core.NewArrayOrder(24, 24, 24), 13)
	s := Describe(g)
	if math.Abs(s.Mean-0.5) > 0.02 {
		t.Errorf("white-noise mean %v", s.Mean)
	}
}

func TestDescribeCounts(t *testing.T) {
	s := Describe(Constant(core.NewArrayOrder(4, 5, 6), 1))
	if s.SampleSize != 120 || s.NonZero != 1 || s.Mean != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestRawRoundtrip(t *testing.T) {
	src := MRIPhantom(core.NewZOrder(12, 10, 8), 3, 0.05)
	var buf bytes.Buffer
	if err := SaveRaw(&buf, src); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 12*10*8*4 {
		t.Errorf("raw size %d bytes", buf.Len())
	}
	// Load into a different layout: contents must match exactly.
	back, err := LoadRaw(&buf, core.NewHilbert(12, 10, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(src, back) {
		t.Error("raw roundtrip changed contents")
	}
}

func TestLoadRawTruncated(t *testing.T) {
	src := Constant(core.NewArrayOrder(4, 4, 4), 1)
	var buf bytes.Buffer
	if err := SaveRaw(&buf, src); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-4]
	if _, err := LoadRaw(bytes.NewReader(short), core.NewArrayOrder(4, 4, 4)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLoadRawTrailingBytes(t *testing.T) {
	src := Constant(core.NewArrayOrder(4, 4, 4), 1)
	var buf bytes.Buffer
	if err := SaveRaw(&buf, src); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)
	if _, err := LoadRaw(&buf, core.NewArrayOrder(4, 4, 4)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRawFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.f32")
	src := CombustionPlume(core.NewArrayOrder(8, 8, 8), 2)
	if err := SaveRawFile(path, src); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRawFile(path, core.NewZOrder(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !grid.Equal(src, back) {
		t.Error("file roundtrip changed contents")
	}
	if _, err := LoadRawFile(filepath.Join(dir, "missing.f32"), core.NewArrayOrder(2, 2, 2)); err == nil {
		t.Error("missing file accepted")
	}
}
