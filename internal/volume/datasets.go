package volume

import (
	"math"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

// MRIPhantom synthesizes an MRI-like head phantom: nested ellipsoid
// shells with distinct intensities ("scalp", "skull", "brain",
// "ventricles") plus additive noise. It stands in for the paper's 512³
// UC Davis MRI dataset in the bilateral-filter experiments: sharp
// anatomical edges for the photometric (range) term to preserve, noise
// for the filter to remove. Values are in [0,1]. Deterministic in seed.
func MRIPhantom(l core.Layout, seed uint64, noiseSigma float64) *grid.Grid[float32] {
	return MRIPhantomOf[float32](l, seed, noiseSigma)
}

// MRIPhantomOf is MRIPhantom quantized to any element type: the field
// is computed in float32 exactly as the float32 generator (same RNG
// consumption, so every dtype sees the same underlying phantom) and
// each sample is quantized to T on store. The float32 instantiation is
// bit-identical to MRIPhantom.
func MRIPhantomOf[T grid.Scalar](l core.Layout, seed uint64, noiseSigma float64) *grid.Grid[T] {
	nx, ny, nz := l.Dims()
	rng := NewRNG(seed)
	g := grid.NewOf[T](l)
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	// Shell radii as fractions of the half-extent, outermost first.
	shells := []struct {
		rx, ry, rz float64 // ellipsoid semi-axes (fractions)
		intensity  float32
	}{
		{0.95, 0.95, 0.90, 0.30}, // scalp
		{0.85, 0.85, 0.80, 0.85}, // skull (bright)
		{0.75, 0.75, 0.70, 0.55}, // brain tissue
		{0.30, 0.22, 0.25, 0.15}, // ventricles (dark)
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				x := (float64(i) - cx) / cx
				y := (float64(j) - cy) / cy
				z := (float64(k) - cz) / cz
				var v float32
				for _, s := range shells {
					d := (x/s.rx)*(x/s.rx) + (y/s.ry)*(y/s.ry) + (z/s.rz)*(z/s.rz)
					if d <= 1 {
						v = s.intensity
					}
				}
				// Mild low-frequency tissue texture inside the head.
				if v > 0 {
					v += 0.08 * (FBM(float64(i)*0.06, float64(j)*0.06, float64(k)*0.06, 3, seed) - 0.5)
				}
				v += float32(noiseSigma) * rng.Normal()
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				g.Set(i, j, k, grid.QuantizeUnit[T](v))
			}
		}
	}
	return g
}

// CombustionPlume synthesizes a combustion-like scalar field: a hot
// turbulent plume rising from the volume floor through quiescent
// surroundings, standing in for the paper's 512³ combustion-simulation
// dataset in the volume-rendering experiments. The field has the two
// regimes the renderer cares about — large nearly-empty regions and a
// dense structured core — so transfer-function compositing and ray
// traversal behave realistically. Values are in [0,1].
func CombustionPlume(l core.Layout, seed uint64) *grid.Grid[float32] {
	return CombustionPlumeOf[float32](l, seed)
}

// CombustionPlumeOf is CombustionPlume quantized to any element type;
// see MRIPhantomOf for the quantization contract.
func CombustionPlumeOf[T grid.Scalar](l core.Layout, seed uint64) *grid.Grid[T] {
	nx, ny, nz := l.Dims()
	g := grid.NewOf[T](l)
	cx, cz := float64(nx)/2, float64(nz)/2
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			h := float64(j) / float64(ny) // height fraction (plume rises along +y)
			for i := 0; i < nx; i++ {
				// Plume axis meanders with height.
				ax := cx + 0.15*float64(nx)*math.Sin(h*4.2)
				az := cz + 0.12*float64(nz)*math.Cos(h*3.1)
				dx := (float64(i) - ax) / (0.18*float64(nx)*(0.6+1.8*h) + 1)
				dz := (float64(k) - az) / (0.18*float64(nz)*(0.6+1.8*h) + 1)
				r2 := dx*dx + dz*dz
				core := math.Exp(-r2) * (1.15 - 0.9*h) // hot core cools with height
				turb := float64(FBM(float64(i)*0.045, float64(j)*0.045, float64(k)*0.045, 4, seed))
				v := core*(0.55+0.9*(turb-0.5)) - 0.03 // floor cut: quiescent air is truly empty
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				g.Set(i, j, k, grid.QuantizeUnit[T](float32(v)))
			}
		}
	}
	return g
}

// Constant fills a grid with a single value; the simplest regression
// input (a bilateral filter must leave it unchanged).
func Constant(l core.Layout, v float32) *grid.Grid[float32] {
	return grid.FromFunc(l, func(_, _, _ int) float32 { return v })
}

// RampX fills a grid with a linear ramp along x, normalized to [0,1].
func RampX(l core.Layout) *grid.Grid[float32] {
	nx, _, _ := l.Dims()
	den := float32(nx - 1)
	if den == 0 {
		den = 1
	}
	return grid.FromFunc(l, func(i, _, _ int) float32 { return float32(i) / den })
}

// SolidSphere fills a grid with 1 inside a centered sphere of the given
// fractional radius and 0 outside: a hard edge for edge-preservation
// tests.
func SolidSphere(l core.Layout, frac float64) *grid.Grid[float32] {
	nx, ny, nz := l.Dims()
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	r := frac * math.Min(cx, math.Min(cy, cz))
	return grid.FromFunc(l, func(i, j, k int) float32 {
		dx, dy, dz := float64(i)-cx, float64(j)-cy, float64(k)-cz
		if dx*dx+dy*dy+dz*dz <= r*r {
			return 1
		}
		return 0
	})
}

// WhiteNoise fills a grid with uniform noise in [0,1); deterministic in
// seed.
func WhiteNoise(l core.Layout, seed uint64) *grid.Grid[float32] {
	rng := NewRNG(seed)
	return grid.FromFunc(l, func(_, _, _ int) float32 { return rng.Float32() })
}

// Stats summarizes a grid for dataset sanity checks.
type Stats struct {
	Min, Max   float32
	Mean       float64
	NonZero    float64 // fraction of samples above eps
	SampleSize int
}

// Describe computes summary statistics over every sample of g.
func Describe[T grid.Scalar](g *grid.Grid[T]) Stats {
	nx, ny, nz := g.Dims()
	s := Stats{Min: float32(math.Inf(1)), Max: float32(math.Inf(-1))}
	const eps = 1e-6
	var sum float64
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := float32(g.At(i, j, k))
				if v < s.Min {
					s.Min = v
				}
				if v > s.Max {
					s.Max = v
				}
				sum += float64(v)
				if v > eps {
					s.NonZero++
				}
				s.SampleSize++
			}
		}
	}
	if s.SampleSize > 0 {
		s.Mean = sum / float64(s.SampleSize)
		s.NonZero /= float64(s.SampleSize)
	}
	return s
}
