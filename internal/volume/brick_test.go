package volume

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

// writeTestVolume persists a deterministic grid of T under dir and
// returns the grid and its manifest.
func writeTestVolume[T grid.Scalar](t *testing.T, dir string, l core.Layout, brickElems int) (*grid.Grid[T], *Manifest) {
	t.Helper()
	g := grid.FromFuncOf[T](l, func(i, j, k int) T {
		return T((i*7 + j*13 + k*29) % 97)
	})
	infos, err := WriteBricks(dir, g.Data(), brickElems)
	if err != nil {
		t.Fatalf("WriteBricks: %v", err)
	}
	nx, ny, nz := l.Dims()
	m := &Manifest{
		Version: ManifestVersion, Name: "t", Dataset: "test", Layout: l.Name(),
		Dtype: grid.DtypeFor[T]().String(), Nx: nx, Ny: ny, Nz: nz,
		Elems: int64(l.Len()), BrickElems: brickElems, Gen: 1, Bricks: infos,
	}
	if err := WriteManifestFile(filepath.Join(dir, ManifestFile), m); err != nil {
		t.Fatalf("WriteManifestFile: %v", err)
	}
	return g, m
}

func roundTrip[T grid.Scalar](t *testing.T, l core.Layout, brickElems int) {
	t.Helper()
	dir := t.TempDir()
	g, _ := writeTestVolume[T](t, dir, l, brickElems)
	m, err := ReadManifestFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatalf("ReadManifestFile: %v", err)
	}
	got := grid.NewOf[T](l)
	if err := ReadBricksInto(dir, m, got.Data()); err != nil {
		t.Fatalf("ReadBricksInto: %v", err)
	}
	if !reflect.DeepEqual(g.Data(), got.Data()) {
		t.Fatal("round-tripped backing slice differs")
	}
}

// TestBrickRoundTripDtypes persists and reloads every dtype over a
// padded space-filling layout (non-power-of-two ZOrder pads, so Elems
// > nx*ny*nz exercises the padding path) with a brick size that does
// not divide the slice length (short final brick).
func TestBrickRoundTripDtypes(t *testing.T) {
	l := core.New(core.ZKind, 12, 10, 6) // pads to 16×16×8
	if l.Len() <= 12*10*6 {
		t.Fatalf("test layout should pad: len %d", l.Len())
	}
	const brickElems = 300 // does not divide l.Len()
	t.Run("uint8", func(t *testing.T) { roundTrip[uint8](t, l, brickElems) })
	t.Run("uint16", func(t *testing.T) { roundTrip[uint16](t, l, brickElems) })
	t.Run("float32", func(t *testing.T) { roundTrip[float32](t, l, brickElems) })
	t.Run("float64", func(t *testing.T) { roundTrip[float64](t, l, brickElems) })
}

// TestBricksAreStorageOrder pins the format claim the tiered store is
// built on: brick payloads are the backing slice in storage order, so
// brick i starts exactly at slice offset i*brickElems.
func TestBricksAreStorageOrder(t *testing.T) {
	l := core.New(core.ZKind, 8, 8, 8)
	dir := t.TempDir()
	g, m := writeTestVolume[uint8](t, dir, l, 128)
	for i := range m.Bricks {
		b, err := os.ReadFile(filepath.Join(dir, BrickFileName(i)))
		if err != nil {
			t.Fatal(err)
		}
		payload := b[BrickHeaderLen:]
		want := g.Data()[i*128 : min((i+1)*128, len(g.Data()))]
		if !reflect.DeepEqual(payload, want) {
			t.Fatalf("brick %d payload is not the slice window [%d:%d]", i, i*128, i*128+len(want))
		}
	}
}

func TestCorruptedBrickRejected(t *testing.T) {
	l := core.New(core.ZKind, 8, 8, 8)
	dir := t.TempDir()
	_, m := writeTestVolume[float32](t, dir, l, 100)

	path := filepath.Join(dir, BrickFileName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[BrickHeaderLen+5] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	dst := make([]float32, m.Elems)
	err = ReadBricksInto(dir, m, dst)
	if err == nil {
		t.Fatal("corrupted brick decoded without error")
	}
	if !strings.Contains(err.Error(), "sha256") || !strings.Contains(err.Error(), BrickFileName(1)) {
		t.Fatalf("corruption error should name the digest and file: %v", err)
	}
}

func TestTruncatedBrickRejected(t *testing.T) {
	l := core.New(core.ZKind, 8, 8, 8)
	dir := t.TempDir()
	_, m := writeTestVolume[uint16](t, dir, l, 100)
	path := filepath.Join(dir, BrickFileName(0))
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint16, m.Elems)
	if err := ReadBricksInto(dir, m, dst); err == nil {
		t.Fatal("truncated brick decoded without error")
	}
}

func TestManifestRejectsLies(t *testing.T) {
	l := core.New(core.ZKind, 8, 8, 8)
	dir := t.TempDir()
	_, m := writeTestVolume[uint8](t, dir, l, 128)
	cases := map[string]func(m *Manifest){
		"version":     func(m *Manifest) { m.Version = 99 },
		"no name":     func(m *Manifest) { m.Name = "" },
		"dtype":       func(m *Manifest) { m.Dtype = "complex128" },
		"extents":     func(m *Manifest) { m.Nx = 0 },
		"elems":       func(m *Manifest) { m.Elems = 3 },
		"brick elems": func(m *Manifest) { m.BrickElems = 0 },
		"brick count": func(m *Manifest) { m.Bricks = m.Bricks[:1] },
		"brick bytes": func(m *Manifest) { m.Bricks[0].Bytes = 0 },
		"hash shape":  func(m *Manifest) { m.Bricks[0].SHA256 = "zz" },
	}
	for name, mutate := range cases {
		bad := *m
		bad.Bricks = append([]BrickInfo(nil), m.Bricks...)
		mutate(&bad)
		b, err := EncodeManifest(&bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeManifest(b); err == nil {
			t.Errorf("%s: bad manifest decoded without error", name)
		}
	}
}

func TestTombstoneManifest(t *testing.T) {
	m := &Manifest{Version: ManifestVersion, Name: "gone", Dtype: "float32",
		Nx: 2, Ny: 2, Nz: 2, Elems: 8, Gen: 7, Deleted: true}
	b, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(b)
	if err != nil {
		t.Fatalf("tombstone manifest rejected: %v", err)
	}
	if !got.Deleted || got.Gen != 7 {
		t.Fatalf("tombstone round trip: %+v", got)
	}
}

func TestRemoveBricksFrom(t *testing.T) {
	l := core.New(core.ZKind, 8, 8, 8)
	dir := t.TempDir()
	writeTestVolume[uint8](t, dir, l, 64) // 8 bricks
	if err := RemoveBricksFrom(dir, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_, err := os.Stat(filepath.Join(dir, BrickFileName(i)))
		if want := i < 3; (err == nil) != want {
			t.Errorf("brick %d present=%v, want %v", i, err == nil, want)
		}
	}
}

// FuzzManifestRoundTrip feeds arbitrary bytes through the manifest
// decoder; anything it accepts must re-encode and re-decode to the
// same value (the persistence format is its own fixed point).
func FuzzManifestRoundTrip(f *testing.F) {
	l := core.New(core.ZKind, 4, 4, 4)
	dir := f.TempDir()
	g := grid.NewOf[uint8](l)
	infos, err := WriteBricks(dir, g.Data(), 16)
	if err != nil {
		f.Fatal(err)
	}
	seed, err := EncodeManifest(&Manifest{
		Version: ManifestVersion, Name: "seed", Dataset: "test", Layout: l.Name(),
		Dtype: "uint8", Nx: 4, Ny: 4, Nz: 4, Elems: int64(l.Len()),
		BrickElems: 16, Gen: 3, FilterKey: "fk", Bricks: infos,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"name":"x","dtype":"float32","nx":2,"ny":2,"nz":2,"elems":8,"gen":1,"deleted":true}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		enc, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("manifest round trip drifted:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzBrickHeaderRoundTrip checks both directions of the brick header
// codec: every structured header survives encode→decode, and any raw
// prefix the decoder accepts re-encodes to the same bytes.
func FuzzBrickHeaderRoundTrip(f *testing.F) {
	h := EncodeBrickHeader(BrickHeader{Dtype: grid.F32, Index: 12, PayloadLen: 4096})
	f.Add(h[:], uint8(1), uint32(0), uint64(64))
	f.Fuzz(func(t *testing.T, raw []byte, dt uint8, index uint32, plen uint64) {
		if hdr, err := DecodeBrickHeader(raw); err == nil {
			enc := EncodeBrickHeader(hdr)
			if string(enc[:]) != string(raw[:BrickHeaderLen]) {
				t.Fatalf("accepted header re-encodes differently:\n% x\n% x", raw[:BrickHeaderLen], enc)
			}
		}
		want := BrickHeader{Dtype: grid.Dtype(dt), Index: index, PayloadLen: plen}
		if want.Dtype.Size() == 0 {
			return // not a representable dtype; encoder contract needs one
		}
		enc := EncodeBrickHeader(want)
		got, err := DecodeBrickHeader(enc[:])
		if err != nil {
			t.Fatalf("encoded header rejected: %v", err)
		}
		if got != want {
			t.Fatalf("header round trip: got %+v, want %+v", got, want)
		}
	})
}
