package volume

import (
	"bytes"
	"strings"
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

func roundTripDtype[T grid.Scalar](t *testing.T, kind core.Kind) {
	t.Helper()
	const nx, ny, nz = 7, 5, 4
	l := core.New(kind, nx, ny, nz)
	src := MRIPhantomOf[T](l, 21, 0.05)
	var buf bytes.Buffer
	if err := SaveRawOf(&buf, src); err != nil {
		t.Fatal(err)
	}
	wantLen := nx * ny * nz * grid.DtypeFor[T]().Size()
	if buf.Len() != wantLen {
		t.Fatalf("%v/%v: raw stream %d bytes, want %d", grid.DtypeFor[T](), kind, buf.Len(), wantLen)
	}
	// Load back under a different layout: raw order is layout-independent.
	back, err := LoadRawOf[T](bytes.NewReader(buf.Bytes()), core.NewArrayOrder(nx, ny, nz))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if src.At(i, j, k) != back.At(i, j, k) {
					t.Fatalf("%v/%v: sample (%d,%d,%d) did not round-trip", grid.DtypeFor[T](), kind, i, j, k)
				}
			}
		}
	}
}

func TestRawRoundTripAllDtypesAndLayouts(t *testing.T) {
	for _, kind := range core.Kinds() {
		roundTripDtype[uint8](t, kind)
		roundTripDtype[uint16](t, kind)
		roundTripDtype[float32](t, kind)
		roundTripDtype[float64](t, kind)
	}
}

func TestLoadRawTruncatedNamesByteCounts(t *testing.T) {
	l := core.NewArrayOrder(4, 4, 4) // wants 64 uint16 samples = 128 bytes
	payload := make([]byte, 50)
	_, err := LoadRawOf[uint16](bytes.NewReader(payload), l)
	if err == nil {
		t.Fatal("truncated stream accepted")
	}
	for _, frag := range []string{"truncated", "got 50 bytes", "want 128", "uint16", "4x4x4"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("truncation error %q missing %q", err, frag)
		}
	}
}

func TestLoadRawOversizedNamesByteCounts(t *testing.T) {
	l := core.NewArrayOrder(2, 2, 2) // wants 8 uint8 samples = 8 bytes
	payload := make([]byte, 13)
	_, err := LoadRawOf[uint8](bytes.NewReader(payload), l)
	if err == nil {
		t.Fatal("oversized stream accepted")
	}
	for _, frag := range []string{"oversized", "got 13 bytes", "want 8", "uint8"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("oversize error %q missing %q", err, frag)
		}
	}
}

func TestLoadRawFloat32ByteCountErrors(t *testing.T) {
	// The float32 wrappers report counts too (the pre-generic messages
	// named coordinates only).
	l := core.NewZOrder(3, 3, 3) // wants 27 float32 = 108 bytes
	_, err := LoadRaw(bytes.NewReader(make([]byte, 100)), l)
	if err == nil || !strings.Contains(err.Error(), "want 108") {
		t.Errorf("float32 truncation error %v should name want 108", err)
	}
	_, err = LoadRaw(bytes.NewReader(make([]byte, 112)), l)
	if err == nil || !strings.Contains(err.Error(), "got 112 bytes") {
		t.Errorf("float32 oversize error %v should name got 112", err)
	}
}
