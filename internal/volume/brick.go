package volume

// SFC-ordered brick persistence: the on-disk format behind sfcserved's
// tiered volume store (internal/store).
//
// A volume's backing slice is already in curve order — that is the
// whole point of the layouts in internal/core — so persisting it in
// storage order keeps the paper's locality argument intact one level
// down the memory hierarchy: a brick is a contiguous curve range, so
// writing it is a sequential copy of a slice window and a cold read is
// one sequential I/O that lands in memory already curve-ordered. No
// per-voxel index computation happens on either path (contrast
// SaveRawOf, which walks row-major through Layout.Index for
// interchange with external tools).
//
// A persisted volume is a directory:
//
//	manifest.json   metadata + per-brick sha256 (the commit point)
//	00000.sfcb      brick 0: 18-byte header, then payload
//	00001.sfcb      brick 1, ...
//
// Brick payloads are little-endian samples in storage order. Every
// brick carries its own header (magic, format version, dtype, index,
// payload length) so a file found loose on disk is self-describing,
// and the manifest records each payload's sha256 so a corrupted or
// truncated brick is rejected with a clear error instead of decoding
// into bad samples.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"sfcmem/internal/grid"
)

// ManifestVersion is the current manifest format generation. Readers
// reject other versions rather than guessing.
const ManifestVersion = 1

// BrickInfo describes one persisted brick: its payload size in bytes
// and the hex sha256 of those payload bytes.
type BrickInfo struct {
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Manifest is a persisted volume's metadata: everything needed to
// reconstruct the grid (layout name, extents, dtype), the store
// bookkeeping that must survive a restart (generation, filter
// provenance), and the integrity data that makes replicas and cached
// artifacts verifiable (per-brick sha256). Deleted volumes keep a
// tombstone manifest so a later re-create continues the generation
// sequence instead of restarting at 1.
type Manifest struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Layout  string `json:"layout"`
	Dtype   string `json:"dtype"`
	Nx      int    `json:"nx"`
	Ny      int    `json:"ny"`
	Nz      int    `json:"nz"`
	// Elems is the backing-slice length (Layout.Len()), including any
	// layout padding — the cross-check that the layout geometry this
	// process reconstructs matches the one that wrote the bricks.
	Elems int64 `json:"elems"`
	// BrickElems is the number of samples per brick (the last brick
	// may be shorter). Zero is only valid for tombstones.
	BrickElems int         `json:"brick_elems"`
	Gen        uint64      `json:"gen"`
	FilterKey  string      `json:"filter_key,omitempty"`
	Deleted    bool        `json:"deleted,omitempty"`
	Bricks     []BrickInfo `json:"bricks,omitempty"`
}

// EncodeManifest renders m as JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses and validates a manifest. Validation covers
// structural sanity only (version, extents, dtype, brick geometry,
// hash shape); sample integrity is per-brick at read time.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("volume: manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("volume: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Name == "" {
		return nil, fmt.Errorf("volume: manifest has no name")
	}
	if _, err := grid.ParseDtype(m.Dtype); err != nil {
		return nil, fmt.Errorf("volume: manifest: %w", err)
	}
	if m.Nx < 1 || m.Ny < 1 || m.Nz < 1 {
		return nil, fmt.Errorf("volume: manifest extents %dx%dx%d invalid", m.Nx, m.Ny, m.Nz)
	}
	if m.Elems < int64(m.Nx)*int64(m.Ny)*int64(m.Nz) {
		return nil, fmt.Errorf("volume: manifest elems %d below extents %dx%dx%d", m.Elems, m.Nx, m.Ny, m.Nz)
	}
	if m.Deleted {
		// Tombstone: only the name and generation matter.
		return &m, nil
	}
	if m.BrickElems < 1 {
		return nil, fmt.Errorf("volume: manifest brick_elems %d invalid", m.BrickElems)
	}
	want := int((m.Elems + int64(m.BrickElems) - 1) / int64(m.BrickElems))
	if len(m.Bricks) != want {
		return nil, fmt.Errorf("volume: manifest has %d bricks, want %d (%d elems / %d per brick)",
			len(m.Bricks), want, m.Elems, m.BrickElems)
	}
	dt, _ := grid.ParseDtype(m.Dtype)
	es := int64(dt.Size())
	var total int64
	for i, bi := range m.Bricks {
		if bi.Bytes < 1 {
			return nil, fmt.Errorf("volume: manifest brick %d has %d bytes", i, bi.Bytes)
		}
		if bi.Bytes%es != 0 {
			return nil, fmt.Errorf("volume: manifest brick %d: %d bytes not a multiple of %d-byte %s samples",
				i, bi.Bytes, es, m.Dtype)
		}
		if h, err := hex.DecodeString(bi.SHA256); err != nil || len(h) != sha256.Size {
			return nil, fmt.Errorf("volume: manifest brick %d: malformed sha256 %q", i, bi.SHA256)
		}
		total += bi.Bytes
	}
	if total != m.Elems*es {
		return nil, fmt.Errorf("volume: manifest bricks hold %d bytes, want %d (%d × %d-byte %s samples)",
			total, m.Elems*es, m.Elems, es, m.Dtype)
	}
	return &m, nil
}

// ManifestFile is the manifest's name inside a volume directory.
const ManifestFile = "manifest.json"

// WriteManifestFile persists m atomically (temp file + rename), making
// the manifest the commit point of a brick write: a crash mid-write
// leaves either the old manifest (old bricks verify) or the new one
// (new bricks verify), never a manifest describing half-written data.
func WriteManifestFile(path string, m *Manifest) error {
	b, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifestFile loads and validates a manifest.
func ReadManifestFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Brick file header. 18 bytes, little-endian:
//
//	offset 0  magic "SFCB"
//	offset 4  format version (1)
//	offset 5  dtype tag (grid.Dtype)
//	offset 6  brick index, uint32
//	offset 10 payload length in bytes, uint64
const (
	brickMagic     = "SFCB"
	brickVersion   = 1
	BrickHeaderLen = 18
)

// BrickHeader is the decoded form of a brick file's fixed prefix.
type BrickHeader struct {
	Dtype      grid.Dtype
	Index      uint32
	PayloadLen uint64
}

// EncodeBrickHeader renders h into its 18-byte wire form.
func EncodeBrickHeader(h BrickHeader) [BrickHeaderLen]byte {
	var b [BrickHeaderLen]byte
	copy(b[:4], brickMagic)
	b[4] = brickVersion
	b[5] = byte(h.Dtype)
	binary.LittleEndian.PutUint32(b[6:10], h.Index)
	binary.LittleEndian.PutUint64(b[10:18], h.PayloadLen)
	return b
}

// DecodeBrickHeader parses a brick file's fixed prefix.
func DecodeBrickHeader(b []byte) (BrickHeader, error) {
	if len(b) < BrickHeaderLen {
		return BrickHeader{}, fmt.Errorf("volume: brick header truncated: %d bytes, want %d", len(b), BrickHeaderLen)
	}
	if string(b[:4]) != brickMagic {
		return BrickHeader{}, fmt.Errorf("volume: bad brick magic %q", b[:4])
	}
	if b[4] != brickVersion {
		return BrickHeader{}, fmt.Errorf("volume: brick version %d, want %d", b[4], brickVersion)
	}
	dt := grid.Dtype(b[5])
	if dt.Size() == 0 {
		return BrickHeader{}, fmt.Errorf("volume: brick has unknown dtype tag %d", b[5])
	}
	return BrickHeader{
		Dtype:      dt,
		Index:      binary.LittleEndian.Uint32(b[6:10]),
		PayloadLen: binary.LittleEndian.Uint64(b[10:18]),
	}, nil
}

// BrickFileName returns brick i's file name inside a volume directory.
func BrickFileName(i int) string { return fmt.Sprintf("%05d.sfcb", i) }

// encodeElems serializes src into dst as little-endian bytes. The type
// switch runs once per call; each arm's loop is monomorphized. uint8 is
// a straight copy — on disk and in memory it is the same byte stream.
func encodeElems[T grid.Scalar](dst []byte, src []T) {
	switch s := any(src).(type) {
	case []uint8:
		copy(dst, s)
	case []uint16:
		for i, v := range s {
			binary.LittleEndian.PutUint16(dst[2*i:], v)
		}
	case []float32:
		for i, v := range s {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
		}
	case []float64:
		for i, v := range s {
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
		}
	}
}

// decodeElems deserializes little-endian src bytes into dst.
func decodeElems[T grid.Scalar](dst []T, src []byte) {
	switch d := any(dst).(type) {
	case []uint8:
		copy(d, src)
	case []uint16:
		for i := range d {
			d[i] = binary.LittleEndian.Uint16(src[2*i:])
		}
	case []float32:
		for i := range d {
			d[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
	case []float64:
		for i := range d {
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	}
}

// WriteBricks persists data — a grid's backing slice, already in curve
// order — under dir as brick files of brickElems samples each (the
// last brick takes the remainder). Each brick is written to a temp
// file and renamed into place; the caller commits the set by writing
// the manifest afterwards. Returns the per-brick sizes and digests for
// that manifest.
func WriteBricks[T grid.Scalar](dir string, data []T, brickElems int) ([]BrickInfo, error) {
	if brickElems < 1 {
		return nil, fmt.Errorf("volume: brick size %d elems invalid", brickElems)
	}
	dt := grid.DtypeFor[T]()
	es := dt.Size()
	buf := make([]byte, BrickHeaderLen+brickElems*es)
	n := (len(data) + brickElems - 1) / brickElems
	infos := make([]BrickInfo, 0, n)
	for i := 0; i < n; i++ {
		chunk := data[i*brickElems : min((i+1)*brickElems, len(data))]
		payload := buf[BrickHeaderLen : BrickHeaderLen+len(chunk)*es]
		hdr := EncodeBrickHeader(BrickHeader{Dtype: dt, Index: uint32(i), PayloadLen: uint64(len(payload))})
		copy(buf[:BrickHeaderLen], hdr[:])
		encodeElems(payload, chunk)
		sum := sha256.Sum256(payload)
		path := filepath.Join(dir, BrickFileName(i))
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, buf[:BrickHeaderLen+len(payload)], 0o644); err != nil {
			return nil, fmt.Errorf("volume: writing brick %d: %w", i, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return nil, fmt.Errorf("volume: committing brick %d: %w", i, err)
		}
		infos = append(infos, BrickInfo{Bytes: int64(len(payload)), SHA256: hex.EncodeToString(sum[:])})
	}
	return infos, nil
}

// ReadBricksInto loads m's bricks from dir into dst, which must be the
// reconstructed layout's backing slice (len == m.Elems). Every brick's
// header is cross-checked against the manifest and its payload hashed;
// any mismatch — truncation, bit rot, a stale file from another
// generation — fails with the offending file named, before a single
// decoded sample is observable as grid data... dst may hold partially
// decoded bytes on error, so callers must discard it then.
func ReadBricksInto[T grid.Scalar](dir string, m *Manifest, dst []T) error {
	dt := grid.DtypeFor[T]()
	es := dt.Size()
	if int64(len(dst)) != m.Elems {
		return fmt.Errorf("volume: destination holds %d elems, manifest %d", len(dst), m.Elems)
	}
	off := 0
	for i, bi := range m.Bricks {
		path := filepath.Join(dir, BrickFileName(i))
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("volume: reading brick %d: %w", i, err)
		}
		hdr, err := DecodeBrickHeader(b)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		payload := b[BrickHeaderLen:]
		switch {
		case hdr.Dtype != dt:
			return fmt.Errorf("%s: brick dtype %s, manifest %s", path, hdr.Dtype, dt)
		case hdr.Index != uint32(i):
			return fmt.Errorf("%s: brick index %d, want %d", path, hdr.Index, i)
		case int64(hdr.PayloadLen) != bi.Bytes || int64(len(payload)) != bi.Bytes:
			return fmt.Errorf("%s: brick payload %d bytes (header %d), manifest %d", path, len(payload), hdr.PayloadLen, bi.Bytes)
		}
		sum := sha256.Sum256(payload)
		if got := hex.EncodeToString(sum[:]); got != bi.SHA256 {
			return fmt.Errorf("%s: brick sha256 %s does not match manifest %s (corrupted or partially written)", path, got, bi.SHA256)
		}
		elems := int(bi.Bytes) / es
		decodeElems(dst[off:off+elems], payload)
		off += elems
	}
	if int64(off) != m.Elems {
		return fmt.Errorf("volume: bricks decoded %d elems, manifest %d", off, m.Elems)
	}
	return nil
}

// RemoveBricksFrom deletes brick files with index >= from in dir —
// the stale tail left behind when a volume shrinks across generations
// (fewer bricks than its predecessor). Missing files are fine.
func RemoveBricksFrom(dir string, from int) error {
	for i := from; ; i++ {
		path := filepath.Join(dir, BrickFileName(i))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
	}
}
