package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

// Raw volume I/O: the interchange format of the paper's datasets (and
// most scientific-visualization corpora) is a headerless stream of
// little-endian 4-byte floats in row-major order. SaveRaw/LoadRaw read
// and write that format regardless of the in-memory layout, so users can
// drop in a real MRI or simulation volume in place of the synthetic
// stand-ins.

// SaveRaw writes g as little-endian float32 in row-major (x fastest)
// order, whatever g's in-memory layout is.
func SaveRaw(w io.Writer, g *grid.Grid) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	nx, ny, nz := g.Dims()
	var buf [4]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				bits := floatBits(g.At(i, j, k))
				binary.LittleEndian.PutUint32(buf[:], bits)
				if _, err := bw.Write(buf[:]); err != nil {
					return fmt.Errorf("volume: writing raw: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// LoadRaw reads an nx×ny×nz little-endian float32 row-major volume into
// a grid under the given layout. It fails if the stream ends early and
// reports an error if trailing bytes remain (size mismatch).
func LoadRaw(r io.Reader, l core.Layout) (*grid.Grid, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	g := grid.New(l)
	nx, ny, nz := l.Dims()
	var buf [4]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, fmt.Errorf("volume: raw stream truncated at (%d,%d,%d): %w", i, j, k, err)
				}
				g.Set(i, j, k, floatFromBits(binary.LittleEndian.Uint32(buf[:])))
			}
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("volume: raw stream has trailing bytes (extents mismatch?)")
	}
	return g, nil
}

// SaveRawFile writes g to a file via SaveRaw.
func SaveRawFile(path string, g *grid.Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveRaw(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRawFile reads a raw volume file via LoadRaw.
func LoadRawFile(path string, l core.Layout) (*grid.Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRaw(f, l)
}

func floatBits(f float32) uint32     { return math.Float32bits(f) }
func floatFromBits(b uint32) float32 { return math.Float32frombits(b) }
