package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
)

// Raw volume I/O: the interchange format of the paper's datasets (and
// most scientific-visualization corpora) is a headerless stream of
// little-endian samples in row-major order. The element type is part
// of the filename convention, not the stream, so the caller picks the
// dtype: SaveRawOf/LoadRawOf move any grid.Scalar element width, and
// the plain SaveRaw/LoadRaw keep the original float32 signatures.
// Loads are strict about size: a short stream and a long stream are
// both rejected with the expected and actual byte counts, because a
// silent mismatch usually means wrong extents or wrong dtype.

// rawBytes returns the exact byte size of an nx×ny×nz raw stream of
// the given dtype.
func rawBytes(nx, ny, nz, elemSize int) int64 {
	return int64(nx) * int64(ny) * int64(nz) * int64(elemSize)
}

// SaveRawOf writes g as little-endian samples of g's element type in
// row-major (x fastest) order, whatever g's in-memory layout is.
func SaveRawOf[T grid.Scalar](w io.Writer, g *grid.Grid[T]) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	nx, ny, nz := g.Dims()
	dt := grid.DtypeFor[T]()
	es := dt.Size()
	var buf [8]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := g.At(i, j, k)
				// dt is fixed by T, so exactly one arm ever runs and its
				// conversion is the identity-width one.
				switch dt {
				case grid.U8:
					buf[0] = uint8(v)
				case grid.U16:
					binary.LittleEndian.PutUint16(buf[:2], uint16(v))
				case grid.F32:
					binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(float32(v)))
				default:
					binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(float64(v)))
				}
				if _, err := bw.Write(buf[:es]); err != nil {
					return fmt.Errorf("volume: writing raw: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// SaveRaw writes g as little-endian float32 in row-major (x fastest)
// order, whatever g's in-memory layout is.
func SaveRaw(w io.Writer, g *grid.Grid[float32]) error { return SaveRawOf(w, g) }

// LoadRawOf reads an nx×ny×nz little-endian row-major volume of T
// samples into a grid under the given layout. Both truncated and
// oversized streams are rejected, with the error naming the expected
// and actual byte counts.
func LoadRawOf[T grid.Scalar](r io.Reader, l core.Layout) (*grid.Grid[T], error) {
	br := bufio.NewReaderSize(r, 1<<16)
	g := grid.NewOf[T](l)
	nx, ny, nz := l.Dims()
	dt := grid.DtypeFor[T]()
	es := dt.Size()
	want := rawBytes(nx, ny, nz, es)
	var got int64
	var buf [8]byte
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				n, err := io.ReadFull(br, buf[:es])
				got += int64(n)
				if err != nil {
					return nil, fmt.Errorf("volume: raw %s stream truncated at (%d,%d,%d): got %d bytes, want %d (%dx%dx%d × %d-byte samples): %w",
						dt, i, j, k, got, want, nx, ny, nz, es, err)
				}
				var v T
				switch dt {
				case grid.U8:
					v = T(buf[0])
				case grid.U16:
					v = T(binary.LittleEndian.Uint16(buf[:2]))
				case grid.F32:
					v = T(math.Float32frombits(binary.LittleEndian.Uint32(buf[:4])))
				default:
					v = T(math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])))
				}
				g.Set(i, j, k, v)
			}
		}
	}
	extra, err := io.Copy(io.Discard, br)
	if err != nil {
		return nil, fmt.Errorf("volume: reading raw: %w", err)
	}
	if extra > 0 {
		return nil, fmt.Errorf("volume: raw %s stream oversized: got %d bytes, want %d (%dx%dx%d × %d-byte samples; extents or dtype mismatch?)",
			dt, want+extra, want, nx, ny, nz, es)
	}
	return g, nil
}

// LoadRaw reads an nx×ny×nz little-endian float32 row-major volume into
// a grid under the given layout.
func LoadRaw(r io.Reader, l core.Layout) (*grid.Grid[float32], error) {
	return LoadRawOf[float32](r, l)
}

// SaveRawFileOf writes g to a file via SaveRawOf.
func SaveRawFileOf[T grid.Scalar](path string, g *grid.Grid[T]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveRawOf(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SaveRawFile writes g to a file via SaveRaw.
func SaveRawFile(path string, g *grid.Grid[float32]) error { return SaveRawFileOf(path, g) }

// LoadRawFileOf reads a raw volume file via LoadRawOf.
func LoadRawFileOf[T grid.Scalar](path string, l core.Layout) (*grid.Grid[T], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadRawOf[T](f, l)
}

// LoadRawFile reads a raw volume file via LoadRaw.
func LoadRawFile(path string, l core.Layout) (*grid.Grid[float32], error) {
	return LoadRawFileOf[float32](path, l)
}
