package volume

// ValueNoise evaluates smooth lattice value noise at a continuous
// position: trilinear interpolation of hashed lattice values with a
// smoothstep fade, giving band-limited structure without any stored
// tables.
func ValueNoise(x, y, z float64, seed uint64) float32 {
	xi, yi, zi := floorInt(x), floorInt(y), floorInt(z)
	fx := smooth(x - float64(xi))
	fy := smooth(y - float64(yi))
	fz := smooth(z - float64(zi))

	c000 := hash3(xi, yi, zi, seed)
	c100 := hash3(xi+1, yi, zi, seed)
	c010 := hash3(xi, yi+1, zi, seed)
	c110 := hash3(xi+1, yi+1, zi, seed)
	c001 := hash3(xi, yi, zi+1, seed)
	c101 := hash3(xi+1, yi, zi+1, seed)
	c011 := hash3(xi, yi+1, zi+1, seed)
	c111 := hash3(xi+1, yi+1, zi+1, seed)

	c00 := lerp(c000, c100, fx)
	c10 := lerp(c010, c110, fx)
	c01 := lerp(c001, c101, fx)
	c11 := lerp(c011, c111, fx)
	c0 := lerp(c00, c10, fy)
	c1 := lerp(c01, c11, fy)
	return lerp(c0, c1, fz)
}

// FBM sums octaves of ValueNoise with persistence 0.5, producing the
// multi-scale "turbulence" look used by the combustion plume. The result
// stays in [0,1).
func FBM(x, y, z float64, octaves int, seed uint64) float32 {
	var sum, norm float32
	amp := float32(1)
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * ValueNoise(x*freq, y*freq, z*freq, seed+uint64(o)*0x9e37)
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	return sum / norm
}

func floorInt(v float64) int {
	i := int(v)
	if float64(i) > v {
		i--
	}
	return i
}

func lerp(a, b, t float32) float32 { return a + (b-a)*t }

func smooth(t float64) float32 {
	return float32(t * t * (3 - 2*t))
}
