package core

import "math"

// StrideStats summarizes the physical-memory distance (in elements)
// between consecutive accesses for a given access direction. It
// quantifies the paper's Fig. 1 intuition: under array order, rays (or
// loops) aligned with the fastest-varying axis touch adjacent memory,
// while against-the-grain directions jump by nx or nx*ny elements; under
// Z order no direction is catastrophically misaligned.
type StrideStats struct {
	Mean   float64 // mean |Δoffset| per unit step
	Max    int     // largest single jump observed
	Within float64 // fraction of steps staying within one 64-byte line (float32 elems)
	Steps  int     // number of steps measured
}

// elemsPerLine is how many float32 elements share a 64-byte cache line.
const elemsPerLine = 16

// AxisStride measures stride statistics for unit steps along the given
// axis (0=x, 1=y, 2=z) over the whole grid.
func AxisStride(l Layout, axis int) StrideStats {
	nx, ny, nz := l.Dims()
	di, dj, dk := 0, 0, 0
	switch axis {
	case 0:
		di = 1
	case 1:
		dj = 1
	case 2:
		dk = 1
	default:
		panic("core: axis must be 0, 1, or 2")
	}
	var s StrideStats
	var sum float64
	for k := 0; k+dk < nz; k++ {
		for j := 0; j+dj < ny; j++ {
			for i := 0; i+di < nx; i++ {
				a := l.Index(i, j, k)
				b := l.Index(i+di, j+dj, k+dk)
				d := b - a
				if d < 0 {
					d = -d
				}
				sum += float64(d)
				if d > s.Max {
					s.Max = d
				}
				if a/elemsPerLine == b/elemsPerLine {
					s.Within++
				}
				s.Steps++
			}
		}
	}
	if s.Steps > 0 {
		s.Mean = sum / float64(s.Steps)
		s.Within /= float64(s.Steps)
	}
	return s
}

// RayStride measures stride statistics along a straight ray of direction
// (dx,dy,dz) sampled at unit parametric steps from every point of the
// entry face, mimicking the volume renderer's per-ray access pattern.
// The direction is normalized internally; rays start at grid corners
// spread across the x=0 face (for dx-dominant directions this is the
// favorable case; callers rotate the direction to probe misalignment).
func RayStride(l Layout, dx, dy, dz float64) StrideStats {
	nx, ny, nz := l.Dims()
	n := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if n == 0 {
		panic("core: ray direction must be nonzero")
	}
	dx, dy, dz = dx/n, dy/n, dz/n
	var s StrideStats
	var sum float64
	// March from a lattice of start points spread over a plane
	// perpendicular to the ray, positioned outside the volume so every
	// direction (including negative ones) enters and crosses it.
	const starts = 8
	cx, cy, cz := float64(nx)/2, float64(ny)/2, float64(nz)/2
	diag := math.Sqrt(float64(nx*nx + ny*ny + nz*nz))
	// Orthonormal frame (dx,dy,dz), u, v.
	ux, uy, uz := -dy, dx, 0.0
	if dx*dx+dy*dy < 1e-12 {
		ux, uy, uz = 1, 0, 0
	}
	un := math.Sqrt(ux*ux + uy*uy + uz*uz)
	ux, uy, uz = ux/un, uy/un, uz/un
	vx := dy*uz - dz*uy
	vy := dz*ux - dx*uz
	vz := dx*uy - dy*ux
	for sj := 0; sj < starts; sj++ {
		for sk := 0; sk < starts; sk++ {
			a := (float64(sj)/starts - 0.5) * float64(ny) * 0.8
			b := (float64(sk)/starts - 0.5) * float64(nz) * 0.8
			x := cx + a*ux + b*vx - dx*diag
			y := cy + a*uy + b*vy - dy*diag
			z := cz + a*uz + b*vz - dz*diag
			prev := -1
			for step := 0.0; step < 2*diag; step++ {
				i := int(math.Floor(x))
				j := int(math.Floor(y))
				k := int(math.Floor(z))
				if i < 0 || i >= nx || j < 0 || j >= ny || k < 0 || k >= nz {
					x += dx
					y += dy
					z += dz
					if prev >= 0 {
						break // already crossed and exited the volume
					}
					continue
				}
				cur := l.Index(i, j, k)
				if prev >= 0 && cur != prev {
					d := cur - prev
					if d < 0 {
						d = -d
					}
					sum += float64(d)
					if d > s.Max {
						s.Max = d
					}
					if cur/elemsPerLine == prev/elemsPerLine {
						s.Within++
					}
					s.Steps++
				}
				prev = cur
				x += dx
				y += dy
				z += dz
			}
		}
	}
	if s.Steps > 0 {
		s.Mean = sum / float64(s.Steps)
		s.Within /= float64(s.Steps)
	}
	return s
}
