package core

import "testing"

func TestZTiledStructure(t *testing.T) {
	zt := NewZTiled(32, 32, 32, 16)
	// Inside the first brick, indices are pure Morton codes.
	if zt.Index(0, 0, 0) != 0 || zt.Index(1, 0, 0) != 1 || zt.Index(0, 1, 0) != 2 || zt.Index(0, 0, 1) != 4 {
		t.Errorf("intra-brick Morton broken: %d %d %d %d",
			zt.Index(0, 0, 0), zt.Index(1, 0, 0), zt.Index(0, 1, 0), zt.Index(0, 0, 1))
	}
	// (16,0,0) starts the second brick: offset 16³.
	if got := zt.Index(16, 0, 0); got != 16*16*16 {
		t.Errorf("second brick base %d, want %d", got, 16*16*16)
	}
	if zt.Brick() != 16 {
		t.Errorf("Brick=%d", zt.Brick())
	}
	// Power-of-two cube: no padding at all.
	if zt.Len() != 32*32*32 {
		t.Errorf("Len=%d", zt.Len())
	}
	if zt.Overhead() != 0 {
		t.Errorf("Overhead=%v", zt.Overhead())
	}
}

func TestZTiledBeatsZOrderPadding(t *testing.T) {
	// The §V pathology: 513³ under pure Z order pads toward 1024³ index
	// space; ZTiled pads one partial brick per axis.
	const n = 65 // stand-in for 513 at test scale: 2^6+1
	z := NewZOrder(n, n, n)
	zt := NewZTiled(n, n, n, 16)
	if zt.Overhead() >= z.Overhead() {
		t.Errorf("ztiled overhead %.3f not below zorder %.3f", zt.Overhead(), z.Overhead())
	}
	// 65³ pads to 80³: (80/65)³-1 ≈ 0.864. At the paper's 513³ scale the
	// same construction costs only ~9% (528³/513³ - 1).
	if d := zt.Overhead() - 0.864; d < -0.01 || d > 0.01 {
		t.Errorf("ztiled overhead %.3f, want ≈0.864", zt.Overhead())
	}
	big := NewZTiled(513, 513, 513, 16)
	if big.Overhead() > 0.1 {
		t.Errorf("513³ ztiled overhead %.3f, want < 0.1", big.Overhead())
	}
}

func TestZTiledLocalityNearZOrder(t *testing.T) {
	// Within-brick Morton indexing must keep the worst-axis stride far
	// below array order's.
	const n = 32
	zt := NewZTiled(n, n, n, 16)
	a := NewArrayOrder(n, n, n)
	var ztWorst, aWorst float64
	for axis := 0; axis < 3; axis++ {
		if m := AxisStride(zt, axis).Mean; m > ztWorst {
			ztWorst = m
		}
		if m := AxisStride(a, axis).Mean; m > aWorst {
			aWorst = m
		}
	}
	if ztWorst >= aWorst {
		t.Errorf("ztiled worst stride %v not below array %v", ztWorst, aWorst)
	}
}

func TestZTiledPanicsOnBadBrick(t *testing.T) {
	for _, bad := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("brick %d accepted", bad)
				}
			}()
			NewZTiled(8, 8, 8, bad)
		}()
	}
}

func TestZTiledParseAndRegistry(t *testing.T) {
	k, err := ParseKind("ztiled")
	if err != nil || k != ZTiledKind {
		t.Fatalf("ParseKind: %v, %v", k, err)
	}
	l := New(ZTiledKind, 20, 20, 20)
	if l.Name() != "ztiled" {
		t.Errorf("Name=%q", l.Name())
	}
}

func BenchmarkIndexZTiled(b *testing.B) {
	l := NewZTiled(512, 512, 512, DefaultBrick)
	benchIndex(b, l)
}

func TestHZOrderBijective(t *testing.T) {
	h := NewHZOrder(8, 8, 8)
	seen := make(map[int]bool, 512)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				idx := h.Index(i, j, k)
				if idx < 0 || idx >= h.Len() {
					t.Fatalf("Index(%d,%d,%d)=%d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
				ii, jj, kk, ok := h.Coords(idx)
				if !ok || ii != i || jj != j || kk != k {
					t.Fatalf("Coords(%d) = (%d,%d,%d,%v), want (%d,%d,%d)", idx, ii, jj, kk, ok, i, j, k)
				}
			}
		}
	}
	if len(seen) != 512 {
		t.Fatalf("covered %d of 512", len(seen))
	}
}

// The defining HZ property: the level-L lattice fills exactly the first
// LevelPrefix(L) buffer slots.
func TestHZOrderLevelPrefixContiguous(t *testing.T) {
	const n = 16
	h := NewHZOrder(n, n, n)
	for level := 0; level <= 4; level++ {
		prefix := h.LevelPrefix(level)
		s := 1 << level
		if s > n {
			s = n
		}
		lattice := make(map[int]bool)
		maxIdx := -1
		for k := 0; k < n; k += s {
			for j := 0; j < n; j += s {
				for i := 0; i < n; i += s {
					idx := h.Index(i, j, k)
					lattice[idx] = true
					if idx > maxIdx {
						maxIdx = idx
					}
				}
			}
		}
		if level <= 4 && maxIdx >= prefix {
			t.Errorf("level %d: lattice max index %d outside prefix %d", level, maxIdx, prefix)
		}
		// And the prefix holds nothing but the lattice (for levels within
		// range): prefix size equals lattice size.
		if 1<<level <= n && len(lattice) != prefix {
			t.Errorf("level %d: lattice size %d != prefix %d", level, len(lattice), prefix)
		}
	}
}

func TestHZOrderOrigin(t *testing.T) {
	h := NewHZOrder(8, 8, 8)
	if h.Index(0, 0, 0) != 0 {
		t.Errorf("origin index %d", h.Index(0, 0, 0))
	}
	i, j, k, ok := h.Coords(0)
	if !ok || i != 0 || j != 0 || k != 0 {
		t.Errorf("Coords(0) = %d,%d,%d,%v", i, j, k, ok)
	}
}

func TestHZOrderLevelPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative level accepted")
		}
	}()
	NewHZOrder(8, 8, 8).LevelPrefix(-1)
}
