package core

// Separable is implemented by layouts whose index decomposes into a sum
// of independent per-axis contributions:
//
//	Index(i,j,k) == xs[i] + ys[j] + zs[k]
//
// for three tables returned by AxisOffsets. Array order is separable by
// construction (i + j*nx + k*nx*ny); Z order is separable because the
// dilated per-axis Morton contributions occupy disjoint bit lanes, so
// their OR equals their sum; Tiled and ZTiled are separable because both
// the brick-base and the intra-brick contribution of each coordinate
// depend on that coordinate alone. Hilbert and hierarchical Z order are
// NOT separable — Hilbert has cross-coordinate bit dependencies, and the
// HZ transform depends on the trailing zeros of the full Morton code.
//
// Separability is what the kernels' flat-access fast path builds on: a
// pencil or tile loop resolves the layout once, grabs the three tables,
// and then every voxel access is table loads plus integer adds on a raw
// buffer — no interface dispatch — while keeping the per-access index
// cost identical in form across layouts (the paper's equal-footing
// requirement; see DESIGN.md §7).
type Separable interface {
	Layout
	// AxisOffsets returns the per-axis contribution tables. The slices
	// are the layout's own (len nx, ny, nz) and must not be modified.
	AxisOffsets() (xs, ys, zs []int)
}

// Compile-time checks: the four table-driven layouts are separable.
var (
	_ Separable = (*ArrayOrder)(nil)
	_ Separable = (*ZOrder)(nil)
	_ Separable = (*Tiled)(nil)
	_ Separable = (*ZTiled)(nil)
)

// AxisOffsets returns (identity, yoffset, zoffset): the row-major index
// is i + j*nx + k*nx*ny.
func (a *ArrayOrder) AxisOffsets() (xs, ys, zs []int) { return a.xoffset, a.yoffset, a.zoffset }

// Strides returns the constant per-axis index strides (1, nx, nx*ny):
// array order is the one layout where a unit step is the same integer
// add everywhere, which is what the flat fast path's stride-delta
// arithmetic degenerates to.
func (a *ArrayOrder) Strides() (sx, sy, sz int) { return 1, a.nx, a.nx * a.ny }

// AxisOffsets returns the dilated per-axis Morton tables as ints. The
// three tables occupy disjoint bit lanes (bits 3n, 3n+1, 3n+2), so
// summing them equals ORing them.
func (z *ZOrder) AxisOffsets() (xs, ys, zs []int) { return z.xi, z.yi, z.zi }

// AxisOffsets returns per-axis tables combining each coordinate's brick
// base and intra-brick offset (xb[i]+xr[i], ...): both depend only on
// their own coordinate, so the tiled index is their plain sum.
func (t *Tiled) AxisOffsets() (xs, ys, zs []int) { return t.xoff, t.yoff, t.zoff }

// AxisOffsets returns per-axis tables combining each coordinate's brick
// base and dilated intra-brick Morton contribution (xb[i]+xm[i], ...).
// The Morton parts occupy disjoint bit lanes below the brick volume, so
// the sum of the three tables equals the layout's base+OR index.
func (t *ZTiled) AxisOffsets() (xs, ys, zs []int) { return t.xoff, t.yoff, t.zoff }

// sumAxes builds the combined per-axis table a + b (used by Tiled and
// ZTiled constructors to precompute AxisOffsets tables once).
func sumAxes(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
