package core

import (
	"strings"
	"testing"
)

// TestBitLayoutReproducesZOrder pins the search space's anchor point:
// the round-robin interleave on a cubic power-of-two grid is exactly Z
// order, cell for cell, so the autotuner's population always contains
// the paper's layout as one individual.
func TestBitLayoutReproducesZOrder(t *testing.T) {
	const n = 16
	z := NewZOrder(n, n, n)
	b, err := NewBitLayout(n, n, n, RoundRobinSpec(n, n, n))
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	if b.Len() != z.Len() {
		t.Fatalf("Len = %d, zorder %d", b.Len(), z.Len())
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if b.Index(i, j, k) != z.Index(i, j, k) {
					t.Fatalf("Index(%d,%d,%d) = %d, zorder %d", i, j, k, b.Index(i, j, k), z.Index(i, j, k))
				}
			}
		}
	}
}

// TestBitLayoutReproducesRowMajor pins the other extreme: all-x-bits-
// first is row-major on power-of-two extents. Between these two anchors
// lies every tiled hybrid the tuner can discover.
func TestBitLayoutReproducesRowMajor(t *testing.T) {
	a := NewArrayOrder(8, 4, 2)
	b, err := NewBitLayout(8, 4, 2, "xxxyyz")
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	if b.Len() != a.Len() {
		t.Fatalf("Len = %d, array %d", b.Len(), a.Len())
	}
	for k := 0; k < 2; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 8; i++ {
				if b.Index(i, j, k) != a.Index(i, j, k) {
					t.Fatalf("Index(%d,%d,%d) = %d, array %d", i, j, k, b.Index(i, j, k), a.Index(i, j, k))
				}
			}
		}
	}
}

// TestBitLayoutInjective exhaustively checks injectivity, bounds and
// inversion on a non-power-of-two grid under an irregular interleave —
// the padding-heavy case where a bad deposit table would first overlap.
func TestBitLayoutInjective(t *testing.T) {
	b, err := NewBitLayout(5, 7, 3, "yxzxyzyx") // x: bits 1,3,7; y: 0,4,6; z: 2,5
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	seen := make(map[int][3]int)
	for k := 0; k < 3; k++ {
		for j := 0; j < 7; j++ {
			for i := 0; i < 5; i++ {
				idx := b.Index(i, j, k)
				if idx < 0 || idx >= b.Len() {
					t.Fatalf("Index(%d,%d,%d) = %d outside [0,%d)", i, j, k, idx, b.Len())
				}
				if prev, dup := seen[idx]; dup {
					t.Fatalf("Index collision at %d: (%d,%d,%d) and %v", idx, i, j, k, prev)
				}
				seen[idx] = [3]int{i, j, k}
				gi, gj, gk, ok := b.Coords(idx)
				if !ok || gi != i || gj != j || gk != k {
					t.Fatalf("Coords(%d) = (%d,%d,%d,%v), want (%d,%d,%d)", idx, gi, gj, gk, ok, i, j, k)
				}
			}
		}
	}
	// Every unclaimed offset must report itself as padding.
	for idx := 0; idx < b.Len(); idx++ {
		if _, live := seen[idx]; live {
			continue
		}
		if _, _, _, ok := b.Coords(idx); ok {
			t.Fatalf("Coords(%d) claims a cell in padding", idx)
		}
	}
}

// TestBitLayoutSteppers walks every cell of a padded grid under an
// irregular interleave: each masked step must agree with Index, exactly
// as the ZOrder and ZTiled stepper tests require.
func TestBitLayoutSteppers(t *testing.T) {
	b, err := NewBitLayout(12, 9, 5, "zxyxzyxyzxyx") // surplus x occurrence included
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	for k := 0; k < 5; k++ {
		for j := 0; j < 9; j++ {
			for i := 0; i < 12; i++ {
				idx := b.Index(i, j, k)
				if i+1 < 12 && b.StepX(idx) != b.Index(i+1, j, k) {
					t.Fatalf("StepX broken at (%d,%d,%d)", i, j, k)
				}
				if j+1 < 9 && b.StepY(idx) != b.Index(i, j+1, k) {
					t.Fatalf("StepY broken at (%d,%d,%d)", i, j, k)
				}
				if k+1 < 5 && b.StepZ(idx) != b.Index(i, j, k+1) {
					t.Fatalf("StepZ broken at (%d,%d,%d)", i, j, k)
				}
				if i > 0 && b.BackX(idx) != b.Index(i-1, j, k) {
					t.Fatalf("BackX broken at (%d,%d,%d)", i, j, k)
				}
				if j > 0 && b.BackY(idx) != b.Index(i, j-1, k) {
					t.Fatalf("BackY broken at (%d,%d,%d)", i, j, k)
				}
				if k > 0 && b.BackZ(idx) != b.Index(i, j, k-1) {
					t.Fatalf("BackZ broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestBitLayoutTrySteppersRefuse pins the checked walkers' edge
// behavior at logical extents interior to the padded index space — the
// same hazard the ZOrder Try forms guard.
func TestBitLayoutTrySteppersRefuse(t *testing.T) {
	b, err := NewBitLayout(5, 6, 7, RoundRobinSpec(5, 6, 7))
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	edge := b.Index(4, 5, 6)
	if _, ok := b.TryStepX(edge); ok {
		t.Error("TryStepX stepped into x padding")
	}
	if _, ok := b.TryStepY(edge); ok {
		t.Error("TryStepY stepped into y padding")
	}
	if _, ok := b.TryStepZ(edge); ok {
		t.Error("TryStepZ stepped into z padding")
	}
	if got, ok := b.TryBackX(edge); !ok || got != b.Index(3, 5, 6) {
		t.Errorf("TryBackX = %d, %v", got, ok)
	}
	origin := b.Index(0, 0, 0)
	if _, ok := b.TryBackX(origin); ok {
		t.Error("TryBackX stepped below zero")
	}
	if _, ok := b.TryBackY(origin); ok {
		t.Error("TryBackY stepped below zero")
	}
	if _, ok := b.TryBackZ(origin); ok {
		t.Error("TryBackZ stepped below zero")
	}
	if got, ok := b.TryStepX(origin); !ok || got != b.Index(1, 0, 0) {
		t.Errorf("TryStepX(origin) = %d, %v", got, ok)
	}
}

// TestBitLayoutValidation enumerates the rejection cases; the messages
// travel to HTTP clients and manifest-load errors, so they must name
// the problem.
func TestBitLayoutValidation(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty"},
		{"xyw", `position 2 is 'w'`},
		{"xyzxy", "2 x bits cannot address extent 8 (need 3)"},
		{strings.Repeat("xyz", 22), "exceed the 63-bit index budget"},
	}
	for _, c := range cases {
		_, err := NewBitLayout(8, 8, 8, c.spec)
		if err == nil {
			t.Errorf("spec %q: expected error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %q does not mention %q", c.spec, err, c.want)
		}
	}
	// Case and whitespace fold, and Name carries the canonical spec.
	b, err := NewBitLayout(8, 8, 8, "  XyZxYzXYz ")
	if err != nil {
		t.Fatalf("folded spec rejected: %v", err)
	}
	if b.Name() != "bit:xyzxyzxyz" {
		t.Errorf("Name = %q", b.Name())
	}
	if b.Spec() != "xyzxyzxyz" {
		t.Errorf("Spec = %q", b.Spec())
	}
}

// TestRoundRobinSpec pins the compact-Morton seed string for cubic,
// anisotropic and degenerate extents.
func TestRoundRobinSpec(t *testing.T) {
	cases := []struct {
		nx, ny, nz int
		want       string
	}{
		{8, 8, 8, "xyzxyzxyz"},
		{32, 32, 4, "xyzxyzxyxyxy"}, // z exhausts after 2 bits
		{2, 1, 1, "x"},
		{1, 1, 1, "x"},
		{5, 7, 9, "xyzxyzxyzz"}, // ceil(log2): x 3, y 3, z 4 → one trailing z
	}
	for _, c := range cases {
		if got := RoundRobinSpec(c.nx, c.ny, c.nz); got != c.want {
			t.Errorf("RoundRobinSpec(%d,%d,%d) = %q, want %q", c.nx, c.ny, c.nz, got, c.want)
		}
	}
}

// TestParseSpec covers both halves of the travelling-string grammar:
// registry kind names and parameterized bit specs.
func TestParseSpec(t *testing.T) {
	l, err := ParseSpec("zorder", 8, 8, 8)
	if err != nil || l.Name() != "zorder" {
		t.Fatalf("ParseSpec(zorder) = %v, %v", l, err)
	}
	l, err = ParseSpec("BIT:xyzxyzxyz", 8, 8, 8)
	if err != nil || l.Name() != "bit:xyzxyzxyz" {
		t.Fatalf("ParseSpec(bit:) = %v, %v", l, err)
	}
	if _, err = ParseSpec("bit:xy", 8, 8, 8); err == nil {
		t.Fatal("ParseSpec accepted an under-specified bit layout")
	}
	if _, err = ParseSpec("no-such-layout", 8, 8, 8); err == nil {
		t.Fatal("ParseSpec accepted an unknown kind")
	}
}
