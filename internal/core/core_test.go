package core

import (
	"strings"
	"testing"
	"testing/quick"
)

// allLayouts builds one instance of every layout kind for the given grid.
func allLayouts(t *testing.T, nx, ny, nz int) []Layout {
	t.Helper()
	var ls []Layout
	for _, k := range Kinds() {
		ls = append(ls, New(k, nx, ny, nz))
	}
	return ls
}

func TestLayoutInjectiveAndInBounds(t *testing.T) {
	grids := [][3]int{{8, 8, 8}, {16, 16, 16}, {5, 7, 9}, {1, 1, 1}, {32, 4, 2}}
	for _, g := range grids {
		for _, l := range allLayouts(t, g[0], g[1], g[2]) {
			seen := make(map[int]bool, g[0]*g[1]*g[2])
			for k := 0; k < g[2]; k++ {
				for j := 0; j < g[1]; j++ {
					for i := 0; i < g[0]; i++ {
						idx := l.Index(i, j, k)
						if idx < 0 || idx >= l.Len() {
							t.Fatalf("%s %v: Index(%d,%d,%d)=%d out of [0,%d)",
								l.Name(), g, i, j, k, idx, l.Len())
						}
						if seen[idx] {
							t.Fatalf("%s %v: Index(%d,%d,%d)=%d not injective",
								l.Name(), g, i, j, k, idx)
						}
						seen[idx] = true
					}
				}
			}
		}
	}
}

func TestLayoutDims(t *testing.T) {
	for _, l := range allLayouts(t, 5, 6, 7) {
		nx, ny, nz := l.Dims()
		if nx != 5 || ny != 6 || nz != 7 {
			t.Errorf("%s: Dims = %d,%d,%d, want 5,6,7", l.Name(), nx, ny, nz)
		}
	}
}

func TestArrayOrderFormula(t *testing.T) {
	a := NewArrayOrder(10, 20, 30)
	f := func(i, j, k uint16) bool {
		ii, jj, kk := int(i)%10, int(j)%20, int(k)%30
		return a.Index(ii, jj, kk) == ii+jj*10+kk*10*20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if a.Len() != 10*20*30 {
		t.Errorf("Len=%d", a.Len())
	}
}

func TestZOrderMatchesInterleaving(t *testing.T) {
	z := NewZOrder(16, 16, 16)
	// Spot-check the bit interleaving property: x gets bits 0,3,6...
	if z.Index(1, 0, 0) != 1 || z.Index(0, 1, 0) != 2 || z.Index(0, 0, 1) != 4 {
		t.Fatalf("unit vectors map to %d,%d,%d; want 1,2,4",
			z.Index(1, 0, 0), z.Index(0, 1, 0), z.Index(0, 0, 1))
	}
	if z.Index(15, 15, 15) != 16*16*16-1 {
		t.Errorf("corner index %d, want %d", z.Index(15, 15, 15), 16*16*16-1)
	}
	if z.Len() != 4096 {
		t.Errorf("Len=%d, want dense 4096", z.Len())
	}
	if z.Overhead() != 0 {
		t.Errorf("Overhead=%v, want 0 for cubic pow2", z.Overhead())
	}
}

func TestZOrderPaddingOverhead(t *testing.T) {
	z := NewZOrder(17, 17, 17) // pads toward 32³ index space
	if z.Overhead() <= 0 {
		t.Errorf("non-pow2 grid should report positive overhead, got %v", z.Overhead())
	}
	if z.Len() <= 17*17*17 {
		t.Errorf("padded Len=%d should exceed dense %d", z.Len(), 17*17*17)
	}
}

func TestTiledLayoutStructure(t *testing.T) {
	tl := NewTiled(16, 16, 16, 4)
	// First tile is the 4×4×4 corner brick, row-major inside.
	if tl.Index(0, 0, 0) != 0 {
		t.Errorf("origin index %d", tl.Index(0, 0, 0))
	}
	if tl.Index(1, 0, 0) != 1 {
		t.Errorf("x-step inside tile: %d, want 1", tl.Index(1, 0, 0))
	}
	if tl.Index(0, 1, 0) != 4 {
		t.Errorf("y-step inside tile: %d, want 4", tl.Index(0, 1, 0))
	}
	if tl.Index(0, 0, 1) != 16 {
		t.Errorf("z-step inside tile: %d, want 16", tl.Index(0, 0, 1))
	}
	// Element (4,0,0) begins the next brick: offset 64.
	if tl.Index(4, 0, 0) != 64 {
		t.Errorf("next brick: %d, want 64", tl.Index(4, 0, 0))
	}
	if tl.Len() != 16*16*16 {
		t.Errorf("Len=%d", tl.Len())
	}
	if tl.Tile() != 4 {
		t.Errorf("Tile=%d", tl.Tile())
	}
}

func TestTiledPadsPartialTiles(t *testing.T) {
	tl := NewTiled(10, 10, 10, 4) // 3 tiles per axis → 12³ buffer
	if tl.Len() != 12*12*12 {
		t.Errorf("Len=%d, want %d", tl.Len(), 12*12*12)
	}
}

func TestHilbertLayoutPadsToCube(t *testing.T) {
	h := NewHilbert(5, 9, 3)
	if h.Len() != 16*16*16 {
		t.Errorf("Len=%d, want 4096", h.Len())
	}
}

func TestHilbertSingleCell(t *testing.T) {
	h := NewHilbert(1, 1, 1)
	if got := h.Index(0, 0, 0); got != 0 {
		t.Errorf("Index(0,0,0)=%d", got)
	}
	if h.Len() < 1 {
		t.Errorf("Len=%d", h.Len())
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]Kind{
		"array": ArrayKind, "a": ArrayKind, "ROW-MAJOR": ArrayKind,
		"zorder": ZKind, "z": ZKind, "morton": ZKind, " Z-Order ": ZKind,
		"tiled": TiledKind, "blocked": TiledKind,
		"hilbert": HilbertKind, "h": HilbertKind,
		"ztiled": ZTiledKind, "zt": ZTiledKind, "Morton-Tiled": ZTiledKind, "bricked": ZTiledKind,
		"hzorder": HZKind, "hz": HZKind, "Hierarchical": HZKind,
	}
	for s, want := range good {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}

// TestParseKindErrorListsLayouts pins the failure message: a typo'd
// -layout flag should teach the user the recognized names, not just
// reject the bad one.
func TestParseKindErrorListsLayouts(t *testing.T) {
	_, err := ParseKind("bogus")
	if err == nil {
		t.Fatal("ParseKind(bogus) should fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown layout "bogus"`) {
		t.Errorf("error %q should name the rejected input", msg)
	}
	for _, k := range Kinds() {
		if !strings.Contains(msg, k.String()) {
			t.Errorf("error %q should list layout %q", msg, k.String())
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("round-trip of %v failed: %v, %v", k, back, err)
		}
	}
}

func TestNamesMatchRegistry(t *testing.T) {
	for _, k := range Kinds() {
		l := New(k, 4, 4, 4)
		if l.Name() != k.String() {
			t.Errorf("layout Name %q != kind %q", l.Name(), k.String())
		}
	}
}

func TestCheckDimsPanics(t *testing.T) {
	for _, k := range Kinds() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, 0,1,1) did not panic", k)
				}
			}()
			New(k, 0, 1, 1)
		}()
	}
}

func TestAxisStrideArrayOrder(t *testing.T) {
	a := NewArrayOrder(32, 32, 32)
	x := AxisStride(a, 0)
	y := AxisStride(a, 1)
	z := AxisStride(a, 2)
	if x.Mean != 1 {
		t.Errorf("x stride mean %v, want 1", x.Mean)
	}
	if y.Mean != 32 {
		t.Errorf("y stride mean %v, want 32", y.Mean)
	}
	if z.Mean != 1024 {
		t.Errorf("z stride mean %v, want 1024", z.Mean)
	}
	if !(x.Within > y.Within && y.Within >= z.Within) {
		t.Errorf("line-sharing should degrade x→y→z: %v %v %v", x.Within, y.Within, z.Within)
	}
}

// The paper's core claim in table form: under Z order the three axes are
// symmetric, and the worst axis is far better than array order's worst.
func TestAxisStrideZOrderBalanced(t *testing.T) {
	zl := NewZOrder(32, 32, 32)
	al := NewArrayOrder(32, 32, 32)
	zWorst, aWorst := 0.0, 0.0
	for axis := 0; axis < 3; axis++ {
		if m := AxisStride(zl, axis).Mean; m > zWorst {
			zWorst = m
		}
		if m := AxisStride(al, axis).Mean; m > aWorst {
			aWorst = m
		}
	}
	if zWorst >= aWorst {
		t.Errorf("Z-order worst-axis stride %v should beat array order's %v", zWorst, aWorst)
	}
}

func TestRayStrideMisalignment(t *testing.T) {
	al := NewArrayOrder(64, 64, 64)
	zl := NewZOrder(64, 64, 64)
	// Aligned ray (along x) vs against-the-grain ray (along z).
	aAligned := RayStride(al, 1, 0.01, 0.01)
	aAcross := RayStride(al, 0.01, 0.01, 1)
	if aAcross.Mean <= aAligned.Mean {
		t.Fatalf("array order should degrade across the grain: %v vs %v", aAcross.Mean, aAligned.Mean)
	}
	zAligned := RayStride(zl, 1, 0.01, 0.01)
	zAcross := RayStride(zl, 0.01, 0.01, 1)
	ratioA := aAcross.Mean / aAligned.Mean
	ratioZ := zAcross.Mean / zAligned.Mean
	if ratioZ >= ratioA {
		t.Errorf("Z order viewpoint sensitivity %v should be below array order's %v", ratioZ, ratioA)
	}
}

func TestRayStridePanicsOnZeroDir(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RayStride with zero direction did not panic")
		}
	}()
	RayStride(NewArrayOrder(8, 8, 8), 0, 0, 0)
}

func TestAxisStridePanicsOnBadAxis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AxisStride with axis 3 did not panic")
		}
	}()
	AxisStride(NewArrayOrder(8, 8, 8), 3)
}

func BenchmarkIndexArray(b *testing.B) {
	l := NewArrayOrder(512, 512, 512)
	benchIndex(b, l)
}

func BenchmarkIndexZOrder(b *testing.B) {
	l := NewZOrder(512, 512, 512)
	benchIndex(b, l)
}

func BenchmarkIndexTiled(b *testing.B) {
	l := NewTiled(512, 512, 512, DefaultTile)
	benchIndex(b, l)
}

func BenchmarkIndexHilbert(b *testing.B) {
	l := NewHilbert(512, 512, 512)
	benchIndex(b, l)
}

func benchIndex(b *testing.B, l Layout) {
	b.Helper()
	var sink int
	for n := 0; n < b.N; n++ {
		sink += l.Index(n&511, n>>9&511, n>>18&63)
	}
	benchSink = sink
}

var benchSink int

// Coords must invert Index exactly over the whole grid, and padding
// offsets must report ok == false.
func TestCoordsInvertsIndex(t *testing.T) {
	grids := [][3]int{{8, 8, 8}, {5, 7, 9}, {16, 4, 2}, {1, 1, 1}}
	for _, g := range grids {
		for _, kind := range Kinds() {
			l := New(kind, g[0], g[1], g[2]).(Inverse)
			// Forward then inverse.
			valid := make(map[int]bool)
			for k := 0; k < g[2]; k++ {
				for j := 0; j < g[1]; j++ {
					for i := 0; i < g[0]; i++ {
						idx := l.Index(i, j, k)
						valid[idx] = true
						ii, jj, kk, ok := l.Coords(idx)
						if !ok || ii != i || jj != j || kk != k {
							t.Fatalf("%s %v: Coords(Index(%d,%d,%d)) = (%d,%d,%d,%v)",
								l.Name(), g, i, j, k, ii, jj, kk, ok)
						}
					}
				}
			}
			// Padding offsets must report ok == false.
			for idx := 0; idx < l.Len(); idx++ {
				_, _, _, ok := l.Coords(idx)
				if ok != valid[idx] {
					t.Fatalf("%s %v: Coords(%d) ok=%v, want %v", l.Name(), g, idx, ok, valid[idx])
				}
			}
		}
	}
}
