package core

import (
	"fmt"

	"sfcmem/internal/morton"
)

// ZTiled is a hybrid layout that addresses the paper's §V limitation:
// pure Z-order indexing requires power-of-two padded extents, which for
// awkward sizes (e.g. 513³) can more than double the buffer. ZTiled
// partitions the volume into fixed power-of-two bricks laid out
// row-major, with Z-order (Morton) indexing *inside* each brick. Padding
// is then bounded by one partial brick per axis instead of the next
// global power of two, while the intra-brick locality — the property the
// kernels exploit — is preserved at the scale that matters for cache
// lines and pages.
//
// Index cost stays table-driven and comparable to the other layouts:
// per-axis tables hold each coordinate's brick-base contribution and its
// dilated intra-brick Morton contribution, so Index is six loads, two
// adds and two ORs.
type ZTiled struct {
	// Per-axis brick-base contributions (already scaled by brick volume
	// and row-major brick strides).
	xb, yb, zb []int
	// Per-axis dilated intra-brick Morton contributions.
	xm, ym, zm []int
	// Combined per-axis tables xoff = xb+xm etc. (AxisOffsets).
	xoff, yoff, zoff []int
	nx, ny, nz       int
	brick            int
	length           int
}

// DefaultBrick is the default ZTiled brick edge: 16³ float32 bricks are
// 16KB — page-scale, several cache lines per Morton block, and small
// enough that partial-brick padding stays modest.
const DefaultBrick = 16

// NewZTiled builds a Morton-in-bricks layout. brick must be a power of
// two; extents are padded up to whole bricks.
func NewZTiled(nx, ny, nz, brick int) *ZTiled {
	checkDims(nx, ny, nz)
	if brick <= 0 || brick&(brick-1) != 0 {
		panic(fmt.Sprintf("core: brick edge %d must be a positive power of two", brick))
	}
	ceil := func(n int) int { return (n + brick - 1) / brick }
	bx, by := ceil(nx), ceil(ny)
	b3 := brick * brick * brick
	t := &ZTiled{nx: nx, ny: ny, nz: nz, brick: brick}
	t.xb = make([]int, nx)
	t.xm = make([]int, nx)
	for i := 0; i < nx; i++ {
		t.xb[i] = (i / brick) * b3
		t.xm[i] = int(morton.Part1By2(uint64(i % brick)))
	}
	t.yb = make([]int, ny)
	t.ym = make([]int, ny)
	for j := 0; j < ny; j++ {
		t.yb[j] = (j / brick) * bx * b3
		t.ym[j] = int(morton.Part1By2(uint64(j%brick)) << 1)
	}
	t.zb = make([]int, nz)
	t.zm = make([]int, nz)
	for k := 0; k < nz; k++ {
		t.zb[k] = (k / brick) * by * bx * b3
		t.zm[k] = int(morton.Part1By2(uint64(k%brick)) << 2)
	}
	t.length = ceil(nz) * by * bx * b3
	t.xoff = sumAxes(t.xb, t.xm)
	t.yoff = sumAxes(t.yb, t.ym)
	t.zoff = sumAxes(t.zb, t.zm)
	return t
}

// Index returns the brick-row-major, Morton-within-brick offset of
// (i,j,k).
func (t *ZTiled) Index(i, j, k int) int {
	return t.xb[i] + t.yb[j] + t.zb[k] + (t.xm[i] | t.ym[j] | t.zm[k])
}

// Dims returns the logical grid extents.
func (t *ZTiled) Dims() (nx, ny, nz int) { return t.nx, t.ny, t.nz }

// Len returns the buffer length, padded to whole bricks per axis.
func (t *ZTiled) Len() int { return t.length }

// Name returns "ztiled".
func (t *ZTiled) Name() string { return "ztiled" }

// Brick returns the brick edge length.
func (t *ZTiled) Brick() int { return t.brick }

// Overhead reports the fraction of the buffer wasted by partial-brick
// padding. For a 513³ volume with 16³ bricks this is ~9%, versus ~7.9x
// for pure Z order padding to 1024³.
func (t *ZTiled) Overhead() float64 {
	ideal := float64(t.nx) * float64(t.ny) * float64(t.nz)
	return float64(t.length)/ideal - 1
}
