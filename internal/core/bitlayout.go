package core

import (
	"fmt"
	"math/bits"
	"strings"

	"sfcmem/internal/morton"
)

// BitLayout is the generalized Morton (bit-interleave) layout: Z order
// with the fixed xyzxyz… bit rotation replaced by an explicit interleave
// string that assigns every bit of the flat index to an axis. Swatman et
// al. ("Evolutionary Algorithms to Find Cache-Friendly Generalized
// Morton Layouts") show these orderings form a search space containing
// row-major (all x bits first), Z order (round-robin), and every tiled
// hybrid in between — which is what the autotuner in internal/tune
// searches per volume × kernel × dtype.
//
// The spec string is read LSB first: spec[b] ∈ {x,y,z} names the axis
// whose next coordinate bit (the axis's b'-th occurrence, counting
// occurrences of that letter from the front) occupies bit b of the
// index. "xyzxyzxyz…" therefore reproduces Z order exactly, "xxxxyy…zz"
// is row-major on power-of-two extents, and "xxyyzzxyz" packs 4×4×4
// row-major-ish bricks along a Morton curve.
//
// Like ZOrder, indexing is table-driven — three per-axis tables of
// deposited coordinate contributions, so Index is three loads and two
// adds and the paper's equal-footing comparison holds — and because the
// per-axis contributions occupy disjoint bit lanes their sum equals
// their OR, so BitLayout is Separable and rides every flat fast path
// unchanged. Neighbor stepping works too: a step is the same masked
// carry/borrow arithmetic as Morton's, just over the axis's own mask
// (morton.IncMask), dispatched as core.StepMasked.
type BitLayout struct {
	spec       string // canonical (lower-case) interleave, LSB first
	mx, my, mz uint64 // per-axis bit lanes; disjoint, covering spec
	xi, yi, zi []int  // deposited per-axis contributions (AxisOffsets)
	nx, ny, nz int
	length     int
}

// Compile-time checks: BitLayout supports every kernel fast path.
var (
	_ Separable = (*BitLayout)(nil)
	_ Inverse   = (*BitLayout)(nil)
)

// BitSpecPrefix marks a parameterized bit-interleave layout in a layout
// specification string ("bit:yxzyxz…"), as accepted by ParseSpec and
// persisted in volume manifests.
const BitSpecPrefix = "bit:"

// bitsFor returns the number of coordinate bits an extent needs:
// ceil(log2(n)), with 0 for n == 1 (a degenerate axis needs no bits).
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// NewBitLayout builds a generalized bit-interleave layout for an
// nx×ny×nz grid from an interleave string. The string must use only the
// letters x, y, z (case-folded) and must contain at least ceil(log2(n))
// occurrences of each axis letter so every coordinate fits; surplus
// occurrences are legal and inert (their bit positions are never set,
// they just stretch the padded index space the same way Z-order padding
// does). Errors name the offending position or axis, since specs arrive
// from manifests and HTTP requests, not just code.
func NewBitLayout(nx, ny, nz int, order string) (*BitLayout, error) {
	checkDims(nx, ny, nz)
	spec := strings.ToLower(strings.TrimSpace(order))
	if spec == "" {
		return nil, fmt.Errorf("core: empty bit layout spec")
	}
	if len(spec) > 63 {
		return nil, fmt.Errorf("core: bit layout spec %q: %d positions exceed the 63-bit index budget", spec, len(spec))
	}
	b := &BitLayout{spec: spec, nx: nx, ny: ny, nz: nz}
	for pos := 0; pos < len(spec); pos++ {
		switch spec[pos] {
		case 'x':
			b.mx |= 1 << pos
		case 'y':
			b.my |= 1 << pos
		case 'z':
			b.mz |= 1 << pos
		default:
			return nil, fmt.Errorf("core: bit layout spec %q: position %d is %q, want x, y or z", spec, pos, spec[pos])
		}
	}
	for _, ax := range [3]struct {
		letter byte
		mask   uint64
		extent int
	}{{'x', b.mx, nx}, {'y', b.my, ny}, {'z', b.mz, nz}} {
		if have, need := bits.OnesCount64(ax.mask), bitsFor(ax.extent); have < need {
			return nil, fmt.Errorf("core: bit layout spec %q: %d %c bits cannot address extent %d (need %d)",
				spec, have, ax.letter, ax.extent, need)
		}
	}
	b.xi = depositTable(nx, b.mx)
	b.yi = depositTable(ny, b.my)
	b.zi = depositTable(nz, b.mz)
	// The per-axis contributions are monotone in their coordinate (a
	// deposit preserves order because lane bits appear in increasing
	// significance), so the largest index is at the far corner.
	b.length = b.xi[nx-1] + b.yi[ny-1] + b.zi[nz-1] + 1
	return b, nil
}

// depositTable precomputes the deposited contribution of every
// coordinate value along one axis lane.
func depositTable(n int, mask uint64) []int {
	t := make([]int, n)
	for c := 0; c < n; c++ {
		t[c] = int(morton.Deposit(uint64(c), mask))
	}
	return t
}

// RoundRobinSpec returns the interleave string that cycles x→y→z per
// bit, skipping axes whose extent is exhausted — the compact Z order
// for the given extents (identical to Z order on cubic power-of-two
// grids, tighter than padded Z order on anisotropic ones). It seeds the
// autotuner's population and is the reference individual its results
// are compared against.
func RoundRobinSpec(nx, ny, nz int) string {
	need := [3]int{bitsFor(nx), bitsFor(ny), bitsFor(nz)}
	letters := [3]byte{'x', 'y', 'z'}
	var sb strings.Builder
	for need[0] > 0 || need[1] > 0 || need[2] > 0 {
		for a := 0; a < 3; a++ {
			if need[a] > 0 {
				sb.WriteByte(letters[a])
				need[a]--
			}
		}
	}
	if sb.Len() == 0 {
		return "x" // 1×1×1 grid: any single-letter spec addresses it
	}
	return sb.String()
}

// Index returns the interleaved offset of (i,j,k) via three table loads
// and two adds — the same cost shape as ZOrder.Index, per the paper's
// equal-footing requirement.
func (b *BitLayout) Index(i, j, k int) int { return b.xi[i] + b.yi[j] + b.zi[k] }

// Dims returns the logical grid extents.
func (b *BitLayout) Dims() (nx, ny, nz int) { return b.nx, b.ny, b.nz }

// Len returns the buffer length: the far corner's index plus one.
// Padding appears exactly where the interleave leaves index space
// unaddressed (non-power-of-two extents, surplus spec occurrences).
func (b *BitLayout) Len() int { return b.length }

// Name returns the full parameterized spec ("bit:yxzyxz…"), so a
// layout's registry name round-trips through volume manifests and HTTP
// responses with enough information to reconstruct it.
func (b *BitLayout) Name() string { return BitSpecPrefix + b.spec }

// Spec returns the canonical interleave string (without the "bit:"
// prefix), LSB first.
func (b *BitLayout) Spec() string { return b.spec }

// Masks returns the per-axis bit lanes of the flat index.
func (b *BitLayout) Masks() (mx, my, mz uint64) { return b.mx, b.my, b.mz }

// Overhead reports the fraction of the buffer wasted by interleave
// padding: Len()/ideal - 1, the same accounting as ZOrder.Overhead.
func (b *BitLayout) Overhead() float64 {
	ideal := float64(b.nx) * float64(b.ny) * float64(b.nz)
	return float64(b.length)/ideal - 1
}

// AxisOffsets returns the deposited per-axis tables. They occupy
// disjoint bit lanes (the interleave assigns every position to exactly
// one axis), so summing them equals ORing them — BitLayout is separable
// and the flat fast paths apply unchanged.
func (b *BitLayout) AxisOffsets() (xs, ys, zs []int) { return b.xi, b.yi, b.zi }

// Coords inverts the interleave by gathering each axis's lane; offsets
// whose gathered coordinates fall outside the logical extents are
// padding and report ok == false.
func (b *BitLayout) Coords(idx int) (i, j, k int, ok bool) {
	u := uint64(idx)
	i = int(morton.Extract(u, b.mx))
	j = int(morton.Extract(u, b.my))
	k = int(morton.Extract(u, b.mz))
	return i, j, k, i < b.nx && j < b.ny && k < b.nz
}
