package core

import "testing"

// The fuzz targets drive the two space-filling-curve bijections with
// arbitrary extents and coordinates: Index followed by Coords must
// return to the same cell, and any in-range buffer offset that decodes
// to a live cell must encode back to the same offset. Non-power-of-two
// extents are the interesting corpus — the curves pad to power-of-two
// bounding boxes, and the padding boundaries are where an inverse goes
// wrong first.

// fuzzDim folds an arbitrary fuzzed int into a usable extent in
// [1, 64]; small bounds keep Len() (and the Hilbert table walk) cheap.
func fuzzDim(v int) int {
	return 1 + int(uint(v)%64)
}

// fuzzCoord folds v into [0, n).
func fuzzCoord(v, n int) int {
	return int(uint(v) % uint(n))
}

func fuzzLayoutRoundTrip(f *testing.F, mk func(nx, ny, nz int) Inverse) {
	// Seeded corpus: cubes, flat slabs, pencils, and deliberately
	// non-power-of-two extents on every axis.
	seeds := [][6]int{
		{8, 8, 8, 0, 0, 0},
		{5, 7, 9, 4, 6, 8},
		{1, 1, 1, 0, 0, 0},
		{13, 6, 21, 12, 5, 20},
		{33, 17, 2, 32, 16, 1},
		{64, 3, 50, 63, 2, 49},
		{10, 10, 10, 9, 0, 5},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5])
	}
	f.Fuzz(func(t *testing.T, nxRaw, nyRaw, nzRaw, iRaw, jRaw, kRaw int) {
		nx, ny, nz := fuzzDim(nxRaw), fuzzDim(nyRaw), fuzzDim(nzRaw)
		checkLayoutRoundTrip(t, mk(nx, ny, nz), nx, ny, nz, iRaw, jRaw, kRaw)
	})
}

func checkLayoutRoundTrip(t *testing.T, l Inverse, nx, ny, nz, iRaw, jRaw, kRaw int) {
	t.Helper()
	i, j, k := fuzzCoord(iRaw, nx), fuzzCoord(jRaw, ny), fuzzCoord(kRaw, nz)

	// Forward: every cell maps into the buffer and back to itself.
	idx := l.Index(i, j, k)
	if idx < 0 || idx >= l.Len() {
		t.Fatalf("%s %dx%dx%d: Index(%d,%d,%d) = %d outside [0,%d)",
			l.Name(), nx, ny, nz, i, j, k, idx, l.Len())
	}
	gi, gj, gk, ok := l.Coords(idx)
	if !ok || gi != i || gj != j || gk != k {
		t.Fatalf("%s %dx%dx%d: Coords(Index(%d,%d,%d)) = (%d,%d,%d,%v)",
			l.Name(), nx, ny, nz, i, j, k, gi, gj, gk, ok)
	}

	// Backward: a live offset (derived from the same fuzz input so
	// the whole buffer gets explored, padding included) must encode
	// back to itself.
	raw := fuzzCoord(iRaw^jRaw^kRaw, l.Len())
	ri, rj, rk, ok := l.Coords(raw)
	if !ok {
		return // padding offset: no cell lives there
	}
	if ri < 0 || ri >= nx || rj < 0 || rj >= ny || rk < 0 || rk >= nz {
		t.Fatalf("%s %dx%dx%d: Coords(%d) = (%d,%d,%d) out of bounds",
			l.Name(), nx, ny, nz, raw, ri, rj, rk)
	}
	if back := l.Index(ri, rj, rk); back != raw {
		t.Fatalf("%s %dx%dx%d: Index(Coords(%d)) = %d",
			l.Name(), nx, ny, nz, raw, back)
	}
}

func FuzzZOrderRoundTrip(f *testing.F) {
	fuzzLayoutRoundTrip(f, func(nx, ny, nz int) Inverse { return NewZOrder(nx, ny, nz) })
}

func FuzzHilbertRoundTrip(f *testing.F) {
	fuzzLayoutRoundTrip(f, func(nx, ny, nz int) Inverse { return NewHilbert(nx, ny, nz) })
}

// fuzzSpec derives a deterministic interleave string for the extents
// from an arbitrary seed: the round-robin spec shuffled by a xorshift
// Fisher–Yates, optionally padded with surplus occurrences. Every
// permutation of a valid multiset is a valid spec, so the shuffle
// explores the whole BitLayout search space the autotuner draws from.
func fuzzSpec(nx, ny, nz int, seed uint64) string {
	spec := []byte(RoundRobinSpec(nx, ny, nz))
	rng := seed | 1 // xorshift state must be nonzero
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// Occasionally append surplus occurrences (legal, inert) so the
	// padding-handling paths get fuzzed too, within the 63-bit budget.
	for len(spec) < 63 && next()%8 == 0 {
		spec = append(spec, "xyz"[next()%3])
	}
	for i := len(spec) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		spec[i], spec[j] = spec[j], spec[i]
	}
	return string(spec)
}

func FuzzBitLayoutRoundTrip(f *testing.F) {
	seeds := [][7]int{
		{8, 8, 8, 0, 0, 0, 0},
		{5, 7, 9, 4, 6, 8, 12345},
		{1, 1, 1, 0, 0, 0, 7},
		{13, 6, 21, 12, 5, 20, 99},
		{33, 17, 2, 32, 16, 1, 3},
		{64, 3, 50, 63, 2, 49, 1 << 40},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5], s[6])
	}
	f.Fuzz(func(t *testing.T, nxRaw, nyRaw, nzRaw, iRaw, jRaw, kRaw, specSeed int) {
		nx, ny, nz := fuzzDim(nxRaw), fuzzDim(nyRaw), fuzzDim(nzRaw)
		spec := fuzzSpec(nx, ny, nz, uint64(specSeed))
		l, err := NewBitLayout(nx, ny, nz, spec)
		if err != nil {
			t.Fatalf("NewBitLayout(%d,%d,%d,%q): %v", nx, ny, nz, spec, err)
		}
		checkLayoutRoundTrip(t, l, nx, ny, nz, iRaw, jRaw, kRaw)
	})
}
