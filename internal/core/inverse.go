package core

import (
	"sfcmem/internal/hilbert"
	"sfcmem/internal/morton"
)

// Inverse is implemented by layouts that can map a buffer offset back to
// its grid coordinates. It enables storage-order traversal — visiting
// elements in the order they sit in memory, the access pattern with
// perfect spatial locality. For space-filling layouts this is the
// cache-friendly matrix-traversal trick of Bader 2013 (the paper's ref
// [6]); for padded layouts some offsets hold no element, reported via
// ok == false.
//
// All built-in layouts implement Inverse.
type Inverse interface {
	Layout
	// Coords returns the grid coordinates stored at buffer offset idx,
	// or ok == false if idx is padding (no element lives there). idx
	// must be in [0, Len()).
	Coords(idx int) (i, j, k int, ok bool)
}

// Compile-time checks: every built-in layout supports inversion.
var (
	_ Inverse = (*ArrayOrder)(nil)
	_ Inverse = (*ZOrder)(nil)
	_ Inverse = (*Tiled)(nil)
	_ Inverse = (*Hilbert)(nil)
	_ Inverse = (*ZTiled)(nil)
)

// Coords inverts array-order indexing: idx = i + j*nx + k*nx*ny.
func (a *ArrayOrder) Coords(idx int) (i, j, k int, ok bool) {
	k = idx / (a.nx * a.ny)
	rem := idx - k*a.nx*a.ny
	j = rem / a.nx
	i = rem - j*a.nx
	return i, j, k, true
}

// Coords inverts the Morton code; offsets in the power-of-two padding
// (coordinates outside the logical extents) report ok == false.
func (z *ZOrder) Coords(idx int) (i, j, k int, ok bool) {
	x, y, zz := morton.Decode3(uint64(idx))
	i, j, k = int(x), int(y), int(zz)
	return i, j, k, i < z.nx && j < z.ny && k < z.nz
}

// Coords inverts tiled indexing; offsets inside partial-tile padding
// report ok == false.
func (t *Tiled) Coords(idx int) (i, j, k int, ok bool) {
	t3 := t.tile * t.tile * t.tile
	brick := idx / t3
	intra := idx - brick*t3
	ceil := func(n int) int { return (n + t.tile - 1) / t.tile }
	tx, ty := ceil(t.nx), ceil(t.ny)
	bz := brick / (tx * ty)
	rem := brick - bz*tx*ty
	by := rem / tx
	bx := rem - by*tx
	iz := intra / (t.tile * t.tile)
	rem = intra - iz*t.tile*t.tile
	iy := rem / t.tile
	ix := rem - iy*t.tile
	i, j, k = bx*t.tile+ix, by*t.tile+iy, bz*t.tile+iz
	return i, j, k, i < t.nx && j < t.ny && k < t.nz
}

// Coords inverts the Hilbert index; offsets in the padded cube outside
// the logical extents report ok == false.
func (h *Hilbert) Coords(idx int) (i, j, k int, ok bool) {
	x, y, z := hilbert.Decode3(uint64(idx), h.bits)
	i, j, k = int(x), int(y), int(z)
	return i, j, k, i < h.nx && j < h.ny && k < h.nz
}

// Coords inverts brick-row-major Morton-within-brick indexing; offsets
// inside partial-brick padding report ok == false.
func (t *ZTiled) Coords(idx int) (i, j, k int, ok bool) {
	b3 := t.brick * t.brick * t.brick
	brick := idx / b3
	intra := idx - brick*b3
	ceil := func(n int) int { return (n + t.brick - 1) / t.brick }
	bxn, byn := ceil(t.nx), ceil(t.ny)
	bz := brick / (bxn * byn)
	rem := brick - bz*bxn*byn
	by := rem / bxn
	bx := rem - by*bxn
	x, y, z := morton.Decode3(uint64(intra))
	i, j, k = bx*t.brick+int(x), by*t.brick+int(y), bz*t.brick+int(z)
	return i, j, k, i < t.nx && j < t.ny && k < t.nz
}
