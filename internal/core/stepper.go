package core

import "sfcmem/internal/morton"

// Neighbor stepping: the O(1)-amortized walk that lets stencil kernels
// advance the flat index to an axis neighbor instead of re-resolving it
// through the per-axis offset tables (Holzmüller 2017's incremental
// neighbor finding, generalized to ±x/±y/±z).
//
// Three layout families support it:
//
//   - ArrayOrder: a unit step is a constant stride add (1, nx, nx*ny).
//   - ZOrder: the flat index IS the Morton code, so a step is a masked
//     add or subtract in one dilated bit lane — no memory access at all.
//   - ZTiled: the low 3·log2(brick) bits are an intra-brick Morton code,
//     so steps that stay inside a brick are the same masked arithmetic;
//     only a step that crosses a brick face falls back to the per-axis
//     table (two loads, amortized 1/brick of steps).
//
// Tiled stays on the tables: its intra-tile offsets are row-major, so a
// unit step already costs the same as a table delta and there is no
// arithmetic shortcut worth dispatching to. Hilbert and HZ are not even
// separable.
//
// The unchecked Step*/Back* forms are the hot-path primitives; they
// require the destination coordinate to exist inside the grid (stepping
// past an extent edge carries or borrows across the axis lane and
// corrupts the index). The TryStep*/TryBack* forms are the boundary-
// checked variants for walk setup and edge handling: they refuse the
// step, returning the index unchanged and false, instead of corrupting.

// StepMode classifies how a layout's flat index walks to an axis
// neighbor on the kernels' stepping fast path.
type StepMode int

const (
	// StepNone keeps the per-axis offset tables (Tiled, and any layout
	// that does not expose a cheaper walk).
	StepNone StepMode = iota
	// StepStride is ArrayOrder's walk: constant per-axis stride adds.
	StepStride
	// StepMorton is ZOrder's walk: dilated-bit inc/dec on the whole
	// index, valid across the entire padded extent.
	StepMorton
	// StepBrickMorton is ZTiled's walk: dilated-bit inc/dec on the
	// intra-brick Morton bits, with a per-axis table fallback only when
	// a step crosses a brick face.
	StepBrickMorton
	// StepMasked is BitLayout's walk: the same masked carry/borrow
	// arithmetic as StepMorton, but over the layout's own per-axis bit
	// lanes (an arbitrary interleave instead of every third bit).
	StepMasked
)

// StepSpec carries the parameters a kernel inner loop needs to inline a
// layout's neighbor walk, resolved once per flat view.
type StepSpec struct {
	Mode StepMode
	// Sx, Sy, Sz are the constant per-axis strides (StepStride only).
	Sx, Sy, Sz int
	// BrickMask is brick-1 (StepBrickMorton only): (i+1)&BrickMask == 0
	// detects a +x brick crossing, i&BrickMask == 0 a -x crossing.
	BrickMask int
	// MX, MY, MZ are the per-axis bit lanes of the flat index
	// (StepMasked only): a ±axis step is morton.IncMask/DecMask over
	// the axis's lane.
	MX, MY, MZ uint64
}

// StepSpecFor resolves the neighbor-stepping recipe for a layout.
// Layouts without a walk (Tiled, Hilbert, HZ) get StepNone, which tells
// the kernels to stay on the offset-table fast path.
func StepSpecFor(l Layout) StepSpec {
	switch t := l.(type) {
	case *ArrayOrder:
		sx, sy, sz := t.Strides()
		return StepSpec{Mode: StepStride, Sx: sx, Sy: sy, Sz: sz}
	case *ZOrder:
		return StepSpec{Mode: StepMorton}
	case *ZTiled:
		return StepSpec{Mode: StepBrickMorton, BrickMask: t.brick - 1}
	case *BitLayout:
		return StepSpec{Mode: StepMasked, MX: t.mx, MY: t.my, MZ: t.mz}
	}
	return StepSpec{}
}

// --- ZOrder: pure dilated-bit walk ----------------------------------

// StepX returns the index of (i+1,j,k) given the index of (i,j,k)
// without any table access: a masked add in the dilated x bit lane.
// The caller must ensure i+1 < nx; TryStepX is the checked form.
func (z *ZOrder) StepX(idx int) int { return int(morton.IncX(uint64(idx))) }

// StepY returns the index of (i,j+1,k) given the index of (i,j,k); see
// StepX.
func (z *ZOrder) StepY(idx int) int { return int(morton.IncY(uint64(idx))) }

// StepZ returns the index of (i,j,k+1) given the index of (i,j,k); see
// StepX.
func (z *ZOrder) StepZ(idx int) int { return int(morton.IncZ(uint64(idx))) }

// BackX returns the index of (i-1,j,k) given the index of (i,j,k): the
// masked dilated-bit subtraction. The caller must ensure i > 0;
// TryBackX is the checked form.
func (z *ZOrder) BackX(idx int) int { return int(morton.DecX(uint64(idx))) }

// BackY returns the index of (i,j-1,k) given the index of (i,j,k); see
// BackX.
func (z *ZOrder) BackY(idx int) int { return int(morton.DecY(uint64(idx))) }

// BackZ returns the index of (i,j,k-1) given the index of (i,j,k); see
// BackX.
func (z *ZOrder) BackZ(idx int) int { return int(morton.DecZ(uint64(idx))) }

// TryStepX is the boundary-checked StepX: it refuses (returning idx
// unchanged and false) when the neighbor would leave the logical x
// extent, instead of carrying into padded index space.
func (z *ZOrder) TryStepX(idx int) (int, bool) {
	c, ok := morton.IncXBounded(uint64(idx), uint32(z.nx))
	return int(c), ok
}

// TryStepY is the boundary-checked StepY; see TryStepX.
func (z *ZOrder) TryStepY(idx int) (int, bool) {
	c, ok := morton.IncYBounded(uint64(idx), uint32(z.ny))
	return int(c), ok
}

// TryStepZ is the boundary-checked StepZ; see TryStepX.
func (z *ZOrder) TryStepZ(idx int) (int, bool) {
	c, ok := morton.IncZBounded(uint64(idx), uint32(z.nz))
	return int(c), ok
}

// TryBackX is the boundary-checked BackX: it refuses at i == 0 instead
// of underflowing the lane.
func (z *ZOrder) TryBackX(idx int) (int, bool) {
	c, ok := morton.DecXBounded(uint64(idx))
	return int(c), ok
}

// TryBackY is the boundary-checked BackY; see TryBackX.
func (z *ZOrder) TryBackY(idx int) (int, bool) {
	c, ok := morton.DecYBounded(uint64(idx))
	return int(c), ok
}

// TryBackZ is the boundary-checked BackZ; see TryBackX.
func (z *ZOrder) TryBackZ(idx int) (int, bool) {
	c, ok := morton.DecZBounded(uint64(idx))
	return int(c), ok
}

// --- BitLayout: masked walk over arbitrary interleave lanes ---------

// StepX returns the index of (i+1,j,k) given the index of (i,j,k): the
// masked carry add over the layout's x lane, the direct generalization
// of ZOrder's dilated-bit step to an arbitrary interleave. The caller
// must ensure i+1 < nx (the carry would escape the lane); TryStepX is
// the checked form.
func (b *BitLayout) StepX(idx int) int { return int(morton.IncMask(uint64(idx), b.mx)) }

// StepY returns the index of (i,j+1,k) given the index of (i,j,k); see
// StepX.
func (b *BitLayout) StepY(idx int) int { return int(morton.IncMask(uint64(idx), b.my)) }

// StepZ returns the index of (i,j,k+1) given the index of (i,j,k); see
// StepX.
func (b *BitLayout) StepZ(idx int) int { return int(morton.IncMask(uint64(idx), b.mz)) }

// BackX returns the index of (i-1,j,k) given the index of (i,j,k): the
// masked borrow subtract. The caller must ensure i > 0; TryBackX is the
// checked form.
func (b *BitLayout) BackX(idx int) int { return int(morton.DecMask(uint64(idx), b.mx)) }

// BackY returns the index of (i,j-1,k) given the index of (i,j,k); see
// BackX.
func (b *BitLayout) BackY(idx int) int { return int(morton.DecMask(uint64(idx), b.my)) }

// BackZ returns the index of (i,j,k-1) given the index of (i,j,k); see
// BackX.
func (b *BitLayout) BackZ(idx int) int { return int(morton.DecMask(uint64(idx), b.mz)) }

// TryStepX is the boundary-checked StepX: it refuses (returning idx
// unchanged and false) when the neighbor would leave the logical x
// extent. The bound check gathers the lane (O(spec) bits), which keeps
// it off kernel inner loops — exactly the contract the other layouts'
// Try forms follow.
func (b *BitLayout) TryStepX(idx int) (int, bool) {
	if int(morton.Extract(uint64(idx), b.mx))+1 >= b.nx {
		return idx, false
	}
	return b.StepX(idx), true
}

// TryStepY is the boundary-checked StepY; see TryStepX.
func (b *BitLayout) TryStepY(idx int) (int, bool) {
	if int(morton.Extract(uint64(idx), b.my))+1 >= b.ny {
		return idx, false
	}
	return b.StepY(idx), true
}

// TryStepZ is the boundary-checked StepZ; see TryStepX.
func (b *BitLayout) TryStepZ(idx int) (int, bool) {
	if int(morton.Extract(uint64(idx), b.mz))+1 >= b.nz {
		return idx, false
	}
	return b.StepZ(idx), true
}

// TryBackX is the boundary-checked BackX: it refuses at i == 0 (an
// empty lane) instead of underflowing it.
func (b *BitLayout) TryBackX(idx int) (int, bool) {
	if uint64(idx)&b.mx == 0 {
		return idx, false
	}
	return b.BackX(idx), true
}

// TryBackY is the boundary-checked BackY; see TryBackX.
func (b *BitLayout) TryBackY(idx int) (int, bool) {
	if uint64(idx)&b.my == 0 {
		return idx, false
	}
	return b.BackY(idx), true
}

// TryBackZ is the boundary-checked BackZ; see TryBackX.
func (b *BitLayout) TryBackZ(idx int) (int, bool) {
	if uint64(idx)&b.mz == 0 {
		return idx, false
	}
	return b.BackZ(idx), true
}

// --- ZTiled: intra-brick Morton walk, tables on brick crossings -----

// StepX returns the index of (i+1,j,k) given the index of (i,j,k) and
// the current x coordinate i. Inside a brick it is the same masked
// dilated-bit add as ZOrder (the carry is confined to the intra-brick
// bits because at least one intra-brick x bit is clear); crossing a
// brick face consults the combined per-axis table. The caller must
// ensure i+1 < nx.
func (t *ZTiled) StepX(idx, i int) int {
	if (i+1)&(t.brick-1) != 0 {
		return int(morton.IncX(uint64(idx)))
	}
	return idx + t.xoff[i+1] - t.xoff[i]
}

// StepY is StepX for the y axis.
func (t *ZTiled) StepY(idx, j int) int {
	if (j+1)&(t.brick-1) != 0 {
		return int(morton.IncY(uint64(idx)))
	}
	return idx + t.yoff[j+1] - t.yoff[j]
}

// StepZ is StepX for the z axis.
func (t *ZTiled) StepZ(idx, k int) int {
	if (k+1)&(t.brick-1) != 0 {
		return int(morton.IncZ(uint64(idx)))
	}
	return idx + t.zoff[k+1] - t.zoff[k]
}

// BackX returns the index of (i-1,j,k): a masked dilated-bit subtract
// inside the brick (the borrow stops at an intra-brick x bit because
// i&(brick-1) != 0 guarantees one is set), the table on a brick
// crossing. The caller must ensure i > 0.
func (t *ZTiled) BackX(idx, i int) int {
	if i&(t.brick-1) != 0 {
		return int(morton.DecX(uint64(idx)))
	}
	return idx + t.xoff[i-1] - t.xoff[i]
}

// BackY is BackX for the y axis.
func (t *ZTiled) BackY(idx, j int) int {
	if j&(t.brick-1) != 0 {
		return int(morton.DecY(uint64(idx)))
	}
	return idx + t.yoff[j-1] - t.yoff[j]
}

// BackZ is BackX for the z axis.
func (t *ZTiled) BackZ(idx, k int) int {
	if k&(t.brick-1) != 0 {
		return int(morton.DecZ(uint64(idx)))
	}
	return idx + t.zoff[k-1] - t.zoff[k]
}

// TryStepX is the boundary-checked StepX; it refuses at the logical x
// extent edge.
func (t *ZTiled) TryStepX(idx, i int) (int, bool) {
	if i+1 >= t.nx {
		return idx, false
	}
	return t.StepX(idx, i), true
}

// TryStepY is the boundary-checked StepY; see TryStepX.
func (t *ZTiled) TryStepY(idx, j int) (int, bool) {
	if j+1 >= t.ny {
		return idx, false
	}
	return t.StepY(idx, j), true
}

// TryStepZ is the boundary-checked StepZ; see TryStepX.
func (t *ZTiled) TryStepZ(idx, k int) (int, bool) {
	if k+1 >= t.nz {
		return idx, false
	}
	return t.StepZ(idx, k), true
}

// TryBackX is the boundary-checked BackX; it refuses at i == 0.
func (t *ZTiled) TryBackX(idx, i int) (int, bool) {
	if i <= 0 {
		return idx, false
	}
	return t.BackX(idx, i), true
}

// TryBackY is the boundary-checked BackY; see TryBackX.
func (t *ZTiled) TryBackY(idx, j int) (int, bool) {
	if j <= 0 {
		return idx, false
	}
	return t.BackY(idx, j), true
}

// TryBackZ is the boundary-checked BackZ; see TryBackX.
func (t *ZTiled) TryBackZ(idx, k int) (int, bool) {
	if k <= 0 {
		return idx, false
	}
	return t.BackZ(idx, k), true
}
