package core

import "testing"

func TestStepSpecFor(t *testing.T) {
	if s := StepSpecFor(NewArrayOrder(7, 5, 3)); s.Mode != StepStride || s.Sx != 1 || s.Sy != 7 || s.Sz != 35 {
		t.Errorf("array spec = %+v", s)
	}
	if s := StepSpecFor(NewZOrder(8, 8, 8)); s.Mode != StepMorton {
		t.Errorf("zorder spec = %+v", s)
	}
	if s := StepSpecFor(NewZTiled(20, 20, 20, 8)); s.Mode != StepBrickMorton || s.BrickMask != 7 {
		t.Errorf("ztiled spec = %+v", s)
	}
	bl, err := NewBitLayout(8, 8, 8, "xxyyzzxyz")
	if err != nil {
		t.Fatalf("NewBitLayout: %v", err)
	}
	// Lanes straight off the spec: x at bits 0,1,6; y at 2,3,7; z at 4,5,8.
	if s := StepSpecFor(bl); s.Mode != StepMasked || s.MX != 0b001000011 || s.MY != 0b010001100 || s.MZ != 0b100110000 {
		t.Errorf("bitlayout spec = %+v", s)
	}
	for _, l := range []Layout{
		NewTiled(8, 8, 8, 4), NewHilbert(8, 8, 8), NewHZOrder(8, 8, 8),
	} {
		if s := StepSpecFor(l); s.Mode != StepNone {
			t.Errorf("%s spec = %+v, want StepNone", l.Name(), s)
		}
	}
}

// TestZOrderBackSteppers mirrors TestZOrderSteppers for the subtraction
// half: any in-grid backward step must agree with Index.
func TestZOrderBackSteppers(t *testing.T) {
	z := NewZOrder(12, 8, 5) // non-power-of-two x extent: padded index space
	for k := 0; k < 5; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 12; i++ {
				idx := z.Index(i, j, k)
				if i > 0 && z.BackX(idx) != z.Index(i-1, j, k) {
					t.Fatalf("BackX broken at (%d,%d,%d)", i, j, k)
				}
				if j > 0 && z.BackY(idx) != z.Index(i, j-1, k) {
					t.Fatalf("BackY broken at (%d,%d,%d)", i, j, k)
				}
				if k > 0 && z.BackZ(idx) != z.Index(i, j, k-1) {
					t.Fatalf("BackZ broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestZTiledSteppers walks every cell of a volume whose extents are not
// brick multiples, so steps cross brick faces in every axis and the last
// bricks are partial: each of the six directions must agree with Index.
func TestZTiledSteppers(t *testing.T) {
	zt := NewZTiled(12, 9, 5, 4)
	for k := 0; k < 5; k++ {
		for j := 0; j < 9; j++ {
			for i := 0; i < 12; i++ {
				idx := zt.Index(i, j, k)
				if i+1 < 12 && zt.StepX(idx, i) != zt.Index(i+1, j, k) {
					t.Fatalf("StepX broken at (%d,%d,%d)", i, j, k)
				}
				if j+1 < 9 && zt.StepY(idx, j) != zt.Index(i, j+1, k) {
					t.Fatalf("StepY broken at (%d,%d,%d)", i, j, k)
				}
				if k+1 < 5 && zt.StepZ(idx, k) != zt.Index(i, j, k+1) {
					t.Fatalf("StepZ broken at (%d,%d,%d)", i, j, k)
				}
				if i > 0 && zt.BackX(idx, i) != zt.Index(i-1, j, k) {
					t.Fatalf("BackX broken at (%d,%d,%d)", i, j, k)
				}
				if j > 0 && zt.BackY(idx, j) != zt.Index(i, j-1, k) {
					t.Fatalf("BackY broken at (%d,%d,%d)", i, j, k)
				}
				if k > 0 && zt.BackZ(idx, k) != zt.Index(i, j, k-1) {
					t.Fatalf("BackZ broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestTrySteppersRefuseAtEdges pins the hardened edge behavior: the
// checked variants must refuse exactly at the logical extent edges —
// including the padded region of a non-power-of-two ZOrder volume,
// where the unchecked step would still produce a "valid-looking" index
// into padding.
func TestTrySteppersRefuseAtEdges(t *testing.T) {
	z := NewZOrder(5, 6, 7) // pads to 8x8x8; 5,6 are interior to the padded extent
	idx := z.Index(4, 5, 6)
	if _, ok := z.TryStepX(idx); ok {
		t.Error("zorder TryStepX stepped into x padding")
	}
	if _, ok := z.TryStepY(idx); ok {
		t.Error("zorder TryStepY stepped into y padding")
	}
	if _, ok := z.TryStepZ(idx); ok {
		t.Error("zorder TryStepZ stepped into z padding")
	}
	if got, ok := z.TryBackX(idx); !ok || got != z.Index(3, 5, 6) {
		t.Errorf("zorder TryBackX = %d, %v", got, ok)
	}
	origin := z.Index(0, 0, 0)
	if _, ok := z.TryBackX(origin); ok {
		t.Error("zorder TryBackX stepped below zero")
	}
	if _, ok := z.TryBackY(origin); ok {
		t.Error("zorder TryBackY stepped below zero")
	}
	if _, ok := z.TryBackZ(origin); ok {
		t.Error("zorder TryBackZ stepped below zero")
	}
	if got, ok := z.TryStepX(origin); !ok || got != z.Index(1, 0, 0) {
		t.Errorf("zorder TryStepX(origin) = %d, %v", got, ok)
	}

	zt := NewZTiled(10, 10, 10, 4) // partial last bricks on every axis
	edge := zt.Index(9, 9, 9)
	if _, ok := zt.TryStepX(edge, 9); ok {
		t.Error("ztiled TryStepX stepped into partial-brick padding")
	}
	if _, ok := zt.TryStepY(edge, 9); ok {
		t.Error("ztiled TryStepY stepped into partial-brick padding")
	}
	if _, ok := zt.TryStepZ(edge, 9); ok {
		t.Error("ztiled TryStepZ stepped into partial-brick padding")
	}
	if got, ok := zt.TryBackX(edge, 9); !ok || got != zt.Index(8, 9, 9) {
		t.Errorf("ztiled TryBackX = %d, %v", got, ok)
	}
	if _, ok := zt.TryBackX(zt.Index(0, 3, 3), 0); ok {
		t.Error("ztiled TryBackX stepped below zero")
	}
}

// FuzzStepperWalk fuzzes extents, brick edges and start cells, then
// checks that one step in each legal direction lands exactly where
// Index says the neighbor lives — for ZOrder (padded index space) and
// ZTiled (brick crossings, partial bricks) alike — and that the checked
// variants refuse exactly at the extent edges.
func FuzzStepperWalk(f *testing.F) {
	f.Add(8, 8, 8, 0, 0, 0, 2)
	f.Add(12, 9, 5, 11, 8, 4, 1)
	f.Add(20, 20, 20, 7, 8, 15, 3) // brick 8: (7,8) straddles a face
	f.Add(33, 17, 2, 31, 16, 1, 4)
	f.Fuzz(func(t *testing.T, nxRaw, nyRaw, nzRaw, iRaw, jRaw, kRaw, brickRaw int) {
		nx, ny, nz := fuzzDim(nxRaw), fuzzDim(nyRaw), fuzzDim(nzRaw)
		i, j, k := fuzzCoord(iRaw, nx), fuzzCoord(jRaw, ny), fuzzCoord(kRaw, nz)
		brick := 1 << (uint(brickRaw) % 5) // 1..16

		z := NewZOrder(nx, ny, nz)
		checkWalk(t, "zorder", nx, ny, nz, i, j, k, z,
			func(idx int) (int, bool) { return z.TryStepX(idx) },
			func(idx int) (int, bool) { return z.TryStepY(idx) },
			func(idx int) (int, bool) { return z.TryStepZ(idx) },
			func(idx int) (int, bool) { return z.TryBackX(idx) },
			func(idx int) (int, bool) { return z.TryBackY(idx) },
			func(idx int) (int, bool) { return z.TryBackZ(idx) })

		spec := fuzzSpec(nx, ny, nz, uint64(brickRaw)*2654435761+uint64(iRaw))
		bl, err := NewBitLayout(nx, ny, nz, spec)
		if err != nil {
			t.Fatalf("NewBitLayout(%d,%d,%d,%q): %v", nx, ny, nz, spec, err)
		}
		checkWalk(t, "bit:"+spec, nx, ny, nz, i, j, k, bl,
			func(idx int) (int, bool) { return bl.TryStepX(idx) },
			func(idx int) (int, bool) { return bl.TryStepY(idx) },
			func(idx int) (int, bool) { return bl.TryStepZ(idx) },
			func(idx int) (int, bool) { return bl.TryBackX(idx) },
			func(idx int) (int, bool) { return bl.TryBackY(idx) },
			func(idx int) (int, bool) { return bl.TryBackZ(idx) })

		zt := NewZTiled(nx, ny, nz, brick)
		checkWalk(t, "ztiled", nx, ny, nz, i, j, k, zt,
			func(idx int) (int, bool) { return zt.TryStepX(idx, i) },
			func(idx int) (int, bool) { return zt.TryStepY(idx, j) },
			func(idx int) (int, bool) { return zt.TryStepZ(idx, k) },
			func(idx int) (int, bool) { return zt.TryBackX(idx, i) },
			func(idx int) (int, bool) { return zt.TryBackY(idx, j) },
			func(idx int) (int, bool) { return zt.TryBackZ(idx, k) })
	})
}

func checkWalk(t *testing.T, name string, nx, ny, nz, i, j, k int, l Layout,
	stepX, stepY, stepZ, backX, backY, backZ func(int) (int, bool)) {
	t.Helper()
	idx := l.Index(i, j, k)
	check := func(dir string, got int, ok bool, wi, wj, wk int) {
		t.Helper()
		legal := wi >= 0 && wi < nx && wj >= 0 && wj < ny && wk >= 0 && wk < nz
		if ok != legal {
			t.Fatalf("%s %dx%dx%d %s at (%d,%d,%d): ok=%v, want %v", name, nx, ny, nz, dir, i, j, k, ok, legal)
		}
		if legal {
			if want := l.Index(wi, wj, wk); got != want {
				t.Fatalf("%s %dx%dx%d %s at (%d,%d,%d): idx %d, want %d", name, nx, ny, nz, dir, i, j, k, got, want)
			}
		} else if got != idx {
			t.Fatalf("%s %dx%dx%d %s refused but moved idx %d -> %d", name, nx, ny, nz, dir, idx, got)
		}
	}
	got, ok := stepX(idx)
	check("+x", got, ok, i+1, j, k)
	got, ok = stepY(idx)
	check("+y", got, ok, i, j+1, k)
	got, ok = stepZ(idx)
	check("+z", got, ok, i, j, k+1)
	got, ok = backX(idx)
	check("-x", got, ok, i-1, j, k)
	got, ok = backY(idx)
	check("-y", got, ok, i, j-1, k)
	got, ok = backZ(idx)
	check("-z", got, ok, i, j, k-1)
}
