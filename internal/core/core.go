// Package core implements the paper's primary contribution: a lightweight
// memory-layout library that puts array-order (row-major) and Z-order
// (Morton-order space-filling curve) indexing behind one interface, with
// the index computation cost on deliberately equal footing.
//
// Per the paper (§III-C), both layouts are driven by small static tables
// built once at initialization:
//
//   - array order: a yoffset table (yoffset[j] = j*nx) and a zoffset
//     table (zoffset[k] = k*nx*ny); Index is two loads and two adds.
//   - Z order: three per-axis tables of dilated (bit-spread) coordinate
//     contributions; Index is three loads and two ORs.
//
// So the measured runtime difference between the two reflects memory
// locality, not indexing arithmetic.
//
// Two further layouts support the paper's related-work comparisons:
// Tiled (cache blocking, §II-A) and Hilbert (Reissmann et al. 2014,
// §II-B). Applications access all of them through the Layout interface,
// exactly as the paper's getIndex(i,j,k) call.
package core

import (
	"fmt"
	"strings"

	"sfcmem/internal/hilbert"
	"sfcmem/internal/morton"
)

// Layout maps a 3D structured-grid index (i,j,k) to a linear offset into
// a flat buffer. i varies fastest in the array-order sense: 0 <= i < nx,
// 0 <= j < ny, 0 <= k < nz.
//
// Implementations guarantee that Index is injective over the grid and
// that every returned offset is in [0, Len()).
type Layout interface {
	// Index returns the buffer offset of element (i,j,k).
	Index(i, j, k int) int
	// Dims returns the logical grid extents.
	Dims() (nx, ny, nz int)
	// Len returns the buffer length required to hold the grid under
	// this layout. For array order this is nx*ny*nz; space-filling
	// layouts may require power-of-two padding (paper §V).
	Len() int
	// Name returns the layout's registry name ("array", "zorder", ...).
	Name() string
}

// Kind enumerates the built-in layouts.
type Kind int

const (
	// ArrayKind is traditional row-major ("array order" in the paper).
	ArrayKind Kind = iota
	// ZKind is the Z-order / Morton-order space-filling curve layout.
	ZKind
	// TiledKind is a 3D blocked/tiled layout (the classic cache-blocking
	// alternative the paper discusses as previous work).
	TiledKind
	// HilbertKind is the Hilbert space-filling curve layout.
	HilbertKind
	// ZTiledKind is Morton-within-bricks: Z-order locality without the
	// power-of-two padding blowup (the paper's §V future work).
	ZTiledKind
	// HZKind is hierarchical Z order (Pascucci & Frank 2001): Morton
	// samples regrouped by resolution level for progressive access.
	HZKind
)

// String returns the registry name of the kind.
func (k Kind) String() string {
	switch k {
	case ArrayKind:
		return "array"
	case ZKind:
		return "zorder"
	case TiledKind:
		return "tiled"
	case HilbertKind:
		return "hilbert"
	case ZTiledKind:
		return "ztiled"
	case HZKind:
		return "hzorder"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a layout name (as accepted by the command-line tools)
// to its Kind, folding case and surrounding whitespace. Recognized:
// "array"/"a"/"row-major"/"rowmajor", "zorder"/"z"/"morton"/"z-order",
// "tiled"/"blocked"/"t", "hilbert"/"h",
// "ztiled"/"zt"/"morton-tiled"/"bricked", and
// "hzorder"/"hz"/"hierarchical".
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "array", "a", "row-major", "rowmajor":
		return ArrayKind, nil
	case "zorder", "z", "morton", "z-order":
		return ZKind, nil
	case "tiled", "blocked", "t":
		return TiledKind, nil
	case "hilbert", "h":
		return HilbertKind, nil
	case "ztiled", "zt", "morton-tiled", "bricked":
		return ZTiledKind, nil
	case "hzorder", "hz", "hierarchical":
		return HZKind, nil
	}
	return 0, fmt.Errorf("core: unknown layout %q (recognized: array, zorder, tiled, hilbert, ztiled, hzorder)", s)
}

// ParseSpec resolves a layout specification string for an nx×ny×nz
// grid. A spec is either a registry kind name as accepted by ParseKind
// ("zorder", "tiled", …) or a parameterized generalized-Morton
// interleave ("bit:yxzyxz…", see BitLayout). This is the constructor
// for every layout string that travels — volume manifests, upload
// query parameters, -volume flags — so a tuned layout persisted as
// "bit:…" reconstructs exactly on reload.
func ParseSpec(spec string, nx, ny, nz int) (Layout, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	if rest, ok := strings.CutPrefix(s, BitSpecPrefix); ok {
		return NewBitLayout(nx, ny, nz, rest)
	}
	kind, err := ParseKind(s)
	if err != nil {
		return nil, err
	}
	return New(kind, nx, ny, nz), nil
}

// New constructs a layout of the given kind for an nx×ny×nz grid.
// TiledKind uses DefaultTile; use NewTiled for a specific tile edge.
func New(kind Kind, nx, ny, nz int) Layout {
	switch kind {
	case ArrayKind:
		return NewArrayOrder(nx, ny, nz)
	case ZKind:
		return NewZOrder(nx, ny, nz)
	case TiledKind:
		return NewTiled(nx, ny, nz, DefaultTile)
	case HilbertKind:
		return NewHilbert(nx, ny, nz)
	case ZTiledKind:
		return NewZTiled(nx, ny, nz, DefaultBrick)
	case HZKind:
		return NewHZOrder(nx, ny, nz)
	}
	panic(fmt.Sprintf("core: invalid kind %d", int(kind)))
}

// Kinds lists all built-in layout kinds in a stable order.
func Kinds() []Kind {
	return []Kind{ArrayKind, ZKind, TiledKind, HilbertKind, ZTiledKind, HZKind}
}

func checkDims(nx, ny, nz int) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("core: grid extents %dx%dx%d must be positive", nx, ny, nz))
	}
}

// ArrayOrder is the traditional row-major layout, implemented with the
// paper's offset tables so its index cost matches ZOrder's.
type ArrayOrder struct {
	xoffset    []int // xoffset[i] = i (identity; completes AxisOffsets)
	yoffset    []int // yoffset[j] = j * nx
	zoffset    []int // zoffset[k] = k * nx * ny
	nx, ny, nz int
}

// NewArrayOrder builds an array-order layout for an nx×ny×nz grid.
func NewArrayOrder(nx, ny, nz int) *ArrayOrder {
	checkDims(nx, ny, nz)
	a := &ArrayOrder{nx: nx, ny: ny, nz: nz}
	a.xoffset = make([]int, nx)
	for i := 0; i < nx; i++ {
		a.xoffset[i] = i
	}
	a.yoffset = make([]int, ny)
	for j := 0; j < ny; j++ {
		a.yoffset[j] = j * nx
	}
	a.zoffset = make([]int, nz)
	for k := 0; k < nz; k++ {
		a.zoffset[k] = k * nx * ny
	}
	return a
}

// Index returns i + j*nx + k*nx*ny via two table loads and two adds.
func (a *ArrayOrder) Index(i, j, k int) int { return i + a.yoffset[j] + a.zoffset[k] }

// Dims returns the grid extents.
func (a *ArrayOrder) Dims() (nx, ny, nz int) { return a.nx, a.ny, a.nz }

// Len returns nx*ny*nz: array order needs no padding.
func (a *ArrayOrder) Len() int { return a.nx * a.ny * a.nz }

// Name returns "array".
func (a *ArrayOrder) Name() string { return "array" }

// ZOrder is the Z-order (Morton) space-filling curve layout.
type ZOrder struct {
	t          *morton.Table3
	xi, yi, zi []int // the Table3 dilated contributions as ints (AxisOffsets)
	nx, ny, nz int
	length     int
}

// NewZOrder builds a Z-order layout for an nx×ny×nz grid. Non-power-of-
// two extents are supported by padding the buffer (paper §V).
func NewZOrder(nx, ny, nz int) *ZOrder {
	checkDims(nx, ny, nz)
	t := morton.NewTable3(nx, ny, nz)
	z := &ZOrder{t: t, nx: nx, ny: ny, nz: nz, length: t.PaddedLen()}
	z.xi = make([]int, nx)
	z.yi = make([]int, ny)
	z.zi = make([]int, nz)
	for i := 0; i < nx; i++ {
		z.xi[i] = int(t.Index(i, 0, 0))
	}
	for j := 0; j < ny; j++ {
		z.yi[j] = int(t.Index(0, j, 0))
	}
	for k := 0; k < nz; k++ {
		z.zi[k] = int(t.Index(0, 0, k))
	}
	return z
}

// Index returns the Morton code of (i,j,k) via three table loads and two
// ORs.
func (z *ZOrder) Index(i, j, k int) int { return int(z.t.Index(i, j, k)) }

// Dims returns the logical grid extents.
func (z *ZOrder) Dims() (nx, ny, nz int) { return z.nx, z.ny, z.nz }

// Len returns the padded buffer length required by the interleaved
// indices; equal to nx*ny*nz when the extents are equal powers of two.
func (z *ZOrder) Len() int { return z.length }

// Name returns "zorder".
func (z *ZOrder) Name() string { return "zorder" }

// Overhead reports the fraction of the buffer wasted by power-of-two
// padding: Len()/ideal - 1. Zero for cubic power-of-two grids.
func (z *ZOrder) Overhead() float64 {
	ideal := float64(z.nx) * float64(z.ny) * float64(z.nz)
	return float64(z.length)/ideal - 1
}

// DefaultTile is the default tile edge for the Tiled layout: 64 float32
// elements per tile row would overshoot, 8³ tiles (2KB of float32) sit
// comfortably inside an L1 cache, matching common blocking practice.
const DefaultTile = 8

// Tiled is a 3D blocked layout: the grid is cut into tile×tile×tile
// bricks stored contiguously, bricks ordered row-major, elements inside
// a brick ordered row-major. Like the other layouts it is table-driven:
// per-axis tables hold the precomputed brick base contribution and the
// intra-brick offset contribution, so Index is six loads and four adds.
type Tiled struct {
	// xb[i] = (i/tile)        * tile³   — brick column base (scaled later)
	// xr[i] = i%tile                    — intra-brick x offset
	xb, yb, zb []int
	xr, yr, zr []int
	// Combined per-axis tables xoff = xb+xr etc. (AxisOffsets).
	xoff, yoff, zoff []int
	nx, ny, nz       int
	tile             int
	length           int
}

// NewTiled builds a tiled layout with the given tile edge. Extents that
// are not multiples of the tile edge are padded up to the next multiple.
func NewTiled(nx, ny, nz, tile int) *Tiled {
	checkDims(nx, ny, nz)
	if tile <= 0 {
		panic("core: tile edge must be positive")
	}
	ceil := func(n int) int { return (n + tile - 1) / tile }
	tx, ty := ceil(nx), ceil(ny)
	t3 := tile * tile * tile
	t := &Tiled{nx: nx, ny: ny, nz: nz, tile: tile}
	t.xb = make([]int, nx)
	t.xr = make([]int, nx)
	for i := 0; i < nx; i++ {
		t.xb[i] = (i / tile) * t3
		t.xr[i] = i % tile
	}
	t.yb = make([]int, ny)
	t.yr = make([]int, ny)
	for j := 0; j < ny; j++ {
		t.yb[j] = (j / tile) * tx * t3
		t.yr[j] = (j % tile) * tile
	}
	t.zb = make([]int, nz)
	t.zr = make([]int, nz)
	for k := 0; k < nz; k++ {
		t.zb[k] = (k / tile) * ty * tx * t3
		t.zr[k] = (k % tile) * tile * tile
	}
	t.length = ceil(nz) * ty * tx * t3
	t.xoff = sumAxes(t.xb, t.xr)
	t.yoff = sumAxes(t.yb, t.yr)
	t.zoff = sumAxes(t.zb, t.zr)
	return t
}

// Index returns the tiled offset of (i,j,k).
func (t *Tiled) Index(i, j, k int) int {
	return t.xb[i] + t.yb[j] + t.zb[k] + t.xr[i] + t.yr[j] + t.zr[k]
}

// Dims returns the logical grid extents.
func (t *Tiled) Dims() (nx, ny, nz int) { return t.nx, t.ny, t.nz }

// Len returns the buffer length, padded to whole tiles per axis.
func (t *Tiled) Len() int { return t.length }

// Name returns "tiled".
func (t *Tiled) Name() string { return "tiled" }

// Tile returns the tile edge length.
func (t *Tiled) Tile() int { return t.tile }

// Hilbert is the Hilbert space-filling curve layout. It pads the grid to
// a power-of-two cube (Hilbert indexing as implemented requires equal
// per-axis orders). Its Index cost is intentionally *not* table-reducible
// — the curve has cross-coordinate bit dependencies — which is the
// trade-off Reissmann et al. 2014 report and the ablation bench measures.
type Hilbert struct {
	nx, ny, nz int
	bits       int
	length     int
}

// NewHilbert builds a Hilbert layout for an nx×ny×nz grid.
func NewHilbert(nx, ny, nz int) *Hilbert {
	checkDims(nx, ny, nz)
	side := morton.NextPow2(max3(nx, ny, nz))
	bits := morton.Log2(side)
	if bits == 0 {
		bits = 1
		side = 2
	}
	return &Hilbert{nx: nx, ny: ny, nz: nz, bits: bits, length: side * side * side}
}

// Index returns the Hilbert index of (i,j,k).
func (h *Hilbert) Index(i, j, k int) int {
	return int(hilbert.Encode3(uint32(i), uint32(j), uint32(k), h.bits))
}

// Dims returns the logical grid extents.
func (h *Hilbert) Dims() (nx, ny, nz int) { return h.nx, h.ny, h.nz }

// Len returns the padded cube volume.
func (h *Hilbert) Len() int { return h.length }

// Name returns "hilbert".
func (h *Hilbert) Name() string { return "hilbert" }

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
