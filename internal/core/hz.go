package core

import (
	"math/bits"

	"sfcmem/internal/morton"
)

// HZOrder is the hierarchical Z-order layout of Pascucci & Frank 2001
// (the paper's ref [7]). Samples are Morton-indexed but regrouped by
// resolution level — the level of a sample is the number of trailing
// zeros of its Morton code — so that every power-of-two subsampling
// lattice occupies a *contiguous prefix* of the buffer:
//
//	hz(0) = 0
//	hz(m) = 2^(B-t-1) + (m >> (t+1))   for m > 0, t = trailing zeros of m
//
// with B the total Morton bits. This is what gives ref [7] its
// progressive out-of-core access: reading resolution level L means
// reading the first 2^(B-3L) elements, not striding across the file.
// The cost is a slightly heavier Index (a Morton lookup plus trailing-
// zero arithmetic) and the same power-of-two cube padding as Hilbert.
type HZOrder struct {
	t          *morton.Table3
	nx, ny, nz int
	totalBits  uint
	length     int
}

// NewHZOrder builds an HZ-order layout; the buffer is padded to the
// enclosing power-of-two cube.
func NewHZOrder(nx, ny, nz int) *HZOrder {
	checkDims(nx, ny, nz)
	side := morton.NextPow2(max3(nx, ny, nz))
	b := uint(morton.Log2(side))
	return &HZOrder{
		t:  morton.NewTable3(nx, ny, nz),
		nx: nx, ny: ny, nz: nz,
		totalBits: 3 * b,
		length:    1 << (3 * b),
	}
}

// Index returns the HZ index of (i,j,k).
func (h *HZOrder) Index(i, j, k int) int {
	m := h.t.Index(i, j, k)
	if m == 0 {
		return 0
	}
	t := uint(bits.TrailingZeros64(m))
	return int(1<<(h.totalBits-t-1) + (m >> (t + 1)))
}

// Coords inverts the HZ index; padding offsets (coordinates outside the
// logical extents) report ok == false.
func (h *HZOrder) Coords(idx int) (i, j, k int, ok bool) {
	var m uint64
	if idx > 0 {
		hb := uint(bits.Len64(uint64(idx)) - 1) // highest set bit
		t := h.totalBits - hb - 1
		m = (uint64(idx)-1<<hb)<<(t+1) | 1<<t
	}
	x, y, z := morton.Decode3(m)
	i, j, k = int(x), int(y), int(z)
	return i, j, k, i < h.nx && j < h.ny && k < h.nz
}

// Dims returns the logical grid extents.
func (h *HZOrder) Dims() (nx, ny, nz int) { return h.nx, h.ny, h.nz }

// Len returns the padded cube volume.
func (h *HZOrder) Len() int { return h.length }

// Name returns "hzorder".
func (h *HZOrder) Name() string { return "hzorder" }

// LevelPrefix returns how many leading buffer elements hold the
// complete level-L subsampling lattice (stride 2^L per axis) of the
// padded cube: 2^(B-3L), clamped to at least 1. This contiguous-prefix
// property is the point of the layout.
func (h *HZOrder) LevelPrefix(level int) int {
	if level < 0 {
		panic("core: level must be >= 0")
	}
	shift := 3 * uint(level)
	if shift >= h.totalBits {
		return 1
	}
	return 1 << (h.totalBits - shift)
}

var _ Inverse = (*HZOrder)(nil)
