package core

import "testing"

// separableKinds are the layouts that must implement Separable; Hilbert
// and HZ order are excluded by design (cross-coordinate dependencies).
var separableKinds = []Kind{ArrayKind, ZKind, TiledKind, ZTiledKind}

func TestAxisOffsetsMatchIndex(t *testing.T) {
	// Non-cubic, non-power-of-two extents so padding paths are exercised.
	const nx, ny, nz = 13, 6, 9
	for _, kind := range separableKinds {
		l := New(kind, nx, ny, nz)
		sep, ok := l.(Separable)
		if !ok {
			t.Fatalf("%v: does not implement Separable", kind)
		}
		xs, ys, zs := sep.AxisOffsets()
		if len(xs) != nx || len(ys) != ny || len(zs) != nz {
			t.Fatalf("%v: table lengths %d/%d/%d, want %d/%d/%d",
				kind, len(xs), len(ys), len(zs), nx, ny, nz)
		}
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if got, want := xs[i]+ys[j]+zs[k], l.Index(i, j, k); got != want {
						t.Fatalf("%v: offsets(%d,%d,%d) = %d, Index = %d",
							kind, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestNonSeparableKindsExcluded(t *testing.T) {
	for _, kind := range []Kind{HilbertKind, HZKind} {
		if _, ok := New(kind, 8, 8, 8).(Separable); ok {
			t.Errorf("%v: claims Separable but its index is not axis-separable", kind)
		}
	}
}

func TestArrayOrderStrides(t *testing.T) {
	a := NewArrayOrder(7, 5, 3)
	sx, sy, sz := a.Strides()
	for k := 0; k < 3; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 7; i++ {
				idx := a.Index(i, j, k)
				if i+1 < 7 && a.Index(i+1, j, k) != idx+sx {
					t.Fatalf("x stride broken at (%d,%d,%d)", i, j, k)
				}
				if j+1 < 5 && a.Index(i, j+1, k) != idx+sy {
					t.Fatalf("y stride broken at (%d,%d,%d)", i, j, k)
				}
				if k+1 < 3 && a.Index(i, j, k+1) != idx+sz {
					t.Fatalf("z stride broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestZOrderSteppers(t *testing.T) {
	// Include a non-power-of-two extent: steppers operate on the padded
	// index space, so any in-grid step must still agree with Index.
	z := NewZOrder(12, 8, 5)
	for k := 0; k < 5; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 12; i++ {
				idx := z.Index(i, j, k)
				if i+1 < 12 && z.StepX(idx) != z.Index(i+1, j, k) {
					t.Fatalf("StepX broken at (%d,%d,%d)", i, j, k)
				}
				if j+1 < 8 && z.StepY(idx) != z.Index(i, j+1, k) {
					t.Fatalf("StepY broken at (%d,%d,%d)", i, j, k)
				}
				if k+1 < 5 && z.StepZ(idx) != z.Index(i, j, k+1) {
					t.Fatalf("StepZ broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestAxisOffsetDeltasAreStrideDeltas(t *testing.T) {
	// The flat fast path advances an index by table deltas
	// (xs[i+1]-xs[i], ...); verify the deltas reproduce Index exactly for
	// every separable layout, which is the incremental-update contract.
	const nx, ny, nz = 10, 10, 10
	for _, kind := range separableKinds {
		l := New(kind, nx, ny, nz)
		xs, ys, zs := l.(Separable).AxisOffsets()
		for k := 0; k < nz-1; k++ {
			for j := 0; j < ny-1; j++ {
				for i := 0; i < nx-1; i++ {
					idx := l.Index(i, j, k)
					if idx+xs[i+1]-xs[i] != l.Index(i+1, j, k) ||
						idx+ys[j+1]-ys[j] != l.Index(i, j+1, k) ||
						idx+zs[k+1]-zs[k] != l.Index(i, j, k+1) {
						t.Fatalf("%v: delta step broken at (%d,%d,%d)", kind, i, j, k)
					}
				}
			}
		}
	}
}
