package grid

import (
	"fmt"
	"math"
	"strings"
)

// Scalar is the set of element types a volume can store. The paper's
// locality argument is really about voxels-per-cache-line, so the
// element width is a first-class experimental axis: a 64-byte line
// holds 16 float32 voxels but 64 uint8 voxels, which shifts where each
// layout's payoff lands. The constraint deliberately has no tilde
// terms, so a type switch over the four members is exhaustive.
type Scalar interface {
	uint8 | uint16 | float32 | float64
}

// Accum is the floating-point type kernels accumulate in. Element
// storage may be narrow, but filter sums and ray compositing always
// run in float32 or float64 so precision is a property of the kernel,
// not of the storage dtype.
type Accum interface {
	float32 | float64
}

// Dtype names a Scalar member at runtime — the dynamic mirror of the
// static constraint, used by IO, the facade's AnyGrid and sfcserved's
// request fields.
type Dtype uint8

const (
	U8 Dtype = iota
	U16
	F32
	F64
)

// String returns the canonical dtype name ("uint8", "uint16",
// "float32", "float64").
func (d Dtype) String() string {
	switch d {
	case U8:
		return "uint8"
	case U16:
		return "uint16"
	case F32:
		return "float32"
	case F64:
		return "float64"
	}
	return fmt.Sprintf("Dtype(%d)", uint8(d))
}

// Size returns the element width in bytes.
func (d Dtype) Size() int {
	switch d {
	case U8:
		return 1
	case U16:
		return 2
	case F32:
		return 4
	case F64:
		return 8
	}
	return 0
}

// Scale returns the normalization scale of the dtype: stored sample v
// represents the normalized value v/Scale. Integer types span their
// full range over [0,1] (the convention of 8/16-bit scanner exports);
// float types store normalized values directly.
func (d Dtype) Scale() float64 {
	switch d {
	case U8:
		return 255
	case U16:
		return 65535
	}
	return 1
}

// Dtypes returns all supported dtypes in element-size order.
func Dtypes() []Dtype { return []Dtype{U8, U16, F32, F64} }

// ParseDtype parses a dtype name, accepting the canonical names and
// the short forms u8/u16/f32/f64, case-insensitively.
func ParseDtype(s string) (Dtype, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uint8", "u8", "byte":
		return U8, nil
	case "uint16", "u16":
		return U16, nil
	case "float32", "f32", "float":
		return F32, nil
	case "float64", "f64", "double":
		return F64, nil
	}
	return 0, fmt.Errorf("grid: unknown dtype %q (recognized: uint8, uint16, float32, float64)", s)
}

// DtypeFor returns the Dtype describing T. The type switch is
// setup-time only; hot loops must use monomorphized conversions, never
// this function.
func DtypeFor[T Scalar]() Dtype {
	var z T
	switch any(z).(type) {
	case uint8:
		return U8
	case uint16:
		return U16
	case float32:
		return F32
	default:
		return F64
	}
}

// NormScale returns DtypeFor[T]().Scale() — the divisor that maps
// stored samples of T into normalized [0,1] space.
func NormScale[T Scalar]() float64 { return DtypeFor[T]().Scale() }

// FromNorm converts a normalized value x (nominally in [0,1]) to the
// storage representation of T under the given scale. For scale == 1
// (float dtypes) this is exactly T(x), preserving bit-identity with
// float-native kernels; for integer dtypes it rounds half-up and
// clamps to [0, scale].
func FromNorm[T Scalar](x, scale float64) T {
	if scale == 1 {
		return T(x)
	}
	v := x * scale
	if v <= 0 {
		return T(0)
	}
	if v >= scale {
		return T(scale)
	}
	return T(math.Floor(v + 0.5))
}

// QuantizeUnit converts a [0,1] float32 sample (the dataset
// generators' native output) to T. For T = float32 this is the
// identity, so generated float32 volumes are bit-identical to the
// pre-generic generators.
func QuantizeUnit[T Scalar](v float32) T {
	return FromNorm[T](float64(v), NormScale[T]())
}

// ConvertGrid copies g into a new grid of element type Dst under the
// same layout, mapping samples through normalized space:
// dst = FromNorm(float64(src)/srcScale). Converting between equal
// dtypes reproduces the source samples exactly.
func ConvertGrid[Dst, Src Scalar](g *Grid[Src]) *Grid[Dst] {
	out := NewOf[Dst](g.layout)
	srcInv := 1 / NormScale[Src]()
	dstScale := NormScale[Dst]()
	for idx, v := range g.data {
		out.data[idx] = FromNorm[Dst](float64(v)*srcInv, dstScale)
	}
	return out
}
