package grid

import (
	"math"
	"testing"

	"sfcmem/internal/core"
)

func TestDtypeProperties(t *testing.T) {
	cases := []struct {
		dt    Dtype
		name  string
		size  int
		scale float64
	}{
		{U8, "uint8", 1, 255},
		{U16, "uint16", 2, 65535},
		{F32, "float32", 4, 1},
		{F64, "float64", 8, 1},
	}
	for _, c := range cases {
		if c.dt.String() != c.name || c.dt.Size() != c.size || c.dt.Scale() != c.scale {
			t.Errorf("%v: got (%s,%d,%g), want (%s,%d,%g)",
				c.dt, c.dt.String(), c.dt.Size(), c.dt.Scale(), c.name, c.size, c.scale)
		}
		got, err := ParseDtype(c.name)
		if err != nil || got != c.dt {
			t.Errorf("ParseDtype(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := ParseDtype("int7"); err == nil {
		t.Error("ParseDtype(int7) should fail")
	}
	if got, err := ParseDtype("  F32 "); err != nil || got != F32 {
		t.Errorf("ParseDtype should case-fold and trim: got %v, %v", got, err)
	}
}

func TestDtypeFor(t *testing.T) {
	if DtypeFor[uint8]() != U8 || DtypeFor[uint16]() != U16 ||
		DtypeFor[float32]() != F32 || DtypeFor[float64]() != F64 {
		t.Error("DtypeFor mapped a Scalar to the wrong Dtype")
	}
}

func TestFromNormFloatIsIdentity(t *testing.T) {
	for _, x := range []float64{0, 0.25, 1, -0.5, 1.5, 1.0 / 3.0} {
		if got := FromNorm[float32](x, 1); got != float32(x) {
			t.Errorf("FromNorm[float32](%v) = %v, want %v", x, got, float32(x))
		}
		if got := FromNorm[float64](x, 1); got != x {
			t.Errorf("FromNorm[float64](%v) = %v, want %v", x, got, x)
		}
	}
}

func TestFromNormIntRoundsAndClamps(t *testing.T) {
	if got := FromNorm[uint8](0.5, 255); got != 128 { // 127.5 rounds half-up
		t.Errorf("FromNorm[uint8](0.5) = %d, want 128", got)
	}
	if got := FromNorm[uint8](-0.2, 255); got != 0 {
		t.Errorf("FromNorm[uint8](-0.2) = %d, want 0", got)
	}
	if got := FromNorm[uint8](1.7, 255); got != 255 {
		t.Errorf("FromNorm[uint8](1.7) = %d, want 255", got)
	}
	if got := FromNorm[uint16](1, 65535); got != 65535 {
		t.Errorf("FromNorm[uint16](1) = %d, want 65535", got)
	}
	// Every uint8 code must survive a normalize/denormalize round trip.
	for v := 0; v <= 255; v++ {
		norm := float64(v) / 255
		if got := FromNorm[uint8](norm, 255); int(got) != v {
			t.Fatalf("uint8 code %d round-tripped to %d", v, got)
		}
	}
}

func TestQuantizeUnitFloat32Identity(t *testing.T) {
	for _, v := range []float32{0, 0.123456, 0.9999999, 1} {
		if got := QuantizeUnit[float32](v); got != v {
			t.Errorf("QuantizeUnit[float32](%v) = %v", v, got)
		}
	}
}

func TestConvertGridRoundTrips(t *testing.T) {
	l := core.NewZOrder(9, 6, 5)
	src := FromFunc(l, func(i, j, k int) float32 {
		return float32(i+j+k) / 18
	})
	// Same-dtype conversion is exact.
	if !Equal(ConvertGrid[float32](src), src) {
		t.Error("float32->float32 conversion not identity")
	}
	// float32 -> uint8 -> float32 must stay within half a code.
	u8 := ConvertGrid[uint8](src)
	back := ConvertGrid[float32](u8)
	if d := MaxAbsDiff(src, back); d > 0.5/255+1e-7 {
		t.Errorf("uint8 round trip error %v exceeds half a code", d)
	}
	// uint8 -> uint16 -> uint8 is exact (65535 is a multiple of 255).
	u16 := ConvertGrid[uint16](u8)
	if !Equal(ConvertGrid[uint8](u16), u8) {
		t.Error("uint8->uint16->uint8 not exact")
	}
	if u8.Dtype() != U8 || u16.Dtype() != U16 {
		t.Error("Dtype() mismatch on converted grids")
	}
}

func TestTracedElemSizePerDtype(t *testing.T) {
	l := core.NewArrayOrder(4, 1, 1)
	checkStride := func(t *testing.T, addrs []uint64, want uint64) {
		t.Helper()
		if len(addrs) != 2 || addrs[1]-addrs[0] != want {
			t.Fatalf("addresses %v: want stride %d", addrs, want)
		}
	}
	var addrs []uint64
	sink := SinkFunc(func(a uint64, _ bool) { addrs = append(addrs, a) })

	tr8 := NewTraced(NewOf[uint8](l), 0, sink)
	tr8.At(0, 0, 0)
	tr8.At(1, 0, 0)
	checkStride(t, addrs, 1)

	addrs = nil
	tr64 := NewTraced(NewOf[float64](l), 0, sink)
	tr64.At(0, 0, 0)
	tr64.At(1, 0, 0)
	checkStride(t, addrs, 8)

	addrs = nil
	tr32 := NewTraced(New(l), 0, sink)
	tr32.At(0, 0, 0)
	tr32.At(1, 0, 0)
	checkStride(t, addrs, 4)
}

func TestFlatPathsEngageForEveryDtype(t *testing.T) {
	// The flat fast path must survive the generic refactor for all four
	// dtypes: Flatten succeeds on separable layouts and agrees with the
	// interface path sample for sample.
	l := core.NewZOrder(8, 7, 6)
	checkDtype(t, NewOf[uint8](l))
	checkDtype(t, NewOf[uint16](l))
	checkDtype(t, NewOf[float32](l))
	checkDtype(t, NewOf[float64](l))
}

func checkDtype[T Scalar](t *testing.T, g *Grid[T]) {
	t.Helper()
	nx, ny, nz := g.Dims()
	scale := NormScale[T]()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				g.Set(i, j, k, FromNorm[T](float64(i+10*j+100*k)/float64(100*nz), scale))
			}
		}
	}
	f := Flatten[T](g)
	if f == nil {
		t.Fatalf("%v: Flatten failed on a separable layout", DtypeFor[T]())
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if f.At(i, j, k) != g.At(i, j, k) {
					t.Fatalf("%v: flat At(%d,%d,%d) disagrees", DtypeFor[T](), i, j, k)
				}
			}
		}
	}
	inv := 1 / scale
	for _, p := range [][3]float64{{1.5, 2.25, 3.75}, {0, 0, 0}, {6.9, 5.9, 4.9}} {
		want := SampleReader(g, inv, p[0], p[1], p[2])
		got := SampleFlat(f, inv, p[0], p[1], p[2])
		if got != want {
			t.Fatalf("%v: SampleFlat(%v) = %v, interface path %v", DtypeFor[T](), p, got, want)
		}
		if math.IsNaN(float64(got)) {
			t.Fatalf("%v: sample is NaN", DtypeFor[T]())
		}
	}
}
