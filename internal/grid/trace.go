package grid

// Sink consumes a stream of memory accesses. The cache simulator's
// per-thread front ends implement it; a traced grid view converts every
// logical (i,j,k) access into the byte address the element would occupy
// in a real address space and feeds it onward.
type Sink interface {
	// Access records one element-sized access at byte address addr.
	Access(addr uint64, write bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(addr uint64, write bool)

// Access calls f(addr, write).
func (f SinkFunc) Access(addr uint64, write bool) { f(addr, write) }

// Traced is a view of a Grid that reports every element access to a
// Sink before satisfying it. Each simulated thread gets its own Traced
// view (wired to its own private-cache front end) over the shared grid.
//
// The byte address of element (i,j,k) is base + elemSize*Index(i,j,k)
// with elemSize the dtype's width: exactly the address arithmetic the
// hardware would see, so the cache simulator observes the true layout-
// and element-width-dependent access stream — a uint8 volume packs 64
// voxels into a 64-byte line where float32 packs 16, and the simulated
// caches see that difference.
type Traced[T Scalar] struct {
	g        *Grid[T]
	sink     Sink
	base     uint64
	elemSize uint64
}

var (
	_ Reader      = (*Traced[float32])(nil)
	_ Writer      = (*Traced[float32])(nil)
	_ View[uint8] = (*Traced[uint8])(nil)
)

// NewTraced wraps g in a traced view. base offsets this grid in the
// simulated address space; give distinct grids disjoint bases so source
// and destination volumes do not alias in the simulated caches.
func NewTraced[T Scalar](g *Grid[T], base uint64, sink Sink) *Traced[T] {
	return &Traced[T]{g: g, sink: sink, base: base, elemSize: uint64(DtypeFor[T]().Size())}
}

// At reports the read to the sink and returns the sample.
func (t *Traced[T]) At(i, j, k int) T {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*t.elemSize, false)
	return t.g.data[idx]
}

// Set reports the write to the sink and stores the sample.
func (t *Traced[T]) Set(i, j, k int, v T) {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*t.elemSize, true)
	t.g.data[idx] = v
}

// Dims returns the underlying grid's extents.
func (t *Traced[T]) Dims() (nx, ny, nz int) { return t.g.Dims() }

// Grid returns the wrapped grid.
func (t *Traced[T]) Grid() *Grid[T] { return t.g }

// CountingSink tallies accesses without simulating anything; useful in
// tests and for computing trace volumes before a simulation run.
type CountingSink struct {
	Reads, Writes uint64
}

// Access increments the read or write tally.
func (c *CountingSink) Access(_ uint64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// Total returns Reads+Writes.
func (c *CountingSink) Total() uint64 { return c.Reads + c.Writes }
