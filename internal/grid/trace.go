package grid

// Sink consumes a stream of memory accesses. The cache simulator's
// per-thread front ends implement it; a traced grid view converts every
// logical (i,j,k) access into the byte address the element would occupy
// in a real address space and feeds it onward.
type Sink interface {
	// Access records one element-sized access at byte address addr.
	Access(addr uint64, write bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(addr uint64, write bool)

// Access calls f(addr, write).
func (f SinkFunc) Access(addr uint64, write bool) { f(addr, write) }

// Traced is a view of a Grid that reports every element access to a
// Sink before satisfying it. Each simulated thread gets its own Traced
// view (wired to its own private-cache front end) over the shared grid.
//
// The byte address of element (i,j,k) is base + elemSize*Index(i,j,k)
// with elemSize the dtype's width: exactly the address arithmetic the
// hardware would see, so the cache simulator observes the true layout-
// and element-width-dependent access stream — a uint8 volume packs 64
// voxels into a 64-byte line where float32 packs 16, and the simulated
// caches see that difference.
type Traced[T Scalar] struct {
	g        *Grid[T]
	sink     Sink
	base     uint64
	elemSize uint64
}

var (
	_ Reader      = (*Traced[float32])(nil)
	_ Writer      = (*Traced[float32])(nil)
	_ View[uint8] = (*Traced[uint8])(nil)
)

// NewTraced wraps g in a traced view. base offsets this grid in the
// simulated address space; give distinct grids disjoint bases so source
// and destination volumes do not alias in the simulated caches.
func NewTraced[T Scalar](g *Grid[T], base uint64, sink Sink) *Traced[T] {
	return &Traced[T]{g: g, sink: sink, base: base, elemSize: uint64(DtypeFor[T]().Size())}
}

// At reports the read to the sink and returns the sample.
func (t *Traced[T]) At(i, j, k int) T {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*t.elemSize, false)
	return t.g.data[idx]
}

// Set reports the write to the sink and stores the sample.
func (t *Traced[T]) Set(i, j, k int, v T) {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*t.elemSize, true)
	t.g.data[idx] = v
}

// Dims returns the underlying grid's extents.
func (t *Traced[T]) Dims() (nx, ny, nz int) { return t.g.Dims() }

// Grid returns the wrapped grid.
func (t *Traced[T]) Grid() *Grid[T] { return t.g }

// CountingSink tallies accesses without simulating anything; useful in
// tests and for computing trace volumes before a simulation run.
type CountingSink struct {
	Reads, Writes uint64
}

// Access increments the read or write tally.
func (c *CountingSink) Access(_ uint64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// Total returns Reads+Writes.
func (c *CountingSink) Total() uint64 { return c.Reads + c.Writes }

// TracedTables is a Traced view that additionally replays the per-axis
// offset-table loads the table-lookup flat kernel issues to resolve
// each access: the innermost x-table load per element, and the hoisted
// y-/z-table loads once per (j) / (k) change, matching the hoisting in
// the real kernel's loop nest (filter.voxelFlatOf). The stepping
// kernels issue none of these — comparing the two streams through the
// cache simulator isolates the table traffic that curve walking
// removes. Table entries are 8 bytes (int offsets) and live at
// tableBase, laid out X then Y then Z.
//
// The view is sequential like every traced view: one simulated thread
// per view, accesses replayed in program order.
type TracedTables[T Scalar] struct {
	tr        *Traced[T]
	sink      Sink
	tableBase uint64
	yBase     uint64
	zBase     uint64
	lastJ     int
	lastK     int
}

// NewTracedTables wraps g like NewTraced and places the per-axis offset
// tables at tableBase in the simulated address space.
func NewTracedTables[T Scalar](g *Grid[T], base, tableBase uint64, sink Sink) *TracedTables[T] {
	nx, ny, _ := g.Dims()
	return &TracedTables[T]{
		tr:        NewTraced(g, base, sink),
		sink:      sink,
		tableBase: tableBase,
		yBase:     tableBase + uint64(nx)*8,
		zBase:     tableBase + uint64(nx+ny)*8,
		lastJ:     -1,
		lastK:     -1,
	}
}

// At replays the table loads for (i,j,k), then the element read.
func (t *TracedTables[T]) At(i, j, k int) T {
	t.sink.Access(t.tableBase+uint64(i)*8, false)
	if j != t.lastJ {
		t.sink.Access(t.yBase+uint64(j)*8, false)
		t.lastJ = j
	}
	if k != t.lastK {
		t.sink.Access(t.zBase+uint64(k)*8, false)
		t.lastK = k
	}
	return t.tr.At(i, j, k)
}

// Set replays the destination's table loads, then the element write.
func (t *TracedTables[T]) Set(i, j, k int, v T) {
	t.sink.Access(t.tableBase+uint64(i)*8, false)
	if j != t.lastJ {
		t.sink.Access(t.yBase+uint64(j)*8, false)
		t.lastJ = j
	}
	if k != t.lastK {
		t.sink.Access(t.zBase+uint64(k)*8, false)
		t.lastK = k
	}
	t.tr.Set(i, j, k, v)
}

// Dims returns the underlying grid's extents.
func (t *TracedTables[T]) Dims() (nx, ny, nz int) { return t.tr.Dims() }

// Grid returns the wrapped grid.
func (t *TracedTables[T]) Grid() *Grid[T] { return t.tr.Grid() }
