package grid

// Sink consumes a stream of memory accesses. The cache simulator's
// per-thread front ends implement it; a traced grid view converts every
// logical (i,j,k) access into the byte address the element would occupy
// in a real address space and feeds it onward.
type Sink interface {
	// Access records one elemSize-byte access at byte address addr.
	Access(addr uint64, write bool)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(addr uint64, write bool)

// Access calls f(addr, write).
func (f SinkFunc) Access(addr uint64, write bool) { f(addr, write) }

// elemSize is the byte size of one volume sample (4-byte float, as in
// the paper's datasets).
const elemSize = 4

// Traced is a view of a Grid that reports every element access to a
// Sink before satisfying it. Each simulated thread gets its own Traced
// view (wired to its own private-cache front end) over the shared grid.
//
// The byte address of element (i,j,k) is base + elemSize*Index(i,j,k):
// exactly the address arithmetic the hardware would see, so the cache
// simulator observes the true layout-dependent access stream.
type Traced struct {
	g    *Grid
	sink Sink
	base uint64
}

var (
	_ Reader = (*Traced)(nil)
	_ Writer = (*Traced)(nil)
)

// NewTraced wraps g in a traced view. base offsets this grid in the
// simulated address space; give distinct grids disjoint bases so source
// and destination volumes do not alias in the simulated caches.
func NewTraced(g *Grid, base uint64, sink Sink) *Traced {
	return &Traced{g: g, sink: sink, base: base}
}

// At reports the read to the sink and returns the sample.
func (t *Traced) At(i, j, k int) float32 {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*elemSize, false)
	return t.g.data[idx]
}

// Set reports the write to the sink and stores the sample.
func (t *Traced) Set(i, j, k int, v float32) {
	idx := t.g.layout.Index(i, j, k)
	t.sink.Access(t.base+uint64(idx)*elemSize, true)
	t.g.data[idx] = v
}

// Dims returns the underlying grid's extents.
func (t *Traced) Dims() (nx, ny, nz int) { return t.g.Dims() }

// Grid returns the wrapped grid.
func (t *Traced) Grid() *Grid { return t.g }

// CountingSink tallies accesses without simulating anything; useful in
// tests and for computing trace volumes before a simulation run.
type CountingSink struct {
	Reads, Writes uint64
}

// Access increments the read or write tally.
func (c *CountingSink) Access(_ uint64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// Total returns Reads+Writes.
func (c *CountingSink) Total() uint64 { return c.Reads + c.Writes }
