package grid

import (
	"math"
	"testing"
	"testing/quick"

	"sfcmem/internal/core"
)

func seqGrid(t *testing.T, kind core.Kind, n int) *Grid[float32] {
	if t != nil {
		t.Helper()
	}
	l := core.New(kind, n, n, n)
	return FromFunc(l, func(i, j, k int) float32 {
		return float32(i + j*1000 + k*1000000)
	})
}

func TestAtSetRoundtripAllLayouts(t *testing.T) {
	for _, kind := range core.Kinds() {
		g := New(core.New(kind, 7, 9, 5))
		g.Set(3, 4, 2, 42.5)
		if got := g.At(3, 4, 2); got != 42.5 {
			t.Errorf("%v: At after Set = %v", kind, got)
		}
		if got := g.At(0, 0, 0); got != 0 {
			t.Errorf("%v: untouched cell = %v", kind, got)
		}
	}
}

func TestFromFuncStoresAllCells(t *testing.T) {
	for _, kind := range core.Kinds() {
		g := seqGrid(t, kind, 8)
		for k := 0; k < 8; k++ {
			for j := 0; j < 8; j++ {
				for i := 0; i < 8; i++ {
					want := float32(i + j*1000 + k*1000000)
					if got := g.At(i, j, k); got != want {
						t.Fatalf("%v: At(%d,%d,%d) = %v, want %v", kind, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestRelayoutPreservesContents(t *testing.T) {
	src := seqGrid(t, core.ArrayKind, 16)
	for _, kind := range core.Kinds() {
		dst, err := src.Relayout(core.New(kind, 16, 16, 16))
		if err != nil {
			t.Fatalf("Relayout to %v: %v", kind, err)
		}
		if !Equal(src, dst) {
			t.Errorf("Relayout to %v changed contents", kind)
		}
	}
}

func TestRelayoutDimMismatch(t *testing.T) {
	src := New(core.NewArrayOrder(4, 4, 4))
	if _, err := src.Relayout(core.NewZOrder(8, 4, 4)); err == nil {
		t.Error("expected dimension-mismatch error")
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	a := seqGrid(t, core.ArrayKind, 4)
	b := seqGrid(t, core.ZKind, 4)
	if !Equal(a, b) {
		t.Fatal("identical contents reported unequal")
	}
	b.Set(1, 2, 3, -1)
	if Equal(a, b) {
		t.Fatal("difference not detected")
	}
	c := New(core.NewArrayOrder(4, 4, 5))
	if Equal(a, c) {
		t.Fatal("dimension mismatch not detected")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := seqGrid(t, core.ArrayKind, 4)
	b, _ := a.Relayout(core.NewZOrder(4, 4, 4))
	if d := MaxAbsDiff(a, b); d != 0 {
		t.Errorf("identical grids diff %v", d)
	}
	b.Set(0, 0, 0, b.At(0, 0, 0)+3)
	if d := MaxAbsDiff(a, b); d != 3 {
		t.Errorf("diff %v, want 3", d)
	}
}

func TestMinMax(t *testing.T) {
	g := FromFunc(core.NewZOrder(8, 8, 8), func(i, j, k int) float32 {
		return float32(i - j + k)
	})
	lo, hi := g.MinMax()
	if lo != -7 || hi != 14 {
		t.Errorf("MinMax = %v,%v, want -7,14", lo, hi)
	}
}

func TestSampleTrilinearAtLatticePoints(t *testing.T) {
	g := seqGrid(t, core.ZKind, 8)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				got := SampleTrilinear(g, float64(i), float64(j), float64(k))
				if got != g.At(i, j, k) {
					t.Fatalf("lattice sample (%d,%d,%d) = %v, want %v", i, j, k, got, g.At(i, j, k))
				}
			}
		}
	}
}

func TestSampleTrilinearInterpolatesLinearField(t *testing.T) {
	// A trilinear interpolant reproduces any linear field exactly.
	g := FromFunc(core.NewArrayOrder(8, 8, 8), func(i, j, k int) float32 {
		return float32(2*i + 3*j - k)
	})
	f := func(xr, yr, zr float64) bool {
		x := math.Abs(math.Mod(xr, 7))
		y := math.Abs(math.Mod(yr, 7))
		z := math.Abs(math.Mod(zr, 7))
		got := float64(SampleTrilinear(g, x, y, z))
		want := 2*x + 3*y - z
		return math.Abs(got-want) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleTrilinearClamps(t *testing.T) {
	g := seqGrid(t, core.ArrayKind, 4)
	if got := SampleTrilinear(g, -5, -5, -5); got != g.At(0, 0, 0) {
		t.Errorf("low clamp = %v", got)
	}
	if got := SampleTrilinear(g, 100, 100, 100); got != g.At(3, 3, 3) {
		t.Errorf("high clamp = %v", got)
	}
}

func TestGradientLinearField(t *testing.T) {
	g := FromFunc(core.NewZOrder(8, 8, 8), func(i, j, k int) float32 {
		return float32(2*i + 3*j - 4*k)
	})
	gx, gy, gz := Gradient(g, 4, 4, 4)
	if gx != 2 || gy != 3 || gz != -4 {
		t.Errorf("interior gradient = %v,%v,%v, want 2,3,-4", gx, gy, gz)
	}
	// Boundary gradients use one-sided differences: halved for a linear
	// field because the clamped neighbor repeats the boundary sample.
	gx, _, _ = Gradient(g, 0, 4, 4)
	if gx != 1 {
		t.Errorf("boundary gx = %v, want 1", gx)
	}
}

func TestTracedReportsAddresses(t *testing.T) {
	l := core.NewArrayOrder(4, 4, 4)
	g := New(l)
	var got []uint64
	var writes int
	tr := NewTraced(g, 1000, SinkFunc(func(addr uint64, write bool) {
		got = append(got, addr)
		if write {
			writes++
		}
	}))
	tr.Set(1, 0, 0, 5)
	if v := tr.At(1, 0, 0); v != 5 {
		t.Fatalf("traced At = %v", v)
	}
	want := uint64(1000 + 4*l.Index(1, 0, 0))
	if len(got) != 2 || got[0] != want || got[1] != want {
		t.Errorf("addresses = %v, want two of %d", got, want)
	}
	if writes != 1 {
		t.Errorf("writes = %d, want 1", writes)
	}
	if tr.Grid() != g {
		t.Error("Grid() identity lost")
	}
	nx, _, _ := tr.Dims()
	if nx != 4 {
		t.Errorf("Dims nx = %d", nx)
	}
}

func TestTracedAddressesFollowLayout(t *testing.T) {
	// Under Z order, the traced address of (i,j,k) must be the Morton
	// offset, not the row-major one.
	l := core.NewZOrder(8, 8, 8)
	g := New(l)
	var last uint64
	tr := NewTraced(g, 0, SinkFunc(func(addr uint64, _ bool) { last = addr }))
	tr.At(1, 1, 1) // Morton code 7
	if last != 7*4 {
		t.Errorf("address = %d, want 28", last)
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.Access(0, false)
	c.Access(4, false)
	c.Access(8, true)
	if c.Reads != 2 || c.Writes != 1 || c.Total() != 3 {
		t.Errorf("counts = %d/%d/%d", c.Reads, c.Writes, c.Total())
	}
}

func BenchmarkAtArray(b *testing.B)  { benchAt(b, core.ArrayKind) }
func BenchmarkAtZOrder(b *testing.B) { benchAt(b, core.ZKind) }

func benchAt(b *testing.B, kind core.Kind) {
	b.Helper()
	g := New(core.New(kind, 64, 64, 64))
	var sink float32
	for n := 0; n < b.N; n++ {
		sink += g.At(n&63, n>>6&63, n>>12&63)
	}
	benchFloat = sink
}

var benchFloat float32

func TestForEachIndexOrderAndCoverage(t *testing.T) {
	g := seqGrid(t, core.ZKind, 4)
	var visited [][3]int
	g.ForEachIndex(func(i, j, k int, v float32) {
		if v != g.At(i, j, k) {
			t.Fatalf("value mismatch at (%d,%d,%d)", i, j, k)
		}
		visited = append(visited, [3]int{i, j, k})
	})
	if len(visited) != 64 {
		t.Fatalf("visited %d cells", len(visited))
	}
	// Index order: i fastest.
	if visited[0] != [3]int{0, 0, 0} || visited[1] != [3]int{1, 0, 0} || visited[4] != [3]int{0, 1, 0} {
		t.Errorf("unexpected order: %v %v %v", visited[0], visited[1], visited[4])
	}
}

func TestForEachStorageCoversAllOnceInOffsetOrder(t *testing.T) {
	for _, kind := range core.Kinds() {
		g := seqGrid(t, kind, 5) // non-power-of-two: padding present for SFC layouts
		seen := make(map[[3]int]bool)
		prev := -1
		ok := g.ForEachStorage(func(i, j, k int, v float32) {
			if v != g.At(i, j, k) {
				t.Fatalf("%v: value mismatch at (%d,%d,%d)", kind, i, j, k)
			}
			idx := g.Layout().Index(i, j, k)
			if idx <= prev {
				t.Fatalf("%v: storage order not ascending: %d after %d", kind, idx, prev)
			}
			prev = idx
			c := [3]int{i, j, k}
			if seen[c] {
				t.Fatalf("%v: cell %v visited twice", kind, c)
			}
			seen[c] = true
		})
		if !ok {
			t.Fatalf("%v: layout does not support storage traversal", kind)
		}
		if len(seen) != 125 {
			t.Errorf("%v: visited %d cells, want 125", kind, len(seen))
		}
	}
}

func BenchmarkTraversalIndexOrderZ(b *testing.B) {
	g := seqGrid(nil, core.ZKind, 64)
	var sink float32
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		g.ForEachIndex(func(_, _, _ int, v float32) { sink += v })
	}
	benchFloat = sink
}

func BenchmarkTraversalStorageOrderZ(b *testing.B) {
	g := seqGrid(nil, core.ZKind, 64)
	var sink float32
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		g.ForEachStorage(func(_, _, _ int, v float32) { sink += v })
	}
	benchFloat = sink
}

// Relayout between random layout pairs at random small dims is always
// content-preserving (property over the full registry).
func TestRelayoutRoundtripProperty(t *testing.T) {
	kinds := core.Kinds()
	f := func(a, b uint8, dx, dy, dz uint8) bool {
		ka := kinds[int(a)%len(kinds)]
		kb := kinds[int(b)%len(kinds)]
		nx, ny, nz := int(dx)%6+1, int(dy)%6+1, int(dz)%6+1
		src := FromFunc(core.New(ka, nx, ny, nz), func(i, j, k int) float32 {
			return float32(i*7 + j*13 + k*29)
		})
		mid, err := src.Relayout(core.New(kb, nx, ny, nz))
		if err != nil {
			return false
		}
		back, err := mid.Relayout(core.New(ka, nx, ny, nz))
		if err != nil {
			return false
		}
		return Equal(src, mid) && Equal(mid, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
