package grid

import "sfcmem/internal/core"

// Flat is a devirtualized view of a Grid under a separable layout: the
// raw buffer plus the layout's per-axis offset tables, resolved once so
// kernel hot loops touch voxels with table loads and integer adds
// instead of two interface dispatches (Reader.At → Layout.Index) per
// access. Every built-in layout except Hilbert and hierarchical Z order
// supports it.
//
// Flat deliberately keeps the per-access index cost identical in form
// across layouts — one load per axis table plus two adds — so the
// paper's equal-footing comparison between layouts survives the
// devirtualization (DESIGN.md §7). The same holds across dtypes: the
// index arithmetic is element-size independent, so narrow dtypes pay
// the same index cost and reap the cache-line packing win. Traced
// views are never flattened: the cache-simulation experiments must
// observe every access through the interface path.
//
// The fields are exported for the kernels' inner loops; treat them as
// read-only except Data, which Set also writes through.
type Flat[T Scalar] struct {
	// Data is the grid's backing buffer, including layout padding.
	Data []T
	// X, Y, Z are the layout's per-axis offset tables:
	// Data[X[i]+Y[j]+Z[k]] is element (i,j,k).
	X, Y, Z []int
	// Nx, Ny, Nz are the logical grid extents (= len(X), len(Y), len(Z)).
	Nx, Ny, Nz int
	// Step is the layout's neighbor-stepping recipe (core.StepSpecFor):
	// stencil kernels that support it walk the flat index to axis
	// neighbors by stride adds or dilated-bit arithmetic instead of
	// re-resolving through the tables per tap. Mode core.StepNone means
	// the layout has no walk and kernels stay on the tables.
	Step core.StepSpec
}

// Flat returns a flat view of the grid, or ok == false when the grid's
// layout is not separable (Hilbert, hierarchical Z) and the caller must
// stay on the interface path.
func (g *Grid[T]) Flat() (Flat[T], bool) {
	sep, ok := g.layout.(core.Separable)
	if !ok {
		return Flat[T]{}, false
	}
	xs, ys, zs := sep.AxisOffsets()
	nx, ny, nz := g.layout.Dims()
	return Flat[T]{Data: g.data, X: xs, Y: ys, Z: zs, Nx: nx, Ny: ny, Nz: nz, Step: core.StepSpecFor(g.layout)}, true
}

// Flatten returns a flat view when r is a plain *Grid with a separable
// layout, and nil otherwise. Traced views (and any other Reader
// implementation) intentionally return nil so every access they serve
// stays observable on the interface path.
func Flatten[T Scalar](r ReaderOf[T]) *Flat[T] {
	g, ok := r.(*Grid[T])
	if !ok {
		return nil
	}
	if f, ok := g.Flat(); ok {
		return &f
	}
	return nil
}

// FlattenWriter is Flatten for the write side.
func FlattenWriter[T Scalar](w WriterOf[T]) *Flat[T] {
	g, ok := w.(*Grid[T])
	if !ok {
		return nil
	}
	if f, ok := g.Flat(); ok {
		return &f
	}
	return nil
}

// Index returns the buffer offset of (i,j,k).
func (f *Flat[T]) Index(i, j, k int) int { return f.X[i] + f.Y[j] + f.Z[k] }

// At returns the sample at (i,j,k).
func (f *Flat[T]) At(i, j, k int) T { return f.Data[f.X[i]+f.Y[j]+f.Z[k]] }

// Set stores v at (i,j,k).
func (f *Flat[T]) Set(i, j, k int, v T) { f.Data[f.X[i]+f.Y[j]+f.Z[k]] = v }

// Dims returns the volume extents.
func (f *Flat[T]) Dims() (nx, ny, nz int) { return f.Nx, f.Ny, f.Nz }

// SampleFlat is the renderer's per-ray sampling primitive on the flat
// path: identical arithmetic to SampleReader (bit-identical results
// for matching T and A), but the 8 corner fetches share one base index
// advanced by per-axis table deltas — the stride-delta form of the
// layouts' incremental index update — instead of 8 full Index
// computations through two interface calls each. Corner samples widen
// to the accumulator A and the result is scaled by inv (1 for float
// dtypes, skipping the multiply).
func SampleFlat[T Scalar, A Accum](f *Flat[T], inv A, x, y, z float64) float32 {
	x = clamp(x, 0, float64(f.Nx-1))
	y = clamp(y, 0, float64(f.Ny-1))
	z = clamp(z, 0, float64(f.Nz-1))
	i0 := int(x)
	j0 := int(y)
	k0 := int(z)
	i1, j1, k1 := i0+1, j0+1, k0+1
	if i1 > f.Nx-1 {
		i1 = f.Nx - 1
	}
	if j1 > f.Ny-1 {
		j1 = f.Ny - 1
	}
	if k1 > f.Nz-1 {
		k1 = f.Nz - 1
	}
	fx := A(x - float64(i0))
	fy := A(y - float64(j0))
	fz := A(z - float64(k0))

	base := f.X[i0] + f.Y[j0] + f.Z[k0]
	dx := f.X[i1] - f.X[i0]
	dy := f.Y[j1] - f.Y[j0]
	dz := f.Z[k1] - f.Z[k0]

	c000 := A(f.Data[base])
	c100 := A(f.Data[base+dx])
	c010 := A(f.Data[base+dy])
	c110 := A(f.Data[base+dx+dy])
	c001 := A(f.Data[base+dz])
	c101 := A(f.Data[base+dx+dz])
	c011 := A(f.Data[base+dy+dz])
	c111 := A(f.Data[base+dx+dy+dz])

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	c := c0 + (c1-c0)*fz
	if inv != 1 {
		c *= inv
	}
	return float32(c)
}

// SampleTrilinear is SampleFlat with a float32 accumulator and no
// normalization — bit-identical to the pre-generic float32 flat path.
func (f *Flat[T]) SampleTrilinear(x, y, z float64) float32 {
	return SampleFlat(f, float32(1), x, y, z)
}

// GradientFlat is the central-difference gradient on the flat path,
// computed in the accumulator A; for matching T and A it is
// bit-identical to GradientReader.
func GradientFlat[T Scalar, A Accum](f *Flat[T], i, j, k int) (gx, gy, gz float32) {
	sample := func(i, j, k int) A {
		return A(f.Data[f.X[clampI(i, 0, f.Nx-1)]+f.Y[clampI(j, 0, f.Ny-1)]+f.Z[clampI(k, 0, f.Nz-1)]])
	}
	gx = float32((sample(i+1, j, k) - sample(i-1, j, k)) * 0.5)
	gy = float32((sample(i, j+1, k) - sample(i, j-1, k)) * 0.5)
	gz = float32((sample(i, j, k+1) - sample(i, j, k-1)) * 0.5)
	return gx, gy, gz
}

// Gradient is GradientFlat with a float32 accumulator — bit-identical
// to the pre-generic float32 flat path.
func (f *Flat[T]) Gradient(i, j, k int) (gx, gy, gz float32) {
	return GradientFlat[T, float32](f, i, j, k)
}
