package grid

import (
	"testing"

	"sfcmem/internal/core"
)

func flatTestVolume(kind core.Kind, nx, ny, nz int) *Grid[float32] {
	return FromFunc(core.New(kind, nx, ny, nz), func(i, j, k int) float32 {
		return float32(i) + 10*float32(j) - 3*float32(k) + 0.25
	})
}

func TestFlattenSeparableLayouts(t *testing.T) {
	const nx, ny, nz = 11, 7, 5
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.ZTiledKind} {
		g := flatTestVolume(kind, nx, ny, nz)
		f := Flatten(g)
		if f == nil {
			t.Fatalf("%v: Flatten returned nil for a separable layout", kind)
		}
		if fw := FlattenWriter(g); fw == nil {
			t.Fatalf("%v: FlattenWriter returned nil", kind)
		}
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if f.At(i, j, k) != g.At(i, j, k) {
						t.Fatalf("%v: flat At(%d,%d,%d) disagrees", kind, i, j, k)
					}
				}
			}
		}
		// Writes through the flat view land in the grid.
		f.Set(1, 2, 3, 42)
		if g.At(1, 2, 3) != 42 {
			t.Fatalf("%v: flat Set did not reach the grid", kind)
		}
	}
}

func TestFlattenRefusesNonSeparableAndTraced(t *testing.T) {
	for _, kind := range []core.Kind{core.HilbertKind, core.HZKind} {
		g := New(core.New(kind, 8, 8, 8))
		if Flatten(g) != nil {
			t.Errorf("%v: non-separable layout flattened", kind)
		}
	}
	// Traced views must stay on the interface path so the cache
	// simulator sees every access.
	g := New(core.NewZOrder(8, 8, 8))
	tr := NewTraced(g, 0, &CountingSink{})
	if Flatten(tr) != nil {
		t.Error("traced view flattened; cache simulation would go blind")
	}
	if FlattenWriter(tr) != nil {
		t.Error("traced writer flattened")
	}
}

func TestFlatSampleTrilinearBitIdentical(t *testing.T) {
	const n = 9
	for _, kind := range []core.Kind{core.ArrayKind, core.ZKind, core.TiledKind, core.ZTiledKind} {
		g := flatTestVolume(kind, n, n, n)
		f := Flatten(g)
		// Interior, boundary, clamped-outside, and exact-lattice points.
		points := [][3]float64{
			{1.5, 2.25, 3.75}, {0, 0, 0}, {8, 8, 8}, {7.999, 0.001, 4},
			{-1, 9.5, 4.2}, {3, 5, 7}, {0.5, 7.5, 0.5},
		}
		for _, p := range points {
			want := SampleTrilinear(g, p[0], p[1], p[2])
			got := f.SampleTrilinear(p[0], p[1], p[2])
			if got != want {
				t.Errorf("%v: SampleTrilinear(%v) = %v, interface path %v",
					kind, p, got, want)
			}
		}
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					gx, gy, gz := Gradient(g, i, j, k)
					fx, fy, fz := f.Gradient(i, j, k)
					if gx != fx || gy != fy || gz != fz {
						t.Fatalf("%v: Gradient(%d,%d,%d) differs", kind, i, j, k)
					}
				}
			}
		}
	}
}
