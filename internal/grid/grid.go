// Package grid provides a 3D structured volume of scalar samples
// stored behind a core.Layout, so the same application code can run
// over array-order, Z-order, tiled, or Hilbert memory layouts
// transparently — the paper's getIndex(i,j,k) accessor made concrete.
//
// Grid is generic over the Scalar element types (uint8, uint16,
// float32, float64); element width is an experimental axis in its own
// right because it sets voxels-per-cache-line. The kernels in
// internal/filter and internal/render access volumes only through the
// ReaderOf/WriterOf interfaces, which both *Grid and the traced
// wrappers in this package satisfy; swapping a traced view in is how
// the cache-simulation experiments observe every memory access. The
// plain Reader/Writer names remain the float32 instantiations, so the
// pre-generic API is source-compatible.
package grid

import (
	"fmt"
	"math"

	"sfcmem/internal/core"
)

// ReaderOf is read-only access to a 3D volume of T samples.
type ReaderOf[T Scalar] interface {
	// At returns the sample at (i,j,k). Indices must be in range.
	At(i, j, k int) T
	// Dims returns the volume extents.
	Dims() (nx, ny, nz int)
}

// WriterOf is write access to a 3D volume of T samples.
type WriterOf[T Scalar] interface {
	// Set stores v at (i,j,k). Indices must be in range.
	Set(i, j, k int, v T)
	// Dims returns the volume extents.
	Dims() (nx, ny, nz int)
}

// View is combined read/write access to a 3D volume of T samples.
type View[T Scalar] interface {
	ReaderOf[T]
	WriterOf[T]
}

// Reader and Writer are the float32 instantiations — the interfaces
// the pre-generic kernels were written against.
type (
	Reader = ReaderOf[float32]
	Writer = WriterOf[float32]
)

// Grid is a 3D volume of T samples stored in a flat buffer addressed
// through a core.Layout.
type Grid[T Scalar] struct {
	layout core.Layout
	data   []T
}

var (
	_ Reader        = (*Grid[float32])(nil)
	_ Writer        = (*Grid[float32])(nil)
	_ View[uint8]   = (*Grid[uint8])(nil)
	_ View[float64] = (*Grid[float64])(nil)
)

// NewOf allocates a zero-filled grid of T under the given layout.
func NewOf[T Scalar](l core.Layout) *Grid[T] {
	return &Grid[T]{layout: l, data: make([]T, l.Len())}
}

// New allocates a zero-filled float32 grid under the given layout.
func New(l core.Layout) *Grid[float32] { return NewOf[float32](l) }

// FromFuncOf allocates a grid of T and fills element (i,j,k) with
// f(i,j,k).
func FromFuncOf[T Scalar](l core.Layout, f func(i, j, k int) T) *Grid[T] {
	g := NewOf[T](l)
	nx, ny, nz := l.Dims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				g.data[l.Index(i, j, k)] = f(i, j, k)
			}
		}
	}
	return g
}

// FromFunc allocates a float32 grid and fills element (i,j,k) with
// f(i,j,k).
func FromFunc(l core.Layout, f func(i, j, k int) float32) *Grid[float32] {
	return FromFuncOf[float32](l, f)
}

// At returns the sample at (i,j,k).
func (g *Grid[T]) At(i, j, k int) T { return g.data[g.layout.Index(i, j, k)] }

// Set stores v at (i,j,k).
func (g *Grid[T]) Set(i, j, k int, v T) { g.data[g.layout.Index(i, j, k)] = v }

// Dims returns the volume extents.
func (g *Grid[T]) Dims() (nx, ny, nz int) { return g.layout.Dims() }

// Layout returns the grid's memory layout.
func (g *Grid[T]) Layout() core.Layout { return g.layout }

// Data exposes the underlying buffer (including any layout padding).
// Callers must index it through Layout().Index.
func (g *Grid[T]) Data() []T { return g.data }

// Dtype returns the runtime descriptor of the grid's element type.
func (g *Grid[T]) Dtype() Dtype { return DtypeFor[T]() }

// Relayout copies the grid's contents into a new grid under the target
// layout. The target's dimensions must match.
func (g *Grid[T]) Relayout(target core.Layout) (*Grid[T], error) {
	sx, sy, sz := g.Dims()
	tx, ty, tz := target.Dims()
	if sx != tx || sy != ty || sz != tz {
		return nil, fmt.Errorf("grid: relayout dims %dx%dx%d -> %dx%dx%d mismatch",
			sx, sy, sz, tx, ty, tz)
	}
	out := NewOf[T](target)
	for k := 0; k < sz; k++ {
		for j := 0; j < sy; j++ {
			for i := 0; i < sx; i++ {
				out.data[target.Index(i, j, k)] = g.data[g.layout.Index(i, j, k)]
			}
		}
	}
	return out, nil
}

// Equal reports whether two grids have identical dimensions and samples
// (layouts may differ).
func Equal[T Scalar](a, b *Grid[T]) bool {
	ax, ay, az := a.Dims()
	bx, by, bz := b.Dims()
	if ax != bx || ay != by || az != bz {
		return false
	}
	for k := 0; k < az; k++ {
		for j := 0; j < ay; j++ {
			for i := 0; i < ax; i++ {
				if a.At(i, j, k) != b.At(i, j, k) {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute per-sample difference between
// two same-dimensioned grids. It panics on dimension mismatch.
func MaxAbsDiff[T Scalar](a, b *Grid[T]) float64 {
	ax, ay, az := a.Dims()
	bx, by, bz := b.Dims()
	if ax != bx || ay != by || az != bz {
		panic("grid: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for k := 0; k < az; k++ {
		for j := 0; j < ay; j++ {
			for i := 0; i < ax; i++ {
				d := math.Abs(float64(a.At(i, j, k)) - float64(b.At(i, j, k)))
				if d > m {
					m = d
				}
			}
		}
	}
	return m
}

// MinMax returns the smallest and largest sample in the grid.
func (g *Grid[T]) MinMax() (lo, hi T) {
	nx, ny, nz := g.Dims()
	lo = g.At(0, 0, 0)
	hi = lo
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := g.At(i, j, k)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	return lo, hi
}

// SampleReader returns the trilinearly interpolated normalized value
// at the continuous position (x,y,z) in index coordinates, clamping to
// the volume boundary. Corner samples are widened to the accumulator
// type A, the lerp runs in A, and the result is scaled by inv (the
// reciprocal of the dtype's normalization scale; pass 1 for float
// dtypes). With T = A = float32 and inv == 1 the arithmetic is
// bit-identical to the pre-generic float32 path. It reads the 8
// surrounding voxels through r.At, so it is traced when r is a traced
// view.
func SampleReader[T Scalar, A Accum](r ReaderOf[T], inv A, x, y, z float64) float32 {
	nx, ny, nz := r.Dims()
	x = clamp(x, 0, float64(nx-1))
	y = clamp(y, 0, float64(ny-1))
	z = clamp(z, 0, float64(nz-1))
	i0 := int(x)
	j0 := int(y)
	k0 := int(z)
	i1, j1, k1 := i0+1, j0+1, k0+1
	if i1 > nx-1 {
		i1 = nx - 1
	}
	if j1 > ny-1 {
		j1 = ny - 1
	}
	if k1 > nz-1 {
		k1 = nz - 1
	}
	fx := A(x - float64(i0))
	fy := A(y - float64(j0))
	fz := A(z - float64(k0))

	c000 := A(r.At(i0, j0, k0))
	c100 := A(r.At(i1, j0, k0))
	c010 := A(r.At(i0, j1, k0))
	c110 := A(r.At(i1, j1, k0))
	c001 := A(r.At(i0, j0, k1))
	c101 := A(r.At(i1, j0, k1))
	c011 := A(r.At(i0, j1, k1))
	c111 := A(r.At(i1, j1, k1))

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	c := c0 + (c1-c0)*fz
	if inv != 1 {
		c *= inv
	}
	return float32(c)
}

// SampleTrilinear is the float32 instantiation of SampleReader with no
// normalization — the renderer's pre-generic per-ray sampling
// primitive, unchanged bit-for-bit.
func SampleTrilinear(r Reader, x, y, z float64) float32 {
	return SampleReader[float32, float32](r, 1, x, y, z)
}

// GradientReader returns the central-difference gradient at (i,j,k)
// computed in the accumulator type A, using one-sided differences at
// the boundary. The gradient is deliberately unnormalized: shading
// normalizes the vector, which cancels any uniform dtype scale.
func GradientReader[T Scalar, A Accum](r ReaderOf[T], i, j, k int) (gx, gy, gz float32) {
	nx, ny, nz := r.Dims()
	sample := func(i, j, k int) A {
		return A(r.At(clampI(i, 0, nx-1), clampI(j, 0, ny-1), clampI(k, 0, nz-1)))
	}
	gx = float32((sample(i+1, j, k) - sample(i-1, j, k)) * 0.5)
	gy = float32((sample(i, j+1, k) - sample(i, j-1, k)) * 0.5)
	gz = float32((sample(i, j, k+1) - sample(i, j, k-1)) * 0.5)
	return gx, gy, gz
}

// Gradient is the float32 instantiation of GradientReader — used for
// renderer shading.
func Gradient(r Reader, i, j, k int) (gx, gy, gz float32) {
	return GradientReader[float32, float32](r, i, j, k)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ForEachIndex calls fn for every element in index order (i fastest,
// then j, then k) with its value — the traversal application loops use.
func (g *Grid[T]) ForEachIndex(fn func(i, j, k int, v T)) {
	nx, ny, nz := g.Dims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				fn(i, j, k, g.data[g.layout.Index(i, j, k)])
			}
		}
	}
}

// ForEachStorage calls fn for every element in storage order — ascending
// buffer offsets, the order with perfect spatial locality. For
// space-filling layouts this is the cache-friendly sweep of Bader 2013.
// It requires the grid's layout to implement core.Inverse (all built-in
// layouts do) and returns false otherwise.
func (g *Grid[T]) ForEachStorage(fn func(i, j, k int, v T)) bool {
	inv, ok := g.layout.(core.Inverse)
	if !ok {
		return false
	}
	for idx := 0; idx < len(g.data); idx++ {
		if i, j, k, ok := inv.Coords(idx); ok {
			fn(i, j, k, g.data[idx])
		}
	}
	return true
}
