// Package grid provides a 3D structured volume of float32 samples stored
// behind a core.Layout, so the same application code can run over
// array-order, Z-order, tiled, or Hilbert memory layouts transparently —
// the paper's getIndex(i,j,k) accessor made concrete.
//
// The kernels in internal/filter and internal/render access volumes only
// through the Reader/Writer interfaces, which both *Grid and the traced
// wrappers in this package satisfy; swapping a traced view in is how the
// cache-simulation experiments observe every memory access.
package grid

import (
	"fmt"
	"math"

	"sfcmem/internal/core"
)

// Reader is read-only access to a 3D volume.
type Reader interface {
	// At returns the sample at (i,j,k). Indices must be in range.
	At(i, j, k int) float32
	// Dims returns the volume extents.
	Dims() (nx, ny, nz int)
}

// Writer is write access to a 3D volume.
type Writer interface {
	// Set stores v at (i,j,k). Indices must be in range.
	Set(i, j, k int, v float32)
	// Dims returns the volume extents.
	Dims() (nx, ny, nz int)
}

// Grid is a 3D float32 volume stored in a flat buffer addressed through
// a core.Layout.
type Grid struct {
	layout core.Layout
	data   []float32
}

var (
	_ Reader = (*Grid)(nil)
	_ Writer = (*Grid)(nil)
)

// New allocates a zero-filled grid under the given layout.
func New(l core.Layout) *Grid {
	return &Grid{layout: l, data: make([]float32, l.Len())}
}

// FromFunc allocates a grid and fills element (i,j,k) with f(i,j,k).
func FromFunc(l core.Layout, f func(i, j, k int) float32) *Grid {
	g := New(l)
	nx, ny, nz := l.Dims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				g.data[l.Index(i, j, k)] = f(i, j, k)
			}
		}
	}
	return g
}

// At returns the sample at (i,j,k).
func (g *Grid) At(i, j, k int) float32 { return g.data[g.layout.Index(i, j, k)] }

// Set stores v at (i,j,k).
func (g *Grid) Set(i, j, k int, v float32) { g.data[g.layout.Index(i, j, k)] = v }

// Dims returns the volume extents.
func (g *Grid) Dims() (nx, ny, nz int) { return g.layout.Dims() }

// Layout returns the grid's memory layout.
func (g *Grid) Layout() core.Layout { return g.layout }

// Data exposes the underlying buffer (including any layout padding).
// Callers must index it through Layout().Index.
func (g *Grid) Data() []float32 { return g.data }

// Relayout copies the grid's contents into a new grid under the target
// layout. The target's dimensions must match.
func (g *Grid) Relayout(target core.Layout) (*Grid, error) {
	sx, sy, sz := g.Dims()
	tx, ty, tz := target.Dims()
	if sx != tx || sy != ty || sz != tz {
		return nil, fmt.Errorf("grid: relayout dims %dx%dx%d -> %dx%dx%d mismatch",
			sx, sy, sz, tx, ty, tz)
	}
	out := New(target)
	for k := 0; k < sz; k++ {
		for j := 0; j < sy; j++ {
			for i := 0; i < sx; i++ {
				out.data[target.Index(i, j, k)] = g.data[g.layout.Index(i, j, k)]
			}
		}
	}
	return out, nil
}

// Equal reports whether two grids have identical dimensions and samples
// (layouts may differ).
func Equal(a, b *Grid) bool {
	ax, ay, az := a.Dims()
	bx, by, bz := b.Dims()
	if ax != bx || ay != by || az != bz {
		return false
	}
	for k := 0; k < az; k++ {
		for j := 0; j < ay; j++ {
			for i := 0; i < ax; i++ {
				if a.At(i, j, k) != b.At(i, j, k) {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute per-sample difference between
// two same-dimensioned grids. It panics on dimension mismatch.
func MaxAbsDiff(a, b *Grid) float64 {
	ax, ay, az := a.Dims()
	bx, by, bz := b.Dims()
	if ax != bx || ay != by || az != bz {
		panic("grid: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for k := 0; k < az; k++ {
		for j := 0; j < ay; j++ {
			for i := 0; i < ax; i++ {
				d := math.Abs(float64(a.At(i, j, k)) - float64(b.At(i, j, k)))
				if d > m {
					m = d
				}
			}
		}
	}
	return m
}

// MinMax returns the smallest and largest sample in the grid.
func (g *Grid) MinMax() (lo, hi float32) {
	nx, ny, nz := g.Dims()
	lo, hi = float32(math.Inf(1)), float32(math.Inf(-1))
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := g.At(i, j, k)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	return lo, hi
}

// SampleTrilinear returns the trilinearly interpolated value at the
// continuous position (x,y,z) in index coordinates, clamping to the
// volume boundary. This is the renderer's per-ray sampling primitive;
// it reads the 8 surrounding voxels through r.At, so it is traced when
// r is a traced view.
func SampleTrilinear(r Reader, x, y, z float64) float32 {
	nx, ny, nz := r.Dims()
	x = clamp(x, 0, float64(nx-1))
	y = clamp(y, 0, float64(ny-1))
	z = clamp(z, 0, float64(nz-1))
	i0 := int(x)
	j0 := int(y)
	k0 := int(z)
	i1, j1, k1 := i0+1, j0+1, k0+1
	if i1 > nx-1 {
		i1 = nx - 1
	}
	if j1 > ny-1 {
		j1 = ny - 1
	}
	if k1 > nz-1 {
		k1 = nz - 1
	}
	fx := float32(x - float64(i0))
	fy := float32(y - float64(j0))
	fz := float32(z - float64(k0))

	c000 := r.At(i0, j0, k0)
	c100 := r.At(i1, j0, k0)
	c010 := r.At(i0, j1, k0)
	c110 := r.At(i1, j1, k0)
	c001 := r.At(i0, j0, k1)
	c101 := r.At(i1, j0, k1)
	c011 := r.At(i0, j1, k1)
	c111 := r.At(i1, j1, k1)

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}

// Gradient returns the central-difference gradient at (i,j,k), using
// one-sided differences at the boundary. Used for renderer shading.
func Gradient(r Reader, i, j, k int) (gx, gy, gz float32) {
	nx, ny, nz := r.Dims()
	sample := func(i, j, k int) float32 {
		return r.At(clampI(i, 0, nx-1), clampI(j, 0, ny-1), clampI(k, 0, nz-1))
	}
	gx = (sample(i+1, j, k) - sample(i-1, j, k)) * 0.5
	gy = (sample(i, j+1, k) - sample(i, j-1, k)) * 0.5
	gz = (sample(i, j, k+1) - sample(i, j, k-1)) * 0.5
	return gx, gy, gz
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ForEachIndex calls fn for every element in index order (i fastest,
// then j, then k) with its value — the traversal application loops use.
func (g *Grid) ForEachIndex(fn func(i, j, k int, v float32)) {
	nx, ny, nz := g.Dims()
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				fn(i, j, k, g.data[g.layout.Index(i, j, k)])
			}
		}
	}
}

// ForEachStorage calls fn for every element in storage order — ascending
// buffer offsets, the order with perfect spatial locality. For
// space-filling layouts this is the cache-friendly sweep of Bader 2013.
// It requires the grid's layout to implement core.Inverse (all built-in
// layouts do) and returns false otherwise.
func (g *Grid) ForEachStorage(fn func(i, j, k int, v float32)) bool {
	inv, ok := g.layout.(core.Inverse)
	if !ok {
		return false
	}
	for idx := 0; idx < len(g.data); idx++ {
		if i, j, k, ok := inv.Coords(idx); ok {
			fn(i, j, k, g.data[idx])
		}
	}
	return true
}
