// Package plane is the 2D counterpart of the 3D layout/grid machinery:
// 2D memory layouts (row-major, Z-order, Hilbert) behind one Index(x,y)
// interface, a float32 image stored under any of them, and the original
// 2D bilateral filter of Tomasi & Manduchi 1998 — the algorithm the
// paper's 3D kernel generalizes. The paper's Fig. 1 illustrates layout/
// ray alignment on a 2D slice; this package makes that setting runnable
// (see examples/image2d and cmd/layoutviz).
package plane

import (
	"fmt"
	"math"

	"sfcmem/internal/hilbert"
	"sfcmem/internal/morton"
)

// Layout maps 2D indices to linear buffer offsets: 0 <= x < nx (fast
// axis in the row-major sense), 0 <= y < ny.
type Layout interface {
	// Index returns the buffer offset of pixel (x, y).
	Index(x, y int) int
	// Dims returns the image extents.
	Dims() (nx, ny int)
	// Len returns the required buffer length (padding included).
	Len() int
	// Name returns the layout's registry name.
	Name() string
}

func checkDims2(nx, ny int) {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("plane: extents %dx%d must be positive", nx, ny))
	}
}

// RowMajor is the traditional 2D array layout, offset-table driven like
// its 3D counterpart.
type RowMajor struct {
	yoffset []int
	nx, ny  int
}

// NewRowMajor builds a row-major layout.
func NewRowMajor(nx, ny int) *RowMajor {
	checkDims2(nx, ny)
	l := &RowMajor{nx: nx, ny: ny, yoffset: make([]int, ny)}
	for y := 0; y < ny; y++ {
		l.yoffset[y] = y * nx
	}
	return l
}

// Index returns x + y*nx.
func (l *RowMajor) Index(x, y int) int { return x + l.yoffset[y] }

// Dims returns the image extents.
func (l *RowMajor) Dims() (nx, ny int) { return l.nx, l.ny }

// Len returns nx*ny.
func (l *RowMajor) Len() int { return l.nx * l.ny }

// Name returns "array".
func (l *RowMajor) Name() string { return "array" }

// ZOrder2 is the 2D Morton layout.
type ZOrder2 struct {
	t      *morton.Table2
	length int
}

// NewZOrder2 builds a 2D Z-order layout (extents padded as needed).
func NewZOrder2(nx, ny int) *ZOrder2 {
	checkDims2(nx, ny)
	t := morton.NewTable2(nx, ny)
	return &ZOrder2{t: t, length: t.PaddedLen()}
}

// Index returns the 2D Morton code of (x, y).
func (l *ZOrder2) Index(x, y int) int { return int(l.t.Index(x, y)) }

// Dims returns the image extents.
func (l *ZOrder2) Dims() (nx, ny int) { return l.t.Dims() }

// Len returns the padded buffer length.
func (l *ZOrder2) Len() int { return l.length }

// Name returns "zorder".
func (l *ZOrder2) Name() string { return "zorder" }

// Hilbert2 is the 2D Hilbert-curve layout over a padded power-of-two
// square.
type Hilbert2 struct {
	nx, ny, bits, length int
}

// NewHilbert2 builds a 2D Hilbert layout.
func NewHilbert2(nx, ny int) *Hilbert2 {
	checkDims2(nx, ny)
	side := morton.NextPow2(maxInt(nx, ny))
	bits := morton.Log2(side)
	if bits == 0 {
		bits, side = 1, 2
	}
	return &Hilbert2{nx: nx, ny: ny, bits: bits, length: side * side}
}

// Index returns the Hilbert index of (x, y).
func (l *Hilbert2) Index(x, y int) int {
	return int(hilbert.Encode2(uint32(x), uint32(y), l.bits))
}

// Dims returns the image extents.
func (l *Hilbert2) Dims() (nx, ny int) { return l.nx, l.ny }

// Len returns the padded square area.
func (l *Hilbert2) Len() int { return l.length }

// Name returns "hilbert".
func (l *Hilbert2) Name() string { return "hilbert" }

func maxInt(a, b int) int {
	if b > a {
		return b
	}
	return a
}

// Image is a float32 image stored under a 2D layout.
type Image struct {
	layout Layout
	data   []float32
}

// NewImage allocates a zero image under the layout.
func NewImage(l Layout) *Image {
	return &Image{layout: l, data: make([]float32, l.Len())}
}

// FromFunc allocates an image filled with f(x, y).
func FromFunc(l Layout, f func(x, y int) float32) *Image {
	im := NewImage(l)
	nx, ny := l.Dims()
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			im.data[l.Index(x, y)] = f(x, y)
		}
	}
	return im
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) float32 { return im.data[im.layout.Index(x, y)] }

// Set stores v at (x, y).
func (im *Image) Set(x, y int, v float32) { im.data[im.layout.Index(x, y)] = v }

// Dims returns the image extents.
func (im *Image) Dims() (nx, ny int) { return im.layout.Dims() }

// Layout returns the image's layout.
func (im *Image) Layout() Layout { return im.layout }

// Relayout copies the image under a new layout of identical extents.
func (im *Image) Relayout(target Layout) (*Image, error) {
	sx, sy := im.Dims()
	tx, ty := target.Dims()
	if sx != tx || sy != ty {
		return nil, fmt.Errorf("plane: relayout %dx%d -> %dx%d mismatch", sx, sy, tx, ty)
	}
	out := NewImage(target)
	for y := 0; y < sy; y++ {
		for x := 0; x < sx; x++ {
			out.Set(x, y, im.At(x, y))
		}
	}
	return out, nil
}

// Equal reports whether two images have identical extents and pixels.
func Equal(a, b *Image) bool {
	ax, ay := a.Dims()
	bx, by := b.Dims()
	if ax != bx || ay != by {
		return false
	}
	for y := 0; y < ay; y++ {
		for x := 0; x < ax; x++ {
			if a.At(x, y) != b.At(x, y) {
				return false
			}
		}
	}
	return true
}

// BilateralOptions configures the 2D bilateral filter.
type BilateralOptions struct {
	Radius       int     // stencil radius; the window is (2R+1)²
	SigmaSpatial float64 // geometric sigma in pixels (0: Radius/2+0.5)
	SigmaRange   float64 // photometric sigma in value units (0: 0.1)
}

// Bilateral runs the Tomasi–Manduchi 2D bilateral filter from src into
// dst (same extents, exact math.Exp weights — 2D images are small
// enough not to need the 3D kernel's LUT).
func Bilateral(src, dst *Image, o BilateralOptions) error {
	if o.Radius < 1 {
		return fmt.Errorf("plane: radius %d must be >= 1", o.Radius)
	}
	if o.SigmaSpatial == 0 {
		o.SigmaSpatial = float64(o.Radius)/2 + 0.5
	}
	if o.SigmaRange == 0 {
		o.SigmaRange = 0.1
	}
	sx, sy := src.Dims()
	dx, dy := dst.Dims()
	if sx != dx || sy != dy {
		return fmt.Errorf("plane: src %dx%d vs dst %dx%d", sx, sy, dx, dy)
	}
	inv2ss := 1 / (2 * o.SigmaSpatial * o.SigmaSpatial)
	inv2sr := 1 / (2 * o.SigmaRange * o.SigmaRange)
	r := o.Radius
	for y := 0; y < sy; y++ {
		for x := 0; x < sx; x++ {
			center := float64(src.At(x, y))
			var num, den float64
			for oy := -r; oy <= r; oy++ {
				yy := y + oy
				if yy < 0 || yy >= sy {
					continue
				}
				for ox := -r; ox <= r; ox++ {
					xx := x + ox
					if xx < 0 || xx >= sx {
						continue
					}
					v := float64(src.At(xx, yy))
					dv := v - center
					w := math.Exp(-float64(ox*ox+oy*oy)*inv2ss) * math.Exp(-dv*dv*inv2sr)
					num += w * v
					den += w
				}
			}
			dst.Set(x, y, float32(num/den))
		}
	}
	return nil
}

// AxisStride2 measures the mean |Δoffset| for unit steps along axis
// (0=x, 1=y) — the 2D version of the paper's Fig. 1 numbers.
func AxisStride2(l Layout, axis int) float64 {
	nx, ny := l.Dims()
	dx, dy := 1, 0
	if axis == 1 {
		dx, dy = 0, 1
	} else if axis != 0 {
		panic("plane: axis must be 0 or 1")
	}
	var sum float64
	var n int
	for y := 0; y+dy < ny; y++ {
		for x := 0; x+dx < nx; x++ {
			d := l.Index(x+dx, y+dy) - l.Index(x, y)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Sink matches the 3D grid package's access-sink contract so 2D images
// can feed the same cache simulator and analyzers.
type Sink interface {
	Access(addr uint64, write bool)
}

// TracedImage reports every pixel access to a Sink before satisfying it,
// mirroring grid.Traced for the 2D setting.
type TracedImage struct {
	im   *Image
	sink Sink
	base uint64
}

// NewTraced wraps im in a traced view based at the given simulated byte
// address.
func NewTraced(im *Image, base uint64, sink Sink) *TracedImage {
	return &TracedImage{im: im, sink: sink, base: base}
}

// At reports the read and returns the pixel.
func (t *TracedImage) At(x, y int) float32 {
	idx := t.im.layout.Index(x, y)
	t.sink.Access(t.base+uint64(idx)*4, false)
	return t.im.data[idx]
}

// Set reports the write and stores the pixel.
func (t *TracedImage) Set(x, y int, v float32) {
	idx := t.im.layout.Index(x, y)
	t.sink.Access(t.base+uint64(idx)*4, true)
	t.im.data[idx] = v
}

// Dims returns the image extents.
func (t *TracedImage) Dims() (nx, ny int) { return t.im.Dims() }
