package plane

import (
	"math"
	"testing"

	"sfcmem/internal/volume"
)

func layouts(nx, ny int) []Layout {
	return []Layout{NewRowMajor(nx, ny), NewZOrder2(nx, ny), NewHilbert2(nx, ny)}
}

func TestLayoutsInjectiveInBounds(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {5, 9}, {1, 1}, {16, 4}} {
		for _, l := range layouts(dims[0], dims[1]) {
			seen := map[int]bool{}
			for y := 0; y < dims[1]; y++ {
				for x := 0; x < dims[0]; x++ {
					idx := l.Index(x, y)
					if idx < 0 || idx >= l.Len() {
						t.Fatalf("%s %v: Index(%d,%d)=%d out of [0,%d)", l.Name(), dims, x, y, idx, l.Len())
					}
					if seen[idx] {
						t.Fatalf("%s %v: offset %d duplicated", l.Name(), dims, idx)
					}
					seen[idx] = true
				}
			}
		}
	}
}

func TestRowMajorFormula(t *testing.T) {
	l := NewRowMajor(7, 5)
	if l.Index(3, 2) != 3+2*7 {
		t.Errorf("Index(3,2)=%d", l.Index(3, 2))
	}
	if l.Len() != 35 {
		t.Errorf("Len=%d", l.Len())
	}
}

func TestImageRoundtripAndRelayout(t *testing.T) {
	src := FromFunc(NewRowMajor(16, 16), func(x, y int) float32 {
		return float32(x*100 + y)
	})
	for _, l := range layouts(16, 16) {
		out, err := src.Relayout(l)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(src, out) {
			t.Errorf("relayout to %s changed pixels", l.Name())
		}
	}
	if _, err := src.Relayout(NewRowMajor(8, 8)); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestEqualDetectsDiff(t *testing.T) {
	a := NewImage(NewRowMajor(4, 4))
	b := NewImage(NewZOrder2(4, 4))
	if !Equal(a, b) {
		t.Error("zero images unequal")
	}
	b.Set(2, 3, 1)
	if Equal(a, b) {
		t.Error("difference missed")
	}
	c := NewImage(NewRowMajor(4, 5))
	if Equal(a, c) {
		t.Error("dim mismatch missed")
	}
}

func TestBilateralConstantUnchanged(t *testing.T) {
	src := FromFunc(NewZOrder2(12, 12), func(_, _ int) float32 { return 0.5 })
	dst := NewImage(NewZOrder2(12, 12))
	if err := Bilateral(src, dst, BilateralOptions{Radius: 2}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			if math.Abs(float64(dst.At(x, y))-0.5) > 1e-6 {
				t.Fatalf("pixel (%d,%d) = %v", x, y, dst.At(x, y))
			}
		}
	}
}

func TestBilateralLayoutInvariant(t *testing.T) {
	rng := volume.NewRNG(3)
	base := FromFunc(NewRowMajor(16, 16), func(x, y int) float32 {
		v := float32(0.2)
		if x > 8 {
			v = 0.8
		}
		return v + 0.05*rng.Normal()
	})
	var ref *Image
	for _, l := range layouts(16, 16) {
		src, err := base.Relayout(l)
		if err != nil {
			t.Fatal(err)
		}
		dst := NewImage(l)
		if err := Bilateral(src, dst, BilateralOptions{Radius: 2}); err != nil {
			t.Fatal(err)
		}
		back, err := dst.Relayout(NewRowMajor(16, 16))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = back
		} else if !Equal(ref, back) {
			t.Errorf("bilateral output differs under %s", l.Name())
		}
	}
}

func TestBilateralPreservesStep(t *testing.T) {
	src := FromFunc(NewRowMajor(20, 20), func(x, _ int) float32 {
		if x >= 10 {
			return 1
		}
		return 0
	})
	dst := NewImage(NewRowMajor(20, 20))
	if err := Bilateral(src, dst, BilateralOptions{Radius: 3, SigmaRange: 0.1}); err != nil {
		t.Fatal(err)
	}
	// The step must remain essentially binary away from the boundary.
	if dst.At(2, 10) > 0.05 || dst.At(17, 10) < 0.95 {
		t.Errorf("edge smeared: %v / %v", dst.At(2, 10), dst.At(17, 10))
	}
}

func TestBilateralValidation(t *testing.T) {
	a := NewImage(NewRowMajor(4, 4))
	if err := Bilateral(a, a, BilateralOptions{Radius: 0}); err == nil {
		t.Error("radius 0 accepted")
	}
	b := NewImage(NewRowMajor(5, 4))
	if err := Bilateral(a, b, BilateralOptions{Radius: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestAxisStride2(t *testing.T) {
	rm := NewRowMajor(32, 32)
	if s := AxisStride2(rm, 0); s != 1 {
		t.Errorf("x stride %v", s)
	}
	if s := AxisStride2(rm, 1); s != 32 {
		t.Errorf("y stride %v", s)
	}
	z := NewZOrder2(32, 32)
	zx, zy := AxisStride2(z, 0), AxisStride2(z, 1)
	// Z order balances the axes; its worst axis beats row-major's.
	if math.Max(zx, zy) >= 32 {
		t.Errorf("zorder strides %v/%v not better than row-major worst", zx, zy)
	}
	h := NewHilbert2(32, 32)
	if math.Max(AxisStride2(h, 0), AxisStride2(h, 1)) >= 32 {
		t.Error("hilbert strides not better than row-major worst")
	}
}

func TestAxisStride2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("axis 2 accepted")
		}
	}()
	AxisStride2(NewRowMajor(4, 4), 2)
}

func TestLayoutNamePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewRowMajor(0, 4) },
		func() { NewZOrder2(4, -1) },
		func() { NewHilbert2(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad dims accepted")
				}
			}()
			f()
		}()
	}
}

type countSink struct{ reads, writes int }

func (c *countSink) Access(_ uint64, write bool) {
	if write {
		c.writes++
	} else {
		c.reads++
	}
}

func TestTracedImage(t *testing.T) {
	im := NewImage(NewZOrder2(4, 4))
	var c countSink
	tr := NewTraced(im, 0, &c)
	tr.Set(1, 2, 5)
	if tr.At(1, 2) != 5 {
		t.Error("traced roundtrip failed")
	}
	if c.reads != 1 || c.writes != 1 {
		t.Errorf("counts %d/%d", c.reads, c.writes)
	}
	if nx, ny := tr.Dims(); nx != 4 || ny != 4 {
		t.Errorf("dims %dx%d", nx, ny)
	}
}
