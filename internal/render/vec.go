// Package render implements the paper's semi-structured-memory-access
// kernel: a shared-memory-parallel raycasting volume renderer (§III-B).
//
// The renderer is image-order: it casts one perspective ray per output
// pixel through the 3D volume, samples the scalar field along the ray
// (trilinear interpolation), maps samples through a transfer function,
// and composites front-to-back. With perspective projection every ray
// has a distinct (δx, δy, δz) slope, so the memory access pattern is
// "semi-structured": predictable along a ray, different across rays —
// and its alignment with an array-order layout depends entirely on the
// viewpoint, which is exactly what the paper's orbit experiments vary.
//
// Work distribution follows the paper: the image is cut into 32×32
// tiles served to workers from a dynamic queue (internal/parallel).
package render

import "math"

// Vec3 is a 3-component double-precision vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns |v|.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}
