package render

import (
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

func imagesEqual(a, b *Image) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if a.At(x, y) != b.At(x, y) {
				return false
			}
		}
	}
	return true
}

// checkRenderDtype renders one dtype instantiation four ways — flat vs
// interface path, empty-skip on vs off — and demands identical frames:
// the fast path must be bit-identical and the conservative accel must
// never skip a contributing cell, for every element width.
func checkRenderDtype[T grid.Scalar](t *testing.T, kind core.Kind) {
	t.Helper()
	const n = 24
	vol := volume.CombustionPlumeOf[T](core.New(kind, n, n, n), 9)
	cam := Orbit(1, 8, n, n, n, 48, 48)
	tf := DefaultTransferFunc()
	base, err := RenderOf[T](vol, cam, tf, Options{Workers: 2, Shade: true})
	if err != nil {
		t.Fatal(err)
	}
	variants := []Options{
		{Workers: 2, Shade: true, NoFastPath: true},
		{Workers: 2, Shade: true, EmptySkip: true},
		{Workers: 2, Shade: true, EmptySkip: true, NoFastPath: true},
	}
	for _, o := range variants {
		img, err := RenderOf[T](vol, cam, tf, o)
		if err != nil {
			t.Fatal(err)
		}
		if !imagesEqual(base, img) {
			t.Errorf("%v/%v: frame differs (nofast=%v skip=%v)",
				grid.DtypeFor[T](), kind, o.NoFastPath, o.EmptySkip)
		}
	}
	// The frame must not be trivially empty.
	var sum float32
	for y := 0; y < base.H; y++ {
		for x := 0; x < base.W; x++ {
			sum += base.At(x, y).A
		}
	}
	if sum == 0 {
		t.Fatalf("%v/%v: rendered frame is empty", grid.DtypeFor[T](), kind)
	}
}

func TestRenderDtypesFlatVsInterfaceVsSkip(t *testing.T) {
	for _, kind := range []core.Kind{core.ZKind, core.HilbertKind} {
		checkRenderDtype[uint8](t, kind)
		checkRenderDtype[uint16](t, kind)
		checkRenderDtype[float32](t, kind)
		checkRenderDtype[float64](t, kind)
	}
}

func TestRenderDtypeTracksFloat32(t *testing.T) {
	// A uint16 volume quantizes the same plume to 65535 codes; the
	// rendered frame should be visually indistinguishable from the
	// float32 frame (small per-channel deviation), confirming the
	// normalization keeps the transfer function domain aligned.
	const n = 20
	l := core.NewZOrder(n, n, n)
	cam := Orbit(1, 8, n, n, n, 40, 40)
	tf := DefaultTransferFunc()
	f32, err := Render(volume.CombustionPlume(l, 4), cam, tf, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	u16, err := RenderOf[uint16](volume.CombustionPlumeOf[uint16](l, 4), cam, tf, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for y := 0; y < f32.H; y++ {
		for x := 0; x < f32.W; x++ {
			a, b := f32.At(x, y), u16.At(x, y)
			for _, d := range []float32{a.R - b.R, a.G - b.G, a.B - b.B, a.A - b.A} {
				if fd := float64(d); fd > worst {
					worst = fd
				} else if -fd > worst {
					worst = -fd
				}
			}
		}
	}
	if worst > 0.02 {
		t.Errorf("uint16 frame deviates from float32 by %v per channel", worst)
	}
}

func TestBuildAccelConservativePerDtype(t *testing.T) {
	// For integer dtypes the normalized cell max is rounded toward +Inf
	// into float32, so a cell is only skipped when it truly cannot
	// contribute. Check the bracket property against a float64 rescan.
	l := core.NewArrayOrder(16, 16, 16)
	vol := volume.CombustionPlumeOf[uint8](l, 7)
	a := BuildAccelOf[uint8](vol, 4)
	lo, hi := a.CellRange(0, 0, 0)
	var trueLo, trueHi float64
	trueLo = 2
	for z := 0; z <= 4; z++ { // cell (0,0,0) plus apron
		for y := 0; y <= 4; y++ {
			for x := 0; x <= 4; x++ {
				v := float64(vol.At(x, y, z)) / 255
				if v < trueLo {
					trueLo = v
				}
				if v > trueHi {
					trueHi = v
				}
			}
		}
	}
	if float64(lo) > trueLo || float64(hi) < trueHi {
		t.Errorf("cell range [%v,%v] does not bracket true range [%v,%v]", lo, hi, trueLo, trueHi)
	}
}
