package render

import (
	"testing"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

func TestBuildAccelRanges(t *testing.T) {
	// Value = x index: cell (cx,*,*) of edge 4 covers x in [4cx-1, 4cx+4]
	// (apron included, clamped).
	g := grid.FromFunc(core.NewArrayOrder(16, 16, 16), func(i, _, _ int) float32 {
		return float32(i)
	})
	a := BuildAccel(g, 4)
	if a.Edge() != 4 {
		t.Errorf("Edge=%d", a.Edge())
	}
	lo, hi := a.CellRange(0, 0, 0)
	if lo != 0 || hi != 4 {
		t.Errorf("cell 0 range %v..%v, want 0..4 (apron)", lo, hi)
	}
	lo, hi = a.CellRange(1, 0, 0)
	if lo != 3 || hi != 8 {
		t.Errorf("cell 1 range %v..%v, want 3..8", lo, hi)
	}
	lo, hi = a.CellRange(3, 2, 1)
	if lo != 11 || hi != 15 {
		t.Errorf("last cell range %v..%v, want 11..15", lo, hi)
	}
}

func TestBuildAccelPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("edge 0 accepted")
		}
	}()
	BuildAccel(grid.New(core.NewArrayOrder(4, 4, 4)), 0)
}

func TestMinOpaqueValue(t *testing.T) {
	tf, err := NewTransferFunc([]ControlPoint{
		{Value: 0.0, Color: RGBA{}},
		{Value: 0.5, Color: RGBA{}},
		{Value: 0.6, Color: RGBA{1, 1, 1, 0.5}},
		{Value: 1.0, Color: RGBA{1, 1, 1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := tf.MinOpaqueValue()
	if th < 0.45 || th > 0.55 {
		t.Errorf("threshold %v, want ≈0.5 (first bin with nonzero alpha)", th)
	}
	// Fully transparent function: threshold above any value.
	clear, err := NewTransferFunc([]ControlPoint{{Value: 0, Color: RGBA{}}})
	if err != nil {
		t.Fatal(err)
	}
	if clear.MinOpaqueValue() <= 1 {
		t.Errorf("transparent TF threshold %v", clear.MinOpaqueValue())
	}
}

func TestEmptySkipBitwiseIdentical(t *testing.T) {
	const n = 32
	vol := volume.CombustionPlume(core.NewZOrder(n, n, n), 1)
	tf := DefaultTransferFunc()
	for _, view := range []int{0, 1, 2, 3} {
		cam := Orbit(view, 8, n, n, n, 48, 48)
		plain, err := Render(vol, cam, tf, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		skip, err := Render(vol, cam, tf, Options{Workers: 2, EmptySkip: true})
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(plain, skip); d != 0 {
			t.Errorf("view %d: empty-skip changed the image by %v", view, d)
		}
		if plain.MeanAlpha() == 0 {
			t.Fatalf("view %d: vacuous comparison (empty image)", view)
		}
	}
}

func TestEmptySkipReducesSamples(t *testing.T) {
	// A small dense sphere in a big empty volume: most macrocells skip.
	const n = 64
	vol := volume.SolidSphere(core.NewArrayOrder(n, n, n), 0.25)
	cam := Orbit(1, 8, n, n, n, 32, 32)
	tf := GrayscaleTransferFunc()
	count := func(emptySkip bool) uint64 {
		var sink grid.CountingSink
		tv := grid.NewTraced(vol, 0, &sink)
		_, err := RenderViews([]grid.Reader{tv}, cam, tf,
			Options{EmptySkip: emptySkip})
		if err != nil {
			t.Fatal(err)
		}
		return sink.Reads
	}
	plain := count(false)
	skipped := count(true)
	// The accel build itself reads the whole volume once through the
	// traced view; subtract that fixed cost for the marching comparison.
	buildCost := uint64(0)
	{
		var sink grid.CountingSink
		BuildAccel(grid.NewTraced(vol, 0, &sink), 8)
		buildCost = sink.Reads
	}
	if skipped-buildCost >= plain/2 {
		t.Errorf("empty-skip marching reads %d (plus %d build) vs plain %d: not skipping",
			skipped-buildCost, buildCost, plain)
	}
}

func TestEmptySkipWorkerInvariance(t *testing.T) {
	const n = 24
	vol := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 5)
	cam := Orbit(3, 8, n, n, n, 40, 40)
	tf := DefaultTransferFunc()
	ref, err := Render(vol, cam, tf, Options{Workers: 1, EmptySkip: true})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Render(vol, cam, tf, Options{Workers: 5, EmptySkip: true, TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if MaxDiff(ref, multi) != 0 {
		t.Error("empty-skip result depends on workers/tiles")
	}
}
