package render

import (
	"bufio"
	"fmt"
	"image"
	"image/png"
	"io"
	"math"
	"os"
)

// Image is a float32 RGBA framebuffer.
type Image struct {
	W, H int
	pix  []RGBA
}

// NewImage allocates a transparent-black image.
func NewImage(w, h int) *Image {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("render: image size %dx%d must be positive", w, h))
	}
	return &Image{W: w, H: h, pix: make([]RGBA, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) RGBA { return im.pix[y*im.W+x] }

// Set stores the pixel at (x, y).
func (im *Image) Set(x, y int, c RGBA) { im.pix[y*im.W+x] = c }

// MeanAlpha returns the average alpha over the image: a cheap scalar
// fingerprint used by tests to confirm a view actually hit the volume.
func (im *Image) MeanAlpha() float64 {
	var sum float64
	for _, p := range im.pix {
		sum += float64(p.A)
	}
	return sum / float64(len(im.pix))
}

// MaxDiff returns the largest absolute per-channel difference between
// two images; it panics on size mismatch.
func MaxDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("render: MaxDiff size mismatch")
	}
	var m float64
	for i := range a.pix {
		p, q := a.pix[i], b.pix[i]
		for _, d := range []float64{
			math.Abs(float64(p.R - q.R)),
			math.Abs(float64(p.G - q.G)),
			math.Abs(float64(p.B - q.B)),
			math.Abs(float64(p.A - q.A)),
		} {
			if d > m {
				m = d
			}
		}
	}
	return m
}

// WritePPM writes the image as a binary PPM (P6) over a dark
// background, clamping and gamma-correcting to 8-bit.
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	const bg = 0.02
	to8 := func(v float32) byte {
		f := math.Pow(float64(v), 1/2.2)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return byte(f*255 + 0.5)
	}
	buf := make([]byte, 0, im.W*3)
	for y := 0; y < im.H; y++ {
		buf = buf[:0]
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			rem := 1 - p.A
			buf = append(buf, to8(p.R+rem*bg), to8(p.G+rem*bg), to8(p.B+rem*bg))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SavePPM writes the image to a file via WritePPM.
func (im *Image) SavePPM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := im.WritePPM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ToNRGBA converts the framebuffer to an 8-bit stdlib image over a dark
// background with gamma correction, for PNG export.
func (im *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	const bg = 0.02
	to8 := func(v float32) uint8 {
		f := math.Pow(float64(v), 1/2.2)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return uint8(f*255 + 0.5)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			rem := 1 - p.A
			i := out.PixOffset(x, y)
			out.Pix[i+0] = to8(p.R + rem*bg)
			out.Pix[i+1] = to8(p.G + rem*bg)
			out.Pix[i+2] = to8(p.B + rem*bg)
			out.Pix[i+3] = 255
		}
	}
	return out
}

// WritePNG encodes the image as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	return png.Encode(w, im.ToNRGBA())
}

// SavePNG writes the image to a PNG file.
func (im *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := im.WritePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
