package render

import (
	"fmt"
	"math"

	"sfcmem/internal/grid"
)

// Accel is a min-max macrocell structure for empty-space skipping: the
// volume is partitioned into edge³ macrocells, each storing the min and
// max sample value inside the cell *plus a one-voxel apron* (trilinear
// samples taken inside a cell can read neighbors one voxel outside it).
// During ray marching, a macrocell whose max value maps to zero opacity
// under the transfer function can be skipped in one jump — every sample
// in it would have contributed nothing, so the accelerated image is
// bitwise identical to the naive march.
type Accel struct {
	bx, by, bz int
	edge       int
	minv, maxv []float32
}

// BuildAccel scans a float32 volume once and returns the macrocell
// structure. edge must be positive (8 is a good default).
func BuildAccel(vol grid.Reader, edge int) *Accel {
	return BuildAccelOf[float32](vol, edge)
}

// BuildAccelOf is BuildAccel for any element type. Samples normalize
// into [0,1] (dividing by the dtype's scale) during the scan, which
// runs in float64; the per-cell min is stored rounded toward -Inf and
// the max toward +Inf, so the float32 cell ranges always bracket the
// true normalized range and skipping stays conservative. For float32
// volumes every scanned value is exactly representable, no rounding
// fires, and the structure is bit-identical to the pre-generic build.
func BuildAccelOf[T grid.Scalar](vol grid.ReaderOf[T], edge int) *Accel {
	if edge < 1 {
		panic(fmt.Sprintf("render: macrocell edge %d must be positive", edge))
	}
	inv := 1 / grid.NormScale[T]()
	nx, ny, nz := vol.Dims()
	ceil := func(n int) int { return (n + edge - 1) / edge }
	a := &Accel{bx: ceil(nx), by: ceil(ny), bz: ceil(nz), edge: edge}
	n := a.bx * a.by * a.bz
	a.minv = make([]float32, n)
	a.maxv = make([]float32, n)
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	for cz := 0; cz < a.bz; cz++ {
		for cy := 0; cy < a.by; cy++ {
			for cx := 0; cx < a.bx; cx++ {
				idx := (cz*a.by+cy)*a.bx + cx
				// Cell extent plus one-voxel apron, clamped to the volume.
				x0 := clamp(cx*edge-1, 0, nx-1)
				x1 := clamp((cx+1)*edge, 0, nx-1)
				y0 := clamp(cy*edge-1, 0, ny-1)
				y1 := clamp((cy+1)*edge, 0, ny-1)
				z0 := clamp(cz*edge-1, 0, nz-1)
				z1 := clamp((cz+1)*edge, 0, nz-1)
				lo, hi := math.Inf(1), math.Inf(-1)
				for z := z0; z <= z1; z++ {
					for y := y0; y <= y1; y++ {
						for x := x0; x <= x1; x++ {
							v := float64(vol.At(x, y, z)) * inv
							if v < lo {
								lo = v
							}
							if v > hi {
								hi = v
							}
						}
					}
				}
				a.minv[idx], a.maxv[idx] = conservDown(lo), conservUp(hi)
			}
		}
	}
	return a
}

// conservDown converts x to float32 rounding toward -Inf when the
// conversion is inexact, so a stored cell minimum never exceeds the
// true minimum.
func conservDown(x float64) float32 {
	f := float32(x)
	if float64(f) > x {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// conservUp converts x to float32 rounding toward +Inf when the
// conversion is inexact, so a stored cell maximum never undercuts the
// true maximum (skipping a cell stays sound for every dtype).
func conservUp(x float64) float32 {
	f := float32(x)
	if float64(f) < x {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// CellRange returns the (min, max) of macrocell (cx, cy, cz).
func (a *Accel) CellRange(cx, cy, cz int) (lo, hi float32) {
	idx := (cz*a.by+cy)*a.bx + cx
	return a.minv[idx], a.maxv[idx]
}

// Edge returns the macrocell edge length.
func (a *Accel) Edge() int { return a.edge }

// cellOf returns the macrocell containing voxel position (x, y, z),
// clamped into range.
func (a *Accel) cellOf(x, y, z float64) (cx, cy, cz int) {
	cx = clampCell(int(x)/a.edge, a.bx)
	cy = clampCell(int(y)/a.edge, a.by)
	cz = clampCell(int(z)/a.edge, a.bz)
	return cx, cy, cz
}

// maxAt returns the apron-inclusive max value of the macrocell holding
// the (continuous) position.
func (a *Accel) maxAt(x, y, z float64) float32 {
	cx, cy, cz := a.cellOf(x, y, z)
	return a.maxv[(cz*a.by+cy)*a.bx+cx]
}

// exitT returns the parametric distance at which the ray origin+t*dir
// leaves the macrocell containing position p (at parameter t0). The
// returned value is strictly greater than t0.
func (a *Accel) exitT(origin, dir Vec3, p Vec3, t0 float64) float64 {
	cx, cy, cz := a.cellOf(p.X, p.Y, p.Z)
	lo := Vec3{float64(cx * a.edge), float64(cy * a.edge), float64(cz * a.edge)}
	hi := Vec3{float64((cx + 1) * a.edge), float64((cy + 1) * a.edge), float64((cz + 1) * a.edge)}
	tExit := t0
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dir.X, dir.Y, dir.Z}
	l := [3]float64{lo.X, lo.Y, lo.Z}
	h := [3]float64{hi.X, hi.Y, hi.Z}
	first := true
	for axis := 0; axis < 3; axis++ {
		if d[axis] == 0 {
			continue
		}
		bound := h[axis]
		if d[axis] < 0 {
			bound = l[axis]
		}
		t := (bound - o[axis]) / d[axis]
		if first || t < tExit {
			tExit = t
			first = false
		}
	}
	if tExit <= t0 {
		return t0 + 1e-6 // degenerate ray; guarantee progress
	}
	return tExit
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}
