package render

import (
	"fmt"
	"math"
)

// Camera is a pinhole camera, perspective by default. With Ortho set it
// becomes orthographic: every ray shares the forward direction and only
// the origin varies. The paper (§III-B) contrasts the two: under
// orthographic projection all rays traverse the volume identically,
// while perspective gives each ray a distinct (δx, δy, δz) slope — the
// "semi-structured" access pattern the experiments exercise.
type Camera struct {
	Eye    Vec3    // camera position, in volume index coordinates
	Center Vec3    // look-at point
	Up     Vec3    // approximate up direction
	FOVY   float64 // vertical field of view, degrees (perspective only)
	Width  int     // image width, pixels
	Height int     // image height, pixels
	// Ortho switches to orthographic projection; OrthoHeight is the
	// world-space height of the image plane (0 defaults to the eye-
	// center distance, which roughly matches the perspective footprint).
	Ortho       bool
	OrthoHeight float64
}

// basis returns the orthonormal camera frame: forward, right, trueUp.
func (c Camera) basis() (fwd, right, up Vec3) {
	fwd = c.Center.Sub(c.Eye).Normalize()
	right = fwd.Cross(c.Up).Normalize()
	up = right.Cross(fwd)
	return fwd, right, up
}

// Ray returns the origin and normalized direction of the primary ray
// through pixel (px, py); pixel centers are offset by 0.5.
func (c Camera) Ray(px, py int) (origin, dir Vec3) {
	fwd, right, up := c.basis()
	aspect := float64(c.Width) / float64(c.Height)
	// NDC in [-1,1], y up.
	nu := 2*(float64(px)+0.5)/float64(c.Width) - 1
	nv := 1 - 2*(float64(py)+0.5)/float64(c.Height)
	if c.Ortho {
		hh := c.OrthoHeight / 2
		if hh <= 0 {
			hh = c.Center.Sub(c.Eye).Len() / 2
		}
		origin = c.Eye.Add(right.Scale(nu * hh * aspect)).Add(up.Scale(nv * hh))
		return origin, fwd
	}
	h := math.Tan(c.FOVY * math.Pi / 360) // tan(fov/2)
	dir = fwd.Add(right.Scale(nu * h * aspect)).Add(up.Scale(nv * h)).Normalize()
	return c.Eye, dir
}

// Orbit returns the camera for orbit position view of nViews around an
// nx×ny×nz volume, reproducing the paper's §IV-B4 viewpoint sweep: the
// eye circles the volume center in the x-z plane (up = +y) at a radius
// of 1.8× the largest half-extent. At view 0 the rays run parallel to
// the +x axis — array order's best case; at view nViews/2 they run
// parallel to -x; oblique views are the against-the-grain cases.
func Orbit(view, nViews int, nx, ny, nz, imgW, imgH int) Camera {
	if nViews <= 0 {
		panic("render: nViews must be positive")
	}
	center := Vec3{float64(nx-1) / 2, float64(ny-1) / 2, float64(nz-1) / 2}
	half := math.Max(float64(nx), math.Max(float64(ny), float64(nz))) / 2
	radius := 1.8 * half * math.Sqrt(3) // outside the bounding sphere
	theta := 2 * math.Pi * float64(view) / float64(nViews)
	eye := center.Add(Vec3{-radius * math.Cos(theta), 0, radius * math.Sin(theta)})
	return Camera{
		Eye:    eye,
		Center: center,
		Up:     Vec3{0, 1, 0},
		FOVY:   40,
		Width:  imgW,
		Height: imgH,
	}
}

// ViewpointLabel names an orbit position the way the paper's figures do.
func ViewpointLabel(view int) string { return fmt.Sprintf("%d", view) }

// intersectBox intersects the ray origin+t*dir with the axis-aligned
// box [lo, hi] using the slab method, returning the parametric entry
// and exit distances and whether the ray hits at all. tmin is clamped
// to zero (no samples behind the eye).
func intersectBox(origin, dir, lo, hi Vec3) (tmin, tmax float64, hit bool) {
	tmin, tmax = 0, math.Inf(1)
	o := [3]float64{origin.X, origin.Y, origin.Z}
	d := [3]float64{dir.X, dir.Y, dir.Z}
	l := [3]float64{lo.X, lo.Y, lo.Z}
	h := [3]float64{hi.X, hi.Y, hi.Z}
	for a := 0; a < 3; a++ {
		if d[a] == 0 {
			if o[a] < l[a] || o[a] > h[a] {
				return 0, 0, false
			}
			continue
		}
		t0 := (l[a] - o[a]) / d[a]
		t1 := (h[a] - o[a]) / d[a]
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tmin {
			tmin = t0
		}
		if t1 < tmax {
			tmax = t1
		}
		if tmin > tmax {
			return 0, 0, false
		}
	}
	return tmin, tmax, true
}
