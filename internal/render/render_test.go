package render

import (
	"bytes"
	"image/png"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}) != (Vec3{0, 0, 1}) {
		t.Error("Cross")
	}
	if (Vec3{0, 0, 0}).Normalize() != (Vec3{0, 0, 0}) {
		t.Error("Normalize zero")
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		if anyNaNInf(ax, ay, az, bx, by, bz) {
			return true
		}
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c := a.Cross(b)
		scale := a.Len()*b.Len() + 1
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		if anyNaNInf(x, y, z) {
			return true
		}
		v := Vec3{math.Mod(x, 1000), math.Mod(y, 1000), math.Mod(z, 1000)}
		if v.Len() == 0 {
			return true
		}
		return math.Abs(v.Normalize().Len()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestIntersectBox(t *testing.T) {
	lo, hi := Vec3{0, 0, 0}, Vec3{10, 10, 10}
	// Straight through.
	tmin, tmax, hit := intersectBox(Vec3{-5, 5, 5}, Vec3{1, 0, 0}, lo, hi)
	if !hit || tmin != 5 || tmax != 15 {
		t.Errorf("through: %v %v %v", tmin, tmax, hit)
	}
	// Miss.
	if _, _, hit := intersectBox(Vec3{-5, 20, 5}, Vec3{1, 0, 0}, lo, hi); hit {
		t.Error("miss reported as hit")
	}
	// Origin inside: tmin clamps to 0.
	tmin, tmax, hit = intersectBox(Vec3{5, 5, 5}, Vec3{1, 0, 0}, lo, hi)
	if !hit || tmin != 0 || tmax != 5 {
		t.Errorf("inside: %v %v %v", tmin, tmax, hit)
	}
	// Pointing away.
	if _, _, hit := intersectBox(Vec3{-5, 5, 5}, Vec3{-1, 0, 0}, lo, hi); hit {
		t.Error("behind-ray hit")
	}
	// Zero direction component inside the slab.
	if _, _, hit := intersectBox(Vec3{-5, 5, 5}, Vec3{1, 0, 0}, lo, hi); !hit {
		t.Error("axis-parallel ray missed")
	}
	// Zero direction component outside the slab.
	if _, _, hit := intersectBox(Vec3{-5, 20, 5}, Vec3{1, 0, 0}, lo, hi); hit {
		t.Error("axis-parallel outside hit")
	}
}

func TestCameraCenterRay(t *testing.T) {
	cam := Camera{
		Eye: Vec3{0, 0, -10}, Center: Vec3{0, 0, 0}, Up: Vec3{0, 1, 0},
		FOVY: 45, Width: 101, Height: 101,
	}
	_, dir := cam.Ray(50, 50)
	if math.Abs(dir.X) > 0.02 || math.Abs(dir.Y) > 0.02 || dir.Z < 0.99 {
		t.Errorf("center ray %v not toward +z", dir)
	}
	// Corner rays diverge (perspective, not orthographic).
	_, d2 := cam.Ray(0, 0)
	if math.Abs(d2.X-dir.X) < 1e-3 && math.Abs(d2.Y-dir.Y) < 1e-3 {
		t.Error("corner ray equals center ray; projection not perspective")
	}
}

func TestOrbitAlignment(t *testing.T) {
	// View 0: rays run parallel to +x (the paper's memory-aligned case).
	cam := Orbit(0, 8, 64, 64, 64, 64, 64)
	_, dir := cam.Ray(32, 32)
	if dir.X < 0.99 {
		t.Errorf("view 0 center ray %v not along +x", dir)
	}
	// View 4: -x.
	cam = Orbit(4, 8, 64, 64, 64, 64, 64)
	_, dir = cam.Ray(32, 32)
	if dir.X > -0.99 {
		t.Errorf("view 4 center ray %v not along -x", dir)
	}
	// View 2: along z (against the grain).
	cam = Orbit(2, 8, 64, 64, 64, 64, 64)
	_, dir = cam.Ray(32, 32)
	if math.Abs(dir.Z) < 0.99 {
		t.Errorf("view 2 center ray %v not along z", dir)
	}
	// Eye distance is view-independent.
	d0 := Orbit(0, 8, 64, 64, 64, 64, 64).Eye.Sub(Vec3{31.5, 31.5, 31.5}).Len()
	d3 := Orbit(3, 8, 64, 64, 64, 64, 64).Eye.Sub(Vec3{31.5, 31.5, 31.5}).Len()
	if math.Abs(d0-d3) > 1e-9 {
		t.Errorf("orbit radius varies: %v vs %v", d0, d3)
	}
}

func TestOrbitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Orbit with nViews=0 did not panic")
		}
	}()
	Orbit(0, 0, 8, 8, 8, 8, 8)
}

func TestTransferFuncInterpolation(t *testing.T) {
	tf, err := NewTransferFunc([]ControlPoint{
		{Value: 0, Color: RGBA{0, 0, 0, 0}},
		{Value: 1, Color: RGBA{1, 0.5, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid := tf.Eval(0.5)
	if math.Abs(float64(mid.R)-0.5) > 0.01 || math.Abs(float64(mid.A)-0.5) > 0.01 {
		t.Errorf("midpoint %+v", mid)
	}
	if tf.Eval(-5) != tf.Eval(0) || tf.Eval(5) != tf.Eval(1) {
		t.Error("clamping broken")
	}
}

func TestTransferFuncEmpty(t *testing.T) {
	if _, err := NewTransferFunc(nil); err == nil {
		t.Error("empty transfer function accepted")
	}
}

func TestTransferFuncUnsortedInput(t *testing.T) {
	a, err := NewTransferFunc([]ControlPoint{
		{Value: 1, Color: RGBA{1, 1, 1, 1}},
		{Value: 0, Color: RGBA{0, 0, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval(0).A != 0 || a.Eval(1).A != 1 {
		t.Error("points not sorted by value")
	}
}

func TestRenderEmptyVolumeTransparent(t *testing.T) {
	vol := volume.Constant(core.NewArrayOrder(16, 16, 16), 0)
	cam := Orbit(0, 8, 16, 16, 16, 32, 32)
	img, err := Render(vol, cam, DefaultTransferFunc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.MeanAlpha() != 0 {
		t.Errorf("empty volume rendered alpha %v", img.MeanAlpha())
	}
}

func TestRenderDenseVolumeOpaqueCenter(t *testing.T) {
	vol := volume.Constant(core.NewArrayOrder(16, 16, 16), 1)
	// Wide aspect so the horizontal extremes look past the volume.
	cam := Orbit(0, 8, 16, 16, 16, 99, 33)
	img, err := Render(vol, cam, GrayscaleTransferFunc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := img.At(49, 16); c.A < 0.9 {
		t.Errorf("center pixel alpha %v, want near-opaque", c.A)
	}
	// The left edge looks past the volume.
	if c := img.At(0, 16); c.A != 0 {
		t.Errorf("edge alpha %v", c.A)
	}
}

func TestRenderLayoutInvariance(t *testing.T) {
	const n = 16
	ref := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 1)
	cam := Orbit(3, 8, n, n, n, 24, 24)
	var first *Image
	for _, kind := range core.Kinds() {
		vol, err := ref.Relayout(core.New(kind, n, n, n))
		if err != nil {
			t.Fatal(err)
		}
		img, err := Render(vol, cam, DefaultTransferFunc(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = img
		} else if d := MaxDiff(first, img); d != 0 {
			t.Errorf("image differs by %v under %v layout", d, kind)
		}
	}
	if first.MeanAlpha() == 0 {
		t.Error("plume render came out empty; test vacuous")
	}
}

func TestRenderWorkerAndTileInvariance(t *testing.T) {
	const n = 16
	vol := volume.CombustionPlume(core.NewZOrder(n, n, n), 2)
	cam := Orbit(1, 8, n, n, n, 40, 40)
	ref, err := Render(vol, cam, DefaultTransferFunc(), Options{Workers: 1, TileSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Options{
		{Workers: 4, TileSize: 32},
		{Workers: 2, TileSize: 8},
		{Workers: 7, TileSize: 5},
	} {
		img, err := Render(vol, cam, DefaultTransferFunc(), o)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(ref, img); d != 0 {
			t.Errorf("options %+v changed image by %v", o, d)
		}
	}
}

func TestRenderEarlyTermination(t *testing.T) {
	// With a fully opaque volume, a lower MaxAlpha must strictly reduce
	// the number of samples taken.
	const n = 32
	vol := volume.Constant(core.NewArrayOrder(n, n, n), 1)
	cam := Orbit(0, 8, n, n, n, 16, 16)
	count := func(maxAlpha float64) uint64 {
		var sink grid.CountingSink
		tv := grid.NewTraced(vol, 0, &sink)
		_, err := RenderViews([]grid.Reader{tv}, cam, GrayscaleTransferFunc(),
			Options{MaxAlpha: maxAlpha})
		if err != nil {
			t.Fatal(err)
		}
		return sink.Reads
	}
	early, late := count(0.5), count(1.0)
	if early >= late {
		t.Errorf("early termination ineffective: %d >= %d reads", early, late)
	}
}

func TestRenderShadeChangesImage(t *testing.T) {
	const n = 16
	vol := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 3)
	cam := Orbit(2, 8, n, n, n, 24, 24)
	plain, err := Render(vol, cam, DefaultTransferFunc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	shaded, err := Render(vol, cam, DefaultTransferFunc(), Options{Shade: true})
	if err != nil {
		t.Fatal(err)
	}
	if MaxDiff(plain, shaded) == 0 {
		t.Error("shading had no effect")
	}
}

func TestRenderValidation(t *testing.T) {
	vol := volume.Constant(core.NewArrayOrder(8, 8, 8), 1)
	cam := Orbit(0, 8, 8, 8, 8, 16, 16)
	tf := GrayscaleTransferFunc()
	if _, err := Render(vol, cam, nil, Options{}); err == nil {
		t.Error("nil transfer function accepted")
	}
	if _, err := Render(vol, cam, tf, Options{Step: -1}); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := Render(vol, cam, tf, Options{MaxAlpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := Render(vol, cam, tf, Options{Workers: -2}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Render(vol, cam, tf, Options{TileSize: -1}); err == nil {
		t.Error("negative tile size accepted")
	}
	if _, err := Render(vol, cam, tf, Options{AccelEdge: -1}); err == nil {
		t.Error("negative macrocell edge accepted")
	}
	// Validation runs on the caller's values, before defaulting: zeros
	// mean "use the default" and must all be accepted.
	if _, err := Render(vol, cam, tf, Options{}); err != nil {
		t.Errorf("all-zero options rejected: %v", err)
	}
	badCam := cam
	badCam.Width = 0
	if _, err := Render(vol, badCam, tf, Options{}); err == nil {
		t.Error("zero-width image accepted")
	}
	small := volume.Constant(core.NewArrayOrder(4, 4, 4), 1)
	if _, err := RenderViews([]grid.Reader{vol, small}, cam, tf, Options{Workers: 2}); err == nil {
		t.Error("view dimension mismatch accepted")
	}
	if _, err := RenderViews([]grid.Reader{vol}, cam, tf, Options{Workers: 2}); err == nil {
		t.Error("view count mismatch accepted")
	}
}

func TestImagePPM(t *testing.T) {
	img := NewImage(2, 2)
	img.Set(0, 0, RGBA{1, 0, 0, 1})
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P6\n2 2\n255\n") {
		t.Errorf("bad PPM header: %q", out[:20])
	}
	if len(out) != len("P6\n2 2\n255\n")+2*2*3 {
		t.Errorf("PPM body length %d", len(out))
	}
	// Red pixel: first byte near 255, second near 0.
	body := out[len("P6\n2 2\n255\n"):]
	if body[0] < 250 || body[1] > 60 {
		t.Errorf("red pixel bytes % x", body[:3])
	}
}

func TestNewImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,5) did not panic")
		}
	}()
	NewImage(0, 5)
}

func TestMaxDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxDiff size mismatch did not panic")
		}
	}()
	MaxDiff(NewImage(2, 2), NewImage(3, 2))
}

func BenchmarkRenderAligned(b *testing.B) { benchRender(b, 0) }
func BenchmarkRenderOblique(b *testing.B) { benchRender(b, 3) }

func benchRender(b *testing.B, view int) {
	b.Helper()
	const n = 32
	vol := volume.CombustionPlume(core.NewZOrder(n, n, n), 1)
	cam := Orbit(view, 8, n, n, n, 64, 64)
	tf := DefaultTransferFunc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Render(vol, cam, tf, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOrthographicRaysParallel(t *testing.T) {
	cam := Orbit(1, 8, 32, 32, 32, 40, 40)
	cam.Ortho = true
	o1, d1 := cam.Ray(0, 0)
	o2, d2 := cam.Ray(39, 39)
	if d1 != d2 {
		t.Errorf("orthographic rays diverge: %v vs %v", d1, d2)
	}
	if o1 == o2 {
		t.Error("orthographic origins should differ across pixels")
	}
	// Default plane height: nonzero footprint.
	if o1.Sub(o2).Len() == 0 {
		t.Error("zero image-plane footprint")
	}
}

func TestOrthographicRenderSeesVolume(t *testing.T) {
	const n = 16
	vol := volume.Constant(core.NewArrayOrder(n, n, n), 1)
	cam := Orbit(0, 8, n, n, n, 32, 32)
	cam.Ortho = true
	cam.OrthoHeight = float64(n) * 2
	img, err := Render(vol, cam, GrayscaleTransferFunc(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c := img.At(16, 16); c.A < 0.9 {
		t.Errorf("ortho center alpha %v", c.A)
	}
	if c := img.At(0, 0); c.A != 0 {
		t.Errorf("ortho corner alpha %v (plane is 2x the volume)", c.A)
	}
}

// Under orthographic projection every ray has the same slope, so the
// aligned-view access stream is maximally regular; the traced read count
// must not depend on which layout is used (identical sample positions).
func TestOrthographicSampleCountLayoutInvariant(t *testing.T) {
	const n = 16
	base := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 1)
	zvol, err := base.Relayout(core.NewZOrder(n, n, n))
	if err != nil {
		t.Fatal(err)
	}
	count := func(g *grid.Grid[float32]) uint64 {
		var sink grid.CountingSink
		cam := Orbit(2, 8, n, n, n, 24, 24)
		cam.Ortho = true
		_, err := RenderViews([]grid.Reader{grid.NewTraced(g, 0, &sink)},
			cam, DefaultTransferFunc(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sink.Reads
	}
	if a, z := count(base), count(zvol); a != z {
		t.Errorf("read counts differ across layouts: %d vs %d", a, z)
	}
}

func TestPNGRoundtrip(t *testing.T) {
	img := NewImage(3, 2)
	img.Set(0, 0, RGBA{1, 0, 0, 1})
	img.Set(2, 1, RGBA{0, 1, 0, 1})
	var buf bytes.Buffer
	if err := img.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := decoded.Bounds()
	if b.Dx() != 3 || b.Dy() != 2 {
		t.Errorf("decoded size %dx%d", b.Dx(), b.Dy())
	}
	r, g, _, _ := decoded.At(0, 0).RGBA()
	if r < 0xf000 || g > 0x4000 {
		t.Errorf("red pixel decoded as r=%04x g=%04x", r, g)
	}
}

func TestSaveImageFiles(t *testing.T) {
	dir := t.TempDir()
	img := NewImage(4, 4)
	img.Set(1, 1, RGBA{0.5, 0.5, 0.5, 1})
	ppm := filepath.Join(dir, "x.ppm")
	if err := img.SavePPM(ppm); err != nil {
		t.Fatal(err)
	}
	pngPath := filepath.Join(dir, "x.png")
	if err := img.SavePNG(pngPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{ppm, pngPath} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("%s: %v, size %v", p, err, st)
		}
	}
	// Unwritable path errors.
	if err := img.SavePPM(filepath.Join(dir, "no/such/dir.ppm")); err == nil {
		t.Error("bad path accepted")
	}
	if err := img.SavePNG(filepath.Join(dir, "no/such/dir.png")); err == nil {
		t.Error("bad png path accepted")
	}
}

func TestStaticScheduleSameImage(t *testing.T) {
	const n = 16
	vol := volume.CombustionPlume(core.NewZOrder(n, n, n), 4)
	cam := Orbit(2, 8, n, n, n, 48, 48)
	tf := DefaultTransferFunc()
	dyn, err := Render(vol, cam, tf, Options{Workers: 3, Schedule: DynamicSchedule})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := Render(vol, cam, tf, Options{Workers: 3, Schedule: StaticSchedule})
	if err != nil {
		t.Fatal(err)
	}
	if MaxDiff(dyn, stat) != 0 {
		t.Error("scheduling strategy changed the image")
	}
}

func TestRenderFastPathBitIdentical(t *testing.T) {
	// The flat sampling fast path must produce a bitwise-identical image
	// to the interface path for every layout, including with shading
	// (gradient fetches) and empty-space skipping enabled. Non-separable
	// layouts silently stay on the interface path and trivially agree.
	const n = 16
	base := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 5)
	cam := Orbit(3, 8, n, n, n, 32, 32)
	tf := DefaultTransferFunc()
	for _, kind := range core.Kinds() {
		vol, err := base.Relayout(core.New(kind, n, n, n))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []Options{
			{Workers: 2},
			{Workers: 2, Shade: true},
			{Workers: 2, EmptySkip: true, AccelEdge: 4},
		} {
			fast, err := Render(vol, cam, tf, o)
			if err != nil {
				t.Fatal(err)
			}
			o.NoFastPath = true
			slow, err := Render(vol, cam, tf, o)
			if err != nil {
				t.Fatal(err)
			}
			if d := MaxDiff(fast, slow); d != 0 {
				t.Errorf("%v %+v: fast path image differs by %v", kind, o, d)
			}
		}
	}
}

func TestRenderNonCubicVolume(t *testing.T) {
	const nx, ny, nz = 24, 10, 17
	base := volume.CombustionPlume(core.NewArrayOrder(nx, ny, nz), 6)
	cam := Orbit(3, 8, nx, ny, nz, 32, 32)
	var ref *Image
	for _, kind := range core.Kinds() {
		vol, err := base.Relayout(core.New(kind, nx, ny, nz))
		if err != nil {
			t.Fatal(err)
		}
		img, err := Render(vol, cam, DefaultTransferFunc(), Options{Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if ref == nil {
			ref = img
		} else if MaxDiff(ref, img) != 0 {
			t.Errorf("%v: non-cubic render differs", kind)
		}
	}
}
