package render

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

// denseVolume is an everywhere-opaque volume, so renders do real work on
// every tile.
func denseVolume(n int) *grid.Grid[float32] {
	return grid.FromFunc(core.NewZOrder(n, n, n), func(i, j, k int) float32 {
		return 0.5 + 0.4*float32((i+j+k)%2)
	})
}

func TestRenderCtxMatchesRender(t *testing.T) {
	vol := denseVolume(16)
	cam := Orbit(1, 8, 16, 16, 16, 32, 32)
	tf := DefaultTransferFunc()
	o := Options{Workers: 2}
	want, err := Render(vol, cam, tf, o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := RenderCtx(ctx, vol, cam, tf, o)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(want, got); d != 0 {
		t.Errorf("RenderCtx with live context differs from Render: max diff %g", d)
	}
}

func TestRenderExpiredDeadlineFailsFast(t *testing.T) {
	vol := denseVolume(32)
	// Large enough that a full serial render would take a visible chunk
	// of time; the expired deadline must return far sooner than that.
	cam := Orbit(1, 8, 32, 32, 32, 512, 512)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	img, err := RenderCtx(ctx, vol, cam, DefaultTransferFunc(), Options{Workers: 2, NoFastPath: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if img != nil {
		t.Errorf("got partial image on expired deadline")
	}
	if elapsed > 250*time.Millisecond {
		t.Errorf("expired deadline took %v, want prompt return", elapsed)
	}
}

// TestRenderCancelStopsTiles cancels from the tile observer and checks
// the scheduler stops handing out tiles: only the in-flight tiles may
// finish after the cancellation.
func TestRenderCancelStopsTiles(t *testing.T) {
	const workers = 4
	vol := denseVolume(16)
	cam := Orbit(1, 8, 16, 16, 16, 256, 256) // 64 tiles of 32x32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	var once sync.Once
	obs := parallel.Observer(func(_, _ int, _ time.Time, _ time.Duration) {
		done.Add(1)
		once.Do(cancel)
	})
	img, err := RenderCtx(ctx, vol, cam, DefaultTransferFunc(), Options{Workers: workers, Observer: obs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if img != nil {
		t.Errorf("got image from cancelled render")
	}
	if n := done.Load(); n > 2*workers {
		t.Errorf("%d tiles completed after mid-flight cancel (want <= %d of 64)", n, 2*workers)
	}
}

// TestRenderCancelNoGoroutineLeak runs many cancelled renders and checks
// worker goroutines are all reaped (the acceptance criterion's guard
// against leaks, meaningful under -race).
func TestRenderCancelNoGoroutineLeak(t *testing.T) {
	vol := denseVolume(16)
	cam := Orbit(1, 8, 16, 16, 16, 128, 128)
	tf := DefaultTransferFunc()
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		obs := parallel.Observer(func(_, _ int, _ time.Time, _ time.Duration) { once.Do(cancel) })
		if _, err := RenderCtx(ctx, vol, cam, tf, Options{Workers: 4, Observer: obs}); !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: err = %v, want Canceled", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancelled renders", before, runtime.NumGoroutine())
}
