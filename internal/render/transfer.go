package render

import (
	"fmt"
	"sort"
)

// RGBA is a straight-alpha color sample.
type RGBA struct {
	R, G, B, A float32
}

// ControlPoint anchors the transfer function at a scalar value.
type ControlPoint struct {
	Value float64 // scalar position in [0,1]
	Color RGBA
}

// TransferFunc maps scalar field values to color and opacity by
// piecewise-linear interpolation between control points. For speed the
// function is baked into a fixed-resolution lookup table at
// construction, so per-sample evaluation is one index computation.
type TransferFunc struct {
	lut []RGBA
}

// tfLUTSize is the baked table resolution.
const tfLUTSize = 1024

// NewTransferFunc builds a transfer function from control points, which
// are sorted by value; values outside the first/last point clamp. At
// least one point is required.
func NewTransferFunc(points []ControlPoint) (*TransferFunc, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("render: transfer function needs at least one control point")
	}
	pts := append([]ControlPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value })
	tf := &TransferFunc{lut: make([]RGBA, tfLUTSize)}
	for i := range tf.lut {
		v := float64(i) / (tfLUTSize - 1)
		tf.lut[i] = evalPiecewise(pts, v)
	}
	return tf, nil
}

func evalPiecewise(pts []ControlPoint, v float64) RGBA {
	if v <= pts[0].Value {
		return pts[0].Color
	}
	last := pts[len(pts)-1]
	if v >= last.Value {
		return last.Color
	}
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].Value > v })
	a, b := pts[hi-1], pts[hi]
	span := b.Value - a.Value
	if span == 0 {
		return a.Color
	}
	t := float32((v - a.Value) / span)
	return RGBA{
		R: a.Color.R + (b.Color.R-a.Color.R)*t,
		G: a.Color.G + (b.Color.G-a.Color.G)*t,
		B: a.Color.B + (b.Color.B-a.Color.B)*t,
		A: a.Color.A + (b.Color.A-a.Color.A)*t,
	}
}

// Eval maps a scalar value (clamped to [0,1]) through the baked table.
func (tf *TransferFunc) Eval(v float32) RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return tf.lut[int(v*(tfLUTSize-1))]
}

// MinOpaqueValue returns the smallest scalar value whose transfer-
// function opacity is nonzero, i.e. the threshold below which samples
// contribute nothing. Macrocells whose max value is strictly below this
// can be skipped entirely (see Accel). Returns a value > 1 if the whole
// function is transparent.
func (tf *TransferFunc) MinOpaqueValue() float32 {
	for i, c := range tf.lut {
		if c.A > 0 {
			return float32(i) / (tfLUTSize - 1)
		}
	}
	return 2
}

// DefaultTransferFunc is the flame-like map used for the combustion
// plume: transparent below a threshold (empty air costs nothing), then
// smoke-grey, orange, and white-hot with rising opacity.
func DefaultTransferFunc() *TransferFunc {
	tf, err := NewTransferFunc([]ControlPoint{
		{Value: 0.00, Color: RGBA{0, 0, 0, 0}},
		{Value: 0.05, Color: RGBA{0, 0, 0, 0}},
		{Value: 0.20, Color: RGBA{0.35, 0.30, 0.30, 0.02}},
		{Value: 0.45, Color: RGBA{0.9, 0.45, 0.10, 0.15}},
		{Value: 0.70, Color: RGBA{1.0, 0.75, 0.25, 0.45}},
		{Value: 1.00, Color: RGBA{1.0, 1.0, 0.9, 0.85}},
	})
	if err != nil {
		panic(err) // static points; cannot fail
	}
	return tf
}

// GrayscaleTransferFunc maps value v to gray with opacity proportional
// to v; useful for the MRI phantom and tests.
func GrayscaleTransferFunc() *TransferFunc {
	tf, err := NewTransferFunc([]ControlPoint{
		{Value: 0, Color: RGBA{0, 0, 0, 0}},
		{Value: 1, Color: RGBA{1, 1, 1, 0.8}},
	})
	if err != nil {
		panic(err)
	}
	return tf
}
