package render

import (
	"context"
	"fmt"
	"math"

	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
)

// Schedule selects how image tiles are handed to workers.
type Schedule int

// Tile scheduling strategies.
const (
	// DynamicSchedule serves tiles from a shared atomic queue (the
	// paper's worker-pool model; its best performer and the default).
	DynamicSchedule Schedule = iota
	// StaticSchedule preassigns tiles round-robin: tile t goes to
	// worker t mod W regardless of per-tile cost. Load imbalance shows
	// when rays through some tiles terminate early.
	StaticSchedule
)

// Options configures one render.
type Options struct {
	// TileSize is the image-tile edge handed to the worker pool; zero
	// defaults to 32, the size the paper settled on (§III-B).
	TileSize int
	// Workers is the number of concurrent workers; zero defaults to 1.
	Workers int
	// Step is the ray-march step in voxel units; zero defaults to 1.
	Step float64
	// MaxAlpha is the early-ray-termination threshold; zero defaults
	// to 0.98.
	MaxAlpha float64
	// Shade enables gradient-based Lambertian shading (reads six extra
	// neighbors per sample through the same traced view).
	Shade bool
	// Schedule selects the tile work-distribution strategy. The paper
	// (§III) implemented several and found the dynamic worker-pool best;
	// StaticSchedule (round-robin tile preassignment) is kept for that
	// comparison.
	Schedule Schedule
	// EmptySkip enables min-max macrocell empty-space skipping: rays
	// jump over regions the transfer function maps to zero opacity.
	// The image is bitwise identical to the unaccelerated march; the
	// structure is built once per render from the first view (its scan
	// is traced if that view is traced).
	EmptySkip bool
	// AccelEdge is the macrocell edge for EmptySkip; zero defaults to 8.
	AccelEdge int
	// Stats, if non-nil, receives per-worker scheduling statistics
	// (item counts, busy time) for the tile distribution.
	Stats *parallel.Stats
	// Observer, if non-nil, is called once per completed tile with the
	// worker, tile index, and timing. Enables timeline recording.
	Observer parallel.Observer
	// NoFastPath forces the generic interface sampling path even for
	// plain grids with separable layouts, disabling the flat-access fast
	// path. Used by ablation benches and cross-check tests; traced views
	// always take the interface path regardless.
	NoFastPath bool
}

func (o Options) withDefaults() Options {
	if o.TileSize == 0 {
		o.TileSize = 32
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Step == 0 {
		o.Step = 1
	}
	if o.MaxAlpha == 0 {
		o.MaxAlpha = 0.98
	}
	if o.AccelEdge == 0 {
		o.AccelEdge = 8
	}
	return o
}

// validate checks the options exactly as the caller supplied them,
// before withDefaults rewrites zeros — so an explicit invalid value is
// reported truthfully while zero keeps meaning "use the default".
func (o Options) validate() error {
	if o.TileSize < 0 {
		return fmt.Errorf("render: tile size %d must be non-negative (zero selects the default)", o.TileSize)
	}
	if o.Workers < 0 {
		return fmt.Errorf("render: workers %d must be non-negative (zero selects the default)", o.Workers)
	}
	if o.Step < 0 {
		return fmt.Errorf("render: step %g must be non-negative (zero selects the default)", o.Step)
	}
	if o.MaxAlpha < 0 || o.MaxAlpha > 1 {
		return fmt.Errorf("render: max alpha %g must be in [0,1] (zero selects the default)", o.MaxAlpha)
	}
	if o.AccelEdge < 0 {
		return fmt.Errorf("render: macrocell edge %d must be non-negative (zero selects the default)", o.AccelEdge)
	}
	return nil
}

// Render raycasts the volume from cam through tf, with all workers
// sharing one view of the volume.
func Render(vol grid.Reader, cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderCtx(context.Background(), vol, cam, tf, o)
}

// RenderOf is Render for any element type.
func RenderOf[T grid.Scalar](vol grid.ReaderOf[T], cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderCtxOf(context.Background(), vol, cam, tf, o)
}

// RenderCtx is Render with cooperative cancellation: workers stop taking
// image tiles once ctx is done and the call returns (nil, ctx's error),
// discarding the partial frame. A context that can never be cancelled
// takes exactly the non-context code path.
func RenderCtx(ctx context.Context, vol grid.Reader, cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderCtxOf[float32](ctx, vol, cam, tf, o)
}

// RenderCtxOf is RenderCtx for any element type.
func RenderCtxOf[T grid.Scalar](ctx context.Context, vol grid.ReaderOf[T], cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	views := make([]grid.ReaderOf[T], o.Workers)
	for w := range views {
		views[w] = vol
	}
	return RenderViewsCtxOf(ctx, views, cam, tf, o)
}

// RenderViews raycasts with per-worker volume views: worker w samples
// the volume only through views[w]. The cache-simulation experiments
// pass one traced view per simulated thread. len(views) must equal
// Workers (after defaulting); all views must agree on dimensions.
func RenderViews(views []grid.Reader, cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderViewsCtxOf[float32](context.Background(), views, cam, tf, o)
}

// RenderViewsOf is RenderViews for any element type.
func RenderViewsOf[T grid.Scalar](views []grid.ReaderOf[T], cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderViewsCtxOf(context.Background(), views, cam, tf, o)
}

// RenderViewsCtx is RenderViews with cooperative cancellation; see
// RenderCtx. Tiles are the cancellation granule: a tile that has started
// runs to completion, and no new tiles are handed out after ctx is done.
func RenderViewsCtx(ctx context.Context, views []grid.Reader, cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	return RenderViewsCtxOf[float32](ctx, views, cam, tf, o)
}

// RenderViewsCtxOf is RenderViewsCtx for any element type. Samples
// normalize into [0,1] before the transfer function; the ray
// accumulator is float64 for float64 volumes and float32 otherwise, so
// the float32 instantiation reproduces the pre-generic frames bit for
// bit.
func RenderViewsCtxOf[T grid.Scalar](ctx context.Context, views []grid.ReaderOf[T], cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	if grid.DtypeFor[T]() == grid.F64 {
		return renderViewsCtxOf[T, float64](ctx, views, cam, tf, o)
	}
	return renderViewsCtxOf[T, float32](ctx, views, cam, tf, o)
}

func renderViewsCtxOf[T grid.Scalar, A grid.Accum](ctx context.Context, views []grid.ReaderOf[T], cam Camera, tf *TransferFunc, o Options) (*Image, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	if len(views) != o.Workers {
		return nil, fmt.Errorf("render: need %d views, got %d", o.Workers, len(views))
	}
	if tf == nil {
		return nil, fmt.Errorf("render: nil transfer function")
	}
	if cam.Width < 1 || cam.Height < 1 {
		return nil, fmt.Errorf("render: image %dx%d must be positive", cam.Width, cam.Height)
	}
	nx, ny, nz := views[0].Dims()
	for w := 1; w < len(views); w++ {
		x, y, z := views[w].Dims()
		if x != nx || y != ny || z != nz {
			return nil, fmt.Errorf("render: view %d dimensions disagree", w)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err // fail fast before acceleration-structure builds
	}
	var accel *Accel
	var skipBelow float32
	if o.EmptySkip {
		accel = BuildAccelOf(views[0], o.AccelEdge)
		skipBelow = tf.MinOpaqueValue()
	}
	img := NewImage(cam.Width, cam.Height)
	tiles := parallel.Tiles(cam.Width, cam.Height, o.TileSize)
	lo := Vec3{0, 0, 0}
	hi := Vec3{float64(nx - 1), float64(ny - 1), float64(nz - 1)}
	// The dtype's normalization reciprocal in the accumulator type:
	// exactly 1 for float dtypes, which the sampling primitives detect
	// to skip the multiply (preserving pre-generic bit patterns).
	inv := A(1 / grid.NormScale[T]())
	// Resolve each worker's view to the flat fast path once, at setup:
	// a plain *grid.Grid under a separable layout flattens to its raw
	// buffer plus per-axis offset tables; traced views and non-separable
	// layouts (Hilbert, HZ) resolve to nil and keep the interface path.
	flats := make([]*grid.Flat[T], o.Workers)
	if !o.NoFastPath {
		for w := range flats {
			flats[w] = grid.Flatten(views[w])
		}
	}
	tile := func(w, ti int) {
		vol, flat := views[w], flats[w]
		t := tiles[ti]
		for py := t.Y0; py < t.Y1; py++ {
			for px := t.X0; px < t.X1; px++ {
				img.Set(px, py, castRay(vol, flat, inv, cam, tf, o, px, py, lo, hi, accel, skipBelow))
			}
		}
	}
	if o.Stats != nil || o.Observer != nil {
		instrumented := parallel.DynamicInstrumentedCtx
		if o.Schedule == StaticSchedule {
			instrumented = parallel.RoundRobinInstrumentedCtx
		}
		st, err := instrumented(ctx, len(tiles), o.Workers, tile, o.Observer)
		if o.Stats != nil {
			*o.Stats = st
		}
		if err != nil {
			return nil, err
		}
	} else {
		schedule := parallel.DynamicCtx
		if o.Schedule == StaticSchedule {
			schedule = parallel.RoundRobinCtx
		}
		if err := schedule(ctx, len(tiles), o.Workers, tile); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// castRay integrates one primary ray: slab intersection, fixed-step
// front-to-back compositing with opacity correction and early ray
// termination. When flat is non-nil the trilinear samples and shading
// gradients come from the devirtualized flat view (bit-identical
// arithmetic to the interface path); otherwise every access goes
// through vol. Samples lerp in the accumulator type A and normalize by
// inv before the transfer function; gradients stay unnormalized (the
// shading normal is unit-scaled anyway, so a uniform dtype scale
// cancels).
func castRay[T grid.Scalar, A grid.Accum](vol grid.ReaderOf[T], flat *grid.Flat[T], inv A, cam Camera, tf *TransferFunc, o Options, px, py int, lo, hi Vec3, accel *Accel, skipBelow float32) RGBA {
	origin, dir := cam.Ray(px, py)
	tmin, tmax, hit := intersectBox(origin, dir, lo, hi)
	if !hit {
		return RGBA{}
	}
	var out RGBA
	// Opacity correction: control-point opacities are defined per unit
	// step; correct for the actual step length.
	alphaExp := float32(o.Step)
	for t := tmin; t <= tmax; t += o.Step {
		p := origin.Add(dir.Scale(t))
		if accel != nil && accel.maxAt(p.X, p.Y, p.Z) < skipBelow {
			// Everything in this macrocell composites to nothing; jump
			// to the first sample lattice point past the cell exit.
			tExit := accel.exitT(origin, dir, p, t)
			steps := math.Floor((tExit - tmin) / o.Step)
			tNext := tmin + steps*o.Step
			for tNext <= t {
				tNext += o.Step
			}
			t = tNext - o.Step // loop increment lands on tNext
			continue
		}
		var s float32
		if flat != nil {
			s = grid.SampleFlat(flat, inv, p.X, p.Y, p.Z)
		} else {
			s = grid.SampleReader(vol, inv, p.X, p.Y, p.Z)
		}
		c := tf.Eval(s)
		if c.A <= 0 {
			continue
		}
		a := c.A
		if alphaExp != 1 {
			a = 1 - float32(math.Pow(float64(1-a), float64(alphaExp)))
		}
		if o.Shade && a > 0.01 {
			// Gradient clamps indices internally; p is inside the box.
			var gx, gy, gz float32
			if flat != nil {
				gx, gy, gz = grid.GradientFlat[T, A](flat, int(p.X), int(p.Y), int(p.Z))
			} else {
				gx, gy, gz = grid.GradientReader[T, A](vol, int(p.X), int(p.Y), int(p.Z))
			}
			n := Vec3{float64(gx), float64(gy), float64(gz)}.Normalize()
			light := Vec3{0.5, 1, 0.3}.Normalize()
			lambert := float32(math.Abs(n.Dot(light)))
			shade := 0.35 + 0.65*lambert
			c.R *= shade
			c.G *= shade
			c.B *= shade
		}
		rem := 1 - out.A
		out.R += rem * a * c.R
		out.G += rem * a * c.G
		out.B += rem * a * c.B
		out.A += rem * a
		if float64(out.A) >= o.MaxAlpha {
			break
		}
	}
	return out
}
