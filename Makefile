# Convenience targets for the sfcmem reproduction.

GO ?= go

.PHONY: all check build test vet bench bench-smoke fuzz-smoke figures figures-quick cover race clean

all: check

# Full pre-merge gate: compile, vet, unit tests, race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure + extension study (tens of minutes).
figures:
	$(GO) run ./cmd/sfcbench -fig 0 -v -out results_full.txt -csv csv

figures-quick:
	$(GO) run ./cmd/sfcbench -fig 0 -quick

bench:
	$(GO) test -bench=. -benchmem ./...

# Compile and single-step every benchmark so they can't silently rot;
# cheap enough to run in CI on every push.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short bursts of the native fuzz targets (Go allows one -fuzz pattern
# per invocation, so the curves run back to back).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzZOrderRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzHilbertRoundTrip -fuzztime=$(FUZZTIME) ./internal/core

clean:
	rm -rf csv frames lod test_output.txt bench_output.txt
