# Convenience targets for the sfcmem reproduction.

GO ?= go

.PHONY: all check build test vet bench figures figures-quick cover race clean

all: check

# Full pre-merge gate: compile, vet, unit tests, race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure + extension study (tens of minutes).
figures:
	$(GO) run ./cmd/sfcbench -fig 0 -v -out results_full.txt -csv csv

figures-quick:
	$(GO) run ./cmd/sfcbench -fig 0 -quick

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	rm -rf csv frames lod test_output.txt bench_output.txt
