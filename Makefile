# Convenience targets for the sfcmem reproduction.

GO ?= go

.PHONY: all check build test vet bench bench-smoke fuzz-smoke figures figures-quick cover cover-check race lint bench-regression bench-baseline baseline-refresh tune-smoke clean

all: check

# Full pre-merge gate: compile, vet, unit tests, race detector.
check: build vet test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage gate over the library packages: fail when total statement
# coverage drops below COVER_MIN percent.
COVER_MIN ?= 70
cover-check:
	$(GO) test -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total internal/... coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
	  { echo "coverage $$total% is below $(COVER_MIN)%"; exit 1; }

# Static analysis beyond go vet. Skips with a notice when golangci-lint
# is not installed locally; CI always runs it via golangci-lint-action.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
	  golangci-lint run ./...; \
	else \
	  echo "golangci-lint not installed; skipping (CI runs it)"; \
	fi

# Regenerate every paper figure + extension study (tens of minutes).
figures:
	$(GO) run ./cmd/sfcbench -fig 0 -v -out results_full.txt -csv csv

figures-quick:
	$(GO) run ./cmd/sfcbench -fig 0 -quick

bench:
	$(GO) test -bench=. -benchmem ./...

# Compile and single-step every benchmark so they can't silently rot;
# cheap enough to run in CI on every push.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Perf regression gate: run the fast-path benchmarks and compare ns/op
# against the committed baseline with cmd/benchdiff. Fails when a gated
# benchmark regresses past BENCH_THRESHOLD percent. Refresh the
# baseline after an intentional perf change with `make bench-baseline`.
BENCH_GATE ?= FastPathBilatR5|FastPathVolrend|BilateralStepR5|BitLayout
BENCH_THRESHOLD ?= 15
bench-regression:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchtime=3x -count=3 -benchmem . > bench_fresh.txt
	$(GO) run ./cmd/benchdiff -in bench_fresh.txt -out bench_fresh.json \
	  -baseline BENCH_baseline.json -gate '$(BENCH_GATE)' -threshold $(BENCH_THRESHOLD)

bench-baseline:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchtime=3x -count=3 -benchmem . > bench_fresh.txt
	$(GO) run ./cmd/benchdiff -in bench_fresh.txt -baseline BENCH_baseline.json -update

# Higher-fidelity baseline regeneration: min of 5 repeats per gated
# benchmark, with a printed diff against the old baseline before it is
# overwritten (the compare step is informational, never failing). CI
# exposes this as a manually-dispatched job; run it locally after an
# intentional perf change and commit the refreshed BENCH_baseline.json.
baseline-refresh:
	$(GO) test -run='^$$' -bench='$(BENCH_GATE)' -benchtime=3x -count=5 -benchmem . > bench_fresh.txt
	@echo "--- diff vs committed baseline ---"
	-$(GO) run ./cmd/benchdiff -in bench_fresh.txt -baseline BENCH_baseline.json \
	  -gate '$(BENCH_GATE)' -threshold $(BENCH_THRESHOLD)
	$(GO) run ./cmd/benchdiff -in bench_fresh.txt -baseline BENCH_baseline.json -update

# CI's autotune smoke: the tiny deterministic interleave search (fixed
# seed, 16³, few generations) must pick the same layout on every run
# and never score more simulated L1 misses than plain Z order.
tune-smoke:
	$(GO) test -run 'TestInterleave(Deterministic|BeatsOrMatchesZOrder|Volrend)|TestSweepTieBreak' -count=1 -v ./internal/tune

# Short bursts of the native fuzz targets (Go allows one -fuzz pattern
# per invocation, so the curves run back to back).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzZOrderRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzHilbertRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzStepRoundTrip -fuzztime=$(FUZZTIME) ./internal/morton
	$(GO) test -run='^$$' -fuzz=FuzzStepperWalk -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzBitLayoutRoundTrip -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzManifestRoundTrip -fuzztime=$(FUZZTIME) ./internal/volume
	$(GO) test -run='^$$' -fuzz=FuzzBrickHeaderRoundTrip -fuzztime=$(FUZZTIME) ./internal/volume

clean:
	rm -rf csv frames lod test_output.txt bench_output.txt bench_fresh.txt bench_fresh.json cover.out
