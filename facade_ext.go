package sfcmem

import (
	"io"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/multires"
	"sfcmem/internal/reuse"
	"sfcmem/internal/trace"
	"sfcmem/internal/tune"
	"sfcmem/internal/volume"
)

// InverseLayout is implemented by layouts that can map buffer offsets
// back to grid coordinates, enabling storage-order traversal
// (Grid.ForEachStorage). All built-in layouts implement it.
type InverseLayout = core.Inverse

// ZTiled is the Morton-within-bricks layout: Z-order locality at cache-
// line and page scale without the power-of-two padding blowup of pure
// Z order (the paper's §V limitation).
const ZTiled = core.ZTiledKind

// NewZTiledLayout builds a Morton-in-bricks layout with an explicit
// brick edge (a power of two); NewLayout(ZTiled, ...) uses the default.
func NewZTiledLayout(nx, ny, nz, brick int) Layout { return core.NewZTiled(nx, ny, nz, brick) }

// ReuseAnalyzer computes LRU reuse-distance profiles from access
// streams; it implements Sink, so it attaches to traced grids exactly
// like a cache front.
type ReuseAnalyzer = reuse.Analyzer

// ReuseHistogram is a reuse-distance profile; its MissRatio method
// predicts fully-associative LRU miss ratios for any cache size.
type ReuseHistogram = reuse.Histogram

// NewReuseAnalyzer returns an empty reuse-distance analyzer.
func NewReuseAnalyzer(capacityHint int) *ReuseAnalyzer { return reuse.NewAnalyzer(capacityHint) }

// TraceWriter records an access stream to an io.Writer in the trace
// file format; it implements Sink.
type TraceWriter = trace.Writer

// NewTraceWriter starts a trace file on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// ReplayTrace replays a recorded trace into sink, returning the number
// of accesses delivered.
func ReplayTrace(r io.Reader, sink Sink) (uint64, error) { return trace.Replay(r, sink) }

// Auto-tuning (empirical blocking-factor search over the simulated
// platforms).
type (
	// TuneConfig fixes the kernel configuration a parameter is tuned for.
	TuneConfig = tune.FilterConfig
	// TuneResult records one candidate's score.
	TuneResult = tune.Result
)

// TuneTileSize finds the Tiled layout's best tile edge for the given
// filter configuration (nil candidates = defaults).
func TuneTileSize(cfg TuneConfig, candidates []int) (best int, results []TuneResult, err error) {
	return tune.TileSize(cfg, candidates)
}

// TuneBrickSize finds the ZTiled layout's best brick edge.
func TuneBrickSize(cfg TuneConfig, candidates []int) (best int, results []TuneResult, err error) {
	return tune.BrickSize(cfg, candidates)
}

// HZOrder is the hierarchical Z-order layout (Pascucci & Frank 2001):
// Morton samples regrouped by resolution level so every power-of-two
// subsampling lattice is a contiguous buffer prefix.
const HZOrder = core.HZKind

// Multiresolution queries (the ref [7] use case).
type (
	// SliceAxis selects an axis-aligned slice orientation.
	SliceAxis = multires.SliceAxis
	// QueryCost reports the lines/pages/span a query touches.
	QueryCost = multires.QueryCost
)

// Slice orientations.
const (
	SliceX = multires.SliceX
	SliceY = multires.SliceY
	SliceZ = multires.SliceZ
)

// Subsample extracts the level-L lattice of src into a new grid whose
// layout is produced by target.
func Subsample(src *Grid, level int, target func(nx, ny, nz int) Layout) (*Grid, error) {
	return multires.Subsample(src, level, target)
}

// SubsampleOf is Subsample for any element type: pure sample selection,
// so the output is bit-identical to the source lattice at every dtype.
func SubsampleOf[T Scalar](src *GridOf[T], level int, target func(nx, ny, nz int) Layout) (*GridOf[T], error) {
	return multires.Subsample(src, level, target)
}

// SliceOf extracts an axis-aligned plane (optionally subsampled by
// 2^level per in-plane axis) as a dense row-major image of the source
// element type.
func SliceOf[T Scalar](src *GridOf[T], axis SliceAxis, at, level int) (pix []T, w, h int, err error) {
	return multires.Slice(src, axis, at, level)
}

// SubsampleAny extracts the level-L lattice of a dynamic-dtype volume,
// preserving the element type — the coarse pass of progressive
// delivery, where a compact subset of memory yields a useful answer
// before the full volume is touched.
func SubsampleAny(a *AnyGrid, level int, target func(nx, ny, nz int) Layout) (*AnyGrid, error) {
	switch g := a.g.(type) {
	case *GridOf[uint8]:
		return subsampleAny(g, level, target)
	case *GridOf[uint16]:
		return subsampleAny(g, level, target)
	case *GridOf[float32]:
		return subsampleAny(g, level, target)
	case *GridOf[float64]:
		return subsampleAny(g, level, target)
	}
	panic("sfcmem: zero AnyGrid")
}

func subsampleAny[T Scalar](g *GridOf[T], level int, target func(nx, ny, nz int) Layout) (*AnyGrid, error) {
	out, err := multires.Subsample(g, level, target)
	if err != nil {
		return nil, err
	}
	return WrapAny(out), nil
}

// SliceCost measures the memory a layout must touch to serve an
// axis-aligned slice query.
func SliceCost(l Layout, axis SliceAxis, at, level int) (QueryCost, error) {
	return multires.SliceCost(l, axis, at, level)
}

// SubsampleCost measures the memory a layout must touch to read the
// level-L subsampling lattice.
func SubsampleCost(l Layout, level int) (QueryCost, error) {
	return multires.SubsampleCost(l, level)
}

// GaussianSeparable is the three-pass separable Gaussian baseline —
// identical output to GaussianConvolve at ~(2R+1)²/3 times less work.
func GaussianSeparable(src Reader, dst Writer, o FilterOptions) error {
	return filter.GaussianSeparable(src, dst, o)
}

// SeparableLayout is implemented by layouts whose index factors into
// per-axis offset tables: Index(i,j,k) = xs[i] + ys[j] + zs[k]. Array
// order, Z order, Tiled, and ZTiled are separable; Hilbert and
// hierarchical Z order are not (their bit transforms couple the axes).
// Separable layouts power the kernels' flat-access fast path
// (DESIGN.md §7).
type SeparableLayout = core.Separable

// FlatGrid is a devirtualized view of a grid under a separable layout:
// the raw sample buffer plus the per-axis offset tables, for hot loops
// that cannot afford two interface dispatches per access.
type FlatGrid = grid.Flat[float32]

// Flatten returns the flat view when r is a plain grid with a separable
// layout, and nil otherwise — in particular for traced views, which
// must keep every access observable on the interface path.
func Flatten(r Reader) *FlatGrid { return grid.Flatten(r) }

// SaveRawVolume writes a grid as little-endian float32 in row-major
// order (the interchange format of most scientific-visualization data).
func SaveRawVolume(w io.Writer, g *Grid) error { return volume.SaveRaw(w, g) }

// LoadRawVolume reads a row-major float32 volume into a grid under the
// given layout.
func LoadRawVolume(r io.Reader, l Layout) (*Grid, error) { return volume.LoadRaw(r, l) }
