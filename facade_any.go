package sfcmem

// Dynamic-dtype facade. The data plane is generic over the element type
// (Scalar: uint8 | uint16 | float32 | float64); callers that know the
// element type at compile time use GridOf[T] and the *Of kernels for
// fully monomorphized hot loops. Callers that learn the dtype at run
// time — sfcserved requests, the harness's -dtype sweep axis, raw-file
// tooling — use AnyGrid, a small dynamic wrapper that dispatches to the
// monomorphized instantiation once per call. The dispatch cost is one
// type switch per kernel invocation, never per voxel.

import (
	"context"
	"fmt"
	"io"

	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

// Scalar is the grid element constraint: the dtypes a volume can store.
type Scalar = grid.Scalar

// Dtype names a Scalar instantiation at run time.
type Dtype = grid.Dtype

// The supported element dtypes.
const (
	U8  = grid.U8
	U16 = grid.U16
	F32 = grid.F32
	F64 = grid.F64
)

// ParseDtype maps a dtype name ("uint8", "u16", "float32", "double",
// ...) to its Dtype.
func ParseDtype(s string) (Dtype, error) { return grid.ParseDtype(s) }

// Dtypes lists the supported dtypes in width order.
func Dtypes() []Dtype { return grid.Dtypes() }

// GridOf is a 3D volume of element type T stored behind a Layout; Grid
// is GridOf[float32].
type GridOf[T Scalar] = grid.Grid[T]

// ReaderOf and WriterOf are the element-typed access interfaces; Reader
// and Writer are their float32 instantiations.
type (
	ReaderOf[T Scalar] = grid.ReaderOf[T]
	WriterOf[T Scalar] = grid.WriterOf[T]
)

// NewGridOf allocates a zero-filled grid of element type T.
func NewGridOf[T Scalar](l Layout) *GridOf[T] { return grid.NewOf[T](l) }

// ConvertGrid resamples a grid into another element type through the
// normalized [0,1] domain (integer dtypes round half-up and clamp).
func ConvertGrid[Dst, Src Scalar](g *GridOf[Src]) *GridOf[Dst] {
	return grid.ConvertGrid[Dst](g)
}

// AnyGrid wraps a grid of run-time-determined dtype. The zero value is
// unusable; construct with NewAnyGrid, WrapAny, or the *Any generators.
type AnyGrid struct {
	dt Dtype
	g  any // *grid.Grid[T] for the T matching dt
}

// WrapAny erases the element type of a grid.
func WrapAny[T Scalar](g *GridOf[T]) *AnyGrid {
	return &AnyGrid{dt: grid.DtypeFor[T](), g: g}
}

// NewAnyGrid allocates a zero-filled grid of the given dtype.
func NewAnyGrid(dt Dtype, l Layout) *AnyGrid {
	switch dt {
	case U8:
		return WrapAny(grid.NewOf[uint8](l))
	case U16:
		return WrapAny(grid.NewOf[uint16](l))
	case F64:
		return WrapAny(grid.NewOf[float64](l))
	default:
		return WrapAny(grid.New(l))
	}
}

// Grids returns the typed grid when the wrapped dtype is T, else nil.
// This is the inverse of WrapAny.
func Grids[T Scalar](a *AnyGrid) *GridOf[T] {
	g, _ := a.g.(*grid.Grid[T])
	return g
}

// Dtype reports the wrapped element type.
func (a *AnyGrid) Dtype() Dtype { return a.dt }

// Dims returns the logical grid extents.
func (a *AnyGrid) Dims() (nx, ny, nz int) { return a.Layout().Dims() }

// Layout returns the wrapped grid's layout.
func (a *AnyGrid) Layout() Layout {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return g.Layout()
	case *grid.Grid[uint16]:
		return g.Layout()
	case *grid.Grid[float32]:
		return g.Layout()
	case *grid.Grid[float64]:
		return g.Layout()
	}
	panic("sfcmem: zero AnyGrid")
}

// Bytes reports the in-memory size of the sample buffer, including any
// layout padding.
func (a *AnyGrid) Bytes() int64 {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return int64(len(g.Data()))
	case *grid.Grid[uint16]:
		return int64(len(g.Data())) * 2
	case *grid.Grid[float32]:
		return int64(len(g.Data())) * 4
	case *grid.Grid[float64]:
		return int64(len(g.Data())) * 8
	}
	panic("sfcmem: zero AnyGrid")
}

// Norm reads sample (i,j,k) normalized to [0,1] (floats pass through).
func (a *AnyGrid) Norm(i, j, k int) float64 {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return float64(g.At(i, j, k)) / 255
	case *grid.Grid[uint16]:
		return float64(g.At(i, j, k)) / 65535
	case *grid.Grid[float32]:
		return float64(g.At(i, j, k))
	case *grid.Grid[float64]:
		return g.At(i, j, k)
	}
	panic("sfcmem: zero AnyGrid")
}

// Float32 converts the wrapped grid to a float32 Grid (a copy even when
// the dtype is already float32).
func (a *AnyGrid) Float32() *Grid {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return grid.ConvertGrid[float32](g)
	case *grid.Grid[uint16]:
		return grid.ConvertGrid[float32](g)
	case *grid.Grid[float32]:
		return grid.ConvertGrid[float32](g)
	case *grid.Grid[float64]:
		return grid.ConvertGrid[float32](g)
	}
	panic("sfcmem: zero AnyGrid")
}

// Convert resamples into the target dtype through the normalized [0,1]
// domain.
func (a *AnyGrid) Convert(dt Dtype) *AnyGrid {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return convertAny(g, dt)
	case *grid.Grid[uint16]:
		return convertAny(g, dt)
	case *grid.Grid[float32]:
		return convertAny(g, dt)
	case *grid.Grid[float64]:
		return convertAny(g, dt)
	}
	panic("sfcmem: zero AnyGrid")
}

func convertAny[Src Scalar](g *grid.Grid[Src], dt Dtype) *AnyGrid {
	switch dt {
	case U8:
		return WrapAny(grid.ConvertGrid[uint8](g))
	case U16:
		return WrapAny(grid.ConvertGrid[uint16](g))
	case F64:
		return WrapAny(grid.ConvertGrid[float64](g))
	default:
		return WrapAny(grid.ConvertGrid[float32](g))
	}
}

// Relayout copies the samples into a new grid under the target layout.
func (a *AnyGrid) Relayout(target Layout) (*AnyGrid, error) {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return relayoutAny(g, target)
	case *grid.Grid[uint16]:
		return relayoutAny(g, target)
	case *grid.Grid[float32]:
		return relayoutAny(g, target)
	case *grid.Grid[float64]:
		return relayoutAny(g, target)
	}
	panic("sfcmem: zero AnyGrid")
}

func relayoutAny[T Scalar](g *grid.Grid[T], target Layout) (*AnyGrid, error) {
	out, err := g.Relayout(target)
	if err != nil {
		return nil, err
	}
	return WrapAny(out), nil
}

// dtypeMismatch reports an unusable src/dst pairing to a kernel.
func dtypeMismatch(src, dst *AnyGrid) error {
	return fmt.Errorf("sfcmem: dtype mismatch: src %v, dst %v", src.dt, dst.dt)
}

func filterApplyCtx[T Scalar](ctx context.Context, src, dst *grid.Grid[T], o FilterOptions) error {
	return filter.ApplyCtxOf[T](ctx, src, dst, o)
}

func gaussCtx[T Scalar](ctx context.Context, src, dst *grid.Grid[T], o FilterOptions) error {
	return filter.GaussianConvolveCtxOf[T](ctx, src, dst, o)
}

func renderCtx[T Scalar](ctx context.Context, vol *grid.Grid[T], cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	return render.RenderCtxOf[T](ctx, vol, cam, tf, o)
}

// BilateralAnyCtx runs the bilateral filter on a dynamic-dtype pair;
// src and dst must share a dtype. Dispatches once to the monomorphized
// kernel for that dtype — the hot loop is identical to the typed path.
func BilateralAnyCtx(ctx context.Context, src, dst *AnyGrid, o FilterOptions) error {
	if src.dt != dst.dt {
		return dtypeMismatch(src, dst)
	}
	o = ctxFilterOptions(ctx, o)
	switch sg := src.g.(type) {
	case *grid.Grid[uint8]:
		return filterApplyCtx(ctx, sg, dst.g.(*grid.Grid[uint8]), o)
	case *grid.Grid[uint16]:
		return filterApplyCtx(ctx, sg, dst.g.(*grid.Grid[uint16]), o)
	case *grid.Grid[float32]:
		return filterApplyCtx(ctx, sg, dst.g.(*grid.Grid[float32]), o)
	case *grid.Grid[float64]:
		return filterApplyCtx(ctx, sg, dst.g.(*grid.Grid[float64]), o)
	}
	panic("sfcmem: zero AnyGrid")
}

// GaussianConvolveAnyCtx is the Gaussian baseline on a dynamic-dtype
// pair; src and dst must share a dtype.
func GaussianConvolveAnyCtx(ctx context.Context, src, dst *AnyGrid, o FilterOptions) error {
	if src.dt != dst.dt {
		return dtypeMismatch(src, dst)
	}
	o = ctxFilterOptions(ctx, o)
	switch sg := src.g.(type) {
	case *grid.Grid[uint8]:
		return gaussCtx(ctx, sg, dst.g.(*grid.Grid[uint8]), o)
	case *grid.Grid[uint16]:
		return gaussCtx(ctx, sg, dst.g.(*grid.Grid[uint16]), o)
	case *grid.Grid[float32]:
		return gaussCtx(ctx, sg, dst.g.(*grid.Grid[float32]), o)
	case *grid.Grid[float64]:
		return gaussCtx(ctx, sg, dst.g.(*grid.Grid[float64]), o)
	}
	panic("sfcmem: zero AnyGrid")
}

// RenderAnyCtx raycasts a dynamic-dtype volume.
func RenderAnyCtx(ctx context.Context, vol *AnyGrid, cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	o = ctxRenderOptions(ctx, o)
	switch g := vol.g.(type) {
	case *grid.Grid[uint8]:
		return renderCtx(ctx, g, cam, tf, o)
	case *grid.Grid[uint16]:
		return renderCtx(ctx, g, cam, tf, o)
	case *grid.Grid[float32]:
		return renderCtx(ctx, g, cam, tf, o)
	case *grid.Grid[float64]:
		return renderCtx(ctx, g, cam, tf, o)
	}
	panic("sfcmem: zero AnyGrid")
}

// MRIPhantomAny synthesizes the MRI head phantom at the given dtype.
// Every dtype quantizes the same float32 field, so cross-dtype results
// are comparable sample for sample.
func MRIPhantomAny(dt Dtype, l Layout, seed uint64, noiseSigma float64) *AnyGrid {
	switch dt {
	case U8:
		return WrapAny(volume.MRIPhantomOf[uint8](l, seed, noiseSigma))
	case U16:
		return WrapAny(volume.MRIPhantomOf[uint16](l, seed, noiseSigma))
	case F64:
		return WrapAny(volume.MRIPhantomOf[float64](l, seed, noiseSigma))
	default:
		return WrapAny(volume.MRIPhantom(l, seed, noiseSigma))
	}
}

// CombustionPlumeAny synthesizes the combustion plume at the given
// dtype.
func CombustionPlumeAny(dt Dtype, l Layout, seed uint64) *AnyGrid {
	switch dt {
	case U8:
		return WrapAny(volume.CombustionPlumeOf[uint8](l, seed))
	case U16:
		return WrapAny(volume.CombustionPlumeOf[uint16](l, seed))
	case F64:
		return WrapAny(volume.CombustionPlumeOf[float64](l, seed))
	default:
		return WrapAny(volume.CombustionPlume(l, seed))
	}
}

// SaveRawAny writes the wrapped grid as little-endian samples in
// row-major order at its native width.
func SaveRawAny(w io.Writer, a *AnyGrid) error {
	switch g := a.g.(type) {
	case *grid.Grid[uint8]:
		return volume.SaveRawOf(w, g)
	case *grid.Grid[uint16]:
		return volume.SaveRawOf(w, g)
	case *grid.Grid[float32]:
		return volume.SaveRawOf(w, g)
	case *grid.Grid[float64]:
		return volume.SaveRawOf(w, g)
	}
	panic("sfcmem: zero AnyGrid")
}

// LoadRawAny reads a row-major little-endian raw volume of the given
// dtype into a grid under the given layout, rejecting truncated and
// oversized payloads.
func LoadRawAny(r io.Reader, dt Dtype, l Layout) (*AnyGrid, error) {
	switch dt {
	case U8:
		return loadRawAny[uint8](r, l)
	case U16:
		return loadRawAny[uint16](r, l)
	case F64:
		return loadRawAny[float64](r, l)
	default:
		return loadRawAny[float32](r, l)
	}
}

func loadRawAny[T Scalar](r io.Reader, l Layout) (*AnyGrid, error) {
	g, err := volume.LoadRawOf[T](r, l)
	if err != nil {
		return nil, err
	}
	return WrapAny(g), nil
}
