module sfcmem

go 1.24
