module sfcmem

go 1.22
