// Quickstart: the library in one minute.
//
// Build the same volume under array order and Z order, access it through
// the identical Index-based API, run one kernel over each, and print the
// locality numbers that explain the difference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/volume"
)

func main() {
	const n = 64

	// 1. Two layouts, one logical volume. The layout is the ONLY thing
	// that differs; everything downstream uses Index(i,j,k) access.
	arrayLayout := core.NewArrayOrder(n, n, n)
	zLayout := core.NewZOrder(n, n, n)

	src := volume.MRIPhantom(arrayLayout, 1, 0.05)
	zsrc, err := src.Relayout(zLayout)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The same element is reachable in both; only its address moved.
	fmt.Printf("value at (10,20,30): array=%.4f zorder=%.4f\n",
		src.At(10, 20, 30), zsrc.At(10, 20, 30))
	fmt.Printf("linear offset of (10,20,30): array=%d zorder=%d\n",
		arrayLayout.Index(10, 20, 30), zLayout.Index(10, 20, 30))

	// 3. Why it matters: the physical distance of a unit step in each
	// direction (the paper's Fig. 1, quantified).
	for _, l := range []core.Layout{arrayLayout, zLayout} {
		x := core.AxisStride(l, 0).Mean
		y := core.AxisStride(l, 1).Mean
		z := core.AxisStride(l, 2).Mean
		fmt.Printf("%-6s mean unit-step distance: x=%7.1f y=%7.1f z=%7.1f elements\n",
			l.Name(), x, y, z)
	}

	// 4. Run the paper's structured-access kernel over both and check
	// the results agree bitwise — the layout is transparent.
	opts := filter.Options{Radius: 2, Axis: 0, Order: filter.ZYX, Workers: 4}
	dstA := grid.New(core.NewArrayOrder(n, n, n))
	dstZ := grid.New(core.NewZOrder(n, n, n))

	start := time.Now()
	if err := filter.Apply(src, dstA, opts); err != nil {
		log.Fatal(err)
	}
	tA := time.Since(start)

	start = time.Now()
	if err := filter.Apply(zsrc, dstZ, opts); err != nil {
		log.Fatal(err)
	}
	tZ := time.Since(start)

	fmt.Printf("bilateral 5³ stencil, zyx order: array %v, zorder %v\n", tA, tZ)
	if grid.Equal(dstA, dstZ) {
		fmt.Println("outputs identical across layouts ✓")
	} else {
		fmt.Println("BUG: outputs differ across layouts")
	}
}
