// Denoise: the paper's bilateral-filter use case as a small pipeline.
//
// Generates a noisy MRI-like phantom, denoises it with the 3D bilateral
// filter (edge-preserving) and with plain Gaussian convolution
// (edge-blurring) for contrast, and reports the noise reduction and edge
// retention of each, plus the runtime under both memory layouts.
//
//	go run ./examples/denoise [-size 64] [-noise 0.08]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

func main() {
	size := flag.Int("size", 64, "volume edge")
	noise := flag.Float64("noise", 0.08, "additive noise sigma")
	threads := flag.Int("threads", 4, "worker count")
	flag.Parse()
	n := *size

	// Ground truth (noise-free) and the noisy observation.
	clean := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 1, 0)
	noisy := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 1, *noise)
	fmt.Printf("noisy input:    RMSE vs truth = %.4f\n", rmse(noisy, clean))

	opts := filter.Options{
		Radius:       2,
		SigmaSpatial: 1.5,
		SigmaRange:   0.15,
		Axis:         parallel.AxisX,
		Workers:      *threads,
	}

	// Edge-preserving bilateral vs plain Gaussian.
	bilat := grid.New(core.NewArrayOrder(n, n, n))
	if err := filter.Apply(noisy, bilat, opts); err != nil {
		log.Fatal(err)
	}
	gauss := grid.New(core.NewArrayOrder(n, n, n))
	if err := filter.GaussianConvolve(noisy, gauss, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bilateral:      RMSE vs truth = %.4f\n", rmse(bilat, clean))
	fmt.Printf("gaussian:       RMSE vs truth = %.4f\n", rmse(gauss, clean))

	// Edge retention: sharpest step along the center row (the skull
	// boundary). Bilateral should keep most of it; Gaussian blurs it.
	fmt.Printf("edge step: truth %.3f, bilateral %.3f, gaussian %.3f\n",
		edgeStep(clean), edgeStep(bilat), edgeStep(gauss))

	// Same pipeline under the Z-order layout: identical output, and on
	// memory-bound machines, less data movement (the paper's point).
	znoisy, err := noisy.Relayout(core.NewZOrder(n, n, n))
	if err != nil {
		log.Fatal(err)
	}
	zout := grid.New(core.NewZOrder(n, n, n))
	o2 := opts
	o2.Axis = parallel.AxisZ
	o2.Order = filter.ZYX

	start := time.Now()
	if err := filter.Apply(znoisy, zout, o2); err != nil {
		log.Fatal(err)
	}
	tz := time.Since(start)
	aout := grid.New(core.NewArrayOrder(n, n, n))
	start = time.Now()
	if err := filter.Apply(noisy, aout, o2); err != nil {
		log.Fatal(err)
	}
	ta := time.Since(start)
	fmt.Printf("against-the-grain sweep (pz, zyx): array %v, zorder %v\n", ta, tz)
	if !grid.Equal(aout, zout) {
		log.Fatal("layouts disagree")
	}
	fmt.Println("outputs identical across layouts ✓")
}

func rmse(a, b *grid.Grid[float32]) float64 {
	nx, ny, nz := a.Dims()
	var sum float64
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				d := float64(a.At(i, j, k)) - float64(b.At(i, j, k))
				sum += d * d
			}
		}
	}
	return math.Sqrt(sum / float64(nx*ny*nz))
}

func edgeStep(g *grid.Grid[float32]) float64 {
	nx, ny, nz := g.Dims()
	var best float64
	for i := 1; i < nx; i++ {
		d := math.Abs(float64(g.At(i, ny/2, nz/2)) - float64(g.At(i-1, ny/2, nz/2)))
		if d > best {
			best = d
		}
	}
	return best
}
