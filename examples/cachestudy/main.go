// Cachestudy: drive the cache simulator directly to see where the
// Z-order layout's advantage comes from, layer by layer.
//
// Sweeps the bilateral filter's stencil radius over every layout in the
// against-the-grain configuration (pz pencils, zyx order) and prints the
// simulated miss rates and the paper counter per level — the "memory
// system utilization" view the paper reads from PAPI.
//
//	go run ./examples/cachestudy [-size 48] [-platform ivy/32]
package main

import (
	"flag"
	"fmt"
	"log"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/volume"
)

func main() {
	size := flag.Int("size", 48, "volume edge")
	plat := flag.String("platform", "ivy/32", "simulated platform (ivy, mic, with /N scaling)")
	threads := flag.Int("threads", 4, "simulated threads")
	flag.Parse()
	n := *size

	platform, err := cache.ParsePlatform(*plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %s, %d simulated threads, %d³ volume, pz pencils, zyx order\n\n",
		platform.Name, *threads, n)
	fmt.Printf("%-8s %-8s %12s %12s %12s %14s\n",
		"layout", "stencil", "L1 miss", "L2 miss", "LLC miss", "paper metric")

	base := volume.MRIPhantom(core.NewArrayOrder(n, n, n), 1, 0.05)
	for _, radius := range []int{1, 2, 3} {
		for _, kind := range core.Kinds() {
			src, err := base.Relayout(core.New(kind, n, n, n))
			if err != nil {
				log.Fatal(err)
			}
			dst := grid.New(core.New(kind, n, n, n))
			sys := cache.NewSystem(platform, *threads)
			srcs := make([]grid.Reader, *threads)
			dsts := make([]grid.Writer, *threads)
			for w := 0; w < *threads; w++ {
				srcs[w] = grid.NewTraced(src, 0, sys.Front(w))
				dsts[w] = grid.NewTraced(dst, 1<<40, sys.Front(w))
			}
			opts := filter.Options{
				Radius:  radius,
				Axis:    parallel.AxisZ,
				Order:   filter.ZYX,
				Workers: *threads,
			}
			if err := filter.ApplyViews(srcs, dsts, opts); err != nil {
				log.Fatal(err)
			}
			rep := sys.Report()
			llc := "-"
			if rep.HasShared {
				llc = fmt.Sprintf("%11.2f%%", 100*rep.Shared.MissRate())
			}
			fmt.Printf("%-8s %dx%dx%d %11.2f%% %11.2f%% %12s %14d\n",
				kind,
				2*radius+1, 2*radius+1, 2*radius+1,
				100*rep.PrivateTotal[0].MissRate(),
				100*rep.PrivateTotal[1].MissRate(),
				llc,
				rep.PaperMetric())
		}
		fmt.Println()
	}
}
