// Image2d: the original 2D setting of the bilateral filter (Tomasi &
// Manduchi 1998) and of the paper's Fig. 1 layout illustration.
//
// Builds a noisy synthetic 2D image, denoises it under the row-major,
// Z-order, and Hilbert layouts (identical outputs, different memory
// traffic), and prints the per-axis stride numbers that explain why the
// curves help.
//
//	go run ./examples/image2d [-size 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sfcmem/internal/plane"
	"sfcmem/internal/volume"
)

func main() {
	size := flag.Int("size", 256, "image edge")
	noise := flag.Float64("noise", 0.08, "noise sigma")
	flag.Parse()
	n := *size

	// A test card: concentric rings plus a hard quadrant edge, with noise.
	rng := volume.NewRNG(1)
	clean := plane.FromFunc(plane.NewRowMajor(n, n), func(x, y int) float32 {
		cx, cy := float64(x)-float64(n)/2, float64(y)-float64(n)/2
		r := math.Sqrt(cx*cx + cy*cy)
		v := 0.5 + 0.4*math.Sin(r/8)
		if x > n/2 && y > n/2 {
			v = 0.1
		}
		return float32(v)
	})
	noisy := plane.FromFunc(plane.NewRowMajor(n, n), func(x, y int) float32 {
		return clean.At(x, y) + float32(*noise)*rng.Normal()
	})

	layouts := []plane.Layout{
		plane.NewRowMajor(n, n),
		plane.NewZOrder2(n, n),
		plane.NewHilbert2(n, n),
	}
	fmt.Printf("%-8s %12s %12s %14s\n", "layout", "x-stride", "y-stride", "RMSE after")
	var ref *plane.Image
	for _, l := range layouts {
		src, err := noisy.Relayout(l)
		if err != nil {
			log.Fatal(err)
		}
		dst := plane.NewImage(l)
		if err := plane.Bilateral(src, dst, plane.BilateralOptions{Radius: 2, SigmaRange: 0.2}); err != nil {
			log.Fatal(err)
		}
		back, err := dst.Relayout(plane.NewRowMajor(n, n))
		if err != nil {
			log.Fatal(err)
		}
		if ref == nil {
			ref = back
		} else if !plane.Equal(ref, back) {
			log.Fatalf("layout %s changed the result", l.Name())
		}
		fmt.Printf("%-8s %12.1f %12.1f %14.4f\n",
			l.Name(), plane.AxisStride2(l, 0), plane.AxisStride2(l, 1), rmse(back, clean))
	}
	fmt.Println("outputs identical across layouts ✓")
	fmt.Printf("input RMSE was %.4f\n", rmse(noisy, clean))
}

func rmse(a, b *plane.Image) float64 {
	nx, ny := a.Dims()
	var sum float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			d := float64(a.At(x, y)) - float64(b.At(x, y))
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(nx*ny))
}
