// Multires: progressive level-of-detail access, the use case the paper
// inherits from Pascucci & Frank 2001 (its ref [7]).
//
// The volume is stored under the hierarchical HZ-order layout, whose
// level-L subsampling lattice occupies a contiguous buffer prefix. The
// demo "streams" the volume coarse-to-fine — at each level it reads
// only that prefix, reconstructs the subsampled volume, renders a
// preview frame, and reports how many bytes the level needed, compared
// against what array order would have had to touch.
//
//	go run ./examples/multires [-size 64] [-dir lod]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sfcmem/internal/core"
	"sfcmem/internal/multires"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

func main() {
	size := flag.Int("size", 64, "volume edge (power of two)")
	img := flag.Int("image", 160, "preview image edge")
	dir := flag.String("dir", "lod", "output directory for preview PPM frames")
	flag.Parse()
	n := *size
	if n&(n-1) != 0 {
		log.Fatal("size must be a power of two for the HZ prefix demo")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	hz := core.NewHZOrder(n, n, n)
	fmt.Printf("generating %d³ combustion plume under HZ order...\n", n)
	vol := volume.CombustionPlume(hz, 1)
	tf := render.DefaultTransferFunc()
	full := n * n * n * 4

	fmt.Printf("%-6s %12s %10s %12s %14s\n",
		"level", "resolution", "prefix", "HZ bytes", "array bytes")
	for level := 3; level >= 0; level-- {
		s := 1 << level
		if s > n {
			continue
		}
		// Bytes a progressive reader fetches at this level: HZ reads the
		// contiguous prefix; array order must gather a strided lattice.
		prefix := hz.LevelPrefix(level)
		ac, err := multires.SubsampleCost(core.NewArrayOrder(n, n, n), level)
		if err != nil {
			log.Fatal(err)
		}
		sub, err := multires.Subsample(vol, level, func(nx, ny, nz int) core.Layout {
			return core.NewZOrder(nx, ny, nz)
		})
		if err != nil {
			log.Fatal(err)
		}
		sx, sy, sz := sub.Dims()
		cam := render.Orbit(1, 8, sx, sy, sz, *img, *img)
		frame, err := render.Render(sub, cam, tf, render.Options{Workers: 4, Step: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*dir, fmt.Sprintf("level%d.ppm", level))
		if err := frame.SavePPM(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%-4d %6d³ %12d %12d %14d   -> %s\n",
			level, sx, prefix, prefix*4, ac.Lines*64, path)
	}
	fmt.Printf("full volume: %d bytes; the L=3 preview needed %.2f%% of it under HZ order\n",
		full, 100*float64(hz.LevelPrefix(3)*4)/float64(full))
}
