// Flythrough: orbit the combustion plume and write one PPM frame per
// viewpoint — the paper's renderer experiment as a visual artifact.
//
// For each orbit position the frame is rendered under both memory
// layouts; the images must match bitwise (layout transparency) while the
// traversal cost differs with view alignment.
//
//	go run ./examples/flythrough [-size 64] [-frames 8] [-dir frames]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sfcmem/internal/core"
	"sfcmem/internal/render"
	"sfcmem/internal/volume"
)

func main() {
	size := flag.Int("size", 64, "volume edge")
	frames := flag.Int("frames", 8, "orbit positions")
	img := flag.Int("image", 192, "image edge in pixels")
	dir := flag.String("dir", "frames", "output directory for PPM frames")
	threads := flag.Int("threads", 4, "worker count")
	shade := flag.Bool("shade", true, "gradient shading")
	flag.Parse()
	n := *size

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generating %d³ combustion plume...\n", n)
	avol := volume.CombustionPlume(core.NewArrayOrder(n, n, n), 1)
	zvol, err := avol.Relayout(core.NewZOrder(n, n, n))
	if err != nil {
		log.Fatal(err)
	}
	tf := render.DefaultTransferFunc()
	opts := render.Options{TileSize: 32, Workers: *threads, Step: 0.5, Shade: *shade}

	for v := 0; v < *frames; v++ {
		cam := render.Orbit(v, *frames, n, n, n, *img, *img)

		start := time.Now()
		ai, err := render.Render(avol, cam, tf, opts)
		if err != nil {
			log.Fatal(err)
		}
		ta := time.Since(start)

		start = time.Now()
		zi, err := render.Render(zvol, cam, tf, opts)
		if err != nil {
			log.Fatal(err)
		}
		tz := time.Since(start)

		if render.MaxDiff(ai, zi) != 0 {
			log.Fatalf("view %d: images differ across layouts", v)
		}
		path := filepath.Join(*dir, fmt.Sprintf("view%d.ppm", v))
		if err := zi.SavePPM(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("view %d: array %8v  zorder %8v  -> %s\n", v, ta, tz, path)
	}
	fmt.Println("frames identical across layouts ✓")
}
