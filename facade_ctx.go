package sfcmem

// Context-accepting kernel entry points. Each is the cancellable form of
// the same-named facade function: workers check the context between work
// items (pencils for the filter, image tiles for the renderer), stop
// claiming new items once it is done, and the call returns the context's
// error without leaking goroutines. An item that has already started
// runs to completion — items are the cancellation granule. With a
// context that can never be cancelled (context.Background()) these take
// exactly the non-context code paths, fast paths included.
//
// cmd/sfcserved builds its per-request deadline handling on these.

import (
	"context"

	"sfcmem/internal/filter"
	"sfcmem/internal/render"
)

// BilateralCtx is Bilateral with cooperative cancellation; on
// cancellation dst is left partially written.
func BilateralCtx(ctx context.Context, src Reader, dst Writer, o FilterOptions) error {
	return filter.ApplyCtx(ctx, src, dst, ctxFilterOptions(ctx, o))
}

// BilateralViewsCtx is BilateralViews with cooperative cancellation.
func BilateralViewsCtx(ctx context.Context, srcs []Reader, dsts []Writer, o FilterOptions) error {
	return filter.ApplyViewsCtx(ctx, srcs, dsts, ctxFilterOptions(ctx, o))
}

// GaussianConvolveCtx is GaussianConvolve with cooperative cancellation.
func GaussianConvolveCtx(ctx context.Context, src Reader, dst Writer, o FilterOptions) error {
	return filter.GaussianConvolveCtx(ctx, src, dst, ctxFilterOptions(ctx, o))
}

// RenderCtx is Render with cooperative cancellation; a cancelled render
// returns (nil, ctx's error) and discards the partial frame.
func RenderCtx(ctx context.Context, vol Reader, cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	return render.RenderCtx(ctx, vol, cam, tf, ctxRenderOptions(ctx, o))
}

// RenderViewsCtx is RenderViews with cooperative cancellation.
func RenderViewsCtx(ctx context.Context, views []Reader, cam Camera, tf *TransferFunc, o RenderOptions) (*Image, error) {
	return render.RenderViewsCtx(ctx, views, cam, tf, ctxRenderOptions(ctx, o))
}
