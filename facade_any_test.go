package sfcmem_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sfcmem"
)

func TestAnyGridBasics(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8)
	for _, dt := range sfcmem.Dtypes() {
		a := sfcmem.NewAnyGrid(dt, l)
		if a.Dtype() != dt {
			t.Errorf("NewAnyGrid(%v).Dtype() = %v", dt, a.Dtype())
		}
		nx, ny, nz := a.Dims()
		if nx != 8 || ny != 8 || nz != 8 {
			t.Errorf("%v: dims %dx%dx%d", dt, nx, ny, nz)
		}
		if want := int64(8 * 8 * 8 * dt.Size()); a.Bytes() != want {
			t.Errorf("%v: Bytes() = %d, want %d", dt, a.Bytes(), want)
		}
	}
}

func TestAnyGridWrapAndTypedAccess(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.Array, 4, 4, 4)
	g := sfcmem.NewGridOf[uint16](l)
	g.Set(1, 2, 3, 32768)
	a := sfcmem.WrapAny(g)
	if a.Dtype() != sfcmem.U16 {
		t.Fatalf("wrapped dtype %v", a.Dtype())
	}
	if back := sfcmem.Grids[uint16](a); back == nil || back.At(1, 2, 3) != 32768 {
		t.Error("Grids[uint16] did not recover the wrapped grid")
	}
	if sfcmem.Grids[float32](a) != nil {
		t.Error("Grids[float32] should be nil for a uint16 AnyGrid")
	}
	// 32768/65535 ≈ 0.50000763; Norm must normalize by the dtype scale.
	if n := a.Norm(1, 2, 3); n < 0.5 || n > 0.501 {
		t.Errorf("Norm = %v", n)
	}
}

func TestAnyGridConvertAndFloat32(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.Hilbert, 6, 5, 4)
	src := sfcmem.MRIPhantomAny(sfcmem.U8, l, 3, 0.02)
	u16 := src.Convert(sfcmem.U16)
	if u16.Dtype() != sfcmem.U16 {
		t.Fatalf("converted dtype %v", u16.Dtype())
	}
	// uint8 -> uint16 is exact in code space, so converting back must
	// reproduce the original codes.
	back := u16.Convert(sfcmem.U8)
	a8, b8 := sfcmem.Grids[uint8](src), sfcmem.Grids[uint8](back)
	f := src.Float32()
	a8.ForEachIndex(func(i, j, k int, v uint8) {
		if b8.At(i, j, k) != v {
			t.Fatalf("u8->u16->u8 changed code at (%d,%d,%d)", i, j, k)
		}
		if want := float32(v) / 255; f.At(i, j, k) != want {
			t.Fatalf("Float32() at (%d,%d,%d) = %v, want %v", i, j, k, f.At(i, j, k), want)
		}
	})
}

func TestAnyGridRelayout(t *testing.T) {
	src := sfcmem.CombustionPlumeAny(sfcmem.U16, sfcmem.NewLayout(sfcmem.Array, 8, 8, 8), 5)
	out, err := src.Relayout(sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := sfcmem.Grids[uint16](src), sfcmem.Grids[uint16](out)
	a.ForEachIndex(func(i, j, k int, v uint16) {
		if b.At(i, j, k) != v {
			t.Fatalf("relayout changed sample (%d,%d,%d)", i, j, k)
		}
	})
}

func TestAnyKernelsRunPerDtype(t *testing.T) {
	ctx := context.Background()
	l := sfcmem.NewLayout(sfcmem.ZOrder, 12, 12, 12)
	for _, dt := range sfcmem.Dtypes() {
		src := sfcmem.MRIPhantomAny(dt, l, 7, 0.05)
		dst := sfcmem.NewAnyGrid(dt, l)
		if err := sfcmem.BilateralAnyCtx(ctx, src, dst, sfcmem.FilterOptions{Radius: 1, Workers: 2}); err != nil {
			t.Fatalf("%v: bilateral: %v", dt, err)
		}
		if err := sfcmem.GaussianConvolveAnyCtx(ctx, src, dst, sfcmem.FilterOptions{Radius: 1, Workers: 2}); err != nil {
			t.Fatalf("%v: gaussian: %v", dt, err)
		}
		vol := sfcmem.CombustionPlumeAny(dt, l, 7)
		img, err := sfcmem.RenderAnyCtx(ctx, vol, sfcmem.Orbit(0, 8, 12, 12, 12, 24, 24),
			sfcmem.DefaultTransferFunc(), sfcmem.RenderOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%v: render: %v", dt, err)
		}
		var sum float32
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				sum += img.At(x, y).A
			}
		}
		if sum == 0 {
			t.Errorf("%v: rendered frame is empty", dt)
		}
	}
}

func TestAnyKernelDtypeMismatch(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.Array, 8, 8, 8)
	src := sfcmem.NewAnyGrid(sfcmem.U8, l)
	dst := sfcmem.NewAnyGrid(sfcmem.F32, l)
	err := sfcmem.BilateralAnyCtx(context.Background(), src, dst, sfcmem.FilterOptions{Radius: 1})
	if err == nil || !strings.Contains(err.Error(), "dtype mismatch") {
		t.Errorf("mismatched dtypes accepted: %v", err)
	}
}

func TestAnyRawRoundTrip(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.Tiled, 5, 6, 7)
	for _, dt := range sfcmem.Dtypes() {
		src := sfcmem.MRIPhantomAny(dt, l, 9, 0.03)
		var buf bytes.Buffer
		if err := sfcmem.SaveRawAny(&buf, src); err != nil {
			t.Fatal(err)
		}
		if want := int64(5 * 6 * 7 * dt.Size()); int64(buf.Len()) != want {
			t.Errorf("%v: raw stream %d bytes, want %d", dt, buf.Len(), want)
		}
		back, err := sfcmem.LoadRawAny(bytes.NewReader(buf.Bytes()), dt, sfcmem.NewLayout(sfcmem.ZOrder, 5, 6, 7))
		if err != nil {
			t.Fatal(err)
		}
		sf, bf := src.Float32(), back.Float32()
		sf.ForEachIndex(func(i, j, k int, v float32) {
			if bf.At(i, j, k) != v {
				t.Fatalf("%v: raw round trip changed sample (%d,%d,%d)", dt, i, j, k)
			}
		})
		// Truncated payloads must be rejected with byte counts.
		_, err = sfcmem.LoadRawAny(bytes.NewReader(buf.Bytes()[:buf.Len()-1]), dt, l)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%v: truncated payload accepted: %v", dt, err)
		}
	}
}

func TestParseDtype(t *testing.T) {
	for _, c := range []struct {
		in   string
		want sfcmem.Dtype
	}{{"uint8", sfcmem.U8}, {"u16", sfcmem.U16}, {"float32", sfcmem.F32}, {"double", sfcmem.F64}} {
		got, err := sfcmem.ParseDtype(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDtype(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := sfcmem.ParseDtype("int9"); err == nil ||
		!strings.Contains(err.Error(), "recognized") {
		t.Errorf("ParseDtype error should list recognized dtypes: %v", err)
	}
}

func TestSubsampleAnyPreservesDtypeAndBits(t *testing.T) {
	for _, dt := range sfcmem.Dtypes() {
		l := sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16)
		src := sfcmem.MRIPhantomAny(dt, l, 3, 0.01)
		sub, err := sfcmem.SubsampleAny(src, 1, func(nx, ny, nz int) sfcmem.Layout {
			return sfcmem.NewLayout(sfcmem.ZOrder, nx, ny, nz)
		})
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if sub.Dtype() != dt {
			t.Fatalf("%v: subsample came back as %v", dt, sub.Dtype())
		}
		nx, ny, nz := sub.Dims()
		if nx != 8 || ny != 8 || nz != 8 {
			t.Fatalf("%v: dims %dx%dx%d, want 8³", dt, nx, ny, nz)
		}
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if sub.Norm(i, j, k) != src.Norm(i*2, j*2, k*2) {
						t.Fatalf("%v: sample (%d,%d,%d) differs from source lattice", dt, i, j, k)
					}
				}
			}
		}
		if _, err := sfcmem.SubsampleAny(src, -1, nil); err == nil {
			t.Errorf("%v: negative level accepted", dt)
		}
	}
}
