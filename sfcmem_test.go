package sfcmem_test

import (
	"bytes"
	"testing"

	"sfcmem"
)

// The facade tests exercise the public API exactly as a downstream user
// would, end to end.

func TestPublicAPILayoutsAndGrid(t *testing.T) {
	for _, kind := range []sfcmem.Kind{sfcmem.Array, sfcmem.ZOrder, sfcmem.Tiled, sfcmem.Hilbert} {
		l := sfcmem.NewLayout(kind, 8, 8, 8)
		g := sfcmem.NewGrid(l)
		g.Set(1, 2, 3, 4.5)
		if g.At(1, 2, 3) != 4.5 {
			t.Errorf("%v: roundtrip failed", kind)
		}
	}
	if _, err := sfcmem.ParseLayout("zorder"); err != nil {
		t.Error(err)
	}
	if _, err := sfcmem.ParseLayout("nope"); err == nil {
		t.Error("bad layout name accepted")
	}
}

func TestPublicAPIStrides(t *testing.T) {
	a := sfcmem.NewLayout(sfcmem.Array, 16, 16, 16)
	if s := sfcmem.AxisStride(a, 0); s.Mean != 1 {
		t.Errorf("x stride %v", s.Mean)
	}
	if s := sfcmem.RayStride(a, 1, 0.01, 0.01); s.Steps == 0 {
		t.Error("ray stride measured nothing")
	}
}

func TestPublicAPIFilterPipeline(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.ZOrder, 12, 12, 12)
	src := sfcmem.MRIPhantom(l, 1, 0.05)
	dst := sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.ZOrder, 12, 12, 12))
	err := sfcmem.Bilateral(src, dst, sfcmem.FilterOptions{
		Radius: 1, Axis: sfcmem.AxisZ, Order: sfcmem.ZYX, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sfcmem.GaussianConvolve(src, dst, sfcmem.FilterOptions{Radius: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRenderPipeline(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16)
	vol := sfcmem.CombustionPlume(l, 1)
	cam := sfcmem.Orbit(1, 8, 16, 16, 16, 24, 24)
	img, err := sfcmem.Render(vol, cam, sfcmem.DefaultTransferFunc(), sfcmem.RenderOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 24 || img.H != 24 {
		t.Errorf("image %dx%d", img.W, img.H)
	}
	custom, err := sfcmem.NewTransferFunc([]sfcmem.ControlPoint{
		{Value: 0, Color: sfcmem.RGBA{}},
		{Value: 1, Color: sfcmem.RGBA{R: 1, A: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sfcmem.Render(vol, cam, custom, sfcmem.RenderOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICacheSimulation(t *testing.T) {
	p := sfcmem.ScaledPlatform(sfcmem.IvyBridgePlatform(), 32)
	sys := sfcmem.NewCacheSystem(p, 2)
	l := sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16)
	src := sfcmem.MRIPhantom(l, 1, 0.05)
	dst := sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16))
	srcs := []sfcmem.Reader{sfcmem.NewTraced(src, 0, sys.Front(0)), sfcmem.NewTraced(src, 0, sys.Front(1))}
	dsts := []sfcmem.Writer{sfcmem.NewTraced(dst, 1<<40, sys.Front(0)), sfcmem.NewTraced(dst, 1<<40, sys.Front(1))}
	err := sfcmem.BilateralViews(srcs, dsts, sfcmem.FilterOptions{Radius: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.PaperMetric() == 0 {
		t.Error("no simulated L3 traffic recorded")
	}
	if rep.MetricName() != "PAPI_L3_TCA" {
		t.Errorf("metric %q", rep.MetricName())
	}
	if sfcmem.MICPlatform().Shared.SizeBytes != 0 {
		t.Error("MIC platform should have no shared level")
	}
}

func TestPublicAPIZTiledAndReuse(t *testing.T) {
	l := sfcmem.NewZTiledLayout(20, 20, 20, 8)
	if l.Name() != "ztiled" {
		t.Errorf("Name %q", l.Name())
	}
	if k, err := sfcmem.ParseLayout("ztiled"); err != nil || k != sfcmem.ZTiled {
		t.Errorf("ParseLayout: %v %v", k, err)
	}
	g := sfcmem.NewGrid(l)
	an := sfcmem.NewReuseAnalyzer(0)
	tg := sfcmem.NewTraced(g, 0, an)
	for i := 0; i < 20; i++ {
		tg.At(i, 0, 0)
	}
	h := an.Histogram()
	if h.Total != 20 {
		t.Errorf("analyzer saw %d accesses", h.Total)
	}
	if h.MissRatio(1<<20) <= 0 {
		t.Error("cold misses missing from profile")
	}
}

func TestPublicAPITraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := sfcmem.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Access(64, false)
	w.Access(128, true)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	an := sfcmem.NewReuseAnalyzer(0)
	n, err := sfcmem.ReplayTrace(&buf, an)
	if err != nil || n != 2 {
		t.Fatalf("replayed %d, %v", n, err)
	}
}

func TestPublicAPITuning(t *testing.T) {
	cfg := sfcmem.TuneConfig{
		Size:     16,
		Seed:     1,
		Options:  sfcmem.FilterOptions{Radius: 1, Workers: 1},
		Platform: sfcmem.ScaledPlatform(sfcmem.IvyBridgePlatform(), 32),
	}
	best, results, err := sfcmem.TuneTileSize(cfg, []int{4, 8})
	if err != nil || (best != 4 && best != 8) || len(results) != 2 {
		t.Errorf("TuneTileSize: best=%d results=%v err=%v", best, results, err)
	}
	if _, _, err := sfcmem.TuneBrickSize(cfg, []int{4, 8}); err != nil {
		t.Errorf("TuneBrickSize: %v", err)
	}
}

func TestPublicAPIStorageTraversal(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.ZOrder, 6, 6, 6)
	if _, ok := l.(sfcmem.InverseLayout); !ok {
		t.Fatal("zorder layout does not expose inversion")
	}
	g := sfcmem.GridFromFunc(l, func(i, j, k int) float32 { return float32(i + j + k) })
	count := 0
	if !g.ForEachStorage(func(_, _, _ int, _ float32) { count++ }) {
		t.Fatal("storage traversal unsupported")
	}
	if count != 216 {
		t.Errorf("visited %d cells", count)
	}
}

func TestPublicAPIMultires(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.HZOrder, 8, 8, 8)
	if l.Name() != "hzorder" {
		t.Errorf("Name %q", l.Name())
	}
	g := sfcmem.GridFromFunc(l, func(i, j, k int) float32 { return float32(i) })
	sub, err := sfcmem.Subsample(g, 1, func(nx, ny, nz int) sfcmem.Layout {
		return sfcmem.NewLayout(sfcmem.Array, nx, ny, nz)
	})
	if err != nil {
		t.Fatal(err)
	}
	if nx, _, _ := sub.Dims(); nx != 4 {
		t.Errorf("subsample nx=%d", nx)
	}
	if sub.At(1, 0, 0) != 2 {
		t.Errorf("subsample value %v", sub.At(1, 0, 0))
	}
	c, err := sfcmem.SliceCost(l, sfcmem.SliceX, 4, 0)
	if err != nil || c.Samples != 64 {
		t.Errorf("SliceCost: %+v, %v", c, err)
	}
	sc, err := sfcmem.SubsampleCost(l, 2)
	if err != nil || sc.Samples != 8 {
		t.Errorf("SubsampleCost: %+v, %v", sc, err)
	}
}

func TestPublicAPIGaussianAndRawIO(t *testing.T) {
	l := sfcmem.NewLayout(sfcmem.Array, 8, 8, 8)
	src := sfcmem.MRIPhantom(l, 1, 0.02)
	dst := sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.Array, 8, 8, 8))
	if err := sfcmem.GaussianSeparable(src, dst, sfcmem.FilterOptions{Radius: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sfcmem.SaveRawVolume(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := sfcmem.LoadRawVolume(&buf, sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if back.At(4, 4, 4) != src.At(4, 4, 4) {
		t.Error("raw roundtrip changed values")
	}
}

func TestPublicAPIFlatten(t *testing.T) {
	g := sfcmem.MRIPhantom(sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8), 1, 0.05)
	f := sfcmem.Flatten(g)
	if f == nil {
		t.Fatal("Flatten returned nil for a separable layout")
	}
	if f.At(1, 2, 3) != g.At(1, 2, 3) {
		t.Error("flat view disagrees with the grid")
	}
	if _, ok := sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8).(sfcmem.SeparableLayout); !ok {
		t.Error("Z order should be separable")
	}
	if _, ok := sfcmem.NewLayout(sfcmem.Hilbert, 8, 8, 8).(sfcmem.SeparableLayout); ok {
		t.Error("Hilbert must not be separable")
	}
	if sfcmem.Flatten(sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.Hilbert, 8, 8, 8))) != nil {
		t.Error("Hilbert grid flattened")
	}
}
