package sfcmem_test

import (
	"fmt"

	"sfcmem"
)

// The layout is the only thing that changes between these two grids;
// application code is identical.
func ExampleNewLayout() {
	a := sfcmem.NewLayout(sfcmem.Array, 8, 8, 8)
	z := sfcmem.NewLayout(sfcmem.ZOrder, 8, 8, 8)
	fmt.Println("array offset of (1,2,3): ", a.Index(1, 2, 3))
	fmt.Println("zorder offset of (1,2,3):", z.Index(1, 2, 3))
	// Output:
	// array offset of (1,2,3):  209
	// zorder offset of (1,2,3): 53
}

// AxisStride quantifies why the Z-order layout helps: the physical
// distance of a unit step along the worst axis collapses.
func ExampleAxisStride() {
	a := sfcmem.NewLayout(sfcmem.Array, 64, 64, 64)
	z := sfcmem.NewLayout(sfcmem.ZOrder, 64, 64, 64)
	fmt.Printf("array z-step: %.0f elements\n", sfcmem.AxisStride(a, 2).Mean)
	fmt.Printf("zorder z-step: %.1f elements\n", sfcmem.AxisStride(z, 2).Mean)
	// Output:
	// array z-step: 4096 elements
	// zorder z-step: 2377.7 elements
}

// A bilateral filter run over a Z-order volume.
func ExampleBilateral() {
	l := sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16)
	src := sfcmem.MRIPhantom(l, 1, 0.05)
	dst := sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16))
	err := sfcmem.Bilateral(src, dst, sfcmem.FilterOptions{
		Radius: 1, Axis: sfcmem.AxisZ, Order: sfcmem.ZYX, Workers: 2,
	})
	fmt.Println("err:", err)
	// Output:
	// err: <nil>
}

// Simulating the paper's PAPI counter: attach one traced view per
// simulated thread and read the report.
func ExampleNewCacheSystem() {
	p := sfcmem.ScaledPlatform(sfcmem.IvyBridgePlatform(), 32)
	sys := sfcmem.NewCacheSystem(p, 1)
	l := sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16)
	src := sfcmem.MRIPhantom(l, 1, 0.05)
	dst := sfcmem.NewGrid(sfcmem.NewLayout(sfcmem.ZOrder, 16, 16, 16))
	err := sfcmem.BilateralViews(
		[]sfcmem.Reader{sfcmem.NewTraced(src, 0, sys.Front(0))},
		[]sfcmem.Writer{sfcmem.NewTraced(dst, 1<<40, sys.Front(0))},
		sfcmem.FilterOptions{Radius: 1, Workers: 1})
	rep := sys.Report()
	fmt.Println("err:", err)
	fmt.Println("metric name:", rep.MetricName())
	fmt.Println("counted something:", rep.PaperMetric() > 0)
	// Output:
	// err: <nil>
	// metric name: PAPI_L3_TCA
	// counted something: true
}

// The hierarchical HZ layout stores each level of detail as a
// contiguous prefix.
func ExampleQueryCost() {
	hz := sfcmem.NewLayout(sfcmem.HZOrder, 64, 64, 64)
	c, _ := sfcmem.SubsampleCost(hz, 3)
	fmt.Printf("level-3 lattice: %d samples in a %d-byte span\n", c.Samples, c.Span)
	// Output:
	// level-3 lattice: 512 samples in a 2048-byte span
}
