package main

import "testing"

// hz2 must be a bijection on the square, with the coarse lattice first
// (2D analogue of core.HZOrder's contiguous-prefix property).
func TestHZ2Bijective(t *testing.T) {
	const n = 8
	const totalBits = 6 // 2 * log2(8)
	seen := make(map[int]bool, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			h := hz2(x, y, totalBits)
			if h < 0 || h >= n*n {
				t.Fatalf("hz2(%d,%d)=%d out of range", x, y, h)
			}
			if seen[h] {
				t.Fatalf("hz2(%d,%d)=%d duplicated", x, y, h)
			}
			seen[h] = true
		}
	}
	// Level-1 lattice (even coordinates) occupies the first quarter.
	for y := 0; y < n; y += 2 {
		for x := 0; x < n; x += 2 {
			if h := hz2(x, y, totalBits); h >= n*n/4 {
				t.Errorf("coarse point (%d,%d) at %d, outside prefix %d", x, y, h, n*n/4)
			}
		}
	}
}
