// Command layoutviz makes the memory layouts visible: it prints the
// traversal order of each curve over a small 2D slice (the classic
// Z-order "Z" pattern) and the quantified stride/locality tables behind
// the paper's Fig. 1.
//
//	layoutviz -n 8          # 2D traversal maps for an 8×8 slice
//	layoutviz -size 64      # 3D stride statistics for a 64³ volume
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"

	"sfcmem/internal/core"
	"sfcmem/internal/hilbert"
	"sfcmem/internal/morton"
)

func main() {
	var (
		n    = flag.Int("n", 8, "2D slice edge for the traversal maps (power of two, <= 32)")
		size = flag.Int("size", 64, "3D volume edge for stride statistics")
	)
	flag.Parse()
	if *n < 2 || *n > 32 || *n&(*n-1) != 0 {
		fmt.Fprintln(os.Stderr, "layoutviz: -n must be a power of two in [2,32]")
		os.Exit(1)
	}

	fmt.Printf("row-major traversal order, %dx%d:\n", *n, *n)
	printOrder(*n, func(x, y int) int { return y**n + x })
	fmt.Printf("\nZ-order (Morton) traversal order, %dx%d:\n", *n, *n)
	printOrder(*n, func(x, y int) int { return int(morton.Encode2(uint32(x), uint32(y))) })
	bits := morton.Log2(*n)
	fmt.Printf("\nHilbert traversal order, %dx%d:\n", *n, *n)
	printOrder(*n, func(x, y int) int { return int(hilbert.Encode2(uint32(x), uint32(y), bits)) })
	fmt.Printf("\nhierarchical Z (HZ) traversal order, %dx%d (coarse levels first):\n", *n, *n)
	printOrder(*n, func(x, y int) int { return hz2(x, y, 2*bits) })

	fmt.Printf("\nstride statistics for a %d³ volume (mean |Δoffset| in elements per unit step):\n", *size)
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n", "layout", "x-step", "y-step", "z-step", "line-hit-x", "line-hit-z")
	for _, kind := range core.Kinds() {
		l := core.New(kind, *size, *size, *size)
		x := core.AxisStride(l, 0)
		y := core.AxisStride(l, 1)
		z := core.AxisStride(l, 2)
		fmt.Printf("%-8s %10.1f %10.1f %10.1f %11.1f%% %11.1f%%\n",
			kind, x.Mean, y.Mean, z.Mean, 100*x.Within, 100*z.Within)
	}

	fmt.Printf("\nray-direction sensitivity (mean |Δoffset| per ray sample):\n")
	fmt.Printf("%-8s %12s %12s %12s\n", "layout", "along-x", "oblique", "along-z")
	for _, kind := range core.Kinds() {
		l := core.New(kind, *size, *size, *size)
		ax := core.RayStride(l, 1, 0.02, 0.02)
		ob := core.RayStride(l, 0.7, 0.02, 0.7)
		az := core.RayStride(l, 0.02, 0.02, 1)
		fmt.Printf("%-8s %12.1f %12.1f %12.1f\n", kind, ax.Mean, ob.Mean, az.Mean)
	}
}

// hz2 is the 2D hierarchical Z index (Pascucci & Frank 2001): Morton
// code regrouped by trailing-zero level so coarse lattices form a
// contiguous prefix.
func hz2(x, y, totalBits int) int {
	m := morton.Encode2(uint32(x), uint32(y))
	if m == 0 {
		return 0
	}
	tz := bits.TrailingZeros64(m)
	return int(uint64(1)<<(totalBits-tz-1) + (m >> (tz + 1)))
}

// printOrder prints, for each cell of the n×n slice, its position in
// the layout's linear order (hex for compactness).
func printOrder(n int, index func(x, y int) int) {
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			fmt.Printf("%4x", index(x, y))
		}
		fmt.Println()
	}
}
