package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"sfcmem/internal/harness"
	"sfcmem/internal/stats"
)

// micro shrinks every dimension below even -quick so CLI tests finish in
// well under a second per run.
var micro = []string{
	"-quick",
	"-bilat-size", "16", "-bilat-sim-size", "16",
	"-vol-size", "16", "-vol-sim-size", "16",
	"-image", "16", "-sim-image", "16",
	"-ivy-threads", "2", "-mic-threads", "2",
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "12"},
		{"-fig", "-1"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag") {
			t.Errorf("%v: stderr lacks usage: %q", args, stderr)
		}
	}
}

func TestRunUnwritableOutputs(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// A path through a regular file is unwritable for both plain files
	// (-out and friends) and directories (-csv, whose MkdirAll would
	// happily create missing parents).
	bad := filepath.Join(blocker, "x")
	for _, flagName := range []string{"-out", "-csv", "-metrics-json", "-timeline"} {
		args := append([]string{"-fig", "1", flagName, bad}, micro...)
		code, _, stderr := runCLI(t, args...)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr %q)", flagName, code, stderr)
		}
		if !strings.Contains(stderr, "sfcbench:") {
			t.Errorf("%s: stderr %q lacks error prefix", flagName, stderr)
		}
	}
}

func TestRunBadDtype(t *testing.T) {
	// Validated up front, before any measurement.
	code, _, stderr := runCLI(t, append([]string{"-fig", "11", "-dtype", "uint8,int3"}, micro...)...)
	if code != 1 || !strings.Contains(stderr, "unknown dtype") {
		t.Errorf("exit %d stderr %q", code, stderr)
	}
}

func TestRunBadThreadSweep(t *testing.T) {
	code, _, stderr := runCLI(t, "-fig", "1", "-ivy-threads", "2,zero")
	if code != 1 || !strings.Contains(stderr, "bad thread count") {
		t.Errorf("exit %d stderr %q", code, stderr)
	}
}

// The ISSUE acceptance command: a quick fig-1 run with both
// observability sinks must emit a parseable manifest and a Chrome trace
// with at least one complete event per worker lane.
func TestRunQuickFig1MetricsAndTimeline(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "out.json")
	tracePath := filepath.Join(dir, "tl.json")
	args := append([]string{"-fig", "1", "-metrics-json", manifestPath, "-timeline", tracePath}, micro...)
	code, stdout, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Fig 1a") {
		t.Errorf("stdout lacks fig1 table:\n%s", stdout)
	}
	if !strings.Contains(stderr, "fig1 done in") {
		t.Errorf("stderr lacks pacing line: %q", stderr)
	}

	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m harness.RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Schema != harness.ManifestSchema {
		t.Errorf("schema %q", m.Schema)
	}
	if m.Host.NumCPU < 1 || m.Host.GoVersion == "" {
		t.Errorf("host info %+v", m.Host)
	}
	if m.Config.BilatSize != 16 {
		t.Errorf("config not captured: %+v", m.Config)
	}
	if len(m.Figures) != 1 || m.Figures[0].Name != "fig1" {
		t.Fatalf("figures %+v", m.Figures)
	}
	if len(m.Figures[0].Cells) == 0 {
		t.Error("fig1 recorded no cells")
	}
	for _, c := range m.Figures[0].Cells {
		if c.Kernel == "stride" && c.RuntimeA <= 0 {
			t.Errorf("cell %+v has no wall-clock entry", c)
		}
	}

	tr, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	lanes := map[int]int{}
	workers := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.Tid]++
			workers[ev.Tid] = true
		}
	}
	if len(workers) < 2 {
		t.Errorf("trace covers %d worker lanes, want >= 2", len(workers))
	}
	for w := range workers {
		if lanes[w] == 0 {
			t.Errorf("lane %d has no X events", w)
		}
	}
}

func TestRunPprofFlag(t *testing.T) {
	// Unresolvable listen address fails fast.
	code, _, stderr := runCLI(t, append([]string{"-fig", "1", "-pprof", "256.256.256.256:0"}, micro...)...)
	if code != 1 || !strings.Contains(stderr, "sfcbench:") {
		t.Errorf("bad pprof addr: exit %d stderr %q", code, stderr)
	}
	// A real ephemeral listener serves for the duration of the run.
	code, _, stderr = runCLI(t, append([]string{"-fig", "1", "-pprof", "127.0.0.1:0"}, micro...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "/debug/pprof/") {
		t.Errorf("stderr lacks pprof banner: %q", stderr)
	}
}

func TestRunWritesOutAndCSV(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "results.txt")
	csvDir := filepath.Join(dir, "csv")
	args := append([]string{"-fig", "1", "-out", outPath, "-csv", csvDir}, micro...)
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if data, err := os.ReadFile(outPath); err != nil || !strings.Contains(string(data), "Fig 1a") {
		t.Errorf("out file: %v, %q", err, data)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "fig1_0.csv")); err != nil {
		t.Error(err)
	}
}

func TestParseThreads(t *testing.T) {
	def := []int{1, 2}
	got, err := parseThreads("", def)
	if err != nil || len(got) != 2 {
		t.Errorf("default passthrough: %v %v", got, err)
	}
	got, err = parseThreads("2, 8,24", def)
	if err != nil || len(got) != 3 || got[2] != 24 {
		t.Errorf("parse: %v %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-3", "1,,2"} {
		if _, err := parseThreads(bad, def); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestParseThreadsSortsAndDedupes: the grid code labels result columns
// by position, so duplicates and out-of-order counts used to corrupt the
// sweep; parseThreads must normalise them.
func TestParseThreadsSortsAndDedupes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"4,1,4", []int{1, 4}},
		{"8,2,24,2", []int{2, 8, 24}},
		{"16,16,16", []int{16}},
		{"1,2,3", []int{1, 2, 3}},
	}
	for _, c := range cases {
		got, err := parseThreads(c.in, nil)
		if err != nil {
			t.Errorf("parseThreads(%q): %v", c.in, err)
			continue
		}
		if !slices.Equal(got, c.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	tb := stats.NewTable("t", []string{"r"}, []string{"c"})
	tb.Set(0, 0, 1)
	res := harness.FigureResult{Name: "figX", Tables: []*stats.Table{tb}}
	if err := writeCSVs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figX_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "row,c\n") {
		t.Errorf("csv content %q", data)
	}
	// Table-less figures are a no-op.
	if err := writeCSVs(dir, harness.FigureResult{Name: "none"}); err != nil {
		t.Error(err)
	}
}
