package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sfcmem/internal/harness"
	"sfcmem/internal/stats"
)

func TestParseThreads(t *testing.T) {
	def := []int{1, 2}
	got, err := parseThreads("", def)
	if err != nil || len(got) != 2 {
		t.Errorf("default passthrough: %v %v", got, err)
	}
	got, err = parseThreads("2, 8,24", def)
	if err != nil || len(got) != 3 || got[2] != 24 {
		t.Errorf("parse: %v %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-3", "1,,2"} {
		if _, err := parseThreads(bad, def); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	tb := stats.NewTable("t", []string{"r"}, []string{"c"})
	tb.Set(0, 0, 1)
	res := harness.FigureResult{Name: "figX", Tables: []*stats.Table{tb}}
	if err := writeCSVs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figX_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "row,c\n") {
		t.Errorf("csv content %q", data)
	}
	// Table-less figures are a no-op.
	if err := writeCSVs(dir, harness.FigureResult{Name: "none"}); err != nil {
		t.Error(err)
	}
}
