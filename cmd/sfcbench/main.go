// Command sfcbench regenerates the paper's tables and figures.
//
// Each figure of the evaluation section maps to -fig N (1..6), the
// repo's extension studies to -fig 7 (reuse-distance curves) and -fig 8
// (padding + auto-tuning ablation) and -fig 9 (per-level counter breakdown) and -fig 10 (slice/LOD query costs) and -fig 11 (element-dtype
// sweep; narrow the axis with -dtype); -fig 0 runs everything in order,
// which is how EXPERIMENTS.md is produced:
//
//	sfcbench -fig 0 -out results.txt
//
// The -quick flag shrinks the grid for smoke runs. Volume sizes, thread
// sweeps and the cache scale can be overridden individually.
//
// Observability (see README "Observability"):
//
//	-metrics-json run.json   write the machine-readable run manifest
//	-timeline trace.json     write a Chrome trace_event timeline
//	-pprof localhost:6060    serve net/http/pprof and expvar while running
package main

import (
	_ "expvar" // registers /debug/vars on the default mux for -pprof
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"sfcmem/internal/harness"
	"sfcmem/internal/timeline"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams so tests can exercise the
// full CLI including its exit codes: 0 success, 1 runtime error, 2 usage
// error (bad flags or out-of-range -fig).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig         = fs.Int("fig", 0, "figure to reproduce (1-6 paper, 7-11 extensions); 0 = all")
		quick       = fs.Bool("quick", false, "use the reduced smoke-test grid")
		out         = fs.String("out", "", "also write results to this file")
		csvDir      = fs.String("csv", "", "also write each figure's tables as CSV into this directory")
		metricsJSON = fs.String("metrics-json", "", "write the machine-readable run manifest (config, host, per-cell timings, metrics) to this file")
		timelineOut = fs.String("timeline", "", "write a Chrome trace_event timeline (chrome://tracing, Perfetto) to this file")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060) while running")
		bilatSize   = fs.Int("bilat-size", 0, "override bilateral wall-clock volume edge")
		bilatSim    = fs.Int("bilat-sim-size", 0, "override bilateral cache-sim volume edge")
		volSize     = fs.Int("vol-size", 0, "override renderer wall-clock volume edge")
		volSim      = fs.Int("vol-sim-size", 0, "override renderer cache-sim volume edge")
		imgSize     = fs.Int("image", 0, "override renderer image edge")
		simImg      = fs.Int("sim-image", 0, "override renderer cache-sim image edge")
		cacheScale  = fs.Int("cache-scale", 0, "override cache capacity scale factor (power of two)")
		reps        = fs.Int("reps", 0, "override wall-clock repetitions (min kept)")
		seed        = fs.Uint64("seed", 0, "override dataset seed")
		ivy         = fs.String("ivy-threads", "", "override IvyBridge thread sweep, e.g. 2,8,24")
		mic         = fs.String("mic-threads", "", "override MIC thread sweep, e.g. 59,118")
		noFastPath  = fs.Bool("no-fastpath", false, "disable the kernels' flat-access fast path (ablation; wall-clock runs only)")
		noStep      = fs.Bool("no-step", false, "keep the flat fast path on per-tap table lookups instead of the neighbor-stepping walk (ablation; wall-clock runs only)")
		dtypes      = fs.String("dtype", "", "element dtypes for the fig 11 sweep, e.g. uint8,float32; default all")
		verbose     = fs.Bool("v", false, "print progress for each cell")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fig < 0 || *fig > 11 {
		fmt.Fprintf(stderr, "sfcbench: -fig %d out of range (0 = all, 1-6 paper, 7-11 extensions)\n", *fig)
		fs.Usage()
		return 2
	}

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	setIf := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	setIf(&cfg.BilatSize, *bilatSize)
	setIf(&cfg.BilatSimSize, *bilatSim)
	setIf(&cfg.VolSize, *volSize)
	setIf(&cfg.VolSimSize, *volSim)
	setIf(&cfg.ImageSize, *imgSize)
	setIf(&cfg.SimImageSize, *simImg)
	setIf(&cfg.CacheScale, *cacheScale)
	setIf(&cfg.Reps, *reps)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.NoFastPath = *noFastPath
	cfg.NoStepper = *noStep
	if *dtypes != "" {
		for _, part := range strings.Split(*dtypes, ",") {
			cfg.Dtypes = append(cfg.Dtypes, strings.TrimSpace(part))
		}
		// Surface a bad dtype name before minutes of measurement.
		if _, err := cfg.DtypeList(); err != nil {
			return fatal(stderr, err)
		}
	}
	var err error
	if cfg.IvyThreads, err = parseThreads(*ivy, cfg.IvyThreads); err != nil {
		return fatal(stderr, err)
	}
	if cfg.MICThreads, err = parseThreads(*mic, cfg.MICThreads); err != nil {
		return fatal(stderr, err)
	}

	// Fail on unwritable outputs before spending minutes measuring.
	for _, p := range []string{*out, *metricsJSON, *timelineOut} {
		if p == "" {
			continue
		}
		if err := checkWritable(p); err != nil {
			return fatal(stderr, err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fatal(stderr, err)
		}
	}

	// Observability sinks: any of the three flags instruments the run.
	var ins *harness.Instruments
	if *metricsJSON != "" || *timelineOut != "" || *pprofAddr != "" {
		ins = harness.NewInstruments(cfg)
		if *timelineOut != "" {
			ins.Timeline = timeline.NewRecorder()
		}
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fatal(stderr, err)
		}
		defer ln.Close()
		ins.Metrics.Publish("sfcbench")
		fmt.Fprintf(stderr, "sfcbench: pprof on http://%s/debug/pprof/, expvar on /debug/vars\n", ln.Addr())
		go http.Serve(ln, nil) //nolint:errcheck // dies with the process
	}

	runStart := time.Now()
	progress := func(string) {}
	if *verbose {
		progress = func(msg string) {
			fmt.Fprintf(stderr, "[%9s] %s\n", time.Since(runStart).Round(time.Millisecond), msg)
		}
	}

	figs := []int{*fig}
	if *fig == 0 {
		figs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	}
	var text strings.Builder
	fmt.Fprintf(&text, "sfcmem experiment run — %s %s/%s, GOMAXPROCS=%d\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&text, "config: bilat %d³ (sim %d³), volrend %d³ (sim %d³), image %d (sim %d), cache-scale %d, seed %d, reps %d\n\n",
		cfg.BilatSize, cfg.BilatSimSize, cfg.VolSize, cfg.VolSimSize,
		cfg.ImageSize, cfg.SimImageSize, cfg.CacheScale, cfg.Seed, cfg.Reps)
	for i, n := range figs {
		figStart := time.Now()
		res, err := harness.FigureObs(n, cfg, progress, ins)
		if err != nil {
			return fatal(stderr, err)
		}
		elapsed := time.Since(runStart)
		// Per-figure pacing line; the ETA scales the mean figure time by
		// the remaining count, which is rough but keeps long -fig 0 runs
		// honest about how far along they are.
		line := fmt.Sprintf("sfcbench: fig%d done in %s (%d/%d, elapsed %s",
			n, time.Since(figStart).Round(time.Millisecond), i+1, len(figs),
			elapsed.Round(time.Millisecond))
		if rem := len(figs) - (i + 1); rem > 0 {
			eta := time.Duration(float64(elapsed) / float64(i+1) * float64(rem))
			line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
		}
		fmt.Fprintln(stderr, line+")")
		text.WriteString(res.Text)
		text.WriteString("\n")
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				return fatal(stderr, err)
			}
		}
	}
	fmt.Fprint(stdout, text.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text.String()), 0o644); err != nil {
			return fatal(stderr, err)
		}
	}

	ins.Finish()
	if *metricsJSON != "" {
		if err := writeFileWith(*metricsJSON, ins.Manifest.WriteJSON); err != nil {
			return fatal(stderr, err)
		}
	}
	if *timelineOut != "" {
		if err := writeFileWith(*timelineOut, ins.Timeline.WriteChromeTrace); err != nil {
			return fatal(stderr, err)
		}
		if d := ins.Timeline.Dropped(); d > 0 {
			fmt.Fprintf(stderr, "sfcbench: timeline dropped %d events past the recorder cap\n", d)
		}
	}
	return 0
}

// checkWritable verifies the path can be opened for writing, creating an
// empty placeholder if it does not exist (the real content replaces it
// at the end of the run).
func checkWritable(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// writeFileWith streams write(f) into path.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSVs dumps a figure's tables as <dir>/<figname>_<i>.csv.
func writeCSVs(dir string, res harness.FigureResult) error {
	if len(res.Tables) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.Name, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func parseThreads(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sfcbench: bad thread count %q", part)
		}
		out = append(out, n)
	}
	// The grid code indexes results by position in this list, so a
	// duplicate ("4,4") would overwrite a column and an unsorted list
	// ("8,2") would mislabel the sweep; normalise instead of erroring.
	sort.Ints(out)
	return slices.Compact(out), nil
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "sfcbench:", err)
	return 1
}
