// Command sfcbench regenerates the paper's tables and figures.
//
// Each figure of the evaluation section maps to -fig N (1..6), the
// repo's extension studies to -fig 7 (reuse-distance curves) and -fig 8
// (padding + auto-tuning ablation) and -fig 9 (per-level counter breakdown) and -fig 10 (slice/LOD query costs); -fig 0 runs everything in order,
// which is how EXPERIMENTS.md is produced:
//
//	sfcbench -fig 0 -out results.txt
//
// The -quick flag shrinks the grid for smoke runs. Volume sizes, thread
// sweeps and the cache scale can be overridden individually.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"sfcmem/internal/harness"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (1-6 paper, 7-10 extensions); 0 = all")
		quick      = flag.Bool("quick", false, "use the reduced smoke-test grid")
		out        = flag.String("out", "", "also write results to this file")
		csvDir     = flag.String("csv", "", "also write each figure's tables as CSV into this directory")
		bilatSize  = flag.Int("bilat-size", 0, "override bilateral wall-clock volume edge")
		bilatSim   = flag.Int("bilat-sim-size", 0, "override bilateral cache-sim volume edge")
		volSize    = flag.Int("vol-size", 0, "override renderer wall-clock volume edge")
		volSim     = flag.Int("vol-sim-size", 0, "override renderer cache-sim volume edge")
		imgSize    = flag.Int("image", 0, "override renderer image edge")
		simImg     = flag.Int("sim-image", 0, "override renderer cache-sim image edge")
		cacheScale = flag.Int("cache-scale", 0, "override cache capacity scale factor (power of two)")
		reps       = flag.Int("reps", 0, "override wall-clock repetitions (min kept)")
		seed       = flag.Uint64("seed", 0, "override dataset seed")
		ivy        = flag.String("ivy-threads", "", "override IvyBridge thread sweep, e.g. 2,8,24")
		mic        = flag.String("mic-threads", "", "override MIC thread sweep, e.g. 59,118")
		verbose    = flag.Bool("v", false, "print progress for each cell")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *quick {
		cfg = harness.QuickConfig()
	}
	setIf := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	setIf(&cfg.BilatSize, *bilatSize)
	setIf(&cfg.BilatSimSize, *bilatSim)
	setIf(&cfg.VolSize, *volSize)
	setIf(&cfg.VolSimSize, *volSim)
	setIf(&cfg.ImageSize, *imgSize)
	setIf(&cfg.SimImageSize, *simImg)
	setIf(&cfg.CacheScale, *cacheScale)
	setIf(&cfg.Reps, *reps)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	var err error
	if cfg.IvyThreads, err = parseThreads(*ivy, cfg.IvyThreads); err != nil {
		fatal(err)
	}
	if cfg.MICThreads, err = parseThreads(*mic, cfg.MICThreads); err != nil {
		fatal(err)
	}

	progress := func(string) {}
	if *verbose {
		progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	figs := []int{*fig}
	if *fig == 0 {
		figs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	var text strings.Builder
	fmt.Fprintf(&text, "sfcmem experiment run — %s %s/%s, GOMAXPROCS=%d\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&text, "config: bilat %d³ (sim %d³), volrend %d³ (sim %d³), image %d (sim %d), cache-scale %d, seed %d, reps %d\n\n",
		cfg.BilatSize, cfg.BilatSimSize, cfg.VolSize, cfg.VolSimSize,
		cfg.ImageSize, cfg.SimImageSize, cfg.CacheScale, cfg.Seed, cfg.Reps)
	for _, n := range figs {
		res, err := harness.Figure(n, cfg, progress)
		if err != nil {
			fatal(err)
		}
		text.WriteString(res.Text)
		text.WriteString("\n")
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Print(text.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text.String()), 0o644); err != nil {
			fatal(err)
		}
	}
}

// writeCSVs dumps a figure's tables as <dir>/<figname>_<i>.csv.
func writeCSVs(dir string, res harness.FigureResult) error {
	if len(res.Tables) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.Name, i))
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func parseThreads(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sfcbench: bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfcbench:", err)
	os.Exit(1)
}
