// Command cachesim records kernel memory-access traces to disk and
// replays them through simulated cache platforms — collect once,
// analyze under as many hierarchies as you like.
//
//	cachesim -record trace.sfct -kernel bilat -layout array -size 32 -radius 2 -axis pz -order zyx
//	cachesim -replay trace.sfct -platform ivy/32
//	cachesim -replay trace.sfct -platform mic/32 -reuse
package main

import (
	"flag"
	"fmt"
	"os"

	"sfcmem/internal/cache"
	"sfcmem/internal/core"
	"sfcmem/internal/filter"
	"sfcmem/internal/grid"
	"sfcmem/internal/parallel"
	"sfcmem/internal/render"
	"sfcmem/internal/reuse"
	"sfcmem/internal/trace"
	"sfcmem/internal/volume"
)

func main() {
	var (
		record   = flag.String("record", "", "record a kernel trace to this file")
		replay   = flag.String("replay", "", "replay a trace file through a simulated platform")
		kernel   = flag.String("kernel", "bilat", "record: kernel (bilat or volrend)")
		layout   = flag.String("layout", "array", "record: memory layout")
		size     = flag.Int("size", 32, "record: volume edge")
		radius   = flag.Int("radius", 2, "record: bilat stencil radius")
		axis     = flag.String("axis", "pz", "record: bilat pencil axis")
		order    = flag.String("order", "zyx", "record: bilat iteration order")
		view     = flag.Int("view", 2, "record: volrend orbit viewpoint")
		img      = flag.Int("image", 64, "record: volrend image edge")
		seed     = flag.Uint64("seed", 1, "record: dataset seed")
		platform = flag.String("platform", "ivy/32", "replay: platform (ivy, mic, with /N scaling)")
		doReuse  = flag.Bool("reuse", false, "replay: also compute the reuse-distance profile")
	)
	flag.Parse()

	switch {
	case *record != "" && *replay != "":
		fatal(fmt.Errorf("choose one of -record or -replay"))
	case *record != "":
		if err := doRecord(*record, *kernel, *layout, *size, *radius, *axis, *order, *view, *img, *seed); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *platform, *doReuse); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(path, kernel, layoutName string, size, radius int, axis, order string, view, img int, seed uint64) error {
	kind, err := core.ParseKind(layoutName)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	l := core.New(kind, size, size, size)
	switch kernel {
	case "bilat":
		ax, err := parallel.ParseAxis(axis)
		if err != nil {
			return err
		}
		ord, err := filter.ParseOrder(order)
		if err != nil {
			return err
		}
		src := volume.MRIPhantom(l, seed, 0.05)
		dst := grid.New(core.New(kind, size, size, size))
		err = filter.ApplyViews(
			[]grid.Reader{grid.NewTraced(src, 0, w)},
			[]grid.Writer{grid.NewTraced(dst, 1<<40, w)},
			filter.Options{Radius: radius, Axis: ax, Order: ord, Workers: 1})
		if err != nil {
			return err
		}
	case "volrend":
		vol := volume.CombustionPlume(l, seed)
		cam := render.Orbit(view, 8, size, size, size, img, img)
		_, err = render.RenderViews(
			[]grid.Reader{grid.NewTraced(vol, 0, w)},
			cam, render.DefaultTransferFunc(), render.Options{Workers: 1})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kernel %q (bilat or volrend)", kernel)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses (%d bytes, %.2f bytes/access) to %s\n",
		w.Count(), st.Size(), float64(st.Size())/float64(w.Count()), path)
	return nil
}

func doReplay(path, platName string, withReuse bool) error {
	p, err := cache.ParsePlatform(platName)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys := cache.NewSystem(p, 1)
	sinks := trace.MultiSink{sys.Front(0)}
	var an *reuse.Analyzer
	if withReuse {
		an = reuse.NewAnalyzer(1 << 20)
		sinks = append(sinks, an)
	}
	n, err := trace.Replay(f, sinks)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d accesses through %s\n", n, p.Name)
	fmt.Print(sys.Report())
	if an != nil {
		fmt.Print(an.Histogram())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachesim:", err)
	os.Exit(1)
}
