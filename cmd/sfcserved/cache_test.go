package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"sfcmem"
	"sfcmem/internal/store"
)

// cacheConfig is testConfig with the response cache switched on.
func cacheConfig() config {
	cfg := testConfig()
	cfg.cacheBytes = 32 << 20
	return cfg
}

// identicalRender is the request every coalescing/caching test repeats.
var identicalRender = renderRequest{Volume: "demo", View: 3, Views: 8, Width: 32, Height: 32, Workers: 2}

func postWithHeader(t *testing.T, url string, body any, header, value string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// reuploadDemo PUTs the demo volume's own bytes back over itself: the
// contents are unchanged but the store generation must bump, stranding
// every cached digest for the old generation.
func reuploadDemo(t *testing.T, a *app) store.Info {
	t.Helper()
	v, err := a.srv.store.Get("demo")
	if err != nil {
		t.Fatal("demo volume missing")
	}
	var raw bytes.Buffer
	if err := sfcmem.SaveRawAny(&raw, v.Grid); err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := v.Grid.Dims()
	url := "http://" + a.apiAddr() + "/volumes/demo?dtype=" + v.Grid.Dtype().String() +
		"&layout=" + v.Layout
	url += "&nx=" + itoa(nx) + "&ny=" + itoa(ny) + "&nz=" + itoa(nz)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-upload: status %d body %s", resp.StatusCode, body)
	}
	var info store.Info
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func itoa(n int) string { return strconv.Itoa(n) }

// serveBuiltApp runs an already-built app (so tests can install hooks
// first) with the same lifecycle management as startApp.
func serveBuiltApp(t *testing.T, a *app) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("app.run: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("app.run did not return after cancel")
		}
	})
}

// TestRenderCacheCoalescing is the PR's acceptance scenario, run under
// -race by `make race`: with an empty cache, 32 concurrent identical
// /render requests execute the kernel exactly once (31 coalesced
// waiters, one miss) and all receive byte-identical PNGs; a repeat
// request is a cache hit with the same bytes; a PUT over the volume
// forces the next request back to a miss that re-runs the kernel.
func TestRenderCacheCoalescing(t *testing.T) {
	a, err := newApp(cacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render
	serveBuiltApp(t, a)
	url := "http://" + a.apiAddr() + "/render"

	const n = 32
	type result struct {
		status int
		xcache string
		sum    [32]byte
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp := postJSON(t, url, identicalRender)
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, resp.Header.Get("X-Cache"), sha256.Sum256(body)}
		}()
	}

	// The leader parks inside the kernel; every other request must end
	// up waiting on its flight, not in the admission queue.
	<-hook.entered
	waitFor(t, "31 coalesced waiters", func() bool { return a.srv.cache.Stats().Coalesced == n-1 })
	if extra := len(hook.entered); extra != 0 {
		t.Fatalf("%d extra kernel entries while coalescing", extra)
	}
	close(hook.release)

	var first result
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		res := <-results
		if res.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, res.status)
		}
		counts[res.xcache]++
		if i == 0 {
			first = res
		} else if res.sum != first.sum {
			t.Fatal("coalesced responses are not byte-identical")
		}
	}
	if counts["miss"] != 1 || counts["coalesced"] != n-1 {
		t.Errorf("X-Cache counts %v, want 1 miss / %d coalesced", counts, n-1)
	}
	st := a.srv.cache.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats misses/coalesced = %d/%d, want 1/%d", st.Misses, st.Coalesced, n-1)
	}

	// A repeat request is a pure cache hit: same bytes, no kernel run.
	resp := postJSON(t, url, identicalRender)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeat X-Cache %q, want hit", xc)
	}
	if sha256.Sum256(body) != first.sum {
		t.Error("cache hit is not byte-identical to the original render")
	}
	if len(hook.entered) != 0 {
		t.Error("cache hit ran the kernel")
	}
	if st := a.srv.cache.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}

	// Replacing the volume bumps the generation: the next identical
	// request misses and the kernel runs again.
	info := reuploadDemo(t, a)
	if info.Gen != 2 {
		t.Fatalf("re-uploaded demo gen = %d, want 2", info.Gen)
	}
	resp = postJSON(t, url, identicalRender)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("post-PUT X-Cache %q, want miss", xc)
	}
	select {
	case <-hook.entered:
	default:
		t.Error("post-PUT request did not re-run the kernel")
	}
	if st := a.srv.cache.Stats(); st.Misses != 2 {
		t.Errorf("misses after PUT = %d, want 2", st.Misses)
	}
}

// TestRenderETagNotModified: with the cache on, responses carry a
// strong ETag; replaying it via If-None-Match answers 304 with an
// empty body, and a PUT over the volume (new generation, new tag)
// turns the same conditional request back into a full 200.
func TestRenderETagNotModified(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())
	url := "http://" + a.apiAddr() + "/render"

	resp := postJSON(t, url, identicalRender)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("ETag %q, want a quoted strong tag", etag)
	}

	resp = postWithHeader(t, url, identicalRender, "If-None-Match", etag)
	nm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match replay: status %d, want 304", resp.StatusCode)
	}
	if len(nm) != 0 {
		t.Errorf("304 carried %d body bytes", len(nm))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag %q, want %q", got, etag)
	}

	// A different view is different content: same conditional tag, 200.
	other := identicalRender
	other.View = 5
	resp = postWithHeader(t, url, other, "If-None-Match", etag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("different view with stale tag: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got == etag || got == "" {
		t.Errorf("different view ETag %q, want a fresh tag", got)
	}

	// After a PUT the old tag no longer validates.
	reuploadDemo(t, a)
	resp = postWithHeader(t, url, identicalRender, "If-None-Match", etag)
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-PUT conditional: status %d, want 200", resp.StatusCode)
	}
	if len(rb) != len(body) {
		// Same volume contents re-uploaded: the frame is identical even
		// though the tag is new.
		t.Errorf("post-PUT render %d bytes, want %d", len(rb), len(body))
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Error("ETag unchanged across a volume PUT; generation not in the digest")
	}
}

// TestRenderCacheRawFormat: raw frames cache with their dimension
// headers intact, and png/raw digests do not collide.
func TestRenderCacheRawFormat(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())
	url := "http://" + a.apiAddr() + "/render"
	req := identicalRender
	req.Format = "raw"

	for i, want := range []string{"miss", "hit"} {
		resp := postJSON(t, url, req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("raw render %d: status %d", i, resp.StatusCode)
		}
		if xc := resp.Header.Get("X-Cache"); xc != want {
			t.Errorf("raw render %d: X-Cache %q, want %q", i, xc, want)
		}
		if got := resp.Header.Get("X-Image-Width"); got != "32" {
			t.Errorf("raw render %d: X-Image-Width %q, want 32 (meta header lost in cache?)", i, got)
		}
		if wantLen := 32 * 32 * 4 * 4; len(body) != wantLen {
			t.Errorf("raw render %d: %d bytes, want %d", i, len(body), wantLen)
		}
	}

	// The png variant of the same view must not be served the raw bytes.
	resp := postJSON(t, url, identicalRender)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("png after raw: X-Cache %q, want miss (format missing from digest?)", xc)
	}
}

// TestFilterCacheAndETag: identical filter requests coalesce onto one
// kernel run, the cached JSON replays byte-identically, and the
// conditional request answers 304.
func TestFilterCacheAndETag(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())
	url := "http://" + a.apiAddr() + "/filter"
	req := filterRequest{Src: "demo", Kernel: "gaussian", Radius: 1, Workers: 2}

	resp := postJSON(t, url, req)
	first, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filter: status %d body %s", resp.StatusCode, first)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("filter response has no ETag")
	}
	if _, err := a.srv.store.Get("demo.filtered"); err != nil {
		t.Fatal("filtered volume not stored")
	}

	resp = postJSON(t, url, req)
	second, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeat filter X-Cache %q, want hit", xc)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached filter response differs: %s vs %s", first, second)
	}
	// The destination volume's generation did not advance on the hit:
	// the kernel (and its store.Put) ran once.
	if v, _ := a.srv.store.Get("demo.filtered"); v.Gen != 1 {
		t.Errorf("demo.filtered gen = %d after a cache hit, want 1", v.Gen)
	}

	resp = postWithHeader(t, url, req, "If-None-Match", etag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("filter If-None-Match: status %d, want 304", resp.StatusCode)
	}

	// Workers are an execution knob, not content: same digest, still a
	// hit.
	req.Workers = 1
	resp = postJSON(t, url, req)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("filter with different workers X-Cache %q, want hit", xc)
	}

	// A parameter that changes the result is a different digest.
	req.Radius = 2
	resp = postJSON(t, url, req)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("filter with different radius X-Cache %q, want miss", xc)
	}
}

// uploadZeros PUTs an n³ float32 volume of zero bytes over name,
// clobbering whatever was stored there (and clearing any filterKey).
func uploadZeros(t *testing.T, a *app, name string, n int) {
	t.Helper()
	body := make([]byte, n*n*n*4)
	url := fmt.Sprintf("http://%s/volumes/%s?dtype=float32&layout=zorder&nx=%d&ny=%d&nz=%d",
		a.apiAddr(), name, n, n, n)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload over %s: status %d", name, resp.StatusCode)
	}
}

// TestFilterDstClobberedByUpload pins the destination-state rule: a
// /filter response (cached body or 304) claims dst holds the filter
// output, so once an upload replaces dst, the identical request must
// go back through the kernel and re-store dst — a replayed hit or a
// 304 here would leave clients reading the uploaded bytes while being
// told they are the filter result.
func TestFilterDstClobberedByUpload(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())
	url := "http://" + a.apiAddr() + "/filter"
	req := filterRequest{Src: "demo", Kernel: "gaussian", Radius: 1, Workers: 2}

	resp := postJSON(t, url, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("filter: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("filter response has no ETag")
	}

	uploadZeros(t, a, "demo.filtered", 8)
	if v, err := a.srv.store.Get("demo.filtered"); err != nil || v.FilterKey != "" || v.Gen != 2 {
		t.Fatalf("upload over dst: filterKey %q gen %d, want empty and 2", v.FilterKey, v.Gen)
	}

	// The conditional replay must be a full 200 — dst no longer holds
	// the output the 304 would vouch for — and must re-run the kernel.
	resp = postWithHeader(t, url, req, "If-None-Match", etag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-clobber conditional: status %d, want 200", resp.StatusCode)
	}
	if xc := resp.Header.Get("X-Cache"); xc == "hit" {
		t.Errorf("post-clobber filter X-Cache %q; replayed a stale claim", xc)
	}
	v, err := a.srv.store.Get("demo.filtered")
	if err != nil || v.Dataset != "plume+gaussian" || v.Gen != 3 {
		t.Fatalf("post-clobber dst: dataset %q gen %d, want plume+gaussian gen 3 (kernel re-ran and re-stored)", v.Dataset, v.Gen)
	}

	// With dst restored, the cache is trustworthy again: repeat is a
	// hit and the conditional request validates.
	resp = postJSON(t, url, req)
	resp.Body.Close()
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("post-restore filter X-Cache %q, want hit", xc)
	}
	resp = postWithHeader(t, url, req, "If-None-Match", etag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("post-restore conditional: status %d, want 304", resp.StatusCode)
	}
}

// TestETagProcessScoped: two processes serving the identical volume
// mint different ETags (a boot nonce is mixed into every digest), so
// a tag from a previous run can never validate a 304 against contents
// this process has not computed — store generations restart at 1 per
// process and prove nothing across runs.
func TestETagProcessScoped(t *testing.T) {
	a1, _, _ := startApp(t, cacheConfig())
	a2, _, _ := startApp(t, cacheConfig())

	r1 := postJSON(t, "http://"+a1.apiAddr()+"/render", identicalRender)
	r1.Body.Close()
	etag := r1.Header.Get("ETag")
	r2 := postJSON(t, "http://"+a2.apiAddr()+"/render", identicalRender)
	r2.Body.Close()
	if etag == "" || etag == r2.Header.Get("ETag") {
		t.Fatalf("identical requests in two processes share ETag %q", etag)
	}

	resp := postWithHeader(t, "http://"+a2.apiAddr()+"/render", identicalRender, "If-None-Match", etag)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cross-process conditional: status %d, want 200", resp.StatusCode)
	}
}

// TestPutVolumeBumpsGeneration covers the store-generation satellite:
// every PUT over an existing name advances the generation reported by
// /volumes, and a fresh name starts at 1.
func TestPutVolumeBumpsGeneration(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())

	if v, _ := a.srv.store.Get("demo"); v.Gen != 1 {
		t.Fatalf("initial demo gen = %d, want 1", v.Gen)
	}
	if info := reuploadDemo(t, a); info.Gen != 2 {
		t.Fatalf("first re-upload gen = %d, want 2", info.Gen)
	}
	if info := reuploadDemo(t, a); info.Gen != 3 {
		t.Fatalf("second re-upload gen = %d, want 3", info.Gen)
	}

	resp, err := http.Get("http://" + a.apiAddr() + "/volumes")
	if err != nil {
		t.Fatal(err)
	}
	var vols []store.Info
	if err := json.NewDecoder(resp.Body).Decode(&vols); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, v := range vols {
		if v.Name == "demo" && v.Gen != 3 {
			t.Errorf("/volumes lists demo gen %d, want 3", v.Gen)
		}
	}
}

// TestCacheDisabledKeepsLegacyResponses pins the -cache-bytes=0
// default: no ETag, no X-Cache, and no 304 handling — exactly the
// pre-cache service.
func TestCacheDisabledKeepsLegacyResponses(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	url := "http://" + a.apiAddr() + "/render"

	resp := postJSON(t, url, identicalRender)
	resp.Body.Close()
	if resp.Header.Get("ETag") != "" || resp.Header.Get("X-Cache") != "" {
		t.Errorf("disabled cache leaked headers: ETag=%q X-Cache=%q",
			resp.Header.Get("ETag"), resp.Header.Get("X-Cache"))
	}
	resp = postWithHeader(t, url, identicalRender, "If-None-Match", `"anything"`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("disabled cache answered conditional with %d, want 200", resp.StatusCode)
	}
	if _, ok := a.srv.reg.Snapshot()["cache.hits"]; ok {
		t.Error("disabled cache registered cache metrics")
	}
}

// TestCacheMetricsRegistered: the ops registry carries the cache
// counters and gauges once -cache-bytes is set.
func TestCacheMetricsRegistered(t *testing.T) {
	a, _, _ := startApp(t, cacheConfig())
	url := "http://" + a.apiAddr() + "/render"
	resp := postJSON(t, url, identicalRender)
	resp.Body.Close()
	resp = postJSON(t, url, identicalRender)
	resp.Body.Close()

	mresp, err := http.Get("http://" + a.opsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"cache.hits", "cache.misses", "cache.evictions", "cache.coalesced",
		"cache.resident_bytes", "cache.entries", "cache.budget_bytes",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	var hits uint64
	if err := json.Unmarshal(snap["cache.hits"], &hits); err != nil || hits != 1 {
		t.Errorf("cache.hits = %s (err %v), want 1", snap["cache.hits"], err)
	}
	var resident int64
	if err := json.Unmarshal(snap["cache.resident_bytes"], &resident); err != nil || resident <= 0 {
		t.Errorf("cache.resident_bytes = %s (err %v), want > 0", snap["cache.resident_bytes"], err)
	}
}

// TestDigestCanonicalization: the digest must separate fields (no
// ambiguity between ("ab","c") and ("a","bc")) and must change with
// any content-affecting parameter.
func TestDigestCanonicalization(t *testing.T) {
	if digest("ab", "c") == digest("a", "bc") {
		t.Error("digest concatenates fields without separation")
	}
	// Client-chosen names may contain any byte; a separator inside a
	// value must not be able to forge a field boundary.
	if digest("a|b", "c") == digest("a", "b|c") {
		t.Error("a '|' inside a field forges the field boundary")
	}
	if digest("2:a", "b") == digest("2", "a,b") {
		t.Error("length-prefix characters inside a field forge the encoding")
	}
	if digest("render", "v1", "demo", 1, "float32", 0, 24, 256, 256, false, "png") ==
		digest("render", "v1", "demo", 2, "float32", 0, 24, 256, 256, false, "png") {
		t.Error("generation does not change the digest")
	}
	if digest("x") == digest("y") {
		t.Error("distinct digests collide")
	}
}

func TestEtagMatches(t *testing.T) {
	tag := `"abc"`
	for _, h := range []string{`"abc"`, `*`, `"zzz", "abc"`, `W/"abc"`} {
		if !etagMatches(h, tag) {
			t.Errorf("etagMatches(%q, %q) = false, want true", h, tag)
		}
	}
	for _, h := range []string{`"abd"`, `abc`, ``} {
		if etagMatches(h, tag) {
			t.Errorf("etagMatches(%q, %q) = true, want false", h, tag)
		}
	}
}
