package main

// The layout-tuning API: POST /volumes/{name}/tune runs the
// generalized-Morton interleave autotuner (internal/tune) over a
// stored volume as a background job and, by default, re-lays the
// volume out under the winning interleave. The re-layout goes through
// store.Put, so it rides the generation-bump machinery: every cached
// response for the old layout's contents becomes unreachable, and the
// new layout string persists in the volume manifest (and on disk with
// -data-dir), reconstructing via ParseLayoutSpec on restart.
//
// Tuning is bulk work by nature — the search replays the kernel
// through the cache simulator once per candidate — so jobs default to
// the bulk lane and never preempt interactive renders.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sfcmem"
	"sfcmem/internal/cache"
	"sfcmem/internal/filter"
	"sfcmem/internal/jobs"
	"sfcmem/internal/obs"
	"sfcmem/internal/parallel"
	"sfcmem/internal/rcache"
	"sfcmem/internal/store"
	"sfcmem/internal/tune"
)

// maxTuneElems bounds the volume size the tuner accepts: the search
// replays the kernel through the simulator for every candidate, so
// cost scales as elements × candidates. 128³ keeps a default search
// in bulk-job territory (tens of seconds); past that, tune a smaller
// volume of the same shape class and upload with the winning layout.
const maxTuneElems = 1 << 21

// tuneRequest is the POST /volumes/{name}/tune body. An empty body is
// valid: every field has a default.
type tuneRequest struct {
	// Kernel is the workload to tune for: "bilateral" (default) or
	// "volrend".
	Kernel string `json:"kernel"`
	// Seed drives the search's PCG stream and the proxy dataset;
	// default 1. Same volume + kernel + seed ⇒ same winning layout.
	Seed uint64 `json:"seed"`
	// Population and Generations size the evolutionary search;
	// defaults 8 and 3 (the CI smoke scale).
	Population  int `json:"population"`
	Generations int `json:"generations"`
	// Workers is the simulated thread count; default 2.
	Workers int `json:"workers"`
	// Apply controls whether the winning layout is installed: when
	// true (default) the volume is re-laid-out and re-stored under a
	// bumped generation. false reports the winner without touching
	// the volume.
	Apply *bool `json:"apply"`
	// Priority selects the job lane; default "bulk" (unlike /jobs,
	// where the default is interactive — tuning is batch work).
	Priority string `json:"priority"`
}

// tuneOutcome is the job's "result" event payload and stored result.
type tuneOutcome struct {
	Volume string `json:"volume"`
	Kernel string `json:"kernel"`
	// Layout is the winning layout spec ("bit:…"); Previous the
	// volume's layout when the job was submitted.
	Layout   string `json:"layout"`
	Previous string `json:"previous"`
	// TunedMisses and ZOrderMisses are simulated L1 misses for the
	// winner and for plain Z order under the identical replay.
	TunedMisses  uint64  `json:"tuned_misses"`
	ZOrderMisses uint64  `json:"zorder_misses"`
	ImprovePct   float64 `json:"improve_pct"` // vs Z order; negative = regression
	Candidates   int     `json:"candidates"`  // distinct specs evaluated
	Applied      bool    `json:"applied"`
	Gen          uint64  `json:"gen,omitempty"` // volume generation after apply
	Seconds      float64 `json:"seconds"`
}

// enableTuneMetrics publishes the tune.* metrics family.
func (s *server) enableTuneMetrics() {
	s.tuneReqs = s.reg.Counter("tune.requests", 1)
	s.tuneApplied = s.reg.Counter("tune.applied", 1)
	s.tuneImproved = s.reg.Counter("tune.improved", 1)
	s.tuneLatency = s.reg.Histogram("tune.latency")
}

// handleTuneVolume validates a tune request and submits it as a
// background job: 202 + job id, result over GET /jobs/{id}/events.
func (s *server) handleTuneVolume(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		http.Error(w, "jobs disabled", http.StatusServiceUnavailable)
		return
	}
	s.tuneReqs.Inc(0)
	var req tuneRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, herr := s.tuneJobSpec(r.PathValue("name"), req, r.Header)
	if herr != nil {
		http.Error(w, herr.msg, herr.code)
		return
	}
	j, err := s.jobs.Submit(spec)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // headers are out
		"id":         j.ID,
		"state":      j.State(),
		"events_url": "/jobs/" + j.ID + "/events",
	})
}

// tuneJobSpec validates the request against the volume and builds the
// scheduler spec. Identical tune submissions (same volume generation
// and search parameters) share a batch key, so a duplicated request
// coalesces instead of running the search twice.
func (s *server) tuneJobSpec(name string, req tuneRequest, hdr http.Header) (jobs.Spec, *httpErr) {
	kernel, err := tune.ParseKernel(valueOr(req.Kernel, string(tune.KernelBilateral)))
	if err != nil {
		return jobs.Spec{}, &httpErr{http.StatusBadRequest, err.Error()}
	}
	lane, err := jobs.ParseLane(valueOr(req.Priority, "bulk"))
	if err != nil {
		return jobs.Spec{}, &httpErr{http.StatusBadRequest, err.Error()}
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Population <= 0 {
		req.Population = 8
	}
	if req.Generations <= 0 {
		req.Generations = 3
	}
	if req.Workers <= 0 {
		req.Workers = 2
	}
	if req.Population > 64 || req.Generations > 32 || req.Workers > 16 {
		return jobs.Spec{}, &httpErr{http.StatusBadRequest, "population, generations or workers out of range"}
	}
	apply := req.Apply == nil || *req.Apply
	vol, herr := s.getVolume(name)
	if herr != nil {
		return jobs.Spec{}, herr
	}
	nx, ny, nz := vol.Grid.Dims()
	if nx*ny*nz > maxTuneElems {
		return jobs.Spec{}, &httpErr{http.StatusUnprocessableEntity,
			fmt.Sprintf("volume %d×%d×%d exceeds the %d-element tuning limit", nx, ny, nz, maxTuneElems)}
	}
	cfg := tune.InterleaveConfig{
		Nx: nx, Ny: ny, Nz: nz,
		Seed:   req.Seed,
		Kernel: kernel,
		Dtype:  vol.Grid.Dtype(),
		Options: filter.Options{
			Radius: 1, Axis: parallel.AxisZ, Order: filter.ZYX, Workers: req.Workers,
		},
		// A shrunken deterministic platform: interleave ranking happens
		// at cache-line granularity, and the scaled hierarchy keeps the
		// proxy volume's working set out of cache the way the full-size
		// volume's would be on real hardware.
		Platform:    cache.Scaled(cache.IvyBridge(), 32),
		Population:  req.Population,
		Generations: req.Generations,
	}
	jt, _ := s.hub.Start(context.Background(), "job", hdr)
	return jobs.Spec{
		BatchKey: digest("tune", vol.Name, vol.Gen, kernel, req.Seed,
			req.Population, req.Generations, req.Workers, apply),
		Lane: lane,
		Run: func(ctx context.Context, _ any, j *jobs.Job) error {
			return s.runTuneJob(obs.With(ctx, jt), jt, vol, cfg, apply, j)
		},
		Done: s.jobDone(jt),
	}, nil
}

// runTuneJob executes a tune job on a scheduler runner: admission,
// interleave search, optional re-layout + store (the generation
// bump), result event. The admission slot covers both phases — the
// search occupies simulator CPU, the re-layout streams the volume.
func (s *server) runTuneJob(ctx context.Context, jt *obs.Trace, vol *store.Volume, cfg tune.InterleaveConfig, apply bool, j *jobs.Job) error {
	s.recordQueueSpans(jt, j)
	release, err := s.admit(ctx)
	if err != nil {
		return err
	}
	defer release()
	start := time.Now()
	endSearch := jt.Stage("tune.search")
	res, err := tune.Interleave(cfg)
	endSearch()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil { // cancelled mid-search
		return err
	}
	out := tuneOutcome{
		Volume:       vol.Name,
		Kernel:       string(cfg.Kernel),
		Layout:       res.Layout,
		Previous:     vol.Layout,
		TunedMisses:  res.Score,
		ZOrderMisses: res.ZOrder,
		Candidates:   len(res.Evals),
	}
	if res.ZOrder > 0 {
		out.ImprovePct = 100 * (float64(res.ZOrder) - float64(res.Score)) / float64(res.ZOrder)
	}
	if out.ImprovePct > 0 {
		s.tuneImproved.Inc(0)
	}
	if apply && res.Layout != vol.Layout {
		endApply := jt.Stage("tune.relayout")
		err := s.applyTunedLayout(vol, res.Layout, &out)
		endApply()
		if err != nil {
			return err
		}
	}
	out.Seconds = time.Since(start).Seconds()
	s.tuneLatency.Observe(time.Since(start))
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(out) //nolint:errcheck // bytes.Buffer never fails
	v := rcache.Value{Body: buf.Bytes(), ContentType: "application/json"}
	j.SetResult(&v)
	j.Emit("result", json.RawMessage(bytes.TrimSpace(v.Body)))
	return nil
}

// applyTunedLayout re-lays the volume out under the winning layout
// and re-stores it. Put assigns a fresh generation, so every cached
// response digest minted against the old contents stops validating;
// the manifest's Layout field carries the interleave string, which is
// exactly what ParseLayoutSpec reconstructs from after a restart.
// The relayout is a pure copy — renders of the re-laid volume are
// byte-identical to renders of the original.
func (s *server) applyTunedLayout(vol *store.Volume, layoutSpec string, out *tuneOutcome) error {
	nx, ny, nz := vol.Grid.Dims()
	l, err := sfcmem.ParseLayoutSpec(layoutSpec, nx, ny, nz)
	if err != nil {
		return fmt.Errorf("winning layout %q: %w", layoutSpec, err)
	}
	ng, err := vol.Grid.Relayout(l)
	if err != nil {
		return err
	}
	if err := s.store.Put(&store.Volume{
		Name:    vol.Name,
		Dataset: vol.Dataset,
		Layout:  l.Name(),
		Grid:    ng,
	}); err != nil {
		return err
	}
	out.Applied = true
	out.Layout = l.Name()
	if in, ok := s.store.Stat(vol.Name); ok {
		out.Gen = in.Gen
	}
	s.tuneApplied.Inc(0)
	return nil
}

// valueOr returns s, or def when s is empty.
func valueOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
