package main

// End-to-end coverage of the /jobs API: progressive SSE delivery
// (coarse frame strictly before the full render completes), batching
// of compatible jobs, byte-identity of batched output with the sync
// path, cancellation mid-refine releasing admission slots, mixed-
// priority concurrent load, and drain semantics — all meant to run
// under -race.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sfcmem"
	"sfcmem/internal/jobs"
	"sfcmem/internal/store"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	event string
	data  []byte
}

// readSSE parses the next event off an SSE stream.
func readSSE(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	var data [][]byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if ev.event != "" || len(data) > 0 {
				ev.data = bytes.Join(data, []byte("\n"))
				return ev, nil
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			ev.id = v
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			ev.event = v
		}
		if v, ok := strings.CutPrefix(line, "data: "); ok {
			data = append(data, []byte(v))
		}
	}
}

// submitJob posts a job and returns its ID.
func submitJob(t *testing.T, base string, body jobRequest) string {
	t.Helper()
	resp := postJSON(t, base+"/jobs", body)
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d body %s", resp.StatusCode, b)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.ID == "" {
		t.Fatalf("POST /jobs response %s (err %v)", b, err)
	}
	return acc.ID
}

// jobState fetches GET /jobs/{id} and returns the state.
func jobState(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return string(st.State)
}

// gatedFullRender passes the first render call (the coarse pass)
// straight through and parks every later one until released, so tests
// can hold a job mid-refine deterministically.
type gatedFullRender struct {
	calls   atomic.Int32
	entered chan struct{}
	release chan struct{}
}

func newGatedFullRender() *gatedFullRender {
	return &gatedFullRender{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (h *gatedFullRender) render(ctx context.Context, vol *sfcmem.AnyGrid, cam sfcmem.Camera, tf *sfcmem.TransferFunc, o sfcmem.RenderOptions) (*sfcmem.Image, error) {
	if h.calls.Add(1) >= 2 {
		h.entered <- struct{}{}
		select {
		case <-h.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return sfcmem.RenderAnyCtx(ctx, vol, cam, tf, o)
}

// TestJobProgressiveSSE drives one render job end to end over SSE and
// pins the progressive contract: the coarse frame is delivered while
// the full-resolution render is still running, then the refined frame
// arrives, byte-identical to what a synchronous /render of the same
// parameters produces.
func TestJobProgressiveSSE(t *testing.T) {
	cfg := testConfig()
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newGatedFullRender()
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	base := "http://" + a.apiAddr()

	req := renderRequest{Volume: "demo", View: 3, Views: 8, Width: 48, Height: 48, Workers: 2}
	id := submitJob(t, base, jobRequest{Render: &req})

	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	var got []string
	var coarse, refined frameEvent
	readUntil := func(typ string) {
		t.Helper()
		for {
			ev, err := readSSE(br)
			if err != nil {
				t.Fatalf("SSE stream ended early (after %v): %v", got, err)
			}
			got = append(got, ev.event)
			switch ev.event {
			case "coarse":
				if err := json.Unmarshal(ev.data, &coarse); err != nil {
					t.Fatal(err)
				}
			case "refined":
				if err := json.Unmarshal(ev.data, &refined); err != nil {
					t.Fatal(err)
				}
			case "failed":
				t.Fatalf("job failed: %s", ev.data)
			}
			if ev.event == typ {
				return
			}
		}
	}

	// The coarse frame must arrive while the full render is parked in
	// the hook — progressive delivery, not an afterthought.
	readUntil("coarse")
	<-hook.entered
	if st := jobState(t, base, id); st != "running" {
		t.Fatalf("job state %q after coarse frame, want running (full render still in flight)", st)
	}
	if coarse.Level != 2 || coarse.Width != 16 || coarse.Height != 16 {
		t.Errorf("coarse frame level %d %dx%d, want level 2 at 16x16 (48>>2 clamped)", coarse.Level, coarse.Width, coarse.Height)
	}
	cpix, err := base64.StdEncoding.DecodeString(coarse.Frame)
	if err != nil {
		t.Fatal(err)
	}
	cimg, err := png.Decode(bytes.NewReader(cpix))
	if err != nil {
		t.Fatalf("coarse frame is not a PNG: %v", err)
	}
	if b := cimg.Bounds(); b.Dx() != coarse.Width || b.Dy() != coarse.Height {
		t.Errorf("coarse PNG %dx%d does not match event metadata %dx%d", b.Dx(), b.Dy(), coarse.Width, coarse.Height)
	}

	close(hook.release)
	readUntil("done")
	want := []string{"queued", "batched", "coarse", "refined", "done"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("event sequence %v, want %v", got, want)
	}

	// Byte identity with the sync path (cache off in testConfig, so
	// this render recomputes from scratch).
	rpix, err := base64.StdEncoding.DecodeString(refined.Frame)
	if err != nil {
		t.Fatal(err)
	}
	sresp := postJSON(t, base+"/render", req)
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync render: status %d", sresp.StatusCode)
	}
	if !bytes.Equal(rpix, sbody) {
		t.Errorf("refined frame (%d bytes) differs from sync render (%d bytes)", len(rpix), len(sbody))
	}

	// Re-subscribing after completion replays the full history.
	resp2, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	br2 := bufio.NewReader(resp2.Body)
	var replay []string
	for {
		ev, err := readSSE(br2)
		if err != nil {
			t.Fatalf("replay ended early: %v", err)
		}
		replay = append(replay, ev.event)
		if ev.event == "done" {
			break
		}
	}
	resp2.Body.Close()
	if fmt.Sprint(replay) != fmt.Sprint(want) {
		t.Errorf("replayed sequence %v, want %v", replay, want)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

// TestJobBatchBurst submits a burst of 8 compatible jobs and checks
// they coalesce into at most 2 batches sharing setup, every output is
// byte-identical to its synchronous equivalent, and the final frames
// land in the response cache under the sync digests.
func TestJobBatchBurst(t *testing.T) {
	cfg := testConfig()
	cfg.cacheBytes = 1 << 20
	cfg.jobLinger = 50 * time.Millisecond // generous window so the burst lands in one linger
	a, _, _ := startApp(t, cfg)
	base := "http://" + a.apiAddr()

	const n = 8
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		req := renderRequest{Volume: "demo", View: i, Views: n, Width: 32, Height: 32, Workers: 1}
		ids[i] = submitJob(t, base, jobRequest{Render: &req})
	}
	for i, id := range ids {
		waitFor(t, fmt.Sprintf("job %d terminal", i), func() bool {
			st := jobState(t, base, id)
			return st == "done" || st == "failed" || st == "cancelled"
		})
		if st := jobState(t, base, id); st != "done" {
			t.Fatalf("job %d: state %s", i, st)
		}
	}
	st := a.srv.jobs.Stats()
	if st.Batches > 2 {
		t.Errorf("burst of %d compatible jobs ran as %d batches, want <= 2", n, st.Batches)
	}
	if st.Done != n {
		t.Errorf("done %d, want %d", st.Done, n)
	}

	// Each job warmed the cache under the digest a sync request
	// computes: every one of these must be a hit, and the bytes must
	// match a batched job's output exactly.
	for i := 0; i < n; i++ {
		req := renderRequest{Volume: "demo", View: i, Views: n, Width: 32, Height: 32, Workers: 1}
		resp := postJSON(t, base+"/render", req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sync render %d: status %d", i, resp.StatusCode)
		}
		if out := resp.Header.Get("X-Cache"); out != "hit" {
			t.Errorf("sync render %d after job: X-Cache %q, want hit (job should have warmed the cache)", i, out)
		}
		if _, err := png.Decode(bytes.NewReader(body)); err != nil {
			t.Errorf("cached frame %d is not a PNG: %v", i, err)
		}
	}
}

// TestJobCancelMidRefineFreesSlot parks a job in its full-resolution
// pass, cancels it over the API, and checks the kernel aborts, the
// terminal state is cancelled, and the admission slot is released for
// new work.
func TestJobCancelMidRefineFreesSlot(t *testing.T) {
	cfg := testConfig()
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newGatedFullRender()
	hook.calls.Store(1) // no coarse pass in this job: gate the very first call
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	base := "http://" + a.apiAddr()

	zero := 0
	req := renderRequest{Volume: "demo", Views: 8, Width: 32, Height: 32, Workers: 1}
	id := submitJob(t, base, jobRequest{Render: &req, CoarseLevel: &zero})
	<-hook.entered // parked mid-refine, holding an admission slot
	if got := len(a.srv.run); got != 1 {
		t.Fatalf("run slots held %d, want 1", got)
	}

	dreq, err := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s: status %d", id, dresp.StatusCode)
	}
	waitFor(t, "job cancelled", func() bool { return jobState(t, base, id) == "cancelled" })
	waitFor(t, "admission slot freed", func() bool { return len(a.srv.run) == 0 })
	if got := a.srv.jobs.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled counter %d, want 1", got)
	}

	// The freed slot serves new work: a sync render (not gated — the
	// hook only parks calls 2+, and the cancelled job consumed call 2).
	hook.calls.Store(-1000)
	resp := postJSON(t, base+"/render", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("render after cancel: status %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

// TestJobsMixedPriorityConcurrent is the -race soak the issue asks
// for: 32 concurrent jobs across both lanes, mixed render/filter,
// some cancelled mid-flight; every job must reach a terminal state and
// none may fail.
func TestJobsMixedPriorityConcurrent(t *testing.T) {
	cfg := testConfig()
	cfg.cacheBytes = 1 << 20
	a, _, _ := startApp(t, cfg)
	base := "http://" + a.apiAddr()

	const n = 32
	type outcome struct {
		id    string
		state string
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			var body jobRequest
			if i%2 == 0 {
				body.Priority = "bulk"
			}
			if i%8 == 7 {
				body.Filter = &filterRequest{Src: "demo", Dst: fmt.Sprintf("f%d", i), Kernel: "gaussian", Radius: 1, Workers: 1}
			} else {
				body.Render = &renderRequest{Volume: "demo", View: i % 4, Views: 8, Width: 24, Height: 24, Workers: 1}
			}
			id := submitJob(t, base, body)
			if i%5 == 0 {
				dreq, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+id, nil)
				if dresp, err := http.DefaultClient.Do(dreq); err == nil {
					dresp.Body.Close()
				}
			}
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				st := jobState(t, base, id)
				if st == "done" || st == "failed" || st == "cancelled" {
					results <- outcome{id, st}
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			results <- outcome{id, "stuck"}
		}(i)
	}
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		o := <-results
		counts[o.state]++
		if o.state == "stuck" || o.state == "failed" {
			t.Errorf("job %s ended %s", o.id, o.state)
		}
	}
	if counts["done"]+counts["cancelled"] != n {
		t.Errorf("outcomes %v, want %d done+cancelled", counts, n)
	}
	st := a.srv.jobs.Stats()
	if st.Submitted != n {
		t.Errorf("submitted %d, want %d", st.Submitted, n)
	}

	// The jobs.* metrics family is live on the ops listener.
	resp, err := http.Get("http://" + a.opsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"jobs.submitted", "jobs.done", "jobs.batches", "jobs.pending", "jobs.ttfb"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
}

// TestJobDrainCompletesQueuedWork submits jobs still lingering in a
// pending batch and immediately begins shutdown: the drain must seal
// and run them to completion, and run() must exit clean.
func TestJobDrainCompletesQueuedWork(t *testing.T) {
	cfg := testConfig()
	cfg.jobLinger = time.Hour // only the drain can seal the batch
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	base := "http://" + a.apiAddr()

	var ids []string
	for i := 0; i < 3; i++ {
		req := renderRequest{Volume: "demo", View: i, Views: 8, Width: 24, Height: 24, Workers: 1}
		ids = append(ids, submitJob(t, base, jobRequest{Render: &req}))
	}
	cancel() // SIGTERM equivalent
	if err := <-done; err != nil {
		t.Fatalf("app.run during drain: %v", err)
	}
	for _, id := range ids {
		j, ok := a.srv.jobs.Get(id)
		if !ok {
			t.Fatalf("job %s evicted during drain", id)
		}
		if j.State() != jobs.StateDone {
			t.Errorf("job %s drained to %s, want done", id, j.State())
		}
	}
}

// TestJobDrainTimeoutFailsCleanly parks a job in its kernel with a
// short drain budget: shutdown must cancel the kernel through the job
// context, mark the job failed (not leave it running), and report the
// timeout.
func TestJobDrainTimeoutFailsCleanly(t *testing.T) {
	cfg := testConfig()
	cfg.drainTimeout = 300 * time.Millisecond
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newGatedFullRender()
	hook.calls.Store(1) // gate the first render call
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	base := "http://" + a.apiAddr()

	zero := 0
	req := renderRequest{Volume: "demo", Views: 8, Width: 24, Height: 24, Workers: 1}
	id := submitJob(t, base, jobRequest{Render: &req, CoarseLevel: &zero})
	<-hook.entered

	cancel()
	err = <-done
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck job returned %v, want deadline exceeded", err)
	}
	j, ok := a.srv.jobs.Get(id)
	if !ok {
		t.Fatal("job evicted")
	}
	if j.State() != jobs.StateFailed {
		t.Errorf("stuck job drained to %s, want failed", j.State())
	}
}

// TestSSEDisconnectCancelsJob drops the event stream while the job is
// mid-refine: the watcher hanging up must cancel the kernel, mirroring
// the sync path where a dropped connection aborts the render.
func TestSSEDisconnectCancelsJob(t *testing.T) {
	cfg := testConfig()
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newGatedFullRender()
	hook.calls.Store(1)
	a.srv.renderImage = hook.render
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	base := "http://" + a.apiAddr()

	zero := 0
	req := renderRequest{Volume: "demo", Views: 8, Width: 24, Height: 24, Workers: 1}
	id := submitJob(t, base, jobRequest{Render: &req, CoarseLevel: &zero})

	sctx, scancel := context.WithCancel(context.Background())
	sreq, _ := http.NewRequestWithContext(sctx, http.MethodGet, base+"/jobs/"+id+"/events", nil)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	<-hook.entered // job is mid-refine with a live watcher
	scancel()      // watcher hangs up
	sresp.Body.Close()
	waitFor(t, "job cancelled by disconnect", func() bool { return jobState(t, base, id) == "cancelled" })
	waitFor(t, "admission slot freed", func() bool { return len(a.srv.run) == 0 })

	cancel()
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

// TestStatusWriterForwardsFlush pins the bugfix: the instrumentation
// wrapper must not hide the underlying http.Flusher, or SSE events sit
// in the server buffer until the handler returns.
func TestStatusWriterForwardsFlush(t *testing.T) {
	var _ http.Flusher = (*statusWriter)(nil) // compile-time-style assertion

	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	fmt.Fprint(sw, "data: x\n\n")
	sw.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	if sw.status() != http.StatusOK {
		t.Errorf("status after flush %d, want 200", sw.status())
	}
	// http.NewResponseController must find the flusher through the
	// wrapper (directly or via Unwrap) without ErrNotSupported.
	rc := http.NewResponseController(sw)
	if err := rc.Flush(); err != nil {
		t.Errorf("ResponseController.Flush: %v", err)
	}
}

// TestRetryAfterDerivedFromBacklog pins the 429 Retry-After header to
// the backlog estimate (queue occupancy × mean latency / slots)
// instead of the old hardcoded 1 second.
func TestRetryAfterDerivedFromBacklog(t *testing.T) {
	cfg := testConfig()
	cfg.slots, cfg.queueDepth = 1, 1
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render
	// Seed the latency evidence: one completed request took 4s. With
	// a full queue (2 occupants) and 1 slot, the estimate is 2*4s = 8s.
	a.srv.renderLatency.Observe(4 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()

	url := "http://" + a.apiAddr() + "/render"
	req := renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1}
	statuses := make(chan int, 2)
	do := func() {
		resp := postJSON(t, url, req)
		resp.Body.Close()
		statuses <- resp.StatusCode
	}
	go do() // takes the run slot
	<-hook.entered
	go do() // takes the queue slot
	waitFor(t, "queue saturated", func() bool { return len(a.srv.queue) == 2 })

	resp := postJSON(t, url, req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After %q, want \"8\" (2 queued x 4s mean / 1 slot)", got)
	}

	close(hook.release)
	for i := 0; i < 2; i++ {
		<-statuses
	}
	cancel()
	if err := <-done; err != nil {
		t.Errorf("app.run: %v", err)
	}
}

// TestJobValidation covers the /jobs request-surface error paths.
func TestJobValidation(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()
	bad := []jobRequest{
		{},               // no op body at all
		{Op: "render"},   // op without its body
		{Op: "compress"}, // unknown op
		{Priority: "urgent", Render: &renderRequest{Volume: "demo"}},            // bad lane
		{Render: &renderRequest{Volume: "nope", Views: 8}},                      // unknown volume (404 below)
		{CoarseLevel: ptr(9), Render: &renderRequest{Volume: "demo", Views: 8}}, // coarse level out of range
		{Filter: &filterRequest{Src: "demo", Kernel: "median"}},                 // bad kernel
	}
	wants := []int{400, 400, 400, 400, 404, 400, 400}
	for i, b := range bad {
		resp := postJSON(t, base+"/jobs", b)
		resp.Body.Close()
		if resp.StatusCode != wants[i] {
			t.Errorf("case %d (%+v): status %d, want %d", i, b, resp.StatusCode, wants[i])
		}
	}
	// Unknown job ID on every /jobs/{id} verb.
	resp, err := http.Get(base + "/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/jobs/deadbeef/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestFilterJobMatchesSync runs a filter as a job and checks the
// destination volume appears and a subsequent identical sync /filter
// is answered from the cache without rerunning the kernel.
func TestFilterJobMatchesSync(t *testing.T) {
	cfg := testConfig()
	cfg.cacheBytes = 1 << 20
	a, _, _ := startApp(t, cfg)
	base := "http://" + a.apiAddr()

	freq := filterRequest{Src: "demo", Dst: "demo.j", Kernel: "gaussian", Radius: 1, Workers: 1}
	id := submitJob(t, base, jobRequest{Filter: &freq, Priority: "bulk"})
	waitFor(t, "filter job done", func() bool { return jobState(t, base, id) == "done" })

	// The destination volume is in the store.
	resp, err := http.Get(base + "/volumes")
	if err != nil {
		t.Fatal(err)
	}
	var vols []store.Info
	if err := json.NewDecoder(resp.Body).Decode(&vols); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, v := range vols {
		found = found || v.Name == "demo.j"
	}
	if !found {
		t.Fatal("filter job did not store its destination volume")
	}

	// Sync /filter with identical parameters hits the job's cached
	// response (the store still holds the job's output).
	sresp := postJSON(t, base+"/filter", freq)
	body, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync filter: status %d body %s", sresp.StatusCode, body)
	}
	if out := sresp.Header.Get("X-Cache"); out != "hit" {
		t.Errorf("sync filter after job: X-Cache %q, want hit", out)
	}
}

func ptr[T any](v T) *T { return &v }

// TestMaxCoarseLevel pins the clamp arithmetic: the deepest level keeps
// at least two samples per axis.
func TestMaxCoarseLevel(t *testing.T) {
	cases := []struct {
		nx, ny, nz, want int
	}{
		{2, 2, 2, 0},
		{3, 3, 3, 0},
		{4, 4, 4, 1},
		{16, 16, 16, 3},
		{48, 48, 48, 4},
		{64, 4, 64, 1}, // thinnest axis governs
	}
	for _, c := range cases {
		if got := maxCoarseLevel(c.nx, c.ny, c.nz); got != c.want {
			t.Errorf("maxCoarseLevel(%d,%d,%d) = %d, want %d", c.nx, c.ny, c.nz, got, c.want)
		}
	}
}

// TestJobCoarseLevelClampedToVolume submits a render job whose
// coarse_level passes the request-range check but exceeds the volume's
// deepest meaningful preview level (level 4 of the 16³ demo volume
// would subsample it to a single voxel per axis). The job must run at
// the clamped level and the coarse event must report the effective
// level, not the requested one.
func TestJobCoarseLevelClampedToVolume(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	base := "http://" + a.apiAddr()

	req := renderRequest{Volume: "demo", View: 1, Views: 8, Width: 48, Height: 48, Workers: 2}
	id := submitJob(t, base, jobRequest{CoarseLevel: ptr(4), Render: &req})

	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	var coarse frameEvent
	sawCoarse := false
	for {
		ev, err := readSSE(br)
		if err != nil {
			t.Fatalf("SSE stream ended early: %v", err)
		}
		if ev.event == "coarse" {
			sawCoarse = true
			if err := json.Unmarshal(ev.data, &coarse); err != nil {
				t.Fatal(err)
			}
		}
		if ev.event == "failed" {
			t.Fatalf("job failed: %s", ev.data)
		}
		if ev.event == "done" {
			break
		}
	}
	if !sawCoarse {
		t.Fatal("no coarse event (clamp should keep the preview, not drop it)")
	}
	// 16³ volume: deepest level with >= 2 samples per axis is 3.
	if coarse.Level != 3 {
		t.Errorf("coarse level %d, want 3 (requested 4 clamped to the 16³ volume)", coarse.Level)
	}
	if coarse.Width != 16 || coarse.Height != 16 {
		t.Errorf("coarse frame %dx%d, want 16x16 (48>>3 raised to the 16px floor)", coarse.Width, coarse.Height)
	}
}
