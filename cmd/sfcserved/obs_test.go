package main

// End-to-end tests for the request-observability layer: access logs,
// trace export, Prometheus exposition, live in-flight inspection, and
// the -obs-off ablation. These run under -race in CI (make race and the
// smoke job's explicit pass).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// logSink is a concurrency-safe writer capturing the access-log stream.
// slog serializes handler writes, but the test reads while background
// requests may still be logging, so reads lock too.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *logSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *logSink) lines(t *testing.T) []map[string]any {
	t.Helper()
	s.mu.Lock()
	raw := s.buf.String()
	s.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// traceEventJSON is the subset of a Chrome trace event the tests read.
type traceEventJSON struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestObservabilityEndToEnd drives the acceptance scenario: one tagged
// /render request under concurrent load must yield (1) an access-log
// line with its request ID and per-stage breakdown, (2) a span tree on
// /ops/trace/recent whose top-level stage durations sum to within 5%
// of the logged total, and (3) Prometheus-scrapeable RED metrics.
func TestObservabilityEndToEnd(t *testing.T) {
	sink := &logSink{}
	cfg := testConfig()
	cfg.accessLog = sink
	cfg.slowLog = time.Nanosecond // every request dumps its span tree
	cfg.cacheBytes = 1 << 20
	a, _, _ := startApp(t, cfg)
	api, ops := "http://"+a.apiAddr(), "http://"+a.opsAddr()

	// Background load: concurrent renders of distinct views.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(view int) {
			defer wg.Done()
			resp := postJSON(t, api+"/render", renderRequest{Volume: "demo", View: view, Views: 8, Width: 64, Height: 64, Workers: 2})
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}(i + 1)
	}

	// The probe request carries inbound trace context; the service must
	// honor the IDs and emit its own child span.
	const reqID = "probe-e2e-1"
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(renderRequest{Volume: "demo", Views: 8, Width: 128, Height: 128, Workers: 2})
	req, err := http.NewRequest("POST", api+"/render", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe render: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("X-Request-Id = %q, want %q echoed", got, reqID)
	}
	tp := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(tp, "00-"+traceID+"-") {
		t.Errorf("Traceparent = %q, want trace ID %s continued", tp, traceID)
	}

	// (1) Access log: boot banner first, then the probe's line with a
	// per-stage breakdown, then (slow-log) its span dump.
	lines := sink.lines(t)
	if len(lines) == 0 || lines[0]["msg"] != "boot" || lines[0]["go_version"] == nil {
		t.Fatalf("first log record is not the boot banner: %v", lines[:1])
	}
	var access, slow map[string]any
	for _, l := range lines {
		if l["request_id"] != reqID {
			continue
		}
		switch l["msg"] {
		case "request":
			access = l
		case "slow request":
			slow = l
		}
	}
	if access == nil {
		t.Fatalf("no access-log line for %s in %d records", reqID, len(lines))
	}
	if access["trace_id"] != traceID || access["route"] != "render" ||
		access["status"] != float64(200) || access["cache"] != "miss" {
		t.Errorf("access record fields: %v", access)
	}
	if access["bytes"].(float64) <= 0 {
		t.Errorf("access record bytes = %v", access["bytes"])
	}
	stages, _ := access["stages"].(map[string]any)
	for _, want := range []string{"decode", "digest", "cache"} {
		if stages[want] == nil {
			t.Errorf("stage breakdown missing %q: %v", want, stages)
		}
	}
	if slow == nil || slow["spans"] == nil {
		t.Errorf("slow-log span dump missing for %s", reqID)
	}
	totalS := access["total_s"].(float64)

	// (2) Trace export: the probe's span tree, top-level stages summing
	// to within 5% of the logged total.
	var ct struct {
		TraceEvents []traceEventJSON `json:"traceEvents"`
	}
	getJSON(t, ops+"/ops/trace/recent", &ct)
	pid := -1
	for _, e := range ct.TraceEvents {
		if e.Cat == "request" && e.Args["request_id"] == reqID {
			pid = e.PID
			break
		}
	}
	if pid < 0 {
		t.Fatalf("probe request not in /ops/trace/recent (%d events)", len(ct.TraceEvents))
	}
	var stageSumUS float64
	var sawKernelStage, sawWorkerSpan bool
	for _, e := range ct.TraceEvents {
		if e.PID != pid || e.Ph != "X" {
			continue
		}
		switch e.Cat {
		case "stage":
			if e.Args["depth"] == float64(0) {
				stageSumUS += e.Dur
			}
			if e.Name == "kernel" {
				sawKernelStage = true
			}
		case "kernel":
			sawWorkerSpan = true // per-item span on a worker lane
		}
	}
	if !sawKernelStage || !sawWorkerSpan {
		t.Errorf("span tree incomplete: kernel stage=%v, worker spans=%v", sawKernelStage, sawWorkerSpan)
	}
	stageSumS := stageSumUS / 1e6
	if rel := math.Abs(stageSumS-totalS) / totalS; rel > 0.05 {
		t.Errorf("top-level stages sum to %.6fs, logged total %.6fs (%.1f%% apart, want <= 5%%)",
			stageSumS, totalS, rel*100)
	}

	// (3) Prometheus RED metrics for the route.
	presp, err := http.Get(ops + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	promText, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if ctype := presp.Header.Get("Content-Type"); !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("prometheus Content-Type %q", ctype)
	}
	prom := string(promText)
	for _, want := range []string{
		"# TYPE sfcserved_http_render_2xx_total counter",
		"sfcserved_http_render_latency_seconds_bucket{le=\"+Inf\"} ",
		"sfcserved_render_latency_seconds_bucket{le=",
		"sfcserved_build_info{",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// The request counter actually counted: 2xx >= 5 (4 load + probe).
	var count2xx float64
	for _, line := range strings.Split(prom, "\n") {
		if v, ok := strings.CutPrefix(line, "sfcserved_http_render_2xx_total "); ok {
			fmt.Sscanf(v, "%g", &count2xx) //nolint:errcheck
		}
	}
	if count2xx < 5 {
		t.Errorf("sfcserved_http_render_2xx_total = %v, want >= 5", count2xx)
	}

	// JSON stays the default view on the same mount.
	var snap map[string]json.RawMessage
	getJSON(t, ops+"/metrics", &snap)
	for _, key := range []string{"http.render.2xx", "http.render.latency", "build.info", "admission.rejected"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("JSON /metrics missing %q", key)
		}
	}
}

// TestInflightInspection parks a render inside the kernel stage and
// checks /ops/requests reports it live, then empty after release.
func TestInflightInspection(t *testing.T) {
	cfg := testConfig()
	a, err := newApp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newBlockingHook()
	a.srv.renderImage = hook.render // before run: no concurrent access yet
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- a.run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("app.run: %v", err)
		}
	})

	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, "http://"+a.apiAddr()+"/render",
			renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-hook.entered

	var inflight []inflightInfoJSON
	getJSON(t, "http://"+a.opsAddr()+"/ops/requests", &inflight)
	if len(inflight) != 1 {
		t.Fatalf("%d in-flight requests, want 1", len(inflight))
	}
	r := inflight[0]
	if r.Route != "render" || r.Stage != "kernel" || r.RequestID == "" || r.ElapsedS < 0 {
		t.Errorf("in-flight record %+v", r)
	}

	close(hook.release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("parked render finished with %d", st)
	}
	// Finish runs after the handler returns, so the client can see the
	// response a beat before the in-flight entry is retired.
	waitFor(t, "in-flight set to drain", func() bool {
		var left []inflightInfoJSON
		getJSON(t, "http://"+a.opsAddr()+"/ops/requests", &left)
		return len(left) == 0
	})
}

// inflightInfoJSON mirrors the /ops/requests record shape.
type inflightInfoJSON struct {
	RequestID string  `json:"request_id"`
	Route     string  `json:"route"`
	Stage     string  `json:"stage"`
	ElapsedS  float64 `json:"elapsed_s"`
}

// TestObsOffAblation checks -obs-off: no identity headers, no access
// log, no ops tracing endpoints — but RED metrics still count.
func TestObsOffAblation(t *testing.T) {
	sink := &logSink{}
	cfg := testConfig()
	cfg.accessLog = sink
	cfg.obsOff = true
	a, _, _ := startApp(t, cfg)

	resp := postJSON(t, "http://"+a.apiAddr()+"/render",
		renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1})
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Errorf("X-Request-Id %q emitted with -obs-off", got)
	}
	if sink.buf.Len() != 0 {
		t.Errorf("access log written with -obs-off: %q", sink.buf.String())
	}
	for _, path := range []string{"/ops/requests", "/ops/trace/recent"} {
		r, err := http.Get("http://" + a.opsAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d with -obs-off, want 404", path, r.StatusCode)
		}
	}
	// RED metrics are part of the metrics layer, not the obs layer.
	if got := counterTotal(t, "http://"+a.opsAddr(), "http.render.2xx"); got != 1 {
		t.Errorf("http.render.2xx = %d with -obs-off, want 1", got)
	}
}

// TestVersionEndpoint checks /version on both ports and the build.info
// registry entry.
func TestVersionEndpoint(t *testing.T) {
	a, _, _ := startApp(t, testConfig())
	for _, base := range []string{"http://" + a.apiAddr(), "http://" + a.opsAddr()} {
		var v map[string]string
		getJSON(t, base+"/version", &v)
		for _, key := range []string{"module_version", "go_version", "vcs_revision", "vcs_modified"} {
			if v[key] == "" {
				t.Errorf("%s/version missing %q: %v", base, key, v)
			}
		}
		if !strings.HasPrefix(v["go_version"], "go") {
			t.Errorf("go_version %q", v["go_version"])
		}
	}
}

// TestStatusClassCounters drives one request per class and checks the
// per-route counters split correctly.
func TestStatusClassCounters(t *testing.T) {
	cfg := testConfig()
	cfg.cacheBytes = 1 << 20
	a, _, _ := startApp(t, cfg)
	api := "http://" + a.apiAddr()

	// 2xx.
	ok := renderRequest{Volume: "demo", Views: 8, Width: 16, Height: 16, Workers: 1}
	resp := postJSON(t, api+"/render", ok)
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	// 3xx: conditional replay of the same request.
	body, _ := json.Marshal(ok)
	req, _ := http.NewRequest("POST", api+"/render", bytes.NewReader(body))
	req.Header.Set("If-None-Match", etag)
	r304, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r304.Body.Close()
	if r304.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional render: status %d, want 304", r304.StatusCode)
	}
	// 4xx.
	resp = postJSON(t, api+"/render", renderRequest{Volume: "missing"})
	resp.Body.Close()

	for key, want := range map[string]uint64{
		"http.render.2xx": 1,
		"http.render.3xx": 1,
		"http.render.4xx": 1,
		"http.render.5xx": 0,
	} {
		if got := counterTotal(t, "http://"+a.opsAddr(), key); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
}

// counterTotal reads one counter's total from the JSON /metrics snapshot.
func counterTotal(t *testing.T, opsBase, key string) uint64 {
	t.Helper()
	var snap map[string]json.RawMessage
	getJSON(t, opsBase+"/metrics", &snap)
	raw, ok := snap[key]
	if !ok {
		return 0
	}
	var c struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatalf("metric %s is not a counter: %s", key, raw)
	}
	return c.Total
}

// benchApp builds and serves an app for a benchmark, returning its API
// base URL.
func benchApp(b *testing.B, cfg config) string {
	b.Helper()
	a, err := newApp(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.run(ctx) }()
	b.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			b.Errorf("app.run: %v", err)
		}
	})
	return "http://" + a.apiAddr()
}

// benchRender drives sequential /render requests through the full HTTP
// path. Run with -obs on and off to measure the tracing overhead
// recorded in DESIGN.md §11:
//
//	go test -run NONE -bench 'BenchmarkRenderObs' -benchtime 50x ./cmd/sfcserved/
func benchRender(b *testing.B, obsOff bool) {
	cfg := testConfig()
	cfg.obsOff = obsOff
	api := benchApp(b, cfg)
	req := renderRequest{Volume: "demo", Views: 8, Width: 64, Height: 64, Workers: 2}
	body, _ := json.Marshal(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(api+"/render", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("render: status %d", resp.StatusCode)
		}
	}
}

func BenchmarkRenderObsOn(b *testing.B)  { benchRender(b, false) }
func BenchmarkRenderObsOff(b *testing.B) { benchRender(b, true) }
