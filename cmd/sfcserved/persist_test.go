package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sfcmem/internal/store"
)

// doDelete issues DELETE /volumes/{name} and returns the status code.
func doDelete(t *testing.T, a *app, name string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, "http://"+a.apiAddr()+"/volumes/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}

// uploadRaw PUTs body as a raw uint8 volume of edge n under name.
func uploadRaw(t *testing.T, a *app, name string, n int, body []byte) store.Info {
	t.Helper()
	url := fmt.Sprintf("http://%s/volumes/%s?dtype=uint8&layout=zorder&nx=%d&ny=%d&nz=%d",
		a.apiAddr(), name, n, n, n)
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d body %s", name, resp.StatusCode, b)
	}
	var info store.Info
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

// renderRaw renders name in raw float32 framebuffer format and returns
// the response. The raw format makes byte-identity comparisons exact.
func renderRaw(t *testing.T, a *app, name string, inm string) *http.Response {
	t.Helper()
	body, err := json.Marshal(renderRequest{Volume: name, Width: 64, Height: 64, Workers: 2, Format: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+a.apiAddr()+"/render", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDeleteVolume drives DELETE /volumes/{name} over HTTP against
// both store variants: the volume disappears from every surface, a
// repeat delete is 404, and a re-created volume gets a strictly higher
// generation so an ETag minted before the delete can never validate.
func TestDeleteVolume(t *testing.T) {
	run := func(t *testing.T, cfg config) {
		a, _, _ := startApp(t, cfg)

		resp := renderRaw(t, a, "demo", "")
		frame1, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		etag1 := resp.Header.Get("ETag")
		if resp.StatusCode != http.StatusOK || etag1 == "" {
			t.Fatalf("pre-delete render: status %d etag %q", resp.StatusCode, etag1)
		}

		if code := doDelete(t, a, "demo"); code != http.StatusNoContent {
			t.Fatalf("DELETE demo: status %d, want 204", code)
		}
		if code := doDelete(t, a, "demo"); code != http.StatusNotFound {
			t.Fatalf("repeat DELETE demo: status %d, want 404", code)
		}
		if code := doDelete(t, a, "never-existed"); code != http.StatusNotFound {
			t.Fatalf("DELETE unknown: status %d, want 404", code)
		}
		resp = renderRaw(t, a, "demo", "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("render after delete: status %d, want 404", resp.StatusCode)
		}
		lresp, err := http.Get("http://" + a.apiAddr() + "/volumes")
		if err != nil {
			t.Fatal(err)
		}
		var vols []store.Info
		if err := json.NewDecoder(lresp.Body).Decode(&vols); err != nil {
			t.Fatal(err)
		}
		lresp.Body.Close()
		for _, v := range vols {
			if v.Name == "demo" {
				t.Fatalf("deleted volume still listed: %+v", v)
			}
		}

		// Re-create the name with different contents. The generation
		// must be strictly higher than anything pre-delete, so the old
		// ETag must not 304 against the new volume.
		samples := make([]byte, 16*16*16)
		for i := range samples {
			samples[i] = byte(i * 13)
		}
		info := uploadRaw(t, a, "demo", 16, samples)
		if info.Gen != 2 {
			t.Fatalf("re-created gen = %d, want 2 (delete must not reset the counter)", info.Gen)
		}
		resp = renderRaw(t, a, "demo", etag1)
		frame2, _ := io.ReadAll(resp.Body)
		etag2 := resp.Header.Get("ETag")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stale ETag validated against re-created volume: status %d", resp.StatusCode)
		}
		if etag2 == etag1 {
			t.Fatal("re-created volume reuses the pre-delete ETag")
		}
		if bytes.Equal(frame1, frame2) {
			t.Fatal("re-created volume renders the deleted contents")
		}
	}
	t.Run("ram", func(t *testing.T) { run(t, cacheConfig()) })
	t.Run("tiered", func(t *testing.T) {
		cfg := cacheConfig()
		cfg.dataDir = t.TempDir()
		run(t, cfg)
	})
}

// TestRestartRoundTrip is the persistence acceptance test end to end:
// upload, drain the process, restart a new one on the same -data-dir
// with a RAM budget far below the volume sizes (every render must
// demand-page its volume from bricks), and require the byte-identical
// frame — same sha256 — from the restarted service.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir
	cfg.storeRAMBytes = 2048 // demo is 16 KiB, the upload 4 KiB: nothing stays resident

	a1, cancel1, done1 := startApp(t, cfg)
	samples := make([]byte, 16*16*16)
	rng := rand.New(rand.NewSource(42))
	rng.Read(samples) //nolint:errcheck // never fails
	if info := uploadRaw(t, a1, "up", 16, samples); info.Gen != 1 || info.Resident {
		t.Fatalf("upload info %+v: want gen 1, evicted immediately under the tiny budget", info)
	}
	resp := renderRaw(t, a1, "up", "")
	frame1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first render: status %d body %s", resp.StatusCode, frame1)
	}
	cancel1() // SIGTERM path: drain and exit
	err := <-done1
	done1 <- err // put it back for startApp's cleanup
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	a2, _, _ := startApp(t, cfg)
	if in, ok := a2.srv.store.Stat("up"); !ok || in.Gen != 1 || in.Resident {
		t.Fatalf("restarted Stat(up) = %+v, %v: want gen 1, not resident until rendered", in, ok)
	}
	// The -volume spec re-synthesized demo over its persisted copy, so
	// its generation climbed — proof the manifest floor survived.
	if in, ok := a2.srv.store.Stat("demo"); !ok || in.Gen != 2 {
		t.Fatalf("restarted Stat(demo) = %+v, %v: want gen 2", in, ok)
	}
	resp = renderRaw(t, a2, "up", "")
	frame2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted render: status %d body %s", resp.StatusCode, frame2)
	}
	h1, h2 := sha256.Sum256(frame1), sha256.Sum256(frame2)
	if h1 != h2 {
		t.Fatalf("restart changed the frame: %x vs %x", h1, h2)
	}
	// The frame came off the disk tier, not a warm copy: the ops-port
	// metrics snapshot must show at least one demand load.
	mresp, err := http.Get("http://" + a2.opsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	var loads struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(snap["store.loads"], &loads); err != nil {
		t.Fatalf("store.loads missing from /metrics: %v", err)
	}
	if loads.Total < 1 {
		t.Fatalf("store.loads = %d, want >= 1 (render must have demand-paged)", loads.Total)
	}
}

// TestCorruptedBrickRejectedE2E flips one payload bit in a persisted
// brick between runs: the restarted service must answer 500 with the
// integrity failure spelled out, never a frame of corrupt data.
func TestCorruptedBrickRejectedE2E(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir

	a1, cancel1, done1 := startApp(t, cfg)
	samples := make([]byte, 16*16*16)
	uploadRaw(t, a1, "up", 16, samples)
	cancel1()
	err := <-done1
	done1 <- err // put it back for startApp's cleanup
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	bricks, err := filepath.Glob(filepath.Join(dir, "up-*", "00000.sfcb"))
	if err != nil || len(bricks) != 1 {
		t.Fatalf("glob bricks: %v %v", bricks, err)
	}
	b, err := os.ReadFile(bricks[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(bricks[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	a2, _, _ := startApp(t, cfg)
	resp := renderRaw(t, a2, "up", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("render of corrupted volume: status %d body %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "sha256") || !strings.Contains(string(body), `"up"`) {
		t.Fatalf("corruption error should name the volume and digest: %s", body)
	}
}
